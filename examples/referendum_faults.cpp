// Referendum under faults: a yes/no election where one vote collector, one
// bulletin board and one trustee are crashed the whole time. Voters retry
// per the paper's [d]-patience rule, the remaining quorums finish vote-set
// consensus, and delegated audits still pass — no single point of failure.
//
//   ./build/examples/referendum_faults
#include <cstdio>

#include "core/driver.hpp"

using namespace ddemos;
using namespace ddemos::core;

int main() {
  DriverConfig cfg;
  cfg.params.election_id = to_bytes("referendum-2026");
  cfg.params.options = {"yes", "no"};
  cfg.params.n_voters = 12;
  cfg.params.n_vc = 4;
  cfg.params.f_vc = 1;
  cfg.params.n_bb = 3;
  cfg.params.f_bb = 1;
  cfg.params.n_trustees = 3;
  cfg.params.h_trustees = 2;
  cfg.params.t_start = 0;
  cfg.params.t_end = 60'000'000;
  cfg.seed = 99;
  cfg.workload = VoteListWorkload::make({0, 0, 1, 0, 1, 1, 0, 0, 0, 1, 0, 0});  // yes wins 8-4
  cfg.crashed_vcs = {2};
  cfg.crashed_bbs = {0};
  cfg.crashed_trustees = {1};
  cfg.voter_template.patience_us = 1'500'000;

  std::printf("== referendum with 1 crashed VC, 1 crashed BB, 1 crashed "
              "trustee ==\n");
  ElectionDriver runner(cfg);
  runner.run();

  std::size_t retried = 0;
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    if (!runner.voter(v).has_receipt()) {
      std::printf("voter %zu failed to obtain a receipt!\n", v);
      return 1;
    }
    if (runner.voter(v).attempts() > 1) ++retried;
  }
  std::printf("all 12 voters got valid receipts; %zu had to blacklist the "
              "crashed node and retry\n",
              retried);

  for (std::size_t b = 1; b < 3; ++b) {  // BB 0 is crashed
    const auto& r = runner.bb_node(b).result();
    if (!r) {
      std::printf("bb %zu did not publish a result\n", b);
      return 1;
    }
    std::printf("bb %zu tally: yes=%llu no=%llu\n", b,
                static_cast<unsigned long long>(r->tally[0]),
                static_cast<unsigned long long>(r->tally[1]));
  }

  client::Auditor auditor(runner.reader());
  if (!auditor.verify_election().passed) {
    std::printf("audit failed\n");
    return 1;
  }
  std::printf("majority-read audit over the two live BB replicas: PASSED\n");

  // Every voter delegates her audit info to a third party who verifies
  // without learning the vote.
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    if (!auditor.verify_delegated(runner.voter(v).audit_info()).passed) {
      std::printf("delegated audit for voter %zu failed\n", v);
      return 1;
    }
  }
  std::printf("delegated audits for all 12 voters: PASSED\n");
  return 0;
}
