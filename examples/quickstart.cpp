// Quickstart: run a tiny end-to-end D-DEMOS election (5 voters, 3 options,
// 4 vote collectors, 3 bulletin boards, 3 trustees) on the deterministic
// simulator through the runtime-neutral ElectionDriver, watch the phases
// through an ElectionObserver, and verify the election as an auditor.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/driver.hpp"

using namespace ddemos;
using namespace ddemos::core;

namespace {

// Phase hooks fire on either backend as the election crosses boundaries.
class PhasePrinter final : public ElectionObserver {
 public:
  void on_phase_entered(ElectionPhase phase, sim::TimePoint at) override {
    const char* name = "?";
    switch (phase) {
      case ElectionPhase::kVoting: name = "voting"; break;
      case ElectionPhase::kConsensus: name = "vote-set consensus"; break;
      case ElectionPhase::kTally: name = "push to BB + tally"; break;
      case ElectionPhase::kResult: name = "result published"; break;
    }
    std::printf("  [t=%8.3fs] phase: %s\n", at / 1e6, name);
  }
};

}  // namespace

int main() {
  DriverConfig cfg;
  cfg.params.election_id = to_bytes("quickstart-2026");
  cfg.params.options = {"alice", "bob", "carol"};
  cfg.params.n_voters = 5;
  cfg.params.n_vc = 4;        // tolerates fv = 1 Byzantine vote collector
  cfg.params.f_vc = 1;
  cfg.params.n_bb = 3;        // tolerates fb = 1 Byzantine bulletin board
  cfg.params.f_bb = 1;
  cfg.params.n_trustees = 3;  // honest threshold ht = 2
  cfg.params.h_trustees = 2;
  cfg.params.t_start = 0;
  cfg.params.t_end = 20'000'000;  // 20 (virtual) seconds of voting
  cfg.seed = 2026;
  // Who each voter chooses; workloads stream, so a million-voter config
  // would look exactly the same (see RandomWorkload / DiskTraceWorkload).
  cfg.workload = VoteListWorkload::make({0, 1, 0, 2, 0});
  PhasePrinter printer;
  cfg.observers = {&printer};

  std::printf("== D-DEMOS quickstart ==\n");
  std::printf("setting up election (EA) and running all phases...\n");
  ElectionDriver driver(cfg);
  ElectionReport report = driver.run();

  for (std::size_t v = 0; v < driver.voter_count(); ++v) {
    const auto& voter = driver.voter(v);
    std::printf("voter %zu: part %c, receipt %s after %zu attempt(s)\n", v,
                voter.used_part() == 0 ? 'A' : 'B',
                voter.has_receipt() ? "VALID" : "MISSING", voter.attempts());
  }

  std::printf("vote-set consensus agreed on %zu cast ballots\n",
              report.vote_set.size());
  std::printf("published tally:");
  for (std::size_t j = 0; j < cfg.params.options.size(); ++j) {
    std::printf(" %s=%llu", cfg.params.options[j].c_str(),
                static_cast<unsigned long long>(report.tally[j]));
  }
  std::printf("\n");
  std::printf("report: %zu/%zu receipts, %llu sim events, %llu message "
              "allocations, %.2fs virtual collection phase\n",
              report.receipts_issued, report.voters_launched,
              static_cast<unsigned long long>(report.events_processed),
              static_cast<unsigned long long>(report.payload_allocations),
              report.phases.collection_s());

  client::Auditor auditor(driver.reader());
  client::AuditReport audit = auditor.verify_election();
  std::printf("full election audit: %s\n",
              audit.passed ? "PASSED" : "FAILED");
  for (const std::string& f : audit.failures) {
    std::printf("  failure: %s\n", f.c_str());
  }
  return audit.passed && report.completed ? 0 : 1;
}
