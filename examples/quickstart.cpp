// Quickstart: run a tiny end-to-end D-DEMOS election (5 voters, 3 options,
// 4 vote collectors, 3 bulletin boards, 3 trustees) on the deterministic
// simulator, print every stage, and verify the election as an auditor.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/runner.hpp"

using namespace ddemos;
using namespace ddemos::core;

int main() {
  RunnerConfig cfg;
  cfg.params.election_id = to_bytes("quickstart-2026");
  cfg.params.options = {"alice", "bob", "carol"};
  cfg.params.n_voters = 5;
  cfg.params.n_vc = 4;        // tolerates fv = 1 Byzantine vote collector
  cfg.params.f_vc = 1;
  cfg.params.n_bb = 3;        // tolerates fb = 1 Byzantine bulletin board
  cfg.params.f_bb = 1;
  cfg.params.n_trustees = 3;  // honest threshold ht = 2
  cfg.params.h_trustees = 2;
  cfg.params.t_start = 0;
  cfg.params.t_end = 20'000'000;  // 20 (virtual) seconds of voting
  cfg.seed = 2026;
  cfg.votes = {0, 1, 0, 2, 0};  // who each voter chooses

  std::printf("== D-DEMOS quickstart ==\n");
  std::printf("setting up election (EA) and running all phases...\n");
  ElectionRunner runner(cfg);
  runner.run_to_completion();

  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    const auto& voter = runner.voter(v);
    std::printf("voter %zu: part %c, receipt %s after %zu attempt(s)\n", v,
                voter.used_part() == 0 ? 'A' : 'B',
                voter.has_receipt() ? "VALID" : "MISSING", voter.attempts());
  }

  const auto& set = runner.vc_node(0).final_vote_set();
  std::printf("vote-set consensus agreed on %zu cast ballots\n", set.size());

  const auto& result = runner.bb_node(0).result();
  std::printf("published tally:");
  for (std::size_t j = 0; j < cfg.params.options.size(); ++j) {
    std::printf(" %s=%llu", cfg.params.options[j].c_str(),
                static_cast<unsigned long long>(result->tally[j]));
  }
  std::printf("\n");

  client::Auditor auditor(runner.reader());
  client::AuditReport report = auditor.verify_election();
  std::printf("full election audit: %s\n",
              report.passed ? "PASSED" : "FAILED");
  for (const std::string& f : report.failures) {
    std::printf("  failure: %s\n", f.c_str());
  }
  return report.passed ? 0 : 1;
}
