// End-to-end verifiability in action: a malicious Election Authority mounts
// the paper's "modification attack" — on one ballot part it associates a
// vote code with the wrong option encoding, hoping to flip a vote. Because
// each voter picks her ballot part at random, an audit of the unused part
// exposes the fraud with probability 1/2 per audited ballot; with theta
// audited ballots the attack escapes with probability 2^-theta (paper
// Theorem 3). This example tampers with several ballots and shows auditors
// catching it.
//
//   ./build/examples/fraud_audit
#include <cstdio>

#include "core/driver.hpp"

using namespace ddemos;
using namespace ddemos::core;

namespace {

// Swap the option encodings of the first two lines of one BB part across
// all BB replicas: vote codes now point at the wrong options (the printed
// ballots still show the original association).
void tamper_with_ballot(ea::SetupArtifacts& arts, std::size_t ballot_idx,
                        std::uint8_t part) {
  for (auto& bb : arts.bb_inits) {
    auto& lines = bb.ballots[ballot_idx].parts[part];
    std::swap(lines[0].encoding, lines[1].encoding);
    std::swap(lines[0].bit_proofs, lines[1].bit_proofs);
    std::swap(lines[0].sum_proof, lines[1].sum_proof);
    std::swap(lines[0].opening_comms, lines[1].opening_comms);
    std::swap(lines[0].zk_comms, lines[1].zk_comms);
  }
  for (auto& t : arts.trustee_inits) {
    auto& lines = t.ballots[ballot_idx].parts[part];
    std::swap(lines[0], lines[1]);
  }
}

}  // namespace

int main() {
  DriverConfig cfg;
  cfg.params.election_id = to_bytes("fraud-demo");
  cfg.params.options = {"incumbent", "challenger"};
  cfg.params.n_voters = 8;
  cfg.params.n_vc = 4;
  cfg.params.f_vc = 1;
  cfg.params.n_bb = 3;
  cfg.params.f_bb = 1;
  cfg.params.n_trustees = 3;
  cfg.params.h_trustees = 2;
  cfg.params.t_start = 0;
  cfg.params.t_end = 40'000'000;
  cfg.seed = 4242;
  cfg.workload = VoteListWorkload::make({1, 1, 1, 1, 1, 1, 1, 1});  // everyone votes "challenger"

  // The malicious EA tampers with both parts of voters 0..2's ballots
  // (swapping which options two vote codes commit to) before any component
  // is initialized.
  cfg.tamper_setup = [](ea::SetupArtifacts& arts) {
    for (std::size_t b = 0; b < 3; ++b) {
      tamper_with_ballot(arts, b, 0);
      tamper_with_ballot(arts, b, 1);
    }
  };

  std::printf("== malicious-EA modification attack vs. auditors ==\n");
  ElectionDriver runner(cfg);
  runner.run();

  client::Auditor auditor(runner.reader());
  std::size_t detected = 0;
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    auto report = auditor.verify_delegated(runner.voter(v).audit_info());
    if (!report.passed) {
      ++detected;
      std::printf("auditor for voter %zu: FRAUD DETECTED (%s)\n", v,
                  report.failures.front().c_str());
    }
  }
  std::printf("%zu delegated audits detected the tampering\n", detected);
  std::printf("(each audited tampered ballot catches the EA with prob. 1/2 "
              "per the paper's Theorem 3)\n");
  return 0;
}
