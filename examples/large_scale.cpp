// Large-scale vote collection: 50,000 registered ballots on the paged disk
// ballot store (the PostgreSQL stand-in), 400 concurrent clients casting
// 1,000 votes against 4 vote collectors. Prints throughput, latency and
// page-cache behaviour — a miniature of the paper's Figure 5a setup.
//
//   ./build/examples/large_scale [n_ballots]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "../bench/common.hpp"

using namespace ddemos;
using namespace ddemos::bench;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  std::string dir = "/tmp/ddemos_large_scale";
  std::filesystem::create_directories(dir);

  std::printf("== large-scale vote collection: %zu registered ballots ==\n",
              n);
  std::printf("generating EA initialization data onto disk...\n");
  VoteCollectionConfig cfg;
  cfg.n_vc = 4;
  cfg.f_vc = 1;
  cfg.concurrency = 400;
  cfg.casts = 1000;
  cfg.n_ballots = n;
  cfg.options = 2;
  cfg.seed = 7;
  cfg.disk_store = true;
  cfg.disk_dir = dir;
  cfg.cache_pages = 64;

  VoteCollectionResult r = run_vote_collection(cfg);
  std::printf("cast %zu votes: %.0f receipts/sec, mean latency %.1f ms\n",
              r.completed, r.throughput_ops, r.mean_latency_ms);

  // Show the disk store behaviour directly.
  store::DiskBallotSource src(dir + "/vc0.ballots", 64);
  std::printf("store: %zu ballots on disk\n", src.size());
  crypto::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    (void)src.find(src.serial_at(rng.below(src.size())));
  }
  std::printf("2000 random lookups: %llu page reads, %llu cache hits\n",
              static_cast<unsigned long long>(src.page_reads()),
              static_cast<unsigned long long>(src.cache_hits()));
  std::filesystem::remove_all(dir);
  return 0;
}
