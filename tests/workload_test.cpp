// Workload sources for the election driver: round-robin parity with the
// old dense-vector defaults, seeded-random determinism, abstention
// handling in the expected tally, closed-loop completion, disk-trace
// replay, and the O(1)-memory configuration of a million-slot election.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/driver.hpp"
#include "util/error.hpp"

namespace ddemos::core {
namespace {

ElectionParams tiny_params(std::size_t voters, std::size_t options = 2) {
  ElectionParams p;
  p.election_id = to_bytes("workload-test");
  for (std::size_t i = 0; i < options; ++i) {
    p.options.push_back("opt" + std::to_string(i));
  }
  p.n_voters = voters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 30'000'000;
  return p;
}

TEST(Workload, RoundRobinMatchesOldRunnerDefaults) {
  // The old ElectionRunner defaulted missing vote entries to option
  // v % m and spread cast times evenly over the first three quarters of
  // the election window: vote_at = t_start + 3/4*window * (v+1)/(n+1).
  ElectionParams p = tiny_params(5, 3);
  p.t_start = 1'000'000;
  p.t_end = 9'000'000;
  RoundRobinWorkload wl;
  wl.bind(p);
  sim::Duration window = (p.t_end - p.t_start) * 3 / 4;  // 6s
  for (std::size_t v = 0; v < 5; ++v) {
    auto in = wl.next();
    ASSERT_TRUE(in.has_value());
    EXPECT_EQ(in->slot, v);
    EXPECT_EQ(in->option, v % 3);
    EXPECT_EQ(in->cast_at,
              p.t_start + static_cast<sim::Duration>(
                              static_cast<std::uint64_t>(window) * (v + 1) /
                              (p.n_voters + 1)));
  }
  EXPECT_FALSE(wl.next().has_value());
  // bind() rewinds: a second pass yields the same stream.
  wl.bind(p);
  auto again = wl.next();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->slot, 0u);
}

TEST(Workload, VoteListFallsBackToRoundRobinBeyondList) {
  ElectionParams p = tiny_params(4, 2);
  VoteListWorkload wl({1, kAbstain});
  wl.bind(p);
  EXPECT_EQ(wl.next()->option, 1u);
  EXPECT_EQ(wl.next()->option, kAbstain);
  EXPECT_EQ(wl.next()->option, 2u % 2);  // slot 2: round-robin
  EXPECT_EQ(wl.next()->option, 3u % 2);
  EXPECT_FALSE(wl.next().has_value());
}

TEST(Workload, SeededRandomIsDeterministicAcrossRuns) {
  ElectionParams p = tiny_params(200, 4);
  auto stream = [&](std::uint64_t seed) {
    RandomWorkload wl(seed, 0.25);
    wl.bind(p);
    std::vector<std::size_t> options;
    while (auto in = wl.next()) options.push_back(in->option);
    return options;
  };
  auto a = stream(99), b = stream(99), c = stream(100);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);  // same seed, same stream
  EXPECT_NE(a, c);  // different seed diverges
  std::size_t abstained = 0;
  for (std::size_t o : a) abstained += o == kAbstain ? 1 : 0;
  EXPECT_GT(abstained, 0u);  // 25% abstention actually happens
  EXPECT_LT(abstained, 200u);
}

TEST(Workload, AbstainSlotsExcludedFromExpectedTally) {
  DriverConfig cfg;
  cfg.params = tiny_params(5, 2);
  cfg.seed = 31;
  cfg.workload = VoteListWorkload::make({0, kAbstain, 1, kAbstain, 0});
  ElectionDriver driver(cfg);
  ElectionReport r = driver.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.voters_launched, 3u);  // abstainers are never instantiated
  EXPECT_EQ(r.receipts_issued, 3u);
  EXPECT_EQ(r.expected_tally, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(r.tally, r.expected_tally);
}

TEST(Workload, ClosedLoopCompletesEveryCast) {
  // The closed-loop source drives the same full election through one
  // multiplexing client (the absorbed bench LoadGen): every cast must
  // complete, and the published tally must match the client's per-option
  // completion counts exactly.
  DriverConfig cfg;
  cfg.params = tiny_params(8, 2);
  cfg.seed = 32;
  cfg.workload = ClosedLoopWorkload::make(/*casts=*/6, /*concurrency=*/2, 7);
  ElectionDriver driver(cfg);
  ElectionReport r = driver.run();
  ASSERT_TRUE(r.completed);
  ASSERT_NE(driver.load_client(), nullptr);
  EXPECT_TRUE(driver.load_client()->done());
  EXPECT_EQ(driver.load_client()->completed(), 6u);
  EXPECT_EQ(r.receipts_issued, 6u);
  EXPECT_EQ(r.voters_launched, 6u);
  std::uint64_t sum = 0;
  for (std::uint64_t t : r.expected_tally) sum += t;
  EXPECT_EQ(sum, 6u);
  EXPECT_EQ(r.tally, r.expected_tally);
  EXPECT_GT(driver.load_client()->mean_latency_us(), 0.0);
}

TEST(Workload, DiskTraceRoundTripDrivesElection) {
  std::string path = "/tmp/ddemos_workload_trace_small.bin";
  {
    DiskTraceWorkload::Builder b(path);
    b.add(0, 1, 100'000);
    b.add(1, kAbstain, 0);
    b.add(2, 0, 200'000);
    b.add(3, 1, 300'000);
    b.finish();
  }
  DriverConfig cfg;
  cfg.params = tiny_params(4, 2);
  cfg.seed = 33;
  cfg.workload = DiskTraceWorkload::make(path);
  ElectionDriver driver(cfg);
  ElectionReport r = driver.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.voters_launched, 3u);
  EXPECT_EQ(r.expected_tally, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(r.tally, r.expected_tally);
  std::filesystem::remove(path);
}

TEST(Workload, UnfinishedTraceIsRejected) {
  // A Builder dropped without finish() must not replay as a silently empty
  // electorate: the reader rejects the unfinished-count sentinel.
  std::string path = "/tmp/ddemos_workload_trace_unfinished.bin";
  {
    DiskTraceWorkload::Builder b(path);
    b.add(0, 0, 0);
  }  // destroyed without finish()
  EXPECT_THROW(DiskTraceWorkload reader(path), ProtocolError);
  std::filesystem::remove(path);
}

TEST(Workload, MillionSlotConfigIsConstantSize) {
  // The acceptance bar for the streaming redesign: a 10^6-slot election is
  // configured without any O(V) vector in the driver config. The trace
  // lives on disk; the config holds a handle and streams lazily.
  std::string path = "/tmp/ddemos_workload_trace_1m.bin";
  {
    DiskTraceWorkload::Builder b(path);
    for (std::size_t v = 0; v < 1'000'000; ++v) {
      b.add(v, v % 4, static_cast<sim::TimePoint>(v) * 10);
    }
    b.finish();
  }
  ElectionParams p = tiny_params(1'000'000, 4);
  DriverConfig cfg;
  cfg.params = p;
  cfg.workload = DiskTraceWorkload::make(path);
  // Ballot data would equally stay on disk: the store factory hands each
  // VC a paged DiskBallotSource instead of the in-memory default.
  cfg.store_factory = [](const VcInit& init) {
    return std::make_shared<store::DiskBallotSource>(
        "/tmp/ddemos_vc" + std::to_string(init.node_index) + ".ballots", 64);
  };
  // The config itself is a fixed-size struct: no per-voter storage exists
  // anywhere in it (the old RunnerConfig carried std::vector votes).
  static_assert(sizeof(DriverConfig) < 2048);
  auto* trace = static_cast<DiskTraceWorkload*>(cfg.workload.get());
  EXPECT_EQ(trace->size(), 1'000'000u);
  // Stream a prefix lazily — O(1) memory regardless of trace length.
  trace->bind(p);
  for (std::size_t v = 0; v < 1000; ++v) {
    auto in = trace->next();
    ASSERT_TRUE(in.has_value());
    EXPECT_EQ(in->slot, v);
    EXPECT_EQ(in->option, v % 4);
  }
  std::filesystem::remove(path);
}

TEST(Workload, DriverEventBudgetIsConfigurableAndDiagnostic) {
  // Satellite: the simulator's event budget flows through the driver
  // config, and exhaustion reports the processed count and virtual time.
  DriverConfig cfg;
  cfg.params = tiny_params(3, 2);
  cfg.seed = 34;
  cfg.max_events = 200;  // far too small for a full election
  ElectionDriver driver(cfg);
  try {
    driver.run();
    FAIL() << "expected ProtocolError from event-budget exhaustion";
  } catch (const ProtocolError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("200 events processed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("virtual time"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace ddemos::core
