// Runtime parity: the exact same election, configured once as a
// DriverConfig with shared EA artifacts, driven through ElectionDriver on
// both backends — the deterministic simulator and the real multi-threaded
// transport — and the two ElectionReports agree on tally, vote set, and
// receipt count (and, stronger, on the receipt values themselves).
// Also pins down simulator determinism: a fixed seed reproduces
// bit-identical tallies and phase timings across runs.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "core/tcp_launcher.hpp"
#include "net/thread_net.hpp"
#include "test_clock.hpp"

namespace ddemos::core {
namespace {

using ddemos::test::scaled;

ElectionParams parity_params() {
  ElectionParams p;
  p.election_id = to_bytes("runtime-parity");
  p.options = {"yes", "no"};
  p.n_voters = 3;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = scaled(1'500'000);  // short enough for a wall-clock run
  return p;
}

DriverConfig parity_config(const ElectionParams& p) {
  DriverConfig cfg;
  cfg.params = p;
  cfg.seed = 2026;
  cfg.workload = VoteListWorkload::make(
      {0, 1, 0},
      [](std::size_t) -> sim::TimePoint { return scaled(50'000); });
  cfg.voter_template.patience_us = scaled(400'000);
  cfg.trustee_options.poll_interval_us = scaled(100'000);
  cfg.wall_timeout_us = scaled(60'000'000);
  return cfg;
}

TEST(RuntimeParity, SameElectionOnSimAndThreads) {
  ElectionParams p = parity_params();
  DriverConfig cfg = parity_config(p);
  // One EA setup shared by both backends.
  cfg.artifacts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, cfg.seed, false, 64}));

  // Backend 1: deterministic simulator (driver-owned).
  ElectionDriver sim_driver(cfg);
  ElectionReport sim_report = sim_driver.run();

  // Backend 2: real threads, same build path, same artifacts.
  net::ThreadNet net;
  ElectionDriver net_driver(net, cfg);
  ASSERT_EQ(net.node_count(), sim_driver.host().node_count());
  for (sim::NodeId id = 0; id < net.node_count(); ++id) {
    EXPECT_EQ(net.node_name(id), sim_driver.host().node_name(id));
  }
  ElectionReport net_report = net_driver.run();
  ASSERT_TRUE(net_report.completed);
  ASSERT_TRUE(sim_report.completed);

  // Identical outcomes across runtimes.
  ASSERT_EQ(sim_report.tally, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(net_report.tally, sim_report.tally);
  EXPECT_EQ(net_report.vote_set, sim_report.vote_set);
  EXPECT_EQ(net_report.receipts_issued, sim_report.receipts_issued);
  EXPECT_EQ(net_report.receipts, sim_report.receipts);
  EXPECT_EQ(net_report.expected_tally, sim_report.expected_tally);
  EXPECT_EQ(sim_report.expected_tally, sim_report.tally);
}

// Third backend column: the identical election again, this time with every
// VC/BB/trustee in its own OS process and all protocol traffic over real
// TCP sockets. Same config, same (params, seed) — each node process
// recomputes the EA setup deterministically, so the multi-process cluster
// must land on the exact same tally, agreed vote set, and receipt values
// as the single-process backends.
TEST(RuntimeParity, SameElectionAcrossProcessesOnTcp) {
  ElectionParams p = parity_params();
  DriverConfig cfg = parity_config(p);
  cfg.artifacts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, cfg.seed, false, 64}));

  ElectionDriver sim_driver(cfg);
  ElectionReport sim_report = sim_driver.run();
  ASSERT_TRUE(sim_report.completed);

  TcpLauncher launcher(TcpLauncher::spec_from(cfg));
  ElectionReport tcp_report = launcher.run_election(cfg);
  ASSERT_TRUE(tcp_report.completed);

  ASSERT_EQ(sim_report.tally, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(tcp_report.tally, sim_report.tally);
  EXPECT_EQ(tcp_report.vote_set, sim_report.vote_set);
  EXPECT_EQ(tcp_report.receipts_issued, sim_report.receipts_issued);
  EXPECT_EQ(tcp_report.receipts, sim_report.receipts);
  EXPECT_EQ(tcp_report.expected_tally, sim_report.expected_tally);

  // Every VC node reported stats from its own process, and the merged VC
  // totals agree with the single-process run on receipt counters (message
  // timings are wall-clock there, so only counters are comparable).
  ASSERT_EQ(tcp_report.vc_stats.size(), p.n_vc);
  EXPECT_EQ(tcp_report.vc_totals.receipts_issued,
            sim_report.vc_totals.receipts_issued);
  // One accounting row per OS process (launcher + every protocol node),
  // with real frames on the wire.
  ASSERT_EQ(tcp_report.process_accounting.size(),
            p.n_vc + p.n_bb + p.n_trustees + 1);
  EXPECT_GT(tcp_report.process_accounting[0].frames_sent, 0u);
}

// The same election with intra-node VC sharding (vc_shards = 4): the
// deterministic simulator (one virtual processor per shard) and ThreadNet
// (one worker thread per shard, shard-affine dispatch) agree on tallies,
// receipts, the agreed vote set, and the per-shard stats. Structural
// per-shard assertions (row counts, sums matching node totals, votes
// landing only on the shards that own a cast serial) are timing-proof and
// always checked on both backends. Exact cell-by-cell equality of the
// voting-phase counters additionally needs both runs retry-free — a voter
// whose patience expires under host load resubmits to a different seeded
// VC, legitimately shifting counters between nodes — so it is gated on
// "one delivered VOTE per voter" holding on both backends.
TEST(RuntimeParity, ShardedElectionAgreesAcrossBackends) {
  ElectionParams p = parity_params();
  DriverConfig cfg = parity_config(p);
  cfg.vc_shards = 4;
  // Keep patience just under the voting window: a slow (loaded) host then
  // delays receipts instead of triggering mid-window resubmissions.
  cfg.voter_template.patience_us = scaled(1'300'000);
  cfg.artifacts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, cfg.seed, false, 64}));

  ElectionDriver sim_driver(cfg);
  ElectionReport sim_report = sim_driver.run();

  net::ThreadNet net;
  ElectionDriver net_driver(net, cfg);
  ElectionReport net_report = net_driver.run();

  ASSERT_TRUE(sim_report.completed);
  ASSERT_TRUE(net_report.completed);
  ASSERT_EQ(sim_report.tally, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(net_report.tally, sim_report.tally);
  EXPECT_EQ(net_report.vote_set, sim_report.vote_set);
  EXPECT_EQ(net_report.receipts, sim_report.receipts);
  EXPECT_EQ(net_report.receipts_issued, sim_report.receipts_issued);
  EXPECT_EQ(net_report.expected_tally, sim_report.expected_tally);

  // The 3 cast serials are the first 3 instances, so shard 3 of every node
  // must never see a per-ballot message on either backend — shard-affine
  // dispatch is keyed by serial, independent of timing.
  ASSERT_EQ(sim_report.vc_shard_stats.size(), p.n_vc);
  ASSERT_EQ(net_report.vc_shard_stats.size(), p.n_vc);
  for (const ElectionReport* rep : {&sim_report, &net_report}) {
    for (std::size_t n = 0; n < p.n_vc; ++n) {
      const auto& shards = rep->vc_shard_stats[n];
      ASSERT_EQ(shards.size(), 4u);
      std::uint64_t votes = 0, receipts = 0, rejected = 0, handled = 0;
      for (const vc::VcShardStats& s : shards) {
        votes += s.votes_received;
        receipts += s.receipts_issued;
        rejected += s.rejected_votes;
        handled += s.handled_messages;
      }
      EXPECT_EQ(votes, rep->vc_stats[n].votes_received) << "vc" << n;
      EXPECT_EQ(receipts, rep->vc_stats[n].receipts_issued) << "vc" << n;
      EXPECT_EQ(rejected, rep->vc_stats[n].rejected_votes) << "vc" << n;
      EXPECT_GT(handled, 0u) << "vc" << n;
      EXPECT_EQ(shards[3].votes_received, 0u) << "vc" << n;
      EXPECT_EQ(shards[3].receipts_issued, 0u) << "vc" << n;
      EXPECT_EQ(shards[3].endorsements_signed, 0u) << "vc" << n;
    }
  }

  auto retry_free = [&](const ElectionReport& rep) {
    std::uint64_t votes = 0;
    for (const auto& s : rep.vc_stats) votes += s.votes_received;
    return votes == 3;
  };
  if (retry_free(sim_report) && retry_free(net_report)) {
    for (std::size_t n = 0; n < p.n_vc; ++n) {
      for (std::size_t s = 0; s < 4; ++s) {
        const auto& sim_s = sim_report.vc_shard_stats[n][s];
        const auto& net_s = net_report.vc_shard_stats[n][s];
        EXPECT_EQ(net_s.votes_received, sim_s.votes_received)
            << "vc" << n << " shard " << s;
        EXPECT_EQ(net_s.receipts_issued, sim_s.receipts_issued)
            << "vc" << n << " shard " << s;
        EXPECT_EQ(net_s.rejected_votes, sim_s.rejected_votes)
            << "vc" << n << " shard " << s;
        EXPECT_EQ(net_s.endorsements_signed, sim_s.endorsements_signed)
            << "vc" << n << " shard " << s;
      }
    }
  }
}

TEST(RuntimeParity, FixedSeedIsBitIdenticalAcrossRuns) {
  struct Trace {
    std::vector<std::uint64_t> tally;
    std::vector<sim::TimePoint> timings;
    std::uint64_t delivered;
  };
  auto run = [] {
    DriverConfig cfg;
    cfg.params = parity_params();
    cfg.params.t_end = 10'000'000;
    cfg.seed = 777;
    cfg.workload = VoteListWorkload::make({1, 0, 1});
    ElectionDriver driver(cfg);
    ElectionReport report = driver.run();
    Trace t;
    t.tally = report.tally;
    for (const vc::VcStats& s : report.vc_stats) {
      t.timings.push_back(s.voting_ended_at);
      t.timings.push_back(s.consensus_done_at);
      t.timings.push_back(s.push_done_at);
    }
    t.delivered = report.messages_delivered;
    return t;
  };
  Trace a = run();
  Trace b = run();
  EXPECT_EQ(a.tally, b.tally);
  EXPECT_EQ(a.timings, b.timings);  // phase timings bit-identical
  EXPECT_EQ(a.delivered, b.delivered);
}

// Phase observers fire in order on both backends.
class PhaseRecorder final : public ElectionObserver {
 public:
  void on_phase_entered(ElectionPhase phase, sim::TimePoint) override {
    phases.push_back(phase);
  }
  void on_complete(const ElectionReport& r) override {
    completed = r.completed;
  }
  std::vector<ElectionPhase> phases;
  bool completed = false;
};

TEST(RuntimeParity, ObserverSeesOrderedPhasesOnBothBackends) {
  ElectionParams p = parity_params();
  auto arts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, 2026, false, 64}));

  auto run_on = [&](sim::RuntimeHost* host) {
    DriverConfig cfg = parity_config(p);
    cfg.artifacts = arts;
    PhaseRecorder rec;
    cfg.observers = {&rec};
    if (host) {
      ElectionDriver driver(*host, cfg);
      driver.run();
    } else {
      ElectionDriver driver(cfg);
      driver.run();
    }
    return rec;
  };

  PhaseRecorder sim_rec = run_on(nullptr);
  net::ThreadNet net;
  PhaseRecorder net_rec = run_on(&net);

  for (const PhaseRecorder* rec : {&sim_rec, &net_rec}) {
    ASSERT_TRUE(rec->completed);
    ASSERT_EQ(rec->phases.size(), 4u);
    EXPECT_EQ(rec->phases[0], ElectionPhase::kVoting);
    EXPECT_EQ(rec->phases[1], ElectionPhase::kConsensus);
    EXPECT_EQ(rec->phases[2], ElectionPhase::kTally);
    EXPECT_EQ(rec->phases[3], ElectionPhase::kResult);
  }
}

}  // namespace
}  // namespace ddemos::core
