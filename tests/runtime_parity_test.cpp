// Runtime parity: the exact same election, built once through the shared
// sim::RuntimeHost interface, completes on both backends — the
// deterministic simulator and the real multi-threaded transport — with
// identical tallies, identical final vote sets and the same voter receipts.
// Also pins down simulator determinism: a fixed seed reproduces
// bit-identical tallies and phase timings across runs.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "net/thread_net.hpp"

namespace ddemos::core {
namespace {

ElectionParams parity_params() {
  ElectionParams p;
  p.election_id = to_bytes("runtime-parity");
  p.options = {"yes", "no"};
  p.n_voters = 3;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 1'500'000;  // short enough for a wall-clock run
  return p;
}

RunnerConfig parity_config(const ElectionParams& p) {
  RunnerConfig cfg;
  cfg.params = p;
  cfg.seed = 2026;
  cfg.votes = {0, 1, 0};
  cfg.vote_time = [](std::size_t) { return 50'000; };
  cfg.voter_template.patience_us = 400'000;
  cfg.trustee_options.poll_interval_us = 100'000;
  return cfg;
}

struct Outcome {
  std::vector<std::uint64_t> tally;
  std::vector<VoteSetEntry> vote_set;
  std::vector<std::uint64_t> receipts;  // observed by each voter, in order
};

Outcome harvest(sim::RuntimeHost& host, const ElectionTopology& topo) {
  Outcome out;
  auto& bb = dynamic_cast<bb::BbNode&>(host.process(topo.bb_ids[0]));
  if (bb.result()) out.tally = bb.result()->tally;
  out.vote_set = dynamic_cast<vc::VcNode&>(host.process(topo.vc_ids[0]))
                     .final_vote_set();
  for (sim::NodeId id : topo.voter_ids) {
    auto& voter = dynamic_cast<client::Voter&>(host.process(id));
    EXPECT_TRUE(voter.has_receipt());
    // has_receipt means the receipt on the wire matched the printed one.
    out.receipts.push_back(voter.expected_receipt());
  }
  return out;
}

TEST(RuntimeParity, SameElectionOnSimAndThreads) {
  ElectionParams p = parity_params();
  RunnerConfig cfg = parity_config(p);
  ea::SetupArtifacts arts = ea::ea_setup({p, cfg.seed, false, 64});

  // Backend 1: deterministic simulator.
  sim::Simulation sim(cfg.seed);
  ElectionTopology sim_topo = build_election(sim, arts, cfg);
  sim.start();
  sim.run_until_idle();
  Outcome sim_out = harvest(sim, sim_topo);

  // Backend 2: real threads, same build path, same artifacts.
  net::ThreadNet net;
  ElectionTopology net_topo = build_election(net, arts, cfg);
  ASSERT_EQ(net.node_count(), sim.node_count());
  for (sim::NodeId id = 0; id < net.node_count(); ++id) {
    EXPECT_EQ(net.node_name(id), sim.node_name(id));
  }
  net.start();
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {  // up to 15 s wall
    net::ThreadNet::sleep_ms(50);
    done = true;
    for (sim::NodeId id : net_topo.bb_ids) {
      done = done &&
             dynamic_cast<bb::BbNode&>(net.process(id)).result_published();
    }
  }
  net.stop();
  Outcome net_out = harvest(net, net_topo);

  // Identical outcomes across runtimes.
  ASSERT_EQ(sim_out.tally, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(net_out.tally, sim_out.tally);
  EXPECT_EQ(net_out.vote_set, sim_out.vote_set);
  EXPECT_EQ(net_out.receipts, sim_out.receipts);
}

TEST(RuntimeParity, FixedSeedIsBitIdenticalAcrossRuns) {
  struct Trace {
    std::vector<std::uint64_t> tally;
    std::vector<sim::TimePoint> timings;
    std::uint64_t delivered;
  };
  auto run = [] {
    RunnerConfig cfg;
    cfg.params = parity_params();
    cfg.params.t_end = 10'000'000;
    cfg.seed = 777;
    cfg.votes = {1, 0, 1};
    ElectionRunner runner(cfg);
    runner.run_to_completion();
    Trace t;
    t.tally = runner.bb_node(0).result()->tally;
    for (std::size_t i = 0; i < cfg.params.n_vc; ++i) {
      const vc::VcStats& s = runner.vc_node(i).stats();
      t.timings.push_back(s.voting_ended_at);
      t.timings.push_back(s.consensus_done_at);
      t.timings.push_back(s.push_done_at);
    }
    t.delivered = runner.simulation().delivered_messages();
    return t;
  };
  Trace a = run();
  Trace b = run();
  EXPECT_EQ(a.tally, b.tally);
  EXPECT_EQ(a.timings, b.timings);  // phase timings bit-identical
  EXPECT_EQ(a.delivered, b.delivered);
}

}  // namespace
}  // namespace ddemos::core
