// Transport independence: the same protocol state machines that run on the
// deterministic simulator complete a full election over the real
// multi-threaded transport (net::ThreadNet) with wall-clock timers. The
// completion wait is ThreadNet::run_to_quiescence — a condition-variable
// wait signalled by the workers after every handler — not sleep polling.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "net/thread_net.hpp"
#include "test_clock.hpp"
#include "util/error.hpp"

namespace ddemos::core {
namespace {

using ddemos::test::scaled;

ElectionParams e2e_params() {
  ElectionParams p;
  p.election_id = to_bytes("threadnet-e2e");
  p.options = {"yes", "no"};
  p.n_voters = 3;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = scaled(1'500'000);  // 1.5 real seconds of voting
  return p;
}

TEST(ThreadNetE2E, FullElectionOverRealThreads) {
  DriverConfig cfg;
  cfg.params = e2e_params();
  cfg.seed = 77;
  cfg.workload = VoteListWorkload::make(
      {0, 1, 0},
      [](std::size_t) -> sim::TimePoint { return scaled(50'000); });
  cfg.voter_template.patience_us = scaled(400'000);
  cfg.trustee_options.poll_interval_us = scaled(100'000);
  cfg.wall_timeout_us = scaled(30'000'000);

  net::ThreadNet net;
  ElectionDriver driver(net, cfg);
  ElectionReport report = driver.run();

  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.receipts_issued, 3u);
  for (std::size_t v = 0; v < driver.voter_count(); ++v) {
    EXPECT_TRUE(driver.voter(v).has_receipt()) << "voter " << v;
  }
  EXPECT_EQ(report.tally, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(report.expected_tally, report.tally);
  for (std::size_t b = 0; b < cfg.params.n_bb; ++b) {
    ASSERT_TRUE(driver.bb_node(b).result_published());
    EXPECT_EQ(driver.bb_node(b).result()->tally,
              (std::vector<std::uint64_t>{2, 1}));
  }
  for (std::size_t i = 0; i < cfg.params.n_vc; ++i) {
    EXPECT_TRUE(driver.vc_node(i).push_complete());
    EXPECT_EQ(driver.vc_node(i).final_vote_set().size(), 3u);
  }
  EXPECT_EQ(report.vote_set.size(), 3u);

  // stop() after completion (run() already stopped the net) is idempotent:
  // repeated calls are no-ops and node state stays readable.
  net.stop();
  net.stop();
  EXPECT_TRUE(driver.bb_node(0).result_published());
}

// The completion wait surface itself: a predicate over node state turns
// true and run_to_quiescence returns promptly, without a predicate it
// refuses (ThreadNet has no natural quiescence), and a too-short wall
// budget reports failure instead of hanging.
class Echo final : public sim::Process {
 public:
  void on_message(sim::NodeId from, const net::Buffer& payload) override {
    // Reply to the first message only: a single bounded round trip, no
    // infinite a<->b bounce spinning workers for the rest of the test.
    if (++received == 1 && from != ctx().self()) ctx().send(from, payload);
  }
  std::atomic<int> received{0};  // read by the completion predicate
};

// Sends a single message to its target at start — handlers only ever run
// on worker threads, as the transport's serialization invariant requires.
class Kicker final : public sim::Process {
 public:
  explicit Kicker(sim::NodeId to) : to_(to) {}
  void on_start() override { ctx().send(to_, to_bytes("k")); }
  void on_message(sim::NodeId, const net::Buffer&) override {}

 private:
  sim::NodeId to_;
};

TEST(ThreadNetE2E, RunToQuiescenceWaitsOnPredicate) {
  net::ThreadNet net;
  auto b = net.add_node(std::make_unique<Echo>(), "b");
  net.add_node(std::make_unique<Kicker>(b), "kicker");
  auto* pb = dynamic_cast<Echo*>(&net.process(b));
  sim::RunOptions opts;
  opts.wall_timeout_us = 10'000'000;
  // Auto-starts the net; the kicker's message lands on b's worker.
  EXPECT_TRUE(net.run_to_quiescence(
      [&] { return pb->received.load() >= 1; }, opts));

  EXPECT_THROW(net.run_to_quiescence(nullptr, opts), ProtocolError);

  sim::RunOptions tiny;
  tiny.wall_timeout_us = 1'000;  // 1ms: the never-true predicate times out
  EXPECT_FALSE(net.run_to_quiescence([] { return false; }, tiny));

  net.stop();
  net.stop();  // idempotent
}

}  // namespace
}  // namespace ddemos::core
