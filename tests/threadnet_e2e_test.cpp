// Transport independence: the same protocol state machines that run on the
// deterministic simulator complete a full election over the real
// multi-threaded transport (net::ThreadNet) with wall-clock timers.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "net/thread_net.hpp"

namespace ddemos::core {
namespace {

TEST(ThreadNetE2E, FullElectionOverRealThreads) {
  ElectionParams p;
  p.election_id = to_bytes("threadnet-e2e");
  p.options = {"yes", "no"};
  p.n_voters = 3;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 1'500'000;  // 1.5 real seconds of voting

  ea::SetupArtifacts arts = ea::ea_setup({p, 77, false, 64});

  net::ThreadNet net;
  std::vector<sim::NodeId> vc_ids, bb_ids;
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    vc_ids.push_back(static_cast<sim::NodeId>(i));
  }
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    bb_ids.push_back(static_cast<sim::NodeId>(p.n_vc + i));
  }
  std::vector<vc::VcNode*> vcs;
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    auto source = std::make_shared<store::MemoryBallotSource>(
        arts.vc_inits[i].ballots);
    auto id = net.add_node(
        std::make_unique<vc::VcNode>(arts.vc_inits[i], source, vc_ids,
                                     bb_ids),
        "vc" + std::to_string(i));
    vcs.push_back(dynamic_cast<vc::VcNode*>(&net.process(id)));
  }
  std::vector<bb::BbNode*> bbs;
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    auto id = net.add_node(std::make_unique<bb::BbNode>(arts.bb_inits[i]),
                           "bb" + std::to_string(i));
    bbs.push_back(dynamic_cast<bb::BbNode*>(&net.process(id)));
  }
  for (std::size_t i = 0; i < p.n_trustees; ++i) {
    trustee::TrusteeNode::Options topts;
    topts.poll_interval_us = 100'000;
    net.add_node(std::make_unique<trustee::TrusteeNode>(
                     arts.trustee_inits[i], bb_ids, topts),
                 "trustee" + std::to_string(i));
  }
  std::vector<client::Voter*> voters;
  for (std::size_t v = 0; v < p.n_voters; ++v) {
    client::Voter::Config vcfg;
    vcfg.ballot = arts.voter_ballots[v];
    vcfg.option_index = v % 2;
    vcfg.vc_ids = vc_ids;
    vcfg.patience_us = 400'000;
    vcfg.vote_at = 50'000;
    vcfg.seed = 1000 + v;
    auto id = net.add_node(std::make_unique<client::Voter>(vcfg),
                           "voter" + std::to_string(v));
    voters.push_back(dynamic_cast<client::Voter*>(&net.process(id)));
  }

  net.start();
  // Wait for the full pipeline: receipts -> consensus -> BB result.
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {  // up to 15 s wall
    net::ThreadNet::sleep_ms(50);
    done = true;
    for (auto* b : bbs) done = done && b->result_published();
  }
  net.stop();

  for (std::size_t v = 0; v < voters.size(); ++v) {
    EXPECT_TRUE(voters[v]->has_receipt()) << "voter " << v;
  }
  for (auto* b : bbs) {
    ASSERT_TRUE(b->result_published());
    EXPECT_EQ(b->result()->tally, (std::vector<std::uint64_t>{2, 1}));
  }
  for (auto* v : vcs) {
    EXPECT_TRUE(v->push_complete());
    EXPECT_EQ(v->final_vote_set().size(), 3u);
  }
}

}  // namespace
}  // namespace ddemos::core
