// Shared wall-clock budget scaling for tests that drive ThreadNet.
// Budgets (election hours, voter patience, completion caps) assume an
// unencumbered machine; instrumented builds — the ThreadSanitizer CI job
// runs 10-20x slower — stretch every budget by DDEMOS_TEST_TIME_SCALE so
// timing-dependent assertions test the protocol, not the host's speed.
// Virtual-time (simulator) assertions are unaffected by the scale.
#pragma once

#include <cstdlib>

#include "sim/runtime.hpp"

namespace ddemos::test {

inline sim::Duration scaled(sim::Duration us) {
  static const sim::Duration factor = [] {
    const char* v = std::getenv("DDEMOS_TEST_TIME_SCALE");
    long f = v ? std::atol(v) : 1;
    return static_cast<sim::Duration>(f < 1 ? 1 : f);
  }();
  return us * factor;
}

}  // namespace ddemos::test
