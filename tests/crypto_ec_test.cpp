#include <gtest/gtest.h>

#include "crypto/ec.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ddemos::crypto {
namespace {

TEST(Ec, GeneratorOnCurve) {
  EXPECT_TRUE(on_curve(to_affine(ec_generator())));
  EXPECT_TRUE(on_curve(to_affine(ec_generator_h())));
  EXPECT_FALSE(ec_eq(ec_generator(), ec_generator_h()));
}

TEST(Ec, KnownMultiple) {
  // 2G for secp256k1 (well-known test vector).
  AffinePoint g2 = to_affine(ec_double(ec_generator()));
  EXPECT_EQ(to_hex(g2.x.to_bytes_be()),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(to_hex(g2.y.to_bytes_be()),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Ec, AddCommutesAndAssociates) {
  Rng rng(21);
  Point p = ec_mul_g(random_scalar(rng));
  Point q = ec_mul_g(random_scalar(rng));
  Point r = ec_mul_g(random_scalar(rng));
  EXPECT_TRUE(ec_eq(ec_add(p, q), ec_add(q, p)));
  EXPECT_TRUE(ec_eq(ec_add(ec_add(p, q), r), ec_add(p, ec_add(q, r))));
}

TEST(Ec, IdentityLaws) {
  Rng rng(22);
  Point p = ec_mul_g(random_scalar(rng));
  Point inf = Point::infinity();
  EXPECT_TRUE(ec_eq(ec_add(p, inf), p));
  EXPECT_TRUE(ec_eq(ec_add(inf, p), p));
  EXPECT_TRUE(ec_add(p, ec_neg(p)).is_infinity());
}

TEST(Ec, MulDistributes) {
  Rng rng(23);
  Fn a = random_scalar(rng);
  Fn b = random_scalar(rng);
  // (a+b)G == aG + bG
  EXPECT_TRUE(ec_eq(ec_mul_g(a + b), ec_add(ec_mul_g(a), ec_mul_g(b))));
  // a(bG) == (ab)G
  EXPECT_TRUE(ec_eq(ec_mul(a, ec_mul_g(b)), ec_mul_g(a * b)));
}

TEST(Ec, MulByOrderIsInfinity) {
  EXPECT_TRUE(ec_mul_g(Fn::zero()).is_infinity());
  // n*G = 0 means (n-1)G = -G.
  Fn nm1 = Fn::zero() - Fn::one();
  EXPECT_TRUE(ec_eq(ec_mul_g(nm1), ec_neg(ec_generator())));
}

TEST(Ec, EncodeDecodeRoundTrip) {
  Rng rng(24);
  for (int i = 0; i < 10; ++i) {
    Point p = ec_mul_g(random_scalar(rng));
    Bytes enc = ec_encode(p);
    EXPECT_EQ(enc.size(), 33u);
    EXPECT_TRUE(ec_eq(ec_decode(enc), p));
  }
  // Infinity round-trips.
  EXPECT_TRUE(ec_decode(ec_encode(Point::infinity())).is_infinity());
}

TEST(Ec, DecodeRejectsGarbage) {
  EXPECT_THROW(ec_decode(Bytes(32, 2)), CryptoError);  // wrong size
  Bytes bad(33, 0);
  bad[0] = 0x05;  // bad prefix
  EXPECT_THROW(ec_decode(bad), CryptoError);
  // x with no curve point: find one by trial.
  Bytes enc(33, 0);
  enc[0] = 0x02;
  enc[32] = 5;  // x = 5 is not on secp256k1
  EXPECT_THROW(ec_decode(enc), CryptoError);
}

TEST(Schnorr, SignVerify) {
  Rng rng(25);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("ENDORSEMENT serial=17 vote-code=abc");
  Bytes sig = schnorr_sign(kp.sk, msg);
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig));
}

TEST(Schnorr, RejectsTamperedMessage) {
  Rng rng(26);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("original");
  Bytes sig = schnorr_sign(kp.sk, msg);
  EXPECT_FALSE(schnorr_verify(kp.pk, to_bytes("0riginal"), sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  Rng rng(27);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("msg");
  Bytes sig = schnorr_sign(kp.sk, msg);
  sig[40] ^= 1;
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, sig));
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, Bytes(64)));  // wrong size
}

TEST(Schnorr, RejectsWrongKey) {
  Rng rng(28);
  KeyPair kp1 = schnorr_keygen(rng);
  KeyPair kp2 = schnorr_keygen(rng);
  Bytes msg = to_bytes("msg");
  EXPECT_FALSE(schnorr_verify(kp2.pk, msg, schnorr_sign(kp1.sk, msg)));
}

TEST(ElGamal, HomomorphicAddition) {
  Rng rng(29);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r1 = random_scalar(rng), r2 = random_scalar(rng);
  ElGamalCipher c1 = eg_commit(key, Fn::from_u64(3), r1);
  ElGamalCipher c2 = eg_commit(key, Fn::from_u64(4), r2);
  ElGamalCipher sum = eg_add(c1, c2);
  EXPECT_TRUE(eg_open_check(key, sum, Fn::from_u64(7), r1 + r2));
  EXPECT_FALSE(eg_open_check(key, sum, Fn::from_u64(8), r1 + r2));
}

TEST(ElGamal, EncodeDecode) {
  Rng rng(30);
  Point key = ec_mul_g(random_scalar(rng));
  ElGamalCipher c = eg_commit(key, Fn::one(), random_scalar(rng));
  EXPECT_TRUE(eg_eq(eg_decode(eg_encode(c)), c));
  EXPECT_THROW(eg_decode(Bytes(65)), CryptoError);
}

TEST(ElGamal, UnitVectorCommit) {
  Rng rng(31);
  Point key = ec_mul_g(random_scalar(rng));
  std::size_t m = 5, idx = 2;
  std::vector<Fn> rs;
  for (std::size_t i = 0; i < m; ++i) rs.push_back(random_scalar(rng));
  auto cs = eg_commit_unit_vector(key, m, idx, rs);
  ASSERT_EQ(cs.size(), m);
  for (std::size_t i = 0; i < m; ++i) {
    Fn expect = (i == idx) ? Fn::one() : Fn::zero();
    EXPECT_TRUE(eg_open_check(key, cs[i], expect, rs[i]));
  }
  EXPECT_THROW(eg_commit_unit_vector(key, m, 9, rs), CryptoError);
}

TEST(ElGamal, UnitVectorSumOpensToOne) {
  Rng rng(32);
  Point key = ec_mul_g(random_scalar(rng));
  std::size_t m = 4;
  std::vector<Fn> rs;
  for (std::size_t i = 0; i < m; ++i) rs.push_back(random_scalar(rng));
  auto cs = eg_commit_unit_vector(key, m, 1, rs);
  ElGamalCipher sum = cs[0];
  Fn rsum = rs[0];
  for (std::size_t i = 1; i < m; ++i) {
    sum = eg_add(sum, cs[i]);
    rsum = rsum + rs[i];
  }
  EXPECT_TRUE(eg_open_check(key, sum, Fn::one(), rsum));
}

}  // namespace
}  // namespace ddemos::crypto
