// TcpNet transport unit tests: wire framing, the shared real-clock timer
// clamp, loopback delivery between two in-process TcpNet instances (two
// "OS processes" of a cluster hosted in one test binary), reconnect after
// a sever, and send-side backpressure against an unreachable peer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/tcp_frame.hpp"
#include "net/tcp_net.hpp"
#include "test_clock.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"

namespace ddemos::net {
namespace {

using ddemos::test::scaled;

TEST(TcpFrame, HeaderRoundTrip) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.from = 3;
  h.to = 7;
  h.seq = 0x1122334455667788ull;
  h.len = 4096;
  std::uint8_t wire[FrameHeader::kWireSize];
  h.encode(wire);
  FrameHeader d = FrameHeader::decode(wire);
  EXPECT_EQ(d.kind, FrameKind::kData);
  EXPECT_EQ(d.from, 3u);
  EXPECT_EQ(d.to, 7u);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.len, 4096u);
}

TEST(TcpFrame, DecodeRejectsGarbage) {
  FrameHeader h;
  h.kind = FrameKind::kControl;
  std::uint8_t wire[FrameHeader::kWireSize];
  h.encode(wire);

  std::uint8_t bad_magic[FrameHeader::kWireSize];
  std::memcpy(bad_magic, wire, sizeof(wire));
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(FrameHeader::decode(bad_magic), CodecError);

  std::uint8_t bad_kind[FrameHeader::kWireSize];
  std::memcpy(bad_kind, wire, sizeof(wire));
  bad_kind[4] = 0x77;  // not a FrameKind
  EXPECT_THROW(FrameHeader::decode(bad_kind), CodecError);

  h.len = kMaxFramePayload + 1;
  h.encode(wire);
  EXPECT_THROW(FrameHeader::decode(wire), CodecError);
}

TEST(TcpFrame, HelloBodyRoundTrip) {
  HelloBody hello;
  hello.process = 5;
  hello.election_id = to_bytes("election-42");
  Bytes wire = hello.encode();
  HelloBody d = HelloBody::decode(wire);
  EXPECT_EQ(d.version, hello.version);
  EXPECT_EQ(d.process, 5u);
  EXPECT_EQ(d.election_id, to_bytes("election-42"));
}

TEST(TimerClamp, SharedHelperBounds) {
  EXPECT_EQ(sim::clamp_real_timer_delay(-5), 0);
  EXPECT_EQ(sim::clamp_real_timer_delay(0), 0);
  EXPECT_EQ(sim::clamp_real_timer_delay(1234), 1234);
  EXPECT_EQ(sim::clamp_real_timer_delay(sim::kMaxRealTimerDelay + 1),
            sim::kMaxRealTimerDelay);
  EXPECT_EQ(sim::clamp_real_timer_delay(std::numeric_limits<
                                            sim::Duration>::max()),
            sim::kMaxRealTimerDelay);
}

// Stop-and-wait client: sends sequence numbers to the echo peer, advances
// on each ack, retries the outstanding one on patience expiry (the same
// resubmit discipline D-DEMOS voters use, so a severed connection only
// delays completion).
class Ping final : public sim::Process {
 public:
  Ping(sim::NodeId peer, std::uint64_t total, sim::Duration patience)
      : peer_(peer), total_(total), patience_(patience) {}

  void on_start() override {
    send_current();
    ctx().set_timer(patience_);
  }
  void on_message(sim::NodeId, const Buffer& payload) override {
    Reader r(payload);
    std::uint64_t acked = r.u64();
    if (acked != current_.load()) return;  // stale retry echo
    if (acked + 1 == total_) {
      done_.store(true, std::memory_order_release);
      return;
    }
    current_.store(acked + 1);
    send_current();
  }
  void on_timer(std::uint64_t) override {
    if (done_.load(std::memory_order_acquire)) return;
    send_current();  // retry the outstanding sequence number
    ctx().set_timer(patience_);
  }

  bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  void send_current() {
    Writer w;
    w.u64(current_.load());
    ctx().send(peer_, w.take());
  }
  sim::NodeId peer_;
  std::uint64_t total_;
  sim::Duration patience_;
  std::atomic<std::uint64_t> current_{0};
  std::atomic<bool> done_{false};
};

class Echo final : public sim::Process {
 public:
  void on_message(sim::NodeId from, const Buffer& payload) override {
    received_.fetch_add(1, std::memory_order_relaxed);
    ctx().send(from, Buffer::copy_of(payload));
  }
  std::uint64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> received_{0};
};

// Builds the canonical two-instance cluster: node 0 (ping) on process 0,
// node 1 (echo) on process 1, both instances running the identical
// registration sequence so ids and names line up.
struct Cluster {
  TcpNet a, b;
  Ping* ping = nullptr;
  Echo* echo = nullptr;

  static TcpConfig config_for(std::uint32_t self) {
    TcpConfig cfg;
    cfg.self_process = self;
    cfg.election_id = to_bytes("tcp-net-test");
    cfg.node_process = {0, 1};
    return cfg;
  }

  Cluster(std::uint64_t total, sim::Duration patience)
      : a(config_for(0)), b(config_for(1)) {
    a.add_node(std::make_unique<Ping>(1, total, patience), "ping");
    a.add_node(std::make_unique<Echo>(), "echo");
    b.add_node(std::make_unique<Ping>(1, total, patience), "ping");
    b.add_node(std::make_unique<Echo>(), "echo");
    std::vector<TcpPeer> peers = {{"127.0.0.1", a.listen_port()},
                                  {"127.0.0.1", b.listen_port()}};
    a.set_peers(peers);
    b.set_peers(peers);
    ping = &dynamic_cast<Ping&>(a.process(0));
    echo = &dynamic_cast<Echo&>(b.process(1));
  }
};

TEST(TcpNet, LoopbackDeliveryAcrossProcesses) {
  constexpr std::uint64_t kTotal = 50;
  Cluster c(kTotal, scaled(5'000'000));  // patience >> run: no retries

  // Placeholder semantics: each instance hosts exactly its own node.
  EXPECT_TRUE(c.a.is_local(0));
  EXPECT_FALSE(c.a.is_local(1));
  EXPECT_FALSE(c.b.is_local(0));
  EXPECT_TRUE(c.b.is_local(1));
  EXPECT_EQ(c.a.node_name(1), "echo");
  EXPECT_THROW(c.a.process(1), ProtocolError);

  c.b.start();
  c.a.start();
  sim::RunOptions opts;
  opts.wall_timeout_us = scaled(30'000'000);
  ASSERT_TRUE(c.a.run_to_quiescence([&] { return c.ping->done(); }, opts));

  EXPECT_EQ(c.echo->received(), kTotal);
  EXPECT_EQ(c.a.frames_dropped(), 0u);
  EXPECT_EQ(c.b.frames_dropped(), 0u);
  EXPECT_GE(c.a.frames_sent(), kTotal);
  EXPECT_GE(c.b.frames_received(), kTotal);
  c.a.stop();
  c.b.stop();
}

TEST(TcpNet, SeverredConnectionsRedialAndComplete) {
  constexpr std::uint64_t kTotal = 200;
  Cluster c(kTotal, scaled(50'000));
  c.b.start();
  c.a.start();

  // Sever every data socket on both sides once the stream is mid-flight,
  // so completion can only happen through redial + retry.
  std::thread saboteur([&] {
    while (c.echo->received() < kTotal / 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    c.a.sever_connections();
    c.b.sever_connections();
  });
  sim::RunOptions opts;
  opts.wall_timeout_us = scaled(60'000'000);
  bool done = c.a.run_to_quiescence([&] { return c.ping->done(); }, opts);
  saboteur.join();
  ASSERT_TRUE(done);
  EXPECT_GE(c.a.reconnects() + c.b.reconnects(), 1u);
  // The echo peer saw every sequence number (retries may add extras, and
  // transport-level dedup keeps reconnect replays out of that count).
  EXPECT_GE(c.echo->received(), kTotal);
  c.a.stop();
  c.b.stop();
}

// Flood a peer that never answers its port: the writer can't drain, the
// bounded queue fills, and senders must drop (counted) instead of wedging.
class Flood final : public sim::Process {
 public:
  explicit Flood(std::uint64_t n) : n_(n) {}
  void on_start() override {
    for (std::uint64_t i = 0; i < n_; ++i) {
      Writer w;
      w.u64(i);
      ctx().send(1, w.take());
    }
    finished_.store(true, std::memory_order_release);
  }
  void on_message(sim::NodeId, const Buffer&) override {}
  bool finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  std::uint64_t n_;
  std::atomic<bool> finished_{false};
};

TEST(TcpNet, BackpressureDropsInsteadOfWedging) {
  TcpConfig cfg = Cluster::config_for(0);
  cfg.send_queue_frames = 4;
  cfg.send_block_us = 1'000;
  TcpNet net(std::move(cfg));
  net.add_node(std::make_unique<Flood>(100), "flood");
  net.add_remote("sink");
  // Port 1 on loopback: nothing listens, every dial is refused.
  net.set_peers({{"127.0.0.1", net.listen_port()}, {"127.0.0.1", 1}});
  Flood* flood = &dynamic_cast<Flood&>(net.process(0));

  net.start();  // on_start floods from this thread; must return
  ASSERT_TRUE(flood->finished());
  EXPECT_GT(net.frames_dropped(), 0u);
  EXPECT_LE(net.frames_sent(), 4u);  // nothing ever connected
  net.stop();  // and tear down cleanly with a non-empty queue
}

}  // namespace
}  // namespace ddemos::net
