// Parallel audit engine: the ThreadPool primitive, the chunked batch
// verifiers, and verify_election's n_threads knob. The contract under
// test is determinism — chunk boundaries are independent of the worker
// count, so an AuditReport (including blame attribution on injected bad
// proofs) must be byte-identical at every thread count and across runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "crypto/batch.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/rng.hpp"
#include "util/thread_pool.hpp"

namespace ddemos::core {
namespace {

// --- ThreadPool unit tests -------------------------------------------------

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  util::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(pool.n_threads(), threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, 7, [&](std::size_t lo, std::size_t hi) {
      ASSERT_LT(lo, hi);
      ASSERT_LE(hi, kN);
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, PropagatesChunkExceptions) {
  util::ThreadPool pool(4);
  auto boom = [&](std::size_t lo, std::size_t) {
    if (lo >= 32) throw std::runtime_error("chunk failed");
  };
  EXPECT_THROW(pool.parallel_for(64, 8, boom), std::runtime_error);
  // The pool survives a failed job and keeps scheduling.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(64, 8, [&](std::size_t lo, std::size_t hi) {
    done.fetch_add(hi - lo);
  });
  EXPECT_EQ(done.load(), 64u);
}

TEST(ThreadPool, ConcurrentParallelForCallers) {
  // Several caller threads share one pool (the BB-node topology): every
  // job must complete with full coverage. Also the TSan CI target for the
  // queue and chunk-cursor machinery.
  util::ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<std::size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      for (int rep = 0; rep < 3; ++rep) {
        pool.parallel_for(kN, 11, [&sums, c](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) sums[c].fetch_add(i);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), 3u * (kN * (kN - 1) / 2));
  }
}

// --- Chunked batch verification --------------------------------------------

TEST(ParallelBatch, ChunkedOpenCheckMatchesSerialDecisions) {
  crypto::Rng rng(811);
  crypto::Point key = crypto::ec_mul_g(crypto::random_scalar(rng));
  // Enough instances to span several 256-instance chunks.
  std::vector<crypto::EgOpenInstance> xs;
  for (int i = 0; i < 600; ++i) {
    crypto::Fn m = crypto::Fn::from_u64(static_cast<std::uint64_t>(i % 2));
    crypto::Fn r = crypto::random_scalar(rng);
    xs.push_back({crypto::eg_commit(key, m, r), m, r});
  }
  util::ThreadPool pool(4);
  EXPECT_TRUE(crypto::eg_open_check_batch(key, xs));
  EXPECT_TRUE(crypto::eg_open_check_batch(key, xs, &pool));
  // One bad instance anywhere (middle chunk here) fails both forms.
  xs[300].m = xs[300].m + crypto::Fn::one();
  EXPECT_FALSE(crypto::eg_open_check_batch(key, xs));
  EXPECT_FALSE(crypto::eg_open_check_batch(key, xs, &pool));
}

// --- verify_election across thread counts ----------------------------------

ElectionParams audit_params(std::size_t voters) {
  ElectionParams p;
  p.election_id = to_bytes("parallel-audit-test");
  p.options = {"alpha", "beta"};
  p.n_voters = voters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 60'000'000;
  return p;
}

void expect_same_report(const client::AuditReport& a,
                        const client::AuditReport& b) {
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.tally, b.tally);
}

TEST(ParallelAudit, CleanElectionIdenticalAcrossThreadCounts) {
  DriverConfig cfg;
  cfg.params = audit_params(6);
  cfg.seed = 91;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 1, 1, 0});
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  auto base = auditor.verify_election(client::AuditOptions{1});
  EXPECT_TRUE(base.passed);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    expect_same_report(base,
                       auditor.verify_election(client::AuditOptions{threads}));
  }
  // Deterministic across repeated runs at the same thread count.
  expect_same_report(auditor.verify_election(client::AuditOptions{2}),
                     auditor.verify_election(client::AuditOptions{2}));
}

TEST(ParallelAudit, BlameAttributionIdenticalAcrossThreadCounts) {
  // EA commits ballot 0 part B line 0 with openings dealt for the wrong
  // randomness: the BB still opens it (the VSS shares are valid), the
  // messages are a valid unit vector, but the two eg_open checks fail —
  // exercising the batch-failure fallback that attributes blame.
  DriverConfig cfg;
  cfg.params = audit_params(2);
  cfg.seed = 92;
  cfg.workload = VoteListWorkload::make({0, 1});
  cfg.voter_template.forced_part = 0;
  cfg.tamper_setup = [](ea::SetupArtifacts& arts) {
    crypto::Rng rng(998);
    crypto::Point key = arts.bb_inits[0].commit_key;
    std::vector<crypto::Fn> ms = {crypto::Fn::one(), crypto::Fn::zero()};
    std::vector<crypto::Fn> rs = {crypto::random_scalar(rng),
                                  crypto::random_scalar(rng)};
    std::vector<crypto::ElGamalCipher> enc = {
        crypto::eg_commit(key, ms[0], rs[0]),
        crypto::eg_commit(key, ms[1], rs[1])};
    for (auto& bb : arts.bb_inits) {
      bb.ballots[0].parts[1][0].encoding = enc;
    }
    for (std::size_t j = 0; j < 2; ++j) {
      auto dm = crypto::pedersen_vss_deal(ms[j], 2, 3, rng);
      // Openings for a fresh random r, NOT the committed rs[j].
      auto dr = crypto::pedersen_vss_deal(crypto::random_scalar(rng), 2, 3,
                                          rng);
      for (auto& bb : arts.bb_inits) {
        bb.ballots[0].parts[1][0].opening_comms[2 * j] = dm.coefficient_comms;
        bb.ballots[0].parts[1][0].opening_comms[2 * j + 1] =
            dr.coefficient_comms;
      }
      for (std::size_t t = 0; t < 3; ++t) {
        arts.trustee_inits[t].ballots[0].parts[1][0].open_m[j] = dm.shares[t];
        arts.trustee_inits[t].ballots[0].parts[1][0].open_r[j] = dr.shares[t];
      }
    }
  };
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  auto base = auditor.verify_election(client::AuditOptions{1});
  EXPECT_FALSE(base.passed);
  // Both tampered openings blamed, nothing else.
  std::size_t blamed = 0;
  for (const std::string& f : base.failures) {
    if (f == "commitment opening invalid") ++blamed;
  }
  EXPECT_EQ(blamed, 2u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    expect_same_report(base,
                       auditor.verify_election(client::AuditOptions{threads}));
  }
  expect_same_report(auditor.verify_election(client::AuditOptions{4}),
                     auditor.verify_election(client::AuditOptions{4}));
}

}  // namespace
}  // namespace ddemos::core
