// Mid-election crash recovery over the write-ahead log, on both real
// backends:
//
//  * ThreadNet: a whole cluster is torn down mid-voting (every node object
//    destroyed) after two voters hold receipts, then rebuilt over the same
//    WAL directory. The replayed VC state must carry those two cast
//    ballots through consensus so the final tally and receipt set are
//    bit-identical to a no-fault reference election — even though nobody
//    re-casts those votes in the second incarnation.
//
//  * TcpNet: one VC OS process is SIGKILLed mid-voting and respawned by
//    the launcher. The respawned process replays its WAL, rebinds its old
//    data port, re-HELLOs with a bumped incarnation, and finishes the
//    election; the outcome must match the no-fault reference run and the
//    process's accounting row must carry the new incarnation's real
//    counters (the killed-process row used to stay zeroed).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "client/voter.hpp"
#include "core/driver.hpp"
#include "core/tcp_launcher.hpp"
#include "net/thread_net.hpp"
#include "test_clock.hpp"

namespace ddemos::core {
namespace {

using ddemos::test::scaled;

std::string fresh_wal_dir(const char* tag) {
  std::string dir = std::string(::testing::TempDir()) + "recovery_" + tag +
                    "_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  // Re-runs under the same pid (repeat flags): start from empty logs.
  for (const char* prefix : {"vc", "bb"}) {
    for (int i = 0; i < 16; ++i) {
      std::string path = dir + "/" + prefix + std::to_string(i) + ".wal";
      ::unlink(path.c_str());
    }
  }
  return dir;
}

ElectionParams recovery_params(const char* id) {
  ElectionParams p;
  p.election_id = to_bytes(id);
  p.options = {"yes", "no"};
  p.n_voters = 5;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = scaled(1'500'000);
  return p;
}

DriverConfig recovery_config(const ElectionParams& p) {
  DriverConfig cfg;
  cfg.params = p;
  cfg.seed = 99;
  cfg.voter_template.patience_us = scaled(300'000);
  cfg.trustee_options.poll_interval_us = scaled(100'000);
  cfg.wall_timeout_us = scaled(120'000'000);
  return cfg;
}

// Every slot votes: options 0,1,0,1,0 -> tally {3, 2}.
std::vector<std::size_t> full_votes() { return {0, 1, 0, 1, 0}; }

TEST(Recovery, ThreadNetClusterCrashMidVotingReplaysWal) {
  ElectionParams p = recovery_params("recovery-threadnet");
  auto artifacts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, 99, /*vc_only=*/false, /*consensus_rounds=*/64}));

  // Reference: the same election, no fault, no durability.
  ElectionReport ref;
  {
    DriverConfig cfg = recovery_config(p);
    cfg.artifacts = artifacts;
    cfg.workload = VoteListWorkload::make(
        full_votes(), [](std::size_t) { return scaled(50'000); });
    net::ThreadNet net;
    ElectionDriver driver(net, cfg);
    ref = driver.run();
  }
  ASSERT_TRUE(ref.completed);
  ASSERT_EQ(ref.tally, (std::vector<std::uint64_t>{3, 2}));
  ASSERT_EQ(ref.receipts.size(), p.n_voters);

  std::string wal_dir = fresh_wal_dir("threadnet");

  // Incarnation 1: only slots 0 and 1 cast; run until both hold receipts,
  // then destroy the whole cluster mid-voting (the election window is
  // 1.5s, the receipts arrive in a fraction of that).
  std::vector<std::uint64_t> stage1_receipts;
  {
    DriverConfig cfg = recovery_config(p);
    cfg.artifacts = artifacts;
    cfg.durability.wal_dir = wal_dir;
    cfg.durability.fsync = store::FsyncPolicy::kAlways;
    cfg.workload = VoteListWorkload::make(
        {0, 1, kAbstain, kAbstain, kAbstain},
        [](std::size_t) { return scaled(50'000); });
    net::ThreadNet net;
    ElectionTopology topo = build_election(net, *artifacts, cfg);
    ASSERT_EQ(topo.voter_ids.size(), 2u);
    std::vector<client::Voter*> voters;
    for (sim::NodeId id : topo.voter_ids) {
      voters.push_back(&dynamic_cast<client::Voter&>(net.process(id)));
    }
    net.start();
    sim::RunOptions opts;
    opts.wall_timeout_us = scaled(30'000'000);
    ASSERT_TRUE(net.run_to_quiescence(
        [&] {
          for (client::Voter* v : voters) {
            if (!v->has_receipt()) return false;
          }
          return true;
        },
        opts));
    net.stop();
    for (client::Voter* v : voters) {
      stage1_receipts.push_back(v->expected_receipt());
    }
    // Scope exit destroys every node: the crash. Only the WAL survives.
  }

  // Incarnation 2: rebuilt over the same WAL directory. Slots 0 and 1
  // abstain this time — their votes exist only in the replayed logs — and
  // the remaining slots cast normally. An explicit entry per slot matters:
  // VoteListWorkload falls back to round-robin beyond its list.
  ElectionReport rec;
  {
    DriverConfig cfg = recovery_config(p);
    cfg.artifacts = artifacts;
    cfg.durability.wal_dir = wal_dir;
    cfg.durability.fsync = store::FsyncPolicy::kAlways;
    cfg.workload = VoteListWorkload::make(
        {kAbstain, kAbstain, 0, 1, 0},
        [](std::size_t) { return scaled(50'000); });
    net::ThreadNet net;
    ElectionDriver driver(net, cfg);
    rec = driver.run();
  }

  ASSERT_TRUE(rec.completed);
  // The published tally counts the stage-1 votes: bit-identical outcome.
  EXPECT_EQ(rec.tally, ref.tally);
  EXPECT_EQ(rec.vote_set.size(), p.n_voters);
  // Receipts across both incarnations equal the reference set, slot for
  // slot (receipts are deterministic EA data, so equality is exact).
  ASSERT_EQ(stage1_receipts.size(), 2u);
  EXPECT_EQ(stage1_receipts[0], ref.receipts[0]);
  EXPECT_EQ(stage1_receipts[1], ref.receipts[1]);
  ASSERT_EQ(rec.receipts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.receipts[i], ref.receipts[i + 2]) << "slot " << (i + 2);
  }
}

TEST(Recovery, TcpKillAndRespawnVcProcessMidVoting) {
  ElectionParams p = recovery_params("recovery-tcp");

  // Reference: the same cluster, no fault, no durability.
  ElectionReport ref;
  {
    DriverConfig cfg = recovery_config(p);
    TcpLauncher launcher(TcpLauncher::spec_from(cfg));
    ref = launcher.run_election(cfg);
  }
  ASSERT_TRUE(ref.completed);
  ASSERT_EQ(ref.receipts.size(), p.n_voters);

  DriverConfig cfg = recovery_config(p);
  cfg.durability.wal_dir = fresh_wal_dir("tcp");
  cfg.durability.fsync = store::FsyncPolicy::kAlways;

  TcpLauncher::Options opt;
  opt.fault_after_us = scaled(300'000);  // mid-voting (window 1.5s)
  opt.fault = [](TcpLauncher& l) {
    l.kill_process(2);  // VC index 1
    // The control reader marks the process dead on EOF; respawn_process
    // requires that observation (it joins the reader thread).
    while (l.process_alive(2)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    l.respawn_process(2);
  };
  TcpLauncher launcher(TcpLauncher::spec_from(cfg), opt);
  ElectionReport r = launcher.run_election(cfg);

  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.receipts_issued, p.n_voters);
  EXPECT_EQ(r.receipts, ref.receipts);  // bit-identical receipt set
  ASSERT_FALSE(r.tally.empty());
  EXPECT_EQ(r.tally, ref.tally);
  EXPECT_EQ(r.tally, r.expected_tally);
  EXPECT_EQ(r.vote_set.size(), p.n_voters);

  // Accounting regression: the respawned incarnation shipped a report, so
  // the once-zeroed row for the killed process carries real counters.
  ASSERT_EQ(r.process_accounting.size(), p.n_vc + p.n_bb + p.n_trustees + 1);
  EXPECT_EQ(r.process_accounting[2].name, "vc1");
  EXPECT_GT(r.process_accounting[2].events, 0u);
  EXPECT_GT(r.process_accounting[2].frames_sent, 0u);
  for (std::size_t proc = 1; proc < r.process_accounting.size(); ++proc) {
    EXPECT_GT(r.process_accounting[proc].frames_sent, 0u)
        << r.process_accounting[proc].name;
  }
}

}  // namespace
}  // namespace ddemos::core
