#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/batch.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/rng.hpp"
#include "crypto/shamir.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {
namespace {

TEST(Shamir, ReconstructFromThreshold) {
  Rng rng(41);
  Fn secret = random_scalar(rng);
  auto shares = shamir_deal(secret, 3, 5, rng);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shamir_reconstruct(shares, 3), secret);
}

// Property sweep: every k-subset of shares reconstructs; below-threshold
// subsets give a different (wrong) value.
class ShamirSubsets : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShamirSubsets, AnyQuorumReconstructs) {
  auto [k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 100 + n));
  Fn secret = random_scalar(rng);
  auto shares = shamir_deal(secret, static_cast<std::size_t>(k),
                            static_cast<std::size_t>(n), rng);
  // Walk all contiguous windows and a few random subsets.
  for (int start = 0; start + k <= n; ++start) {
    std::vector<Share> subset(shares.begin() + start,
                              shares.begin() + start + k);
    EXPECT_EQ(shamir_reconstruct(subset, static_cast<std::size_t>(k)), secret);
  }
  // Shuffled subset.
  std::vector<Share> all = shares;
  for (std::size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng.below(i)]);
  }
  all.resize(static_cast<std::size_t>(k));
  EXPECT_EQ(shamir_reconstruct(all, static_cast<std::size_t>(k)), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirSubsets,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 3}, std::pair{3, 4},
                      std::pair{3, 5}, std::pair{5, 7}, std::pair{7, 10},
                      std::pair{11, 16}));

TEST(Shamir, TooFewSharesThrow) {
  Rng rng(42);
  auto shares = shamir_deal(random_scalar(rng), 4, 6, rng);
  shares.resize(3);
  EXPECT_THROW(shamir_reconstruct(shares, 4), CryptoError);
}

TEST(Shamir, DuplicateSharePointsRejected) {
  Rng rng(43);
  auto shares = shamir_deal(random_scalar(rng), 3, 5, rng);
  std::vector<Share> dup = {shares[0], shares[0], shares[0]};
  EXPECT_THROW(shamir_reconstruct(dup, 3), CryptoError);
}

TEST(Shamir, BadParamsThrow) {
  Rng rng(44);
  EXPECT_THROW(shamir_deal(Fn::one(), 0, 5, rng), CryptoError);
  EXPECT_THROW(shamir_deal(Fn::one(), 6, 5, rng), CryptoError);
}

TEST(Shamir, CorruptShareChangesSecret) {
  Rng rng(45);
  Fn secret = random_scalar(rng);
  auto shares = shamir_deal(secret, 3, 5, rng);
  shares[1].y = shares[1].y + Fn::one();
  EXPECT_NE(shamir_reconstruct(shares, 3), secret);
}

TEST(Shamir, LinearityOfShares) {
  // share(a) + share(b) reconstructs a+b — the homomorphism the trustee
  // tally relies on.
  Rng rng(46);
  Fn a = random_scalar(rng), b = random_scalar(rng);
  auto sa = shamir_deal(a, 3, 5, rng);
  auto sb = shamir_deal(b, 3, 5, rng);
  std::vector<Share> sum;
  for (std::size_t i = 0; i < 5; ++i) {
    sum.push_back(Share{sa[i].x, sa[i].y + sb[i].y});
  }
  EXPECT_EQ(shamir_reconstruct(sum, 3), a + b);
}

TEST(PedersenVss, SharesVerifyAndReconstruct) {
  Rng rng(47);
  Fn secret = random_scalar(rng);
  PedersenDeal deal = pedersen_vss_deal(secret, 3, 5, rng);
  ASSERT_EQ(deal.shares.size(), 5u);
  ASSERT_EQ(deal.coefficient_comms.size(), 3u);
  for (const auto& s : deal.shares) {
    EXPECT_TRUE(pedersen_vss_verify(s, deal.coefficient_comms));
  }
  auto [rec, blind] = pedersen_vss_reconstruct(deal.shares, 3);
  EXPECT_EQ(rec, secret);
  // The zeroth coefficient commitment opens to (secret, blind).
  EXPECT_TRUE(ec_eq(deal.coefficient_comms[0], pedersen_commit(rec, blind)));
}

TEST(PedersenVss, TamperedShareFailsVerification) {
  Rng rng(48);
  PedersenDeal deal = pedersen_vss_deal(Fn::from_u64(99), 2, 4, rng);
  PedersenShare bad = deal.shares[0];
  bad.f = bad.f + Fn::one();
  EXPECT_FALSE(pedersen_vss_verify(bad, deal.coefficient_comms));
  bad = deal.shares[0];
  bad.g = bad.g + Fn::one();
  EXPECT_FALSE(pedersen_vss_verify(bad, deal.coefficient_comms));
}

TEST(PedersenVss, BatchVerifyMatchesPerInstance) {
  // The random-linear-combination batch the BB nodes use for trustee
  // messages: all-valid batches pass, any tampered share (or an empty
  // commitment vector) fails the combined check, the empty batch is
  // trivially true.
  Rng rng(52);
  std::vector<PedersenVssInstance> insts;
  for (std::uint64_t d = 0; d < 3; ++d) {
    PedersenDeal deal = pedersen_vss_deal(random_scalar(rng), 2 + d, 5, rng);
    for (const auto& s : deal.shares) {
      insts.push_back({s, deal.coefficient_comms});
    }
  }
  EXPECT_TRUE(pedersen_vss_verify_batch(insts));
  EXPECT_TRUE(pedersen_vss_verify_batch({}));

  auto tampered = insts;
  tampered[7].share.f = tampered[7].share.f + Fn::one();
  EXPECT_FALSE(pedersen_vss_verify_batch(tampered));
  // The per-instance fallback attributes the failure to exactly one share.
  std::size_t bad = 0;
  for (const auto& i : tampered) {
    bad += pedersen_vss_verify(i.share, i.comms) ? 0 : 1;
  }
  EXPECT_EQ(bad, 1u);

  auto empty_comms = insts;
  empty_comms[0].comms.clear();
  EXPECT_FALSE(pedersen_vss_verify_batch(empty_comms));
}

TEST(PedersenVss, HomomorphicAddition) {
  Rng rng(49);
  Fn a = random_scalar(rng), b = random_scalar(rng);
  PedersenDeal da = pedersen_vss_deal(a, 3, 5, rng);
  PedersenDeal db = pedersen_vss_deal(b, 3, 5, rng);
  std::vector<PedersenShare> sum;
  for (std::size_t i = 0; i < 5; ++i) {
    sum.push_back(pedersen_share_add(da.shares[i], db.shares[i]));
  }
  // Summed commitments verify summed shares.
  std::vector<Point> comms;
  for (std::size_t j = 0; j < 3; ++j) {
    comms.push_back(
        ec_add(da.coefficient_comms[j], db.coefficient_comms[j]));
  }
  for (const auto& s : sum) {
    EXPECT_TRUE(pedersen_vss_verify(s, comms));
  }
  auto [rec, blind] = pedersen_vss_reconstruct(sum, 3);
  EXPECT_EQ(rec, a + b);
  (void)blind;
}

TEST(PedersenVss, MismatchedShareAddThrows) {
  Rng rng(50);
  PedersenDeal d = pedersen_vss_deal(Fn::one(), 2, 3, rng);
  EXPECT_THROW(pedersen_share_add(d.shares[0], d.shares[1]), CryptoError);
}

TEST(PedersenCommit, HidingAndBindingShape) {
  Rng rng(51);
  Fn m = Fn::from_u64(7);
  Fn r1 = random_scalar(rng), r2 = random_scalar(rng);
  // Different randomness, same message: different commitments (hiding needs
  // fresh randomness).
  EXPECT_FALSE(ec_eq(pedersen_commit(m, r1), pedersen_commit(m, r2)));
  // Same inputs: deterministic.
  EXPECT_TRUE(ec_eq(pedersen_commit(m, r1), pedersen_commit(m, r1)));
}

}  // namespace
}  // namespace ddemos::crypto
