// Vote Collector protocol unit tests: Algorithm 1 behaviours, UCERT rules,
// and Byzantine VC nodes (wrong receipts, withheld shares, double-vote
// attempts, bogus VOTE_P messages).
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "core/driver.hpp"
#include "crypto/schnorr.hpp"

namespace ddemos::core {
namespace {

ElectionParams tiny_params(std::size_t voters, std::size_t options = 2) {
  ElectionParams p;
  p.election_id = to_bytes("vc-proto-test");
  for (std::size_t i = 0; i < options; ++i) {
    p.options.push_back("opt" + std::to_string(i));
  }
  p.n_voters = voters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 30'000'000;
  return p;
}

// A scripted client process that sends raw messages to VC nodes.
class RawClient : public sim::Process {
 public:
  void on_message(sim::NodeId from, const net::Buffer& payload) override {
    Reader r(payload);
    if (static_cast<MsgType>(r.u8()) != MsgType::kVoteReply) return;
    replies.push_back({from, VoteReplyMsg::decode(r)});
  }
  void send_to(sim::NodeId to, Bytes msg) { pending.push_back({to, msg}); }
  // Flushes (and drains) queued messages; called by the sim at start and
  // manually by tests to inject follow-up traffic.
  void on_start() override {
    auto batch = std::move(pending);
    pending.clear();
    for (auto& [to, msg] : batch) ctx().send(to, msg);
  }
  std::vector<std::pair<sim::NodeId, Bytes>> pending;
  std::vector<std::pair<sim::NodeId, VoteReplyMsg>> replies;
};

struct Fixture {
  explicit Fixture(std::size_t voters = 2) {
    DriverConfig cfg;
    cfg.params = tiny_params(voters);
    cfg.seed = 7777;
    cfg.workload = VoteListWorkload::make(
        std::vector<std::size_t>(voters, kAbstain));  // no automatic voters
    runner = std::make_unique<ElectionDriver>(cfg);
    client = dynamic_cast<RawClient*>(&runner->simulation().process(
        runner->simulation().add_node(std::make_unique<RawClient>(),
                                      "raw")));
  }
  std::unique_ptr<ElectionDriver> runner;
  RawClient* client;
};

TEST(VcProtocol, ValidVoteYieldsPrintedReceipt) {
  Fixture f;
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  f.client->send_to(0, VoteMsg{ballot.serial,
                               ballot.parts[0].lines[1].vote_code}
                           .encode());
  f.runner->simulation().start();
  f.runner->simulation().run_until(5'000'000);
  ASSERT_EQ(f.client->replies.size(), 1u);
  EXPECT_EQ(f.client->replies[0].second.status, VoteReplyStatus::kOk);
  EXPECT_EQ(f.client->replies[0].second.receipt,
            ballot.parts[0].lines[1].receipt);
}

TEST(VcProtocol, UnknownSerialRejected) {
  Fixture f;
  f.client->send_to(0, VoteMsg{0x1234, Bytes(20, 9)}.encode());
  f.runner->simulation().start();
  f.runner->simulation().run_until(2'000'000);
  ASSERT_EQ(f.client->replies.size(), 1u);
  EXPECT_EQ(f.client->replies[0].second.status, VoteReplyStatus::kUnknown);
}

TEST(VcProtocol, WrongVoteCodeRejected) {
  Fixture f;
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  f.client->send_to(0, VoteMsg{ballot.serial, Bytes(20, 0xaa)}.encode());
  f.runner->simulation().start();
  f.runner->simulation().run_until(2'000'000);
  ASSERT_EQ(f.client->replies.size(), 1u);
  EXPECT_EQ(f.client->replies[0].second.status, VoteReplyStatus::kUnknown);
}

TEST(VcProtocol, SecondCodeForSameBallotRejected) {
  // Voting twice with different codes: the second attempt must never earn
  // a receipt (at most one vote code endorsed per ballot).
  Fixture f;
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  f.client->send_to(0, VoteMsg{ballot.serial,
                               ballot.parts[0].lines[0].vote_code}
                           .encode());
  f.runner->simulation().start();
  f.runner->simulation().run_until(5'000'000);
  ASSERT_EQ(f.client->replies.size(), 1u);
  // Now try the other part's code at a different node.
  f.client->pending.clear();
  auto* sim = &f.runner->simulation();
  // Send directly from the client context via a fresh message.
  f.client->send_to(2, VoteMsg{ballot.serial,
                               ballot.parts[1].lines[0].vote_code}
                           .encode());
  for (auto& [to, msg] : f.client->pending) {
    // Inject through the simulation by having the client re-start.
  }
  f.client->on_start();
  sim->run_until(10'000'000);
  ASSERT_EQ(f.client->replies.size(), 2u);
  EXPECT_EQ(f.client->replies[1].second.status,
            VoteReplyStatus::kAlreadyVoted);
}

TEST(VcProtocol, ResubmittingSameCodeReturnsSameReceipt) {
  Fixture f;
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  Bytes code = ballot.parts[1].lines[0].vote_code;
  f.client->send_to(1, VoteMsg{ballot.serial, code}.encode());
  f.runner->simulation().start();
  f.runner->simulation().run_until(5'000'000);
  f.client->send_to(1, VoteMsg{ballot.serial, code}.encode());
  f.client->on_start();
  f.runner->simulation().run_until(10'000'000);
  ASSERT_EQ(f.client->replies.size(), 2u);
  EXPECT_EQ(f.client->replies[0].second.receipt,
            f.client->replies[1].second.receipt);
  EXPECT_EQ(f.client->replies[1].second.status, VoteReplyStatus::kOk);
}

TEST(VcProtocol, ForgedVotePIgnored) {
  // A malicious party floods VOTE_P messages with an invalid UCERT; no node
  // may mark the ballot voted.
  Fixture f;
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  VotePMsg vp;
  vp.serial = ballot.serial;
  vp.vote_code = ballot.parts[0].lines[0].vote_code;
  vp.part = 0;
  vp.line = 0;
  vp.receipt_share = crypto::Share{1, crypto::Fn::from_u64(1)};
  vp.ucert.vote_code = vp.vote_code;
  crypto::Rng rng(1);
  crypto::KeyPair bogus = crypto::schnorr_keygen(rng);
  for (std::uint32_t i = 0; i < 3; ++i) {
    vp.ucert.signatures.push_back(
        {i, crypto::schnorr_sign(bogus.sk, to_bytes("junk"))});
  }
  f.client->send_to(0, vp.encode());
  f.client->send_to(1, vp.encode());
  f.runner->simulation().start();
  f.runner->simulation().run_until(2'000'000);
  // Voting with the real code still works normally afterwards.
  f.client->send_to(0, VoteMsg{ballot.serial, vp.vote_code}.encode());
  f.client->on_start();
  f.runner->simulation().run_until(8'000'000);
  ASSERT_FALSE(f.client->replies.empty());
  EXPECT_EQ(f.client->replies.back().second.status, VoteReplyStatus::kOk);
}

TEST(VcProtocol, MalformedMessagesAreDropped) {
  Fixture f;
  f.client->send_to(0, Bytes{0x01});           // truncated VOTE
  f.client->send_to(0, Bytes{0xff, 1, 2, 3});  // unknown type
  f.client->send_to(0, Bytes{});               // empty
  f.runner->simulation().start();
  f.runner->simulation().run_until(1'000'000);
  EXPECT_TRUE(f.client->replies.empty());
  // Node still healthy.
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  f.client->send_to(0, VoteMsg{ballot.serial,
                               ballot.parts[0].lines[0].vote_code}
                           .encode());
  f.client->on_start();
  f.runner->simulation().run_until(6'000'000);
  ASSERT_EQ(f.client->replies.size(), 1u);
  EXPECT_EQ(f.client->replies[0].second.status, VoteReplyStatus::kOk);
}

TEST(VcProtocol, VoteOutsideHoursRejected) {
  Fixture f;
  const Ballot& ballot = f.runner->artifacts().voter_ballots[0];
  f.runner->simulation().start();
  f.runner->simulation().run_until(31'000'000);  // past t_end
  f.client->send_to(0, VoteMsg{ballot.serial,
                               ballot.parts[0].lines[0].vote_code}
                           .encode());
  f.client->on_start();
  f.runner->simulation().run_until_idle();
  ASSERT_EQ(f.client->replies.size(), 1u);
  EXPECT_EQ(f.client->replies[0].second.status,
            VoteReplyStatus::kOutsideHours);
}

TEST(VcProtocol, UcertValidationRules) {
  Fixture f;
  const auto& init = f.runner->artifacts().vc_inits[0];
  Serial serial = f.runner->artifacts().voter_ballots[0].serial;
  Bytes code = f.runner->artifacts().voter_ballots[0].parts[0].lines[0]
                   .vote_code;
  Bytes digest = endorsement_digest(init.params.election_id, serial, code);

  Ucert u;
  u.vote_code = code;
  // Build with real keys: quorum of 3 distinct signatures validates.
  for (std::uint32_t i = 0; i < 3; ++i) {
    u.signatures.push_back(
        {i, crypto::schnorr_sign(
                f.runner->artifacts().vc_inits[i].signing_key, digest)});
  }
  EXPECT_TRUE(u.valid(init.params.election_id, serial, init.vc_public_keys,
                      3));
  // Duplicate signer does not count twice.
  Ucert dup = u;
  dup.signatures.pop_back();
  dup.signatures.push_back(dup.signatures[0]);
  EXPECT_FALSE(dup.valid(init.params.election_id, serial,
                         init.vc_public_keys, 3));
  // Signature over a different serial fails.
  EXPECT_FALSE(u.valid(init.params.election_id, serial + 1,
                       init.vc_public_keys, 3));
  // Out-of-range node index ignored.
  Ucert oob = u;
  oob.signatures[0].first = 99;
  EXPECT_FALSE(oob.valid(init.params.election_id, serial,
                         init.vc_public_keys, 3));
}

TEST(VcProtocol, ConcurrentVotersOnDifferentNodes) {
  // Many voters hammering different responders concurrently all succeed and
  // the final sets agree (exercises cross-responder VOTE_P interleaving).
  DriverConfig cfg;
  cfg.params = tiny_params(12, 3);
  cfg.seed = 4321;
  cfg.workload = RoundRobinWorkload::make(
      [](std::size_t) -> sim::TimePoint { return 1000; });  // all at once
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt());
  }
  const auto& set0 = runner.vc_node(0).final_vote_set();
  EXPECT_EQ(set0.size(), 12u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(runner.vc_node(i).final_vote_set(), set0);
  }
}

}  // namespace
}  // namespace ddemos::core
