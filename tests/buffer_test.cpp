// net::Buffer sharing semantics, the one-allocation-per-multicast
// guarantee through the simulator, and the calendar queue's ordering
// equivalence with the binary heap it replaced.
#include <gtest/gtest.h>

#include <queue>

#include "net/buffer.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/sim.hpp"

namespace ddemos {
namespace {

TEST(Buffer, WrapCountsExactlyOneAllocation) {
  net::Buffer::reset_payload_allocations();
  net::Buffer b(to_bytes("payload"));
  EXPECT_EQ(net::Buffer::payload_allocations(), 1u);
  // Handle copies share the allocation; no new payloads.
  net::Buffer c = b;
  net::Buffer d = c;
  EXPECT_EQ(net::Buffer::payload_allocations(), 1u);
  EXPECT_EQ(b.use_count(), 3);
  EXPECT_EQ(to_string(d.view()), "payload");
  // Views alias the same bytes.
  EXPECT_EQ(b.data(), d.data());
}

TEST(Buffer, EmptyBufferIsSafe) {
  net::Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.view().size(), 0u);
}

// A process that multicasts one message to every other node at start.
class Multicaster : public sim::Process {
 public:
  explicit Multicaster(std::vector<sim::NodeId> peers)
      : peers_(std::move(peers)) {}
  void on_start() override {
    net::Buffer msg(Bytes(1024, 0xab));  // the single payload allocation
    for (sim::NodeId p : peers_) ctx().send(p, msg);
  }
  void on_message(sim::NodeId, const net::Buffer&) override {}

 private:
  std::vector<sim::NodeId> peers_;
};

class Sink : public sim::Process {
 public:
  void on_message(sim::NodeId, const net::Buffer& payload) override {
    ++received;
    EXPECT_EQ(payload.size(), 1024u);
  }
  int received = 0;
};

TEST(Buffer, NRecipientMulticastIsOneAllocation) {
  constexpr std::size_t kRecipients = 16;
  sim::Simulation sim(9);
  // Duplication on every link: deliveries exceed sends, still no copies.
  sim.set_default_link(sim::LinkModel{100, 0, 0.0, 1.0});
  std::vector<sim::NodeId> peers;
  for (std::size_t i = 0; i < kRecipients; ++i) {
    peers.push_back(sim.add_node(std::make_unique<Sink>(),
                                 "sink" + std::to_string(i)));
  }
  sim.add_node(std::make_unique<Multicaster>(peers), "mcast");
  net::Buffer::reset_payload_allocations();
  sim.start();
  sim.run_until_idle();
  // Exactly one payload allocation for the whole multicast, despite
  // kRecipients sends and 2 * kRecipients deliveries (dup_prob = 1).
  EXPECT_EQ(net::Buffer::payload_allocations(), 1u);
  int delivered = 0;
  for (sim::NodeId id : peers) {
    delivered += dynamic_cast<Sink&>(sim.process(id)).received;
  }
  EXPECT_EQ(delivered, static_cast<int>(2 * kRecipients));
}

// --- Calendar queue ------------------------------------------------------

struct TestEvent {
  std::int64_t at;
  std::uint64_t seq;
};

struct RefCmp {
  bool operator()(const TestEvent& a, const TestEvent& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

TEST(CalendarQueue, MatchesBinaryHeapOrder) {
  sim::CalendarQueue<TestEvent> cq;
  std::priority_queue<TestEvent, std::vector<TestEvent>, RefCmp> ref;
  std::uint64_t seq = 0;
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  // Interleaved pushes and pops, with duplicate timestamps and a few
  // far-future outliers (election-end style timers).
  for (int round = 0; round < 5000; ++round) {
    std::int64_t at = static_cast<std::int64_t>(next() % 50'000);
    if (round % 97 == 0) at += 4'000'000'000ll;  // sparse outlier
    if (round % 11 == 0) at = 12'345;            // duplicate timestamp
    TestEvent ev{at, seq++};
    cq.push(ev);
    ref.push(ev);
    if (round % 3 == 0) {
      ASSERT_FALSE(cq.empty());
      TestEvent got = cq.pop();
      TestEvent want = ref.top();
      ref.pop();
      ASSERT_EQ(got.at, want.at);
      ASSERT_EQ(got.seq, want.seq);
    }
  }
  while (!ref.empty()) {
    TestEvent got = cq.pop();
    TestEvent want = ref.top();
    ref.pop();
    ASSERT_EQ(got.at, want.at);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueue, TopIsStableAndMatchesPop) {
  sim::CalendarQueue<TestEvent> cq;
  cq.push(TestEvent{50, 1});
  cq.push(TestEvent{10, 2});
  cq.push(TestEvent{10, 0});
  EXPECT_EQ(cq.top().at, 10);
  EXPECT_EQ(cq.top().seq, 0u);
  TestEvent ev = cq.pop();
  EXPECT_EQ(ev.seq, 0u);
  EXPECT_EQ(cq.pop().seq, 2u);
  EXPECT_EQ(cq.pop().at, 50);
  EXPECT_TRUE(cq.empty());
}

}  // namespace
}  // namespace ddemos
