// EA setup validation and auditor edge cases: invalid configurations,
// init-data well-formedness (the cross-component invariants every node
// relies on), and auditor behaviour on degenerate inputs.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "crypto/commit.hpp"

namespace ddemos::core {
namespace {

ea::EaConfig base_config() {
  ea::EaConfig cfg;
  cfg.params.election_id = to_bytes("ea-test");
  cfg.params.options = {"a", "b"};
  cfg.params.n_voters = 3;
  cfg.params.n_vc = 4;
  cfg.params.f_vc = 1;
  cfg.params.n_bb = 3;
  cfg.params.f_bb = 1;
  cfg.params.n_trustees = 3;
  cfg.params.h_trustees = 2;
  cfg.params.t_start = 0;
  cfg.params.t_end = 1000;
  cfg.seed = 5;
  return cfg;
}

TEST(EaSetup, RejectsInvalidConfigs) {
  {
    auto cfg = base_config();
    cfg.params.n_vc = 3;  // violates Nv >= 3fv+1
    EXPECT_THROW(ea::ea_setup(cfg), ProtocolError);
  }
  {
    auto cfg = base_config();
    cfg.params.n_bb = 2;  // violates Nb >= 2fb+1
    EXPECT_THROW(ea::ea_setup(cfg), ProtocolError);
  }
  {
    auto cfg = base_config();
    cfg.params.options = {"only-one"};
    EXPECT_THROW(ea::ea_setup(cfg), ProtocolError);
  }
  {
    auto cfg = base_config();
    cfg.params.h_trustees = 4;  // ht > Nt
    EXPECT_THROW(ea::ea_setup(cfg), ProtocolError);
  }
  {
    auto cfg = base_config();
    cfg.params.t_end = 0;  // empty window
    EXPECT_THROW(ea::ea_setup(cfg), ProtocolError);
  }
  {
    auto cfg = base_config();
    cfg.params.election_id.clear();
    EXPECT_THROW(ea::ea_setup(cfg), ProtocolError);
  }
}

TEST(EaSetup, BallotInvariants) {
  auto arts = ea::ea_setup(base_config());
  ASSERT_EQ(arts.voter_ballots.size(), 3u);
  for (const Ballot& b : arts.voter_ballots) {
    std::set<Bytes> codes;
    for (const auto& part : b.parts) {
      ASSERT_EQ(part.lines.size(), 2u);
      for (const auto& line : part.lines) {
        EXPECT_EQ(line.vote_code.size(), kVoteCodeBytes);
        // Vote codes unique within the ballot (both parts).
        EXPECT_TRUE(codes.insert(line.vote_code).second);
      }
    }
    // Option text preserved in printed order.
    EXPECT_EQ(b.parts[0].lines[0].option, "a");
    EXPECT_EQ(b.parts[1].lines[1].option, "b");
  }
  // Serials strictly increasing.
  for (std::size_t i = 1; i < arts.voter_ballots.size(); ++i) {
    EXPECT_LT(arts.voter_ballots[i - 1].serial, arts.voter_ballots[i].serial);
  }
}

TEST(EaSetup, VcDataValidatesPrintedCodes) {
  auto arts = ea::ea_setup(base_config());
  // For every printed vote code there is exactly one (part, line) in each
  // VC node's data whose salted hash matches.
  for (std::size_t v = 0; v < arts.voter_ballots.size(); ++v) {
    const Ballot& ballot = arts.voter_ballots[v];
    for (const auto& vc : arts.vc_inits) {
      const VcBallotInit& vb = vc.ballots[v];
      EXPECT_EQ(vb.serial, ballot.serial);
      for (const auto& part : ballot.parts) {
        for (const auto& line : part.lines) {
          int matches = 0;
          for (const auto& vpart : vb.parts) {
            for (const auto& vline : vpart) {
              if (crypto::salted_commit_check(vline.code_hash,
                                              line.vote_code, vline.salt)) {
                ++matches;
              }
            }
          }
          EXPECT_EQ(matches, 1);
        }
      }
    }
  }
}

TEST(EaSetup, ReceiptSharesReconstructPrintedReceipts) {
  auto arts = ea::ea_setup(base_config());
  const ElectionParams& p = arts.vc_inits[0].params;
  const Ballot& ballot = arts.voter_ballots[0];
  // Find the shuffled position of (part 0, option 1) in VC data, collect
  // the quorum of shares across nodes, reconstruct the printed receipt.
  const Bytes& code = ballot.parts[0].lines[1].vote_code;
  for (std::size_t pos = 0; pos < 2; ++pos) {
    const auto& probe = arts.vc_inits[0].ballots[0].parts[0][pos];
    if (!crypto::salted_commit_check(probe.code_hash, code, probe.salt)) {
      continue;
    }
    std::vector<crypto::Share> shares;
    for (std::size_t n = 0; n < p.n_vc; ++n) {
      shares.push_back(
          arts.vc_inits[n].ballots[0].parts[0][pos].receipt_share);
    }
    shares.resize(p.vc_quorum());
    crypto::Fn rec = crypto::shamir_reconstruct(shares, p.vc_quorum());
    Bytes be = rec.to_bytes_be();
    std::uint64_t receipt = 0;
    for (int i = 24; i < 32; ++i) {
      receipt = receipt << 8 | be[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(receipt, ballot.parts[0].lines[1].receipt);
    return;
  }
  FAIL() << "printed code not found in VC data";
}

TEST(EaSetup, BbEncryptedCodesDecryptUnderSharedMsk) {
  auto arts = ea::ea_setup(base_config());
  const ElectionParams& p = arts.vc_inits[0].params;
  // Reconstruct msk from the VC nodes' shares and decrypt a BB code.
  std::vector<crypto::Share> shares;
  for (std::size_t n = 0; n < p.vc_quorum(); ++n) {
    shares.push_back(arts.vc_inits[n].msk_share);
  }
  crypto::Fn secret = crypto::shamir_reconstruct(shares, p.vc_quorum());
  Bytes be = secret.to_bytes_be();
  Bytes msk(be.begin() + 16, be.end());
  EXPECT_TRUE(crypto::salted_commit_check(arts.bb_inits[0].h_msk, msk,
                                          arts.bb_inits[0].salt_msk));
  // Every encrypted code decrypts to one of the ballot's printed codes.
  const auto& bb_line = arts.bb_inits[0].ballots[0].parts[0][0];
  Bytes dec = crypto::decrypt_vote_code(msk, bb_line.encrypted_vote_code);
  std::set<Bytes> printed;
  for (const auto& part : arts.voter_ballots[0].parts) {
    for (const auto& line : part.lines) printed.insert(line.vote_code);
  }
  EXPECT_TRUE(printed.count(dec));
}

TEST(EaSetup, StreamingMatchesConfigScale) {
  auto cfg = base_config();
  cfg.vc_only = true;
  cfg.params.n_voters = 10;
  std::size_t seen = 0;
  auto arts = ea::ea_setup_streaming(
      cfg, [&](const Ballot& b, std::span<VcBallotInit> per_vc) {
        ++seen;
        EXPECT_EQ(per_vc.size(), 4u);
        EXPECT_EQ(per_vc[0].serial, b.serial);
      });
  EXPECT_EQ(seen, 10u);
  EXPECT_TRUE(arts.vc_inits[0].ballots.empty());
  EXPECT_EQ(arts.vc_inits.size(), 4u);
  // Streaming requires vc_only.
  cfg.vc_only = false;
  EXPECT_THROW(
      ea::ea_setup_streaming(cfg, [](const Ballot&,
                                     std::span<VcBallotInit>) {}),
      ProtocolError);
}

TEST(Auditor, FailsClosedWithoutMajority) {
  // An auditor over an empty BB view must fail, not pass vacuously.
  client::MajorityReader reader({}, 1);
  client::Auditor auditor(reader);
  auto report = auditor.verify_election();
  EXPECT_FALSE(report.passed);
}

TEST(Auditor, DetectsForeignAuditInfo) {
  // Audit info whose serial is not in the election: fail closed.
  DriverConfig cfg;
  cfg.params = base_config().params;
  cfg.params.t_end = 30'000'000;
  cfg.seed = 71;
  cfg.workload = VoteListWorkload::make({0, 1, 0});
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  auto info = runner.voter(0).audit_info();
  info.serial = 0x12345;  // unknown ballot
  EXPECT_FALSE(auditor.verify_delegated(info).passed);
}

TEST(Auditor, DetectsSwappedCastCode) {
  // Delegated info with a different cast code than the tallied one: (f).
  DriverConfig cfg;
  cfg.params = base_config().params;
  cfg.params.t_end = 30'000'000;
  cfg.seed = 72;
  cfg.workload = VoteListWorkload::make({0, 1, 0});
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  auto info = runner.voter(0).audit_info();
  info.cast_code = runner.voter(1).used_code();  // not voter 0's code
  EXPECT_FALSE(auditor.verify_delegated(info).passed);
}

}  // namespace
}  // namespace ddemos::core
