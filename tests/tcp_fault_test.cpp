// Multi-process fault matrix over the TcpNet backend: a full loopback
// election with one OS process per VC/BB/trustee where (a) one VC process
// is SIGKILLed mid-voting and (b) every established data connection is
// severed mid-voting. Both cells must still complete with every receipt
// issued and the published tally equal to the ground truth — the same
// liveness/exactness bar vc_shard_fault_test sets for in-process crashes
// (f_vc tolerance + voter patience-resubmission), now across real process
// and socket boundaries.
#include <gtest/gtest.h>

#include "core/tcp_launcher.hpp"
#include "test_clock.hpp"

namespace ddemos::core {
namespace {

using ddemos::test::scaled;

ElectionParams fault_params() {
  ElectionParams p;
  p.election_id = to_bytes("tcp-fault");
  p.options = {"yes", "no"};
  p.n_voters = 5;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = scaled(1'500'000);
  return p;
}

DriverConfig fault_config(const ElectionParams& p) {
  DriverConfig cfg;
  cfg.params = p;
  cfg.seed = 99;
  cfg.voter_template.patience_us = scaled(300'000);
  cfg.trustee_options.poll_interval_us = scaled(100'000);
  cfg.wall_timeout_us = scaled(120'000'000);
  return cfg;
}

void check_exact_outcome(const ElectionReport& r, const ElectionParams& p) {
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.voters_launched, p.n_voters);
  EXPECT_EQ(r.receipts_issued, p.n_voters);
  EXPECT_EQ(r.receipts.size(), p.n_voters);  // every voter holds a receipt
  ASSERT_FALSE(r.tally.empty());
  EXPECT_EQ(r.tally, r.expected_tally);
  std::uint64_t total = 0;
  for (std::uint64_t t : r.tally) total += t;
  EXPECT_EQ(total, p.n_voters);
  // The agreed vote set covers every cast ballot.
  EXPECT_EQ(r.vote_set.size(), p.n_voters);
  // One accounting row per OS process plus the launcher.
  EXPECT_EQ(r.process_accounting.size(),
            p.n_vc + p.n_bb + p.n_trustees + 1);
}

TEST(TcpFault, KillOneVcProcessMidVoting) {
  ElectionParams p = fault_params();
  DriverConfig cfg = fault_config(p);

  TcpLauncher::Options opt;
  opt.fault_after_us = scaled(300'000);  // mid-voting (window 1.5s)
  opt.fault = [](TcpLauncher& l) { l.kill_process(2); };  // VC index 1
  TcpLauncher launcher(TcpLauncher::spec_from(cfg), opt);
  ElectionReport r = launcher.run_election(cfg);

  check_exact_outcome(r, p);
  EXPECT_FALSE(launcher.process_alive(2));
  // The dead process shipped no report: its accounting row stays zeroed
  // while every survivor's row carries real traffic.
  EXPECT_EQ(r.process_accounting[2].name, "vc1");
  EXPECT_EQ(r.process_accounting[2].events, 0u);
  EXPECT_EQ(r.process_accounting[2].frames_sent, 0u);
  for (std::size_t proc = 1; proc < r.process_accounting.size(); ++proc) {
    if (proc == 2) continue;
    EXPECT_GT(r.process_accounting[proc].frames_sent, 0u)
        << r.process_accounting[proc].name;
  }
}

TEST(TcpFault, SeverAllConnectionsMidVoting) {
  ElectionParams p = fault_params();
  DriverConfig cfg = fault_config(p);

  TcpLauncher::Options opt;
  opt.fault_after_us = scaled(250'000);
  opt.fault = [](TcpLauncher& l) { l.net().sever_connections(); };
  TcpLauncher launcher(TcpLauncher::spec_from(cfg), opt);
  ElectionReport r = launcher.run_election(cfg);

  check_exact_outcome(r, p);
  // No process died: every one shipped a report with real traffic on it.
  for (std::size_t proc = 1; proc < r.process_accounting.size(); ++proc) {
    EXPECT_GT(r.process_accounting[proc].events, 0u)
        << r.process_accounting[proc].name;
    EXPECT_GT(r.process_accounting[proc].frames_sent, 0u)
        << r.process_accounting[proc].name;
  }
  // The launcher's writers redialed after the sever (voters were still
  // casting, so at least one voter->VC connection had to come back).
  EXPECT_GE(r.process_accounting[0].reconnects, 1u);
}

}  // namespace
}  // namespace ddemos::core
