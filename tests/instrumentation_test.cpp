// The shared bench accounting layer and the campaign runner: event and
// allocation counts must be deterministic on the simulator (same seed →
// identical counters), invariant under intra-node sharding, monotone
// across election phases, and the campaign's ballot-universe clamp must
// cover the cast count (the fig4 `casts + 100` interplay).
#include <gtest/gtest.h>

#include "common.hpp"
#include "core/driver.hpp"
#include "instrumentation.hpp"
#include "util/proc_stats.hpp"

namespace ddemos {
namespace {

using namespace core;

DriverConfig small_election(std::uint64_t seed) {
  DriverConfig cfg;
  cfg.params.election_id = to_bytes("instr-test");
  cfg.params.options = {"yes", "no"};
  cfg.params.n_voters = 12;
  cfg.params.n_vc = 4;
  cfg.params.f_vc = 1;
  cfg.params.n_bb = 3;
  cfg.params.f_bb = 1;
  cfg.params.n_trustees = 3;
  cfg.params.h_trustees = 2;
  cfg.params.t_start = 0;
  cfg.params.t_end = 30'000'000;
  cfg.seed = seed;
  return cfg;
}

TEST(Instrumentation, ReportCountersDeterministicPerSeed) {
  for (std::uint64_t seed : {7u, 8u}) {
    auto run = [&] {
      ElectionDriver driver(small_election(seed));
      return driver.run();
    };
    ElectionReport a = run(), b = run();
    ASSERT_TRUE(a.completed);
    EXPECT_GT(a.events_processed, 0u);
    EXPECT_GT(a.payload_allocations, 0u);
    EXPECT_GT(a.messages_delivered, 0u);
    // Same seed, same virtual execution: counter-identical runs.
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.messages_delivered, b.messages_delivered);
    EXPECT_EQ(a.messages_dropped, b.messages_dropped);
    EXPECT_EQ(a.payload_allocations, b.payload_allocations);
    // Wall time and RSS are machine facts, not simulation outputs; they
    // must be populated but are not compared.
    EXPECT_GT(a.wall_seconds, 0.0);
    if (util::peak_rss_kb() > 0) EXPECT_GT(a.peak_rss_kb, 0u);
  }
}

TEST(Instrumentation, CountsInvariantUnderShardingKnob) {
  // vc_shards = 1 must be the same election as the untouched default: the
  // dispatch refactors keep shards=1 bit-identical to the unsharded node,
  // so every accounting counter matches exactly.
  DriverConfig base = small_election(21);
  DriverConfig sharded1 = small_election(21);
  sharded1.vc_shards = 1;
  ElectionDriver a(base), b(sharded1);
  ElectionReport ra = a.run(), rb = b.run();
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_EQ(ra.events_processed, rb.events_processed);
  EXPECT_EQ(ra.messages_delivered, rb.messages_delivered);
  EXPECT_EQ(ra.payload_allocations, rb.payload_allocations);
  EXPECT_EQ(ra.tally, rb.tally);
}

TEST(Instrumentation, PhaseSamplesMonotoneAndOrdered) {
  DriverConfig cfg = small_election(33);
  cfg.probe_interval = 16;  // sharp phase boundaries for the observer
  ElectionDriver driver(cfg);
  bench::InstrumentationObserver obs(&driver.host());
  driver.add_observer(&obs);
  ElectionReport r = driver.run();
  ASSERT_TRUE(r.completed);

  const auto& samples = obs.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].phase, "voting");
  EXPECT_EQ(samples[1].phase, "consensus");
  EXPECT_EQ(samples[2].phase, "tally");
  EXPECT_EQ(samples[3].phase, "result");
  // Per-phase deltas are non-negative and peak RSS is monotone across
  // phases (it is a process-lifetime high-water mark).
  std::uint64_t total_events = 0, total_allocs = 0, last_peak = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.wall_s, 0.0);
    EXPECT_GE(s.virtual_s, 0.0);
    EXPECT_GE(s.peak_rss_kb, last_peak);
    last_peak = s.peak_rss_kb;
    total_events += s.events;
    total_allocs += s.allocations;
  }
  EXPECT_GT(samples[0].events, 0u);  // voting does the bulk of the work
  // The phases partition the run: their event/allocation deltas can never
  // exceed the report's whole-run counters.
  EXPECT_LE(total_events, r.events_processed);
  EXPECT_LE(total_allocs, r.payload_allocations);
  EXPECT_GE(total_events, r.events_processed * 9 / 10);
}

TEST(Instrumentation, CampaignAccountingDeterministicAcrossRuns) {
  bench::VoteCollectionConfig cfg;
  cfg.n_vc = 4;
  cfg.f_vc = 1;
  cfg.concurrency = 16;
  cfg.casts = 64;
  cfg.n_ballots = 200;
  cfg.options = 2;
  cfg.seed = 99;
  auto a = bench::run_vote_collection(cfg);
  auto b = bench::run_vote_collection(cfg);
  EXPECT_EQ(a.completed, 64u);
  EXPECT_GT(a.collection.events, 0u);
  EXPECT_GT(a.collection.allocations, 0u);
  EXPECT_EQ(a.collection.events, b.collection.events);
  EXPECT_EQ(a.collection.allocations, b.collection.allocations);
  // Virtual time/throughput are NOT asserted: the campaign runs the sim in
  // hybrid mode (measure_cpu), so real handler CPU time feeds the virtual
  // clock and only the discrete counters are bit-deterministic.
}

TEST(Instrumentation, CampaignCountsInvariantAcrossShardCells) {
  // The simulator dispatches the same message set whatever the shard
  // count (sharding reassigns work across virtual processors, it does not
  // create or destroy messages), so event/allocation counters must match
  // across cells of one generated campaign.
  bench::VoteCollectionConfig cfg;
  cfg.n_vc = 4;
  cfg.f_vc = 1;
  cfg.concurrency = 16;
  cfg.casts = 48;
  cfg.n_ballots = 200;
  cfg.options = 2;
  cfg.seed = 123;
  bench::VoteCollectionCampaign campaign(cfg);
  campaign.generate();
  auto s1 = campaign.run_cell(1);
  auto s4 = campaign.run_cell(4);
  EXPECT_EQ(s1.completed, 48u);
  EXPECT_EQ(s4.completed, 48u);
  EXPECT_EQ(s1.collection.events, s4.collection.events);
  EXPECT_EQ(s1.collection.allocations, s4.collection.allocations);
}

TEST(Instrumentation, CampaignCheckpointsCoverTheRun) {
  bench::VoteCollectionConfig cfg;
  cfg.n_vc = 4;
  cfg.f_vc = 1;
  cfg.concurrency = 8;
  cfg.casts = 60;
  cfg.n_ballots = 200;
  cfg.options = 2;
  cfg.seed = 7;
  bench::VoteCollectionCampaign campaign(cfg);
  std::vector<bench::VoteCollectionCampaign::Checkpoint> cps;
  campaign.run_cell(1, [&](const auto& cp) { cps.push_back(cp); }, 20);
  ASSERT_GE(cps.size(), 2u);
  std::size_t last = 0;
  for (const auto& cp : cps) {
    EXPECT_EQ(cp.total, 60u);
    EXPECT_GT(cp.completed, last);  // strictly advancing marks
    last = cp.completed;
    EXPECT_GE(cp.events, 0u);
  }
  EXPECT_EQ(cps.back().completed, 60u);
}

TEST(Campaign, BallotUniverseClampCoversCastCount) {
  // Regression for the n_ballots/casts interplay: an explicit universe
  // smaller than the cast count used to silently shrink the run (fig4
  // sizes the universe as casts + 100 to dodge exactly this).
  bench::VoteCollectionConfig cfg;
  cfg.casts = 50;
  cfg.n_ballots = 10;
  EXPECT_EQ(bench::resolve_n_ballots(cfg), 50u);
  cfg.n_ballots = 0;  // default: max(casts, 2000)
  EXPECT_EQ(bench::resolve_n_ballots(cfg), 2000u);
  cfg.casts = 5000;
  EXPECT_EQ(bench::resolve_n_ballots(cfg), 5000u);
  cfg.n_ballots = 7000;
  EXPECT_EQ(bench::resolve_n_ballots(cfg), 7000u);

  // End-to-end: the clamped campaign completes every cast instead of
  // quietly completing only n_ballots of them.
  cfg.casts = 40;
  cfg.n_ballots = 10;
  cfg.n_vc = 4;
  cfg.f_vc = 1;
  cfg.concurrency = 8;
  cfg.options = 2;
  cfg.seed = 3;
  auto r = bench::run_vote_collection(cfg);
  EXPECT_EQ(r.completed, 40u);
}

}  // namespace
}  // namespace ddemos
