// Tests for the paper's security theorems at system level:
//   Theorem 1 (liveness): [d]-patient voters obtain receipts despite up to
//     fv faulty VC nodes and adversarial message delay.
//   Theorem 2 (safety): a valid receipt implies the vote is published on
//     honest BB nodes and included in the tally.
//   Theorem 3 (E2E verifiability): modification and clash attacks by a
//     malicious EA are detected by auditors at the predicted rates.
//   Theorem 4 (privacy, structural): no component's data reveals the
//     voter's choice before the trustees open the election.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "crypto/commit.hpp"

namespace ddemos::core {
namespace {

ElectionParams params(std::size_t voters, std::size_t options,
                      std::size_t n_vc = 4, std::size_t f_vc = 1) {
  ElectionParams p;
  p.election_id = to_bytes("security-test");
  for (std::size_t i = 0; i < options; ++i) {
    p.options.push_back("opt" + std::to_string(i));
  }
  p.n_voters = voters;
  p.n_vc = n_vc;
  p.f_vc = f_vc;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 60'000'000;
  return p;
}

// --- Theorem 1: liveness -------------------------------------------------

TEST(Liveness, PatientVoterSucceedsWithMaxCrashes) {
  // fv = 2 of 7 VC nodes crashed; every patient voter still gets a receipt
  // within (fv+1) patience windows of retrying.
  DriverConfig cfg;
  cfg.params = params(6, 2, 7, 2);
  cfg.seed = 21;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 1, 0, 1});
  cfg.crashed_vcs = {5, 6};
  cfg.voter_template.patience_us = 800'000;
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt());
    EXPECT_LE(runner.voter(v).attempts(), 3u);  // fv + 1
  }
}

TEST(Liveness, AdversarialDelayWithinBoundStillLive) {
  // The adversary delays every message by the full bound delta.
  DriverConfig cfg;
  cfg.params = params(3, 2);
  cfg.seed = 22;
  cfg.workload = VoteListWorkload::make({0, 1, 0});
  cfg.link = sim::LinkModel{40'000, 0, 0, 0};  // 40ms on every hop
  cfg.voter_template.patience_us = 5'000'000;
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt());
  }
  ASSERT_TRUE(runner.bb_node(0).result_published());
}

// Sweep: liveness holds across seeds and fault placements.
class LivenessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LivenessSweep, AllPatientVotersGetReceipts) {
  DriverConfig cfg;
  cfg.params = params(5, 3);
  cfg.seed = GetParam();
  cfg.workload = VoteListWorkload::make({0, 1, 2, 1, 0});
  cfg.crashed_vcs = {GetParam() % 4};
  cfg.voter_template.patience_us = 1'000'000;
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt()) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LivenessSweep,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// --- Theorem 2: safety ---------------------------------------------------

TEST(Safety, ReceiptImpliesVotePublishedAndTallied) {
  DriverConfig cfg;
  cfg.params = params(8, 2);
  cfg.seed = 31;
  std::vector<std::size_t> votes = {0, 0, 1, 0, 1, 1, 0, 1};
  cfg.workload = VoteListWorkload::make(votes);
  cfg.crashed_vcs = {1};  // a faulty VC must not exclude receipts
  cfg.voter_template.patience_us = 1'000'000;
  ElectionDriver runner(cfg);
  runner.run();

  // Collect the codes of voters holding valid receipts.
  std::vector<Bytes> receipt_codes;
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    if (runner.voter(v).has_receipt()) {
      receipt_codes.push_back(runner.voter(v).used_code());
    }
  }
  ASSERT_FALSE(receipt_codes.empty());
  // Every such code appears in the accepted vote set of every live BB.
  for (std::size_t b = 0; b < 3; ++b) {
    const auto& set = runner.bb_node(b).vote_set();
    for (const Bytes& code : receipt_codes) {
      bool found = false;
      for (const auto& e : set) {
        if (e.vote_code == code) found = true;
      }
      EXPECT_TRUE(found) << "bb " << b;
    }
  }
  // And the tally counts exactly the receipt holders.
  std::vector<std::uint64_t> expected(2, 0);
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    if (runner.voter(v).has_receipt()) ++expected[votes[v]];
  }
  EXPECT_EQ(runner.bb_node(0).result()->tally, expected);
}

TEST(Safety, VcNodesAgreeOnIdenticalVoteSets) {
  DriverConfig cfg;
  cfg.params = params(10, 3);
  cfg.seed = 32;
  cfg.workload = RoundRobinWorkload::make();  // 10 voters over 3 options
  ElectionDriver runner(cfg);
  runner.run();
  const auto& set0 = runner.vc_node(0).final_vote_set();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(runner.vc_node(i).final_vote_set(), set0);
  }
  EXPECT_EQ(set0.size(), 10u);
}

// --- Theorem 3: end-to-end verifiability ----------------------------------

TEST(Verifiability, ModificationAttackDetectedWhenAuditedPartTampered) {
  // The EA swaps the option encodings behind two vote codes on part B of
  // ballot 0. The voter is forced to vote with part A, so part B is opened
  // for audit and the tampering must surface.
  DriverConfig cfg;
  cfg.params = params(4, 2);
  cfg.seed = 41;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 1});
  cfg.voter_template.forced_part = 0;
  cfg.tamper_setup = [](ea::SetupArtifacts& arts) {
    for (auto& bb : arts.bb_inits) {
      auto& lines = bb.ballots[0].parts[1];
      std::swap(lines[0].encoding, lines[1].encoding);
      std::swap(lines[0].bit_proofs, lines[1].bit_proofs);
      std::swap(lines[0].sum_proof, lines[1].sum_proof);
      std::swap(lines[0].opening_comms, lines[1].opening_comms);
      std::swap(lines[0].zk_comms, lines[1].zk_comms);
    }
    for (auto& t : arts.trustee_inits) {
      auto& lines = t.ballots[0].parts[1];
      std::swap(lines[0], lines[1]);
    }
  };
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  // Voter 0's delegated audit catches the fraud.
  EXPECT_FALSE(auditor.verify_delegated(runner.voter(0).audit_info()).passed);
  // Untampered voters still verify.
  EXPECT_TRUE(auditor.verify_delegated(runner.voter(1).audit_info()).passed);
}

TEST(Verifiability, ModificationAttackMissedWhenTamperedPartUsed) {
  // If the voter happens to vote with the tampered part, her own audit does
  // not catch it (probability 1/2 per the paper) — but the vote-flips are
  // limited to such lucky ballots and the ZK proofs still pass.
  DriverConfig cfg;
  cfg.params = params(2, 2);
  cfg.seed = 42;
  cfg.workload = VoteListWorkload::make({0, 1});
  cfg.voter_template.forced_part = 1;  // voter uses the tampered part B
  cfg.tamper_setup = [](ea::SetupArtifacts& arts) {
    for (auto& bb : arts.bb_inits) {
      auto& lines = bb.ballots[0].parts[1];
      std::swap(lines[0].encoding, lines[1].encoding);
      std::swap(lines[0].bit_proofs, lines[1].bit_proofs);
      std::swap(lines[0].sum_proof, lines[1].sum_proof);
      std::swap(lines[0].opening_comms, lines[1].opening_comms);
      std::swap(lines[0].zk_comms, lines[1].zk_comms);
    }
    for (auto& t : arts.trustee_inits) {
      auto& lines = t.ballots[0].parts[1];
      std::swap(lines[0], lines[1]);
    }
  };
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  // The audit passes (attack undetected this time)...
  EXPECT_TRUE(auditor.verify_delegated(runner.voter(0).audit_info()).passed);
  // ...and the vote was flipped: voter 0 chose option 0 but the tally
  // counted option 1 (this is exactly the 1-vote deviation the theorem
  // bounds by the detection probability).
  EXPECT_EQ(runner.bb_node(0).result()->tally,
            (std::vector<std::uint64_t>{0, 2}));
}

TEST(Verifiability, InvalidEncodingCaughtByOpeningChecks) {
  // EA commits ballot 0 part B line 0 to a non-unit vector (two ones). The
  // opened part flunks the auditor's unit-vector check.
  DriverConfig cfg;
  cfg.params = params(2, 2);
  cfg.seed = 43;
  cfg.workload = VoteListWorkload::make({0, 1});
  cfg.voter_template.forced_part = 0;
  cfg.tamper_setup = [](ea::SetupArtifacts& arts) {
    crypto::Rng rng(999);
    crypto::Point key = arts.bb_inits[0].commit_key;
    // Re-commit line 0 of part B to (1,1) with fresh randomness, and hand
    // trustees matching openings so the BB opens it "successfully".
    std::vector<crypto::Fn> rs = {crypto::random_scalar(rng),
                                  crypto::random_scalar(rng)};
    std::vector<crypto::ElGamalCipher> enc = {
        crypto::eg_commit(key, crypto::Fn::one(), rs[0]),
        crypto::eg_commit(key, crypto::Fn::one(), rs[1])};
    for (auto& bb : arts.bb_inits) {
      bb.ballots[0].parts[1][0].encoding = enc;
    }
    for (std::size_t j = 0; j < 2; ++j) {
      auto dm = crypto::pedersen_vss_deal(crypto::Fn::one(), 2, 3, rng);
      auto dr = crypto::pedersen_vss_deal(rs[j], 2, 3, rng);
      for (auto& bb : arts.bb_inits) {
        bb.ballots[0].parts[1][0].opening_comms[2 * j] = dm.coefficient_comms;
        bb.ballots[0].parts[1][0].opening_comms[2 * j + 1] =
            dr.coefficient_comms;
      }
      for (std::size_t t = 0; t < 3; ++t) {
        arts.trustee_inits[t].ballots[0].parts[1][0].open_m[j] = dm.shares[t];
        arts.trustee_inits[t].ballots[0].parts[1][0].open_r[j] = dr.shares[t];
      }
    }
  };
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  auto report = auditor.verify_election();
  EXPECT_FALSE(report.passed);
}

// --- Theorem 4: privacy (structural checks) -------------------------------

TEST(Privacy, VcDataNeverContainsPlainVoteCodes) {
  DriverConfig cfg;
  cfg.params = params(3, 2);
  cfg.seed = 51;
  cfg.workload = VoteListWorkload::make({0, 1, 0});
  ElectionDriver runner(cfg);
  const auto& arts = runner.artifacts();
  // Collect every vote code from the printed ballots and scan all VC init
  // data: only salted hashes may appear.
  for (const auto& ballot : arts.voter_ballots) {
    for (const auto& part : ballot.parts) {
      for (const auto& line : part.lines) {
        for (const auto& vc : arts.vc_inits) {
          for (const auto& vb : vc.ballots) {
            if (vb.serial != ballot.serial) continue;
            for (const auto& vpart : vb.parts) {
              for (const auto& vline : vpart) {
                // The init data stores H(code||salt); the code itself must
                // not be recoverable by equality.
                EXPECT_NE(Bytes(vline.code_hash.begin(),
                                vline.code_hash.end()),
                          line.vote_code);
              }
            }
          }
        }
      }
    }
  }
}

TEST(Privacy, ReceiptsIndependentOfChosenOption) {
  // Two elections whose only difference is the chosen options produce
  // receipts drawn from the same pre-committed ballot data: receipts are
  // fixed per (ballot, part, option-row) at setup and reveal nothing about
  // which row was cast. Verify the receipt the voter gets matches the
  // printed one for her row (human verification) and that the VC node
  // never sees the option text at all.
  DriverConfig cfg;
  cfg.params = params(2, 3);
  cfg.seed = 52;
  std::vector<std::size_t> votes = {2, 1};
  cfg.workload = VoteListWorkload::make(votes);
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < 2; ++v) {
    const auto& voter = runner.voter(v);
    EXPECT_TRUE(voter.has_receipt());
    EXPECT_EQ(
        runner.artifacts()
            .voter_ballots[v]
            .parts[voter.used_part()]
            .lines[votes[v]]
            .receipt,
        voter.expected_receipt());
  }
}

TEST(Privacy, BbPayloadOrderIsShuffled) {
  // The committed encodings on the BB are permuted per part, so the cast
  // position leaks nothing: verify the permutation actually varies across
  // ballots (probability of all-identity over 8 ballots with m=3 is
  // (1/6)^8, far below test flakiness).
  DriverConfig cfg;
  cfg.params = params(8, 3);
  cfg.seed = 53;
  ElectionDriver runner(cfg);
  const auto& arts = runner.artifacts();
  std::size_t shuffled = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    const auto& printed = arts.voter_ballots[b].parts[0].lines;
    const auto& vc = arts.vc_inits[0].ballots[b].parts[0];
    // Compare printed order vs shuffled VC order via the salted hashes.
    for (std::size_t pos = 0; pos < 3; ++pos) {
      if (!crypto::salted_commit_check(vc[pos].code_hash,
                                       printed[pos].vote_code,
                                       vc[pos].salt)) {
        ++shuffled;
        break;
      }
    }
  }
  EXPECT_GT(shuffled, 0u);
}

TEST(Privacy, SubThresholdTrusteeSharesOpenNothing) {
  // ht-1 trustee shares of an option-encoding opening reconstruct a value
  // unrelated to the real one (information-theoretic hiding of Shamir).
  DriverConfig cfg;
  cfg.params = params(1, 2);
  cfg.seed = 54;
  ElectionDriver runner(cfg);
  const auto& arts = runner.artifacts();
  const auto& line = arts.trustee_inits[0].ballots[0].parts[0][0];
  // One share (ht = 2) cannot determine the secret: reconstructing with a
  // forged second share gives a different "secret" for each forgery.
  crypto::PedersenShare forged1{2, crypto::Fn::from_u64(7),
                                crypto::Fn::from_u64(8)};
  crypto::PedersenShare forged2{2, crypto::Fn::from_u64(9),
                                crypto::Fn::from_u64(10)};
  auto r1 = crypto::pedersen_vss_reconstruct(
      std::vector<crypto::PedersenShare>{line.open_m[0], forged1}, 2);
  auto r2 = crypto::pedersen_vss_reconstruct(
      std::vector<crypto::PedersenShare>{line.open_m[0], forged2}, 2);
  EXPECT_NE(r1.first, r2.first);
}

}  // namespace
}  // namespace ddemos::core
