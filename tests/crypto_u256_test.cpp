#include <gtest/gtest.h>

#include "crypto/fe.hpp"
#include "crypto/mont.hpp"
#include "crypto/rng.hpp"
#include "crypto/u256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ddemos::crypto {
namespace {

TEST(U256, BytesRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Bytes b = rng.bytes(32);
    U256 v = U256::from_bytes_be(b);
    EXPECT_EQ(v.to_bytes_be(), b);
  }
}

TEST(U256, RejectsWrongSize) {
  EXPECT_THROW(U256::from_bytes_be(Bytes(31)), CodecError);
  EXPECT_THROW(U256::from_bytes_be(Bytes(33)), CodecError);
}

TEST(U256, AddSubInverse) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    U256 a = U256::from_bytes_be(rng.bytes(32));
    U256 b = U256::from_bytes_be(rng.bytes(32));
    U256 sum, back;
    std::uint64_t carry = add_cc(a, b, sum);
    std::uint64_t borrow = sub_bb(sum, b, back);
    // carry and borrow cancel: a + b - b == a (mod 2^256).
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256, CmpOrdersLimbs) {
  U256 lo = U256::from_u64(5);
  U256 hi{};
  hi.w[3] = 1;
  EXPECT_EQ(cmp(lo, hi), -1);
  EXPECT_EQ(cmp(hi, lo), 1);
  EXPECT_EQ(cmp(hi, hi), 0);
}

TEST(U256, MulWideSmall) {
  U256 a = U256::from_u64(0xffffffffffffffffULL);
  U512 p = mul_wide(a, a);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[1], 0xfffffffffffffffeULL);
  EXPECT_EQ(p[2], 0u);
}

TEST(U256, Shr1) {
  U256 v{};
  v.w[1] = 1;  // 2^64
  U256 h = shr1(v);
  EXPECT_EQ(h.w[0], 1ull << 63);
  EXPECT_EQ(h.w[1], 0u);
}

TEST(Mont, RejectsEvenModulus) {
  U256 even = U256::from_u64(4);
  even.w[3] = 0x8000000000000000ull;
  even.w[0] &= ~1ull;
  EXPECT_THROW(make_mont_params(U256::from_u64(16)), CryptoError);
}

TEST(Fe, FieldAxioms) {
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    Fp a = Fp::from_bytes_mod(rng.bytes(32));
    Fp b = Fp::from_bytes_mod(rng.bytes(32));
    Fp c = Fp::from_bytes_mod(rng.bytes(32));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Fp::zero());
    EXPECT_EQ(a + Fp::zero(), a);
    EXPECT_EQ(a * Fp::one(), a);
  }
}

TEST(Fe, InverseIsMultiplicative) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::from_bytes_mod(rng.bytes(32));
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inv(), Fp::one());
  }
  // Scalar field too.
  for (int i = 0; i < 20; ++i) {
    Fn a = Fn::from_bytes_mod(rng.bytes(32));
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inv(), Fn::one());
  }
}

TEST(Fe, PowMatchesRepeatedMul) {
  Fp a = Fp::from_u64(3);
  Fp acc = Fp::one();
  for (int i = 0; i < 13; ++i) acc = acc * a;
  EXPECT_EQ(a.pow(U256::from_u64(13)), acc);
}

TEST(Fe, BytesRoundTripCanonical) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::from_bytes_mod(rng.bytes(32));
    EXPECT_EQ(Fp::from_bytes_mod(a.to_bytes_be()), a);
  }
}

TEST(Fe, KnownFieldFact) {
  // p - 1 squared is 1 mod p.
  U256 p = params<FieldTag>().mod;
  U256 pm1;
  sub_bb(p, U256::from_u64(1), pm1);
  Fp a = Fp::from_u256_mod(pm1);
  EXPECT_EQ(a * a, Fp::one());
}

TEST(Fe, ScalarAndFieldModuliDiffer) {
  EXPECT_NE(cmp(params<FieldTag>().mod, params<ScalarTag>().mod), 0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_NE(a.bytes(64), c.bytes(64));
}

TEST(Rng, BelowIsInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), ProtocolError);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(5);
  Rng f1 = a.fork("one");
  Rng a2(5);
  Rng f2 = a2.fork("two");
  EXPECT_NE(f1.bytes(32), f2.bytes(32));
}

}  // namespace
}  // namespace ddemos::crypto
