#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "crypto/rng.hpp"
#include "crypto/commit.hpp"
#include "ea/ea.hpp"
#include "store/ballot_store.hpp"

namespace ddemos::store {
namespace {

using core::Serial;
using core::VcBallotInit;

std::vector<VcBallotInit> make_ballots(std::size_t n, std::uint64_t seed) {
  // Small synthetic records with all fields populated.
  crypto::Rng rng(seed);
  std::set<Serial> serials;
  while (serials.size() < n) serials.insert(rng.u64());
  std::vector<VcBallotInit> out;
  for (Serial s : serials) {
    VcBallotInit b;
    b.serial = s;
    for (auto& part : b.parts) {
      part.resize(2);
      for (auto& line : part) {
        Bytes code = rng.bytes(20);
        line.salt = rng.bytes(8);
        line.code_hash = crypto::salted_commit(code, line.salt);
        line.receipt_share =
            crypto::Share{1, crypto::Fn::from_u64(rng.u64())};
        line.share_root = crypto::MerkleTree::leaf_hash(code);
        line.share_path = {line.share_root};
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

TEST(MemorySource, FindAndIndex) {
  auto ballots = make_ballots(50, 1);
  std::vector<Serial> serials;
  for (const auto& b : ballots) serials.push_back(b.serial);
  MemoryBallotSource src(ballots);
  EXPECT_EQ(src.size(), 50u);
  for (std::size_t i = 0; i < serials.size(); ++i) {
    EXPECT_EQ(src.serial_at(i), serials[i]);
    EXPECT_EQ(src.index_of(serials[i]), i);
    auto found = src.find(serials[i]);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->serial, serials[i]);
  }
  EXPECT_FALSE(src.find(0xdeadbeef).has_value());  // not a real serial
}

TEST(MemorySource, RejectsUnsorted) {
  auto ballots = make_ballots(5, 2);
  std::swap(ballots[0], ballots[1]);
  EXPECT_THROW(MemoryBallotSource{ballots}, ProtocolError);
}

class DiskSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/ddemos_store_test";
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/test.ballots";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_, path_;
};

TEST_F(DiskSourceTest, RoundTripsAllRecords) {
  auto ballots = make_ballots(200, 3);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_, 16);
  EXPECT_EQ(src.size(), 200u);
  for (const auto& b : ballots) {
    auto found = src.find(b.serial);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->serial, b.serial);
    ASSERT_EQ(found->parts[0].size(), b.parts[0].size());
    EXPECT_EQ(found->parts[0][0].code_hash, b.parts[0][0].code_hash);
    EXPECT_EQ(found->parts[1][1].salt, b.parts[1][1].salt);
  }
}

TEST_F(DiskSourceTest, MissingSerialReturnsNullopt) {
  auto ballots = make_ballots(20, 4);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_);
  EXPECT_FALSE(src.find(1).has_value());
}

TEST_F(DiskSourceTest, SerialAtMatchesSortedOrder) {
  auto ballots = make_ballots(64, 5);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(src.serial_at(i), ballots[i].serial);
    EXPECT_EQ(src.index_of(ballots[i].serial), i);
  }
  EXPECT_THROW(src.serial_at(64), ProtocolError);
}

TEST_F(DiskSourceTest, CacheHitsGrowOnRepeatedLookups) {
  auto ballots = make_ballots(500, 6);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_, 128);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < 500; i += 7) {
      (void)src.find(ballots[i].serial);
    }
  }
  EXPECT_GT(src.cache_hits(), src.page_reads());
}

TEST_F(DiskSourceTest, TinyCacheStillCorrect) {
  auto ballots = make_ballots(300, 7);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_, 4);  // pathologically small cache
  crypto::Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    std::size_t idx = rng.below(300);
    auto found = src.find(ballots[idx].serial);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->serial, ballots[idx].serial);
  }
}

TEST_F(DiskSourceTest, StreamingBuilderMatchesBatchBuild) {
  auto ballots = make_ballots(40, 9);
  DiskBallotSource::build(path_, ballots);
  std::string path2 = dir_ + "/stream.ballots";
  DiskBallotSource::Builder builder(path2);
  for (const auto& b : ballots) builder.add(b);
  builder.finish();
  DiskBallotSource a(path_), b(path2);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& ballot : ballots) {
    EXPECT_EQ(a.find(ballot.serial)->parts[0][0].code_hash,
              b.find(ballot.serial)->parts[0][0].code_hash);
  }
}

TEST_F(DiskSourceTest, BuilderRejectsUnsorted) {
  auto ballots = make_ballots(3, 10);
  DiskBallotSource::Builder builder(path_);
  builder.add(ballots[2]);
  EXPECT_THROW(builder.add(ballots[0]), ProtocolError);
}

TEST_F(DiskSourceTest, ConcurrentReadersOverStripedHandles) {
  // Per-shard read handles (lock-striped LRU + one FILE* per stripe): many
  // threads hammering find/index_of/serial_at concurrently must all see
  // correct records. Run with --gtest_filter under TSan CI for the race
  // check; here we assert correctness and that the stripes actually read.
  auto ballots = make_ballots(400, 12);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_, 64, 4);  // 4 read handles
  constexpr int kThreads = 4;
  constexpr int kLookups = 600;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      crypto::Rng rng(static_cast<std::uint64_t>(100 + t));
      for (int i = 0; i < kLookups; ++i) {
        std::size_t idx = rng.below(400);
        auto found = src.find(ballots[idx].serial);
        if (!found || found->serial != ballots[idx].serial ||
            found->parts[0][0].code_hash != ballots[idx].parts[0][0].code_hash) {
          ++failures;
          continue;
        }
        if (src.index_of(ballots[idx].serial) != idx ||
            src.serial_at(idx) != ballots[idx].serial) {
          ++failures;
        }
        if (src.find(ballots[idx].serial ^ 0x5a5a5a5aull)) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(src.page_reads(), 0u);
  EXPECT_GT(src.cache_hits(), 0u);
}

TEST_F(DiskSourceTest, SingleHandleStillCorrect) {
  // read_handles = 1 degenerates to the old single-lock behavior.
  auto ballots = make_ballots(50, 13);
  DiskBallotSource::build(path_, ballots);
  DiskBallotSource src(path_, 16, 1);
  for (const auto& b : ballots) {
    ASSERT_TRUE(src.find(b.serial).has_value());
  }
}

TEST_F(DiskSourceTest, RejectsCorruptHeader) {
  auto ballots = make_ballots(3, 11);
  DiskBallotSource::build(path_, ballots);
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    std::fputc(0x42, f);  // clobber magic
    std::fclose(f);
  }
  EXPECT_THROW(DiskBallotSource{path_}, ProtocolError);
}

TEST_F(DiskSourceTest, MissingFileThrows) {
  EXPECT_THROW(DiskBallotSource{"/tmp/no/such/file"}, ProtocolError);
}

}  // namespace
}  // namespace ddemos::store
