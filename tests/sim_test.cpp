#include <gtest/gtest.h>

#include "net/thread_net.hpp"
#include "sim/sim.hpp"
#include "util/error.hpp"

namespace ddemos::sim {
namespace {

// Test process: echoes received payloads back, counts deliveries.
class Echo : public Process {
 public:
  void on_message(NodeId from, const net::Buffer& payload) override {
    ++received;
    last = Bytes(payload.begin(), payload.end());
    if (!payload.empty() && payload[0] == 'p') {
      ctx().send(from, to_bytes("r"));
    }
  }
  int received = 0;
  Bytes last;
};

// Sends one ping to node 1 at start; records the reply time. reply_at is
// atomic because the ThreadNet test's completion predicate reads it while
// the worker writes it.
class Pinger : public Process {
 public:
  void on_start() override {
    sent_at = ctx().now();
    ctx().send(1, to_bytes("p"));
  }
  void on_message(NodeId, const net::Buffer&) override { reply_at = ctx().now(); }
  TimePoint sent_at = -1;
  std::atomic<TimePoint> reply_at{-1};
};

TEST(Sim, DeliversAndTracksLatency) {
  Simulation sim(1);
  sim.set_default_link(LinkModel{1000, 0, 0, 0});
  sim.add_node(std::make_unique<Pinger>(), "pinger");
  sim.add_node(std::make_unique<Echo>(), "echo");
  sim.start();
  sim.run_until_idle();
  auto& p = dynamic_cast<Pinger&>(sim.process(0));
  EXPECT_EQ(p.reply_at - p.sent_at, 2000);  // one RTT
  EXPECT_EQ(sim.delivered_messages(), 2u);
}

TEST(Sim, DeterministicAcrossRuns) {
  auto run = [] {
    Simulation sim(99);
    sim.set_default_link(LinkModel{500, 400, 0.0, 0.0});
    sim.add_node(std::make_unique<Pinger>(), "pinger");
    sim.add_node(std::make_unique<Echo>(), "echo");
    sim.start();
    sim.run_until_idle();
    return dynamic_cast<Pinger&>(sim.process(0)).reply_at.load();
  };
  EXPECT_EQ(run(), run());
}

TEST(Sim, DropsAllWithFullLoss) {
  Simulation sim(2);
  sim.set_default_link(LinkModel{100, 0, 1.0, 0.0});
  sim.add_node(std::make_unique<Pinger>(), "pinger");
  sim.add_node(std::make_unique<Echo>(), "echo");
  sim.start();
  sim.run_until_idle();
  EXPECT_EQ(sim.delivered_messages(), 0u);
  EXPECT_EQ(sim.dropped_messages(), 1u);
}

TEST(Sim, DuplicatesDeliverTwice) {
  Simulation sim(3);
  sim.set_default_link(LinkModel{100, 0, 0.0, 1.0});
  sim.add_node(std::make_unique<Pinger>(), "pinger");
  sim.add_node(std::make_unique<Echo>(), "echo");
  sim.start();
  sim.run_until_idle();
  auto& e = dynamic_cast<Echo&>(sim.process(1));
  EXPECT_EQ(e.received, 2);
}

TEST(Sim, CrashedNodeReceivesNothing) {
  Simulation sim(4);
  sim.add_node(std::make_unique<Pinger>(), "pinger");
  sim.add_node(std::make_unique<Echo>(), "echo");
  sim.crash(1);
  sim.start();
  sim.run_until_idle();
  EXPECT_EQ(dynamic_cast<Echo&>(sim.process(1)).received, 0);
  EXPECT_EQ(dynamic_cast<Pinger&>(sim.process(0)).reply_at, -1);
}

TEST(Sim, LinkFilterCanDelayAndDrop) {
  Simulation sim(5);
  sim.set_default_link(LinkModel{100, 0, 0, 0});
  sim.add_node(std::make_unique<Pinger>(), "pinger");
  sim.add_node(std::make_unique<Echo>(), "echo");
  // Adversary: delay 0->1 by 5000us, drop replies 1->0.
  sim.set_link_filter([](NodeId from, NodeId to,
                         TimePoint) -> std::optional<Duration> {
    if (from == 0 && to == 1) return 5000;
    return std::nullopt;  // drop
  });
  sim.start();
  sim.run_until_idle();
  auto& e = dynamic_cast<Echo&>(sim.process(1));
  EXPECT_EQ(e.received, 1);
  EXPECT_EQ(dynamic_cast<Pinger&>(sim.process(0)).reply_at, -1);
  EXPECT_EQ(sim.dropped_messages(), 1u);
}

class TimerProc : public Process {
 public:
  void on_start() override { token = ctx().set_timer(2500); }
  void on_message(NodeId, const net::Buffer&) override {}
  void on_timer(std::uint64_t t) override {
    if (t == token) fired_at = ctx().now();
  }
  std::uint64_t token = 0;
  TimePoint fired_at = -1;
};

TEST(Sim, TimersFireAtRequestedTime) {
  Simulation sim(6);
  sim.add_node(std::make_unique<TimerProc>(), "t");
  sim.start();
  sim.run_until_idle();
  EXPECT_EQ(dynamic_cast<TimerProc&>(sim.process(0)).fired_at, 2500);
}

// CPU charging serializes a node's handlers in virtual time.
class Charger : public Process {
 public:
  void on_message(NodeId, const net::Buffer&) override {
    starts.push_back(ctx().now());
    ctx().charge(1000);
  }
  std::vector<TimePoint> starts;
};

class Burst : public Process {
 public:
  void on_start() override {
    for (int i = 0; i < 3; ++i) ctx().send(1, to_bytes("x"));
  }
  void on_message(NodeId, const net::Buffer&) override {}
};

TEST(Sim, ChargedCpuSerializesHandlers) {
  Simulation sim(7);
  sim.set_default_link(LinkModel{100, 0, 0, 0});
  sim.add_node(std::make_unique<Burst>(), "burst");
  sim.add_node(std::make_unique<Charger>(), "charger");
  sim.start();
  sim.run_until_idle();
  auto& c = dynamic_cast<Charger&>(sim.process(1));
  ASSERT_EQ(c.starts.size(), 3u);
  // All arrive at t=100 but handlers run back-to-back 1000us apart.
  EXPECT_EQ(c.starts[0], 100);
  EXPECT_EQ(c.starts[1], 1100);
  EXPECT_EQ(c.starts[2], 2100);
}

// Forwards every message forever: drives the event budget to exhaustion.
class Bouncer : public Process {
 public:
  void on_start() override { ctx().send(1 - ctx().self(), to_bytes("x")); }
  void on_message(NodeId from, const net::Buffer& payload) override {
    ctx().send(from, payload);
  }
};

TEST(Sim, EventBudgetErrorCarriesCountAndVirtualTime) {
  Simulation sim(5);
  sim.add_node(std::make_unique<Bouncer>(), "a");
  sim.add_node(std::make_unique<Bouncer>(), "b");
  sim.start();
  try {
    sim.run_until_idle(1000);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("1000 events processed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("virtual time"), std::string::npos) << msg;
  }
  // An exactly-consumed budget with an empty queue is not an error.
  Simulation sim2(5);
  sim2.add_node(std::make_unique<Echo>(), "only");
  sim2.start();
  EXPECT_NO_THROW(sim2.run_until_idle(0));
}

TEST(Sim, RunToQuiescenceStopsEarlyOnPredicate) {
  Simulation sim(6);
  sim.add_node(std::make_unique<Bouncer>(), "a");
  sim.add_node(std::make_unique<Bouncer>(), "b");
  RunOptions opts;
  opts.max_events = 100'000;
  opts.probe_interval = 16;
  std::size_t probes = 0;
  opts.probe = [&probes] { ++probes; };
  // The bounce never ends; the predicate ends the run at a probe boundary.
  EXPECT_TRUE(sim.run_to_quiescence(
      [&sim] { return sim.events_processed() >= 64; }, opts));
  EXPECT_GE(sim.events_processed(), 64u);
  EXPECT_LT(sim.events_processed(), 1000u);
  EXPECT_GT(probes, 0u);
}

TEST(Sim, RunUntilStopsAtDeadline) {
  Simulation sim(8);
  sim.add_node(std::make_unique<TimerProc>(), "t");
  sim.start();
  sim.run_until(1000);
  EXPECT_EQ(dynamic_cast<TimerProc&>(sim.process(0)).fired_at, -1);
  EXPECT_EQ(sim.now(), 1000);
  sim.run_until(3000);
  EXPECT_EQ(dynamic_cast<TimerProc&>(sim.process(0)).fired_at, 2500);
}

TEST(ThreadNet, PingPongOverThreads) {
  net::ThreadNet net;
  net.add_node(std::make_unique<Pinger>(), "pinger");
  net.add_node(std::make_unique<Echo>(), "echo");
  auto& pinger = dynamic_cast<Pinger&>(net.process(0));
  RunOptions opts;
  opts.wall_timeout_us = 5'000'000;
  EXPECT_TRUE(
      net.run_to_quiescence([&] { return pinger.reply_at >= 0; }, opts));
  net.stop();
  EXPECT_GE(pinger.reply_at, 0);
}

class ThreadTimer : public Process {
 public:
  void on_start() override { ctx().set_timer(20'000); }  // 20ms
  void on_message(NodeId, const net::Buffer&) override {}
  void on_timer(std::uint64_t) override { fired = true; }
  std::atomic<bool> fired{false};
};

TEST(ThreadNet, TimersFire) {
  net::ThreadNet net;
  net.add_node(std::make_unique<ThreadTimer>(), "t");
  auto& timer = dynamic_cast<ThreadTimer&>(net.process(0));
  RunOptions opts;
  opts.wall_timeout_us = 5'000'000;
  EXPECT_TRUE(net.run_to_quiescence([&] { return timer.fired.load(); }, opts));
  net.stop();
  EXPECT_TRUE(timer.fired);
}

}  // namespace
}  // namespace ddemos::sim
