#include <gtest/gtest.h>

#include "consensus/binary_consensus.hpp"
#include "consensus/rbc.hpp"
#include "sim/sim.hpp"

namespace ddemos::consensus {
namespace {

using sim::NodeId;
using sim::Simulation;

// --- RBC harness -------------------------------------------------------

class RbcNode : public sim::Process {
 public:
  RbcNode(std::size_t n, std::size_t f, std::size_t index)
      : n_(n), index_(index) {
    engine_ = std::make_unique<RbcEngine>(
        n, f, index,
        RbcEngine::Hooks{
            [this](Bytes msg) {
              net::Buffer buf(std::move(msg));  // one allocation, n handles
              for (std::size_t p = 0; p < n_; ++p) {
                ctx().send(static_cast<NodeId>(p), buf);
              }
            },
            [this](std::size_t origin, std::uint64_t tag,
                   const Bytes& payload) {
              delivered[{origin, tag}] = payload;
            }});
  }

  void on_message(NodeId from, const net::Buffer& payload) override {
    engine_->on_message(from, payload);
  }

  void broadcast(std::uint64_t tag, Bytes payload) {
    engine_->broadcast(tag, std::move(payload));
  }

  std::map<std::pair<std::size_t, std::uint64_t>, Bytes> delivered;

 private:
  std::size_t n_, index_;
  std::unique_ptr<RbcEngine> engine_;
};

// A Byzantine broadcaster that equivocates: sends SEND(a) to half the
// nodes and SEND(b) to the rest, then echoes whatever it likes.
class EquivocatingRbcNode : public sim::Process {
 public:
  EquivocatingRbcNode(std::size_t n, std::size_t index)
      : n_(n), index_(index) {}
  void on_start() override {
    for (std::size_t p = 0; p < n_; ++p) {
      Writer w;
      w.u8(1);  // SEND
      w.varint(index_);
      w.varint(7);
      w.bytes(p < n_ / 2 ? to_bytes("aaa") : to_bytes("bbb"));
      ctx().send(static_cast<NodeId>(p), w.take());
    }
  }
  void on_message(NodeId, const net::Buffer&) override {}  // stays silent after

 private:
  std::size_t n_, index_;
};

struct RbcCluster {
  explicit RbcCluster(std::size_t n, std::size_t f, std::uint64_t seed,
                      sim::LinkModel link = sim::LinkModel::lan())
      : sim(seed) {
    sim.set_default_link(link);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(dynamic_cast<RbcNode*>(
          &sim.process(sim.add_node(std::make_unique<RbcNode>(n, f, i),
                                    "rbc" + std::to_string(i)))));
    }
  }
  Simulation sim;
  std::vector<RbcNode*> nodes;
};

TEST(Rbc, AllDeliverSamePayload) {
  RbcCluster c(4, 1, 1);
  c.sim.start();
  c.nodes[0]->broadcast(42, to_bytes("hello"));
  c.sim.run_until_idle();
  for (auto* n : c.nodes) {
    auto it = n->delivered.find({0, 42});
    ASSERT_NE(it, n->delivered.end());
    EXPECT_EQ(it->second, to_bytes("hello"));
  }
}

TEST(Rbc, ToleratesCrashedFollower) {
  RbcCluster c(4, 1, 2);
  c.sim.crash(3);
  c.sim.start();
  c.nodes[1]->broadcast(5, to_bytes("payload"));
  c.sim.run_until_idle();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(c.nodes[i]->delivered.count({1, 5})) << i;
  }
}

TEST(Rbc, NoDeliveryWithoutQuorum) {
  // With 2 of 4 crashed (> f), delivery cannot happen, but nothing hangs.
  RbcCluster c(4, 1, 3);
  c.sim.crash(2);
  c.sim.crash(3);
  c.sim.start();
  c.nodes[0]->broadcast(1, to_bytes("x"));
  c.sim.run_until_idle();
  EXPECT_FALSE(c.nodes[0]->delivered.count({0, 1}));
  EXPECT_FALSE(c.nodes[1]->delivered.count({0, 1}));
}

TEST(Rbc, EquivocatorCannotSplitDelivery) {
  // 4 nodes; node 3 replaced by an equivocator. If any honest node
  // delivers, all deliver the same value.
  Simulation sim(4);
  std::vector<RbcNode*> honest;
  for (std::size_t i = 0; i < 3; ++i) {
    honest.push_back(dynamic_cast<RbcNode*>(&sim.process(
        sim.add_node(std::make_unique<RbcNode>(4, 1, i), "h"))));
  }
  sim.add_node(std::make_unique<EquivocatingRbcNode>(4, 3), "byz");
  sim.start();
  sim.run_until_idle();
  std::vector<Bytes> seen;
  for (auto* n : honest) {
    auto it = n->delivered.find({3, 7});
    if (it != n->delivered.end()) seen.push_back(it->second);
  }
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_EQ(seen[0], seen[i]);
}

TEST(Rbc, SendSpoofingIgnored) {
  // Node 2 fakes a SEND claiming origin 0; nobody should deliver for 0.
  RbcCluster c(4, 1, 5);
  c.sim.start();
  Writer w;
  w.u8(1);  // SEND
  w.varint(0);
  w.varint(9);
  w.bytes(to_bytes("forged"));
  // Inject: node 2 sends the forged message to everyone.
  for (std::size_t p = 0; p < 4; ++p) {
    c.nodes[2]->delivered.clear();
  }
  // Feed directly through the engine API.
  for (auto* n : c.nodes) n->on_message(2, w.data());
  c.sim.run_until_idle();
  for (auto* n : c.nodes) EXPECT_FALSE(n->delivered.count({0, 9}));
}

TEST(Rbc, RejectsBadConfig) {
  EXPECT_THROW(RbcEngine(3, 1, 0, {}), ProtocolError);
}

// --- Batched binary consensus harness ----------------------------------

class BcNode : public sim::Process {
 public:
  BcNode(const ConsensusConfig& cfg, std::vector<CoinShare> shares,
         std::vector<crypto::Hash32> roots, Bitmap input)
      : cfg_(cfg), input_(std::move(input)) {
    engine_ = std::make_unique<BatchBinaryConsensus>(
        cfg, std::move(shares), std::move(roots),
        BatchBinaryConsensus::Hooks{
            [this](Bytes msg) {
              net::Buffer buf(std::move(msg));  // one allocation, n handles
              for (std::size_t p = 0; p < cfg_.nodes; ++p) {
                ctx().send(static_cast<NodeId>(p), buf);
              }
            },
            nullptr,
            [this] { completed = true; }});
  }

  void on_start() override { engine_->start(input_); }
  void on_message(NodeId from, const net::Buffer& payload) override {
    engine_->on_message(from, payload);
  }

  BatchBinaryConsensus& engine() { return *engine_; }
  bool completed = false;

 private:
  ConsensusConfig cfg_;
  Bitmap input_;
  std::unique_ptr<BatchBinaryConsensus> engine_;
};

// A Byzantine consensus node: claims decided values without justification
// and sends conflicting BVALs for every instance.
class ByzBcNode : public sim::Process {
 public:
  ByzBcNode(std::size_t n, std::size_t instances)
      : n_(n), instances_(instances) {}
  void on_start() override {
    // BVAL both values for round 0.
    Writer w;
    w.u8(1);
    w.varint(0);
    Bitmap all(instances_);
    for (std::size_t i = 0; i < instances_; ++i) all.set(i);
    all.encode(w);
    all.encode(w);
    Bytes msg = w.take();
    for (std::size_t p = 0; p < n_; ++p) {
      ctx().send(static_cast<NodeId>(p), msg);
    }
    // False DECIDED claims for value 1 everywhere.
    Writer d;
    d.u8(4);
    all.encode(d);
    all.encode(d);
    Bytes claim = d.take();
    for (std::size_t p = 0; p < n_; ++p) {
      ctx().send(static_cast<NodeId>(p), claim);
    }
  }
  void on_message(NodeId, const net::Buffer&) override {}

 private:
  std::size_t n_, instances_;
};

struct BcCluster {
  BcCluster(std::size_t n, std::size_t f, std::size_t instances,
            std::uint64_t seed, const std::vector<Bitmap>& inputs,
            sim::LinkModel link = sim::LinkModel::lan(),
            std::size_t byzantine = 0)
      : sim(seed) {
    sim.set_default_link(link);
    crypto::Rng dealer(seed ^ 0xc01ec01e);
    ConsensusConfig cfg{n, f, instances, 0, 64};
    CoinDeal deal = deal_coins(n, f + 1, cfg.max_rounds, dealer);
    for (std::size_t i = 0; i < n - byzantine; ++i) {
      cfg.self_index = i;
      nodes.push_back(dynamic_cast<BcNode*>(&sim.process(sim.add_node(
          std::make_unique<BcNode>(cfg, deal.node_shares[i],
                                   deal.round_roots, inputs[i]),
          "bc" + std::to_string(i)))));
    }
    for (std::size_t i = n - byzantine; i < n; ++i) {
      sim.add_node(std::make_unique<ByzBcNode>(n, instances), "byz");
    }
  }
  Simulation sim;
  std::vector<BcNode*> nodes;
};

Bitmap make_input(std::size_t instances, std::uint64_t pattern) {
  Bitmap b(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    if ((pattern >> (i % 64)) & 1) b.set(i);
  }
  return b;
}

TEST(BinaryConsensus, UnanimousDecidesInput) {
  std::size_t n = 4, inst = 8;
  std::vector<Bitmap> inputs(n, make_input(inst, 0b10110101));
  BcCluster c(n, 1, inst, 11, inputs);
  c.sim.start();
  c.sim.run_until_idle();
  for (auto* node : c.nodes) {
    ASSERT_TRUE(node->completed);
    EXPECT_EQ(node->engine().decisions(), inputs[0]);
  }
}

TEST(BinaryConsensus, AgreementWithMixedInputs) {
  std::size_t n = 4, inst = 16;
  std::vector<Bitmap> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(make_input(inst, 0x9e3779b97f4a7c15ull * (i + 1)));
  }
  BcCluster c(n, 1, inst, 12, inputs);
  c.sim.start();
  c.sim.run_until_idle();
  for (auto* node : c.nodes) ASSERT_TRUE(node->completed);
  for (std::size_t i = 1; i < c.nodes.size(); ++i) {
    EXPECT_EQ(c.nodes[i]->engine().decisions(),
              c.nodes[0]->engine().decisions());
  }
}

// Property sweep: agreement + validity over seeds, cluster sizes, faults.
struct SweepParam {
  std::size_t n, f, crashed, byzantine;
  std::uint64_t seed;
};

class ConsensusSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConsensusSweep, AgreementValidityTermination) {
  auto [n, f, crashed, byzantine, seed] = GetParam();
  std::size_t inst = 12;
  std::vector<Bitmap> inputs;
  crypto::Rng r(seed);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(make_input(inst, r.u64()));
  }
  BcCluster c(n, f, inst, seed,
              inputs, sim::LinkModel::lossy(0.0, 0.05), byzantine);
  // Crash `crashed` honest nodes (they never participate).
  for (std::size_t i = 0; i < crashed; ++i) {
    c.sim.crash(static_cast<NodeId>(c.nodes.size() - 1 - i));
  }
  c.sim.start();
  c.sim.run_until_idle();

  std::vector<BcNode*> alive;
  for (auto* node : c.nodes) {
    if (!c.sim.crashed(
            static_cast<NodeId>(node - c.nodes[0] >= 0 ? 0 : 0))) {
    }
  }
  // Collect live honest nodes (first n - byzantine - crashed).
  std::size_t live = c.nodes.size() - crashed;
  for (std::size_t i = 0; i < live; ++i) alive.push_back(c.nodes[i]);

  for (auto* node : alive) {
    ASSERT_TRUE(node->completed) << "node did not terminate";
  }
  // Agreement.
  for (std::size_t i = 1; i < alive.size(); ++i) {
    EXPECT_EQ(alive[i]->engine().decisions(), alive[0]->engine().decisions());
  }
  // Validity: if every honest input agreed on an instance, the decision is
  // that value (Byzantine nodes cannot inject values nobody proposed).
  for (std::size_t i = 0; i < inst; ++i) {
    bool all_one = true, all_zero = true;
    for (std::size_t v = 0; v < live; ++v) {
      if (inputs[v].get(i)) {
        all_zero = false;
      } else {
        all_one = false;
      }
    }
    if (all_one) EXPECT_TRUE(alive[0]->engine().decision(i));
    if (all_zero) EXPECT_FALSE(alive[0]->engine().decision(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsensusSweep,
    ::testing::Values(SweepParam{4, 1, 0, 0, 100}, SweepParam{4, 1, 0, 0, 101},
                      SweepParam{4, 1, 1, 0, 102}, SweepParam{4, 1, 0, 1, 103},
                      SweepParam{7, 2, 0, 0, 104}, SweepParam{7, 2, 2, 0, 105},
                      SweepParam{7, 2, 0, 2, 106}, SweepParam{7, 2, 1, 1, 107},
                      SweepParam{10, 3, 0, 0, 108},
                      SweepParam{10, 3, 3, 0, 109},
                      SweepParam{10, 3, 0, 3, 110},
                      SweepParam{13, 4, 2, 2, 111}));

TEST(BinaryConsensus, WanLatencyStillTerminates) {
  std::size_t n = 4, inst = 4;
  std::vector<Bitmap> inputs(n, make_input(inst, 0b0110));
  BcCluster c(n, 1, inst, 42, inputs, sim::LinkModel::wan());
  c.sim.start();
  c.sim.run_until_idle();
  for (auto* node : c.nodes) ASSERT_TRUE(node->completed);
}

TEST(BinaryConsensus, RejectsBadConfig) {
  crypto::Rng rng(1);
  CoinDeal deal = deal_coins(4, 2, 64, rng);
  ConsensusConfig bad{4, 2, 1, 0, 64};  // n < 3f+1
  EXPECT_THROW(BatchBinaryConsensus(bad, deal.node_shares[0],
                                    deal.round_roots, {}),
               ProtocolError);
}

TEST(BinaryConsensus, InputSizeMismatchThrows) {
  crypto::Rng rng(2);
  CoinDeal deal = deal_coins(4, 2, 64, rng);
  ConsensusConfig cfg{4, 1, 8, 0, 64};
  BatchBinaryConsensus bc(cfg, deal.node_shares[0], deal.round_roots,
                          {[](Bytes) {}, nullptr, nullptr});
  EXPECT_THROW(bc.start(Bitmap(5)), ProtocolError);
}

TEST(Coin, DealVerifiesAndReconstructs) {
  crypto::Rng rng(3);
  std::size_t n = 5, t = 2, rounds = 8;
  CoinDeal deal = deal_coins(n, t, rounds, rng);
  ASSERT_EQ(deal.node_shares.size(), n);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<crypto::Share> shares;
    for (std::size_t i = 0; i < n; ++i) {
      const CoinShare& cs = deal.node_shares[i][r];
      EXPECT_TRUE(verify_coin_share(cs, i, n, deal.round_roots[r]));
      shares.push_back(cs.share);
    }
    // Any t shares give the same coin.
    bool v1 = coin_value({shares.begin(), shares.begin() + 2}, t);
    bool v2 = coin_value({shares.begin() + 2, shares.begin() + 4}, t);
    EXPECT_EQ(v1, v2);
  }
}

TEST(Coin, TamperedShareRejected) {
  crypto::Rng rng(4);
  CoinDeal deal = deal_coins(4, 2, 2, rng);
  CoinShare cs = deal.node_shares[1][0];
  cs.share.y = cs.share.y + crypto::Fn::one();
  EXPECT_FALSE(verify_coin_share(cs, 1, 4, deal.round_roots[0]));
  // Wrong claimed sender also rejected.
  EXPECT_FALSE(
      verify_coin_share(deal.node_shares[1][0], 2, 4, deal.round_roots[0]));
}

}  // namespace
}  // namespace ddemos::consensus
