// Speed sanity gate: a regression that silently drops ec_mul back onto the
// naive ladder (or wrecks the wNAF engine's constant factor) fails fast in
// CI. Only asserts in optimized, unsanitized builds; skipped under Debug,
// TSan, or a time-scaled environment (DDEMOS_TEST_TIME_SCALE is set by the
// sanitizer CI jobs), where timing ratios are meaningless.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "crypto/ec.hpp"
#include "crypto/rng.hpp"
#include "crypto/zkp.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DDEMOS_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DDEMOS_SANITIZED_BUILD 1
#endif
#endif
#ifndef DDEMOS_SANITIZED_BUILD
#define DDEMOS_SANITIZED_BUILD 0
#endif

namespace ddemos::crypto {
namespace {

bool skip_reason(const char** why) {
#ifndef NDEBUG
  *why = "unoptimized (Debug) build";
  return true;
#else
  if (DDEMOS_SANITIZED_BUILD) {
    *why = "sanitizer build";
    return true;
  }
  if (std::getenv("DDEMOS_TEST_TIME_SCALE") != nullptr) {
    *why = "time-scaled environment (sanitizer CI)";
    return true;
  }
  return false;
#endif
}

// Best-of-3 wall time for `iters` evaluations of fn.
template <typename F>
double best_ns_per_op(int iters, F&& fn) {
  double best = 1e18;
  for (int pass = 0; pass < 3; ++pass) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn(i);
    auto t1 = std::chrono::steady_clock::now();
    double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        iters;
    if (ns < best) best = ns;
  }
  return best;
}

TEST(CryptoSpeed, WnafGlvMulBeatsNaiveLadderTwofold) {
  const char* why = nullptr;
  if (skip_reason(&why)) GTEST_SKIP() << "speed gate skipped: " << why;

  Rng rng(991);
  Point p = ec_mul_g(random_scalar(rng));
  constexpr int kIters = 40;
  std::vector<Fn> ks;
  for (int i = 0; i < kIters; ++i) ks.push_back(random_scalar(rng));

  // Warm up both paths (and the engine's static tables) while checking
  // agreement, so the timed loops measure steady-state arithmetic only.
  Point sink = Point::infinity();
  ASSERT_TRUE(ec_eq(ec_mul(ks[0], p), ec_mul_naive(ks[0], p)));

  double fast_ns = best_ns_per_op(kIters, [&](int i) {
    sink = ec_mul(ks[static_cast<std::size_t>(i)], p);
  });
  Point fast_last = sink;
  double naive_ns = best_ns_per_op(kIters, [&](int i) {
    sink = ec_mul_naive(ks[static_cast<std::size_t>(i)], p);
  });
  ASSERT_TRUE(ec_eq(fast_last, sink));  // same final scalar, same point

  double ratio = naive_ns / fast_ns;
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\",\"name\":\"ec_mul\","
      "\"ns_per_op\":%.1f}\n",
      fast_ns);
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\",\"name\":\"ec_mul_naive\","
      "\"ns_per_op\":%.1f}\n",
      naive_ns);
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\",\"name\":\"ec_mul_speedup\","
      "\"ratio\":%.2f}\n",
      ratio);
  EXPECT_GE(ratio, 2.0) << "wNAF/GLV ec_mul regressed to within 2x of the "
                           "naive double-and-add ladder";
}

TEST(CryptoSpeed, MsmAutoBeatsStraussAtAuditScale) {
  const char* why = nullptr;
  if (skip_reason(&why)) GTEST_SKIP() << "speed gate skipped: " << why;

  // At n = 1024 (the working set of one chunked-batch audit MSM) the auto
  // front door must route to Pippenger and clearly beat Strauss. The 1.5x
  // floor sits well under the ~1.8x measured on the calibration box, so
  // the gate trips on a broken dispatch (crossover regressed above 1024)
  // or a wrecked bucket engine, not on machine-to-machine noise.
  Rng rng(993);
  constexpr std::size_t kN = 1024;
  std::vector<Fn> ks;
  std::vector<Point> ps;
  for (std::size_t i = 0; i < kN; ++i) {
    ks.push_back(random_scalar(rng));
    ps.push_back(ec_mul_g(random_scalar(rng)));
  }
  ASSERT_TRUE(ec_eq(ec_msm(ks, ps), ec_msm_strauss(ks, ps)));

  Point sink = Point::infinity();
  double auto_ns = best_ns_per_op(3, [&](int) { sink = ec_msm(ks, ps); });
  Point auto_last = sink;
  double strauss_ns =
      best_ns_per_op(3, [&](int) { sink = ec_msm_strauss(ks, ps); });
  ASSERT_TRUE(ec_eq(auto_last, sink));

  double ratio = strauss_ns / auto_ns;
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\",\"name\":\"ec_msm_1024\","
      "\"ns_per_op\":%.1f}\n",
      auto_ns);
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\","
      "\"name\":\"ec_msm_strauss_1024\",\"ns_per_op\":%.1f}\n",
      strauss_ns);
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\",\"name\":\"ec_msm_speedup\","
      "\"ratio\":%.2f}\n",
      ratio);
  EXPECT_GE(ratio, 1.5) << "ec_msm auto-select no longer beats Strauss at "
                           "n=1024; Pippenger dispatch or bucket engine "
                           "regressed";
}

TEST(CryptoSpeed, BitProofVerifySpeedupReported) {
  const char* why = nullptr;
  if (skip_reason(&why)) GTEST_SKIP() << "speed gate skipped: " << why;

  Rng rng(992);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  Fn ch = random_scalar(rng);
  BitProofResponse resp = p.secrets.at(ch);
  ASSERT_TRUE(verify_bit(key, c, p.first_move, ch, resp));

  bool sink = false;
  double fast_ns = best_ns_per_op(20, [&](int) {
    sink ^= verify_bit(key, c, p.first_move, ch, resp);
  });
  double naive_ns = best_ns_per_op(20, [&](int) {
    sink ^= verify_bit_naive(key, c, p.first_move, ch, resp);
  });
  ASSERT_FALSE(!sink && sink);  // keep `sink` alive
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\",\"name\":\"bit_proof_verify\","
      "\"ns_per_op\":%.1f}\n",
      fast_ns);
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\","
      "\"name\":\"bit_proof_verify_naive\",\"ns_per_op\":%.1f}\n",
      naive_ns);
  std::printf(
      "BENCH_JSON {\"bench\":\"crypto_speed\","
      "\"name\":\"bit_proof_verify_speedup\",\"ratio\":%.2f}\n",
      naive_ns / fast_ns);
  // The hard gate lives on ec_mul above; the verifier ratio is tracked in
  // the bench artifact (target >= 1.8x, see EXPERIMENTS.md).
  EXPECT_GE(naive_ns / fast_ns, 1.2);
}

}  // namespace
}  // namespace ddemos::crypto
