#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/commit.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ddemos::crypto {
namespace {

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(hash_bytes(sha256(to_bytes("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(hash_bytes(sha256(Bytes{}))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(hash_bytes(sha256(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(hash_bytes(h.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Rng rng(3);
  Bytes data = rng.bytes(10'000);
  Sha256 h;
  std::size_t off = 0;
  std::size_t cut[] = {1, 63, 64, 65, 100, 9707};
  for (std::size_t c : cut) {
    h.update(BytesView(data).subspan(off, c));
    off += c;
  }
  h.update(BytesView(data).subspan(off));
  EXPECT_EQ(h.finish(), sha256(data));
}

TEST(Sha256, PartsMatchesConcat) {
  Bytes a = to_bytes("hello ");
  Bytes b = to_bytes("world");
  EXPECT_EQ(sha256_parts({a, b}), sha256(to_bytes("hello world")));
}

TEST(Aes128, Fips197Vector) {
  Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(BytesView(back, 16)), to_hex(pt));
}

TEST(Aes128, RejectsBadKeySize) {
  EXPECT_THROW(Aes128(Bytes(15)), CryptoError);
}

TEST(AesCbc, RoundTripVariousLengths) {
  Rng rng(4);
  Bytes key = rng.bytes(16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 20u, 100u}) {
    Bytes pt = rng.bytes(len);
    Bytes ct = aes128_cbc_encrypt(key, pt, rng);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), len);  // IV + at least one padded block
    EXPECT_EQ(aes128_cbc_decrypt(key, ct), pt);
  }
}

TEST(AesCbc, WrongKeyFailsOrGarbles) {
  Rng rng(5);
  Bytes key = rng.bytes(16);
  Bytes key2 = rng.bytes(16);
  Bytes pt = to_bytes("vote-code-1234567890");
  Bytes ct = aes128_cbc_encrypt(key, pt, rng);
  try {
    Bytes out = aes128_cbc_decrypt(key2, ct);
    EXPECT_NE(out, pt);  // overwhelmingly either throws or differs
  } catch (const CryptoError&) {
    SUCCEED();
  }
}

TEST(AesCbc, RandomizedIvDiffers) {
  Rng rng(6);
  Bytes key = rng.bytes(16);
  Bytes pt = to_bytes("same plaintext");
  EXPECT_NE(aes128_cbc_encrypt(key, pt, rng), aes128_cbc_encrypt(key, pt, rng));
}

TEST(AesCbc, MalformedCiphertextThrows) {
  Bytes key(16, 1);
  EXPECT_THROW(aes128_cbc_decrypt(key, Bytes(16)), CryptoError);  // IV only
  EXPECT_THROW(aes128_cbc_decrypt(key, Bytes(40)), CryptoError);  // not mult 16
}

TEST(SaltedCommit, BindsAndValidates) {
  Rng rng(7);
  Bytes code = rng.bytes(20);
  Bytes salt = rng.bytes(8);
  Hash32 c = salted_commit(code, salt);
  EXPECT_TRUE(salted_commit_check(c, code, salt));
  Bytes other = rng.bytes(20);
  EXPECT_FALSE(salted_commit_check(c, other, salt));
  Bytes salt2 = rng.bytes(8);
  EXPECT_FALSE(salted_commit_check(c, code, salt2));
}

TEST(VoteCodeEncryption, RoundTrip) {
  Rng rng(8);
  Bytes msk = rng.bytes(16);
  Bytes code = rng.bytes(20);
  Bytes blob = encrypt_vote_code(msk, code, rng);
  EXPECT_EQ(decrypt_vote_code(msk, blob), code);
}

TEST(Merkle, SingleLeaf) {
  std::vector<Hash32> leaves = {MerkleTree::leaf_hash(to_bytes("a"))};
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), leaves[0]);
  EXPECT_TRUE(MerkleTree::verify(t.root(), leaves[0], 0, t.path(0)));
}

TEST(Merkle, AllLeavesVerify) {
  for (std::size_t n : {2u, 3u, 4u, 5u, 7u, 8u, 13u}) {
    std::vector<Hash32> leaves;
    for (std::size_t i = 0; i < n; ++i) {
      leaves.push_back(MerkleTree::leaf_hash(Bytes{static_cast<uint8_t>(i)}));
    }
    MerkleTree t(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(MerkleTree::verify(t.root(), leaves[i], i, t.path(i)))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, WrongLeafRejected) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 6; ++i) {
    leaves.push_back(MerkleTree::leaf_hash(Bytes{static_cast<uint8_t>(i)}));
  }
  MerkleTree t(leaves);
  Hash32 bogus = MerkleTree::leaf_hash(to_bytes("bogus"));
  EXPECT_FALSE(MerkleTree::verify(t.root(), bogus, 2, t.path(2)));
  // Right leaf, wrong position.
  EXPECT_FALSE(MerkleTree::verify(t.root(), leaves[2], 3, t.path(2)));
}

TEST(Merkle, EmptyThrows) {
  EXPECT_THROW(MerkleTree(std::vector<Hash32>{}), CryptoError);
}

}  // namespace
}  // namespace ddemos::crypto
