#include <gtest/gtest.h>

#include "util/codec.hpp"
#include "util/hex.hpp"

namespace ddemos {
namespace {

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(b), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), b);
  EXPECT_EQ(from_hex("0001ABFF7F"), b);
}

TEST(Hex, Empty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW(from_hex("abc"), CodecError); }
TEST(Hex, RejectsBadDigit) { EXPECT_THROW(from_hex("zz"), CodecError); }

TEST(Bytes, CtEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
}

TEST(Codec, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  r.expect_done();
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xffffffffull, ~0ull}) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v);
    r.expect_done();
  }
}

TEST(Codec, BytesAndString) {
  Writer w;
  w.bytes(Bytes{9, 8, 7});
  w.str("hello");
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "hello");
  r.expect_done();
}

TEST(Codec, VectorHelper) {
  Writer w;
  std::vector<std::uint32_t> in = {5, 10, 15};
  w.vec(in, [](Writer& ww, std::uint32_t x) { ww.u32(x); });
  Reader r(w.data());
  auto out = r.vec<std::uint32_t>([](Reader& rr) { return rr.u32(); });
  EXPECT_EQ(out, in);
}

TEST(Codec, TruncationThrows) {
  Writer w;
  w.u32(42);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, BytesLengthBeyondBufferThrows) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes follow
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
}

TEST(Codec, BadBooleanThrows) {
  Bytes b = {7};
  Reader r(b);
  EXPECT_THROW(r.boolean(), CodecError);
}

}  // namespace
}  // namespace ddemos
