// Adversarial fault matrix over sharded vote collection: the Section III-C
// safety argument (one certified vote code per ballot, agreement on the
// final vote set) and the Theorem-1 liveness argument (every honest voter
// eventually holds the printed receipt) must survive intra-node sharding.
// Each cell drives a full election on the deterministic simulator under a
// combination of
//   * LinkModel::lossy drop/dup on the voter <-> VC links (voters carry
//     the retry logic: [d]-patience resubmission);
//   * message duplication on the VC <-> VC core (the collector protocol
//     and consensus are idempotent; VC -> BB stays clean because the BB
//     vote-set submission protocol is not duplicate-safe by design — the
//     hash check rejects inflated submissions);
//   * the bounded-delay adversary hook (sim::LinkFilter) holding every
//     message up to an extra 20ms, deterministically;
//   * one crashed VC node (f_vc = 1 of Nv = 4);
// crossed with shards ∈ {1, 2, 4}. Every cell must complete with all
// voters holding receipts, tally == ground truth, identical vote sets on
// all live VC nodes, and identical outcomes across shard counts.
#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace ddemos::core {
namespace {

constexpr std::size_t kVoters = 5;

ElectionParams fault_params() {
  ElectionParams p;
  p.election_id = to_bytes("vc-shard-faults");
  p.options = {"yes", "no"};
  p.n_voters = kVoters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 20'000'000;
  return p;
}

struct Scenario {
  const char* name;
  bool lossy_voters = false;
  bool dup_vc_core = false;
  bool delay_adversary = false;
  bool crash_vc = false;
};

struct Outcome {
  std::vector<std::uint64_t> tally;
  std::vector<std::uint64_t> receipts;
  std::vector<VoteSetEntry> vote_set;
};

Outcome run_cell(const Scenario& sc, std::size_t shards,
                 const std::shared_ptr<const ea::SetupArtifacts>& arts) {
  DriverConfig cfg;
  cfg.params = fault_params();
  cfg.seed = 60'001;
  cfg.vc_shards = shards;
  cfg.artifacts = arts;
  cfg.workload = VoteListWorkload::make(
      {0, 1, 0, 1, 1},
      [](std::size_t slot) -> sim::TimePoint {
        return static_cast<sim::TimePoint>(100'000 * (slot + 1));
      });
  cfg.voter_template.patience_us = 900'000;
  if (sc.crash_vc) cfg.crashed_vcs = {2};
  // Default link (covers voter <-> VC): drop and duplicate aggressively;
  // the voter's patience resubmission is the liveness mechanism.
  cfg.link = sc.lossy_voters ? sim::LinkModel::lossy(0.08, 0.08)
                             : sim::LinkModel::lan();

  ElectionDriver driver(cfg);
  sim::Simulation& sim = driver.simulation();

  // Protocol-core links get explicit models: VC <-> VC may duplicate (the
  // collector protocol and consensus are idempotent) but never drops —
  // ANNOUNCE and the batched consensus have no retransmission layer; the
  // VC -> BB push and trustee traffic stay clean.
  const auto& topo = driver.topology();
  std::vector<sim::NodeId> core_ids;
  for (sim::NodeId id : topo.vc_ids) core_ids.push_back(id);
  for (sim::NodeId id : topo.bb_ids) core_ids.push_back(id);
  for (sim::NodeId id : topo.trustee_ids) core_ids.push_back(id);
  sim::LinkModel vc_core{200, 1'000, 0.0, sc.dup_vc_core ? 0.05 : 0.0};
  sim::LinkModel clean{200, 1'000, 0.0, 0.0};
  auto is_vc = [&](sim::NodeId id) {
    return std::find(topo.vc_ids.begin(), topo.vc_ids.end(), id) !=
           topo.vc_ids.end();
  };
  for (sim::NodeId a : core_ids) {
    for (sim::NodeId b : core_ids) {
      sim.set_link(a, b, is_vc(a) && is_vc(b) ? vc_core : clean);
    }
  }
  if (sc.delay_adversary) {
    // Bounded-delay adversary (Section III-C): deterministic extra hold of
    // up to 20ms per hop, never a drop. Intra-node shard coordination
    // (Context::send_self) is exempt by construction — it is not network
    // traffic the adversary controls.
    sim.set_link_filter([](sim::NodeId from, sim::NodeId to,
                           sim::TimePoint at) -> std::optional<sim::Duration> {
      std::uint64_t h = from * 2654435761u + to * 40503u +
                        static_cast<std::uint64_t>(at / 1000) * 9176u;
      return static_cast<sim::Duration>(h % 20'000);
    });
  }

  ElectionReport report = driver.run();
  std::string cell = std::string(sc.name) + " shards=" +
                     std::to_string(shards);

  // Liveness: the election completes and every honest voter holds the
  // receipt printed on their ballot (Voter only sets has_receipt on an
  // exact match).
  EXPECT_TRUE(report.completed) << cell;
  for (std::size_t v = 0; v < driver.voter_count(); ++v) {
    EXPECT_TRUE(driver.voter(v).has_receipt()) << cell << " voter " << v;
  }
  EXPECT_EQ(report.tally, report.expected_tally) << cell;
  EXPECT_EQ(report.tally, (std::vector<std::uint64_t>{2, 3})) << cell;

  // Agreement: every live VC pushed the identical agreed vote set.
  std::vector<VoteSetEntry> first_set;
  bool have_first = false;
  for (std::size_t i = 0; i < cfg.params.n_vc; ++i) {
    if (sc.crash_vc && i == 2) continue;
    const auto& set = driver.vc_node(i).final_vote_set();
    EXPECT_TRUE(driver.vc_node(i).push_complete()) << cell << " vc" << i;
    if (!have_first) {
      first_set = set;
      have_first = true;
      EXPECT_EQ(set.size(), kVoters) << cell;
    } else {
      EXPECT_EQ(set, first_set) << cell << " vc" << i;
    }
  }

  Outcome out;
  out.tally = report.tally;
  out.receipts = report.receipts;
  out.vote_set = first_set;
  return out;
}

TEST(ShardFaultMatrix, SafetyAndLivenessAcrossFaultsAndShardCounts) {
  const Scenario scenarios[] = {
      {"lossy-voters", true, false, false, false},
      {"lossy+dup-core+delay", true, true, true, false},
      {"lossy+dup-core+delay+crashed-vc", true, true, true, true},
  };
  auto arts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({fault_params(), 60'001, false, 64}));
  for (const Scenario& sc : scenarios) {
    std::optional<Outcome> base;
    for (std::size_t shards : {1u, 2u, 4u}) {
      Outcome out = run_cell(sc, shards, arts);
      if (!base) {
        base = out;
      } else {
        // Sharding must be outcome-invariant within a fault scenario:
        // identical tally, identical printed receipts, identical agreed
        // vote set.
        std::string cell = std::string(sc.name) + " shards=" +
                           std::to_string(shards);
        EXPECT_EQ(out.tally, base->tally) << cell;
        EXPECT_EQ(out.receipts, base->receipts) << cell;
        EXPECT_EQ(out.vote_set, base->vote_set) << cell;
      }
    }
  }
}

}  // namespace
}  // namespace ddemos::core
