// Bulletin Board and trustee unit behaviours: write verification
// thresholds, Byzantine VC/trustee writes, majority reads over diverging
// replicas, and read-section availability ordering.
#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace ddemos::core {
namespace {

ElectionParams small(std::size_t voters) {
  ElectionParams p;
  p.election_id = to_bytes("bb-test");
  p.options = {"x", "y"};
  p.n_voters = voters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 30'000'000;
  return p;
}

TEST(BbNode, SectionsBecomeAvailableInOrder) {
  DriverConfig cfg;
  cfg.params = small(2);
  cfg.seed = 61;
  cfg.workload = VoteListWorkload::make({0, 1});
  ElectionDriver runner(cfg);
  // Before anything runs: meta is served, dynamic sections are not.
  EXPECT_TRUE(runner.bb_node(0).read_section("meta").has_value());
  EXPECT_FALSE(runner.bb_node(0).read_section("voteset").has_value());
  EXPECT_FALSE(runner.bb_node(0).read_section("cast-info").has_value());
  EXPECT_FALSE(runner.bb_node(0).read_section("result").has_value());
  EXPECT_FALSE(runner.bb_node(0).read_section("nonsense").has_value());
  runner.run();
  EXPECT_TRUE(runner.bb_node(0).read_section("voteset").has_value());
  EXPECT_TRUE(runner.bb_node(0).read_section("cast-info").has_value());
  EXPECT_TRUE(runner.bb_node(0).read_section("challenge").has_value());
  EXPECT_TRUE(runner.bb_node(0).read_section("result").has_value());
  // Ballot sections are per-serial; serial 0 is never issued (the EA
  // numbers ballots contiguously from 1).
  Serial s = runner.artifacts().voter_ballots[0].serial;
  EXPECT_TRUE(runner.bb_node(0).read_section("ballot", s).has_value());
  EXPECT_FALSE(runner.bb_node(0).read_section("ballot", 0).has_value());
}

TEST(BbNode, RepliesAreByteIdenticalAcrossReplicas) {
  DriverConfig cfg;
  cfg.params = small(4);
  cfg.seed = 62;
  cfg.workload = VoteListWorkload::make({0, 1, 1, 0});
  ElectionDriver runner(cfg);
  runner.run();
  for (const char* section : {"meta", "voteset", "cast-info", "result"}) {
    auto a = runner.bb_node(0).read_section(section);
    auto b = runner.bb_node(1).read_section(section);
    auto c = runner.bb_node(2).read_section(section);
    ASSERT_TRUE(a && b && c) << section;
    EXPECT_EQ(*a, *b) << section;
    EXPECT_EQ(*b, *c) << section;
  }
}

TEST(MajorityReader, OutvotesDivergentReplica) {
  DriverConfig cfg;
  cfg.params = small(3);
  cfg.seed = 63;
  cfg.workload = VoteListWorkload::make({0, 0, 1});
  ElectionDriver runner(cfg);
  runner.run();
  // Reader over {bb0, bb1, bb2} where bb2's answer is withheld: the two
  // identical replies still clear the fb+1 = 2 threshold.
  std::vector<const bb::BbNode*> views = {&runner.bb_node(0),
                                          &runner.bb_node(1)};
  client::MajorityReader reader2(views, cfg.params.f_bb);
  EXPECT_TRUE(reader2.read("result").has_value());
  // A single reply is not enough for majority.
  client::MajorityReader reader1({&runner.bb_node(0)}, cfg.params.f_bb);
  EXPECT_FALSE(reader1.read("result").has_value());
}

TEST(BbNode, VoteSetNeedsFvPlusOneIdenticalPushes) {
  // Drive a BB node directly: one VC pushing alone must not be accepted;
  // a second identical push crosses fv+1 = 2.
  DriverConfig cfg;
  cfg.params = small(1);
  cfg.seed = 64;
  cfg.workload = VoteListWorkload::make({kAbstain});
  ElectionDriver runner(cfg);
  auto& sim = runner.simulation();

  std::vector<VoteSetEntry> set = {
      {runner.artifacts().voter_ballots[0].serial, Bytes(20, 1)}};
  crypto::Hash32 h = vote_set_hash(set);

  // Inject pushes as VC nodes 0 and 1 (simulation ids match VC indices).
  class Injector : public sim::Process {
   public:
    void on_message(sim::NodeId, const net::Buffer&) override {}
  };
  sim.start();
  auto& bb = runner.bb_node(0);
  // Hand-deliver messages through the BB process interface.
  VoteSetChunkMsg chunk{set};
  VoteSetDoneMsg done{1, h};
  bb.on_message(0, chunk.encode());
  bb.on_message(0, done.encode());
  EXPECT_FALSE(bb.vote_set_published());
  // Second VC pushes a DIFFERENT set: still no acceptance.
  std::vector<VoteSetEntry> other = {{set[0].serial, Bytes(20, 2)}};
  bb.on_message(1, VoteSetChunkMsg{other}.encode());
  bb.on_message(1, VoteSetDoneMsg{1, vote_set_hash(other)}.encode());
  EXPECT_FALSE(bb.vote_set_published());
  // Third VC agrees with the first: accepted.
  bb.on_message(2, chunk.encode());
  bb.on_message(2, done.encode());
  EXPECT_TRUE(bb.vote_set_published());
  EXPECT_EQ(bb.vote_set(), set);
}

TEST(BbNode, RejectsWrongMskShare) {
  DriverConfig cfg;
  cfg.params = small(1);
  cfg.seed = 65;
  cfg.workload = VoteListWorkload::make({kAbstain});
  ElectionDriver runner(cfg);
  runner.simulation().start();
  auto& bb = runner.bb_node(0);
  // A Byzantine VC submits another node's share as its own: x mismatch.
  MskShareMsg m{runner.artifacts().vc_inits[1].msk_share,
                runner.artifacts().vc_inits[1].msk_share_path};
  bb.on_message(0, m.encode());  // claimed sender 0, share x=2
  // And a tampered share under its own index: Merkle mismatch.
  MskShareMsg m2{runner.artifacts().vc_inits[0].msk_share,
                 runner.artifacts().vc_inits[0].msk_share_path};
  m2.share.y = m2.share.y + crypto::Fn::one();
  bb.on_message(0, m2.encode());
  EXPECT_FALSE(bb.codes_published());
}

TEST(BbNode, RejectsUnsignedTrusteeWrites) {
  DriverConfig cfg;
  cfg.params = small(1);
  cfg.seed = 66;
  cfg.workload = VoteListWorkload::make({0});
  ElectionDriver runner(cfg);
  runner.run();
  ASSERT_TRUE(runner.bb_node(0).result_published());
  auto before = runner.bb_node(0).result()->tally;

  // Forged tally message with a bogus signature must be ignored.
  TrusteeTallyMsg forged;
  forged.trustee_index = 0;
  forged.totals.assign(
      2, {crypto::PedersenShare{1, crypto::Fn::one(), crypto::Fn::one()},
          crypto::PedersenShare{1, crypto::Fn::one(), crypto::Fn::one()}});
  forged.signature = Bytes(65, 0x11);
  runner.bb_node(0).on_message(99, forged.encode());
  EXPECT_EQ(runner.bb_node(0).result()->tally, before);
}

TEST(Trustee, LoneByzantineTrusteeCannotCorruptTally) {
  // ht = 2 of 3: one trustee submitting garbage shares is outvoted because
  // the BB verifies every Pedersen share against the published commitments.
  DriverConfig cfg;
  cfg.params = small(4);
  cfg.seed = 67;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 0});
  cfg.tamper_setup = [](ea::SetupArtifacts& arts) {
    // Trustee 0 holds corrupted shares (a "lazy/compromised" trustee whose
    // data was damaged): all its opening shares are shifted by one.
    for (auto& ballot : arts.trustee_inits[0].ballots) {
      for (auto& part : ballot.parts) {
        for (auto& line : part) {
          for (auto& s : line.open_m) s.f = s.f + crypto::Fn::one();
        }
      }
    }
  };
  ElectionDriver runner(cfg);
  runner.run();
  ASSERT_TRUE(runner.bb_node(0).result_published());
  EXPECT_EQ(runner.bb_node(0).result()->tally,
            (std::vector<std::uint64_t>{3, 1}));
  client::Auditor auditor(runner.reader());
  EXPECT_TRUE(auditor.verify_election().passed);
}

TEST(BbNode, PhaseTimestampsAreMonotone) {
  DriverConfig cfg;
  cfg.params = small(3);
  cfg.seed = 68;
  cfg.workload = VoteListWorkload::make({0, 1, 0});
  ElectionDriver runner(cfg);
  runner.run();
  const auto& bb = runner.bb_node(0);
  EXPECT_GE(bb.vote_set_accepted_at(), cfg.params.t_end);
  EXPECT_GE(bb.codes_published_at(), bb.vote_set_accepted_at());
  EXPECT_GE(bb.result_published_at(), bb.codes_published_at());
}

TEST(BbNode, ChallengeMatchesVoterCoins) {
  DriverConfig cfg;
  cfg.params = small(5);
  cfg.seed = 69;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 1, 0});
  ElectionDriver runner(cfg);
  runner.run();
  // Recompute the challenge from the voters' actual part choices (coins),
  // ordered by serial as the BB does.
  std::vector<std::pair<Serial, std::uint8_t>> coins;
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    coins.push_back({runner.artifacts().voter_ballots[v].serial,
                     runner.voter(v).used_part()});
  }
  std::sort(coins.begin(), coins.end());
  Bytes coin_bytes;
  for (auto& [serial, part] : coins) {
    coin_bytes.push_back(static_cast<std::uint8_t>('0' + part));
  }
  crypto::Fn expect = crypto::challenge_from_coins(cfg.params.election_id,
                                                   coin_bytes);
  EXPECT_EQ(runner.bb_node(0).challenge(), expect);
  EXPECT_EQ(runner.bb_node(1).challenge(), expect);
}

}  // namespace
}  // namespace ddemos::core
