// Intra-node VC sharding (VcOptions::n_shards): the serial -> shard
// mapping is total and stable, shard-boundary serials behave exactly like
// interior ones, n_shards = 1 is bit-for-bit the legacy serial node,
// sharded runs are deterministic, and tallies are invariant across
// shards ∈ {1,2,4,8} on the same seeded-random workload. Also pins the
// previously untested non-contiguous-serial path: a gapped serial set
// still elects correctly unsharded (instance_of falls back to the source
// index) and is rejected with a clear ProtocolError when sharded.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "util/error.hpp"

namespace ddemos::core {
namespace {

ElectionParams shard_params(std::size_t voters) {
  ElectionParams p;
  p.election_id = to_bytes("vc-shard-test");
  p.options = {"yes", "no"};
  p.n_voters = voters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 10'000'000;
  return p;
}

struct Trace {
  std::vector<std::uint64_t> tally;
  std::vector<std::uint64_t> receipts;
  std::vector<VoteSetEntry> vote_set;
  std::vector<sim::TimePoint> timings;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
};

Trace run_traced(DriverConfig cfg) {
  ElectionDriver driver(cfg);
  ElectionReport report = driver.run();
  EXPECT_TRUE(report.completed);
  Trace t;
  t.tally = report.tally;
  t.receipts = report.receipts;
  t.vote_set = report.vote_set;
  for (const vc::VcStats& s : report.vc_stats) {
    t.timings.push_back(s.voting_ended_at);
    t.timings.push_back(s.consensus_done_at);
    t.timings.push_back(s.push_done_at);
  }
  t.events = report.events_processed;
  t.delivered = report.messages_delivered;
  return t;
}

TEST(ShardMapping, TotalStableAndInterleaved) {
  DriverConfig cfg;
  cfg.params = shard_params(9);
  cfg.seed = 41;
  cfg.vc_shards = 4;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 1, 0, 1, 0, 1, 0});
  ElectionDriver driver(cfg);
  const vc::VcNode& node = driver.vc_node(0);
  ASSERT_EQ(node.shard_count(), 4u);

  Serial first = driver.artifacts().vc_inits[0].ballots.front().serial;
  for (std::size_t i = 0; i < 9; ++i) {
    // Interleaved ownership: shard = instance % n_shards.
    EXPECT_EQ(node.shard_of_serial(first + i), i % 4) << "instance " << i;
    // Stable: repeated lookups agree.
    EXPECT_EQ(node.shard_of_serial(first + i),
              node.shard_of_serial(first + i));
    // Message routing agrees with the mapping (header-keyed dispatch).
    net::Buffer vote = VoteMsg{first + i, to_bytes("code")}.encode();
    EXPECT_EQ(node.shard_of(1234, vote), i % 4);
  }
  // Total: out-of-range and unknown serials route to the control shard
  // instead of falling outside the shard set.
  EXPECT_EQ(node.shard_of_serial(first - 1), 0u);
  EXPECT_EQ(node.shard_of_serial(first + 9), 0u);
  EXPECT_EQ(node.shard_of_serial(0), 0u);
  // Malformed payloads route to the control shard (which drops them).
  EXPECT_EQ(node.shard_of(1234, net::Buffer(Bytes{})), 0u);
  EXPECT_EQ(node.shard_of(
                1234, net::Buffer(Bytes{static_cast<std::uint8_t>(
                          MsgType::kVote)})),
            0u);
}

TEST(ShardParity, OneShardIsBitIdenticalToDefault) {
  auto make_cfg = [] {
    DriverConfig cfg;
    cfg.params = shard_params(6);
    cfg.seed = 2027;
    cfg.workload = VoteListWorkload::make({0, 1, 1, 0, 0, 1});
    return cfg;
  };
  DriverConfig legacy = make_cfg();  // vc_shards defaulted (1)
  DriverConfig explicit_one = make_cfg();
  explicit_one.vc_shards = 1;
  Trace a = run_traced(legacy);
  Trace b = run_traced(explicit_one);
  EXPECT_EQ(a.tally, (std::vector<std::uint64_t>{3, 3}));
  EXPECT_EQ(a.tally, b.tally);
  EXPECT_EQ(a.receipts, b.receipts);
  EXPECT_EQ(a.vote_set, b.vote_set);
  EXPECT_EQ(a.timings, b.timings);    // phase timings bit-identical
  EXPECT_EQ(a.events, b.events);      // same event stream
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(ShardParity, ShardedRunIsDeterministic) {
  auto make_cfg = [] {
    DriverConfig cfg;
    cfg.params = shard_params(8);
    cfg.seed = 515;
    cfg.vc_shards = 4;
    cfg.workload = RandomWorkload::make(99, 0.1);
    return cfg;
  };
  Trace a = run_traced(make_cfg());
  Trace b = run_traced(make_cfg());
  EXPECT_EQ(a.tally, b.tally);
  EXPECT_EQ(a.receipts, b.receipts);
  EXPECT_EQ(a.timings, b.timings);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.delivered, b.delivered);
}

// Boundary serials — the first and last of the range plus every
// instance % n_shards == 0 edge — endorse and tally exactly like the
// unsharded run: every voter gets the printed receipt and the reports
// agree entry-for-entry.
TEST(ShardParity, BoundarySerialsMatchUnsharded) {
  ElectionParams p = shard_params(9);  // instances 0..8; edges 0, 4, 8
  auto arts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, 77, false, 64}));
  auto run_with = [&](std::size_t shards) {
    DriverConfig cfg;
    cfg.params = p;
    cfg.seed = 77;
    cfg.vc_shards = shards;
    cfg.artifacts = arts;
    cfg.workload = VoteListWorkload::make({0, 1, 0, 1, 0, 1, 0, 1, 0});
    ElectionDriver driver(cfg);
    ElectionReport report = driver.run();
    EXPECT_TRUE(report.completed);
    for (std::size_t v = 0; v < driver.voter_count(); ++v) {
      EXPECT_TRUE(driver.voter(v).has_receipt())
          << "shards=" << shards << " voter " << v;
    }
    return report;
  };
  ElectionReport base = run_with(1);
  ElectionReport sharded = run_with(4);
  EXPECT_EQ(base.tally, (std::vector<std::uint64_t>{5, 4}));
  EXPECT_EQ(sharded.tally, base.tally);
  EXPECT_EQ(sharded.receipts, base.receipts);
  EXPECT_EQ(sharded.vote_set, base.vote_set);
  ASSERT_EQ(sharded.vote_set.size(), 9u);  // every boundary serial present
}

TEST(ShardParity, TallyInvariantAcrossShardCounts) {
  ElectionParams p = shard_params(12);
  auto arts = std::make_shared<const ea::SetupArtifacts>(
      ea::ea_setup({p, 1001, false, 64}));
  std::optional<Trace> base;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    DriverConfig cfg;
    cfg.params = p;
    cfg.seed = 1001;
    cfg.vc_shards = shards;
    cfg.artifacts = arts;
    // Seeded-random workload with abstentions: same intent stream for
    // every shard count.
    cfg.workload = RandomWorkload::make(4242, 0.25);
    ElectionDriver driver(cfg);
    ElectionReport report = driver.run();
    ASSERT_TRUE(report.completed) << "shards=" << shards;
    EXPECT_EQ(report.tally, report.expected_tally) << "shards=" << shards;

    // Per-shard bookkeeping invariants: one row per shard, counters sum to
    // the node totals.
    ASSERT_EQ(report.vc_shard_stats.size(), p.n_vc);
    for (std::size_t n = 0; n < p.n_vc; ++n) {
      ASSERT_EQ(report.vc_shard_stats[n].size(), shards);
      std::uint64_t votes = 0, receipts = 0, rejected = 0, handled = 0;
      for (const vc::VcShardStats& s : report.vc_shard_stats[n]) {
        votes += s.votes_received;
        receipts += s.receipts_issued;
        rejected += s.rejected_votes;
        handled += s.handled_messages;
      }
      EXPECT_EQ(votes, report.vc_stats[n].votes_received);
      EXPECT_EQ(receipts, report.vc_stats[n].receipts_issued);
      EXPECT_EQ(rejected, report.vc_stats[n].rejected_votes);
      EXPECT_GT(handled, 0u);
    }

    Trace t;
    t.tally = report.tally;
    t.receipts = report.receipts;
    t.vote_set = report.vote_set;
    if (!base) {
      base = t;
    } else {
      EXPECT_EQ(t.tally, base->tally) << "shards=" << shards;
      EXPECT_EQ(t.receipts, base->receipts) << "shards=" << shards;
      EXPECT_EQ(t.vote_set, base->vote_set) << "shards=" << shards;
    }
  }
}

// --- the latent non-contiguous-serial path ---------------------------------

TEST(GappedSerials, ShardedConstructionRejectsWithClearError) {
  ElectionParams p = shard_params(4);
  ea::SetupArtifacts arts = ea::ea_setup({p, 33, false, 64});
  std::vector<VcBallotInit> gapped = arts.vc_inits[0].ballots;
  gapped.erase(gapped.begin() + 1);  // hole in the middle of the range
  std::vector<sim::NodeId> vc_ids{0, 1, 2, 3};

  auto make = [&](std::size_t shards) {
    vc::VcNode::Options o;
    o.n_shards = shards;
    return std::make_unique<vc::VcNode>(
        arts.vc_inits[0],
        std::make_shared<store::MemoryBallotSource>(gapped), vc_ids,
        std::vector<sim::NodeId>{}, o);
  };
  // Sharded over gaps would corrupt shard ownership — refuse loudly.
  try {
    make(2);
    FAIL() << "expected ProtocolError for sharded gapped serials";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("contiguous"), std::string::npos);
  }
  EXPECT_THROW(make(0), ProtocolError);  // zero shards is meaningless
  // Unsharded construction over the same gapped source is fine.
  auto node = make(1);
  EXPECT_EQ(node->shard_count(), 1u);
  // The (degenerate) mapping stays total.
  EXPECT_EQ(node->shard_of_serial(gapped.front().serial), 0u);
}

TEST(GappedSerials, UnshardedElectionUsesIndexFallback) {
  // Every VC node sees a gapped serial set (ballot 1 dropped from its
  // store); slot 1 abstains, so the election must complete through
  // instance_of's source-index fallback with correct receipts and tally.
  DriverConfig cfg;
  cfg.params = shard_params(3);
  cfg.seed = 55;
  cfg.workload = VoteListWorkload::make({0, kAbstain, 1});
  cfg.store_factory = [](const VcInit& init) {
    std::vector<VcBallotInit> ballots = init.ballots;
    ballots.erase(ballots.begin() + 1);
    return std::make_shared<store::MemoryBallotSource>(std::move(ballots));
  };
  ElectionDriver driver(cfg);
  ElectionReport report = driver.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.tally, (std::vector<std::uint64_t>{1, 1}));
  EXPECT_EQ(report.receipts_issued, 2u);
  for (std::size_t v = 0; v < driver.voter_count(); ++v) {
    EXPECT_TRUE(driver.voter(v).has_receipt()) << "voter " << v;
  }
  EXPECT_EQ(report.vote_set.size(), 2u);
}

}  // namespace
}  // namespace ddemos::core
