// Wire-format tests: round-trips for every message type, Bitmap edge
// cases, and robustness against malformed/truncated/garbage input (every
// decoder must throw CodecError, never crash or read out of bounds).
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "crypto/rng.hpp"
#include "util/bitmap.hpp"

namespace ddemos::core {
namespace {

crypto::Rng rng_for(const char* tag) {
  return crypto::Rng(crypto::sha256(to_bytes(tag))[0] + 1000ull);
}

TEST(Bitmap, SetGetCount) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.get(0));
  EXPECT_FALSE(b.get(1));
  EXPECT_TRUE(b.get(129));
  EXPECT_EQ(b.count(), 3u);
  b.set(0, false);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_THROW(b.get(130), ProtocolError);
  EXPECT_THROW(b.set(200), ProtocolError);
}

TEST(Bitmap, AllAndEquality) {
  Bitmap a(3), b(3);
  a.set(0);
  a.set(1);
  a.set(2);
  EXPECT_TRUE(a.all());
  EXPECT_FALSE(a == b);
  b.set(0);
  b.set(1);
  b.set(2);
  EXPECT_TRUE(a == b);
}

TEST(Bitmap, EncodeDecodeRoundTrip) {
  for (std::size_t size : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    Bitmap b(size);
    auto rng = rng_for("bitmap");
    for (std::size_t i = 0; i < size; i += 3) b.set(i);
    Writer w;
    b.encode(w);
    Reader r(w.data());
    EXPECT_EQ(Bitmap::decode(r), b) << size;
    r.expect_done();
  }
}

TEST(Bitmap, DecodeRejectsPaddingBits) {
  Bitmap b(10);
  Writer w;
  b.encode(w);
  Bytes raw = w.take();
  raw.back() |= 0x80;  // set a bit beyond size 10 in the top byte
  Reader r(raw);
  EXPECT_THROW(Bitmap::decode(r), CodecError);
}

TEST(Bitmap, DecodeRejectsHugeSize) {
  Writer w;
  w.varint(1ull << 40);
  Reader r(w.data());
  EXPECT_THROW(Bitmap::decode(r), CodecError);
}

TEST(Messages, VoteRoundTrip) {
  auto rng = rng_for("vote");
  VoteMsg m{0x1122334455667788ull, rng.bytes(20)};
  Bytes enc = m.encode();
  EXPECT_EQ(peek_type(enc), MsgType::kVote);
  Reader r(enc);
  r.u8();
  VoteMsg d = VoteMsg::decode(r);
  EXPECT_EQ(d.serial, m.serial);
  EXPECT_EQ(d.vote_code, m.vote_code);
}

TEST(Messages, VoteReplyRoundTrip) {
  VoteReplyMsg m{77, VoteReplyStatus::kAlreadyVoted, 0xdeadbeefcafef00dull};
  Bytes enc_1 = m.encode();
  Reader r(enc_1);
  r.u8();
  VoteReplyMsg d = VoteReplyMsg::decode(r);
  EXPECT_EQ(d.serial, 77u);
  EXPECT_EQ(d.status, VoteReplyStatus::kAlreadyVoted);
  EXPECT_EQ(d.receipt, m.receipt);
}

TEST(Messages, VotePRoundTrip) {
  auto rng = rng_for("votep");
  VotePMsg m;
  m.serial = 42;
  m.vote_code = rng.bytes(20);
  m.part = 1;
  m.line = 3;
  m.receipt_share = crypto::Share{2, crypto::Fn::from_u64(999)};
  m.share_path = {crypto::sha256(to_bytes("a")), crypto::sha256(to_bytes("b"))};
  m.ucert.vote_code = m.vote_code;
  m.ucert.signatures = {{0, rng.bytes(65)}, {2, rng.bytes(65)}};
  Bytes enc_2 = m.encode();
  Reader r(enc_2);
  r.u8();
  VotePMsg d = VotePMsg::decode(r);
  EXPECT_EQ(d.serial, m.serial);
  EXPECT_EQ(d.part, 1);
  EXPECT_EQ(d.line, 3u);
  EXPECT_EQ(d.receipt_share.x, 2u);
  EXPECT_EQ(d.receipt_share.y, m.receipt_share.y);
  EXPECT_EQ(d.share_path, m.share_path);
  EXPECT_EQ(d.ucert.signatures.size(), 2u);
  EXPECT_EQ(d.ucert.signatures[1].first, 2u);
}

TEST(Messages, AnnounceRoundTrip) {
  auto rng = rng_for("announce");
  AnnounceMsg m;
  m.last_chunk = false;
  for (int i = 0; i < 3; ++i) {
    AnnounceEntry e;
    e.instance = static_cast<std::uint64_t>(i * 17);
    e.vote_code = rng.bytes(20);
    e.ucert.vote_code = e.vote_code;
    e.ucert.signatures = {{static_cast<std::uint32_t>(i), rng.bytes(65)}};
    m.entries.push_back(std::move(e));
  }
  Bytes enc_3 = m.encode();
  Reader r(enc_3);
  r.u8();
  AnnounceMsg d = AnnounceMsg::decode(r);
  EXPECT_FALSE(d.last_chunk);
  ASSERT_EQ(d.entries.size(), 3u);
  EXPECT_EQ(d.entries[2].instance, 34u);
  EXPECT_EQ(d.entries[1].vote_code, m.entries[1].vote_code);
}

TEST(Messages, RecoverRoundTrip) {
  RecoverRequestMsg req;
  req.instances = Bitmap(20);
  req.instances.set(4);
  req.instances.set(19);
  Bytes enc_4 = req.encode();
  Reader r(enc_4);
  r.u8();
  RecoverRequestMsg d = RecoverRequestMsg::decode(r);
  EXPECT_TRUE(d.instances.get(4));
  EXPECT_TRUE(d.instances.get(19));
  EXPECT_EQ(d.instances.count(), 2u);
}

TEST(Messages, VoteSetRoundTrip) {
  auto rng = rng_for("voteset");
  VoteSetChunkMsg chunk;
  chunk.entries = {{1, rng.bytes(20)}, {2, rng.bytes(20)}};
  Bytes enc_5 = chunk.encode();
  Reader r(enc_5);
  r.u8();
  VoteSetChunkMsg d = VoteSetChunkMsg::decode(r);
  EXPECT_EQ(d.entries, chunk.entries);

  VoteSetDoneMsg done{2, vote_set_hash(chunk.entries)};
  Bytes enc_6 = done.encode();
  Reader r2(enc_6);
  r2.u8();
  VoteSetDoneMsg d2 = VoteSetDoneMsg::decode(r2);
  EXPECT_EQ(d2.total_entries, 2u);
  EXPECT_EQ(d2.set_hash, done.set_hash);
}

TEST(Messages, VoteSetHashIsOrderSensitive) {
  auto rng = rng_for("hashorder");
  std::vector<VoteSetEntry> a = {{1, rng.bytes(20)}, {2, rng.bytes(20)}};
  std::vector<VoteSetEntry> b = {a[1], a[0]};
  EXPECT_NE(vote_set_hash(a), vote_set_hash(b));
}

TEST(Messages, TrusteeTallyRoundTrip) {
  TrusteeTallyMsg m;
  m.trustee_index = 1;
  m.totals = {{crypto::PedersenShare{2, crypto::Fn::from_u64(5),
                                     crypto::Fn::from_u64(6)},
               crypto::PedersenShare{2, crypto::Fn::from_u64(7),
                                     crypto::Fn::from_u64(8)}}};
  m.signature = Bytes(65, 3);
  Bytes enc_7 = m.encode();
  Reader r(enc_7);
  r.u8();
  TrusteeTallyMsg d = TrusteeTallyMsg::decode(r);
  EXPECT_EQ(d.trustee_index, 1u);
  ASSERT_EQ(d.totals.size(), 1u);
  EXPECT_EQ(d.totals[0].first.f, crypto::Fn::from_u64(5));
  EXPECT_EQ(d.totals[0].second.g, crypto::Fn::from_u64(8));
}

TEST(Messages, BbReadRoundTrip) {
  BbReadMsg m{"ballot", 12345, 6};
  Bytes enc_8 = m.encode();
  Reader r(enc_8);
  r.u8();
  BbReadMsg d = BbReadMsg::decode(r);
  EXPECT_EQ(d.section, "ballot");
  EXPECT_EQ(d.arg, 12345u);
  EXPECT_EQ(d.request_id, 6u);

  BbReadReplyMsg reply{"ballot", 12345, 6, true, Bytes{9, 9, 9}};
  Bytes enc_9 = reply.encode();
  Reader r2(enc_9);
  r2.u8();
  BbReadReplyMsg d2 = BbReadReplyMsg::decode(r2);
  EXPECT_TRUE(d2.available);
  EXPECT_EQ(d2.payload, (Bytes{9, 9, 9}));
}

TEST(Messages, PeekTypeOnEmptyThrows) {
  EXPECT_THROW(peek_type(Bytes{}), CodecError);
}

// Fuzz-ish robustness: decoding random garbage and truncations of valid
// messages must throw CodecError (or produce a value), never crash.
TEST(Messages, DecodersSurviveGarbage) {
  auto rng = rng_for("garbage");
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk = rng.bytes(1 + rng.below(80));
    Reader r(junk);
    try {
      switch (junk[0] % 5) {
        case 0:
          (void)VotePMsg::decode(r);
          break;
        case 1:
          (void)AnnounceMsg::decode(r);
          break;
        case 2:
          (void)TrusteeBallotMsg::decode(r);
          break;
        case 3:
          (void)Bitmap::decode(r);
          break;
        case 4:
          (void)Ucert::decode(r);
          break;
      }
    } catch (const CodecError&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

TEST(Messages, TruncationsAlwaysThrow) {
  auto rng = rng_for("trunc");
  VotePMsg m;
  m.serial = 42;
  m.vote_code = rng.bytes(20);
  m.receipt_share = crypto::Share{1, crypto::Fn::from_u64(3)};
  m.share_path = {crypto::sha256(to_bytes("x"))};
  m.ucert.vote_code = m.vote_code;
  m.ucert.signatures = {{0, rng.bytes(65)}};
  Bytes full = m.encode();
  for (std::size_t len = 1; len + 1 < full.size(); len += 7) {
    Reader r(BytesView(full).subspan(0, len));
    r.u8();
    EXPECT_THROW(
        {
          VotePMsg d = VotePMsg::decode(r);
          r.expect_done();
          (void)d;
        },
        CodecError)
        << "len " << len;
  }
}

TEST(Messages, ElectionParamsRoundTrip) {
  ElectionParams p;
  p.election_id = to_bytes("eid");
  p.options = {"a", "b", "c"};
  p.n_voters = 100;
  p.n_vc = 7;
  p.f_vc = 2;
  p.n_bb = 5;
  p.f_bb = 2;
  p.n_trustees = 9;
  p.h_trustees = 5;
  p.t_start = -5;
  p.t_end = 1'000'000;
  Writer w;
  p.encode(w);
  Reader r(w.data());
  ElectionParams d = ElectionParams::decode(r);
  r.expect_done();
  EXPECT_EQ(d.election_id, p.election_id);
  EXPECT_EQ(d.options, p.options);
  EXPECT_EQ(d.n_voters, 100u);
  EXPECT_EQ(d.vc_quorum(), 5u);
  EXPECT_EQ(d.t_start, -5);
  EXPECT_EQ(d.t_end, 1'000'000);
}

TEST(Messages, VcBallotInitRoundTrip) {
  auto rng = rng_for("vcinit");
  VcBallotInit b;
  b.serial = 5;
  for (auto& part : b.parts) {
    part.resize(2);
    for (auto& line : part) {
      line.code_hash = crypto::sha256(rng.bytes(8));
      line.salt = rng.bytes(8);
      line.receipt_share = crypto::Share{3, crypto::Fn::from_u64(rng.u64())};
      line.share_path = {crypto::sha256(rng.bytes(4))};
      line.share_root = crypto::sha256(rng.bytes(4));
    }
  }
  Writer w;
  b.encode(w);
  Reader r(w.data());
  VcBallotInit d = VcBallotInit::decode(r);
  r.expect_done();
  EXPECT_EQ(d.serial, 5u);
  EXPECT_EQ(d.parts[1][1].code_hash, b.parts[1][1].code_hash);
  EXPECT_EQ(d.parts[0][0].receipt_share.y, b.parts[0][0].receipt_share.y);
  EXPECT_EQ(d.parts[0][1].share_root, b.parts[0][1].share_root);
}

}  // namespace
}  // namespace ddemos::core
