// WAL edge cases: torn final record (truncated cleanly, earlier records
// intact), CRC-corrupted middle record (fails closed with a diagnostic),
// snapshot+truncate idempotence, and replay determinism across reopenings.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "store/wal.hpp"

namespace ddemos::store {
namespace {

struct Replayed {
  std::uint8_t type;
  Bytes payload;
  bool operator==(const Replayed&) const = default;
};

std::vector<Replayed> replay_all(Wal& wal, WalReplayResult* out = nullptr) {
  std::vector<Replayed> seen;
  WalReplayResult res = wal.replay([&](std::uint8_t type, BytesView payload) {
    seen.push_back({type, Bytes(payload.begin(), payload.end())});
  });
  if (out) *out = res;
  return seen;
}

std::string temp_wal_path(const char* tag) {
  return std::string(::testing::TempDir()) + "wal_test_" + tag + "_" +
         std::to_string(::getpid()) + ".wal";
}

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
}

TEST(Wal, RoundTripAndReplayDeterminism) {
  std::string path = temp_wal_path("roundtrip");
  std::remove(path.c_str());

  std::vector<Replayed> written;
  {
    Wal wal(path, {FsyncPolicy::kAlways, 1});
    WalReplayResult res;
    EXPECT_TRUE(replay_all(wal, &res).empty());
    EXPECT_FALSE(res.torn_tail);

    std::mt19937_64 rng(7);
    for (int i = 0; i < 200; ++i) {
      Bytes payload(rng() % 300);
      for (auto& b : payload) b = std::uint8_t(rng());
      std::uint8_t type = std::uint8_t(1 + (i % 5));
      wal.append(type, payload);
      written.push_back({type, payload});
    }
    EXPECT_EQ(wal.records(), 200u);
  }

  // Two independent reopenings replay the identical sequence.
  for (int round = 0; round < 2; ++round) {
    Wal wal(path, {});
    WalReplayResult res;
    std::vector<Replayed> seen = replay_all(wal, &res);
    EXPECT_EQ(res.records, 200u);
    EXPECT_FALSE(res.torn_tail);
    EXPECT_EQ(seen, written);
  }
  std::remove(path.c_str());
}

TEST(Wal, TornFinalRecordIsTruncatedCleanly) {
  std::string path = temp_wal_path("torn");
  std::remove(path.c_str());
  {
    Wal wal(path, {FsyncPolicy::kNever, 0});
    replay_all(wal);
    wal.append(1, to_bytes("first"));
    wal.append(2, to_bytes("second"));
    wal.append(3, to_bytes("third-will-be-torn"));
  }
  // Chop bytes off the final frame, emulating a crash mid-write. Every
  // truncation point inside the last record must recover to exactly the
  // first two records — and stay recovered after the repair (append works).
  Bytes full = read_file(path);
  for (std::size_t cut = 1; cut < 9 + 18; cut += 5) {
    write_file(path, Bytes(full.begin(), full.end() - cut));
    Wal wal(path, {FsyncPolicy::kAlways, 1});
    WalReplayResult res;
    std::vector<Replayed> seen = replay_all(wal, &res);
    EXPECT_TRUE(res.torn_tail) << "cut=" << cut;
    EXPECT_EQ(res.truncated_bytes, (9 + 18) - cut) << "cut=" << cut;
    ASSERT_EQ(seen.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(seen[0].payload, to_bytes("first"));
    EXPECT_EQ(seen[1].payload, to_bytes("second"));
    // The file was repaired in place: appends after recovery are durable
    // and a fresh replay sees no tear.
    wal.append(4, to_bytes("after-recovery"));
    Wal again(path, {});
    WalReplayResult res2;
    std::vector<Replayed> seen2 = replay_all(again, &res2);
    EXPECT_FALSE(res2.torn_tail);
    ASSERT_EQ(seen2.size(), 3u);
    EXPECT_EQ(seen2[2].payload, to_bytes("after-recovery"));
  }
  std::remove(path.c_str());
}

TEST(Wal, CorruptMiddleRecordFailsClosedWithDiagnostic) {
  std::string path = temp_wal_path("corrupt");
  std::remove(path.c_str());
  {
    Wal wal(path, {FsyncPolicy::kNever, 0});
    replay_all(wal);
    wal.append(1, to_bytes("aaaa"));
    wal.append(2, to_bytes("bbbb"));
    wal.append(3, to_bytes("cccc"));
  }
  // Flip one payload byte in the middle record: a complete frame with a
  // bad checksum is corruption, not a torn write — replay must throw, and
  // the diagnostic must say which record and where.
  Bytes full = read_file(path);
  // layout: 8 header + rec0 (5+4+4=13) + rec1 ... flip a byte in rec1's payload
  full[8 + 13 + 5 + 1] ^= 0x40;
  write_file(path, full);
  Wal wal(path, {});
  try {
    replay_all(wal);
    FAIL() << "corrupt middle record must fail replay";
  } catch (const WalError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("record 1"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Wal, CorruptFinalCompleteRecordAlsoFailsClosed) {
  std::string path = temp_wal_path("corrupt_tail");
  std::remove(path.c_str());
  {
    Wal wal(path, {FsyncPolicy::kNever, 0});
    replay_all(wal);
    wal.append(1, to_bytes("aaaa"));
    wal.append(2, to_bytes("bbbb"));
  }
  // A *complete* final frame with a flipped bit is damage, not a tear
  // (torn writes leave short frames): fail closed here too.
  Bytes full = read_file(path);
  full[full.size() - 6] ^= 0x01;  // inside rec1's payload
  write_file(path, full);
  Wal wal(path, {});
  EXPECT_THROW(replay_all(wal), WalError);
  std::remove(path.c_str());
}

TEST(Wal, SnapshotCompactsAndIsIdempotent) {
  std::string path = temp_wal_path("snapshot");
  std::remove(path.c_str());
  {
    Wal wal(path, {FsyncPolicy::kInterval, 8});
    replay_all(wal);
    for (int i = 0; i < 50; ++i) wal.append(1, to_bytes("ballot"));
    wal.snapshot(9, to_bytes("state-at-announce"));
    EXPECT_EQ(wal.records(), 1u);
    // Appends continue on the compacted file.
    wal.append(2, to_bytes("decided"));
  }
  {
    Wal wal(path, {});
    std::vector<Replayed> seen = replay_all(wal);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].type, 9);
    EXPECT_EQ(seen[0].payload, to_bytes("state-at-announce"));
    EXPECT_EQ(seen[1].payload, to_bytes("decided"));
    // Idempotence: snapshotting the same state again yields a file that
    // replays identically, however many times it runs.
    wal.snapshot(9, to_bytes("state-at-announce"));
    wal.snapshot(9, to_bytes("state-at-announce"));
  }
  {
    Wal wal(path, {});
    std::vector<Replayed> seen = replay_all(wal);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].type, 9);
    EXPECT_EQ(seen[0].payload, to_bytes("state-at-announce"));
  }
  // No temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Wal, LifecycleMisuseThrows) {
  std::string path = temp_wal_path("misuse");
  std::remove(path.c_str());
  Wal wal(path, {});
  EXPECT_THROW(wal.append(1, to_bytes("x")), WalError);   // before replay
  EXPECT_THROW(wal.snapshot(1, to_bytes("x")), WalError);  // before replay
  replay_all(wal);
  EXPECT_THROW(replay_all(wal), WalError);  // replay twice
  std::remove(path.c_str());
}

TEST(Wal, NotAWalFileFailsClosed) {
  std::string path = temp_wal_path("badmagic");
  write_file(path, to_bytes("this is not a wal file at all"));
  Wal wal(path, {});
  EXPECT_THROW(replay_all(wal), WalError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddemos::store
