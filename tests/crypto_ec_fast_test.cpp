// Property checks for the GLV/wNAF scalar-multiplication engine: every
// fast path (ec_mul, ec_mul2, ec_msm, batch_to_affine, mixed addition) is
// validated against the naive reference ladder over random scalars and the
// degenerate corners (zero, one, n-1, P = Q, infinity, single-element
// batches), and every rewired verifier is cross-checked bit-for-bit
// against its pre-refactor implementation on accepting AND rejecting
// inputs.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "crypto/batch.hpp"
#include "crypto/ec.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/zkp.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ddemos::crypto {
namespace {

Fn fn_from_hex(const char* h) { return Fn::from_bytes_mod(from_hex(h)); }

std::vector<Fn> edge_scalars(Rng& rng) {
  std::vector<Fn> ks;
  ks.push_back(Fn::zero());
  ks.push_back(Fn::one());
  ks.push_back(Fn::zero() - Fn::one());  // n - 1
  ks.push_back(Fn::zero() - Fn::from_u64(7));
  ks.push_back(Fn::from_u64(2));
  ks.push_back(Fn::from_u64(16));
  // The GLV lambda itself and its neighborhood (short second half).
  Fn lambda = fn_from_hex(
      "5363ad4cc05c30e0a5261c028812645a122e22ea20816678df02967c1b23bd72");
  ks.push_back(lambda);
  ks.push_back(lambda + Fn::one());
  ks.push_back(Fn::zero() - lambda);
  for (int i = 0; i < 24; ++i) ks.push_back(random_scalar(rng));
  return ks;
}

TEST(EcFast, MulMatchesNaiveOverEdgeAndRandomScalars) {
  Rng rng(701);
  Point p = ec_mul_g(random_scalar(rng));
  for (const Fn& k : edge_scalars(rng)) {
    EXPECT_TRUE(ec_eq(ec_mul(k, p), ec_mul_naive(k, p)));
  }
}

TEST(EcFast, MulHandlesInfinityAndZero) {
  Rng rng(702);
  Point p = ec_mul_g(random_scalar(rng));
  EXPECT_TRUE(ec_mul(random_scalar(rng), Point::infinity()).is_infinity());
  EXPECT_TRUE(ec_mul(Fn::zero(), p).is_infinity());
  // k = n acts as zero.
  EXPECT_TRUE(ec_mul(Fn::zero() - Fn::one(), ec_generator()).is_infinity() ==
              false);
  EXPECT_TRUE(ec_eq(ec_mul(Fn::zero() - Fn::one(), ec_generator()),
                    ec_neg(ec_generator())));
}

TEST(EcFast, Mul2MatchesNaiveCombination) {
  Rng rng(703);
  for (int i = 0; i < 12; ++i) {
    Fn a = random_scalar(rng);
    Fn b = random_scalar(rng);
    Point p = ec_mul_g(random_scalar(rng));
    Point want = ec_add(ec_mul_naive(a, p), ec_mul_naive(b, ec_generator()));
    EXPECT_TRUE(ec_eq(ec_mul2(a, p, b), want));
  }
  // Degenerate halves.
  Point p = ec_mul_g(random_scalar(rng));
  Fn b = random_scalar(rng);
  EXPECT_TRUE(ec_eq(ec_mul2(Fn::zero(), p, b), ec_mul_naive(b, ec_generator())));
  EXPECT_TRUE(ec_eq(ec_mul2(b, p, Fn::zero()), ec_mul_naive(b, p)));
  EXPECT_TRUE(ec_mul2(Fn::zero(), p, Fn::zero()).is_infinity());
  // a*P + b*G where P = G collapses to (a+b)*G.
  EXPECT_TRUE(ec_eq(ec_mul2(b, ec_generator(), b),
                    ec_mul_naive(b + b, ec_generator())));
}

TEST(EcFast, MsmMatchesNaiveSum) {
  Rng rng(704);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                        std::size_t{17}}) {
    std::vector<Fn> ks;
    std::vector<Point> ps;
    Point want = Point::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      Fn k = random_scalar(rng);
      Point p = ec_mul_g(random_scalar(rng));
      ks.push_back(k);
      ps.push_back(p);
      want = ec_add(want, ec_mul_naive(k, p));
    }
    EXPECT_TRUE(ec_eq(ec_msm(ks, ps), want)) << "n=" << n;
  }
}

TEST(EcFast, MsmSkipsZeroScalarsAndInfinityPoints) {
  Rng rng(705);
  Fn k = random_scalar(rng);
  Point p = ec_mul_g(random_scalar(rng));
  std::array<Fn, 4> ks{Fn::zero(), k, Fn::one(), Fn::zero() - Fn::one()};
  std::array<Point, 4> ps{p, Point::infinity(), p, p};
  // 0*P + k*inf + 1*P + (n-1)*P = P - P = infinity... plus nothing.
  EXPECT_TRUE(ec_msm(ks, ps).is_infinity());
  // Fully-empty and fully-skipped products.
  EXPECT_TRUE(ec_msm({}, {}).is_infinity());
  std::array<Fn, 1> zk{Fn::zero()};
  std::array<Point, 1> zp{p};
  EXPECT_TRUE(ec_msm(zk, zp).is_infinity());
  EXPECT_THROW(ec_msm(std::span<const Fn>(ks).subspan(0, 2), ps),
               CryptoError);
}

TEST(EcFast, MsmRepeatedAndGeneratorPoints) {
  Rng rng(706);
  Fn a = random_scalar(rng);
  Fn b = random_scalar(rng);
  Point p = ec_mul_g(random_scalar(rng));
  // P = Q duplicated terms, plus explicit generator terms (which take the
  // fixed-base static-table path inside ec_msm).
  std::array<Fn, 3> ks{a, b, a};
  std::array<Point, 3> ps{p, p, ec_generator()};
  Point want = ec_add(ec_mul_naive(a + b, p), ec_mul_naive(a, ec_generator()));
  EXPECT_TRUE(ec_eq(ec_msm(ks, ps), want));
}

TEST(EcFast, PippengerMatchesStraussAcrossSizes) {
  Rng rng(711);
  // Random sizes straddling both engines' sweet spots, with generator
  // terms and repeated points mixed in like real verifier equations.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{9}, std::size_t{33}, std::size_t{100},
                        std::size_t{257}}) {
    std::vector<Fn> ks;
    std::vector<Point> ps;
    Point repeated = ec_mul_g(random_scalar(rng));
    for (std::size_t i = 0; i < n; ++i) {
      ks.push_back(random_scalar(rng));
      if (i % 7 == 3) {
        ps.push_back(ec_generator());
      } else if (i % 5 == 1) {
        ps.push_back(repeated);
      } else {
        ps.push_back(ec_mul_g(random_scalar(rng)));
      }
    }
    Point fast = ec_msm_pippenger(ks, ps);
    EXPECT_TRUE(ec_eq(fast, ec_msm_strauss(ks, ps))) << "n=" << n;
    if (n <= 9) {
      Point want = Point::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        want = ec_add(want, ec_mul_naive(ks[i], ps[i]));
      }
      EXPECT_TRUE(ec_eq(fast, want)) << "n=" << n;
    }
  }
}

TEST(EcFast, PippengerEdgeScalars) {
  Rng rng(712);
  // Zero, one, n-1, lambda and friends: every edge scalar against its own
  // random point in one product, cross-checked against the naive sum.
  std::vector<Fn> ks = edge_scalars(rng);
  std::vector<Point> ps;
  Point want = Point::infinity();
  for (const Fn& k : ks) {
    Point p = ec_mul_g(random_scalar(rng));
    ps.push_back(p);
    want = ec_add(want, ec_mul_naive(k, p));
  }
  EXPECT_TRUE(ec_eq(ec_msm_pippenger(ks, ps), want));
  EXPECT_TRUE(ec_eq(ec_msm_strauss(ks, ps), want));
}

TEST(EcFast, PippengerDegenerateInputs) {
  Rng rng(713);
  Point p = ec_mul_g(random_scalar(rng));
  // All-infinity points and all-zero scalars collapse to infinity.
  std::vector<Fn> ks(8, random_scalar(rng));
  std::vector<Point> inf_ps(8, Point::infinity());
  EXPECT_TRUE(ec_msm_pippenger(ks, inf_ps).is_infinity());
  std::vector<Fn> zeros(8, Fn::zero());
  std::vector<Point> ps(8, p);
  EXPECT_TRUE(ec_msm_pippenger(zeros, ps).is_infinity());
  EXPECT_TRUE(ec_msm_pippenger({}, {}).is_infinity());
  // Cancelling pair: k*P + (n-k)*P = infinity.
  std::array<Fn, 2> ck{ks[0], Fn::zero() - ks[0]};
  std::array<Point, 2> cp{p, p};
  EXPECT_TRUE(ec_msm_pippenger(ck, cp).is_infinity());
  EXPECT_THROW(ec_msm_pippenger(std::span<const Fn>(ck).subspan(0, 1), cp),
               CryptoError);
}

TEST(EcFast, MsmAutoSelectsAtCrossoverBoundary) {
  Rng rng(714);
  // Pin the crossover and check the front door agrees with both engines
  // at the boundary and one term either side of it.
  std::size_t prev = ec_msm_set_crossover(4);
  for (std::size_t n : {std::size_t{3}, std::size_t{4}, std::size_t{5}}) {
    std::vector<Fn> ks;
    std::vector<Point> ps;
    for (std::size_t i = 0; i < n; ++i) {
      ks.push_back(random_scalar(rng));
      ps.push_back(ec_mul_g(random_scalar(rng)));
    }
    Point got = ec_msm(ks, ps);
    EXPECT_TRUE(ec_eq(got, ec_msm_strauss(ks, ps))) << "n=" << n;
    EXPECT_TRUE(ec_eq(got, ec_msm_pippenger(ks, ps))) << "n=" << n;
  }
  ec_msm_set_crossover(prev);
  EXPECT_EQ(ec_msm_crossover(), prev);
}

TEST(EcFast, AddMixedMatchesGeneralAdd) {
  Rng rng(707);
  Point p = ec_mul(random_scalar(rng), ec_mul_g(random_scalar(rng)));
  Point q = ec_mul(random_scalar(rng), ec_mul_g(random_scalar(rng)));
  AffinePoint qa = to_affine(q);
  EXPECT_TRUE(ec_eq(ec_add_mixed(p, qa), ec_add(p, q)));
  // P + P through the mixed path must fall back to doubling.
  AffinePoint pa = to_affine(p);
  EXPECT_TRUE(ec_eq(ec_add_mixed(p, pa), ec_double(p)));
  // P + (-P) = infinity.
  AffinePoint na = pa;
  na.y = na.y.neg();
  EXPECT_TRUE(ec_add_mixed(p, na).is_infinity());
  // Identity on either side.
  EXPECT_TRUE(ec_eq(ec_add_mixed(Point::infinity(), qa), q));
  EXPECT_TRUE(ec_eq(ec_add_mixed(p, AffinePoint{{}, {}, true}), p));
}

TEST(EcFast, BatchToAffineMatchesPerPointConversion) {
  Rng rng(708);
  std::vector<Point> pts;
  pts.push_back(Point::infinity());
  for (int i = 0; i < 9; ++i) {
    pts.push_back(ec_mul(random_scalar(rng), ec_mul_g(random_scalar(rng))));
  }
  pts.push_back(Point::infinity());
  std::vector<AffinePoint> got = batch_to_affine(pts);
  ASSERT_EQ(got.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    AffinePoint want = to_affine(pts[i]);
    EXPECT_EQ(got[i].infinity, want.infinity);
    if (!want.infinity) {
      EXPECT_TRUE(got[i].x == want.x);
      EXPECT_TRUE(got[i].y == want.y);
      EXPECT_TRUE(on_curve(got[i]));
    }
  }
  // Single-element and empty batches.
  std::vector<Point> one{pts[1]};
  EXPECT_TRUE(batch_to_affine(one)[0].x == to_affine(pts[1]).x);
  EXPECT_TRUE(batch_to_affine({}).empty());
}

TEST(EcFast, NormalizeBatchRescalesToUnitZ) {
  Rng rng(709);
  std::vector<Point> pts;
  for (int i = 0; i < 6; ++i) {
    pts.push_back(ec_mul(random_scalar(rng), ec_mul_g(random_scalar(rng))));
  }
  pts.push_back(Point::infinity());
  std::vector<Point> orig = pts;
  ec_normalize_batch(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(ec_eq(pts[i], orig[i]));
    if (!pts[i].is_infinity()) {
      EXPECT_TRUE(pts[i].Z == Fp::one());
    }
  }
}

// --- Verifier cross-checks: bit-identical accept/reject decisions --------

TEST(EcFast, SchnorrVerifierMatchesNaive) {
  Rng rng(710);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("receipt endorsement");
  Bytes sig = schnorr_sign(kp.sk, msg);
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig));
  EXPECT_EQ(schnorr_verify(kp.pk, msg, sig),
            schnorr_verify_naive(kp.pk, msg, sig));
  // Rejections must agree too: tampered message, signature and key.
  EXPECT_EQ(schnorr_verify(kp.pk, to_bytes("receipt endorsament"), sig),
            schnorr_verify_naive(kp.pk, to_bytes("receipt endorsament"), sig));
  for (std::size_t pos : {std::size_t{1}, std::size_t{40}, std::size_t{64}}) {
    Bytes bad = sig;
    bad[pos] ^= 1;
    EXPECT_EQ(schnorr_verify(kp.pk, msg, bad),
              schnorr_verify_naive(kp.pk, msg, bad))
        << "pos=" << pos;
  }
  KeyPair other = schnorr_keygen(rng);
  EXPECT_EQ(schnorr_verify(other.pk, msg, sig),
            schnorr_verify_naive(other.pk, msg, sig));
}

TEST(EcFast, BitProofVerifierMatchesNaive) {
  Rng rng(711);
  Point key = ec_mul_g(random_scalar(rng));
  for (bool bit : {false, true}) {
    Fn r = random_scalar(rng);
    ElGamalCipher c = eg_commit(key, bit ? Fn::one() : Fn::zero(), r);
    BitProof p = prove_bit(key, c, bit, r, rng);
    Fn ch = random_scalar(rng);
    BitProofResponse resp = p.secrets.at(ch);
    EXPECT_TRUE(verify_bit(key, c, p.first_move, ch, resp));
    EXPECT_EQ(verify_bit(key, c, p.first_move, ch, resp),
              verify_bit_naive(key, c, p.first_move, ch, resp));
    // Corrupt each response component and the challenge; accept/reject
    // must stay identical to the pre-refactor verifier.
    BitProofResponse bad = resp;
    bad.z0 = bad.z0 + Fn::one();
    EXPECT_EQ(verify_bit(key, c, p.first_move, ch, bad),
              verify_bit_naive(key, c, p.first_move, ch, bad));
    bad = resp;
    bad.z1 = bad.z1 + Fn::one();
    EXPECT_EQ(verify_bit(key, c, p.first_move, ch, bad),
              verify_bit_naive(key, c, p.first_move, ch, bad));
    bad = resp;
    bad.c0 = bad.c0 + Fn::one();
    EXPECT_EQ(verify_bit(key, c, p.first_move, ch, bad),
              verify_bit_naive(key, c, p.first_move, ch, bad));
    EXPECT_EQ(verify_bit(key, c, p.first_move, ch + Fn::one(), resp),
              verify_bit_naive(key, c, p.first_move, ch + Fn::one(), resp));
    // Proof for a non-bit plaintext must be rejected by both.
    Fn r2 = random_scalar(rng);
    ElGamalCipher c2 = eg_commit(key, Fn::from_u64(2), r2);
    EXPECT_FALSE(verify_bit(key, c2, p.first_move, ch, resp));
    EXPECT_EQ(verify_bit(key, c2, p.first_move, ch, resp),
              verify_bit_naive(key, c2, p.first_move, ch, resp));
  }
}

TEST(EcFast, SumProofVerifierMatchesNaive) {
  Rng rng(712);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r1 = random_scalar(rng), r2 = random_scalar(rng);
  ElGamalCipher sum =
      eg_add(eg_commit(key, Fn::one(), r1), eg_commit(key, Fn::zero(), r2));
  SumProof p = prove_sum(key, r1 + r2, rng);
  Fn ch = random_scalar(rng);
  Fn z = p.z.at(ch);
  EXPECT_TRUE(verify_sum(key, sum, Fn::one(), p.first_move, ch, z));
  EXPECT_EQ(verify_sum(key, sum, Fn::one(), p.first_move, ch, z),
            verify_sum_naive(key, sum, Fn::one(), p.first_move, ch, z));
  // Wrong total, wrong response, wrong challenge: decisions must agree.
  EXPECT_EQ(verify_sum(key, sum, Fn::from_u64(2), p.first_move, ch, z),
            verify_sum_naive(key, sum, Fn::from_u64(2), p.first_move, ch, z));
  EXPECT_EQ(
      verify_sum(key, sum, Fn::one(), p.first_move, ch, z + Fn::one()),
      verify_sum_naive(key, sum, Fn::one(), p.first_move, ch, z + Fn::one()));
  EXPECT_EQ(verify_sum(key, sum, Fn::one(), p.first_move, ch + Fn::one(), z),
            verify_sum_naive(key, sum, Fn::one(), p.first_move,
                             ch + Fn::one(), z));
}

TEST(EcFast, PedersenVssVerifierMatchesNaive) {
  Rng rng(713);
  PedersenDeal deal = pedersen_vss_deal(random_scalar(rng), 3, 5, rng);
  for (const PedersenShare& s : deal.shares) {
    EXPECT_TRUE(pedersen_vss_verify(s, deal.coefficient_comms));
    EXPECT_EQ(pedersen_vss_verify(s, deal.coefficient_comms),
              pedersen_vss_verify_naive(s, deal.coefficient_comms));
    PedersenShare bad = s;
    bad.f = bad.f + Fn::one();
    EXPECT_EQ(pedersen_vss_verify(bad, deal.coefficient_comms),
              pedersen_vss_verify_naive(bad, deal.coefficient_comms));
    bad = s;
    bad.g = bad.g + Fn::one();
    EXPECT_EQ(pedersen_vss_verify(bad, deal.coefficient_comms),
              pedersen_vss_verify_naive(bad, deal.coefficient_comms));
  }
  EXPECT_FALSE(pedersen_vss_verify(deal.shares[0], {}));
}

TEST(EcFast, CommitmentsStayNormalizedAndCorrect) {
  Rng rng(714);
  Point key = ec_mul_g(random_scalar(rng));
  Fn m = Fn::from_u64(3), r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, m, r);
  // Outputs are batch-normalized (Z == 1) so encoding skips inversions.
  EXPECT_TRUE(c.a.Z == Fp::one());
  EXPECT_TRUE(c.b.Z == Fp::one());
  // And they agree with the textbook construction.
  EXPECT_TRUE(ec_eq(c.a, ec_mul_naive(r, ec_generator())));
  EXPECT_TRUE(ec_eq(c.b, ec_add(ec_mul_naive(m, ec_generator()),
                                ec_mul_naive(r, key))));
  EXPECT_TRUE(eg_open_check(key, c, m, r));
  EXPECT_FALSE(eg_open_check(key, c, m + Fn::one(), r));

  std::vector<Fn> rs;
  for (int i = 0; i < 4; ++i) rs.push_back(random_scalar(rng));
  auto cs = eg_commit_unit_vector(key, 4, 2, rs);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_TRUE(cs[i].a.Z == Fp::one());
    EXPECT_TRUE(cs[i].b.Z == Fp::one());
    EXPECT_TRUE(eg_open_check(key, cs[i],
                              i == 2 ? Fn::one() : Fn::zero(), rs[i]));
  }
  // Pedersen commitment agrees with its textbook form.
  EXPECT_TRUE(ec_eq(pedersen_commit(m, r),
                    ec_add(ec_mul_naive(m, ec_generator()),
                           ec_mul_naive(r, ec_generator_h()))));
}

// --- Batch verification --------------------------------------------------

TEST(EcFast, SchnorrBatchAcceptsValidAndFlagsForgery) {
  Rng rng(715);
  std::vector<SchnorrInstance> xs;
  for (int i = 0; i < 8; ++i) {
    KeyPair kp = schnorr_keygen(rng);
    Bytes msg = rng.bytes(24);
    xs.push_back(SchnorrInstance{kp.pk, msg, schnorr_sign(kp.sk, msg)});
  }
  EXPECT_TRUE(schnorr_verify_batch(xs));
  EXPECT_TRUE(schnorr_verify_batch({}));
  EXPECT_TRUE(schnorr_verify_batch(std::span<const SchnorrInstance>(
      xs.data(), 1)));
  xs[5].sig[40] ^= 1;
  EXPECT_FALSE(schnorr_verify_batch(xs));
  xs[5].sig[40] ^= 1;
  xs[3].msg[0] ^= 1;
  EXPECT_FALSE(schnorr_verify_batch(xs));
  xs[3].msg[0] ^= 1;
  xs[2].sig.pop_back();
  EXPECT_FALSE(schnorr_verify_batch(xs));  // malformed instance
}

TEST(EcFast, BitAndSumBatchesMatchPerInstanceDecisions) {
  Rng rng(716);
  Point key = ec_mul_g(random_scalar(rng));
  Fn ch = random_scalar(rng);
  std::vector<BitProofInstance> bits;
  std::vector<SumProofInstance> sums;
  for (int i = 0; i < 6; ++i) {
    Fn r = random_scalar(rng);
    bool bit = i % 2 != 0;
    ElGamalCipher c = eg_commit(key, bit ? Fn::one() : Fn::zero(), r);
    BitProof p = prove_bit(key, c, bit, r, rng);
    bits.push_back(BitProofInstance{c, p.first_move, ch, p.secrets.at(ch)});
    SumProof sp = prove_sum(key, r, rng);
    sums.push_back(SumProofInstance{c, bit ? Fn::one() : Fn::zero(),
                                    sp.first_move, ch, sp.z.at(ch)});
  }
  EXPECT_TRUE(verify_bit_batch(key, bits));
  EXPECT_TRUE(verify_sum_batch(key, sums));
  EXPECT_TRUE(verify_bit_batch(key, {}));
  EXPECT_TRUE(verify_sum_batch(key, {}));
  // One corrupted instance sinks the combined check.
  bits[4].resp.z1 = bits[4].resp.z1 + Fn::one();
  EXPECT_FALSE(verify_bit_batch(key, bits));
  // ...and the per-instance fallback attributes exactly one failure.
  std::size_t bad = 0;
  for (const auto& x : bits) {
    if (!verify_bit(key, x.cipher, x.fm, x.challenge, x.resp)) ++bad;
  }
  EXPECT_EQ(bad, 1u);
  sums[1].z = sums[1].z + Fn::one();
  EXPECT_FALSE(verify_sum_batch(key, sums));
  // Inconsistent challenge split fails before any curve work.
  bits[4].resp.z1 = bits[4].resp.z1 - Fn::one();
  bits[0].resp.c0 = bits[0].resp.c0 + Fn::one();
  EXPECT_FALSE(verify_bit_batch(key, bits));
}

TEST(EcFast, EgOpenBatchMatchesPerInstanceDecisions) {
  Rng rng(717);
  Point key = ec_mul_g(random_scalar(rng));
  std::vector<EgOpenInstance> xs;
  for (int i = 0; i < 5; ++i) {
    Fn r = random_scalar(rng);
    Fn m = Fn::from_u64(static_cast<std::uint64_t>(i % 2));
    xs.push_back(EgOpenInstance{eg_commit(key, m, r), m, r});
  }
  EXPECT_TRUE(eg_open_check_batch(key, xs));
  EXPECT_TRUE(eg_open_check_batch(key, {}));
  xs[3].m = xs[3].m + Fn::one();
  EXPECT_FALSE(eg_open_check_batch(key, xs));
  std::size_t bad = 0;
  for (const auto& x : xs) {
    if (!eg_open_check(key, x.cipher, x.m, x.r)) ++bad;
  }
  EXPECT_EQ(bad, 1u);
}

}  // namespace
}  // namespace ddemos::crypto
