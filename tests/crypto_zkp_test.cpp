#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "crypto/shamir.hpp"
#include "crypto/zkp.hpp"

namespace ddemos::crypto {
namespace {

struct ZkpFixture : ::testing::Test {
  Rng rng{61};
  Point key = ec_mul_g(random_scalar(rng));
};

TEST_F(ZkpFixture, BitProofAcceptsZero) {
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::zero(), r);
  BitProof p = prove_bit(key, c, false, r, rng);
  Fn ch = challenge_from_coins(to_bytes("e1"), to_bytes("0110"));
  EXPECT_TRUE(verify_bit(key, c, p.first_move, ch, p.secrets.at(ch)));
}

TEST_F(ZkpFixture, BitProofAcceptsOne) {
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  Fn ch = challenge_from_coins(to_bytes("e1"), to_bytes("1011"));
  EXPECT_TRUE(verify_bit(key, c, p.first_move, ch, p.secrets.at(ch)));
}

TEST_F(ZkpFixture, BitProofWorksForManyChallenges) {
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  for (int i = 0; i < 10; ++i) {
    Fn ch = random_scalar(rng);
    EXPECT_TRUE(verify_bit(key, c, p.first_move, ch, p.secrets.at(ch)));
  }
}

TEST_F(ZkpFixture, BitProofRejectsTwo) {
  // A cheating EA commits to 2 ("stuff the ballot") and reuses the proof
  // machinery for bit=1; verification must fail for essentially all
  // challenges.
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::from_u64(2), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  Fn ch = challenge_from_coins(to_bytes("e1"), to_bytes("001"));
  EXPECT_FALSE(verify_bit(key, c, p.first_move, ch, p.secrets.at(ch)));
}

TEST_F(ZkpFixture, BitProofRejectsWrongChallenge) {
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::zero(), r);
  BitProof p = prove_bit(key, c, false, r, rng);
  Fn ch1 = challenge_from_coins(to_bytes("e1"), to_bytes("0"));
  Fn ch2 = challenge_from_coins(to_bytes("e1"), to_bytes("1"));
  // Response computed for ch1 must not verify against ch2.
  EXPECT_FALSE(verify_bit(key, c, p.first_move, ch2, p.secrets.at(ch1)));
}

TEST_F(ZkpFixture, BitProofRejectsMismatchedCipher) {
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::zero(), r);
  BitProof p = prove_bit(key, c, false, r, rng);
  ElGamalCipher other = eg_commit(key, Fn::zero(), random_scalar(rng));
  Fn ch = random_scalar(rng);
  EXPECT_FALSE(verify_bit(key, other, p.first_move, ch, p.secrets.at(ch)));
}

TEST_F(ZkpFixture, ResponsesAreShareable) {
  // The trustee path: share the affine coefficients with Shamir, evaluate
  // shares at the challenge, reconstruct the response, verify.
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  Fn ch = challenge_from_coins(to_bytes("e9"), to_bytes("101"));

  constexpr std::size_t kT = 3, kN = 5;
  const AffineScalar* comps[4] = {&p.secrets.c0, &p.secrets.c1, &p.secrets.z0,
                                  &p.secrets.z1};
  Fn rec[4];
  for (int i = 0; i < 4; ++i) {
    auto us = shamir_deal(comps[i]->u, kT, kN, rng);
    auto vs = shamir_deal(comps[i]->v, kT, kN, rng);
    // Each trustee computes share_u + ch * share_v; that is a valid Shamir
    // share of u + ch*v by linearity.
    std::vector<Share> eval;
    for (std::size_t j = 0; j < kN; ++j) {
      eval.push_back(Share{us[j].x, us[j].y + ch * vs[j].y});
    }
    eval.resize(kT);
    rec[i] = shamir_reconstruct(eval, kT);
  }
  BitProofResponse resp{rec[0], rec[1], rec[2], rec[3]};
  EXPECT_TRUE(verify_bit(key, c, p.first_move, ch, resp));
}

TEST_F(ZkpFixture, SumProofAccepts) {
  // Unit vector of length 4, index 2; sum of ciphertexts encrypts 1.
  std::size_t m = 4;
  std::vector<Fn> rs;
  for (std::size_t i = 0; i < m; ++i) rs.push_back(random_scalar(rng));
  auto cs = eg_commit_unit_vector(key, m, 2, rs);
  ElGamalCipher sum = cs[0];
  Fn rsum = rs[0];
  for (std::size_t i = 1; i < m; ++i) {
    sum = eg_add(sum, cs[i]);
    rsum = rsum + rs[i];
  }
  SumProof p = prove_sum(key, rsum, rng);
  Fn ch = random_scalar(rng);
  EXPECT_TRUE(verify_sum(key, sum, Fn::one(), p.first_move, ch, p.z.at(ch)));
}

TEST_F(ZkpFixture, SumProofRejectsDoubleVoteEncoding) {
  // Malicious encoding with two ones: sum encrypts 2, proof of "sum == 1"
  // must fail.
  std::size_t m = 3;
  std::vector<ElGamalCipher> cs;
  std::vector<Fn> rs;
  for (std::size_t i = 0; i < m; ++i) {
    rs.push_back(random_scalar(rng));
    Fn mi = (i <= 1) ? Fn::one() : Fn::zero();
    cs.push_back(eg_commit(key, mi, rs[i]));
  }
  ElGamalCipher sum = cs[0];
  Fn rsum = rs[0];
  for (std::size_t i = 1; i < m; ++i) {
    sum = eg_add(sum, cs[i]);
    rsum = rsum + rs[i];
  }
  SumProof p = prove_sum(key, rsum, rng);
  Fn ch = random_scalar(rng);
  EXPECT_FALSE(verify_sum(key, sum, Fn::one(), p.first_move, ch, p.z.at(ch)));
  // It does prove sum == 2, which verifiers never accept for a ballot.
  EXPECT_TRUE(
      verify_sum(key, sum, Fn::from_u64(2), p.first_move, ch, p.z.at(ch)));
}

TEST_F(ZkpFixture, ChallengeDependsOnCoinsAndElection) {
  Fn c1 = challenge_from_coins(to_bytes("e1"), to_bytes("0101"));
  Fn c2 = challenge_from_coins(to_bytes("e1"), to_bytes("0111"));
  Fn c3 = challenge_from_coins(to_bytes("e2"), to_bytes("0101"));
  EXPECT_NE(c1, c2);
  EXPECT_NE(c1, c3);
}

}  // namespace
}  // namespace ddemos::crypto
