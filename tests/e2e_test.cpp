// End-to-end integration: full elections over the simulator with real
// cryptography — EA setup, voting with receipts, vote-set consensus, BB
// publication, trustee tally, auditing.
#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace ddemos::core {
namespace {

ElectionParams small_params(std::size_t voters, std::size_t options) {
  ElectionParams p;
  p.election_id = to_bytes("e2e-test-election");
  for (std::size_t i = 0; i < options; ++i) {
    p.options.push_back("option-" + std::to_string(i));
  }
  p.n_voters = voters;
  p.n_vc = 4;
  p.f_vc = 1;
  p.n_bb = 3;
  p.f_bb = 1;
  p.n_trustees = 3;
  p.h_trustees = 2;
  p.t_start = 0;
  p.t_end = 30'000'000;  // 30 virtual seconds
  return p;
}

TEST(EndToEnd, HappyPathTalliesCorrectly) {
  DriverConfig cfg;
  cfg.params = small_params(6, 3);
  cfg.seed = 7;
  cfg.workload = VoteListWorkload::make({0, 1, 2, 0, 0, 1});  // expected tally 3,2,1
  ElectionDriver runner(cfg);
  runner.run();

  // Every voter got a valid (human-verifiable) receipt.
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt()) << "voter " << v;
  }
  // All VC nodes agreed on the same final vote set of size 6.
  const auto& set0 = runner.vc_node(0).final_vote_set();
  EXPECT_EQ(set0.size(), 6u);
  for (std::size_t i = 1; i < cfg.params.n_vc; ++i) {
    EXPECT_TRUE(runner.vc_node(i).push_complete());
    EXPECT_EQ(runner.vc_node(i).final_vote_set(), set0);
  }
  // Every BB node published the result.
  for (std::size_t i = 0; i < cfg.params.n_bb; ++i) {
    ASSERT_TRUE(runner.bb_node(i).result_published()) << "bb " << i;
    EXPECT_EQ(runner.bb_node(i).result()->tally,
              (std::vector<std::uint64_t>{3, 2, 1}));
  }
  // Full election audit passes.
  client::Auditor auditor(runner.reader());
  client::AuditReport report = auditor.verify_election();
  EXPECT_TRUE(report.passed) << (report.failures.empty()
                                     ? ""
                                     : report.failures.front());
  EXPECT_EQ(report.tally, (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(EndToEnd, AbstentionsAreNotCounted) {
  DriverConfig cfg;
  cfg.params = small_params(5, 2);
  cfg.seed = 8;
  cfg.workload = VoteListWorkload::make({0, kAbstain, 1, kAbstain, 0});
  ElectionDriver runner(cfg);
  runner.run();
  ASSERT_TRUE(runner.bb_node(0).result_published());
  EXPECT_EQ(runner.bb_node(0).result()->tally,
            (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(runner.vc_node(0).final_vote_set().size(), 3u);
}

TEST(EndToEnd, ToleratesCrashedVcNode) {
  DriverConfig cfg;
  cfg.params = small_params(4, 2);
  cfg.seed = 9;
  cfg.workload = VoteListWorkload::make({0, 1, 0, 1});
  cfg.crashed_vcs = {3};
  cfg.voter_template.patience_us = 1'000'000;
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt()) << "voter " << v;
  }
  ASSERT_TRUE(runner.bb_node(0).result_published());
  EXPECT_EQ(runner.bb_node(0).result()->tally,
            (std::vector<std::uint64_t>{2, 2}));
}

TEST(EndToEnd, ToleratesCrashedBbAndTrustee) {
  DriverConfig cfg;
  cfg.params = small_params(4, 2);
  cfg.seed = 10;
  cfg.workload = VoteListWorkload::make({1, 1, 0, 1});
  cfg.crashed_bbs = {2};
  cfg.crashed_trustees = {0};  // ht=2 of 3: one crash tolerated
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(runner.bb_node(i).result_published()) << i;
    EXPECT_EQ(runner.bb_node(i).result()->tally,
              (std::vector<std::uint64_t>{1, 3}));
  }
  client::Auditor auditor(runner.reader());
  EXPECT_TRUE(auditor.verify_election().passed);
}

TEST(EndToEnd, DelegatedAuditPasses) {
  DriverConfig cfg;
  cfg.params = small_params(4, 3);
  cfg.seed = 11;
  cfg.workload = VoteListWorkload::make({2, 0, 1, 2});
  ElectionDriver runner(cfg);
  runner.run();
  client::Auditor auditor(runner.reader());
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    auto info = runner.voter(v).audit_info();
    client::AuditReport r = auditor.verify_delegated(info);
    EXPECT_TRUE(r.passed) << "voter " << v << ": "
                          << (r.failures.empty() ? "" : r.failures.front());
  }
}

TEST(EndToEnd, VoterRetriesOnUnresponsiveNode) {
  DriverConfig cfg;
  cfg.params = small_params(2, 2);
  cfg.seed = 12;
  cfg.workload = VoteListWorkload::make({0, 1});
  cfg.crashed_vcs = {0};  // voters may pick it first and must retry
  cfg.voter_template.patience_us = 500'000;
  ElectionDriver runner(cfg);
  runner.run();
  for (std::size_t v = 0; v < runner.voter_count(); ++v) {
    EXPECT_TRUE(runner.voter(v).has_receipt());
  }
}

TEST(EndToEnd, WanLatencyStillCompletes) {
  DriverConfig cfg;
  cfg.params = small_params(3, 2);
  cfg.seed = 13;
  cfg.workload = VoteListWorkload::make({0, 1, 0});
  cfg.link = sim::LinkModel::wan();
  ElectionDriver runner(cfg);
  runner.run();
  ASSERT_TRUE(runner.bb_node(0).result_published());
  EXPECT_EQ(runner.bb_node(0).result()->tally,
            (std::vector<std::uint64_t>{2, 1}));
}

TEST(EndToEnd, ZeroVotesPublishesEmptyTally) {
  DriverConfig cfg;
  cfg.params = small_params(3, 2);
  cfg.seed = 14;
  cfg.workload = VoteListWorkload::make({kAbstain, kAbstain, kAbstain});
  ElectionDriver runner(cfg);
  runner.run();
  ASSERT_TRUE(runner.bb_node(0).result_published());
  EXPECT_EQ(runner.bb_node(0).result()->tally,
            (std::vector<std::uint64_t>{0, 0}));
}

}  // namespace
}  // namespace ddemos::core
