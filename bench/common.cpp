#include "common.hpp"

#include <chrono>
#include <cstdio>

#include "core/messages.hpp"
#include "core/tcp_launcher.hpp"
#include "crypto/schnorr.hpp"
#include "net/thread_net.hpp"
#include "util/error.hpp"
#include "util/proc_stats.hpp"

namespace ddemos::bench {

using namespace core;
using sim::NodeId;

CalibratedCosts calibrate_signature_costs() {
  crypto::Rng rng(123);
  crypto::KeyPair kp = crypto::schnorr_keygen(rng);
  Bytes msg = to_bytes("calibration message for endorsement signatures");
  // Warm up the Montgomery constants.
  Bytes sig = crypto::schnorr_sign(kp.sk, msg);

  auto time_us = [](auto&& fn, int iters) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
               .count() /
           iters;
  };
  CalibratedCosts out;
  out.sign_us = time_us([&] { sig = crypto::schnorr_sign(kp.sk, msg); }, 20);
  out.verify_us = time_us(
      [&] {
        if (!crypto::schnorr_verify(kp.pk, msg, sig)) {
          throw ProtocolError("calibration verify failed");
        }
      },
      20);
  return out;
}

std::size_t env_size(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (!v) return def;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::string env_str(const char* name, const char* def) {
  const char* v = std::getenv(name);
  return v ? v : def;
}

std::size_t resolve_n_ballots(const VoteCollectionConfig& cfg) {
  std::size_t n =
      cfg.n_ballots ? cfg.n_ballots : std::max<std::size_t>(cfg.casts, 2000);
  // Each cast targets a distinct serial; a universe smaller than the cast
  // count used to silently shrink the measured run to n_ballots casts.
  return std::max(n, cfg.casts);
}

VoteCollectionCampaign::VoteCollectionCampaign(VoteCollectionConfig cfg)
    : cfg_(std::move(cfg)), n_ballots_(resolve_n_ballots(cfg_)) {}

const PhaseSample& VoteCollectionCampaign::generate() {
  if (generated_) return setup_sample_;
  Instrumentation instr;  // no host yet: wall/allocation/RSS accounting
  instr.begin_phase("setup");

  ea::EaConfig ea_cfg;
  ea_cfg.params.election_id = to_bytes("bench-election");
  for (std::size_t i = 0; i < cfg_.options; ++i) {
    ea_cfg.params.options.push_back("opt" + std::to_string(i));
  }
  ea_cfg.params.n_voters = n_ballots_;
  ea_cfg.params.n_vc = cfg_.n_vc;
  ea_cfg.params.f_vc = cfg_.f_vc;
  ea_cfg.params.n_bb = 1;
  ea_cfg.params.f_bb = 0;
  ea_cfg.params.n_trustees = 1;
  ea_cfg.params.h_trustees = 1;
  ea_cfg.params.t_start = 0;
  // Far-away end: the benchmark measures the vote-collection phase only.
  ea_cfg.params.t_end = std::numeric_limits<std::int64_t>::max() / 4;
  ea_cfg.seed = cfg_.seed;
  ea_cfg.vc_only = true;

  ea_params_ = ea_cfg.params;

  // Generate ballots (streaming), capture the first `casts` as targets.
  // On the TCP backend no VC store is kept here at all: every node process
  // recomputes its own slice from (params, seed), so the launcher only
  // needs the vote targets.
  const bool tcp = cfg_.backend == Backend::kTcp;
  targets_.reserve(cfg_.casts);
  crypto::Rng pick(cfg_.seed ^ 0xabcdef);
  mem_ballots_.assign(cfg_.disk_store || tcp ? 0 : cfg_.n_vc, {});
  std::vector<std::unique_ptr<store::DiskBallotSource::Builder>> builders;
  if (cfg_.disk_store && !tcp) {
    for (std::size_t i = 0; i < cfg_.n_vc; ++i) {
      builders.push_back(std::make_unique<store::DiskBallotSource::Builder>(
          cfg_.disk_dir + "/vc" + std::to_string(i) + ".ballots"));
    }
  }
  arts_ = ea::ea_setup_streaming(
      ea_cfg, [&](const Ballot& ballot, std::span<VcBallotInit> per_vc) {
        if (targets_.size() < cfg_.casts) {
          std::size_t part = pick.below(kNumParts);
          std::size_t opt = pick.below(cfg_.options);
          const BallotLine& line = ballot.parts[part].lines[opt];
          targets_.push_back(
              VoteTarget{ballot.serial, line.vote_code, line.receipt});
        }
        for (std::size_t i = 0; i < per_vc.size(); ++i) {
          if (!builders.empty()) {
            builders[i]->add(per_vc[i]);
          } else if (!mem_ballots_.empty()) {
            mem_ballots_[i].push_back(per_vc[i]);
          }
        }
      });
  for (auto& b : builders) b->finish();

  generated_ = true;
  setup_sample_ = instr.end_phase();
  return setup_sample_;
}

VoteCollectionResult VoteCollectionCampaign::run_cell(
    std::size_t n_shards, const CheckpointFn& checkpoint,
    std::size_t checkpoint_every, bool final_cell) {
  if (!generated_) generate();
  const VoteCollectionConfig& cfg = cfg_;
  const bool tcp = cfg.backend == Backend::kTcp;
  if (tcp && cfg.disk_store) {
    throw ProtocolError(
        "tcp backend: disk-backed stores are per-node-process state; "
        "configure the node processes, not the launcher");
  }

  std::vector<std::shared_ptr<store::BallotDataSource>> sources(
      tcp ? 0 : cfg.n_vc);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (cfg.disk_store) {
      // One read handle per VC shard, so sharded disk-backed runs do not
      // serialize lookups behind a single FILE* lock.
      sources[i] = std::make_shared<store::DiskBallotSource>(
          cfg.disk_dir + "/vc" + std::to_string(i) + ".ballots",
          cfg.cache_pages, std::max<std::size_t>(n_shards, 1));
    } else if (final_cell) {
      // No later cell needs the master set: hand it over instead of
      // doubling resident memory (the accounting would report the copy).
      sources[i] = std::make_shared<store::MemoryBallotSource>(
          std::move(mem_ballots_[i]));
    } else {
      // Copy from the master set: a later cell needs the data again.
      sources[i] =
          std::make_shared<store::MemoryBallotSource>(mem_ballots_[i]);
    }
  }
  std::vector<VoteTarget> targets =
      final_cell ? std::move(targets_) : targets_;

  vc::VcNode::Options opts;
  opts.n_shards = std::max<std::size_t>(n_shards, 1);
  if (cfg.backend == Backend::kSim) {
    // Modeled signature charges calibrated against this CPU; on the real
    // transports charge() is a no-op, so those sweeps run real Schnorr.
    CalibratedCosts costs = calibrate_signature_costs();
    opts.model_signatures = true;
    opts.sign_cost_us = costs.sign_us;
    opts.verify_cost_us = costs.verify_us;
  }
  if (cfg.disk_store) opts.page_fault_cost_us = cfg.page_fault_cost_us;

  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<net::ThreadNet> net;
  std::unique_ptr<core::TcpLauncher> launcher;
  sim::RuntimeHost* host;
  if (tcp) {
    // One OS process per VC node; this process hosts only the load
    // generator. The spec ships the election parameters and this cell's
    // shard count — each node process rebuilds its ballots from the seed.
    core::TcpClusterSpec spec;
    spec.params = ea_params_;
    spec.seed = cfg.seed;
    spec.vc_only = true;
    spec.collection_only = true;
    spec.vc_shards = opts.n_shards;
    spec.vc_options = opts;
    spec.durability = cfg.durability;
    launcher = std::make_unique<core::TcpLauncher>(std::move(spec));
    launcher->launch();
    host = &launcher->net();
  } else if (cfg.backend == Backend::kThreads) {
    net = std::make_unique<net::ThreadNet>();
    host = net.get();
  } else {
    sim = std::make_unique<sim::Simulation>(cfg.seed);
    sim->set_default_link(cfg.link);
    sim->set_measure_cpu(true);
    host = sim.get();
  }
  std::vector<NodeId> vc_ids(cfg.n_vc);
  for (std::size_t i = 0; i < cfg.n_vc; ++i) vc_ids[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < cfg.n_vc; ++i) {
    if (tcp) {
      launcher->net().add_remote("vc" + std::to_string(i));
      continue;
    }
    NodeId id = host->add_node(
        std::make_unique<vc::VcNode>(arts_.vc_inits[i], sources[i], vc_ids,
                                     std::vector<NodeId>{}, opts),
        "vc" + std::to_string(i));
    if (cfg.durability.enabled()) {
      // Bench cells are always fresh elections: drop any leftover log so
      // attach_wal never replays a previous cell's state.
      std::string wal_path =
          cfg.durability.wal_dir + "/vc" + std::to_string(i) + ".wal";
      std::remove(wal_path.c_str());
      dynamic_cast<vc::VcNode&>(host->process(id))
          .attach_wal(std::make_unique<store::Wal>(
              wal_path, cfg.durability.wal_options()));
    }
  }
  // The voter <-> VC link stays LAN-like even in the WAN experiment: the
  // paper emulates WAN latency between the VC nodes themselves.
  NodeId gen_id = host->add_node(
      std::make_unique<LoadGen>(std::move(targets), vc_ids, cfg.concurrency,
                                cfg.seed ^ 0x1),
      "loadgen");
  if (sim && cfg.link.base_latency > 1000) {
    for (NodeId vc : vc_ids) {
      sim->set_link(gen_id, vc, sim::LinkModel::lan());
      sim->set_link(vc, gen_id, sim::LinkModel::lan());
    }
  }

  // Completion wait through the RuntimeHost surface: run until the closed
  // loop has drained every cast. The bench measures vote collection only,
  // so the tight probe interval keeps the sim from chasing far-future
  // election-end timers once the loop finishes.
  auto& gen = dynamic_cast<LoadGen&>(host->process(gen_id));
  sim::RunOptions run_opts;
  run_opts.probe_interval = 16;
  // Scale the stuck-run budget with the cast count so paper-size sweeps
  // (millions of casts) never trip it; it only exists to catch true hangs.
  run_opts.max_events =
      std::max<std::size_t>(50'000'000, cfg.casts * 10'000);
  // ThreadNet: generous wall cap scaled with the cast count (real crypto
  // per cast); it exists to catch hangs, not to bound the measurement.
  run_opts.wall_timeout_us = std::max<sim::Duration>(
      120'000'000, static_cast<sim::Duration>(cfg.casts) * 200'000);

  Instrumentation instr(host);
  sim::TimePoint virt_base = host->now();
  instr.begin_phase("collection");
  auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t events_base = host->events_dispatched();
  std::size_t next_mark = checkpoint_every;
  if (checkpoint && checkpoint_every) {
    run_opts.probe = [&] {
      // Probe hooks fire every probe_interval events, so a checkpoint
      // lands within a handful of events of its cast-count mark.
      std::size_t done_casts = gen.completed() + gen.rejected();
      if (done_casts < next_mark) return;
      Checkpoint cp;
      cp.completed = done_casts;
      cp.total = gen.target_count();
      cp.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
      cp.virtual_us = host->now();
      cp.events = host->events_dispatched() - events_base;
      cp.rss_kb = util::current_rss_kb();
      checkpoint(cp);
      while (next_mark <= done_casts) next_mark += checkpoint_every;
    };
  }
  // TCP cluster: C_GO to the node processes + start the local net. The
  // closed loop's completion predicate needs no remote state — every cast
  // resolves with a receipt arriving back at the load generator.
  if (launcher) launcher->go();
  if (!host->run_to_quiescence([&gen] { return gen.done(); }, run_opts)) {
    // The queue drained (or the wall budget lapsed) with casts unresolved
    // (e.g. a lossy link ate a vote): fail loudly rather than emit metrics
    // over partial counts.
    throw ProtocolError("benchmark stalled before completing every cast");
  }
  std::uint64_t remote_events = 0;
  if (launcher) {
    // Collect the node-process reports (stops the local net too) so the
    // cell's event accounting covers the whole cluster.
    for (const core::TcpProcessReport& rep : launcher->stop_cluster()) {
      remote_events += rep.events;
    }
  }
  host->stop();  // join ThreadNet workers before reading settled state
  if (gen.rejected() > 0) throw ProtocolError("benchmark vote rejected");

  VoteCollectionResult out;
  out.setup = setup_sample_;
  out.collection = instr.end_phase();
  out.collection.events += remote_events;
  // Between done() probes the sim can pop a few of the far-future
  // election-end timers, teleporting now() to t_end (~int64max/4); the
  // phase's meaningful virtual span ends at the last receipt — the same
  // span the throughput figure uses.
  if (gen.last_receipt() >= 0) {
    out.collection.virtual_s = std::min(
        out.collection.virtual_s,
        static_cast<double>(gen.last_receipt() - virt_base) / 1e6);
  }
  out.completed = gen.completed();
  out.mean_latency_ms = gen.mean_latency_us() / 1000.0;
  double span_s =
      static_cast<double>(gen.last_receipt() - gen.first_send()) / 1e6;
  out.throughput_ops = span_s > 0 ? gen.completed() / span_s : 0;
  return out;
}

VoteCollectionResult run_vote_collection(const VoteCollectionConfig& cfg) {
  VoteCollectionCampaign campaign(cfg);
  campaign.generate();
  // Single-use campaign: the only cell is the final one (moves the master
  // data instead of copying, matching the pre-campaign memory profile).
  return campaign.run_cell(cfg.n_shards, nullptr, 0, /*final_cell=*/true);
}

}  // namespace ddemos::bench
