// Shared benchmark harness: calibrated cost model, closed-loop voting load
// generator, and the vote-collection cluster builder used by the Figure 4
// and Figure 5 reproductions (see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"
#include "crypto/rng.hpp"
#include "ea/ea.hpp"
#include "instrumentation.hpp"
#include "sim/sim.hpp"
#include "store/ballot_store.hpp"
#include "vc/vc_node.hpp"

namespace ddemos::bench {

// The closed-loop load generator now lives in core (it backs the driver's
// ClosedLoopWorkload); the benches keep their historical names.
using VoteTarget = core::VoteTarget;
using LoadGen = core::ClosedLoopClient;

// Measured Schnorr costs on this machine, used as the modeled signature
// charges in the simulator (see EXPERIMENTS.md, "Microbenchmarks").
struct CalibratedCosts {
  sim::Duration sign_us = 0;
  sim::Duration verify_us = 0;
};
CalibratedCosts calibrate_signature_costs();

// Which runtime hosts a vote-collection cell:
//  * kSim — hybrid simulator: real protocol code and hashing, modeled
//    network and signature costs, deterministic virtual time;
//  * kThreads — net::ThreadNet: real threads and real Schnorr crypto in
//    one process, wall-clock throughput;
//  * kTcp — core::TcpLauncher over net::TcpNet: one OS process per VC
//    node, all traffic over loopback TCP sockets, real crypto. The node
//    processes rebuild their ballot slice from (params, seed); disk-backed
//    stores are not supported on this backend.
enum class Backend { kSim, kThreads, kTcp };

struct VoteCollectionConfig {
  std::size_t n_vc = 4;
  std::size_t f_vc = 1;
  std::size_t concurrency = 400;
  std::size_t casts = 1000;
  std::size_t n_ballots = 0;  // 0: max(casts, 2000)
  std::size_t options = 4;
  sim::LinkModel link = sim::LinkModel::lan();
  std::uint64_t seed = 42;
  bool disk_store = false;
  std::string disk_dir;          // required when disk_store
  std::size_t cache_pages = 64;  // per VC node
  // Modeled storage latency per page-cache miss (SSD-class random read
  // through a database stack).
  sim::Duration page_fault_cost_us = 150;
  // Intra-node VC shards (the fig5a scaling sweep): one virtual processor
  // per shard on the simulator, one worker thread per shard on ThreadNet.
  std::size_t n_shards = 1;
  // Hosting runtime. The non-simulator backends imply real Schnorr crypto
  // in the hot path (modeled charges are meaningless where charge() is a
  // no-op) so there is genuine CPU work for the shards to parallelize.
  Backend backend = Backend::kSim;
  // Write-ahead logging on every VC node (the fig4 durability sweep).
  // Single-process backends attach <wal_dir>/vc<i>.wal directly — any
  // pre-existing log file is deleted first, a bench cell is always a
  // fresh election — while the TCP backend ships the config through the
  // cluster spec (there the caller owns wal_dir hygiene: a leftover log
  // would replay into the new cluster).
  core::DurabilityConfig durability;
};

struct VoteCollectionResult {
  double throughput_ops = 0;   // receipts per second of (virtual|wall) time
  double mean_latency_ms = 0;  // client-perceived
  std::size_t completed = 0;
  // Uniform accounting (bench::Instrumentation) for the two campaign
  // phases: EA streaming generation into the stores, and the collection
  // run itself (events, allocations, RSS, wall + virtual time).
  PhaseSample setup, collection;
};

// Ballot-universe size a config resolves to: the explicit n_ballots (or
// the max(casts, 2000) default) clamped up to the cast count — a closed
// loop casting `casts` distinct ballots needs at least that many serials,
// and an under-sized universe used to silently shrink the measured run.
std::size_t resolve_n_ballots(const VoteCollectionConfig& cfg);

// A reusable vote-collection campaign, split so large sweeps amortize the
// expensive EA generation phase: generate() streams the EA's per-ballot
// data into the configured stores (DiskBallotSource builders or in-memory
// vectors) exactly once; run_cell() then hosts a fresh cluster over that
// data per sweep cell (vc shards vary per cell, the ballot files and the
// captured vote targets are shared). run_vote_collection() is the
// single-cell convenience wrapper the Figure 4/5 benches use.
class VoteCollectionCampaign {
 public:
  explicit VoteCollectionCampaign(VoteCollectionConfig cfg);

  // Phase 1: EA streaming setup. Returns the phase's accounting sample
  // (also retained in every later result's `setup` field).
  const PhaseSample& generate();

  // Periodic progress snapshot during a cell run (fig6's checkpoint log).
  struct Checkpoint {
    std::size_t completed = 0, total = 0;  // casts resolved so far
    double wall_s = 0;                     // since the cell run began
    sim::TimePoint virtual_us = 0;         // host clock at the snapshot
    std::uint64_t events = 0;              // dispatched in the cell so far
    std::uint64_t rss_kb = 0;
  };
  using CheckpointFn = std::function<void(const Checkpoint&)>;

  // Phase 2: build a cluster with `n_shards` worker shards per VC node
  // over the generated data and drive the closed loop to completion.
  // `checkpoint` (if set) fires every `checkpoint_every` completed casts.
  // `final_cell` moves the master targets/ballots into the cluster instead
  // of copying them (halves peak RSS for memory-backed runs); no further
  // cell may run after it.
  VoteCollectionResult run_cell(std::size_t n_shards,
                                const CheckpointFn& checkpoint = nullptr,
                                std::size_t checkpoint_every = 0,
                                bool final_cell = false);

  std::size_t n_ballots() const { return n_ballots_; }

 private:
  VoteCollectionConfig cfg_;
  std::size_t n_ballots_ = 0;
  core::ElectionParams ea_params_;  // the params generate() configured
  ea::SetupArtifacts arts_;
  std::vector<core::VoteTarget> targets_;
  // Kept as the master copy so every run_cell gets a fresh source
  // (!disk_store only; disk cells re-open the files per cell).
  std::vector<std::vector<core::VcBallotInit>> mem_ballots_;
  PhaseSample setup_sample_;
  bool generated_ = false;
};

// Runs the vote-collection phase only (as the paper's Figure 4/5a/5b
// experiments do) on the configured backend: the hybrid simulator, the
// in-process multi-threaded transport, or the multi-process TCP cluster.
VoteCollectionResult run_vote_collection(const VoteCollectionConfig& cfg);

// Environment-variable scaling knobs shared by all figure benches.
std::size_t env_size(const char* name, std::size_t def);
std::string env_str(const char* name, const char* def);

}  // namespace ddemos::bench
