// Shared benchmark harness: calibrated cost model, closed-loop voting load
// generator, and the vote-collection cluster builder used by the Figure 4
// and Figure 5 reproductions (see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "core/workload.hpp"
#include "crypto/rng.hpp"
#include "ea/ea.hpp"
#include "sim/sim.hpp"
#include "store/ballot_store.hpp"
#include "vc/vc_node.hpp"

namespace ddemos::bench {

// The closed-loop load generator now lives in core (it backs the driver's
// ClosedLoopWorkload); the benches keep their historical names.
using VoteTarget = core::VoteTarget;
using LoadGen = core::ClosedLoopClient;

// Measured Schnorr costs on this machine, used as the modeled signature
// charges in the simulator (see EXPERIMENTS.md, "Microbenchmarks").
struct CalibratedCosts {
  sim::Duration sign_us = 0;
  sim::Duration verify_us = 0;
};
CalibratedCosts calibrate_signature_costs();

struct VoteCollectionConfig {
  std::size_t n_vc = 4;
  std::size_t f_vc = 1;
  std::size_t concurrency = 400;
  std::size_t casts = 1000;
  std::size_t n_ballots = 0;  // 0: max(casts, 2000)
  std::size_t options = 4;
  sim::LinkModel link = sim::LinkModel::lan();
  std::uint64_t seed = 42;
  bool disk_store = false;
  std::string disk_dir;          // required when disk_store
  std::size_t cache_pages = 64;  // per VC node
  // Modeled storage latency per page-cache miss (SSD-class random read
  // through a database stack).
  sim::Duration page_fault_cost_us = 150;
  // Intra-node VC shards (the fig5a scaling sweep): one virtual processor
  // per shard on the simulator, one worker thread per shard on ThreadNet.
  std::size_t n_shards = 1;
  // Host the cluster on net::ThreadNet instead of the simulator: real
  // threads, real wall-clock throughput. Implies real Schnorr crypto in
  // the hot path (modeled charges are meaningless where charge() is a
  // no-op) so there is genuine CPU work for the shards to parallelize.
  bool threads = false;
};

struct VoteCollectionResult {
  double throughput_ops = 0;   // receipts per second of (virtual|wall) time
  double mean_latency_ms = 0;  // client-perceived
  std::size_t completed = 0;
};

// Runs the vote-collection phase only (as the paper's Figure 4/5a/5b
// experiments do) over the hybrid simulator — real protocol code and
// hashing, modeled network and signature costs — or, with cfg.threads,
// over the real multi-threaded transport with real crypto.
VoteCollectionResult run_vote_collection(const VoteCollectionConfig& cfg);

// Environment-variable scaling knob shared by all figure benches.
std::size_t env_size(const char* name, std::size_t def);

}  // namespace ddemos::bench
