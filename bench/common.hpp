// Shared benchmark harness: calibrated cost model, closed-loop voting load
// generator, and the vote-collection cluster builder used by the Figure 4
// and Figure 5 reproductions (see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "crypto/rng.hpp"
#include "ea/ea.hpp"
#include "sim/sim.hpp"
#include "store/ballot_store.hpp"
#include "vc/vc_node.hpp"

namespace ddemos::bench {

// One castable vote: a ballot's serial with a chosen code and its receipt.
struct VoteTarget {
  core::Serial serial = 0;
  Bytes code;
  std::uint64_t receipt = 0;
};

// Closed-loop load generator: `concurrency` in-flight voters; each completed
// receipt immediately triggers the next vote, as in the paper's
// multi-threaded voting client.
class LoadGen final : public sim::Process {
 public:
  LoadGen(std::vector<VoteTarget> targets, std::vector<sim::NodeId> vc_ids,
          std::size_t concurrency, std::uint64_t seed);

  void on_start() override;
  void on_message(sim::NodeId from, const net::Buffer& payload) override;

  bool done() const { return completed_ == targets_.size(); }
  std::size_t completed() const { return completed_; }
  sim::TimePoint first_send() const { return first_send_; }
  sim::TimePoint last_receipt() const { return last_receipt_; }
  double mean_latency_us() const {
    return latency_count_ ? latency_sum_us_ / latency_count_ : 0.0;
  }

 private:
  void send_next();

  std::vector<VoteTarget> targets_;
  std::vector<sim::NodeId> vc_ids_;
  std::size_t concurrency_;
  crypto::Rng rng_;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  std::map<core::Serial, sim::TimePoint> in_flight_;
  sim::TimePoint first_send_ = -1;
  sim::TimePoint last_receipt_ = -1;
  double latency_sum_us_ = 0;
  std::size_t latency_count_ = 0;
};

// Measured Schnorr costs on this machine, used as the modeled signature
// charges in the simulator (see DESIGN.md Section 2).
struct CalibratedCosts {
  sim::Duration sign_us = 0;
  sim::Duration verify_us = 0;
};
CalibratedCosts calibrate_signature_costs();

struct VoteCollectionConfig {
  std::size_t n_vc = 4;
  std::size_t f_vc = 1;
  std::size_t concurrency = 400;
  std::size_t casts = 1000;
  std::size_t n_ballots = 0;  // 0: max(casts, 2000)
  std::size_t options = 4;
  sim::LinkModel link = sim::LinkModel::lan();
  std::uint64_t seed = 42;
  bool disk_store = false;
  std::string disk_dir;          // required when disk_store
  std::size_t cache_pages = 64;  // per VC node
  // Modeled storage latency per page-cache miss (SSD-class random read
  // through a database stack).
  sim::Duration page_fault_cost_us = 150;
};

struct VoteCollectionResult {
  double throughput_ops = 0;   // receipts per second of virtual time
  double mean_latency_ms = 0;  // client-perceived
  std::size_t completed = 0;
};

// Runs the vote-collection phase only (as the paper's Figure 4/5a/5b
// experiments do) over the hybrid simulator: real protocol code and
// hashing, modeled network and signature costs.
VoteCollectionResult run_vote_collection(const VoteCollectionConfig& cfg);

// Environment-variable scaling knob shared by all figure benches.
std::size_t env_size(const char* name, std::size_t def);

}  // namespace ddemos::bench
