// Ablation bench: batched vote-set consensus versus per-instance consensus.
// The paper introduces "a version of Binary Consensus that operates in
// batches of arbitrary size; this way, we achieve greater network
// efficiency" — this bench quantifies that: messages and virtual time per
// decided instance as the batch width grows.
#include <cstdio>

#include "consensus/binary_consensus.hpp"
#include "sim/sim.hpp"

using namespace ddemos;
using namespace ddemos::consensus;

namespace {

class BcHost final : public sim::Process {
 public:
  BcHost(const ConsensusConfig& cfg, std::vector<CoinShare> shares,
         std::vector<crypto::Hash32> roots, Bitmap input)
      : cfg_(cfg), input_(std::move(input)) {
    engine_ = std::make_unique<BatchBinaryConsensus>(
        cfg, std::move(shares), std::move(roots),
        BatchBinaryConsensus::Hooks{
            [this](Bytes msg) {
              // One payload allocation shared by every recipient.
              net::Buffer buf(std::move(msg));
              for (std::size_t p = 0; p < cfg_.nodes; ++p) {
                ctx().send(static_cast<sim::NodeId>(p), buf);
              }
            },
            nullptr,
            [this] { complete = true; }});
  }
  void on_start() override { engine_->start(input_); }
  void on_message(sim::NodeId from, const net::Buffer& payload) override {
    engine_->on_message(from, payload.view());
  }
  bool complete = false;

 private:
  ConsensusConfig cfg_;
  Bitmap input_;
  std::unique_ptr<BatchBinaryConsensus> engine_;
};

struct RunResult {
  std::uint64_t messages = 0;
  sim::TimePoint virtual_us = 0;
};

RunResult run_batch(std::size_t n, std::size_t f, std::size_t width,
                    std::uint64_t seed) {
  sim::Simulation sim(seed);
  crypto::Rng dealer(seed ^ 0x5eed);
  ConsensusConfig cfg{n, f, width, 0, 64};
  CoinDeal deal = deal_coins(n, f + 1, 64, dealer);
  crypto::Rng inputs(seed ^ 0x1117);
  std::vector<BcHost*> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    cfg.self_index = i;
    Bitmap input(width);
    for (std::size_t j = 0; j < width; ++j) {
      if (inputs.below(2)) input.set(j);
    }
    hosts.push_back(dynamic_cast<BcHost*>(&sim.process(
        sim.add_node(std::make_unique<BcHost>(cfg, deal.node_shares[i],
                                              deal.round_roots, input),
                     "bc"))));
  }
  sim.start();
  sim.run_until_idle();
  return RunResult{sim.delivered_messages(), sim.now()};
}

}  // namespace

int main() {
  std::printf("# micro_consensus: batched binary consensus ablation "
              "(4 nodes, f=1)\n");
  std::printf("%-10s %12s %16s %16s\n", "batch", "messages",
              "msgs/instance", "virtual_ms");
  for (std::size_t width : {1u, 16u, 256u, 2048u}) {
    RunResult r = run_batch(4, 1, width, 31337 + width);
    std::printf("%-10zu %12llu %16.1f %16.2f\n", width,
                static_cast<unsigned long long>(r.messages),
                static_cast<double>(r.messages) / width, r.virtual_us / 1e3);
  }
  std::printf("\n# scaling with cluster size (batch = 256)\n");
  std::printf("%-10s %12s %16s %16s\n", "nodes", "messages",
              "msgs/instance", "virtual_ms");
  for (std::size_t n : {4u, 7u, 10u, 13u}) {
    RunResult r = run_batch(n, (n - 1) / 3, 256, 555 + n);
    std::printf("%-10zu %12llu %16.1f %16.2f\n", n,
                static_cast<unsigned long long>(r.messages),
                static_cast<double>(r.messages) / 256, r.virtual_us / 1e3);
  }
  return 0;
}
