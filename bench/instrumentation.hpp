// Shared benchmark instrumentation (extracted from micro_dispatch's ad-hoc
// accounting): phase-scoped counters over the hosting runtime's dispatched
// events, the zero-copy pipeline's payload allocations, wall + virtual
// time, and process RSS. Every figure bench splices the same uniform
// BENCH_JSON fields (accounting_fields) into its rows, so the CI
// perf-trajectory tooling joins event/allocation/memory readings across
// benches; InstrumentationObserver adapts the layer to the election
// driver's phase hooks for full-system runs.
#pragma once

#include <string>
#include <vector>

#include "core/driver.hpp"
#include "sim/runtime.hpp"

namespace ddemos::bench {

// Counters accumulated between begin_phase and end_phase. Time and event
// counters are deltas over the phase; the RSS readings are absolute
// samples taken at phase end (peak_rss_kb is process-lifetime peak, so it
// is monotone across phases by construction).
struct PhaseSample {
  std::string phase;
  double wall_s = 0;
  double virtual_s = 0;           // host time advance (virtual on the sim)
  std::uint64_t events = 0;       // handler invocations dispatched
  std::uint64_t allocations = 0;  // net::Buffer payload allocations
  std::uint64_t rss_kb = 0;       // resident set at phase end
  std::uint64_t peak_rss_kb = 0;  // process peak RSS at phase end
  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
};

// The uniform BENCH_JSON fragment (no braces, no leading/trailing comma):
//   "wall_s":…,"virtual_s":…,"events":…,"events_per_sec":…,
//   "allocations":…,"rss_kb":…,"peak_rss_kb":…
std::string accounting_fields(const PhaseSample& s);
// The same fields read out of a completed election report (virtual_s from
// the phase breakdown's full span).
std::string accounting_fields(const core::ElectionReport& r);

class Instrumentation {
 public:
  // `host` supplies the event counter and virtual clock; null records
  // wall/allocation/RSS only (events stay 0).
  explicit Instrumentation(const sim::RuntimeHost* host = nullptr)
      : host_(host) {}
  void attach(const sim::RuntimeHost* host) { host_ = host; }

  // Opens a phase, implicitly closing any phase still open.
  void begin_phase(std::string name);
  // Closes the open phase, appends its sample and returns a copy (by
  // value: samples_ may reallocate on the next phase); throws
  // ProtocolError when no phase is open.
  PhaseSample end_phase();
  bool phase_open() const { return open_; }

  const std::vector<PhaseSample>& samples() const { return samples_; }
  // First sample recorded under `phase`, or null.
  const PhaseSample* sample(const std::string& phase) const;

 private:
  const sim::RuntimeHost* host_ = nullptr;
  bool open_ = false;
  std::string open_name_;
  double wall_base_s_ = 0;
  sim::TimePoint virtual_base_ = 0;
  std::uint64_t events_base_ = 0;
  std::uint64_t alloc_base_ = 0;
  std::vector<PhaseSample> samples_;
};

// ElectionObserver adapter: cuts one Instrumentation phase per election
// phase (voting / consensus / tally / result), closing the last one at
// on_complete. Attach the driver's host before run() for event counts.
class InstrumentationObserver final : public core::ElectionObserver {
 public:
  explicit InstrumentationObserver(const sim::RuntimeHost* host = nullptr)
      : instr_(host) {}
  void attach(const sim::RuntimeHost* host) { instr_.attach(host); }

  void on_phase_entered(core::ElectionPhase phase, sim::TimePoint at) override;
  void on_complete(const core::ElectionReport& report) override;

  static const char* phase_name(core::ElectionPhase phase);
  const std::vector<PhaseSample>& samples() const { return instr_.samples(); }
  const PhaseSample* sample(const std::string& phase) const {
    return instr_.sample(phase);
  }

 private:
  Instrumentation instr_;
};

}  // namespace ddemos::bench
