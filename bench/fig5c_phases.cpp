// Reproduces Figure 5c: duration of each system phase versus the number of
// ballots cast — Vote Collection, Vote Set Consensus, Push to BB and
// encrypted tally, Publish result. Runs the full system (real cryptography
// everywhere) over the hybrid simulator; the cast counts are scaled down
// from the paper's 50k..200k (see EXPERIMENTS.md). Scale with
// DDEMOS_FIG5C_STEP. Phase durations come straight out of the driver's
// ElectionReport — no node-internal scraping.
#include <cstdio>

#include "common.hpp"
#include "core/driver.hpp"
#include "instrumentation.hpp"

using namespace ddemos;
using namespace ddemos::core;

int main() {
  std::size_t step = bench::env_size("DDEMOS_FIG5C_STEP", 25);
  std::size_t points = bench::env_size("DDEMOS_FIG5C_POINTS", 4);

  std::printf(
      "# fig5c: phase durations (virtual seconds) vs #ballots cast\n");
  std::printf("# paper phases: Vote Collection | Vote Set Consensus | "
              "Push to BB and encrypted tally | Publish result\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "#cast", "collection_s",
              "consensus_s", "push_tally_s", "publish_s");
  for (std::size_t i = 1; i <= points; ++i) {
    std::size_t casts = i * step;
    DriverConfig cfg;
    cfg.params.election_id = to_bytes("fig5c");
    cfg.params.options = {"yes", "no", "abstain", "blank"};  // m = 4
    cfg.params.n_voters = casts;
    cfg.params.n_vc = 4;
    cfg.params.f_vc = 1;
    cfg.params.n_bb = 3;
    cfg.params.f_bb = 1;
    cfg.params.n_trustees = 3;
    cfg.params.h_trustees = 2;
    cfg.params.t_start = 0;
    // Voters vote as fast as possible; the window only needs to fit them.
    cfg.params.t_end =
        static_cast<sim::TimePoint>(casts) * 100'000 + 10'000'000;
    cfg.seed = 5000 + i;
    cfg.voter_template.patience_us = 60'000'000;
    // Voters arrive nearly at once: the collection phase is then limited by
    // VC throughput, as in the paper's 400-concurrent-client setup.
    cfg.workload = RoundRobinWorkload::make([](std::size_t v) {
      return static_cast<sim::TimePoint>(v) * 100;
    });
    cfg.measure_cpu = true;
    // Sharper phase boundaries for the per-phase accounting rows.
    cfg.probe_interval = 64;
    ElectionDriver driver(cfg);
    // Per-phase accounting rides the driver's phase hooks: one
    // Instrumentation sample per election phase (voting / consensus /
    // tally / result), emitted as its own BENCH_JSON row below.
    bench::InstrumentationObserver accounting(&driver.host());
    driver.add_observer(&accounting);
    ElectionReport r = driver.run();

    std::printf("%-10zu %14.2f %14.2f %14.2f %14.2f\n", casts,
                r.phases.collection_s(), r.phases.consensus_s(),
                r.phases.push_tally_s(), r.phases.publish_s());
    std::printf("BENCH_JSON {\"bench\":\"fig5c\",\"casts\":%zu,"
                "\"collection_s\":%.3f,\"consensus_s\":%.3f,"
                "\"push_tally_s\":%.3f,\"publish_s\":%.3f,%s}\n",
                casts, r.phases.collection_s(), r.phases.consensus_s(),
                r.phases.push_tally_s(), r.phases.publish_s(),
                bench::accounting_fields(r).c_str());
    for (const bench::PhaseSample& s : accounting.samples()) {
      std::printf("BENCH_JSON {\"bench\":\"fig5c\",\"casts\":%zu,"
                  "\"phase\":\"%s\",%s}\n",
                  casts, s.phase.c_str(), bench::accounting_fields(s).c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
