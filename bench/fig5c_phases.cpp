// Reproduces Figure 5c: duration of each system phase versus the number of
// ballots cast — Vote Collection, Vote Set Consensus, Push to BB and
// encrypted tally, Publish result. Runs the full system (real cryptography
// everywhere) over the hybrid simulator; the cast counts are scaled down
// from the paper's 50k..200k (see EXPERIMENTS.md). Scale with
// DDEMOS_FIG5C_STEP.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/runner.hpp"

using namespace ddemos;
using namespace ddemos::core;

int main() {
  std::size_t step = bench::env_size("DDEMOS_FIG5C_STEP", 25);

  std::printf(
      "# fig5c: phase durations (virtual seconds) vs #ballots cast\n");
  std::printf("# paper phases: Vote Collection | Vote Set Consensus | "
              "Push to BB and encrypted tally | Publish result\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "#cast", "collection_s",
              "consensus_s", "push_tally_s", "publish_s");
  for (std::size_t i = 1; i <= 4; ++i) {
    std::size_t casts = i * step;
    RunnerConfig cfg;
    cfg.params.election_id = to_bytes("fig5c");
    cfg.params.options = {"yes", "no", "abstain", "blank"};  // m = 4
    cfg.params.n_voters = casts;
    cfg.params.n_vc = 4;
    cfg.params.f_vc = 1;
    cfg.params.n_bb = 3;
    cfg.params.f_bb = 1;
    cfg.params.n_trustees = 3;
    cfg.params.h_trustees = 2;
    cfg.params.t_start = 0;
    // Voters vote as fast as possible; the window only needs to fit them.
    cfg.params.t_end =
        static_cast<sim::TimePoint>(casts) * 100'000 + 10'000'000;
    cfg.seed = 5000 + i;
    cfg.voter_template.patience_us = 60'000'000;
    // Voters arrive nearly at once: the collection phase is then limited by
    // VC throughput, as in the paper's 400-concurrent-client setup.
    cfg.vote_time = [&cfg](std::size_t v) {
      return cfg.params.t_start + static_cast<sim::TimePoint>(v) * 100;
    };
    ElectionRunner runner(cfg);
    runner.simulation().set_measure_cpu(true);
    runner.run_to_completion();

    // Phase boundaries in virtual time.
    sim::TimePoint last_receipt = 0;
    for (std::size_t v = 0; v < runner.voter_count(); ++v) {
      last_receipt = std::max(last_receipt, runner.voter(v).receipt_at());
    }
    sim::TimePoint consensus_done = 0, push_done = 0;
    for (std::size_t v = 0; v < cfg.params.n_vc; ++v) {
      consensus_done =
          std::max(consensus_done, runner.vc_node(v).stats().consensus_done_at);
      push_done = std::max(push_done, runner.vc_node(v).stats().push_done_at);
    }
    sim::TimePoint tally_published = 0, result_published = 0;
    for (std::size_t b = 0; b < cfg.params.n_bb; ++b) {
      tally_published =
          std::max(tally_published, runner.bb_node(b).codes_published_at());
      result_published =
          std::max(result_published, runner.bb_node(b).result_published_at());
    }
    double collection = static_cast<double>(last_receipt) / 1e6;
    double consensus =
        static_cast<double>(consensus_done - cfg.params.t_end) / 1e6;
    double push = static_cast<double>(tally_published - consensus_done) / 1e6;
    double publish =
        static_cast<double>(result_published - tally_published) / 1e6;
    std::printf("%-10zu %14.2f %14.2f %14.2f %14.2f\n", casts, collection,
                consensus, push, publish);
    std::fflush(stdout);
  }
  return 0;
}
