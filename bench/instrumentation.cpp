#include "instrumentation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "net/buffer.hpp"
#include "util/error.hpp"
#include "util/proc_stats.hpp"

namespace ddemos::bench {

namespace {

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string accounting_fields(const PhaseSample& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"wall_s\":%.3f,\"virtual_s\":%.3f,\"events\":%llu,"
                "\"events_per_sec\":%.0f,\"allocations\":%llu,"
                "\"rss_kb\":%llu,\"peak_rss_kb\":%llu",
                s.wall_s, s.virtual_s,
                static_cast<unsigned long long>(s.events), s.events_per_sec(),
                static_cast<unsigned long long>(s.allocations),
                static_cast<unsigned long long>(s.rss_kb),
                static_cast<unsigned long long>(s.peak_rss_kb));
  return buf;
}

std::string accounting_fields(const core::ElectionReport& r) {
  PhaseSample s;
  s.wall_s = r.wall_seconds;
  s.virtual_s =
      static_cast<double>(r.phases.result_published_at - r.phases.t_start) /
      1e6;
  s.events = r.events_processed;
  s.allocations = r.payload_allocations;
  s.rss_kb = util::current_rss_kb();
  s.peak_rss_kb = std::max(r.peak_rss_kb, s.rss_kb);
  return accounting_fields(s);
}

void Instrumentation::begin_phase(std::string name) {
  if (open_) end_phase();
  open_ = true;
  open_name_ = std::move(name);
  wall_base_s_ = wall_now_s();
  virtual_base_ = host_ ? host_->now() : 0;
  events_base_ = host_ ? host_->events_dispatched() : 0;
  alloc_base_ = net::Buffer::payload_allocations();
}

PhaseSample Instrumentation::end_phase() {
  if (!open_) throw ProtocolError("Instrumentation: no open phase to end");
  PhaseSample s;
  s.phase = std::move(open_name_);
  s.wall_s = wall_now_s() - wall_base_s_;
  s.virtual_s =
      host_ ? static_cast<double>(host_->now() - virtual_base_) / 1e6 : 0;
  s.events = host_ ? host_->events_dispatched() - events_base_ : 0;
  s.allocations = net::Buffer::payload_allocations() - alloc_base_;
  s.rss_kb = util::current_rss_kb();
  // getrusage and /proc/self/statm account pages slightly differently;
  // clamp so the reported peak is never below the current sample.
  s.peak_rss_kb = std::max(util::peak_rss_kb(), s.rss_kb);
  open_ = false;
  samples_.push_back(std::move(s));
  return samples_.back();
}

const PhaseSample* Instrumentation::sample(const std::string& phase) const {
  for (const PhaseSample& s : samples_) {
    if (s.phase == phase) return &s;
  }
  return nullptr;
}

const char* InstrumentationObserver::phase_name(core::ElectionPhase phase) {
  switch (phase) {
    case core::ElectionPhase::kVoting: return "voting";
    case core::ElectionPhase::kConsensus: return "consensus";
    case core::ElectionPhase::kTally: return "tally";
    case core::ElectionPhase::kResult: return "result";
  }
  return "unknown";
}

void InstrumentationObserver::on_phase_entered(core::ElectionPhase phase,
                                               sim::TimePoint) {
  // begin_phase closes the previous phase, so each election phase's sample
  // spans exactly [its entry, the next phase's entry).
  instr_.begin_phase(phase_name(phase));
}

void InstrumentationObserver::on_complete(const core::ElectionReport&) {
  if (instr_.phase_open()) instr_.end_phase();
}

}  // namespace ddemos::bench
