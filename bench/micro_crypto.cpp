// Microbenchmarks of every cryptographic primitive (google-benchmark).
// These calibrate the modeled signature costs used by the figure benches
// and serve as the ablation data for the receipt-path cost breakdown in
// EXPERIMENTS.md ("Microbenchmarks"). Each result is also emitted as a
// machine-readable BENCH_JSON line for the CI bench-smoke artifact, so the
// crypto speedups are tracked across PRs alongside the figure benches.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/aes.hpp"
#include "crypto/batch.hpp"
#include "crypto/commit.hpp"
#include "crypto/ec.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/shamir.hpp"
#include "crypto/sha256.hpp"
#include "crypto/zkp.hpp"

namespace ddemos::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(1024)->Arg(65536);

void BM_VoteCodeValidation(benchmark::State& state) {
  // The per-vote hot path at a VC node: m*2 salted-hash checks.
  Rng rng(2);
  std::size_t m = static_cast<std::size_t>(state.range(0));
  Bytes code = rng.bytes(20);
  Bytes salt = rng.bytes(8);
  Hash32 h = salted_commit(code, salt);
  for (auto _ : state) {
    for (std::size_t i = 0; i < 2 * m; ++i) {
      benchmark::DoNotOptimize(salted_commit_check(h, code, salt));
    }
  }
}
BENCHMARK(BM_VoteCodeValidation)->Arg(2)->Arg(4)->Arg(10);

void BM_Aes128CbcEncrypt(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.bytes(16);
  Bytes pt = rng.bytes(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes128_cbc_encrypt(key, pt, rng));
  }
}
BENCHMARK(BM_Aes128CbcEncrypt);

void BM_EcScalarMul(benchmark::State& state) {
  Rng rng(4);
  Fn k = random_scalar(rng);
  Point p = ec_mul_g(random_scalar(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec_mul(k, p));
  }
}
BENCHMARK(BM_EcScalarMul);

void BM_EcScalarMulNaive(benchmark::State& state) {
  // The pre-refactor 256-iteration double-and-add ladder; the ratio vs
  // BM_EcScalarMul is the gate checked by crypto_speed_test.
  Rng rng(4);
  Fn k = random_scalar(rng);
  Point p = ec_mul_g(random_scalar(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec_mul_naive(k, p));
  }
}
BENCHMARK(BM_EcScalarMulNaive);

void BM_EcMul2(benchmark::State& state) {
  Rng rng(40);
  Fn a = random_scalar(rng);
  Fn b = random_scalar(rng);
  Point p = ec_mul_g(random_scalar(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec_mul2(a, p, b));
  }
}
BENCHMARK(BM_EcMul2);

void BM_EcMsm(benchmark::State& state) {
  Rng rng(41);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Fn> ks;
  std::vector<Point> ps;
  for (std::size_t i = 0; i < n; ++i) {
    ks.push_back(random_scalar(rng));
    ps.push_back(ec_mul_g(random_scalar(rng)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec_msm(ks, ps));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EcMsm)->Arg(2)->Arg(8)->Arg(32);

// The two MSM engines head to head across the crossover region. ec_msm
// auto-selects between them at ec_msm_crossover() terms; the sweep is the
// data behind the default (EXPERIMENTS.md "Parallel audit").
void BM_EcMsmStrauss(benchmark::State& state) {
  Rng rng(44);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Fn> ks;
  std::vector<Point> ps;
  for (std::size_t i = 0; i < n; ++i) {
    ks.push_back(random_scalar(rng));
    ps.push_back(ec_mul_g(random_scalar(rng)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec_msm_strauss(ks, ps));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EcMsmStrauss)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EcMsmPippenger(benchmark::State& state) {
  Rng rng(44);  // same seed: identical inputs to BM_EcMsmStrauss
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Fn> ks;
  std::vector<Point> ps;
  for (std::size_t i = 0; i < n; ++i) {
    ks.push_back(random_scalar(rng));
    ps.push_back(ec_mul_g(random_scalar(rng)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec_msm_pippenger(ks, ps));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EcMsmPippenger)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BatchToAffine(benchmark::State& state) {
  Rng rng(42);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Point> ps;
  Fn k = random_scalar(rng);
  for (std::size_t i = 0; i < n; ++i) {
    // ec_mul output has a general Z, so the normalization is not trivial.
    ps.push_back(ec_mul(k + Fn::from_u64(i), ec_generator_h()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch_to_affine(ps));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BatchToAffine)->Arg(8)->Arg(64);

void BM_FpInverse(benchmark::State& state) {
  Rng rng(43);
  Fp x = Fp::from_bytes_mod(rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.inv());
    x = x + Fp::one();
  }
}
BENCHMARK(BM_FpInverse);

void BM_SchnorrSign(benchmark::State& state) {
  Rng rng(5);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("endorsement digest");
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_sign(kp.sk, msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Rng rng(6);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("endorsement digest");
  Bytes sig = schnorr_sign(kp.sk, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_verify(kp.pk, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_SchnorrVerifyNaive(benchmark::State& state) {
  Rng rng(6);
  KeyPair kp = schnorr_keygen(rng);
  Bytes msg = to_bytes("endorsement digest");
  Bytes sig = schnorr_sign(kp.sk, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_verify_naive(kp.pk, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerifyNaive);

void BM_SchnorrVerifyBatch(benchmark::State& state) {
  Rng rng(60);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<SchnorrInstance> xs;
  for (std::size_t i = 0; i < n; ++i) {
    KeyPair kp = schnorr_keygen(rng);
    Bytes msg = rng.bytes(32);
    xs.push_back(SchnorrInstance{kp.pk, msg, schnorr_sign(kp.sk, msg)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_verify_batch(xs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SchnorrVerifyBatch)->Arg(16)->Arg(64);

void BM_ElGamalCommit(benchmark::State& state) {
  Rng rng(7);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r = random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg_commit(key, Fn::one(), r));
  }
}
BENCHMARK(BM_ElGamalCommit);

void BM_ShamirDeal(benchmark::State& state) {
  Rng rng(8);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t k = n - (n - 1) / 3;
  Fn secret = random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_deal(secret, k, n, rng));
  }
}
BENCHMARK(BM_ShamirDeal)->Arg(4)->Arg(7)->Arg(10)->Arg(16);

void BM_ShamirReconstruct(benchmark::State& state) {
  Rng rng(9);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t k = n - (n - 1) / 3;
  auto shares = shamir_deal(random_scalar(rng), k, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_reconstruct(shares, k));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(4)->Arg(7)->Arg(10)->Arg(16);

void BM_PedersenVssDeal(benchmark::State& state) {
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pedersen_vss_deal(Fn::one(), 3, 5, rng));
  }
}
BENCHMARK(BM_PedersenVssDeal);

void BM_PedersenVssVerify(benchmark::State& state) {
  Rng rng(11);
  PedersenDeal deal = pedersen_vss_deal(Fn::one(), 3, 5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pedersen_vss_verify(deal.shares[0], deal.coefficient_comms));
  }
}
BENCHMARK(BM_PedersenVssVerify);

void BM_PedersenVssVerifyNaive(benchmark::State& state) {
  Rng rng(11);
  PedersenDeal deal = pedersen_vss_deal(Fn::one(), 3, 5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pedersen_vss_verify_naive(deal.shares[0], deal.coefficient_comms));
  }
}
BENCHMARK(BM_PedersenVssVerifyNaive);

void BM_BitProofProve(benchmark::State& state) {
  Rng rng(12);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prove_bit(key, c, true, r, rng));
  }
}
BENCHMARK(BM_BitProofProve);

void BM_BitProofVerify(benchmark::State& state) {
  Rng rng(13);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  Fn ch = random_scalar(rng);
  BitProofResponse resp = p.secrets.at(ch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_bit(key, c, p.first_move, ch, resp));
  }
}
BENCHMARK(BM_BitProofVerify);

void BM_BitProofVerifyNaive(benchmark::State& state) {
  Rng rng(13);
  Point key = ec_mul_g(random_scalar(rng));
  Fn r = random_scalar(rng);
  ElGamalCipher c = eg_commit(key, Fn::one(), r);
  BitProof p = prove_bit(key, c, true, r, rng);
  Fn ch = random_scalar(rng);
  BitProofResponse resp = p.secrets.at(ch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify_bit_naive(key, c, p.first_move, ch, resp));
  }
}
BENCHMARK(BM_BitProofVerifyNaive);

void BM_BitProofVerifyBatch(benchmark::State& state) {
  Rng rng(130);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Point key = ec_mul_g(random_scalar(rng));
  Fn ch = random_scalar(rng);
  std::vector<BitProofInstance> xs;
  for (std::size_t i = 0; i < n; ++i) {
    Fn r = random_scalar(rng);
    ElGamalCipher c = eg_commit(key, i % 2 ? Fn::one() : Fn::zero(), r);
    BitProof p = prove_bit(key, c, i % 2 != 0, r, rng);
    xs.push_back(BitProofInstance{c, p.first_move, ch, p.secrets.at(ch)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_bit_batch(key, xs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitProofVerifyBatch)->Arg(16)->Arg(64);

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(14);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Hash32> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(MerkleTree::leaf_hash(rng.bytes(36)));
  }
  for (auto _ : state) {
    MerkleTree t(leaves);
    benchmark::DoNotOptimize(t.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(4)->Arg(16)->Arg(64);

// Console output plus one BENCH_JSON line per measured point, in the same
// shape the figure benches emit, so the CI bench-smoke artifact tracks the
// crypto kernels across PRs.
class BenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.iterations == 0) continue;
      double ns_per_op = run.real_accumulated_time /
                         static_cast<double>(run.iterations) * 1e9;
      std::printf(
          "BENCH_JSON {\"bench\":\"micro_crypto\",\"name\":\"%s\","
          "\"ns_per_op\":%.1f}\n",
          run.benchmark_name().c_str(), ns_per_op);
    }
  }
};

}  // namespace
}  // namespace ddemos::crypto

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ddemos::crypto::BenchJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // The auto-select boundary in effect for this run (crossover_n is part of
  // the row key, so a retuned default shows up as a new row, not a gate
  // failure).
  std::printf(
      "BENCH_JSON {\"bench\":\"micro_crypto\",\"name\":\"msm_crossover\","
      "\"crossover_n\":%zu}\n",
      ddemos::crypto::ec_msm_crossover());
  benchmark::Shutdown();
  return 0;
}
