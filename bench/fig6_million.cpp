// Million-voter campaign runner — the ROADMAP's "million-voter simulation
// run". Streams DDEMOS_FIG6_BALLOTS (default 10^6) ballots from the EA
// straight into per-VC DiskBallotSource files (never materializing the
// plaintext ballot set in memory), then drives a closed-loop campaign that
// casts every ballot through the 4-VC cluster on the hybrid simulator,
// sweeping intra-node VC shards over DDEMOS_FIG6_SHARDS (default 1,4,8).
// The ballot files and captured vote targets are generated once and shared
// across the shard cells.
//
// Progress is checkpoint-logged (wall + virtual time, dispatched events,
// resident set) every total/DDEMOS_FIG6_CHECKPOINTS casts, and every phase
// emits a BENCH_JSON row carrying the uniform bench::Instrumentation
// accounting fields (events, events/sec, allocations, RSS, peak RSS) for
// the perf-trajectory artifact and the bench_check.py regression gate.
//
//   DDEMOS_FIG6_BALLOTS      registered-ballot universe (default 1'000'000)
//   DDEMOS_FIG6_CASTS        ballots cast (default: all of them)
//   DDEMOS_FIG6_SHARDS       comma list of vc-shard cells (default "1,4,8")
//   DDEMOS_FIG6_CONCURRENCY  closed-loop in-flight casts (default 1000)
//   DDEMOS_FIG6_CHECKPOINTS  checkpoint lines per cell (default 10)
//   DDEMOS_FIG6_CACHE_PAGES  LRU page-cache budget per VC node (default 256)
//   DDEMOS_FIG6_DIR          ballot-file directory (default /tmp/ddemos_fig6)
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "instrumentation.hpp"

using namespace ddemos;
using namespace ddemos::bench;

namespace {

std::vector<std::size_t> parse_shard_list(const std::string& spec) {
  std::vector<std::size_t> shards;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    std::size_t v = std::strtoull(spec.substr(pos, next - pos).c_str(),
                                  nullptr, 10);
    if (v > 0) shards.push_back(v);
    pos = next + 1;
  }
  return shards;
}

}  // namespace

int main() {
  const std::size_t ballots = env_size("DDEMOS_FIG6_BALLOTS", 1'000'000);
  const std::size_t casts = env_size("DDEMOS_FIG6_CASTS", ballots);
  const std::size_t concurrency = env_size("DDEMOS_FIG6_CONCURRENCY", 1000);
  const std::size_t checkpoints =
      std::max<std::size_t>(env_size("DDEMOS_FIG6_CHECKPOINTS", 10), 1);
  const std::size_t cache_pages = env_size("DDEMOS_FIG6_CACHE_PAGES", 256);
  const std::string dir = env_str("DDEMOS_FIG6_DIR", "/tmp/ddemos_fig6");
  std::vector<std::size_t> shard_cells =
      parse_shard_list(env_str("DDEMOS_FIG6_SHARDS", "1,4,8"));
  if (shard_cells.empty()) shard_cells = {1};
  std::filesystem::create_directories(dir);

  // Ballot files are multi-GB at full scale: delete them even when a cell
  // throws, but only the files this run creates — DDEMOS_FIG6_DIR may
  // point at a directory the user keeps other things in.
  struct Cleanup {
    std::string dir;
    std::size_t n_vc;
    ~Cleanup() {
      std::error_code ec;
      for (std::size_t i = 0; i < n_vc; ++i) {
        std::filesystem::remove(dir + "/vc" + std::to_string(i) + ".ballots",
                                ec);
      }
      std::filesystem::remove(dir, ec);  // only if now empty
    }
  };

  VoteCollectionConfig cfg;
  cfg.n_vc = 4;
  cfg.f_vc = 1;
  cfg.concurrency = concurrency;
  cfg.casts = casts;
  cfg.n_ballots = ballots;
  cfg.options = 2;  // referendum, as in the paper's large-scale runs
  cfg.seed = 606;
  cfg.disk_store = true;
  cfg.disk_dir = dir;
  cfg.cache_pages = cache_pages;
  Cleanup cleanup{dir, cfg.n_vc};

  std::printf("# fig6: million-voter campaign — %zu ballots, %zu casts, "
              "4 VC, %zu cc, shards sweep {",
              ballots, casts, concurrency);
  for (std::size_t i = 0; i < shard_cells.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", shard_cells[i]);
  }
  std::printf("}\n");

  VoteCollectionCampaign campaign(cfg);
  const PhaseSample& gen = campaign.generate();
  std::printf("# fig6 generate: %zu ballots -> %zu disk stores in %.1fs "
              "(peak rss %.1f MB)\n",
              campaign.n_ballots(), cfg.n_vc, gen.wall_s,
              gen.peak_rss_kb / 1024.0);
  std::printf("BENCH_JSON {\"bench\":\"fig6\",\"phase\":\"generate\","
              "\"n\":%zu,%s}\n",
              campaign.n_ballots(), accounting_fields(gen).c_str());
  std::fflush(stdout);

  std::printf("\n%-8s %12s %12s %14s %12s\n", "shards", "ops/sec",
              "latency_ms", "events/sec", "peak_rss_mb");
  for (std::size_t cell = 0; cell < shard_cells.size(); ++cell) {
    std::size_t shards = shard_cells[cell];
    auto checkpoint = [&](const VoteCollectionCampaign::Checkpoint& cp) {
      std::printf("# fig6 checkpoint [shards=%zu] %zu/%zu casts | "
                  "wall %.1fs | virtual %.1fs | %.2fM events | rss %.1f MB\n",
                  shards, cp.completed, cp.total, cp.wall_s,
                  cp.virtual_us / 1e6, cp.events / 1e6, cp.rss_kb / 1024.0);
      std::fflush(stdout);
    };
    VoteCollectionResult r = campaign.run_cell(
        shards, checkpoint, std::max<std::size_t>(casts / checkpoints, 1),
        /*final_cell=*/cell + 1 == shard_cells.size());
    std::printf("%-8zu %12.0f %12.1f %14.0f %12.1f\n", shards,
                r.throughput_ops, r.mean_latency_ms,
                r.collection.events_per_sec(),
                r.collection.peak_rss_kb / 1024.0);
    std::printf("BENCH_JSON {\"bench\":\"fig6\",\"phase\":\"collection\","
                "\"n\":%zu,\"casts\":%zu,\"shards\":%zu,"
                "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                campaign.n_ballots(), casts, shards, r.throughput_ops,
                r.mean_latency_ms, accounting_fields(r.collection).c_str());
    std::fflush(stdout);
  }
  return 0;
}
