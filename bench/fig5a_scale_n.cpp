// Reproduces Figure 5a: vote-collection throughput versus the total number
// of election ballots n, with VC initialization data on disk. The paper
// sweeps 50M..250M ballots backed by PostgreSQL; this reproduction sweeps a
// 250x-scaled range backed by the paged DiskBallotSource (sorted index +
// LRU page cache), which exhibits the same log(n) index-depth growth.
// Raise the range with DDEMOS_FIG5A_STEP (ballots per step).
//
// The follow-up journal version scales each VC node across cores; the
// second and third sweeps here reproduce that axis with intra-node
// sharding (vc shards ∈ {1,2,4,8}) on both backends:
//   * simulator — one virtual processor per shard, calibrated signature
//     costs, deterministic scaling curve;
//   * ThreadNet — one worker thread per shard, real Schnorr crypto, real
//     wall-clock throughput (bounded by the host's core count).
// Every BENCH_JSON line carries a "shards" field for the perf-trajectory
// artifact.
#include <cstdio>
#include <filesystem>

#include "common.hpp"

using namespace ddemos;
using namespace ddemos::bench;

int main() {
  std::size_t step = env_size("DDEMOS_FIG5A_STEP", 40'000);
  std::size_t casts = env_size("DDEMOS_BENCH_CASTS", 400);
  std::size_t max_shards = env_size("DDEMOS_FIG5A_MAX_SHARDS", 8);
  std::string dir = "/tmp/ddemos_fig5a";
  std::filesystem::create_directories(dir);

  std::printf("# fig5a: throughput (ops/sec) vs n, disk-backed ballots\n");
  std::printf("# paper: 50M..250M ballots on PostgreSQL; here %zu..%zu on a "
              "paged B-tree-style store\n",
              step, 5 * step);
  std::printf("%-12s %12s %12s\n", "n", "ops/sec", "latency_ms");
  for (std::size_t i = 1; i <= 5; ++i) {
    std::size_t n = i * step;
    VoteCollectionConfig cfg;
    cfg.n_vc = 4;
    cfg.f_vc = 1;
    cfg.concurrency = 400;
    cfg.casts = casts;
    cfg.n_ballots = n;
    cfg.options = 2;  // referendum, as in the paper
    cfg.seed = 77 + i;
    cfg.disk_store = true;
    cfg.disk_dir = dir;
    cfg.cache_pages = 64;
    VoteCollectionResult r = run_vote_collection(cfg);
    std::printf("%-12zu %12.0f %12.1f\n", n, r.throughput_ops,
                r.mean_latency_ms);
    std::printf("BENCH_JSON {\"bench\":\"fig5a\",\"mode\":\"sim-n\","
                "\"n\":%zu,\"shards\":1,"
                "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                n, r.throughput_ops, r.mean_latency_ms,
                accounting_fields(r.collection).c_str());
    std::fflush(stdout);
  }
  std::filesystem::remove_all(dir);

  // --- intra-node shard scaling (journal version: cores per VC node) -----
  std::size_t shard_casts = env_size("DDEMOS_FIG5A_SHARD_CASTS", casts);
  std::size_t shard_ballots =
      env_size("DDEMOS_FIG5A_SHARD_BALLOTS", std::max<std::size_t>(step, 2000));

  // One sweep body for both backends so the sim and ThreadNet curves in
  // the perf-trajectory artifact stay comparable field-for-field. The EA
  // generation runs once per backend (VoteCollectionCampaign); only the
  // cluster + closed loop are rebuilt per shard cell.
  auto shard_sweep = [&](const char* mode, Backend backend,
                         std::size_t concurrency, std::uint64_t seed) {
    // The multi-process rows carry an explicit backend key so the
    // perf-trajectory join never mixes them with the in-process curves.
    const char* backend_field =
        backend == Backend::kTcp ? "\"backend\":\"tcp\"," : "";
    VoteCollectionConfig cfg;
    cfg.n_vc = 4;
    cfg.f_vc = 1;
    cfg.concurrency = concurrency;
    cfg.casts = shard_casts;
    cfg.n_ballots = shard_ballots;
    cfg.options = 2;
    cfg.seed = seed;
    cfg.backend = backend;
    VoteCollectionCampaign campaign(cfg);
    campaign.generate();
    std::printf("%-8s %12s %12s\n", "shards", "ops/sec", "latency_ms");
    for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
      VoteCollectionResult r = campaign.run_cell(
          shards, nullptr, 0, /*final_cell=*/shards * 2 > max_shards);
      std::printf("%-8zu %12.0f %12.1f\n", shards, r.throughput_ops,
                  r.mean_latency_ms);
      std::printf("BENCH_JSON {\"bench\":\"fig5a\",\"mode\":\"%s\",%s"
                  "\"n\":%zu,\"shards\":%zu,"
                  "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                  mode, backend_field, shard_ballots, shards, r.throughput_ops,
                  r.mean_latency_ms, accounting_fields(r.collection).c_str());
      std::fflush(stdout);
    }
  };

  std::printf("\n# fig5a-shards: throughput vs vc shards, simulator "
              "(one virtual processor per shard, calibrated sig costs)\n");
  shard_sweep("sim-shards", Backend::kSim, 400, 177);

  std::printf("\n# fig5a-shards: throughput vs vc shards, ThreadNet "
              "(one worker thread per shard, real crypto; scaling is "
              "bounded by host cores)\n");
  // Lower concurrency keeps every shard saturated with bounded queues.
  shard_sweep("threadnet-shards", Backend::kThreads, 64, 277);

  std::printf("\n# fig5a-shards: throughput vs vc shards, TcpNet "
              "(one OS process per VC node, loopback TCP, real crypto)\n");
  shard_sweep("tcp-shards", Backend::kTcp, 64, 377);
  return 0;
}
