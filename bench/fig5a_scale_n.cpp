// Reproduces Figure 5a: vote-collection throughput versus the total number
// of election ballots n, with VC initialization data on disk. The paper
// sweeps 50M..250M ballots backed by PostgreSQL; this reproduction sweeps a
// 250x-scaled range backed by the paged DiskBallotSource (sorted index +
// LRU page cache), which exhibits the same log(n) index-depth growth.
// Raise the range with DDEMOS_FIG5A_STEP (ballots per step).
#include <cstdio>
#include <filesystem>

#include "common.hpp"

using namespace ddemos;
using namespace ddemos::bench;

int main() {
  std::size_t step = env_size("DDEMOS_FIG5A_STEP", 40'000);
  std::size_t casts = env_size("DDEMOS_BENCH_CASTS", 400);
  std::string dir = "/tmp/ddemos_fig5a";
  std::filesystem::create_directories(dir);

  std::printf("# fig5a: throughput (ops/sec) vs n, disk-backed ballots\n");
  std::printf("# paper: 50M..250M ballots on PostgreSQL; here %zu..%zu on a "
              "paged B-tree-style store\n",
              step, 5 * step);
  std::printf("%-12s %12s %12s\n", "n", "ops/sec", "latency_ms");
  for (std::size_t i = 1; i <= 5; ++i) {
    std::size_t n = i * step;
    VoteCollectionConfig cfg;
    cfg.n_vc = 4;
    cfg.f_vc = 1;
    cfg.concurrency = 400;
    cfg.casts = casts;
    cfg.n_ballots = n;
    cfg.options = 2;  // referendum, as in the paper
    cfg.seed = 77 + i;
    cfg.disk_store = true;
    cfg.disk_dir = dir;
    cfg.cache_pages = 64;
    VoteCollectionResult r = run_vote_collection(cfg);
    std::printf("%-12zu %12.0f %12.1f\n", n, r.throughput_ops,
                r.mean_latency_ms);
    std::printf("BENCH_JSON {\"bench\":\"fig5a\",\"n\":%zu,"
                "\"throughput_ops\":%.0f,\"latency_ms\":%.2f}\n",
                n, r.throughput_ops, r.mean_latency_ms);
    std::fflush(stdout);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
