// Reproduces Figure 5b: vote-collection throughput versus the number of
// election options m. The paper's observation: throughput is nearly flat
// in m, because the only extra work is hash verifications during vote-code
// validation (more lines per ballot part).
#include <cstdio>

#include "common.hpp"

using namespace ddemos;
using namespace ddemos::bench;

int main() {
  std::size_t casts = env_size("DDEMOS_BENCH_CASTS", 300);
  std::size_t ballots = env_size("DDEMOS_BENCH_BALLOTS", 2000);

  std::printf("# fig5b: throughput (ops/sec) vs m (options), 4 VC, 400 cc\n");
  std::printf("%-6s %12s %12s\n", "m", "ops/sec", "latency_ms");
  for (std::size_t m = 2; m <= 10; ++m) {
    VoteCollectionConfig cfg;
    cfg.n_vc = 4;
    cfg.f_vc = 1;
    cfg.concurrency = 400;
    cfg.casts = casts;
    cfg.n_ballots = ballots;
    cfg.options = m;
    cfg.seed = 99 + m;
    VoteCollectionResult r = run_vote_collection(cfg);
    std::printf("%-6zu %12.0f %12.1f\n", m, r.throughput_ops,
                r.mean_latency_ms);
    std::printf("BENCH_JSON {\"bench\":\"fig5b\",\"m\":%zu,"
                "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                m, r.throughput_ops, r.mean_latency_ms,
                accounting_fields(r.collection).c_str());
    std::fflush(stdout);
  }
  return 0;
}
