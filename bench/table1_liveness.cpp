// Reproduces Table I / Theorem 1: the liveness time bound
//   Twait = (2*Nv + 4)*Tcomp + 12*Delta + 6*delta
// on the time between a voter submitting a vote and obtaining a receipt.
// The simulator plays the bounded-delay adversary: every message is held
// for the full delay bound delta; node clocks are synchronized (Delta = 0).
// The measured end-to-end receipt time must stay below the theorem's bound.
#include <cstdio>

#include "common.hpp"
#include "core/driver.hpp"
#include "instrumentation.hpp"

using namespace ddemos;
using namespace ddemos::core;

int main() {
  const sim::Duration delta_us = 50'000;  // adversarial delay bound (50 ms)
  bench::CalibratedCosts costs = bench::calibrate_signature_costs();

  std::printf("# table1: liveness bound vs measured receipt time\n");
  std::printf("# Twait = (2Nv+4)*Tcomp + 12*Delta + 6*delta,  Delta=0, "
              "delta=%.0fms\n",
              delta_us / 1000.0);
  std::printf("%-6s %14s %14s %14s %8s\n", "Nv", "Tcomp_ms", "Twait_ms",
              "measured_ms", "bound");
  for (std::size_t nv : {4u, 7u, 10u}) {
    DriverConfig cfg;
    cfg.params.election_id = to_bytes("table1");
    cfg.params.options = {"yes", "no"};
    cfg.params.n_voters = 1;
    cfg.params.n_vc = nv;
    cfg.params.f_vc = (nv - 1) / 3;
    cfg.params.n_bb = 3;
    cfg.params.f_bb = 1;
    cfg.params.n_trustees = 3;
    cfg.params.h_trustees = 2;
    cfg.params.t_start = 0;
    cfg.params.t_end = 60'000'000;
    cfg.seed = 1234 + nv;
    cfg.workload = VoteListWorkload::make({0});
    cfg.voter_template.patience_us = 30'000'000;
    cfg.link = sim::LinkModel{delta_us, 0, 0, 0};  // exactly delta always
    cfg.measure_cpu = true;
    ElectionDriver runner(cfg);
    ElectionReport report = runner.run();

    // Tcomp: worst-case per-step computation. The heaviest procedure is
    // verifying Nv-1 endorsement signatures plus one signing operation.
    double tcomp_ms =
        ((nv - 1) * costs.verify_us + costs.sign_us + 2000) / 1000.0;
    double twait_ms =
        (2.0 * nv + 4) * tcomp_ms + 6.0 * (delta_us / 1000.0);
    const auto& voter = runner.voter(0);
    double measured_ms =
        (voter.receipt_at() - voter.started_at()) / 1000.0;
    bool ok = report.receipts_issued == 1 && measured_ms <= twait_ms;
    std::printf("%-6zu %14.1f %14.1f %14.1f %8s\n", nv, tcomp_ms, twait_ms,
                measured_ms, ok ? "HOLDS" : "VIOLATED");
    std::printf("BENCH_JSON {\"bench\":\"table1\",\"nv\":%zu,"
                "\"twait_ms\":%.1f,\"measured_ms\":%.1f,\"holds\":%s,%s}\n",
                nv, twait_ms, measured_ms, ok ? "true" : "false",
                bench::accounting_fields(report).c_str());
    std::fflush(stdout);
  }
  return 0;
}
