// Dispatch-loop microbenchmark: raw events/sec through the simulator's
// calendar-queue scheduler and payload allocations per multicast through
// the zero-copy Buffer pipeline. Emits one BENCH_JSON line per metric for
// the BENCH_* trajectory tooling.
//
//   DDEMOS_BENCH_EVENTS  total dispatched events in the storm (default 2e6)
//   DDEMOS_BENCH_NODES   ring size (default 64)
#include <cstdio>

#include "common.hpp"
#include "instrumentation.hpp"
#include "net/buffer.hpp"
#include "sim/sim.hpp"

using namespace ddemos;

namespace {

// Forwards every received message to the next node in the ring, carrying a
// remaining-hop budget in the first 4 payload bytes.
class RingNode final : public sim::Process {
 public:
  RingNode(sim::NodeId next, std::size_t payload_bytes)
      : next_(next), payload_bytes_(payload_bytes) {}

  void inject(std::uint32_t hops) {
    Writer w;
    w.u32(hops);
    w.raw(Bytes(payload_bytes_, 0x5a));
    ctx().send(next_, w.take());
  }

  void on_start() override {}
  void on_message(sim::NodeId, const net::Buffer& payload) override {
    Reader r(payload.view());
    std::uint32_t hops = r.u32();
    if (hops == 0) return;
    Writer w;
    w.reserve(payload.size());
    w.u32(hops - 1);
    w.raw(r.raw_view(payload.size() - 4));
    ctx().send(next_, w.take());
  }

 private:
  sim::NodeId next_;
  std::size_t payload_bytes_;
};

class FanoutNode final : public sim::Process {
 public:
  explicit FanoutNode(std::vector<sim::NodeId> peers)
      : peers_(std::move(peers)) {}
  void multicast_round() {
    net::Buffer msg(Bytes(512, 0x77));
    for (sim::NodeId p : peers_) ctx().send(p, msg);
  }
  void on_message(sim::NodeId, const net::Buffer&) override {}

 private:
  std::vector<sim::NodeId> peers_;
};

}  // namespace

int main() {
  const std::size_t total_events =
      bench::env_size("DDEMOS_BENCH_EVENTS", 2'000'000);
  const std::size_t n_nodes = bench::env_size("DDEMOS_BENCH_NODES", 64);

  // --- events/sec through the dispatch loop -------------------------------
  sim::Simulation sim(7);
  sim.set_default_link(sim::LinkModel{100, 30, 0.0, 0.0});
  std::vector<RingNode*> nodes;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    auto next = static_cast<sim::NodeId>((i + 1) % n_nodes);
    nodes.push_back(dynamic_cast<RingNode*>(&sim.process(sim.add_node(
        std::make_unique<RingNode>(next, 128), "ring"))));
  }
  sim.start();
  const std::uint32_t hops =
      static_cast<std::uint32_t>(total_events / n_nodes);
  for (auto* n : nodes) n->inject(hops);
  // Injected sends depart from context of a finished handler; drain now,
  // accounted through the shared instrumentation layer every bench uses.
  bench::Instrumentation instr(&sim);
  instr.begin_phase("dispatch");
  sim.run_until_idle(total_events + n_nodes + 16);
  bench::PhaseSample storm = instr.end_phase();

  std::printf("# micro_dispatch: %zu nodes, %llu events, %.2fs wall\n",
              n_nodes, static_cast<unsigned long long>(storm.events),
              storm.wall_s);
  std::printf("BENCH_JSON {\"bench\":\"micro_dispatch\","
              "\"metric\":\"events_per_sec\",\"value\":%.0f,"
              "\"nodes\":%zu,%s}\n",
              storm.events_per_sec(), n_nodes,
              bench::accounting_fields(storm).c_str());

  // --- payload allocations per multicast ----------------------------------
  const std::size_t fan = 32, rounds = 1000;
  sim::Simulation msim(11);
  std::vector<sim::NodeId> sinks;
  for (std::size_t i = 0; i < fan; ++i) {
    sinks.push_back(msim.add_node(
        std::make_unique<FanoutNode>(std::vector<sim::NodeId>{}), "sink"));
  }
  auto* fanout = dynamic_cast<FanoutNode*>(&msim.process(
      msim.add_node(std::make_unique<FanoutNode>(sinks), "fanout")));
  msim.start();
  msim.run_until_idle();
  instr.attach(&msim);
  instr.begin_phase("multicast");
  for (std::size_t r = 0; r < rounds; ++r) {
    fanout->multicast_round();
    msim.run_until_idle();
  }
  bench::PhaseSample mc = instr.end_phase();
  double allocs_per_multicast = static_cast<double>(mc.allocations) / rounds;
  std::printf("BENCH_JSON {\"bench\":\"micro_dispatch\","
              "\"metric\":\"allocations_per_multicast\",\"value\":%.3f,"
              "\"recipients\":%zu,\"rounds\":%zu,%s}\n",
              allocs_per_multicast, fan, rounds,
              bench::accounting_fields(mc).c_str());
  return 0;
}
