// Reproduces Figure 4 of the paper: vote-collection latency and throughput
// versus the number of VC nodes (4a/4b LAN, 4d/4e WAN) and throughput
// versus the number of concurrent clients (4c LAN, 4f WAN).
// One (vc, cc) grid per network setting serves all six plots.
// Election parameters follow the paper (m = 4); the cast count and ballot
// universe are scaled down for single-machine runs and can be raised with
// DDEMOS_BENCH_CASTS / DDEMOS_BENCH_BALLOTS. For CI smoke runs the sweep
// grids shrink with DDEMOS_FIG4_MAX_VC / DDEMOS_FIG4_MAX_CC (upper bounds
// on the #VC and concurrency axes); every cell also emits a BENCH_JSON
// line for the perf-trajectory tooling.
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace ddemos;
using namespace ddemos::bench;

int main() {
  std::size_t ballots = env_size("DDEMOS_BENCH_BALLOTS", 2000);
  // Casts scale with concurrency so the closed loop reaches steady state
  // (Little's law: latency ~ cc / throughput needs cc votes in flight).
  std::size_t cast_factor = env_size("DDEMOS_BENCH_CAST_FACTOR", 1);
  std::size_t cast_floor = env_size("DDEMOS_BENCH_CASTS", 400);
  std::size_t max_vc = env_size("DDEMOS_FIG4_MAX_VC", 16);
  std::size_t max_cc = env_size("DDEMOS_FIG4_MAX_CC", 2000);
  std::vector<std::size_t> vcs, ccs;
  for (std::size_t vc : {4, 7, 10, 13, 16}) {
    if (vc <= max_vc) vcs.push_back(vc);
  }
  for (std::size_t cc : {500, 1000, 2000}) {
    if (cc <= max_cc) ccs.push_back(cc);
  }
  if (vcs.empty() || ccs.empty()) {
    std::printf("# fig4: empty sweep (check DDEMOS_FIG4_MAX_*)\n");
    return 1;
  }

  struct Row {
    std::size_t vc, cc;
    double latency_ms, throughput;
  };

  for (const char* net : {"lan", "wan"}) {
    std::vector<Row> rows;
    for (std::size_t vc : vcs) {
      for (std::size_t cc : ccs) {
        VoteCollectionConfig cfg;
        cfg.n_vc = vc;
        cfg.f_vc = (vc - 1) / 3;
        cfg.concurrency = cc;
        cfg.casts = std::max<std::size_t>(cc * cast_factor / 2, cast_floor);
        cfg.n_ballots = std::max(ballots, cfg.casts + 100);
        cfg.options = 4;
        cfg.link = net == std::string("wan") ? sim::LinkModel::wan()
                                             : sim::LinkModel::lan();
        cfg.seed = 42 + vc * 100 + cc;
        VoteCollectionResult r = run_vote_collection(cfg);
        rows.push_back(Row{vc, cc, r.mean_latency_ms, r.throughput_ops});
        std::printf("BENCH_JSON {\"bench\":\"fig4\",\"net\":\"%s\","
                    "\"vc\":%zu,\"cc\":%zu,\"casts\":%zu,"
                    "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                    net, vc, cc, cfg.casts, r.throughput_ops,
                    r.mean_latency_ms,
                    accounting_fields(r.collection).c_str());
        std::fflush(stdout);
      }
    }
    // Figures 4a/4d: response time vs #VC, one series per cc.
    std::printf("\n# fig4%s: response time (ms) vs #VC, %s\n",
                net == std::string("lan") ? "a" : "d", net);
    std::printf("%-6s", "#VC");
    for (std::size_t cc : ccs) std::printf(" %6zucc", cc);
    std::printf("\n");
    for (std::size_t vc : vcs) {
      std::printf("%-6zu", vc);
      for (std::size_t cc : ccs) {
        for (const Row& r : rows) {
          if (r.vc == vc && r.cc == cc) std::printf(" %8.1f", r.latency_ms);
        }
      }
      std::printf("\n");
    }
    // Figures 4b/4e: throughput vs #VC.
    std::printf("\n# fig4%s: throughput (ops/sec) vs #VC, %s\n",
                net == std::string("lan") ? "b" : "e", net);
    std::printf("%-6s", "#VC");
    for (std::size_t cc : ccs) std::printf(" %6zucc", cc);
    std::printf("\n");
    for (std::size_t vc : vcs) {
      std::printf("%-6zu", vc);
      for (std::size_t cc : ccs) {
        for (const Row& r : rows) {
          if (r.vc == vc && r.cc == cc) std::printf(" %8.0f", r.throughput);
        }
      }
      std::printf("\n");
    }
    // Figures 4c/4f: throughput vs #cc, one series per VC count.
    std::printf("\n# fig4%s: throughput (ops/sec) vs #cc, %s\n",
                net == std::string("lan") ? "c" : "f", net);
    std::printf("%-6s", "#cc");
    for (std::size_t vc : vcs) std::printf(" %6zuVC", vc);
    std::printf("\n");
    for (std::size_t cc : ccs) {
      std::printf("%-6zu", cc);
      for (std::size_t vc : vcs) {
        for (const Row& r : rows) {
          if (r.vc == vc && r.cc == cc) std::printf(" %8.0f", r.throughput);
        }
      }
      std::printf("\n");
    }
  }

  // --- multi-process column: the same LAN sweep over the #VC axis with
  // one OS process per VC node and all traffic on loopback TCP sockets
  // (backend=tcp keys these rows separately in the perf trajectory).
  // One concurrency level: the axis of interest is the process count.
  std::size_t tcp_cc = ccs.front();
  std::size_t tcp_casts =
      std::max<std::size_t>(tcp_cc * cast_factor / 2, cast_floor);
  std::printf("\n# fig4-tcp: multi-process (TcpNet) throughput vs #VC, "
              "lan loopback, cc=%zu\n", tcp_cc);
  std::printf("%-6s %12s %12s\n", "#VC", "ops/sec", "latency_ms");
  for (std::size_t vc : vcs) {
    VoteCollectionConfig cfg;
    cfg.n_vc = vc;
    cfg.f_vc = (vc - 1) / 3;
    cfg.concurrency = tcp_cc;
    cfg.casts = tcp_casts;
    cfg.n_ballots = std::max(ballots, cfg.casts + 100);
    cfg.options = 4;
    cfg.seed = 4242 + vc;
    cfg.backend = Backend::kTcp;
    VoteCollectionResult r = run_vote_collection(cfg);
    std::printf("%-6zu %12.0f %12.1f\n", vc, r.throughput_ops,
                r.mean_latency_ms);
    std::printf("BENCH_JSON {\"bench\":\"fig4\",\"net\":\"lan\","
                "\"backend\":\"tcp\",\"vc\":%zu,\"cc\":%zu,\"casts\":%zu,"
                "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                vc, tcp_cc, cfg.casts, r.throughput_ops, r.mean_latency_ms,
                accounting_fields(r.collection).c_str());
    std::fflush(stdout);
  }

  // --- durability column: the smallest LAN cell on real threads (real
  // Schnorr, real disk) with a write-ahead log on every VC node, swept
  // over the fsync policy. The "durability" field keys these rows
  // separately in the perf trajectory, so the WAL's cost on the vote hot
  // path (off -> interval -> always) is gated across PRs.
  std::size_t dur_vc = vcs.front();
  std::printf("\n# fig4-durability: ThreadNet throughput vs fsync policy, "
              "vc=%zu, cc=%zu\n", dur_vc, tcp_cc);
  std::printf("%-10s %12s %12s\n", "policy", "ops/sec", "latency_ms");
  struct DurCell {
    const char* name;
    bool enabled;
    ddemos::store::FsyncPolicy fsync;
  };
  for (const DurCell& cell :
       {DurCell{"off", false, ddemos::store::FsyncPolicy::kNever},
        DurCell{"interval", true, ddemos::store::FsyncPolicy::kInterval},
        DurCell{"always", true, ddemos::store::FsyncPolicy::kAlways}}) {
    VoteCollectionConfig cfg;
    cfg.n_vc = dur_vc;
    cfg.f_vc = (dur_vc - 1) / 3;
    cfg.concurrency = tcp_cc;
    cfg.casts = tcp_casts;
    cfg.n_ballots = std::max(ballots, cfg.casts + 100);
    cfg.options = 4;
    cfg.seed = 4242 + dur_vc;
    cfg.backend = Backend::kThreads;
    if (cell.enabled) {
      cfg.durability.wal_dir = ".";  // build dir; run_cell clears the logs
      cfg.durability.fsync = cell.fsync;
    }
    VoteCollectionResult r = run_vote_collection(cfg);
    std::printf("%-10s %12.0f %12.1f\n", cell.name, r.throughput_ops,
                r.mean_latency_ms);
    std::printf("BENCH_JSON {\"bench\":\"fig4\",\"net\":\"lan\","
                "\"backend\":\"threads\",\"durability\":\"%s\","
                "\"vc\":%zu,\"cc\":%zu,\"casts\":%zu,"
                "\"throughput_ops\":%.0f,\"latency_ms\":%.2f,%s}\n",
                cell.name, dur_vc, tcp_cc, cfg.casts, r.throughput_ops,
                r.mean_latency_ms, accounting_fields(r.collection).c_str());
    std::fflush(stdout);
  }
  return 0;
}
