// Reproduces Figure 4 of the paper: vote-collection latency and throughput
// versus the number of VC nodes (4a/4b LAN, 4d/4e WAN) and throughput
// versus the number of concurrent clients (4c LAN, 4f WAN).
// One (vc, cc) grid per network setting serves all six plots.
// Election parameters follow the paper (m = 4); the cast count and ballot
// universe are scaled down for single-machine runs and can be raised with
// DDEMOS_BENCH_CASTS / DDEMOS_BENCH_BALLOTS.
#include <cstdio>

#include "common.hpp"

using namespace ddemos;
using namespace ddemos::bench;

int main() {
  std::size_t ballots = env_size("DDEMOS_BENCH_BALLOTS", 2000);
  // Casts scale with concurrency so the closed loop reaches steady state
  // (Little's law: latency ~ cc / throughput needs cc votes in flight).
  std::size_t cast_factor = env_size("DDEMOS_BENCH_CAST_FACTOR", 1);
  const std::size_t vcs[] = {4, 7, 10, 13, 16};
  const std::size_t ccs[] = {500, 1000, 2000};

  struct Row {
    std::size_t vc, cc;
    double latency_ms, throughput;
  };

  for (const char* net : {"lan", "wan"}) {
    std::vector<Row> rows;
    for (std::size_t vc : vcs) {
      for (std::size_t cc : ccs) {
        VoteCollectionConfig cfg;
        cfg.n_vc = vc;
        cfg.f_vc = (vc - 1) / 3;
        cfg.concurrency = cc;
        cfg.casts = std::max<std::size_t>(cc * cast_factor / 2, 400);
        cfg.n_ballots = std::max(ballots, cfg.casts + 100);
        cfg.options = 4;
        cfg.link = net == std::string("wan") ? sim::LinkModel::wan()
                                             : sim::LinkModel::lan();
        cfg.seed = 42 + vc * 100 + cc;
        VoteCollectionResult r = run_vote_collection(cfg);
        rows.push_back(Row{vc, cc, r.mean_latency_ms, r.throughput_ops});
      }
    }
    // Figures 4a/4d: response time vs #VC, one series per cc.
    std::printf("\n# fig4%s: response time (ms) vs #VC, %s\n",
                net == std::string("lan") ? "a" : "d", net);
    std::printf("%-6s %8s %8s %8s\n", "#VC", "500cc", "1000cc", "2000cc");
    for (std::size_t vc : vcs) {
      std::printf("%-6zu", vc);
      for (std::size_t cc : ccs) {
        for (const Row& r : rows) {
          if (r.vc == vc && r.cc == cc) std::printf(" %8.1f", r.latency_ms);
        }
      }
      std::printf("\n");
    }
    // Figures 4b/4e: throughput vs #VC.
    std::printf("\n# fig4%s: throughput (ops/sec) vs #VC, %s\n",
                net == std::string("lan") ? "b" : "e", net);
    std::printf("%-6s %8s %8s %8s\n", "#VC", "500cc", "1000cc", "2000cc");
    for (std::size_t vc : vcs) {
      std::printf("%-6zu", vc);
      for (std::size_t cc : ccs) {
        for (const Row& r : rows) {
          if (r.vc == vc && r.cc == cc) std::printf(" %8.0f", r.throughput);
        }
      }
      std::printf("\n");
    }
    // Figures 4c/4f: throughput vs #cc, one series per VC count.
    std::printf("\n# fig4%s: throughput (ops/sec) vs #cc, %s\n",
                net == std::string("lan") ? "c" : "f", net);
    std::printf("%-6s", "#cc");
    for (std::size_t vc : vcs) std::printf(" %6zuVC", vc);
    std::printf("\n");
    for (std::size_t cc : ccs) {
      std::printf("%-6zu", cc);
      for (std::size_t vc : vcs) {
        for (const Row& r : rows) {
          if (r.vc == vc && r.cc == cc) std::printf(" %8.0f", r.throughput);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
