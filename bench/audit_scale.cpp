// Audit-at-scale thread sweep — the wall-clock side of the parallel audit
// engine. Builds the per-ballot crypto workload verify_election feeds its
// chunked batch verifiers (m bit-proof instances, one sum-proof instance
// and m opening instances per ballot), tiled from a pool of distinct
// proofs up to DDEMOS_AUDIT_BALLOTS ballots, then verifies the whole
// election's proof set at each thread count in DDEMOS_AUDIT_SWEEP. The
// batch verifiers re-derive Fiat–Shamir weights per 256-instance chunk, so
// tiled duplicates cost the same as distinct instances — generation is
// O(pool), verification is O(ballots), and a 10^6-ballot audit is a flag
// away (see EXPERIMENTS.md "Parallel audit").
//
//   DDEMOS_AUDIT_BALLOTS  audited ballots (default 100'000; CI smoke scale)
//   DDEMOS_AUDIT_SWEEP    comma list of thread counts (default "1,2,4,8")
//   DDEMOS_AUDIT_OPTIONS  election options m (default 2, the referendum)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "crypto/batch.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/rng.hpp"
#include "crypto/zkp.hpp"
#include "util/thread_pool.hpp"

using namespace ddemos;
using namespace ddemos::bench;

namespace {

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    std::size_t v =
        std::strtoull(spec.substr(pos, next - pos).c_str(), nullptr, 10);
    if (v > 0) out.push_back(v);
    pos = next + 1;
  }
  return out;
}

// One audited ballot's worth of proof instances (the used part's ZK
// checks and the unused part's openings, for one line each — the shape
// verify_election collects per voteset entry).
struct BallotProofs {
  std::vector<crypto::BitProofInstance> bits;
  crypto::SumProofInstance sum;
  std::vector<crypto::EgOpenInstance> opens;
};

BallotProofs make_ballot(const crypto::Point& key, std::size_t m,
                         const crypto::Fn& challenge, crypto::Rng& rng) {
  BallotProofs bp;
  crypto::ElGamalCipher sum{};
  crypto::Fn rsum = crypto::Fn::zero();
  for (std::size_t j = 0; j < m; ++j) {
    bool one = j == 0;  // unit vector (1, 0, ..., 0)
    crypto::Fn r = crypto::random_scalar(rng);
    crypto::ElGamalCipher c =
        crypto::eg_commit(key, one ? crypto::Fn::one() : crypto::Fn::zero(), r);
    crypto::BitProof p = crypto::prove_bit(key, c, one, r, rng);
    bp.bits.push_back(crypto::BitProofInstance{c, p.first_move, challenge,
                                               p.secrets.at(challenge)});
    sum = j == 0 ? c : crypto::eg_add(sum, c);
    rsum = rsum + r;
    // Unused-part opening for the same line shape.
    crypto::Fn ro = crypto::random_scalar(rng);
    crypto::Fn mo = crypto::Fn::from_u64(one ? 1 : 0);
    bp.opens.push_back(
        crypto::EgOpenInstance{crypto::eg_commit(key, mo, ro), mo, ro});
  }
  crypto::SumProof sp = crypto::prove_sum(key, rsum, rng);
  bp.sum = crypto::SumProofInstance{sum, crypto::Fn::one(), sp.first_move,
                                    challenge, sp.z.at(challenge)};
  return bp;
}

}  // namespace

int main() {
  const std::size_t ballots = env_size("DDEMOS_AUDIT_BALLOTS", 100'000);
  const std::size_t m = env_size("DDEMOS_AUDIT_OPTIONS", 2);
  std::vector<std::size_t> sweep =
      parse_list(env_str("DDEMOS_AUDIT_SWEEP", "1,2,4,8"));
  if (sweep.empty()) sweep = {1};

  crypto::Rng rng(707);
  crypto::Point key = crypto::ec_mul_g(crypto::random_scalar(rng));
  crypto::Fn challenge = crypto::random_scalar(rng);

  // Distinct-proof pool, tiled to the full audit size.
  constexpr std::size_t kPool = 64;
  std::vector<BallotProofs> pool;
  for (std::size_t i = 0; i < kPool; ++i) {
    pool.push_back(make_ballot(key, m, challenge, rng));
  }
  std::vector<crypto::BitProofInstance> bits;
  std::vector<crypto::SumProofInstance> sums;
  std::vector<crypto::EgOpenInstance> opens;
  bits.reserve(ballots * m);
  sums.reserve(ballots);
  opens.reserve(ballots * m);
  for (std::size_t b = 0; b < ballots; ++b) {
    const BallotProofs& bp = pool[b % kPool];
    bits.insert(bits.end(), bp.bits.begin(), bp.bits.end());
    sums.push_back(bp.sum);
    opens.insert(opens.end(), bp.opens.begin(), bp.opens.end());
  }

  std::printf("# audit_scale: %zu ballots, m=%zu -> %zu bit + %zu sum + "
              "%zu open instances, thread sweep {",
              ballots, m, bits.size(), sums.size(), opens.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", sweep[i]);
  }
  std::printf("}\n");
  std::printf("\n%-10s %12s %12s\n", "n_threads", "ballots/sec", "wall_s");

  double base_wall = 0;
  std::size_t hi_threads = 1;
  double hi_wall = 0;
  for (std::size_t n_threads : sweep) {
    util::ThreadPool pool_t(n_threads);
    util::ThreadPool* p = pool_t.n_threads() > 1 ? &pool_t : nullptr;
    auto t0 = std::chrono::steady_clock::now();
    bool ok = crypto::verify_bit_batch(key, bits, p) &&
              crypto::verify_sum_batch(key, sums, p) &&
              crypto::eg_open_check_batch(key, opens, p);
    auto t1 = std::chrono::steady_clock::now();
    if (!ok) {
      std::fprintf(stderr, "audit_scale: batch verification FAILED\n");
      return 1;
    }
    double wall =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    double ops = wall > 0 ? static_cast<double>(ballots) / wall : 0;
    if (n_threads == 1) base_wall = wall;
    if (n_threads >= hi_threads) {
      hi_threads = n_threads;
      hi_wall = wall;
    }
    std::printf("%-10zu %12.0f %12.2f\n", n_threads, ops, wall);
    std::printf("BENCH_JSON {\"bench\":\"audit_scale\","
                "\"phase\":\"batch_verify\",\"ballots\":%zu,\"m\":%zu,"
                "\"n_threads\":%zu,\"throughput_ops\":%.0f,"
                "\"wall_s\":%.3f}\n",
                ballots, m, n_threads, ops, wall);
    std::fflush(stdout);
  }
  if (base_wall > 0 && hi_wall > 0) {
    // Informational (ratio is part of the row key, never gated): the
    // thread-scaling headline for EXPERIMENTS.md.
    std::printf("BENCH_JSON {\"bench\":\"audit_scale\","
                "\"name\":\"thread_speedup\",\"ballots\":%zu,"
                "\"n_threads\":%zu,\"ratio\":%.2f}\n",
                ballots, hi_threads, base_wall / hi_wall);
  }
  return 0;
}
