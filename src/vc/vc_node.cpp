#include "vc/vc_node.hpp"

#include <algorithm>

#include "crypto/commit.hpp"
#include "crypto/schnorr.hpp"
#include "ea/ea.hpp"
#include "util/error.hpp"

namespace ddemos::vc {

using namespace core;
using sim::NodeId;

namespace {
net::Buffer encode_shard_drain(std::size_t shard) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kShardDrain));
  w.u64(shard);
  return w.take();
}
net::Buffer encode_shard_barrier() {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kShardBarrier));
  return w.take();
}
}  // namespace

VcNode::VcNode(VcInit init, std::shared_ptr<store::BallotDataSource> source,
               std::vector<NodeId> vc_ids, std::vector<NodeId> bb_ids,
               Options options)
    : init_(std::move(init)),
      source_(std::move(source)),
      vc_ids_(std::move(vc_ids)),
      bb_ids_(std::move(bb_ids)),
      opt_(options) {
  if (vc_ids_.size() != init_.params.n_vc) {
    throw ProtocolError("VcNode: vc id list size mismatch");
  }
  if (opt_.n_shards == 0) {
    throw ProtocolError("VcNode: n_shards must be >= 1");
  }
  announce_done_ = Bitmap(init_.params.n_vc);
  n_ballots_ = source_->size();
  if (n_ballots_ > 0) {
    first_serial_ = source_->serial_at(0);
    contiguous_serials_ =
        source_->serial_at(n_ballots_ - 1) == first_serial_ + n_ballots_ - 1;
  }
  if (opt_.n_shards > 1 && n_ballots_ > 0 && !contiguous_serials_) {
    // Shard routing runs on sender threads and must map serial -> shard in
    // O(1) without touching the (stateful) ballot source; a gapped serial
    // set would force the index-lookup fallback there and silently corrupt
    // shard ownership. Refuse loudly instead.
    throw ProtocolError(
        "VcNode: sharded vote collection (n_shards > 1) requires contiguous "
        "serials; this ballot source has gaps — run with n_shards = 1");
  }
  states_.resize(n_ballots_);
  endorse_states_.resize(n_ballots_);
  shard_slots_.resize(opt_.n_shards);
}

// --- Durability (write-ahead log) -------------------------------------------
// Per-ballot payloads are keyed by dense instance index, not serial: replay
// addresses states_ directly and the index is stable because the EA issues
// the same ballot set to every incarnation of a node.

namespace {
void encode_ballot_core(Writer& w, std::size_t instance, BytesView code,
                        std::uint8_t part, std::uint32_t line,
                        const Ucert& ucert) {
  w.u64(instance);
  w.bytes(code);
  w.u8(part);
  w.u32(line);
  ucert.encode(w);
}
}  // namespace

void VcNode::attach_wal(std::unique_ptr<store::Wal> wal) {
  wal_ = std::move(wal);
  wal_->replay([this](std::uint8_t type, BytesView payload) {
    wal_replay_record(type, payload);
  });
}

void VcNode::wal_log_ucert(std::size_t instance, const BallotState& st) {
  if (!wal_) return;
  Writer w;
  encode_ballot_core(w, instance, st.code, st.part, st.line, st.ucert);
  wal_->append(kWalPending, w.take());
}

void VcNode::wal_log_cast(std::size_t instance, const BallotState& st) {
  if (!wal_) return;
  Writer w;
  encode_ballot_core(w, instance, st.code, st.part, st.line, st.ucert);
  w.u64(st.receipt);
  wal_->append(kWalCast, w.take());
}

void VcNode::wal_snapshot_state() {
  if (!wal_) return;
  // Dense blob, one entry per registered ballot: by announce time most
  // ballots carry state, so sparseness would not pay for its indirection.
  Writer w;
  w.u64(n_ballots_);
  for (const BallotState& st : states_) {
    w.u8(static_cast<std::uint8_t>(st.status));
    if (st.status == BallotStatus::kNotVoted) continue;
    w.bytes(st.code);
    w.u8(st.part);
    w.u32(st.line);
    w.u64(st.receipt);
    st.ucert.encode(w);
  }
  wal_->snapshot(kWalSnapshot, w.take());
}

void VcNode::wal_replay_record(std::uint8_t type, BytesView payload) {
  try {
    Reader r(payload);
    switch (type) {
      case kWalPending:
      case kWalCast: {
        std::size_t instance = r.u64();
        if (instance >= n_ballots_) break;
        BallotState& st = states_[instance];
        st.code = r.bytes();
        st.part = r.u8();
        st.line = r.u32();
        st.ucert = Ucert::decode(r);
        if (type == kWalCast) {
          st.receipt = r.u64();
          st.status = BallotStatus::kVoted;
          // The VOTE_P multicast happened before the cast record; if it
          // was lost with the crash, peers recover through announce.
          st.vote_p_sent = true;
        } else if (st.status == BallotStatus::kNotVoted) {
          st.status = BallotStatus::kPending;
        }
        break;
      }
      case kWalSnapshot: {
        std::size_t n = r.u64();
        replayed_announce_ = true;
        if (n != n_ballots_) {
          throw store::WalError(wal_->path() +
                                ": snapshot ballot count mismatch");
        }
        for (std::size_t i = 0; i < n; ++i) {
          BallotState& st = states_[i];
          st = BallotState{};
          st.status = static_cast<BallotStatus>(r.u8());
          if (st.status == BallotStatus::kNotVoted) continue;
          st.code = r.bytes();
          st.part = r.u8();
          st.line = r.u32();
          st.receipt = r.u64();
          st.ucert = Ucert::decode(r);
          st.vote_p_sent = true;
        }
        break;
      }
      case kWalDecided:
        decisions_ = Bitmap::decode(r);
        replayed_decided_ = decisions_.size() == n_ballots_;
        break;
      case kWalPushed:
        replayed_pushed_ = true;
        break;
      default:
        break;  // newer record type from a future version: ignore
    }
  } catch (const CodecError&) {
    // A record that frames correctly (CRC passed) but no longer decodes
    // is a format skew, not disk damage; fail closed like corruption.
    throw store::WalError(wal_->path() + ": undecodable WAL record");
  }
}

void VcNode::on_start() {
  // Crash-recovery continuation: a restarted node resumes from the latest
  // phase boundary its log reached instead of re-voting from scratch.
  if (replayed_decided_) {
    phase_ = Phase::kRecovery;
    stats_.voting_ended_at = ctx().now();
    stats_.consensus_done_at = ctx().now();
    recover_needed_ = Bitmap(n_ballots_);
    if (!replayed_pushed_) {
      for (std::size_t i = 0; i < n_ballots_; ++i) {
        if (decisions_.get(i) && states_[i].status == BallotStatus::kNotVoted)
          recover_needed_.set(i);
      }
    }
    if (recover_needed_.any()) {
      send_recover_request();
    } else {
      push_to_bb();  // re-push is safe: BBs ignore writes once accepted
    }
    return;
  }
  if (replayed_announce_) {
    // Died inside the announce/consensus window: re-announce and restart
    // our consensus instance over the snapshotted ballot state. Peers that
    // already finished ignore the late announce; the vote-set push of the
    // f+1 surviving collectors carries the election either way.
    begin_vote_set_consensus();
    return;
  }
  sim::Duration until_end = init_.params.t_end - ctx().now();
  end_timer_ = ctx().set_timer(std::max<sim::Duration>(until_end, 0));
}

std::size_t VcNode::shard_of_serial(Serial serial) const {
  if (opt_.n_shards == 1) return 0;
  // Contiguity is enforced at construction, so this never consults the
  // ballot source (instance_of's fallback is not sender-thread safe).
  if (serial < first_serial_ || serial >= first_serial_ + n_ballots_) {
    return 0;  // unknown serial: rejected on the control shard
  }
  return static_cast<std::size_t>(serial - first_serial_) % opt_.n_shards;
}

std::size_t VcNode::shard_after_type(MsgType type, Reader r) const {
  try {
    switch (type) {
      case MsgType::kVote:
      case MsgType::kEndorse:
      case MsgType::kEndorsement:
      case MsgType::kVoteP:
        // The serial is the first field of every per-ballot message.
        return shard_of_serial(r.u64());
      case MsgType::kShardDrain:
        return std::min<std::size_t>(r.u64(), opt_.n_shards - 1);
      default:
        return 0;  // announce/consensus/recovery/control: control shard
    }
  } catch (const CodecError&) {
    return 0;  // malformed: let the control shard drop it
  }
}

std::size_t VcNode::shard_of(NodeId /*from*/,
                             const net::Buffer& payload) const {
  if (opt_.n_shards == 1) return 0;
  try {
    Reader r(payload.view());
    auto type = static_cast<MsgType>(r.u8());
    return shard_after_type(type, r);
  } catch (const CodecError&) {
    return 0;  // empty payload: let the control shard drop it
  }
}

void VcNode::multicast_vc(const net::Buffer& msg) {
  for (NodeId id : vc_ids_) ctx().send(id, msg);
}

std::optional<std::size_t> VcNode::vc_index_of(NodeId id) const {
  for (std::size_t i = 0; i < vc_ids_.size(); ++i) {
    if (vc_ids_[i] == id) return i;
  }
  return std::nullopt;
}

bool VcNode::within_hours() const {
  return ctx().now() >= init_.params.t_start &&
         ctx().now() < init_.params.t_end;
}

std::optional<std::size_t> VcNode::instance_of(Serial serial) const {
  if (contiguous_serials_) {
    if (serial < first_serial_ || serial >= first_serial_ + n_ballots_) {
      return std::nullopt;
    }
    return static_cast<std::size_t>(serial - first_serial_);
  }
  return source_->index_of(serial);
}

Serial VcNode::serial_of(std::size_t instance) {
  return contiguous_serials_ ? first_serial_ + instance
                             : source_->serial_at(instance);
}

VcStats VcNode::stats() const {
  VcStats s = stats_;
  for (const ShardSlot& slot : shard_slots_) {
    s.votes_received += slot.stats.votes_received;
    s.receipts_issued += slot.stats.receipts_issued;
    s.rejected_votes += slot.stats.rejected_votes;
  }
  return s;
}

std::vector<VcShardStats> VcNode::shard_stats() const {
  std::vector<VcShardStats> out;
  out.reserve(shard_slots_.size());
  for (const ShardSlot& slot : shard_slots_) out.push_back(slot.stats);
  return out;
}

std::optional<std::pair<std::uint8_t, std::uint32_t>> VcNode::verify_vote_code(
    const VcBallotInit& ballot, BytesView code) {
  for (std::uint8_t part = 0; part < kNumParts; ++part) {
    const auto& lines = ballot.parts[part];
    for (std::uint32_t l = 0; l < lines.size(); ++l) {
      if (crypto::salted_commit_check(lines[l].code_hash, code,
                                      lines[l].salt)) {
        return std::pair{part, l};
      }
    }
  }
  return std::nullopt;
}

bool VcNode::verify_receipt_share(const VcBallotInit& ballot,
                                  std::uint8_t part, std::uint32_t line,
                                  const crypto::Share& share,
                                  std::span<const crypto::Hash32> path) {
  if (part >= kNumParts || line >= ballot.parts[part].size()) return false;
  if (share.x == 0 || share.x > init_.params.n_vc) return false;
  const VcLineInit& li = ballot.parts[part][line];
  return crypto::MerkleTree::verify(li.share_root, ea::share_leaf(share),
                                    share.x - 1, path);
}

bool VcNode::verify_ucert(Serial serial, const Ucert& ucert) {
  if (opt_.model_signatures) {
    ctx().charge(opt_.verify_cost_us *
                 static_cast<sim::Duration>(init_.params.vc_quorum()));
    // Structural check only in modeled mode.
    std::set<std::uint32_t> distinct;
    for (const auto& [idx, sig] : ucert.signatures) {
      if (idx < init_.params.n_vc && !sig.empty()) distinct.insert(idx);
    }
    return distinct.size() >= init_.params.vc_quorum();
  }
  return ucert.valid(init_.params.election_id, serial, init_.vc_public_keys,
                     init_.params.vc_quorum());
}

Bytes VcNode::sign_endorsement(Serial serial, BytesView code) {
  if (opt_.model_signatures) {
    ctx().charge(opt_.sign_cost_us);
    // A recognizable structural placeholder (never verified in this mode).
    Bytes fake(65, 0xee);
    fake[0] = static_cast<std::uint8_t>(init_.node_index);
    return fake;
  }
  return crypto::schnorr_sign(
      init_.signing_key,
      endorsement_digest(init_.params.election_id, serial, code));
}

std::optional<VcBallotInit> VcNode::find_ballot(Serial serial) {
  std::uint64_t before = source_->page_faults();
  auto ballot = source_->find(serial);
  if (opt_.page_fault_cost_us > 0) {
    std::uint64_t faults = source_->page_faults() - before;
    ctx().charge(static_cast<sim::Duration>(faults) *
                 opt_.page_fault_cost_us);
  }
  return ballot;
}

void VcNode::on_message(NodeId from, const net::Buffer& payload) {
  ctx().charge(opt_.base_handler_cost_us);
  try {
    Reader r(payload.view());
    auto type = static_cast<MsgType>(r.u8());
    // on_message is already running on the shard this payload routes to;
    // recompute the slot for the bookkeeping (one u64 peek, the type byte
    // is already parsed; Reader is passed by value so r stays positioned).
    std::size_t shard =
        opt_.n_shards == 1 ? 0 : shard_after_type(type, r);
    ++shard_slots_[shard].stats.handled_messages;
    switch (type) {
      case MsgType::kVote:
        handle_vote(from, r);
        break;
      case MsgType::kEndorse:
        handle_endorse(from, r);
        break;
      case MsgType::kEndorsement:
        handle_endorsement(from, r);
        break;
      case MsgType::kVoteP:
        handle_vote_p(from, r);
        break;
      case MsgType::kAnnounce:
        handle_announce(from, r);
        break;
      case MsgType::kRecoverRequest:
        handle_recover_request(from, r);
        break;
      case MsgType::kRecoverResponse:
        handle_recover_response(from, r);
        break;
      case MsgType::kShardDrain:
        handle_shard_drain(from, r);
        break;
      case MsgType::kShardBarrier:
        handle_shard_barrier(from, r);
        break;
      case MsgType::kConsensus: {
        auto idx = vc_index_of(from);
        if (!idx) break;
        if (!consensus_started_) {
          // A faster peer reached vote-set consensus before our election-end
          // timer fired (clock drift): keep the payload handle (no byte
          // copy) until we join.
          queued_consensus_.emplace_back(*idx, payload);
        } else {
          // Zero-copy: the view aliases `payload`, which stays alive for
          // the whole handler invocation.
          consensus_->on_message(*idx, unwrap_consensus(r));
        }
        break;
      }
      default:
        break;  // not addressed to a VC node
    }
  } catch (const CodecError&) {
    // Malformed input from the network: drop.
  }
}

// --- Voting protocol (Algorithm 1) ----------------------------------------

void VcNode::handle_vote(NodeId from, Reader& r) {
  VoteMsg m = VoteMsg::decode(r);
  VcShardStats& ss = stats_for(m.serial);
  ++ss.votes_received;
  auto reply = [&](VoteReplyStatus status, std::uint64_t receipt = 0) {
    if (status != VoteReplyStatus::kOk) ++ss.rejected_votes;
    ctx().send(from,
               VoteReplyMsg{m.serial, status, receipt}.encode());
  };
  if (phase_ != Phase::kVoting || !within_hours()) {
    reply(VoteReplyStatus::kOutsideHours);
    return;
  }
  auto inst = instance_of(m.serial);
  if (!inst) {
    reply(VoteReplyStatus::kUnknown);
    return;
  }
  auto ballot = find_ballot(m.serial);
  if (!ballot) {
    reply(VoteReplyStatus::kUnknown);
    return;
  }
  BallotState& st = state_at(*inst);
  if (st.status == BallotStatus::kVoted) {
    if (st.code == m.vote_code) {
      ++ss.receipts_issued;
      reply(VoteReplyStatus::kOk, st.receipt);
    } else {
      reply(VoteReplyStatus::kAlreadyVoted);
    }
    return;
  }
  if (st.status == BallotStatus::kPending) {
    if (st.code == m.vote_code) {
      st.waiters.push_back(from);  // receipt follows on reconstruction
    } else {
      reply(VoteReplyStatus::kAlreadyVoted);
    }
    return;
  }
  auto loc = verify_vote_code(*ballot, m.vote_code);
  if (!loc) {
    reply(VoteReplyStatus::kUnknown);
    return;
  }
  // Become the responder: gather endorsements for a uniqueness certificate.
  EndorseState& es = endorse_states_[*inst];
  if (!es.active) {
    es.active = true;
    es.code = m.vote_code;
    es.part = loc->first;
    es.line = loc->second;
  } else if (es.code != m.vote_code) {
    // We already started endorsing a different code for this ballot.
    reply(VoteReplyStatus::kAlreadyVoted);
    return;
  }
  st.waiters.push_back(from);
  multicast_vc(EndorseMsg{m.serial, m.vote_code}.encode());
}

void VcNode::handle_endorse(NodeId from, Reader& r) {
  EndorseMsg m = EndorseMsg::decode(r);
  if (phase_ != Phase::kVoting) return;
  auto sender = vc_index_of(from);
  if (!sender) return;
  auto inst = instance_of(m.serial);
  if (!inst) return;
  auto ballot = find_ballot(m.serial);
  if (!ballot || !verify_vote_code(*ballot, m.vote_code)) return;
  // Endorse at most one vote code per ballot, ever.
  BallotState& st = state_at(*inst);
  if (st.status != BallotStatus::kNotVoted && st.code != m.vote_code) return;
  EndorseState& es = endorse_states_[*inst];
  if (!es.active) {
    es.active = true;
    es.code = m.vote_code;
  } else if (es.code != m.vote_code) {
    return;  // already endorsed a different code
  }
  Bytes sig = sign_endorsement(m.serial, m.vote_code);
  ++stats_for(m.serial).endorsements_signed;
  ctx().send(from, EndorsementMsg{m.serial, m.vote_code,
                                  static_cast<std::uint32_t>(init_.node_index),
                                  std::move(sig)}
                       .encode());
}

void VcNode::handle_endorsement(NodeId from, Reader& r) {
  EndorsementMsg m = EndorsementMsg::decode(r);
  if (phase_ != Phase::kVoting) return;
  auto sender = vc_index_of(from);
  if (!sender || m.node_index != *sender) return;
  auto inst = instance_of(m.serial);
  if (!inst) return;
  EndorseState& es = endorse_states_[*inst];
  if (!es.active || es.ucert_formed) return;
  if (es.code != m.vote_code) return;
  if (!opt_.model_signatures) {
    Bytes digest =
        endorsement_digest(init_.params.election_id, m.serial, m.vote_code);
    if (!crypto::schnorr_verify(init_.vc_public_keys[m.node_index], digest,
                                m.signature)) {
      return;
    }
  } else {
    ctx().charge(opt_.verify_cost_us);
  }
  es.sigs[m.node_index] = m.signature;
  if (es.sigs.size() < init_.params.vc_quorum()) return;

  // UCERT formed: mark pending and disclose our receipt share.
  es.ucert_formed = true;
  BallotState& st = state_at(*inst);
  if (st.status == BallotStatus::kNotVoted) {
    st.status = BallotStatus::kPending;
    st.code = es.code;
    st.part = es.part;
    st.line = es.line;
  }
  st.ucert.vote_code = es.code;
  st.ucert.signatures.assign(es.sigs.begin(), es.sigs.end());
  wal_log_ucert(*inst, st);
  send_own_vote_p(m.serial, st);
}

void VcNode::send_own_vote_p(Serial serial, BallotState& st) {
  if (st.vote_p_sent) return;
  auto ballot = find_ballot(serial);
  if (!ballot) return;
  const VcLineInit& li = ballot->parts[st.part][st.line];
  st.vote_p_sent = true;
  st.shares[li.receipt_share.x] = li.receipt_share;
  VotePMsg vp;
  vp.serial = serial;
  vp.vote_code = st.code;
  vp.part = st.part;
  vp.line = st.line;
  vp.receipt_share = li.receipt_share;
  vp.share_path = li.share_path;
  vp.ucert = st.ucert;
  multicast_vc(vp.encode());
  complete_vote(serial, st);
}

void VcNode::handle_vote_p(NodeId from, Reader& r) {
  VotePMsg m = VotePMsg::decode(r);
  if (phase_ != Phase::kVoting) return;
  if (!vc_index_of(from)) return;
  if (m.ucert.vote_code != m.vote_code) return;
  auto inst = instance_of(m.serial);
  if (!inst) return;
  if (!verify_ucert(m.serial, m.ucert)) return;
  auto ballot = find_ballot(m.serial);
  if (!ballot) return;
  // The sender claims (part, line); verify the code actually hashes there.
  if (m.part >= kNumParts ||
      m.line >= ballot->parts[m.part].size()) {
    return;
  }
  const VcLineInit& li = ballot->parts[m.part][m.line];
  if (!crypto::salted_commit_check(li.code_hash, m.vote_code, li.salt)) {
    return;
  }
  if (!verify_receipt_share(*ballot, m.part, m.line, m.receipt_share,
                            m.share_path)) {
    return;
  }
  BallotState& st = state_at(*inst);
  if (st.status == BallotStatus::kNotVoted) {
    st.status = BallotStatus::kPending;
    st.code = m.vote_code;
    st.part = m.part;
    st.line = m.line;
    st.ucert = m.ucert;
    wal_log_ucert(*inst, st);
  } else if (st.code != m.vote_code) {
    return;  // conflicting certified code: impossible unless keys broken
  }
  st.shares[m.receipt_share.x] = m.receipt_share;
  if (!st.vote_p_sent) send_own_vote_p(m.serial, st);
  complete_vote(m.serial, st);
}

void VcNode::complete_vote(Serial serial, BallotState& st) {
  if (st.status == BallotStatus::kVoted) return;
  if (st.shares.size() < init_.params.vc_quorum()) return;
  std::vector<crypto::Share> shares;
  shares.reserve(st.shares.size());
  for (const auto& [x, s] : st.shares) shares.push_back(s);
  crypto::Fn secret =
      crypto::shamir_reconstruct(shares, init_.params.vc_quorum());
  Bytes be = secret.to_bytes_be();
  std::uint64_t receipt = 0;
  for (int i = 24; i < 32; ++i) receipt = receipt << 8 | be[static_cast<std::size_t>(i)];
  st.receipt = receipt;
  st.status = BallotStatus::kVoted;
  // Log before the receipt leaves the node: under FsyncPolicy::kAlways an
  // issued receipt is durable, so a restarted collector re-serves the
  // exact same receipt to a resubmitting voter.
  if (wal_) {
    if (auto inst = instance_of(serial)) wal_log_cast(*inst, st);
  }
  if (!st.waiters.empty()) {
    net::Buffer reply =
        VoteReplyMsg{serial, VoteReplyStatus::kOk, receipt}.encode();
    VcShardStats& ss = stats_for(serial);
    for (NodeId voter : st.waiters) {
      ++ss.receipts_issued;
      ctx().send(voter, reply);
    }
    st.waiters.clear();
  }
}

// --- Vote-set consensus ------------------------------------------------------

void VcNode::on_timer(std::uint64_t token) {
  if (token == end_timer_ && phase_ == Phase::kVoting) {
    if (opt_.n_shards == 1) {
      // Legacy single-processor path: no barrier round trip, bit-for-bit
      // the pre-sharding behavior.
      begin_vote_set_consensus();
    } else {
      start_shard_drain();
    }
  } else if (token == recover_timer_ && phase_ == Phase::kRecovery) {
    send_recover_request();  // retry lost requests
  }
}

// --- Shard fan-in barrier ---------------------------------------------------
// Election end, sharded: flip the phase so per-ballot handlers reject from
// here on, then post one drain loopback per shard. Shard mailboxes are
// FIFO, so by the time shard k handles its drain, every voting-phase
// handler enqueued to k before election end has retired; the shard that
// completes the fan-in posts the barrier message back to the control
// shard, which then owns every slice exclusively (handlers on other shards
// observe the phase flip and no longer mutate).

void VcNode::start_shard_drain() {
  phase_ = Phase::kDraining;
  stats_.voting_ended_at = ctx().now();
  for (std::size_t s = 0; s < opt_.n_shards; ++s) {
    ctx().send_self(encode_shard_drain(s));
  }
}

void VcNode::handle_shard_drain(NodeId from, Reader& r) {
  r.u64();  // target shard: consumed by shard_of routing
  // Internal coordination: accept only our own loopback (a peer forging
  // kShardDrain must not be able to trip the barrier early).
  if (from != ctx().self()) return;
  if (phase_ != Phase::kDraining) return;
  // acq_rel: publishes this shard's ballot-state writes to whichever
  // shard observes the final count (and, through it, the control shard).
  if (drained_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      opt_.n_shards) {
    ctx().send_self(encode_shard_barrier());
  }
}

void VcNode::handle_shard_barrier(NodeId from, Reader&) {
  if (from != ctx().self()) return;
  if (phase_ != Phase::kDraining) return;
  // All shards quiesced: the control shard may now read and mutate every
  // slice. Adopt the certified entries buffered during voting/draining
  // first so they make it into our announce and consensus input — the
  // unsharded path adopts them on arrival.
  for (const AnnounceEntry& e : pending_adopts_) adopt_entry(e);
  pending_adopts_.clear();
  begin_vote_set_consensus();
}

void VcNode::begin_vote_set_consensus() {
  phase_ = Phase::kAnnounce;
  if (stats_.voting_ended_at == 0) stats_.voting_ended_at = ctx().now();
  consensus_input_ = Bitmap(n_ballots_);
  recover_needed_ = Bitmap(n_ballots_);
  // Phase boundary: every per-ballot record collapses into one durable
  // snapshot (the announce scan below reads exactly this state).
  wal_snapshot_state();

  // ANNOUNCE: disperse every certified vote code we know. The state table
  // is dense by instance index, so this is one linear scan.
  std::vector<AnnounceEntry> entries;
  for (std::size_t i = 0; i < n_ballots_; ++i) {
    const BallotState& st = states_[i];
    if (st.status == BallotStatus::kNotVoted || st.ucert.signatures.empty()) {
      continue;
    }
    AnnounceEntry e;
    e.instance = i;
    e.vote_code = st.code;
    e.ucert = st.ucert;
    entries.push_back(std::move(e));
  }
  for (std::size_t off = 0; off < entries.size();
       off += opt_.announce_chunk) {
    AnnounceMsg msg;
    std::size_t end = std::min(entries.size(), off + opt_.announce_chunk);
    msg.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(off),
                       entries.begin() + static_cast<std::ptrdiff_t>(end));
    msg.last_chunk = end == entries.size();
    multicast_vc(msg.encode());
  }
  if (entries.empty()) {
    multicast_vc(AnnounceMsg{{}, true}.encode());
  }

  // Prepare the batched consensus engine.
  consensus::ConsensusConfig ccfg;
  ccfg.nodes = init_.params.n_vc;
  ccfg.faults = init_.params.f_vc;
  ccfg.instances = n_ballots_;
  ccfg.self_index = init_.node_index;
  ccfg.max_rounds = init_.coin_roots.size();
  consensus_ = std::make_unique<consensus::BatchBinaryConsensus>(
      ccfg, init_.coin_shares, init_.coin_roots,
      consensus::BatchBinaryConsensus::Hooks{
          [this](Bytes msg) { multicast_vc(wrap_consensus(msg)); },
          nullptr,
          [this] { on_consensus_complete(); }});
}

void VcNode::handle_announce(NodeId from, Reader& r) {
  AnnounceMsg m = AnnounceMsg::decode(r);
  auto sender = vc_index_of(from);
  if (!sender) return;
  // Announces from faster peers may arrive while we are still in the
  // voting phase (bounded clock drift); certified entries are safe to
  // adopt at any time on the unsharded path. Sharded, adoption would
  // mutate slices other shards are still voting on, so entries are
  // buffered until the fan-in barrier hands the control shard exclusive
  // ownership.
  if (opt_.n_shards > 1 &&
      (phase_ == Phase::kVoting || phase_ == Phase::kDraining)) {
    for (AnnounceEntry& e : m.entries) pending_adopts_.push_back(std::move(e));
  } else {
    for (const AnnounceEntry& e : m.entries) adopt_entry(e);
  }
  if (m.last_chunk && !announce_done_.get(*sender)) {
    announce_done_.set(*sender);
    maybe_start_consensus();
  }
}

void VcNode::adopt_entry(const AnnounceEntry& e) {
  if (e.instance >= n_ballots_) return;
  Serial serial = serial_of(e.instance);
  BallotState& st = state_at(e.instance);
  if (st.status != BallotStatus::kNotVoted) return;  // already known
  if (e.ucert.vote_code != e.vote_code) return;
  if (!verify_ucert(serial, e.ucert)) return;
  st.status = BallotStatus::kPending;
  st.code = e.vote_code;
  st.ucert = e.ucert;
  // Locate part/line for completeness (not on the critical path here).
  auto ballot = find_ballot(serial);
  if (ballot) {
    if (auto loc = verify_vote_code(*ballot, e.vote_code)) {
      st.part = loc->first;
      st.line = loc->second;
    }
  }
  wal_log_ucert(e.instance, st);
}

void VcNode::maybe_start_consensus() {
  if (consensus_started_ || phase_ != Phase::kAnnounce) return;
  if (announce_done_.count() < init_.params.vc_quorum()) return;
  phase_ = Phase::kConsensus;
  consensus_started_ = true;
  for (std::size_t i = 0; i < n_ballots_; ++i) {
    if (states_[i].status != BallotStatus::kNotVoted) {
      consensus_input_.set(i);
    }
  }
  consensus_->start(consensus_input_);
  for (auto& [idx, buffered] : queued_consensus_) {
    Reader r(buffered.view());
    r.u8();  // MsgType::kConsensus, validated on arrival
    consensus_->on_message(idx, unwrap_consensus(r));
  }
  queued_consensus_.clear();
}

void VcNode::on_consensus_complete() {
  phase_ = Phase::kRecovery;
  stats_.consensus_done_at = ctx().now();
  // Copied out of the engine: recovery and the push read the member so a
  // restarted node (which has no engine) takes the identical code path.
  decisions_ = consensus_->decisions();
  if (wal_) {
    Writer w;
    decisions_.encode(w);
    wal_->append(kWalDecided, w.take());
    wal_->sync();  // a decision is irrevocable; never lose it to a crash
  }
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    if (!decisions_.get(i)) continue;
    if (states_[i].status == BallotStatus::kNotVoted) {
      recover_needed_.set(i);
    }
  }
  if (recover_needed_.any()) {
    send_recover_request();
  } else {
    push_to_bb();
  }
}

void VcNode::send_recover_request() {
  if (!recover_needed_.any()) return;
  multicast_vc(RecoverRequestMsg{recover_needed_}.encode());
  recover_timer_ = ctx().set_timer(opt_.recover_retry_us);
}

void VcNode::handle_recover_request(NodeId from, Reader& r) {
  RecoverRequestMsg m = RecoverRequestMsg::decode(r);
  if (!vc_index_of(from)) return;
  if (m.instances.size() != n_ballots_) return;
  // Sharded and still voting: answering would scan slices other shards
  // are mutating. Drop — the requesting peer retries on its recover timer
  // and will be answered once this node passes its own barrier.
  if (opt_.n_shards > 1 &&
      (phase_ == Phase::kVoting || phase_ == Phase::kDraining)) {
    return;
  }
  RecoverResponseMsg resp;
  for (std::size_t i = 0; i < m.instances.size(); ++i) {
    if (!m.instances.get(i)) continue;
    const BallotState& st = states_[i];
    if (st.status == BallotStatus::kNotVoted || st.ucert.signatures.empty()) {
      continue;
    }
    AnnounceEntry e;
    e.instance = i;
    e.vote_code = st.code;
    e.ucert = st.ucert;
    resp.entries.push_back(std::move(e));
  }
  if (!resp.entries.empty()) ctx().send(from, resp.encode());
}

void VcNode::handle_recover_response(NodeId from, Reader& r) {
  RecoverResponseMsg m = RecoverResponseMsg::decode(r);
  if (!vc_index_of(from) || phase_ != Phase::kRecovery) return;
  for (const AnnounceEntry& e : m.entries) {
    if (e.instance >= recover_needed_.size() ||
        !recover_needed_.get(e.instance)) {
      continue;
    }
    adopt_entry(e);
    if (states_[e.instance].status != BallotStatus::kNotVoted) {
      recover_needed_.set(e.instance, false);
    }
  }
  maybe_finish_recovery();
}

void VcNode::maybe_finish_recovery() {
  if (phase_ == Phase::kRecovery && !recover_needed_.any()) push_to_bb();
}

void VcNode::push_to_bb() {
  phase_ = Phase::kPush;
  // Logged before the first send: a crash anywhere inside the push makes
  // the restarted node re-push the whole set. Duplicate chunks can spoil
  // this node's own BB submission buffer, but BB acceptance needs only
  // f+1 matching collectors and ignores all writes once accepted.
  if (wal_) {
    wal_->append(kWalPushed, {});
    wal_->sync();
  }
  final_set_.clear();
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    if (!decisions_.get(i)) continue;
    final_set_.push_back(VoteSetEntry{serial_of(i), states_[i].code});
  }
  // Entries are in ascending serial order by construction.
  crypto::Hash32 h = vote_set_hash(final_set_);
  // Pre-encode every BB message once; the per-BB loop only copies handles.
  std::vector<net::Buffer> chunks;
  for (std::size_t off = 0; off < final_set_.size();
       off += opt_.push_chunk) {
    VoteSetChunkMsg chunk;
    std::size_t end = std::min(final_set_.size(), off + opt_.push_chunk);
    chunk.entries.assign(
        final_set_.begin() + static_cast<std::ptrdiff_t>(off),
        final_set_.begin() + static_cast<std::ptrdiff_t>(end));
    chunks.emplace_back(chunk.encode());
  }
  net::Buffer done = VoteSetDoneMsg{final_set_.size(), h}.encode();
  net::Buffer msk = MskShareMsg{init_.msk_share, init_.msk_share_path}
                        .encode();
  for (NodeId bb : bb_ids_) {
    for (const net::Buffer& chunk : chunks) ctx().send(bb, chunk);
    ctx().send(bb, done);
    ctx().send(bb, msk);
  }
  phase_ = Phase::kDone;
  stats_.push_done_at = ctx().now();
}

}  // namespace ddemos::vc
