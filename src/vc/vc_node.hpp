// Vote Collector node (paper Sections III-E, Algorithm 1). Runs:
//  * the voting protocol: VOTE from the voter, ENDORSE/ENDORSEMENT to form
//    the uniqueness certificate UCERT, VOTE_P share disclosure, receipt
//    reconstruction from Nv-fv Shamir shares, receipt back to the voter;
//  * vote-set consensus at election end: ANNOUNCE dispersal, one batched
//    binary consensus instance per registered ballot, RECOVER for ballots
//    decided "voted" whose certified code this node lacks;
//  * the final push of the agreed vote set and the msk key share to the BBs.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/binary_consensus.hpp"
#include "core/messages.hpp"
#include "sim/runtime.hpp"
#include "store/ballot_store.hpp"

namespace ddemos::vc {

enum class BallotStatus : std::uint8_t { kNotVoted, kPending, kVoted };

enum class Phase : std::uint8_t {
  kVoting,
  kAnnounce,
  kConsensus,
  kRecovery,
  kPush,
  kDone,
};

struct VcStats {
  std::uint64_t votes_received = 0;
  std::uint64_t receipts_issued = 0;
  std::uint64_t rejected_votes = 0;
  sim::TimePoint voting_ended_at = 0;
  sim::TimePoint consensus_done_at = 0;
  sim::TimePoint push_done_at = 0;
};

struct VcOptions {
  // When true, Schnorr signing/verification in the hot path is replaced
  // by modeled CPU charges (used by the calibrated benchmarks; all
  // integration tests run with real crypto).
  bool model_signatures = false;
  sim::Duration sign_cost_us = 0;
  sim::Duration verify_cost_us = 0;
  // Extra modeled CPU per handled message (serialization, syscalls).
  sim::Duration base_handler_cost_us = 0;
  std::size_t announce_chunk = 2048;
  std::size_t push_chunk = 2048;
  sim::Duration recover_retry_us = 500'000;
  // Modeled storage latency charged per ballot-store page fault (0 = off).
  sim::Duration page_fault_cost_us = 0;
};

class VcNode final : public sim::Process {
 public:
  using Options = VcOptions;

  VcNode(core::VcInit init, std::shared_ptr<store::BallotDataSource> source,
         std::vector<sim::NodeId> vc_ids, std::vector<sim::NodeId> bb_ids,
         Options options = {});

  void on_start() override;
  void on_message(sim::NodeId from, const net::Buffer& payload) override;
  void on_timer(std::uint64_t token) override;

  // phase_ is atomic: the ThreadNet completion predicate and the driver's
  // phase probe read it from the waiter thread mid-run.
  Phase phase() const { return phase_; }
  bool push_complete() const { return phase_ == Phase::kDone; }
  const std::vector<core::VoteSetEntry>& final_vote_set() const {
    return final_set_;
  }
  const VcStats& stats() const { return stats_; }

 private:
  struct BallotState {
    BallotStatus status = BallotStatus::kNotVoted;
    Bytes code;
    std::uint8_t part = 0;
    std::uint32_t line = 0;
    core::Ucert ucert;
    std::map<std::uint32_t, crypto::Share> shares;  // by 1-based node x
    std::uint64_t receipt = 0;
    bool vote_p_sent = false;
    std::vector<sim::NodeId> waiters;  // voters awaiting the receipt
  };
  struct EndorseState {
    bool active = false;  // dense storage: slot in use
    Bytes code;
    std::uint8_t part = 0;
    std::uint32_t line = 0;
    std::map<std::uint32_t, Bytes> sigs;
    bool ucert_formed = false;
  };

  // --- voting protocol ---------------------------------------------------
  void handle_vote(sim::NodeId from, Reader& r);
  void handle_endorse(sim::NodeId from, Reader& r);
  void handle_endorsement(sim::NodeId from, Reader& r);
  void handle_vote_p(sim::NodeId from, Reader& r);
  void send_own_vote_p(core::Serial serial, BallotState& st);
  void complete_vote(core::Serial serial, BallotState& st);

  // --- vote-set consensus --------------------------------------------------
  void begin_vote_set_consensus();
  void handle_announce(sim::NodeId from, Reader& r);
  void adopt_entry(const core::AnnounceEntry& e);
  void maybe_start_consensus();
  void on_consensus_complete();
  void handle_recover_request(sim::NodeId from, Reader& r);
  void handle_recover_response(sim::NodeId from, Reader& r);
  void send_recover_request();
  void maybe_finish_recovery();
  void push_to_bb();

  // --- helpers -------------------------------------------------------------
  // One payload allocation total: every recipient shares the Buffer handle.
  void multicast_vc(const net::Buffer& msg);
  std::optional<std::size_t> vc_index_of(sim::NodeId id) const;
  bool within_hours() const;  // uses the node's (virtual) local clock
  // Locates (part, line) of a vote code in a ballot; nullopt if absent.
  std::optional<std::pair<std::uint8_t, std::uint32_t>> verify_vote_code(
      const core::VcBallotInit& ballot, BytesView code);
  bool verify_receipt_share(const core::VcBallotInit& ballot,
                            std::uint8_t part, std::uint32_t line,
                            const crypto::Share& share,
                            std::span<const crypto::Hash32> path);
  bool verify_ucert(core::Serial serial, const core::Ucert& ucert);
  Bytes sign_endorsement(core::Serial serial, BytesView code);
  // Dense ballot index for a registered serial (nullopt if unknown). O(1)
  // when the EA issued contiguous serials (the default); falls back to the
  // source's index lookup otherwise.
  std::optional<std::size_t> instance_of(core::Serial serial) const;
  core::Serial serial_of(std::size_t instance);
  BallotState& state_at(std::size_t instance) { return states_[instance]; }
  // Store lookup with modeled storage latency per page fault.
  std::optional<core::VcBallotInit> find_ballot(core::Serial serial);

  core::VcInit init_;
  std::shared_ptr<store::BallotDataSource> source_;
  std::vector<sim::NodeId> vc_ids_;
  std::vector<sim::NodeId> bb_ids_;
  Options opt_;

  std::atomic<Phase> phase_{Phase::kVoting};
  // Per-ballot state, dense by instance index (serials are contiguous from
  // EA setup, so instance = serial - first serial). Replaces the former
  // std::map<Serial, ...>: O(1) lookups, no rebalancing, cache-linear
  // scans during the announce/push phases.
  std::vector<BallotState> states_;
  std::vector<EndorseState> endorse_states_;
  std::size_t n_ballots_ = 0;
  core::Serial first_serial_ = 0;
  bool contiguous_serials_ = false;
  std::uint64_t end_timer_ = 0;
  std::uint64_t recover_timer_ = 0;

  // Vote-set consensus state.
  std::unique_ptr<consensus::BatchBinaryConsensus> consensus_;
  Bitmap announce_done_;        // which VC peers completed their announce
  Bitmap consensus_input_;      // defers until announce quorum
  bool consensus_started_ = false;
  // Whole payload Buffers (handle copies, not byte copies) of consensus
  // messages that arrived before our own election-end timer fired; they
  // are re-unwrapped when consensus starts.
  std::vector<std::pair<std::size_t, net::Buffer>> queued_consensus_;
  Bitmap recover_needed_;
  std::vector<core::VoteSetEntry> final_set_;

  VcStats stats_;
};

}  // namespace ddemos::vc
