// Vote Collector node (paper Sections III-E, Algorithm 1). Runs:
//  * the voting protocol: VOTE from the voter, ENDORSE/ENDORSEMENT to form
//    the uniqueness certificate UCERT, VOTE_P share disclosure, receipt
//    reconstruction from Nv-fv Shamir shares, receipt back to the voter;
//  * vote-set consensus at election end: ANNOUNCE dispersal, one batched
//    binary consensus instance per registered ballot, RECOVER for ballots
//    decided "voted" whose certified code this node lacks;
//  * the final push of the agreed vote set and the msk key share to the BBs.
//
// Intra-node sharding (Options::n_shards > 1): the contiguous serial range
// is partitioned across shards by interleaving — shard(serial) =
// instance % n_shards, where instance = serial - first_serial — so a
// serial-ordered casting burst spreads evenly instead of landing on one
// shard (contiguous blocks would). Each shard exclusively owns its slice
// of ballot/endorse state plus its stats slot, and the runtimes guarantee
// shard-affine dispatch (sim::ShardedProcess): the per-ballot hot path
// (VOTE/ENDORSE/ENDORSEMENT/VOTE_P) runs lock-free on the owning shard.
// Everything else — ANNOUNCE bookkeeping, consensus, recovery, the BB push
// — runs on shard 0, the control shard, and only after a shard fan-in
// barrier: at election end the control shard posts a kShardDrain loopback
// to every shard; because shard mailboxes are FIFO, a shard's drain
// confirms every voting-phase handler enqueued before election end has
// retired, and the last drain releases the control shard (kShardBarrier)
// into the announce scan over all slices. Certified ANNOUNCE entries that
// arrive from faster peers before the barrier are buffered and adopted at
// the barrier instead of mutating foreign shard slices mid-vote.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/binary_consensus.hpp"
#include "core/messages.hpp"
#include "sim/runtime.hpp"
#include "store/ballot_store.hpp"
#include "store/wal.hpp"

namespace ddemos::vc {

// WAL record types written by a VC node (store::Wal payload tag byte).
// Pending/cast records accumulate during voting; the announce-time
// snapshot compacts them into one state blob; decided/pushed mark the
// phase boundaries a restarted node resumes from.
inline constexpr std::uint8_t kWalPending = 1;   // UCERT attached to a ballot
inline constexpr std::uint8_t kWalCast = 2;      // receipt reconstructed
inline constexpr std::uint8_t kWalSnapshot = 3;  // full ballot-state blob
inline constexpr std::uint8_t kWalDecided = 4;   // consensus decisions bitmap
inline constexpr std::uint8_t kWalPushed = 5;    // BB push started

enum class BallotStatus : std::uint8_t { kNotVoted, kPending, kVoted };

enum class Phase : std::uint8_t {
  kVoting,
  kDraining,  // sharded only: election ended, shard fan-in in flight
  kAnnounce,
  kConsensus,
  kRecovery,
  kPush,
  kDone,
};

struct VcStats {
  std::uint64_t votes_received = 0;
  std::uint64_t receipts_issued = 0;
  std::uint64_t rejected_votes = 0;
  sim::TimePoint voting_ended_at = 0;
  sim::TimePoint consensus_done_at = 0;
  sim::TimePoint push_done_at = 0;
};

// Per-shard counters; each slot is written only by its owning shard, so
// no synchronization on the hot path. queue_high_water is filled in by the
// hosting runtime at harvest time (per-shard mailbox depth on ThreadNet;
// zero on the simulator, which has one global event queue).
struct VcShardStats {
  std::uint64_t handled_messages = 0;
  std::uint64_t votes_received = 0;
  std::uint64_t receipts_issued = 0;
  std::uint64_t rejected_votes = 0;
  std::uint64_t endorsements_signed = 0;
  std::uint64_t queue_high_water = 0;
};

struct VcOptions {
  // When true, Schnorr signing/verification in the hot path is replaced
  // by modeled CPU charges (used by the calibrated benchmarks; all
  // integration tests run with real crypto).
  bool model_signatures = false;
  sim::Duration sign_cost_us = 0;
  sim::Duration verify_cost_us = 0;
  // Extra modeled CPU per handled message (serialization, syscalls).
  sim::Duration base_handler_cost_us = 0;
  std::size_t announce_chunk = 2048;
  std::size_t push_chunk = 2048;
  sim::Duration recover_retry_us = 500'000;
  // Modeled storage latency charged per ballot-store page fault (0 = off).
  sim::Duration page_fault_cost_us = 0;
  // Intra-node worker shards over the serial range (see file comment).
  // 1 (the default) takes the legacy single-processor code path
  // bit-for-bit; > 1 requires contiguous serials (the EA default) and is
  // rejected with ProtocolError otherwise — the fallback index lookup is
  // neither O(1) nor thread-safe enough for sender-side shard routing.
  std::size_t n_shards = 1;
};

class VcNode final : public sim::ShardedProcess {
 public:
  using Options = VcOptions;

  VcNode(core::VcInit init, std::shared_ptr<store::BallotDataSource> source,
         std::vector<sim::NodeId> vc_ids, std::vector<sim::NodeId> bb_ids,
         Options options = {});

  void on_start() override;
  void on_message(sim::NodeId from, const net::Buffer& payload) override;
  void on_timer(std::uint64_t token) override;

  // --- sharding surface (sim::ShardedProcess) ------------------------------
  std::size_t shard_count() const override { return opt_.n_shards; }
  // Shard-affine routing keyed off the serial in the message header; pure
  // and thread-safe (called from sender threads on ThreadNet). Anything
  // without a per-ballot serial — announce/consensus/recovery/control —
  // maps to shard 0.
  std::size_t shard_of(sim::NodeId from,
                       const net::Buffer& payload) const override;
  // The serial → shard mapping itself (total: unknown serials map to the
  // control shard); exposed for the shard test suite.
  std::size_t shard_of_serial(core::Serial serial) const;

  // Durability: hands the node its write-ahead log and takes ownership.
  // The log is replayed immediately — a restarted process reconstructs
  // the per-ballot state its previous incarnation persisted — and every
  // state transition from then on is appended. Must be called before the
  // hosting runtime starts (replay mutates ballot state with no locks and
  // the on_start continuation depends on what was replayed). Throws
  // store::WalError on mid-file corruption: recovery fails closed rather
  // than rejoining the election with silently damaged state.
  void attach_wal(std::unique_ptr<store::Wal> wal);
  // Records currently in the log (0 when durability is off); exposed for
  // tests asserting compaction behavior.
  std::uint64_t wal_records() const { return wal_ ? wal_->records() : 0; }

  // phase_ is atomic: the ThreadNet completion predicate and the driver's
  // phase probe read it from the waiter thread mid-run.
  Phase phase() const { return phase_; }
  bool push_complete() const { return phase_ == Phase::kDone; }
  const std::vector<core::VoteSetEntry>& final_vote_set() const {
    return final_set_;
  }
  // Aggregate over all shards plus the control-shard phase timings.
  VcStats stats() const;
  // One entry per shard; stable to read once the run has settled.
  std::vector<VcShardStats> shard_stats() const;

 private:
  struct BallotState {
    BallotStatus status = BallotStatus::kNotVoted;
    Bytes code;
    std::uint8_t part = 0;
    std::uint32_t line = 0;
    core::Ucert ucert;
    std::map<std::uint32_t, crypto::Share> shares;  // by 1-based node x
    std::uint64_t receipt = 0;
    bool vote_p_sent = false;
    std::vector<sim::NodeId> waiters;  // voters awaiting the receipt
  };
  struct EndorseState {
    bool active = false;  // dense storage: slot in use
    Bytes code;
    std::uint8_t part = 0;
    std::uint32_t line = 0;
    std::map<std::uint32_t, Bytes> sigs;
    bool ucert_formed = false;
  };
  // Cache-line padded so shards writing adjacent slots never false-share.
  struct alignas(64) ShardSlot {
    VcShardStats stats;
  };

  // --- voting protocol ---------------------------------------------------
  void handle_vote(sim::NodeId from, Reader& r);
  void handle_endorse(sim::NodeId from, Reader& r);
  void handle_endorsement(sim::NodeId from, Reader& r);
  void handle_vote_p(sim::NodeId from, Reader& r);
  void send_own_vote_p(core::Serial serial, BallotState& st);
  void complete_vote(core::Serial serial, BallotState& st);

  // --- vote-set consensus --------------------------------------------------
  void begin_vote_set_consensus();
  void handle_announce(sim::NodeId from, Reader& r);
  void adopt_entry(const core::AnnounceEntry& e);
  void maybe_start_consensus();
  void on_consensus_complete();
  void handle_recover_request(sim::NodeId from, Reader& r);
  void handle_recover_response(sim::NodeId from, Reader& r);
  void send_recover_request();
  void maybe_finish_recovery();
  void push_to_bb();

  // --- shard coordination ----------------------------------------------------
  // --- durability ----------------------------------------------------------
  // Appends one record per transition (no-ops when no WAL is attached);
  // called from shard workers, so the Wal itself serializes.
  void wal_log_ucert(std::size_t instance, const BallotState& st);
  void wal_log_cast(std::size_t instance, const BallotState& st);
  // Compacts every per-ballot record into one snapshot blob at the
  // announce phase boundary.
  void wal_snapshot_state();
  // Applies one replayed record to the in-memory state. Runs before the
  // node has a Context: it must not send, charge, set timers, or verify
  // signatures — a node trusts its own log (records were only written
  // after verification the first time around).
  void wal_replay_record(std::uint8_t type, BytesView payload);

  void start_shard_drain();
  void handle_shard_drain(sim::NodeId from, Reader& r);
  void handle_shard_barrier(sim::NodeId from, Reader& r);
  VcShardStats& stats_for(core::Serial serial) {
    return shard_slots_[shard_of_serial(serial)].stats;
  }
  // Routing for a message whose type byte is already consumed; takes the
  // Reader by value so the caller's position is untouched (shared by
  // shard_of and on_message's per-shard bookkeeping).
  std::size_t shard_after_type(core::MsgType type, Reader r) const;

  // --- helpers -------------------------------------------------------------
  // One payload allocation total: every recipient shares the Buffer handle.
  void multicast_vc(const net::Buffer& msg);
  std::optional<std::size_t> vc_index_of(sim::NodeId id) const;
  bool within_hours() const;  // uses the node's (virtual) local clock
  // Locates (part, line) of a vote code in a ballot; nullopt if absent.
  std::optional<std::pair<std::uint8_t, std::uint32_t>> verify_vote_code(
      const core::VcBallotInit& ballot, BytesView code);
  bool verify_receipt_share(const core::VcBallotInit& ballot,
                            std::uint8_t part, std::uint32_t line,
                            const crypto::Share& share,
                            std::span<const crypto::Hash32> path);
  bool verify_ucert(core::Serial serial, const core::Ucert& ucert);
  Bytes sign_endorsement(core::Serial serial, BytesView code);
  // Dense ballot index for a registered serial (nullopt if unknown). O(1)
  // when the EA issued contiguous serials (the default); falls back to the
  // source's index lookup otherwise.
  std::optional<std::size_t> instance_of(core::Serial serial) const;
  core::Serial serial_of(std::size_t instance);
  BallotState& state_at(std::size_t instance) { return states_[instance]; }
  // Store lookup with modeled storage latency per page fault.
  std::optional<core::VcBallotInit> find_ballot(core::Serial serial);

  core::VcInit init_;
  std::shared_ptr<store::BallotDataSource> source_;
  std::vector<sim::NodeId> vc_ids_;
  std::vector<sim::NodeId> bb_ids_;
  Options opt_;

  std::atomic<Phase> phase_{Phase::kVoting};
  // Per-ballot state, dense by instance index (serials are contiguous from
  // EA setup, so instance = serial - first serial). Replaces the former
  // std::map<Serial, ...>: O(1) lookups, no rebalancing, cache-linear
  // scans during the announce/push phases. Slot i is owned by shard
  // i % n_shards; the vectors themselves are never resized after
  // construction, so cross-shard slot access never invalidates.
  std::vector<BallotState> states_;
  std::vector<EndorseState> endorse_states_;
  std::size_t n_ballots_ = 0;
  core::Serial first_serial_ = 0;
  bool contiguous_serials_ = false;
  std::uint64_t end_timer_ = 0;
  std::uint64_t recover_timer_ = 0;

  // Shard fan-in barrier state (n_shards > 1 only).
  std::atomic<std::size_t> drained_{0};
  // Certified announce entries from faster peers, buffered while shards
  // may still be voting; adopted by the control shard at the barrier.
  std::vector<core::AnnounceEntry> pending_adopts_;
  std::vector<ShardSlot> shard_slots_;

  // Vote-set consensus state (control shard only).
  std::unique_ptr<consensus::BatchBinaryConsensus> consensus_;
  Bitmap announce_done_;        // which VC peers completed their announce
  Bitmap consensus_input_;      // defers until announce quorum
  bool consensus_started_ = false;
  // Whole payload Buffers (handle copies, not byte copies) of consensus
  // messages that arrived before our own election-end timer fired; they
  // are re-unwrapped when consensus starts.
  std::vector<std::pair<std::size_t, net::Buffer>> queued_consensus_;
  Bitmap recover_needed_;
  std::vector<core::VoteSetEntry> final_set_;

  // Durability state. decisions_ is the consensus outcome copied out of
  // the engine at decide time (or restored from the WAL): push/recovery
  // read it instead of consensus_->decisions() because a restarted node
  // resuming past the decision has no live consensus engine at all.
  std::unique_ptr<store::Wal> wal_;
  Bitmap decisions_;
  bool replayed_announce_ = false;  // log held the announce-time snapshot
  bool replayed_decided_ = false;   // log held the decisions bitmap
  bool replayed_pushed_ = false;    // previous incarnation started its push

  VcStats stats_;  // control-shard timings; counters live in shard slots
};

}  // namespace ddemos::vc
