// Deterministic binary wire codec (stands in for the paper's use of Google
// Protocol Buffers). Little-endian fixed-width integers, LEB128 varints,
// length-prefixed byte strings. Reader is bounds-checked and throws
// CodecError on truncation so malformed network input can never read OOB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ddemos {

class Writer {
 public:
  Writer() = default;

  // Pre-sizes the backing buffer so hot encode paths (multicast bodies,
  // consensus batches) reach their final allocation in one step.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void varint(std::uint64_t v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  // Length-prefixed byte string.
  void bytes(BytesView v);
  void str(std::string_view v);
  // Raw append, no length prefix (for fixed-size fields).
  void raw(BytesView v) { append(buf_, v); }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& encode_one) {
    varint(v.size());
    for (const T& x : v) encode_one(*this, x);
  }

  const Bytes& data() const& { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  bool boolean();
  Bytes bytes();
  std::string str();
  // Read exactly n raw bytes.
  Bytes raw(std::size_t n);
  // Zero-copy variants: a view into the underlying message buffer. Valid
  // only while the message payload (the Buffer the view was created over)
  // is alive; copy into owned Bytes to keep data past the handler.
  BytesView bytes_view();
  BytesView raw_view(std::size_t n);

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one, std::size_t max_elems = 1u << 24) {
    std::uint64_t n = varint();
    if (n > max_elems) throw CodecError("vec: too many elements");
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_one(*this));
    return out;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  void expect_done() const {
    if (!done()) throw CodecError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CodecError("truncated buffer");
  }
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace ddemos
