#pragma once

#include <string>

#include "util/bytes.hpp"

namespace ddemos {

std::string to_hex(BytesView data);

// Throws CodecError on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace ddemos
