// Fixed-worker fork-join pool for the verification layer. No work
// stealing: parallel_for splits an index range into fixed-size chunks
// that the workers and the calling thread drain from a shared atomic
// cursor. Chunk boundaries depend only on (n, chunk), never on the
// worker count, so any per-chunk derivation (e.g. Fiat-Shamir batch
// weights) is identical at every thread count — parallel audits stay
// bit-for-bit reproducible.
//
// parallel_for may be called concurrently from several threads (BB nodes
// on a ThreadNet share one pool); jobs queue and every worker helps the
// oldest incomplete one. The first exception a chunk throws is captured
// and rethrown on the calling thread after the job drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ddemos::util {

class ThreadPool {
 public:
  // n_threads counts total executors: the caller always participates, so
  // n_threads <= 1 spawns no workers and parallel_for runs inline.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total executors (workers + the calling thread); always >= 1.
  std::size_t n_threads() const { return workers_.size() + 1; }

  // Runs body(begin, end) over [0, n) in chunks of `chunk` indices. Blocks
  // until every chunk finished; rethrows the first captured exception.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // DDEMOS_AUDIT_THREADS env var, or fallback when unset/invalid.
  static std::size_t env_threads(std::size_t fallback = 1);

 private:
  struct Job;
  void worker_loop();
  static void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

}  // namespace ddemos::util
