#include "util/codec.hpp"

namespace ddemos {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void Writer::bytes(BytesView v) {
  varint(v.size());
  raw(v);
}

void Writer::str(std::string_view v) {
  varint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  std::uint16_t lo = u8();
  std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | hi << 8);
}

std::uint32_t Reader::u32() {
  std::uint32_t lo = u16();
  std::uint32_t hi = u16();
  return lo | hi << 16;
}

std::uint64_t Reader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | hi << 32;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw CodecError("varint overflow");
    std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

bool Reader::boolean() {
  std::uint8_t b = u8();
  if (b > 1) throw CodecError("bad boolean");
  return b == 1;
}

Bytes Reader::bytes() {
  BytesView v = bytes_view();
  return Bytes(v.begin(), v.end());
}

BytesView Reader::bytes_view() {
  std::uint64_t n = varint();
  if (n > remaining()) throw CodecError("bytes: length exceeds buffer");
  return raw_view(static_cast<std::size_t>(n));
}

BytesView Reader::raw_view(std::size_t n) {
  need(n);
  BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  BytesView v = raw_view(n);
  return Bytes(v.begin(), v.end());
}

}  // namespace ddemos
