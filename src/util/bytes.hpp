// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace ddemos {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

inline void append(Bytes& out, BytesView more) {
  out.insert(out.end(), more.begin(), more.end());
}

inline Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  append(out, a);
  append(out, b);
  return out;
}

// Constant-time equality for secret material (receipts, vote codes).
inline bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace ddemos
