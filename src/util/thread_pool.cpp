#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace ddemos::util {

struct ThreadPool::Job {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> cursor{0};
  // done/error live under mu so the waiter's wake-up can't be missed.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t n_threads) {
  std::size_t workers = n_threads > 1 ? n_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    std::size_t i = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n_chunks) return;
    std::size_t begin = i * job.chunk;
    std::size_t end = std::min(begin + job.chunk, job.n);
    std::exception_ptr err;
    try {
      job.body(begin, end);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(job.mu);
      if (err && !job.error) job.error = err;
      if (++job.done == job.n_chunks) {
        job.cv.notify_all();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and nothing left to help
      job = jobs_.front();
      if (job->cursor.load(std::memory_order_relaxed) >= job->n_chunks) {
        // Fully claimed; retire it from the queue and look again.
        jobs_.pop_front();
        continue;
      }
    }
    run_chunks(*job);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  std::size_t n_chunks = (n + chunk - 1) / chunk;
  if (workers_.empty() || n_chunks == 1) {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      body(begin, std::min(begin + chunk, n));
    }
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = body;
  job->n = n;
  job->chunk = chunk;
  job->n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  run_chunks(*job);  // the caller is an executor too
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->cv.wait(lk, [&] { return job->done == job->n_chunks; });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) jobs_.erase(it);
  }
  if (job->error) std::rethrow_exception(job->error);
}

std::size_t ThreadPool::env_threads(std::size_t fallback) {
  const char* env = std::getenv("DDEMOS_AUDIT_THREADS");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0 || v > 1024) return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace ddemos::util
