// Error taxonomy. Protocol code uses exceptions only for malformed input and
// programming errors; expected failures (invalid vote code, unknown serial)
// travel as status enums in the protocol messages themselves.
#pragma once

#include <stdexcept>
#include <string>

namespace ddemos {

// Malformed wire data (truncated buffer, bad tag, out-of-range value).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

// Violated cryptographic precondition (bad point encoding, share mismatch).
class CryptoError : public std::runtime_error {
 public:
  explicit CryptoError(const std::string& what) : std::runtime_error(what) {}
};

// Violated protocol invariant that indicates a bug, not an adversary.
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace ddemos
