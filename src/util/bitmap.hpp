// Packed bit vector used by the batched consensus protocol: one binary
// consensus instance per registered ballot means messages carry per-instance
// bits for hundreds of thousands of ballots, so wire size matters.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"

namespace ddemos {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size) : size_(size), words_((size + 63) / 64) {}

  std::size_t size() const { return size_; }

  bool get(std::size_t i) const {
    check(i);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::size_t i, bool v = true) {
    check(i);
    if (v) {
      words_[i >> 6] |= 1ull << (i & 63);
    } else {
      words_[i >> 6] &= ~(1ull << (i & 63));
    }
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }
  bool any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool all() const { return count() == size_; }

  friend bool operator==(const Bitmap&, const Bitmap&) = default;

  void encode(Writer& w) const {
    w.varint(size_);
    for (std::uint64_t word : words_) w.u64(word);
  }
  static Bitmap decode(Reader& r, std::size_t max_size = 1u << 28) {
    std::uint64_t n = r.varint();
    if (n > max_size) throw CodecError("Bitmap: too large");
    Bitmap b(static_cast<std::size_t>(n));
    for (auto& word : b.words_) word = r.u64();
    // Bits past size_ must be zero (canonical encoding).
    if (n % 64 != 0 && !b.words_.empty()) {
      std::uint64_t mask = ~0ull << (n % 64);
      if (b.words_.back() & mask) throw CodecError("Bitmap: padding bits set");
    }
    return b;
  }

 private:
  void check(std::size_t i) const {
    if (i >= size_) throw ProtocolError("Bitmap: index out of range");
  }
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ddemos
