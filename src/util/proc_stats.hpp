// Process memory accounting for the benchmark/instrumentation layer and
// the election driver's report: current resident set size (sampled from
// /proc/self/statm) and the process-lifetime peak RSS (getrusage). Both
// return KiB, or 0 on platforms without the underlying source — callers
// treat the counters as best-effort telemetry, never control flow.
#pragma once

#include <cstdint>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace ddemos::util {

inline std::uint64_t current_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size = 0, resident = 0;
  int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return resident * static_cast<std::uint64_t>(page) / 1024;
#else
  return 0;
#endif
}

inline std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;  // bytes there
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace ddemos::util
