#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/codec.hpp"

namespace ddemos::store {
namespace {

constexpr std::uint32_t kWalMagic = 0x4C415744;  // "DWAL"
constexpr std::uint32_t kWalVersion = 1;
constexpr std::size_t kFileHeader = 8;           // magic + version
constexpr std::size_t kRecordHeader = 5;         // u32 len + u8 type
constexpr std::size_t kRecordTrailer = 4;        // u32 crc
// A single record cannot exceed this; larger lengths in a header are
// treated as frame damage, not as a request to allocate gigabytes.
constexpr std::uint32_t kMaxRecordPayload = 1u << 30;

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = std::uint8_t(v);
  p[1] = std::uint8_t(v >> 8);
  p[2] = std::uint8_t(v >> 16);
  p[3] = std::uint8_t(v >> 24);
}

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw WalError(path + ": " + what + ": " + std::strerror(errno));
}

}  // namespace

std::uint32_t crc32c(BytesView data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Wal::Wal(std::string path, WalOptions opt)
    : path_(std::move(path)), opt_(opt) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) fail(path_, "open");
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::write_all(int fd, BytesView data, const char* what) const {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, what);
    }
    off += static_cast<std::size_t>(n);
  }
}

void Wal::fsync_fd(int fd, const char* what) const {
  if (::fsync(fd) != 0) fail(path_, what);
}

Bytes Wal::frame(std::uint8_t type, BytesView payload) {
  Bytes out(kRecordHeader + payload.size() + kRecordTrailer);
  put_u32le(out.data(), static_cast<std::uint32_t>(payload.size()));
  out[4] = type;
  std::memcpy(out.data() + kRecordHeader, payload.data(), payload.size());
  std::uint32_t crc =
      crc32c(BytesView(out.data(), kRecordHeader + payload.size()));
  put_u32le(out.data() + kRecordHeader + payload.size(), crc);
  return out;
}

WalReplayResult Wal::replay(
    const std::function<void(std::uint8_t, BytesView)>& fn) {
  if (replayed_) throw WalError(path_ + ": replay called twice");
  replayed_ = true;

  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) fail(path_, "lseek");
  Bytes file(static_cast<std::size_t>(size));
  if (size > 0) {
    if (::lseek(fd_, 0, SEEK_SET) < 0) fail(path_, "lseek");
    std::size_t off = 0;
    while (off < file.size()) {
      ssize_t n = ::read(fd_, file.data() + off, file.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(path_, "read");
      }
      if (n == 0) fail(path_, "short read");
      off += static_cast<std::size_t>(n);
    }
  }

  WalReplayResult res;
  std::size_t pos = 0;

  auto truncate_at = [&](std::size_t at) {
    res.torn_tail = true;
    res.truncated_bytes = file.size() - at;
    if (::ftruncate(fd_, static_cast<off_t>(at)) != 0)
      fail(path_, "ftruncate");
    if (::lseek(fd_, static_cast<off_t>(at), SEEK_SET) < 0)
      fail(path_, "lseek");
  };

  if (file.empty()) {
    // Fresh log: stamp the file header.
    std::uint8_t hdr[kFileHeader];
    put_u32le(hdr, kWalMagic);
    put_u32le(hdr + 4, kWalVersion);
    write_all(fd_, BytesView(hdr, kFileHeader), "write header");
    return res;
  }
  if (file.size() < kFileHeader) {
    // The process died inside the very first header write.
    truncate_at(0);
    std::uint8_t hdr[kFileHeader];
    put_u32le(hdr, kWalMagic);
    put_u32le(hdr + 4, kWalVersion);
    write_all(fd_, BytesView(hdr, kFileHeader), "write header");
    return res;
  }
  if (get_u32le(file.data()) != kWalMagic)
    throw WalError(path_ + ": bad WAL magic (not a ddemos WAL file)");
  if (get_u32le(file.data() + 4) != kWalVersion)
    throw WalError(path_ + ": unsupported WAL format version " +
                   std::to_string(get_u32le(file.data() + 4)));
  pos = kFileHeader;

  while (pos < file.size()) {
    std::size_t start = pos;
    if (file.size() - pos < kRecordHeader) {
      truncate_at(start);  // torn mid-header
      return res;
    }
    std::uint32_t len = get_u32le(file.data() + pos);
    std::uint8_t type = file[pos + 4];
    std::size_t frame_size = kRecordHeader + std::size_t(len) + kRecordTrailer;
    if (len > kMaxRecordPayload || file.size() - start < frame_size) {
      // The frame claims more bytes than the file holds (or an absurd
      // length from a torn header write): a torn tail either way, because
      // nothing after an incomplete frame can be trusted to align.
      truncate_at(start);
      return res;
    }
    BytesView payload(file.data() + start + kRecordHeader, len);
    std::uint32_t want = get_u32le(file.data() + start + kRecordHeader + len);
    std::uint32_t got =
        crc32c(BytesView(file.data() + start, kRecordHeader + len));
    if (want != got) {
      // A complete frame with a bad checksum is corruption, not a torn
      // write (torn writes leave short frames): fail closed so recovery
      // never proceeds from silently damaged state.
      throw WalError(path_ + ": CRC mismatch in record " +
                     std::to_string(res.records) + " at byte offset " +
                     std::to_string(start) + " (stored " +
                     std::to_string(want) + ", computed " +
                     std::to_string(got) + ")");
    }
    fn(type, payload);
    ++res.records;
    pos = start + frame_size;
  }
  records_ = res.records;
  if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0) fail(path_, "lseek");
  return res;
}

void Wal::maybe_sync() {
  switch (opt_.fsync) {
    case FsyncPolicy::kNever:
      break;
    case FsyncPolicy::kAlways:
      fsync_fd(fd_, "fsync");
      unsynced_ = 0;
      break;
    case FsyncPolicy::kInterval:
      if (unsynced_ >= std::max<std::size_t>(1, opt_.fsync_interval)) {
        fsync_fd(fd_, "fsync");
        unsynced_ = 0;
      }
      break;
  }
}

void Wal::append(std::uint8_t type, BytesView payload) {
  Bytes rec = frame(type, payload);
  std::scoped_lock lk(mu_);
  if (!replayed_) throw WalError(path_ + ": append before replay");
  write_all(fd_, rec, "append");
  ++records_;
  ++unsynced_;
  maybe_sync();
}

void Wal::sync() {
  std::scoped_lock lk(mu_);
  if (fd_ >= 0) {
    fsync_fd(fd_, "fsync");
    unsynced_ = 0;
  }
}

void Wal::snapshot(std::uint8_t type, BytesView payload) {
  std::scoped_lock lk(mu_);
  if (!replayed_) throw WalError(path_ + ": snapshot before replay");
  std::string tmp = path_ + ".tmp";
  int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tfd < 0) fail(tmp, "open");
  std::uint8_t hdr[kFileHeader];
  put_u32le(hdr, kWalMagic);
  put_u32le(hdr + 4, kWalVersion);
  write_all(tfd, BytesView(hdr, kFileHeader), "write snapshot header");
  write_all(tfd, frame(type, payload), "write snapshot");
  // The snapshot is always fsynced before the rename regardless of policy:
  // compaction replaces history, so the new file must be durable before
  // the old one becomes unreachable.
  fsync_fd(tfd, "fsync snapshot");
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) fail(path_, "rename");
  // Persist the rename itself.
  std::string dir = path_;
  std::size_t slash = dir.find_last_of('/');
  dir = (slash == std::string::npos) ? "." : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort; some filesystems reject directory fsync
    ::close(dfd);
  }
  // Swing the live fd to the new file, positioned at its end.
  int nfd = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (nfd < 0) fail(path_, "reopen");
  if (::lseek(nfd, 0, SEEK_END) < 0) fail(path_, "lseek");
  ::close(fd_);
  fd_ = nfd;
  records_ = 1;
  unsynced_ = 0;
}

}  // namespace ddemos::store
