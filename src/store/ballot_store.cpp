#include "store/ballot_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace ddemos::store {

using core::Serial;
using core::VcBallotInit;

MemoryBallotSource::MemoryBallotSource(std::vector<VcBallotInit> ballots)
    : ballots_(std::move(ballots)) {
  for (std::size_t i = 1; i < ballots_.size(); ++i) {
    if (ballots_[i - 1].serial >= ballots_[i].serial) {
      throw ProtocolError("MemoryBallotSource: ballots must be sorted");
    }
  }
}

std::optional<VcBallotInit> MemoryBallotSource::find(Serial serial) {
  auto idx = index_of(serial);
  if (!idx) return std::nullopt;
  return ballots_[*idx];
}

Serial MemoryBallotSource::serial_at(std::size_t idx) {
  return ballots_.at(idx).serial;
}

std::optional<std::size_t> MemoryBallotSource::index_of(Serial serial) {
  auto it = std::lower_bound(
      ballots_.begin(), ballots_.end(), serial,
      [](const VcBallotInit& b, Serial s) { return b.serial < s; });
  if (it == ballots_.end() || it->serial != serial) return std::nullopt;
  return static_cast<std::size_t>(it - ballots_.begin());
}

// --- Disk source -----------------------------------------------------------

DiskBallotSource::Builder::Builder(const std::string& path) : path_(path) {
  records_ = std::fopen((path + ".records.tmp").c_str(), "wb");
  if (!records_) throw ProtocolError("cannot create " + path);
}

DiskBallotSource::Builder::~Builder() {
  if (!finished_ && records_) std::fclose(records_);
}

void DiskBallotSource::Builder::add(const VcBallotInit& ballot) {
  if (!index_.empty() && std::get<0>(index_.back()) >= ballot.serial) {
    throw ProtocolError("DiskBallotSource: ballots must arrive sorted");
  }
  Writer w;
  ballot.encode(w);
  const Bytes& blob = w.data();
  index_.emplace_back(ballot.serial, offset_,
                      static_cast<std::uint32_t>(blob.size()));
  if (std::fwrite(blob.data(), 1, blob.size(), records_) != blob.size()) {
    throw ProtocolError("DiskBallotSource: short write");
  }
  offset_ += blob.size();
}

void DiskBallotSource::Builder::finish() {
  std::fclose(records_);
  records_ = nullptr;
  finished_ = true;
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (!out) throw ProtocolError("cannot create " + path_);
  auto write_u64 = [&](std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(b, 1, 8, out);
  };
  auto write_u32 = [&](std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(b, 1, 4, out);
  };
  write_u64(0xdde305b411075001ull);  // magic
  write_u64(index_.size());
  for (const auto& [serial, offset, len] : index_) {
    write_u64(serial);
    write_u64(offset);
    write_u32(len);
  }
  // Append record blobs.
  std::FILE* rec = std::fopen((path_ + ".records.tmp").c_str(), "rb");
  if (!rec) throw ProtocolError("missing records temp file");
  std::vector<std::uint8_t> buf(1 << 16);
  std::size_t got;
  while ((got = std::fread(buf.data(), 1, buf.size(), rec)) > 0) {
    std::fwrite(buf.data(), 1, got, out);
  }
  std::fclose(rec);
  std::fclose(out);
  std::remove((path_ + ".records.tmp").c_str());
}

void DiskBallotSource::build(const std::string& path,
                             const std::vector<VcBallotInit>& ballots) {
  Builder b(path);
  for (const auto& ballot : ballots) b.add(ballot);
  b.finish();
}

DiskBallotSource::DiskBallotSource(const std::string& path,
                                   std::size_t cache_pages,
                                   std::size_t read_handles) {
  std::size_t n = std::max<std::size_t>(read_handles, 1);
  std::size_t per_stripe = std::max<std::size_t>(cache_pages / n, 4);
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stripe>();
    s->file = std::fopen(path.c_str(), "rb");
    if (!s->file) throw ProtocolError("cannot open " + path);
    s->cache_pages = per_stripe;
    stripes_.push_back(std::move(s));
  }
  std::FILE* f = stripes_[0]->file;
  std::uint8_t hdr[16];
  if (std::fread(hdr, 1, 16, f) != 16) {
    throw ProtocolError("truncated ballot file");
  }
  auto rd_u64 = [](const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
    return v;
  };
  if (rd_u64(hdr) != 0xdde305b411075001ull) {
    throw ProtocolError("bad ballot file magic");
  }
  count_ = rd_u64(hdr + 8);
  records_base_ = index_base_ + count_ * kIndexEntry;
}

DiskBallotSource::~DiskBallotSource() = default;  // Stripe closes its FILE*

DiskBallotSource::Stripe& DiskBallotSource::stripe_for(Serial serial) {
  // Fibonacci hash: serials are assigned contiguously by the EA, so a
  // plain modulus would alias with the shard interleaving.
  std::uint64_t h = serial * 0x9E3779B97F4A7C15ull;
  return *stripes_[(h >> 32) % stripes_.size()];
}

const std::uint8_t* DiskBallotSource::page(Stripe& s, std::uint64_t page_no) {
  auto it = s.cache.find(page_no);
  if (it != s.cache.end()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    s.lru.erase(it->second.second);
    s.lru.push_front(page_no);
    it->second.second = s.lru.begin();
    return it->second.first.data();
  }
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> data(kPageSize);
  if (std::fseek(s.file, static_cast<long>(page_no * kPageSize), SEEK_SET)) {
    throw ProtocolError("seek failed");
  }
  std::size_t got = std::fread(data.data(), 1, kPageSize, s.file);
  if (got == 0) throw ProtocolError("read past end of ballot file");
  s.lru.push_front(page_no);
  auto [ins, _] =
      s.cache.emplace(page_no, std::pair{std::move(data), s.lru.begin()});
  if (s.cache.size() > s.cache_pages) {
    s.cache.erase(s.lru.back());
    s.lru.pop_back();
  }
  return ins->second.first.data();
}

DiskBallotSource::IndexEntry DiskBallotSource::index_entry(Stripe& s,
                                                           std::size_t idx) {
  std::uint64_t byte_off = index_base_ + idx * kIndexEntry;
  std::uint8_t raw[kIndexEntry];
  // The entry may straddle a page boundary.
  for (std::size_t i = 0; i < kIndexEntry; ++i) {
    std::uint64_t off = byte_off + i;
    raw[i] = page(s, off / kPageSize)[off % kPageSize];
  }
  IndexEntry e;
  e.serial = 0;
  e.offset = 0;
  e.length = 0;
  for (int i = 7; i >= 0; --i) e.serial = e.serial << 8 | raw[i];
  for (int i = 7; i >= 0; --i) e.offset = e.offset << 8 | raw[8 + i];
  for (int i = 3; i >= 0; --i) e.length = e.length << 8 | raw[16 + i];
  return e;
}

std::optional<std::size_t> DiskBallotSource::index_of_locked(Stripe& s,
                                                             Serial serial) {
  std::size_t lo = 0, hi = count_;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    IndexEntry e = index_entry(s, mid);
    if (e.serial == serial) return mid;
    if (e.serial < serial) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> DiskBallotSource::index_of(Serial serial) {
  Stripe& s = stripe_for(serial);
  std::scoped_lock lk(s.mu);
  return index_of_locked(s, serial);
}

Serial DiskBallotSource::serial_at(std::size_t idx) {
  if (idx >= count_) throw ProtocolError("serial_at: out of range");
  Stripe& s = *stripes_[idx % stripes_.size()];
  std::scoped_lock lk(s.mu);
  return index_entry(s, idx).serial;
}

std::optional<VcBallotInit> DiskBallotSource::find(Serial serial) {
  Stripe& s = stripe_for(serial);
  std::scoped_lock lk(s.mu);
  auto idx = index_of_locked(s, serial);
  if (!idx) return std::nullopt;
  IndexEntry e = index_entry(s, *idx);
  std::vector<std::uint8_t> blob(e.length);
  if (std::fseek(s.file,
                 static_cast<long>(records_base_ + e.offset), SEEK_SET)) {
    throw ProtocolError("seek failed");
  }
  if (std::fread(blob.data(), 1, e.length, s.file) != e.length) {
    throw ProtocolError("truncated record");
  }
  Reader r(blob);
  VcBallotInit b = VcBallotInit::decode(r);
  r.expect_done();
  return b;
}

}  // namespace ddemos::store
