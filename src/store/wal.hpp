// Append-only write-ahead log for protocol-node durability. One file per
// node; every record is CRC32C-framed so replay can tell a torn tail (the
// process died mid-write: the final frame is incomplete — truncated and
// dropped) from real corruption (a complete frame whose checksum fails —
// replay fails closed with a diagnostic, never silently skipping state).
//
// File layout (all integers little-endian):
//   [u32 file magic "DWAL"][u32 format version]
//   record*: [u32 payload_len][u8 type][payload][u32 crc32c]
// where the CRC covers payload_len, type and payload (so a bit-flip in the
// length header is caught by the same check as one in the payload).
//
// Lifecycle: open → replay(fn) exactly once (validates the whole file,
// truncates a torn tail, positions the append cursor) → append()/sync().
// snapshot() atomically replaces the log with a single compacted record via
// temp-file + fsync + rename, the phase-boundary compaction the VC node
// uses when per-ballot records collapse into one announce-time state blob.
//
// Durability knob (FsyncPolicy): kAlways fsyncs every append (crash loses
// nothing acknowledged), kInterval fsyncs every Nth record (bounded loss
// window, the default), kNever leaves flushing to the OS (bench baseline;
// still torn-tail-safe because frames are CRC-checked on replay).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace ddemos::store {

// Unrecoverable log damage (mid-file CRC mismatch, unreadable file,
// bad magic). Deliberately not a CodecError: WAL corruption means local
// durable state is unsound, which must stop recovery, not drop a message.
class WalError : public std::runtime_error {
 public:
  explicit WalError(const std::string& what) : std::runtime_error(what) {}
};

enum class FsyncPolicy : std::uint8_t {
  kNever = 0,     // no explicit flushing; OS writeback order applies
  kInterval = 1,  // fsync every fsync_interval appended records
  kAlways = 2,    // fsync after every append
};

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  std::size_t fsync_interval = 64;  // records per fsync under kInterval
};

struct WalReplayResult {
  std::size_t records = 0;          // valid records delivered to the callback
  bool torn_tail = false;           // an incomplete final frame was dropped
  std::uint64_t truncated_bytes = 0;  // size of the dropped tail
};

// CRC32C (Castagnoli), software table implementation. Exposed for tests
// that hand-craft corrupt log files.
std::uint32_t crc32c(BytesView data, std::uint32_t seed = 0);

class Wal {
 public:
  // Opens (creating if absent) the log at `path`. Appending before
  // replay() throws: the replay pass is what validates the tail and
  // positions the cursor.
  explicit Wal(std::string path, WalOptions opt = {});
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Scans the whole file, invoking `fn(type, payload)` for every valid
  // record in append order. Truncates a torn tail in place; throws
  // WalError (with path + byte offset) on mid-file corruption or a
  // complete final frame with a bad checksum. Must be called exactly once,
  // before the first append.
  WalReplayResult replay(
      const std::function<void(std::uint8_t type, BytesView payload)>& fn);

  // Appends one record and applies the fsync policy. Thread-safe: a
  // sharded VC node appends from every shard worker concurrently.
  void append(std::uint8_t type, BytesView payload);

  // Unconditional fsync of everything appended so far. Thread-safe.
  void sync();

  // Atomically replaces the entire log with a single record: the snapshot
  // is written to `path + ".tmp"`, fsynced, then renamed over the live
  // log (and the directory fsynced), so a crash at any point leaves either
  // the old log or the new one — never a mix.
  void snapshot(std::uint8_t type, BytesView payload);

  const std::string& path() const { return path_; }
  // Records seen so far: replayed + appended (snapshot resets to 1).
  std::uint64_t records() const {
    std::scoped_lock lk(mu_);
    return records_;
  }

 private:
  void write_all(int fd, BytesView data, const char* what) const;
  void fsync_fd(int fd, const char* what) const;
  void maybe_sync();
  static Bytes frame(std::uint8_t type, BytesView payload);

  std::string path_;
  WalOptions opt_;
  // Serializes append/sync/snapshot (replay runs before any shard worker
  // exists, so it only asserts the lifecycle flag).
  mutable std::mutex mu_;
  int fd_ = -1;              // guarded by mu_ after replay
  bool replayed_ = false;
  std::uint64_t records_ = 0;   // guarded by mu_
  std::size_t unsynced_ = 0;  // records appended since the last fsync
};

}  // namespace ddemos::store
