// Ballot data sources for VC nodes. The paper's prototype keeps each VC
// node's initialization data in PostgreSQL; here the same role is played by
// either an in-memory source (tests, small elections) or a paged disk file
// with a binary-searched sorted index and an LRU page cache
// (DiskBallotSource) whose lookup cost grows with log(n) index pages —
// the effect Figure 5a measures.
#pragma once

#include <atomic>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace ddemos::store {

class BallotDataSource {
 public:
  virtual ~BallotDataSource() = default;
  // Fetches the initialization data for `serial`, or nullopt if unknown.
  virtual std::optional<core::VcBallotInit> find(core::Serial serial) = 0;
  // Number of registered ballots.
  virtual std::size_t size() const = 0;
  // Serial of the idx-th ballot in ascending serial order (the dense
  // instance numbering used by the batched vote-set consensus).
  virtual core::Serial serial_at(std::size_t idx) = 0;
  virtual std::optional<std::size_t> index_of(core::Serial serial) = 0;
  // Cumulative count of cache-missing page reads. The benchmarks charge a
  // modeled storage latency per fault (the host OS page cache would
  // otherwise hide the I/O cost a production-size table incurs).
  virtual std::uint64_t page_faults() const { return 0; }
};

class MemoryBallotSource final : public BallotDataSource {
 public:
  // `ballots` must be sorted by serial (as produced by the EA).
  explicit MemoryBallotSource(std::vector<core::VcBallotInit> ballots);

  std::optional<core::VcBallotInit> find(core::Serial serial) override;
  std::size_t size() const override { return ballots_.size(); }
  core::Serial serial_at(std::size_t idx) override;
  std::optional<std::size_t> index_of(core::Serial serial) override;

 private:
  std::vector<core::VcBallotInit> ballots_;
};

// File layout:
//   [u64 magic][u64 count]
//   index: count * (u64 serial, u64 offset, u32 length), sorted by serial
//   records: encoded VcBallotInit blobs
//
// Concurrency: the source behaves like a small read-only connection pool
// (the paper's PostgreSQL role). `read_handles` independent stripes each
// own a FILE*, a mutex and a slice of the LRU page cache; lookups hash the
// serial onto a stripe, so the shards of a sharded VC node no longer
// serialize behind one lock. Hot index pages may be cached once per stripe
// — bounded duplication traded for lock-free-across-stripes reads.
class DiskBallotSource final : public BallotDataSource {
 public:
  static void build(const std::string& path,
                    const std::vector<core::VcBallotInit>& ballots);
  // Streaming builder for large files: ballots must arrive sorted.
  class Builder {
   public:
    explicit Builder(const std::string& path);
    ~Builder();
    void add(const core::VcBallotInit& ballot);
    void finish();

   private:
    std::string path_;
    std::FILE* records_;
    std::vector<std::tuple<core::Serial, std::uint64_t, std::uint32_t>> index_;
    std::uint64_t offset_ = 0;
    bool finished_ = false;
  };

  // `cache_pages` is the total page-cache budget, split evenly across the
  // `read_handles` stripes (pass the VC shard count for sharded nodes).
  explicit DiskBallotSource(const std::string& path,
                            std::size_t cache_pages = 256,
                            std::size_t read_handles = 1);
  ~DiskBallotSource() override;

  std::optional<core::VcBallotInit> find(core::Serial serial) override;
  std::size_t size() const override { return count_; }
  core::Serial serial_at(std::size_t idx) override;
  std::optional<std::size_t> index_of(core::Serial serial) override;

  std::uint64_t page_reads() const {
    return page_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t page_faults() const override { return page_reads(); }

 private:
  static constexpr std::size_t kPageSize = 4096;
  static constexpr std::size_t kIndexEntry = 20;  // 8 + 8 + 4
  struct IndexEntry {
    core::Serial serial;
    std::uint64_t offset;
    std::uint32_t length;
  };
  // One independent read handle: its own FILE*, lock and LRU cache slice.
  struct Stripe {
    // Owns its FILE* so partially-constructed sources (a later fopen or
    // header read failing) do not leak the handles already opened.
    ~Stripe() {
      if (file) std::fclose(file);
    }
    std::mutex mu;
    std::FILE* file = nullptr;
    // LRU page cache (guarded by mu).
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t,
                       std::pair<std::vector<std::uint8_t>,
                                 std::list<std::uint64_t>::iterator>>
        cache;
    std::size_t cache_pages = 4;
  };

  Stripe& stripe_for(core::Serial serial);
  // _locked helpers require the stripe's mu held (public entry points take
  // it once; find() composes index_of + record read under a single hold).
  std::optional<std::size_t> index_of_locked(Stripe& s, core::Serial serial);
  const std::uint8_t* page(Stripe& s, std::uint64_t page_no);
  IndexEntry index_entry(Stripe& s, std::size_t idx);

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::uint64_t count_ = 0;
  std::uint64_t index_base_ = 16;
  std::uint64_t records_base_ = 0;
  // Atomic: read lock-free by the per-fault cost accounting in VcNode.
  std::atomic<std::uint64_t> page_reads_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
};

}  // namespace ddemos::store
