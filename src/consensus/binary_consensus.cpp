#include "consensus/binary_consensus.hpp"

#include "util/error.hpp"

namespace ddemos::consensus {

namespace {
constexpr std::size_t kClaimThresholdBase = 1;  // f+1 computed at use sites
}

BatchBinaryConsensus::BatchBinaryConsensus(
    const ConsensusConfig& cfg, std::vector<CoinShare> my_coin_shares,
    std::vector<crypto::Hash32> coin_roots, Hooks hooks)
    : cfg_(cfg),
      my_coin_shares_(std::move(my_coin_shares)),
      coin_roots_(std::move(coin_roots)),
      hooks_(std::move(hooks)) {
  if (cfg_.nodes < 3 * cfg_.faults + 1) {
    throw ProtocolError("consensus requires n >= 3f+1");
  }
  if (my_coin_shares_.size() < cfg_.max_rounds ||
      coin_roots_.size() < cfg_.max_rounds) {
    throw ProtocolError("coin deal shorter than max rounds");
  }
  inst_round_.assign(cfg_.instances, 0);
  est_ = Bitmap(cfg_.instances);
  decided_ = Bitmap(cfg_.instances);
  decision_ = Bitmap(cfg_.instances);
  claim_count_[0].assign(cfg_.instances, 0);
  claim_count_[1].assign(cfg_.instances, 0);
  claim_seen_.assign(cfg_.nodes, Bitmap(cfg_.instances));
  done_from_ = Bitmap(cfg_.nodes);
  pending_claims_ = Bitmap(cfg_.instances);
}

BatchBinaryConsensus::Round& BatchBinaryConsensus::round(std::size_t r) {
  auto it = rounds_.find(r);
  if (it != rounds_.end()) return it->second;
  if (r >= cfg_.max_rounds) {
    throw ProtocolError("consensus exceeded max rounds");
  }
  Round& rd = rounds_[r];
  for (int v = 0; v < 2; ++v) {
    rd.bval_count[v].assign(cfg_.instances, 0);
    rd.bval_seen[v].assign(cfg_.nodes, Bitmap(cfg_.instances));
    rd.bval_sent[v] = Bitmap(cfg_.instances);
    rd.bin_values[v] = Bitmap(cfg_.instances);
    rd.aux_count[v].assign(cfg_.instances, 0);
    rd.aux_seen[v].assign(cfg_.nodes, Bitmap(cfg_.instances));
  }
  rd.aux_sent = Bitmap(cfg_.instances);
  rd.aux_value = Bitmap(cfg_.instances);
  rd.resolved = Bitmap(cfg_.instances);
  rd.coin_share_from = Bitmap(cfg_.nodes);
  max_round_seen_ = std::max(max_round_seen_, r);
  return rd;
}

void BatchBinaryConsensus::start(const Bitmap& inputs) {
  if (inputs.size() != cfg_.instances) {
    throw ProtocolError("consensus input size mismatch");
  }
  started_ = true;
  est_ = inputs;
  flushing_ = true;
  for (std::size_t i = 0; i < cfg_.instances; ++i) {
    start_instance_round(i, 0, est_.get(i));
  }
  flushing_ = false;
  flush();
}

void BatchBinaryConsensus::start_instance_round(std::size_t i, std::size_t r,
                                                bool est) {
  inst_round_[i] = static_cast<std::uint8_t>(r);
  est_.set(i, est);
  queue_bval(r, est, i);
  // BVAL/AUX counts may already satisfy thresholds from faster peers.
  handle_bval_threshold(r, i);
  try_resolve(r, i);
}

void BatchBinaryConsensus::queue_bval(std::size_t r, bool v, std::size_t i) {
  Round& rd = round(r);
  if (rd.bval_sent[v].get(i)) return;
  rd.bval_sent[v].set(i);
  auto& p = pending_[r];
  if (p.bval[0].size() == 0) {
    p.bval[0] = Bitmap(cfg_.instances);
    p.bval[1] = Bitmap(cfg_.instances);
    p.aux[0] = Bitmap(cfg_.instances);
    p.aux[1] = Bitmap(cfg_.instances);
  }
  p.bval[v].set(i);
  // Our own BVAL counts once it loops back through multicast-to-self.
}

void BatchBinaryConsensus::handle_bval_threshold(std::size_t r,
                                                 std::size_t i) {
  Round& rd = round(r);
  for (int v = 0; v < 2; ++v) {
    std::size_t c = rd.bval_count[v][i];
    if (c >= cfg_.faults + 1 && !rd.bval_sent[v].get(i)) {
      queue_bval(r, v != 0, i);  // relay
    }
    if (c >= 2 * cfg_.faults + 1 && !rd.bin_values[v].get(i)) {
      rd.bin_values[v].set(i);
      if (!rd.aux_sent.get(i)) {
        rd.aux_sent.set(i);
        rd.aux_value.set(i, v != 0);
        auto& p = pending_[r];
        if (p.bval[0].size() == 0) {
          p.bval[0] = Bitmap(cfg_.instances);
          p.bval[1] = Bitmap(cfg_.instances);
          p.aux[0] = Bitmap(cfg_.instances);
          p.aux[1] = Bitmap(cfg_.instances);
        }
        p.aux[v].set(i);
      }
    }
  }
}

void BatchBinaryConsensus::request_coin(std::size_t r) {
  Round& rd = round(r);
  if (rd.coin_requested) return;
  rd.coin_requested = true;
  Writer w;
  w.u8(static_cast<std::uint8_t>(Type::kCoin));
  my_coin_shares_.at(r).encode(w);
  hooks_.multicast(w.take());
}

void BatchBinaryConsensus::try_resolve(std::size_t r, std::size_t i) {
  // Note: instances keep running rounds after deciding (with est pinned to
  // the decision) so that slower nodes never lose their n-f quorums; the
  // whole batch stops when n-f nodes announce DONE.
  if (inst_round_[i] != r) return;
  Round& rd = round(r);
  if (rd.resolved.get(i) || !rd.aux_sent.get(i)) return;

  bool bin0 = rd.bin_values[0].get(i);
  bool bin1 = rd.bin_values[1].get(i);
  std::size_t a0 = bin0 ? rd.aux_count[0][i] : 0;
  std::size_t a1 = bin1 ? rd.aux_count[1][i] : 0;
  std::size_t quorum = cfg_.nodes - cfg_.faults;
  if (a0 + a1 < quorum) return;

  // We have enough justified AUX values; now we need the round's coin.
  request_coin(r);
  if (!rd.coin.has_value()) return;
  bool coin = *rd.coin;

  rd.resolved.set(i);
  bool next_est;
  if (a0 >= quorum) {
    // vals = {0}
    if (!coin) decide(i, false);
    next_est = false;
  } else if (a1 >= quorum) {
    // vals = {1}
    if (coin) decide(i, true);
    next_est = true;
  } else {
    // vals = {0,1}
    next_est = coin;
  }
  if (decided_.get(i)) next_est = decision_.get(i);
  start_instance_round(i, r + 1, next_est);
}

void BatchBinaryConsensus::try_resolve_round(std::size_t r) {
  for (std::size_t i = 0; i < cfg_.instances; ++i) {
    if (!decided_.get(i) && inst_round_[i] == r) try_resolve(r, i);
  }
}

void BatchBinaryConsensus::decide(std::size_t i, bool v) {
  if (decided_.get(i)) {
    // Agreement violations must never be silent.
    if (decision_.get(i) != v) {
      throw ProtocolError("binary consensus agreement violation");
    }
    return;
  }
  decided_.set(i);
  decision_.set(i, v);
  est_.set(i, v);
  pending_claims_.set(i);
  if (hooks_.on_decide) hooks_.on_decide(i, v);
  check_done();
}

void BatchBinaryConsensus::check_done() {
  if (!done_sent_ && decided_.all()) {
    done_sent_ = true;
    Writer w;
    w.u8(static_cast<std::uint8_t>(Type::kDone));
    decision_.encode(w);
    hooks_.multicast(w.take());
  }
  if (!halted_ && done_sent_ &&
      done_from_.count() >= cfg_.nodes - cfg_.faults) {
    halted_ = true;
    if (hooks_.on_complete) hooks_.on_complete();
  }
}

void BatchBinaryConsensus::flush() {
  if (flushing_) return;
  flushing_ = true;
  for (;;) {
    bool sent = false;
    // Move out pending state first: handlers of our own looped-back
    // messages may queue more.
    if (pending_claims_.any()) {
      Bitmap claims = pending_claims_;
      pending_claims_ = Bitmap(cfg_.instances);
      Writer w;
      w.u8(static_cast<std::uint8_t>(Type::kDecided));
      claims.encode(w);
      Bitmap values(cfg_.instances);
      for (std::size_t i = 0; i < cfg_.instances; ++i) {
        if (claims.get(i)) values.set(i, decision_.get(i));
      }
      values.encode(w);
      hooks_.multicast(w.take());
      sent = true;
    }
    if (!pending_.empty()) {
      auto pending = std::move(pending_);
      pending_.clear();
      for (auto& [r, p] : pending) {
        if (p.bval[0].size() == 0) continue;
        if (p.bval[0].any() || p.bval[1].any()) {
          Writer w;
          w.u8(static_cast<std::uint8_t>(Type::kBval));
          w.varint(r);
          p.bval[0].encode(w);
          p.bval[1].encode(w);
          hooks_.multicast(w.take());
          sent = true;
        }
        if (p.aux[0].any() || p.aux[1].any()) {
          Writer w;
          w.u8(static_cast<std::uint8_t>(Type::kAux));
          w.varint(r);
          p.aux[0].encode(w);
          p.aux[1].encode(w);
          hooks_.multicast(w.take());
          sent = true;
        }
      }
    }
    if (!sent) break;
  }
  flushing_ = false;
}

void BatchBinaryConsensus::on_message(std::size_t from, BytesView msg) {
  if (!started_ || halted_ || from >= cfg_.nodes) return;
  Reader r(msg);
  auto type = static_cast<Type>(r.u8());
  switch (type) {
    case Type::kBval: {
      std::size_t rd_idx = static_cast<std::size_t>(r.varint());
      Bitmap b0 = Bitmap::decode(r);
      Bitmap b1 = Bitmap::decode(r);
      r.expect_done();
      if (b0.size() != cfg_.instances || b1.size() != cfg_.instances) return;
      Round& rd = round(rd_idx);
      for (std::size_t i = 0; i < cfg_.instances; ++i) {
        for (int v = 0; v < 2; ++v) {
          const Bitmap& bm = v ? b1 : b0;
          if (bm.get(i) && !rd.bval_seen[v][from].get(i)) {
            rd.bval_seen[v][from].set(i);
            ++rd.bval_count[v][i];
            handle_bval_threshold(rd_idx, i);
            try_resolve(rd_idx, i);
          }
        }
      }
      break;
    }
    case Type::kAux: {
      std::size_t rd_idx = static_cast<std::size_t>(r.varint());
      Bitmap a0 = Bitmap::decode(r);
      Bitmap a1 = Bitmap::decode(r);
      r.expect_done();
      if (a0.size() != cfg_.instances || a1.size() != cfg_.instances) return;
      Round& rd = round(rd_idx);
      for (std::size_t i = 0; i < cfg_.instances; ++i) {
        for (int v = 0; v < 2; ++v) {
          const Bitmap& am = v ? a1 : a0;
          // One AUX per sender per instance: ignore double-speak.
          if (am.get(i) && !rd.aux_seen[0][from].get(i) &&
              !rd.aux_seen[1][from].get(i)) {
            rd.aux_seen[v][from].set(i);
            ++rd.aux_count[v][i];
            try_resolve(rd_idx, i);
          }
        }
      }
      break;
    }
    case Type::kCoin: {
      CoinShare cs = CoinShare::decode(r);
      r.expect_done();
      std::size_t rd_idx = cs.round;
      if (rd_idx >= cfg_.max_rounds) return;
      Round& rd = round(rd_idx);
      if (rd.coin.has_value() || rd.coin_share_from.get(from)) break;
      if (!verify_coin_share(cs, from, cfg_.nodes, coin_roots_[rd_idx])) {
        break;  // Byzantine share: reject
      }
      rd.coin_share_from.set(from);
      rd.coin_shares.push_back(cs.share);
      if (rd.coin_shares.size() >= cfg_.faults + 1) {
        rd.coin = coin_value(rd.coin_shares, cfg_.faults + 1);
        try_resolve_round(rd_idx);
      }
      break;
    }
    case Type::kDecided: {
      Bitmap claims = Bitmap::decode(r);
      Bitmap values = Bitmap::decode(r);
      r.expect_done();
      if (claims.size() != cfg_.instances || values.size() != cfg_.instances) {
        return;
      }
      for (std::size_t i = 0; i < cfg_.instances; ++i) {
        if (!claims.get(i) || claim_seen_[from].get(i)) continue;
        claim_seen_[from].set(i);
        bool v = values.get(i);
        ++claim_count_[v ? 1 : 0][i];
        if (claim_count_[v ? 1 : 0][i] >= cfg_.faults + kClaimThresholdBase) {
          decide(i, v);
        }
      }
      break;
    }
    case Type::kDone: {
      Bitmap values = Bitmap::decode(r);
      r.expect_done();
      if (values.size() != cfg_.instances) return;
      if (!done_from_.get(from)) {
        done_from_.set(from);
        // A DONE is also a full DECIDED claim.
        for (std::size_t i = 0; i < cfg_.instances; ++i) {
          if (claim_seen_[from].get(i)) continue;
          claim_seen_[from].set(i);
          bool v = values.get(i);
          ++claim_count_[v ? 1 : 0][i];
          if (claim_count_[v ? 1 : 0][i] >= cfg_.faults + 1) decide(i, v);
        }
        check_done();
      }
      break;
    }
    default:
      return;
  }
  flush();
}

}  // namespace ddemos::consensus
