#include "consensus/coin.hpp"

#include "crypto/ec.hpp"
#include "crypto/rng.hpp"
#include "util/error.hpp"

namespace ddemos::consensus {

void CoinShare::encode(Writer& w) const {
  w.u32(round);
  w.u32(share.x);
  w.raw(share.y.to_bytes_be());
  w.vec(path, [](Writer& ww, const crypto::Hash32& h) {
    ww.raw(crypto::hash_view(h));
  });
}

CoinShare CoinShare::decode(Reader& r) {
  CoinShare cs;
  cs.round = r.u32();
  cs.share.x = r.u32();
  cs.share.y = crypto::Fn::from_bytes_mod(r.raw(32));
  cs.path = r.vec<crypto::Hash32>([](Reader& rr) {
    Bytes b = rr.raw(32);
    crypto::Hash32 h;
    std::copy(b.begin(), b.end(), h.begin());
    return h;
  });
  return cs;
}

crypto::Hash32 coin_share_leaf(const crypto::Share& share) {
  Writer w;
  w.u32(share.x);
  w.raw(share.y.to_bytes_be());
  return crypto::MerkleTree::leaf_hash(w.data());
}

CoinDeal deal_coins(std::size_t nodes, std::size_t threshold,
                    std::size_t rounds, crypto::Rng& rng) {
  CoinDeal deal;
  deal.node_shares.resize(nodes);
  for (auto& v : deal.node_shares) v.reserve(rounds);
  deal.round_roots.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    crypto::Fn coin = crypto::random_scalar(rng);
    auto shares = crypto::shamir_deal(coin, threshold, nodes, rng);
    std::vector<crypto::Hash32> leaves;
    leaves.reserve(nodes);
    for (const auto& s : shares) leaves.push_back(coin_share_leaf(s));
    crypto::MerkleTree tree(std::move(leaves));
    deal.round_roots.push_back(tree.root());
    for (std::size_t i = 0; i < nodes; ++i) {
      CoinShare cs;
      cs.round = static_cast<std::uint32_t>(r);
      cs.share = shares[i];
      cs.path = tree.path(i);
      deal.node_shares[i].push_back(std::move(cs));
    }
  }
  return deal;
}

bool verify_coin_share(const CoinShare& cs, std::size_t sender_index,
                       std::size_t nodes, const crypto::Hash32& root) {
  if (cs.share.x != sender_index + 1 || sender_index >= nodes) return false;
  return crypto::MerkleTree::verify(root, coin_share_leaf(cs.share),
                                    sender_index, cs.path);
}

bool coin_value(std::span<const crypto::Share> shares, std::size_t threshold) {
  crypto::Fn v = crypto::shamir_reconstruct(shares, threshold);
  return (v.to_bytes_be()[31] & 1) != 0;
}

}  // namespace ddemos::consensus
