#include "consensus/rbc.hpp"

#include "util/error.hpp"

namespace ddemos::consensus {

RbcEngine::RbcEngine(std::size_t n, std::size_t f, std::size_t self_index,
                     Hooks hooks)
    : n_(n), f_(f), self_(self_index), hooks_(std::move(hooks)) {
  if (n_ < 3 * f_ + 1) throw ProtocolError("RBC requires n >= 3f+1");
}

Bytes RbcEngine::make_msg(Type t, std::size_t origin, std::uint64_t tag,
                          const Bytes& payload) const {
  Writer w;
  w.reserve(payload.size() + 24);  // header + varints + length prefix
  w.u8(static_cast<std::uint8_t>(t));
  w.varint(origin);
  w.varint(tag);
  w.bytes(payload);
  return w.take();
}

void RbcEngine::broadcast(std::uint64_t tag, Bytes payload) {
  hooks_.multicast(make_msg(Type::kSend, self_, tag, payload));
}

void RbcEngine::on_message(std::size_t from_index, BytesView msg) {
  Reader r(msg);
  auto type = static_cast<Type>(r.u8());
  std::size_t origin = static_cast<std::size_t>(r.varint());
  std::uint64_t tag = r.varint();
  Bytes payload = r.bytes();
  r.expect_done();
  if (origin >= n_ || from_index >= n_) return;

  Slot& slot = slots_[{origin, tag}];
  crypto::Hash32 h = crypto::sha256(payload);

  switch (type) {
    case Type::kSend:
      // Only the origin itself may initiate.
      if (from_index != origin) return;
      slot.bodies.emplace(h, std::move(payload));
      if (!slot.echoed) {
        slot.echoed = true;
        hooks_.multicast(make_msg(Type::kEcho, origin, tag, slot.bodies[h]));
      }
      break;
    case Type::kEcho:
      slot.bodies.emplace(h, std::move(payload));
      slot.echoes[h].insert(from_index);
      break;
    case Type::kReady:
      slot.bodies.emplace(h, std::move(payload));
      slot.readies[h].insert(from_index);
      break;
    default:
      return;
  }
  maybe_progress(origin, tag, slot);
}

void RbcEngine::maybe_progress(std::size_t origin, std::uint64_t tag,
                               Slot& slot) {
  // Echo quorum: strictly more than (n+f)/2 distinct echoers.
  std::size_t echo_quorum = (n_ + f_) / 2 + 1;
  for (auto& [h, senders] : slot.echoes) {
    if (!slot.readied && senders.size() >= echo_quorum) {
      slot.readied = true;
      hooks_.multicast(make_msg(Type::kReady, origin, tag, slot.bodies[h]));
    }
  }
  // Ready amplification at f+1, delivery at 2f+1.
  for (auto& [h, senders] : slot.readies) {
    if (!slot.readied && senders.size() >= f_ + 1) {
      slot.readied = true;
      hooks_.multicast(make_msg(Type::kReady, origin, tag, slot.bodies[h]));
    }
    if (!slot.delivered && senders.size() >= 2 * f_ + 1) {
      slot.delivered = true;
      ++delivered_;
      hooks_.deliver(origin, tag, slot.bodies[h]);
    }
  }
}

}  // namespace ddemos::consensus
