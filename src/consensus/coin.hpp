// Dealer-based common coin for the randomized binary consensus. The EA
// (trusted at setup, like every other piece of initialization data in
// D-DEMOS) deals a Shamir-shared random coin per consensus round with
// threshold f+1: the adversary's f shares reveal nothing until some honest
// node starts the round and discloses its share, and f+1 shares from any
// mix of nodes reconstruct the same value. Shares are committed with a
// Merkle root per round so bogus shares from Byzantine nodes are rejected.
#pragma once

#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/shamir.hpp"
#include "util/codec.hpp"

namespace ddemos::consensus {

struct CoinShare {
  std::uint32_t round = 0;
  crypto::Share share;                // this node's share of coin[round]
  std::vector<crypto::Hash32> path;   // Merkle path for the share

  void encode(Writer& w) const;
  static CoinShare decode(Reader& r);
};

// Per-node private coin material plus the public per-round roots.
struct CoinDeal {
  // my_shares[node][round]
  std::vector<std::vector<CoinShare>> node_shares;
  std::vector<crypto::Hash32> round_roots;  // one per round
};

// Leaf for node index `x-1` of round r commits to the share value.
crypto::Hash32 coin_share_leaf(const crypto::Share& share);

CoinDeal deal_coins(std::size_t nodes, std::size_t threshold,
                    std::size_t rounds, crypto::Rng& rng);

// Verifies a share received from `sender_index` (0-based) against the root.
bool verify_coin_share(const CoinShare& cs, std::size_t sender_index,
                       std::size_t nodes, const crypto::Hash32& root);

// The coin value: low bit of the reconstructed scalar.
bool coin_value(std::span<const crypto::Share> shares, std::size_t threshold);

}  // namespace ddemos::consensus
