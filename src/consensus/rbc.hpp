// Bracha reliable broadcast: SEND / ECHO / READY with the classic
// thresholds (echo quorum > (n+f)/2, ready amplification at f+1, delivery
// at 2f+1). Guarantees that Byzantine senders cannot equivocate: if any
// two honest nodes deliver a payload for the same (origin, tag), the
// payloads are identical, and if any honest node delivers, all honest
// nodes eventually deliver.
//
// The engine is transport-agnostic: the host node feeds in received
// messages and supplies a multicast hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "crypto/sha256.hpp"
#include "util/codec.hpp"

namespace ddemos::consensus {

class RbcEngine {
 public:
  struct Hooks {
    // Sends `msg` to every peer including self.
    std::function<void(Bytes msg)> multicast;
    std::function<void(std::size_t origin, std::uint64_t tag,
                       const Bytes& payload)>
        deliver;
  };

  RbcEngine(std::size_t n, std::size_t f, std::size_t self_index,
            Hooks hooks);

  // Reliably broadcast `payload` under `tag` (unique per origin).
  void broadcast(std::uint64_t tag, Bytes payload);

  // Feed a received RBC message (as produced by this engine) from peer
  // `from_index`. Malformed messages throw CodecError; messages violating
  // the protocol are ignored.
  void on_message(std::size_t from_index, BytesView msg);

  std::size_t delivered_count() const { return delivered_; }

 private:
  enum class Type : std::uint8_t { kSend = 1, kEcho = 2, kReady = 3 };

  struct Slot {
    // Payloads are tracked by hash; the body is stored on first sight.
    std::map<crypto::Hash32, Bytes> bodies;
    std::map<crypto::Hash32, std::set<std::size_t>> echoes;
    std::map<crypto::Hash32, std::set<std::size_t>> readies;
    bool echoed = false;
    bool readied = false;
    bool delivered = false;
  };

  void maybe_progress(std::size_t origin, std::uint64_t tag, Slot& slot);
  Bytes make_msg(Type t, std::size_t origin, std::uint64_t tag,
                 const Bytes& payload) const;

  std::size_t n_, f_, self_;
  Hooks hooks_;
  std::map<std::pair<std::size_t, std::uint64_t>, Slot> slots_;
  std::size_t delivered_ = 0;
};

}  // namespace ddemos::consensus
