// Batched asynchronous binary Byzantine consensus, one instance per
// registered ballot, used by the Vote Set Consensus step (paper Section
// III-E step 3). The paper's prototype runs Bracha's randomized binary
// consensus "in batches of arbitrary size" for network efficiency; we batch
// the same way and use the binary-value-broadcast consensus of
// Mostefaoui-Moumen-Raynal with a dealer-based common coin (see coin.hpp).
// BV-broadcast gives the justification property Bracha obtains with message
// validation: a value enters bin_values only if some honest node proposed
// it, so validity holds against actively lying Byzantine nodes, and the
// common coin gives expected-constant-round termination. DESIGN.md records
// this substitution.
//
// Per round and instance:
//   1. BV-broadcast(est): relay a value at f+1 distinct BVAL senders,
//      accept into bin_values at 2f+1.
//   2. Broadcast AUX(w) for the first w entering bin_values.
//   3. Wait for n-f AUX messages with values inside bin_values. If they are
//      a singleton {w}: decide w when w equals the round's coin, else
//      est := w. If both values: est := coin.
// Decisions propagate with DECIDED claims (adopted at f+1, which implies an
// honest decider); a node halts after it decided every instance and has
// seen n-f DONE announcements.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "consensus/coin.hpp"
#include "util/bitmap.hpp"

namespace ddemos::consensus {

struct ConsensusConfig {
  std::size_t nodes = 0;
  std::size_t faults = 0;       // f, with nodes >= 3f+1
  std::size_t instances = 0;    // batch width
  std::size_t self_index = 0;
  std::size_t max_rounds = 64;  // safety valve; tests never get near it
};

class BatchBinaryConsensus {
 public:
  struct Hooks {
    // Sends to every consensus peer including self.
    std::function<void(Bytes msg)> multicast;
    std::function<void(std::size_t instance, bool value)> on_decide;
    // Fired once: all instances decided locally and n-f peers are done.
    std::function<void()> on_complete;
  };

  BatchBinaryConsensus(const ConsensusConfig& cfg,
                       std::vector<CoinShare> my_coin_shares,
                       std::vector<crypto::Hash32> coin_roots, Hooks hooks);

  void start(const Bitmap& inputs);
  void on_message(std::size_t from_index, BytesView msg);

  bool complete() const { return halted_; }
  bool decided(std::size_t instance) const {
    return decided_.get(instance);
  }
  bool decision(std::size_t instance) const {
    return decision_.get(instance);
  }
  const Bitmap& decisions() const { return decision_; }
  std::size_t decided_count() const { return decided_.count(); }
  std::size_t current_max_round() const { return max_round_seen_; }

 private:
  enum class Type : std::uint8_t {
    kBval = 1,
    kAux = 2,
    kCoin = 3,
    kDecided = 4,
    kDone = 5,
  };

  struct Round {
    // bval_count[v][i]: distinct senders of BVAL(v) for instance i.
    std::vector<std::uint8_t> bval_count[2];
    // Per-sender dedup masks.
    std::vector<Bitmap> bval_seen[2];
    Bitmap bval_sent[2];
    Bitmap bin_values[2];
    Bitmap aux_sent;
    Bitmap aux_value;  // value announced in our AUX
    std::vector<std::uint8_t> aux_count[2];
    std::vector<Bitmap> aux_seen[2];
    Bitmap resolved;  // instance finished this round (moved on / decided)
    // Coin state.
    bool coin_requested = false;
    std::optional<bool> coin;
    std::vector<crypto::Share> coin_shares;
    Bitmap coin_share_from;  // senders, size = nodes
  };

  Round& round(std::size_t r);
  void start_instance_round(std::size_t i, std::size_t r, bool est);
  void queue_bval(std::size_t r, bool v, std::size_t i);
  void handle_bval_threshold(std::size_t r, std::size_t i);
  void try_resolve(std::size_t r, std::size_t i);
  void try_resolve_round(std::size_t r);
  void request_coin(std::size_t r);
  void decide(std::size_t i, bool v);
  void check_done();
  void flush();

  ConsensusConfig cfg_;
  std::vector<CoinShare> my_coin_shares_;
  std::vector<crypto::Hash32> coin_roots_;
  Hooks hooks_;

  std::vector<std::uint8_t> inst_round_;  // current round per instance
  Bitmap est_;
  Bitmap decided_;
  Bitmap decision_;
  std::vector<std::map<std::size_t, bool>> pending_est_;  // round -> est (deferred)

  std::map<std::size_t, Round> rounds_;
  // DECIDED claim tracking (round-independent).
  std::vector<std::uint8_t> claim_count_[2];
  std::vector<Bitmap> claim_seen_;  // per sender: which instances claimed
  Bitmap done_from_;                // senders that announced DONE
  bool done_sent_ = false;
  bool halted_ = false;
  bool started_ = false;
  std::size_t max_round_seen_ = 0;

  // Outgoing batching: pending BVAL/AUX bits per round, flushed per event.
  struct PendingRound {
    Bitmap bval[2];
    Bitmap aux[2];
  };
  std::map<std::size_t, PendingRound> pending_;
  Bitmap pending_claims_;
  bool flushing_ = false;
};

}  // namespace ddemos::consensus
