// Trustee node (paper Section III-H). After the election it polls the BB
// subsystem until the cast information is published (majority read), then
// for every ballot submits: ZK response shares for the used part, opening
// shares for the unused part (or both parts when not voted), and finally
// its share of the opening of the homomorphic tally total.
//
// Invalid ballots (per the paper: both parts voted, or more than the
// allowed number of commitments marked voted) are discarded.
#pragma once

#include <map>
#include <optional>

#include "core/messages.hpp"
#include "sim/runtime.hpp"

namespace ddemos::trustee {

struct TrusteeOptions {
  sim::Duration poll_interval_us = 200'000;
};

class TrusteeNode final : public sim::Process {
 public:
  using Options = TrusteeOptions;

  TrusteeNode(core::TrusteeInit init, std::vector<sim::NodeId> bb_ids,
              Options options = {});

  void on_start() override;
  void on_message(sim::NodeId from, const net::Buffer& payload) override;
  void on_timer(std::uint64_t token) override;

  bool submitted() const { return submitted_; }

 private:
  void poll_bbs();
  void maybe_act();
  void submit_all(BytesView cast_info_payload);

  core::TrusteeInit init_;
  std::vector<sim::NodeId> bb_ids_;
  Options opt_;
  std::uint64_t poll_timer_ = 0;
  std::uint64_t request_seq_ = 0;
  // Majority read state: per request id, payload -> count.
  std::map<Bytes, std::size_t> reply_counts_;
  std::uint64_t current_request_ = 0;
  bool submitted_ = false;
};

}  // namespace ddemos::trustee
