#include "trustee/trustee_node.hpp"

#include <algorithm>

#include "crypto/schnorr.hpp"
#include "util/error.hpp"

namespace ddemos::trustee {

using namespace core;
using sim::NodeId;

TrusteeNode::TrusteeNode(TrusteeInit init, std::vector<NodeId> bb_ids,
                         Options options)
    : init_(std::move(init)), bb_ids_(std::move(bb_ids)), opt_(options) {}

void TrusteeNode::on_start() {
  poll_timer_ = ctx().set_timer(opt_.poll_interval_us);
}

void TrusteeNode::on_timer(std::uint64_t token) {
  if (token != poll_timer_ || submitted_) return;
  poll_bbs();
  poll_timer_ = ctx().set_timer(opt_.poll_interval_us);
}

void TrusteeNode::poll_bbs() {
  current_request_ = ++request_seq_;
  reply_counts_.clear();
  BbReadMsg m;
  m.section = "cast-info";
  m.request_id = current_request_;
  net::Buffer msg = m.encode();  // one allocation for all BB recipients
  for (NodeId bb : bb_ids_) ctx().send(bb, msg);
}

void TrusteeNode::on_message(NodeId, const net::Buffer& payload) {
  if (submitted_) return;
  try {
    Reader r(payload.view());
    if (static_cast<MsgType>(r.u8()) != MsgType::kBbReadReply) return;
    BbReadReplyMsg m = BbReadReplyMsg::decode(r);
    if (m.request_id != current_request_ || !m.available) return;
    // Majority read: trust a payload repeated by fb+1 BB nodes.
    std::size_t count = ++reply_counts_[m.payload];
    if (count >= init_.params.f_bb + 1) {
      submit_all(m.payload);
      submitted_ = true;
    }
  } catch (const CodecError&) {
  }
}

void TrusteeNode::submit_all(BytesView cast_info_payload) {
  Reader r(cast_info_payload);
  struct CastInfo {
    Serial serial;
    std::uint8_t part;
    std::uint32_t line;
  };
  auto cast = r.vec<CastInfo>([](Reader& rr) {
    CastInfo ci;
    ci.serial = rr.u64();
    ci.part = rr.u8();
    ci.line = rr.u32();
    return ci;
  });
  Bytes coins = r.bytes();
  crypto::Fn challenge = decode_scalar(r);

  // Index cast info by serial; discard invalid duplicates (a serial may be
  // cast at most once; the VC subsystem guarantees it, a malicious BB reply
  // would be caught here).
  std::map<Serial, CastInfo> by_serial;
  for (const CastInfo& ci : cast) {
    if (by_serial.count(ci.serial)) return;  // invalid cast-info: abort
    if (ci.part >= kNumParts) return;
    by_serial[ci.serial] = ci;
  }

  const std::size_t m = init_.params.m();
  // Tally accumulation: share of (count, randomness) per option.
  std::vector<crypto::PedersenShare> tally_m(m), tally_r(m);
  bool tally_init = false;

  for (const TrusteeBallotInit& ballot : init_.ballots) {
    TrusteeBallotMsg msg;
    msg.serial = ballot.serial;
    msg.trustee_index = static_cast<std::uint32_t>(init_.node_index);
    auto it = by_serial.find(ballot.serial);
    msg.voted = it != by_serial.end() ? 1 : 0;
    msg.used_part = msg.voted ? it->second.part : 0;

    for (std::size_t part = 0; part < kNumParts; ++part) {
      const auto& lines = ballot.parts[part];
      TrusteePartData& pd = msg.parts[part];
      bool used = msg.voted && msg.used_part == part;
      if (used) {
        if (it->second.line >= lines.size()) return;  // malformed cast info
        // ZK responses for every line of the used part, evaluated at the
        // voter-coin challenge.
        for (const TrusteeLineInit& line : lines) {
          std::vector<std::array<crypto::PedersenShare, 4>> lresp;
          for (std::size_t j = 0; j < line.zk_bits.size(); ++j) {
            const auto& s = line.zk_bits[j];
            std::array<crypto::PedersenShare, 4> resp;
            for (std::size_t k = 0; k < 4; ++k) {
              // share(u) + c * share(v) is a share of u + c*v.
              resp[k] = crypto::PedersenShare{
                  s[2 * k].x, s[2 * k].f + challenge * s[2 * k + 1].f,
                  s[2 * k].g + challenge * s[2 * k + 1].g};
            }
            lresp.push_back(resp);
          }
          pd.zk_bits.push_back(std::move(lresp));
          pd.zk_sum.push_back(crypto::PedersenShare{
              line.sum_u.x, line.sum_u.f + challenge * line.sum_v.f,
              line.sum_u.g + challenge * line.sum_v.g});
        }
        // The cast line's openings accumulate into the tally total.
        const TrusteeLineInit& cast_line = lines[it->second.line];
        for (std::size_t j = 0; j < m; ++j) {
          if (!tally_init) {
            tally_m[j] = cast_line.open_m[j];
            tally_r[j] = cast_line.open_r[j];
          } else {
            tally_m[j] =
                crypto::pedersen_share_add(tally_m[j], cast_line.open_m[j]);
            tally_r[j] =
                crypto::pedersen_share_add(tally_r[j], cast_line.open_r[j]);
          }
        }
        if (!pd.zk_bits.empty()) {
          // tally_init flips only after the per-option loop above ran once.
        }
      } else {
        // Unused part (or both parts of an unvoted ballot): full openings.
        for (const TrusteeLineInit& line : lines) {
          std::vector<std::pair<crypto::PedersenShare, crypto::PedersenShare>>
              lopen;
          for (std::size_t j = 0; j < line.open_m.size(); ++j) {
            lopen.emplace_back(line.open_m[j], line.open_r[j]);
          }
          pd.openings.push_back(std::move(lopen));
        }
      }
      if (used) tally_init = true;
    }
    msg.signature = crypto::schnorr_sign(
        init_.signing_key, msg.signing_bytes(init_.params.election_id));
    net::Buffer encoded = msg.encode();
    for (NodeId bb : bb_ids_) ctx().send(bb, encoded);
  }

  if (tally_init) {
    TrusteeTallyMsg tally;
    tally.trustee_index = static_cast<std::uint32_t>(init_.node_index);
    for (std::size_t j = 0; j < m; ++j) {
      tally.totals.emplace_back(tally_m[j], tally_r[j]);
    }
    tally.signature = crypto::schnorr_sign(
        init_.signing_key, tally.signing_bytes(init_.params.election_id));
    net::Buffer encoded = tally.encode();
    for (NodeId bb : bb_ids_) ctx().send(bb, encoded);
  }
  (void)coins;
}

}  // namespace ddemos::trustee
