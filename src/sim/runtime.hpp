// Runtime-neutral process model. Protocol code (VC nodes, BB nodes,
// trustees, voters) is written as event-driven state machines against these
// interfaces and can be hosted either by the deterministic discrete-event
// simulator (sim/sim.hpp) or by the real multi-threaded transport
// (net/thread_net.hpp). This mirrors the paper's asynchronous communications
// stack: connection semantics are hidden, the upper layers are message
// oriented.
//
// Messages travel as net::Buffer handles: the payload is allocated once at
// the sender (usually by Writer::take() via the implicit Bytes -> Buffer
// conversion) and shared by reference count through queues, multicasts and
// duplicate deliveries. Handlers read it through a BytesView and must copy
// any bytes they want to keep beyond the handler invocation only if they
// drop the Buffer handle itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/buffer.hpp"
#include "util/bytes.hpp"

namespace ddemos::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffff;

// Virtual (or real) time in microseconds.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

class Context {
 public:
  virtual ~Context() = default;
  // Asynchronous, unordered, unreliable message send (delivery semantics
  // depend on the hosting runtime's link model). The Buffer handle is
  // cheap to copy: multicast loops send the same Buffer to every
  // recipient and pay for the payload allocation exactly once.
  virtual void send(NodeId to, net::Buffer payload) = 0;
  // One-shot timer; returns a token passed back to Process::on_timer.
  virtual std::uint64_t set_timer(Duration after) = 0;
  virtual TimePoint now() const = 0;
  virtual NodeId self() const = 0;
  // Account `cpu` microseconds of modeled processing cost to this node.
  // The simulator serializes a node's handlers behind this busy time; the
  // threaded runtime ignores it (real CPU time is real there).
  virtual void charge(Duration cpu) = 0;
};

class Process {
 public:
  virtual ~Process() = default;
  void bind(Context* ctx) { ctx_ = ctx; }

  virtual void on_start() {}
  virtual void on_message(NodeId from, const net::Buffer& payload) = 0;
  virtual void on_timer(std::uint64_t /*token*/) {}

 protected:
  Context& ctx() { return *ctx_; }
  const Context& ctx() const { return *ctx_; }

 private:
  Context* ctx_ = nullptr;
};

// Common node-hosting surface implemented by both runtimes
// (sim::Simulation and net::ThreadNet). Election builders and tests are
// written against this interface so the exact same protocol topology can be
// hosted on either backend without parallel code paths; runtime-specific
// concerns (link models, crash injection, virtual-time stepping, wall-clock
// waiting) stay on the concrete classes.
class RuntimeHost {
 public:
  virtual ~RuntimeHost() = default;
  virtual NodeId add_node(std::unique_ptr<Process> proc, std::string name) = 0;
  virtual Process& process(NodeId id) = 0;
  virtual const std::string& node_name(NodeId id) const = 0;
  virtual std::size_t node_count() const = 0;
  // Delivers on_start to all nodes (and, for ThreadNet, spawns workers).
  virtual void start() = 0;
};

}  // namespace ddemos::sim
