// Runtime-neutral process model. Protocol code (VC nodes, BB nodes,
// trustees, voters) is written as event-driven state machines against these
// interfaces and can be hosted either by the deterministic discrete-event
// simulator (sim/sim.hpp) or by the real multi-threaded transport
// (net/thread_net.hpp). This mirrors the paper's asynchronous communications
// stack: connection semantics are hidden, the upper layers are message
// oriented.
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace ddemos::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffff;

// Virtual (or real) time in microseconds.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

class Context {
 public:
  virtual ~Context() = default;
  // Asynchronous, unordered, unreliable message send (delivery semantics
  // depend on the hosting runtime's link model).
  virtual void send(NodeId to, Bytes payload) = 0;
  // One-shot timer; returns a token passed back to Process::on_timer.
  virtual std::uint64_t set_timer(Duration after) = 0;
  virtual TimePoint now() const = 0;
  virtual NodeId self() const = 0;
  // Account `cpu` microseconds of modeled processing cost to this node.
  // The simulator serializes a node's handlers behind this busy time; the
  // threaded runtime ignores it (real CPU time is real there).
  virtual void charge(Duration cpu) = 0;
};

class Process {
 public:
  virtual ~Process() = default;
  void bind(Context* ctx) { ctx_ = ctx; }

  virtual void on_start() {}
  virtual void on_message(NodeId from, BytesView payload) = 0;
  virtual void on_timer(std::uint64_t /*token*/) {}

 protected:
  Context& ctx() { return *ctx_; }
  const Context& ctx() const { return *ctx_; }

 private:
  Context* ctx_ = nullptr;
};

}  // namespace ddemos::sim
