// Runtime-neutral process model. Protocol code (VC nodes, BB nodes,
// trustees, voters) is written as event-driven state machines against these
// interfaces and can be hosted either by the deterministic discrete-event
// simulator (sim/sim.hpp) or by the real multi-threaded transport
// (net/thread_net.hpp). This mirrors the paper's asynchronous communications
// stack: connection semantics are hidden, the upper layers are message
// oriented.
//
// Messages travel as net::Buffer handles: the payload is allocated once at
// the sender (usually by Writer::take() via the implicit Bytes -> Buffer
// conversion) and shared by reference count through queues, multicasts and
// duplicate deliveries. Handlers read it through a BytesView and must copy
// any bytes they want to keep beyond the handler invocation only if they
// drop the Buffer handle itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer.hpp"
#include "util/bytes.hpp"

namespace ddemos::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffff;

// Virtual (or real) time in microseconds.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

class Context {
 public:
  virtual ~Context() = default;
  // Asynchronous, unordered, unreliable message send (delivery semantics
  // depend on the hosting runtime's link model). The Buffer handle is
  // cheap to copy: multicast loops send the same Buffer to every
  // recipient and pay for the payload allocation exactly once.
  virtual void send(NodeId to, net::Buffer payload) = 0;
  // Reliable loopback to this node itself. Unlike send(self(), ...) this
  // never traverses a link model — no loss, duplication, jitter or modeled
  // latency — because it represents intra-node coordination (e.g. the VC
  // shard fan-in barrier), not network traffic. Shard routing still
  // applies: a ShardedProcess receives it on whatever shard its shard_of
  // maps the payload to.
  virtual void send_self(net::Buffer payload) { send(self(), std::move(payload)); }
  // One-shot timer; returns a token passed back to Process::on_timer.
  // For a ShardedProcess, timers always fire on shard 0 (the control
  // shard) regardless of which shard armed them.
  virtual std::uint64_t set_timer(Duration after) = 0;
  virtual TimePoint now() const = 0;
  virtual NodeId self() const = 0;
  // Account `cpu` microseconds of modeled processing cost to this node.
  // The simulator serializes a node's handlers behind this busy time (per
  // shard for a ShardedProcess); the threaded runtime ignores it (real
  // CPU time is real there).
  virtual void charge(Duration cpu) = 0;
};

class Process {
 public:
  virtual ~Process() = default;
  void bind(Context* ctx) { ctx_ = ctx; }

  virtual void on_start() {}
  virtual void on_message(NodeId from, const net::Buffer& payload) = 0;
  virtual void on_timer(std::uint64_t /*token*/) {}

 protected:
  Context& ctx() { return *ctx_; }
  const Context& ctx() const { return *ctx_; }

 private:
  Context* ctx_ = nullptr;
};

// A Process whose message handling is partitioned into independent shards.
// Both runtimes give each shard its own serial execution context: the
// simulator models one virtual processor per shard (per-shard busy time),
// and ThreadNet runs one worker thread per shard with its own mailbox.
// Shard-affine dispatch is the concurrency contract: two messages that map
// to the same shard never run concurrently, messages on different shards
// may — so a handler may freely mutate state owned by its shard and must
// synchronize (or message) for anything else.
//
// Rules the runtimes rely on:
//  * shard_of is called from *sender* threads on ThreadNet, before the
//    receiving handler runs: it must be thread-safe, must not block, must
//    not touch mutable process state, and must not throw (return 0 for
//    anything unroutable — shard 0 is the control shard).
//  * on_start and all timers run on shard 0.
class ShardedProcess : public Process {
 public:
  // Number of shards; fixed for the life of the process, >= 1.
  virtual std::size_t shard_count() const = 0;
  // Maps an inbound message to the shard that must handle it.
  virtual std::size_t shard_of(NodeId from,
                               const net::Buffer& payload) const = 0;
};

// Real-clock backends (ThreadNet, TcpNet) arm timers against
// steady_clock. Far-future timers (vote-collection benches set election
// end to "never") would overflow the clock's nanosecond epoch, and a
// negative delay has no meaning on a clock that cannot rewind — so every
// real-clock timer delay passes through this shared clamp: floor at zero,
// cap at 30 days (which is "never" for any wall-clock run).
inline constexpr Duration kMaxRealTimerDelay = 30ll * 24 * 3600 * 1'000'000;
constexpr Duration clamp_real_timer_delay(Duration after) {
  if (after < 0) return 0;
  return after < kMaxRealTimerDelay ? after : kMaxRealTimerDelay;
}

// Options for RuntimeHost::run_to_quiescence. One struct serves both
// backends; each consumes the knobs that apply to it.
struct RunOptions {
  // Simulator: maximum events processed before the run is declared stuck
  // (throws ProtocolError carrying the processed count and virtual time).
  std::size_t max_events = 50'000'000;
  // ThreadNet: wall-clock cap on the completion wait.
  Duration wall_timeout_us = 60'000'000;
  // Progress hook for phase observation: the simulator invokes it every
  // `probe_interval` events and at quiescence; ThreadNet invokes it each
  // time a worker signals progress. Never part of the completion decision.
  std::function<void()> probe;
  std::size_t probe_interval = 1024;
};

// Common node-hosting surface implemented by both runtimes
// (sim::Simulation and net::ThreadNet). Election builders and tests are
// written against this interface so the exact same protocol topology can be
// hosted on either backend without parallel code paths; runtime-specific
// concerns (link models, crash injection, virtual-time stepping) stay on
// the concrete classes.
class RuntimeHost {
 public:
  virtual ~RuntimeHost() = default;
  virtual NodeId add_node(std::unique_ptr<Process> proc, std::string name) = 0;
  virtual Process& process(NodeId id) = 0;
  virtual const std::string& node_name(NodeId id) const = 0;
  virtual std::size_t node_count() const = 0;
  // Delivers on_start to all nodes (and, for ThreadNet, spawns workers).
  virtual void start() = 0;
  // Quiesces the backend: ThreadNet signals and joins its workers (safe to
  // call repeatedly); the simulator needs no teardown.
  virtual void stop() {}
  // Current time: virtual microseconds on the simulator, wall-clock
  // microseconds since start() on ThreadNet.
  virtual TimePoint now() const = 0;
  // Completion wait, replacing both bare run_until_idle calls and
  // sleep-and-poll loops. Starts the backend if needed, then runs until
  // `done()` holds — the simulator additionally runs to natural quiescence
  // (empty event queue) and accepts a null predicate; ThreadNet requires
  // one and blocks on a condition variable that workers signal after every
  // handler, re-evaluating `done` on each wakeup. Returns whether the
  // completion condition was met within the budget (the simulator throws
  // on event-budget exhaustion; ThreadNet returns false on timeout).
  virtual bool run_to_quiescence(const std::function<bool()>& done,
                                 const RunOptions& options) = 0;
  bool run_to_quiescence() { return run_to_quiescence(nullptr, RunOptions{}); }
  // Whether the node with this id is hosted by the calling process. The
  // single-process backends host everything they were handed; the
  // multi-process backend (net::TcpNet) keeps only the nodes whose
  // process assignment matches its own and overrides this accordingly.
  // Election builders use it to attach process-local resources — WAL
  // files, most importantly — only where the node actually lives.
  virtual bool is_local(NodeId) const { return true; }
  // Per-shard inbox high-water marks observed for a node, where the
  // backend has per-shard queues (ThreadNet). Backends without that
  // concept (the simulator's single global event queue) return empty.
  virtual std::vector<std::size_t> shard_queue_high_water(NodeId) const {
    return {};
  }
  // Cumulative handler invocations (messages + timers) dispatched over the
  // host's life: the simulator's virtual event count, or the total across
  // all worker threads on ThreadNet. Drives the uniform events/sec
  // accounting in ElectionReport and bench::Instrumentation.
  virtual std::uint64_t events_dispatched() const { return 0; }
};

}  // namespace ddemos::sim
