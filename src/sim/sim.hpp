// Deterministic discrete-event simulator. Replaces the paper's 12-machine
// cluster: virtual clocks per node, configurable link latency/drop/dup/
// reorder, per-node CPU service-time accounting (a node is one virtual
// processor per shard — plain Processes have one, a ShardedProcess gets
// shard_count() of them, so sharded VC nodes overlap handler costs across
// shards), and adversary hooks for bounded message delay and node crashes.
// Fully deterministic given a seed.
//
// Events carry net::Buffer payload handles, so enqueueing, duplication and
// multicast fan-out never deep-copy message bytes; the event set itself is
// a bucketed calendar queue (sim/calendar_queue.hpp) with amortized O(1)
// push/pop in the dispatch hot path.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rng.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/runtime.hpp"

namespace ddemos::sim {

struct LinkModel {
  Duration base_latency = 100;  // microseconds, one way
  Duration jitter = 0;          // uniform extra in [0, jitter]
  double drop_prob = 0.0;
  double dup_prob = 0.0;

  static LinkModel lan() { return LinkModel{100, 50, 0.0, 0.0}; }
  static LinkModel wan() { return LinkModel{25'000, 2'000, 0.0, 0.0}; }
  static LinkModel lossy(double drop, double dup) {
    return LinkModel{100, 500, drop, dup};
  }
};

// Return std::nullopt to drop; otherwise extra delay added on top of the
// link model. Lets tests play the bounded-delay adversary of Section III-C.
using LinkFilter =
    std::function<std::optional<Duration>(NodeId from, NodeId to, TimePoint)>;

class Simulation final : public RuntimeHost {
 public:
  explicit Simulation(std::uint64_t seed);
  ~Simulation() override;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  NodeId add_node(std::unique_ptr<Process> proc, std::string name) override;
  Process& process(NodeId id) override;
  const std::string& node_name(NodeId id) const override;
  std::size_t node_count() const override { return nodes_.size(); }

  void set_default_link(const LinkModel& model) { default_link_ = model; }
  void set_link(NodeId a, NodeId b, const LinkModel& model);
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

  // Crashed nodes stop receiving messages and timers.
  void crash(NodeId id);
  bool crashed(NodeId id) const;

  // Hybrid benchmark mode: measure each handler's real CPU time with a
  // monotonic clock and add it to the node's virtual busy time, on top of
  // any modeled Context::charge() costs. Virtual durations then reflect
  // real per-message processing costs while the network stays modeled.
  void set_measure_cpu(bool enabled) { measure_cpu_ = enabled; }

  // Calls on_start on all nodes not yet started.
  void start() override;

  TimePoint now() const override { return now_; }
  // Process a single event. Returns false when the queue is empty.
  bool step();
  // Run until the queue drains or `max_events` is hit; returns events run.
  // Throws ProtocolError (with the processed-event count and current
  // virtual time) when the budget is exhausted with events still pending.
  std::size_t run_until_idle(std::size_t max_events = 50'000'000);
  // RuntimeHost completion wait: run_until_idle under options.max_events,
  // stopping early (at a probe boundary) once `done()` holds.
  using RuntimeHost::run_to_quiescence;
  bool run_to_quiescence(const std::function<bool()>& done,
                         const RunOptions& options) override;
  // Run while events exist and now() < deadline.
  void run_until(TimePoint deadline);

  crypto::Rng& rng() { return rng_; }
  std::uint64_t delivered_messages() const { return delivered_; }
  std::uint64_t dropped_messages() const { return dropped_; }
  // Cumulative events dispatched (messages + timers) over the sim's life.
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t events_dispatched() const override {
    return events_processed_;
  }

  // Used by NodeContext (internal).
  void submit_send(NodeId from, NodeId to, net::Buffer payload,
                   TimePoint depart);
  // Reliable intra-node loopback (Context::send_self): enqueued at the
  // sender's handler end, bypassing link models, loss and the rng stream
  // so sharded runs stay deterministic under lossy links.
  void submit_self(NodeId node, net::Buffer payload, TimePoint at);
  std::uint64_t submit_timer(NodeId node, Duration after, TimePoint from_time);

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // tiebreaker for determinism
    NodeId target;
    NodeId from;          // kNoNode for timers
    std::uint64_t token;  // timer token
    net::Buffer payload;  // shared handle; empty for timers
  };
  class NodeContext;
  struct Node {
    std::unique_ptr<Process> proc;
    // Non-null when proc is a ShardedProcess (cached dynamic_cast).
    ShardedProcess* sharded = nullptr;
    std::unique_ptr<NodeContext> ctx;
    std::string name;
    bool crashed = false;
    // One virtual processor per shard: handlers mapped to a shard queue
    // behind that shard's busy time only, so sharded nodes process
    // messages for distinct shards in (virtual) parallel. Non-sharded
    // nodes have exactly one entry — the former busy_until.
    std::vector<TimePoint> shard_busy;
  };

  const LinkModel& link_for(NodeId a, NodeId b) const;
  void dispatch(const Event& ev);

  crypto::Rng rng_;
  std::vector<Node> nodes_;
  LinkModel default_link_ = LinkModel::lan();
  std::map<std::pair<NodeId, NodeId>, LinkModel> links_;
  LinkFilter filter_;
  CalendarQueue<Event> queue_;
  TimePoint now_ = 0;
  bool measure_cpu_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t timer_tokens_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t events_processed_ = 0;
  bool started_ = false;
};

}  // namespace ddemos::sim
