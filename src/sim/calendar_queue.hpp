// Bucketed calendar queue (Brown 1988) for the simulator's event set.
// Replaces std::priority_queue in the dispatch hot path: push and pop-min
// are amortized O(1) when the queue is sized to the event population,
// versus O(log n) sift operations (and their cache misses) for the binary
// heap. The total order is identical to the heap's — strictly by
// (at, seq) — so simulation determinism is byte-for-byte preserved.
//
// Layout: a power-of-two ring of unsorted buckets, each covering `width_`
// microseconds of one "year" (= buckets * width). pop scans forward from
// the current window; an event is the global minimum exactly when it lands
// inside the window being scanned. If a whole year passes without a hit
// (sparse tail, e.g. one far-out election-end timer left), a direct scan
// finds the minimum and the cursor jumps there. The ring doubles when the
// population outgrows it; the width is re-estimated from the median
// inter-event gap of a sample so that one far outlier cannot stretch the
// buckets into degeneracy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace ddemos::sim {

// Ev must expose `.at` (int64 priority) and `.seq` (uint64 tiebreaker).
template <typename Ev>
class CalendarQueue {
 public:
  explicit CalendarQueue(std::size_t initial_buckets = 64,
                         std::int64_t initial_width = 512)
      : width_(initial_width), buckets_(initial_buckets) {
    if ((initial_buckets & (initial_buckets - 1)) != 0) {
      throw ProtocolError("CalendarQueue: bucket count must be a power of 2");
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Ev ev) {
    if (size_ == capacity_limit()) grow();
    if (size_ == 0 || ev.at < cursor_) cursor_ = ev.at;
    buckets_[bucket_of(ev.at)].push_back(std::move(ev));
    ++size_;
    cached_valid_ = false;
  }

  // Smallest (at, seq) event. Valid until the next push/pop.
  const Ev& top() {
    locate_min();
    return buckets_[cached_bucket_][cached_index_];
  }

  Ev pop() {
    locate_min();
    auto& b = buckets_[cached_bucket_];
    Ev out = std::move(b[cached_index_]);
    b[cached_index_] = std::move(b.back());
    b.pop_back();
    --size_;
    cached_valid_ = false;
    cursor_ = out.at;  // next minimum cannot be earlier
    return out;
  }

 private:
  static bool less(const Ev& a, const Ev& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::size_t capacity_limit() const { return buckets_.size() * 2; }
  std::size_t bucket_of(std::int64_t at) const {
    return static_cast<std::size_t>(at / width_) & (buckets_.size() - 1);
  }

  // Finds the minimum event and caches its position.
  void locate_min() {
    if (cached_valid_) return;
    if (size_ == 0) throw ProtocolError("CalendarQueue: pop from empty queue");
    // Scan at most one full year of windows starting at the cursor.
    std::int64_t window_start = (cursor_ / width_) * width_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      std::int64_t window_end = window_start + width_;  // exclusive
      const auto& b = buckets_[bucket_of(window_start)];
      std::size_t best = b.size();
      for (std::size_t j = 0; j < b.size(); ++j) {
        if (b[j].at >= window_start && b[j].at < window_end &&
            (best == b.size() || less(b[j], b[best]))) {
          best = j;
        }
      }
      if (best != b.size()) {
        cached_bucket_ = bucket_of(window_start);
        cached_index_ = best;
        cached_valid_ = true;
        cursor_ = window_start;
        return;
      }
      window_start = window_end;
    }
    // Sparse tail: nothing within a year of the cursor. Direct scan.
    std::size_t best_bucket = 0, best_index = 0;
    bool found = false;
    for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
      const auto& b = buckets_[bi];
      for (std::size_t j = 0; j < b.size(); ++j) {
        if (!found || less(b[j], buckets_[best_bucket][best_index])) {
          best_bucket = bi;
          best_index = j;
          found = true;
        }
      }
    }
    cached_bucket_ = best_bucket;
    cached_index_ = best_index;
    cached_valid_ = true;
    cursor_ = buckets_[best_bucket][best_index].at;
  }

  void grow() {
    std::vector<Ev> all;
    all.reserve(size_);
    for (auto& b : buckets_) {
      for (auto& ev : b) all.push_back(std::move(ev));
      b.clear();
    }
    buckets_.resize(buckets_.size() * 2);
    width_ = estimate_width(all);
    std::int64_t min_at = all.empty() ? 0 : all[0].at;
    for (const Ev& ev : all) min_at = std::min(min_at, ev.at);
    cursor_ = min_at;
    for (Ev& ev : all) buckets_[bucket_of(ev.at)].push_back(std::move(ev));
    cached_valid_ = false;
  }

  // Median inter-event gap of a sorted sample, so a single far-future
  // outlier (a long timer) cannot inflate the width and collapse the whole
  // population into one bucket.
  std::int64_t estimate_width(const std::vector<Ev>& all) const {
    if (all.size() < 2) return width_;
    std::vector<std::int64_t> sample;
    std::size_t stride = std::max<std::size_t>(1, all.size() / 64);
    for (std::size_t i = 0; i < all.size(); i += stride) {
      sample.push_back(all[i].at);
    }
    std::sort(sample.begin(), sample.end());
    std::vector<std::int64_t> gaps;
    for (std::size_t i = 1; i < sample.size(); ++i) {
      gaps.push_back(sample[i] - sample[i - 1]);
    }
    if (gaps.empty()) return width_;
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
    std::int64_t median = gaps[gaps.size() / 2];
    return std::clamp<std::int64_t>(median * 2, 1, std::int64_t{1} << 40);
  }

  std::int64_t width_;
  std::vector<std::vector<Ev>> buckets_;
  std::size_t size_ = 0;
  std::int64_t cursor_ = 0;  // lower bound on the minimum event time
  std::size_t cached_bucket_ = 0;
  std::size_t cached_index_ = 0;
  bool cached_valid_ = false;
};

}  // namespace ddemos::sim
