#include "sim/sim.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace ddemos::sim {

// Per-node Context implementation. Sends and timers issued while a handler
// runs depart when the handler's accounted CPU time ends, which models a
// node that processes one message at a time.
class Simulation::NodeContext final : public Context {
 public:
  NodeContext(Simulation* sim, NodeId id) : sim_(sim), id_(id) {}

  void send(NodeId to, net::Buffer payload) override {
    sim_->submit_send(id_, to, std::move(payload), handler_end_);
  }
  void send_self(net::Buffer payload) override {
    sim_->submit_self(id_, std::move(payload), handler_end_);
  }
  std::uint64_t set_timer(Duration after) override {
    return sim_->submit_timer(id_, after, handler_end_);
  }
  TimePoint now() const override { return handler_start_; }
  NodeId self() const override { return id_; }
  void charge(Duration cpu) override { handler_end_ += cpu; }

  // Called by the simulator around each handler invocation.
  void begin_handler(TimePoint at) {
    handler_start_ = at;
    handler_end_ = at;
  }
  TimePoint handler_end() const { return handler_end_; }

 private:
  Simulation* sim_;
  NodeId id_;
  TimePoint handler_start_ = 0;
  TimePoint handler_end_ = 0;
};

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}
Simulation::~Simulation() = default;

NodeId Simulation::add_node(std::unique_ptr<Process> proc, std::string name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.proc = std::move(proc);
  n.sharded = dynamic_cast<ShardedProcess*>(n.proc.get());
  n.ctx = std::make_unique<NodeContext>(this, id);
  n.name = std::move(name);
  n.proc->bind(n.ctx.get());
  n.shard_busy.assign(
      n.sharded ? std::max<std::size_t>(n.sharded->shard_count(), 1) : 1, 0);
  nodes_.push_back(std::move(n));
  if (started_) {
    // Late-added node (e.g. a voter joining mid-election): start immediately.
    nodes_.back().ctx->begin_handler(now_);
    nodes_.back().proc->on_start();
    nodes_.back().shard_busy[0] = nodes_.back().ctx->handler_end();
  }
  return id;
}

Process& Simulation::process(NodeId id) { return *nodes_.at(id).proc; }

const std::string& Simulation::node_name(NodeId id) const {
  return nodes_.at(id).name;
}

void Simulation::set_link(NodeId a, NodeId b, const LinkModel& model) {
  links_[{a, b}] = model;
}

const LinkModel& Simulation::link_for(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  if (it != links_.end()) return it->second;
  return default_link_;
}

void Simulation::crash(NodeId id) { nodes_.at(id).crashed = true; }
bool Simulation::crashed(NodeId id) const { return nodes_.at(id).crashed; }

void Simulation::start() {
  started_ = true;
  for (Node& n : nodes_) {
    if (n.crashed) continue;
    n.ctx->begin_handler(now_);
    n.proc->on_start();
    n.shard_busy[0] = std::max(n.shard_busy[0], n.ctx->handler_end());
  }
}

void Simulation::submit_send(NodeId from, NodeId to, net::Buffer payload,
                             TimePoint depart) {
  if (to >= nodes_.size()) throw ProtocolError("send to unknown node");
  const LinkModel& lm = link_for(from, to);
  if (lm.drop_prob > 0 && rng_.uniform01() < lm.drop_prob) {
    ++dropped_;
    return;
  }
  Duration extra = 0;
  if (filter_) {
    auto d = filter_(from, to, depart);
    if (!d.has_value()) {
      ++dropped_;
      return;
    }
    extra = *d;
  }
  // Each enqueue copies only the Buffer handle; the payload allocation is
  // shared with the sender (and with every other recipient of a multicast).
  auto enqueue = [&](TimePoint when) {
    queue_.push(Event{when, seq_++, to, from, 0, payload});
  };
  Duration jitter =
      lm.jitter > 0 ? static_cast<Duration>(rng_.below(
                          static_cast<std::uint64_t>(lm.jitter) + 1))
                    : 0;
  // A message cannot arrive before it departs (an adversarial LinkFilter
  // may return a negative extra delay; the calendar queue also relies on
  // event times being non-negative).
  TimePoint arrive =
      std::max(depart + lm.base_latency + jitter + extra, depart);
  enqueue(arrive);
  if (lm.dup_prob > 0 && rng_.uniform01() < lm.dup_prob) {
    enqueue(arrive + lm.base_latency);
  }
}

void Simulation::submit_self(NodeId node, net::Buffer payload, TimePoint at) {
  if (node >= nodes_.size()) throw ProtocolError("send_self on unknown node");
  // Intra-node hop: no link model, no loss/dup, and — critically for
  // determinism — no rng draw, so a sharded run consumes the exact same
  // random stream as an unsharded one under lossy links.
  queue_.push(Event{at, seq_++, node, node, 0, std::move(payload)});
}

std::uint64_t Simulation::submit_timer(NodeId node, Duration after,
                                       TimePoint from_time) {
  std::uint64_t token = ++timer_tokens_;
  queue_.push(Event{std::max(from_time + after, from_time), seq_++, node,
                    kNoNode, token, {}});
  return token;
}

void Simulation::dispatch(const Event& ev) {
  Node& n = nodes_.at(ev.target);
  if (n.crashed) return;
  // Each shard is its own virtual processor: handlers queue behind their
  // shard's busy time only. Timers always run on shard 0 (the control
  // shard); plain Processes have exactly one shard.
  std::size_t shard = 0;
  if (n.sharded && ev.from != kNoNode) {
    shard = n.sharded->shard_of(ev.from, ev.payload);
    if (shard >= n.shard_busy.size()) shard = 0;
  }
  TimePoint begin = std::max(ev.at, n.shard_busy[shard]);
  n.ctx->begin_handler(begin);
  std::chrono::steady_clock::time_point wall_start;
  if (measure_cpu_) wall_start = std::chrono::steady_clock::now();
  if (ev.from == kNoNode) {
    n.proc->on_timer(ev.token);
  } else {
    ++delivered_;
    n.proc->on_message(ev.from, ev.payload);
  }
  Duration measured = 0;
  if (measure_cpu_) {
    measured = std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
  }
  n.shard_busy[shard] =
      std::max(n.shard_busy[shard], n.ctx->handler_end() + measured);
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  now_ = std::max(now_, ev.at);
  dispatch(ev);
  ++events_processed_;
  return true;
}

namespace {
[[noreturn]] void throw_budget_exhausted(std::size_t processed,
                                         TimePoint now) {
  throw ProtocolError(
      "simulation did not quiesce within event budget: " +
      std::to_string(processed) + " events processed, virtual time " +
      std::to_string(now) + " us, events still pending");
}
}  // namespace

std::size_t Simulation::run_until_idle(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  if (count == max_events && !queue_.empty()) {
    throw_budget_exhausted(count, now_);
  }
  return count;
}

bool Simulation::run_to_quiescence(const std::function<bool()>& done,
                                   const RunOptions& options) {
  if (!started_) start();
  // Clamp so a small event budget still gets completion checks before the
  // budget trips.
  std::size_t probe_interval = std::clamp<std::size_t>(
      options.probe_interval, 1,
      std::max<std::size_t>(options.max_events, 1));
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (count >= options.max_events) {
      // Completion beats budget exhaustion: a satisfied predicate at the
      // boundary is success, not a stuck simulation.
      if (done && done()) return true;
      throw_budget_exhausted(count, now_);
    }
    step();
    ++count;
    if (count % probe_interval == 0) {
      if (options.probe) options.probe();
      // The predicate only short-circuits at probe boundaries so its cost
      // never dominates the dispatch loop; a null predicate means "run to
      // natural quiescence" (the driver's default on this backend).
      if (done && done()) return true;
    }
  }
  if (options.probe) options.probe();
  return done ? done() : true;
}

void Simulation::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  now_ = std::max(now_, deadline);
}

}  // namespace ddemos::sim
