// Montgomery modular arithmetic over 256-bit odd moduli with the top bit
// set (both secp256k1 moduli qualify), so reduction of any 256-bit value
// needs at most one conditional subtract and no general division.
#pragma once

#include "crypto/u256.hpp"

namespace ddemos::crypto {

struct MontParams {
  U256 mod;          // the modulus (odd, > 2^255)
  std::uint64_t n0;  // -mod^{-1} mod 2^64
  U256 r2;           // R^2 mod mod, R = 2^256
  U256 one_m;        // R mod mod (Montgomery form of 1)
  U256 mod_minus_2;  // exponent for Fermat inversion
};

// Computes all derived constants at runtime. Requires mod odd and > 2^255.
MontParams make_mont_params(const U256& mod);

// Montgomery product: a*b*R^{-1} mod mod, inputs/outputs in Montgomery form.
U256 mont_mul(const U256& a, const U256& b, const MontParams& p);
// Montgomery square: a*a*R^{-1} mod mod via a dedicated SOS squaring
// (the point doubling formulas and Fermat/addition-chain inversions are
// squaring-heavy, so this path is worth its own kernel).
U256 mont_sqr(const U256& a, const MontParams& p);
// Plain modular add/sub (works in either representation).
U256 mod_add(const U256& a, const U256& b, const MontParams& p);
U256 mod_sub(const U256& a, const U256& b, const MontParams& p);
// a^e mod mod, a in Montgomery form, result in Montgomery form.
U256 mont_pow(const U256& a, const U256& e, const MontParams& p);
// Reduce an arbitrary 256-bit value mod mod (single conditional subtract).
U256 mod_reduce(const U256& a, const MontParams& p);

}  // namespace ddemos::crypto
