// secp256k1 group operations (Jacobian coordinates) — the elliptic-curve
// substrate for the lifted-ElGamal option-encoding commitments, Pedersen
// commitments/VSS, Chaum-Pedersen proofs and Schnorr signatures. Stands in
// for the paper's use of the MIRACL library.
#pragma once

#include "crypto/fe.hpp"
#include "util/bytes.hpp"

namespace ddemos::crypto {

class Rng;

// Jacobian projective point; the identity is encoded as Z == 0.
struct Point {
  Fp X, Y, Z;

  static Point infinity() { return Point{}; }
  bool is_infinity() const { return Z.is_zero(); }
};

struct AffinePoint {
  Fp x, y;
  bool infinity = false;
};

Point ec_add(const Point& p, const Point& q);
Point ec_double(const Point& p);
Point ec_neg(const Point& p);
Point ec_sub(const Point& p, const Point& q);
// Scalar multiplication by a scalar-field element.
Point ec_mul(const Fn& k, const Point& p);
bool ec_eq(const Point& p, const Point& q);

AffinePoint to_affine(const Point& p);
Point from_affine(const AffinePoint& a);
bool on_curve(const AffinePoint& a);

// The standard base point G.
const Point& ec_generator();
// An independent generator H with unknown discrete log w.r.t. G
// (derived by hashing to the curve), used for Pedersen commitments.
const Point& ec_generator_h();

// Compressed SEC1 encoding: 33 bytes (0x02/0x03 | x), infinity = 33 zeros.
Bytes ec_encode(const Point& p);
Point ec_decode(BytesView b);  // throws CryptoError on invalid encodings

// Convenience: k*G and random point helpers.
Point ec_mul_g(const Fn& k);
Fn random_scalar(Rng& rng);

}  // namespace ddemos::crypto
