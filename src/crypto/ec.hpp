// secp256k1 group operations (Jacobian coordinates) — the elliptic-curve
// substrate for the lifted-ElGamal option-encoding commitments, Pedersen
// commitments/VSS, Chaum-Pedersen proofs and Schnorr signatures. Stands in
// for the paper's use of the MIRACL library.
//
// Scalar multiplication is built around a shared Strauss/wNAF engine:
// every variable-base scalar is split with the GLV endomorphism
// (phi(x, y) = (beta*x, y) = lambda*P) into two ~128-bit halves, recoded
// into width-5 wNAF, and evaluated against batch-normalized affine
// odd-multiples tables with mixed Jacobian+affine additions, so k-term
// products share one doubling ladder and one field inversion.
#pragma once

#include <span>
#include <vector>

#include "crypto/fe.hpp"
#include "util/bytes.hpp"

namespace ddemos::crypto {

class Rng;

// Jacobian projective point; the identity is encoded as Z == 0.
struct Point {
  Fp X, Y, Z;

  static Point infinity() { return Point{}; }
  bool is_infinity() const { return Z.is_zero(); }
};

struct AffinePoint {
  Fp x, y;
  bool infinity = false;
};

Point ec_add(const Point& p, const Point& q);
// Mixed addition P + Q with Q affine (madd-2007-bl): 7M+4S instead of the
// 11M+5S general add — the workhorse of the wNAF table lookups.
Point ec_add_mixed(const Point& p, const AffinePoint& q);
Point ec_double(const Point& p);
Point ec_neg(const Point& p);
Point ec_sub(const Point& p, const Point& q);

// Scalar multiplication by a scalar-field element (GLV + wNAF engine).
Point ec_mul(const Fn& k, const Point& p);
// The textbook 256-iteration double-and-add ladder, kept as the reference
// implementation for cross-checking and the speed-regression gate.
Point ec_mul_naive(const Fn& k, const Point& p);
// Interleaved Strauss double-mul a*P + b*G; the b half runs against static
// precomputed affine odd-multiple tables for G and phi(G).
Point ec_mul2(const Fn& a, const Point& p, const Fn& b);
// General multi-scalar product sum_i ks[i]*ps[i]. Auto-selecting front
// door: small products run the Strauss engine, large ones cross over to
// the Pippenger bucket method at ec_msm_crossover() terms. Zero scalars
// and infinity points are skipped by both engines.
Point ec_msm(std::span<const Fn> ks, std::span<const Point> ps);
// The Strauss/wNAF engine directly (the pre-crossover path).
Point ec_msm_strauss(std::span<const Fn> ks, std::span<const Point> ps);
// Bucket-method MSM: GLV halves binned into 2^c-1 buckets per c-bit
// window (c grows ~log2 n), buckets batch-normalized with one Montgomery
// simultaneous inversion and collapsed by running sums. Wins past a few
// dozen terms where Strauss' per-point tables stop amortizing.
Point ec_msm_pippenger(std::span<const Fn> ks, std::span<const Point> ps);
// Crossover control (thread-safe): point count at or above which ec_msm
// picks Pippenger. Default comes from the micro_crypto calibration sweep;
// DDEMOS_MSM_CROSSOVER overrides it at startup, set() overrides for tests
// (returns the previous value; 0 restores the default).
std::size_t ec_msm_crossover();
std::size_t ec_msm_set_crossover(std::size_t n);

bool ec_eq(const Point& p, const Point& q);

AffinePoint to_affine(const Point& p);
Point from_affine(const AffinePoint& a);
bool on_curve(const AffinePoint& a);

// Montgomery simultaneous inversion: converts N points to affine with one
// field inversion + 3(N-1) multiplies instead of N inversions. Infinity
// inputs map to affine infinity.
std::vector<AffinePoint> batch_to_affine(std::span<const Point> pts);
// In-place variant: rescales each point to Z == 1 (Z == 0 for infinity),
// so later ec_encode/to_affine calls skip their per-point inversion.
void ec_normalize_batch(std::span<Point> pts);

// The standard base point G.
const Point& ec_generator();
// An independent generator H with unknown discrete log w.r.t. G
// (derived by hashing to the curve), used for Pedersen commitments.
const Point& ec_generator_h();

// Compressed SEC1 encoding: 33 bytes (0x02/0x03 | x), infinity = 33 zeros.
Bytes ec_encode(const Point& p);
Point ec_decode(BytesView b);  // throws CryptoError on invalid encodings

// Convenience: k*G (fixed-base comb over batch-normalized affine windows)
// and random point helpers.
Point ec_mul_g(const Fn& k);
Fn random_scalar(Rng& rng);

}  // namespace ddemos::crypto
