#include "crypto/elgamal.hpp"

#include "util/error.hpp"

namespace ddemos::crypto {

ElGamalCipher eg_commit(const Point& key, const Fn& m, const Fn& r) {
  ElGamalCipher c;
  c.a = ec_mul_g(r);
  c.b = ec_add(ec_mul_g(m), ec_mul(r, key));
  return c;
}

ElGamalCipher eg_add(const ElGamalCipher& x, const ElGamalCipher& y) {
  return ElGamalCipher{ec_add(x.a, y.a), ec_add(x.b, y.b)};
}

bool eg_eq(const ElGamalCipher& x, const ElGamalCipher& y) {
  return ec_eq(x.a, y.a) && ec_eq(x.b, y.b);
}

bool eg_open_check(const Point& key, const ElGamalCipher& c, const Fn& m,
                   const Fn& r) {
  return eg_eq(c, eg_commit(key, m, r));
}

Bytes eg_encode(const ElGamalCipher& c) {
  Bytes out = ec_encode(c.a);
  append(out, ec_encode(c.b));
  return out;
}

ElGamalCipher eg_decode(BytesView b) {
  if (b.size() != 66) throw CryptoError("eg_decode: need 66 bytes");
  return ElGamalCipher{ec_decode(b.subspan(0, 33)), ec_decode(b.subspan(33))};
}

std::vector<ElGamalCipher> eg_commit_unit_vector(const Point& key,
                                                 std::size_t m,
                                                 std::size_t index,
                                                 std::span<const Fn> rs) {
  if (index >= m || rs.size() != m) {
    throw CryptoError("eg_commit_unit_vector: bad arguments");
  }
  std::vector<ElGamalCipher> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.push_back(
        eg_commit(key, i == index ? Fn::one() : Fn::zero(), rs[i]));
  }
  return out;
}

}  // namespace ddemos::crypto
