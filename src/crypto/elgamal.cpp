#include "crypto/elgamal.hpp"

#include <array>

#include "util/error.hpp"

namespace ddemos::crypto {

namespace {

ElGamalCipher eg_commit_raw(const Point& key, const Fn& m, const Fn& r) {
  ElGamalCipher c;
  c.a = ec_mul_g(r);
  c.b = ec_mul2(r, key, m);  // m*G + r*K as one Strauss double-mul
  return c;
}

}  // namespace

ElGamalCipher eg_commit(const Point& key, const Fn& m, const Fn& r) {
  ElGamalCipher c = eg_commit_raw(key, m, r);
  // Both components share one inversion, so the later ec_encode calls on
  // the published ciphertext skip their per-point inversion entirely.
  std::array<Point, 2> pts{c.a, c.b};
  ec_normalize_batch(pts);
  return ElGamalCipher{pts[0], pts[1]};
}

ElGamalCipher eg_add(const ElGamalCipher& x, const ElGamalCipher& y) {
  return ElGamalCipher{ec_add(x.a, y.a), ec_add(x.b, y.b)};
}

bool eg_eq(const ElGamalCipher& x, const ElGamalCipher& y) {
  return ec_eq(x.a, y.a) && ec_eq(x.b, y.b);
}

bool eg_open_check(const Point& key, const ElGamalCipher& c, const Fn& m,
                   const Fn& r) {
  // Recompute without the output normalization: ec_eq cross-multiplies, so
  // the comparison needs no inversion at all.
  return eg_eq(c, eg_commit_raw(key, m, r));
}

Bytes eg_encode(const ElGamalCipher& c) {
  Bytes out = ec_encode(c.a);
  append(out, ec_encode(c.b));
  return out;
}

ElGamalCipher eg_decode(BytesView b) {
  if (b.size() != 66) throw CryptoError("eg_decode: need 66 bytes");
  return ElGamalCipher{ec_decode(b.subspan(0, 33)), ec_decode(b.subspan(33))};
}

std::vector<ElGamalCipher> eg_commit_unit_vector(const Point& key,
                                                 std::size_t m,
                                                 std::size_t index,
                                                 std::span<const Fn> rs) {
  if (index >= m || rs.size() != m) {
    throw CryptoError("eg_commit_unit_vector: bad arguments");
  }
  // Commit raw, then normalize all 2m component points with ONE shared
  // field inversion before they are encoded onto ballots.
  std::vector<Point> pts;
  pts.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    ElGamalCipher c =
        eg_commit_raw(key, i == index ? Fn::one() : Fn::zero(), rs[i]);
    pts.push_back(c.a);
    pts.push_back(c.b);
  }
  ec_normalize_batch(pts);
  std::vector<ElGamalCipher> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.push_back(ElGamalCipher{pts[2 * i], pts[2 * i + 1]});
  }
  return out;
}

}  // namespace ddemos::crypto
