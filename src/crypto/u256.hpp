// Fixed-width 256-bit unsigned integer: the raw limb layer under the
// Montgomery field arithmetic. Little-endian 64-bit limbs.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace ddemos::crypto {

struct U256 {
  std::array<std::uint64_t, 4> w{};

  static constexpr U256 zero() { return {}; }
  static constexpr U256 from_u64(std::uint64_t x) {
    U256 r;
    r.w[0] = x;
    return r;
  }
  // Big-endian 32-byte decode; throws CodecError on wrong size.
  static U256 from_bytes_be(BytesView b);
  Bytes to_bytes_be() const;

  bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  int bit(int i) const {
    return static_cast<int>(w[i >> 6] >> (i & 63)) & 1;
  }
  friend bool operator==(const U256&, const U256&) = default;
};

using U512 = std::array<std::uint64_t, 8>;

// -1, 0, 1 as a < b, a == b, a > b.
int cmp(const U256& a, const U256& b);
// out = a + b; returns the carry out of the top limb.
std::uint64_t add_cc(const U256& a, const U256& b, U256& out);
// out = a - b; returns the borrow out of the top limb.
std::uint64_t sub_bb(const U256& a, const U256& b, U256& out);
U512 mul_wide(const U256& a, const U256& b);
U256 shr1(const U256& a);

}  // namespace ddemos::crypto
