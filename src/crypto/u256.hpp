// Fixed-width 256-bit unsigned integer: the raw limb layer under the
// Montgomery field arithmetic. Little-endian 64-bit limbs.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace ddemos::crypto {

struct U256 {
  std::array<std::uint64_t, 4> w{};

  static constexpr U256 zero() { return {}; }
  static constexpr U256 from_u64(std::uint64_t x) {
    U256 r;
    r.w[0] = x;
    return r;
  }
  // Big-endian 32-byte decode; throws CodecError on wrong size.
  static U256 from_bytes_be(BytesView b);
  Bytes to_bytes_be() const;

  bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  int bit(int i) const {
    return static_cast<int>(w[i >> 6] >> (i & 63)) & 1;
  }
  friend bool operator==(const U256&, const U256&) = default;
};

using U512 = std::array<std::uint64_t, 8>;

// The limb kernels are inline: they sit under every field operation and
// the guard-free inlining is worth real throughput in the EC hot paths.

// -1, 0, 1 as a < b, a == b, a > b.
inline int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    auto idx = static_cast<std::size_t>(i);
    if (a.w[idx] < b.w[idx]) return -1;
    if (a.w[idx] > b.w[idx]) return 1;
  }
  return 0;
}

// out = a + b; returns the carry out of the top limb.
inline std::uint64_t add_cc(const U256& a, const U256& b, U256& out) {
  using u128_t = unsigned __int128;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128_t cur = static_cast<u128_t>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  return carry;
}

// out = a - b; returns the borrow out of the top limb.
inline std::uint64_t sub_bb(const U256& a, const U256& b, U256& out) {
  using u128_t = unsigned __int128;
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128_t cur = static_cast<u128_t>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(cur);
    borrow = static_cast<std::uint64_t>(cur >> 64) & 1;
  }
  return borrow;
}

inline U256 shr1(const U256& a) {
  U256 r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.w[i] = a.w[i] >> 1;
    if (i + 1 < 4) r.w[i] |= a.w[i + 1] << 63;
  }
  return r;
}

// The wide multiply kernels are defined inline: they sit under every field
// multiplication, and keeping them visible to the reduction kernels lets
// the compiler fuse the product and reduction passes.
inline U512 mul_wide(const U256& a, const U256& b) {
  using u128_t = unsigned __int128;
  U512 t{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      u128_t cur = static_cast<u128_t>(a.w[i]) * b.w[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    t[i + 4] = carry;
  }
  return t;
}

// a * a; cross products computed once and doubled (~40% fewer 64x64
// multiplies than mul_wide(a, a)) — the point formulas are squaring-heavy.
inline U512 sqr_wide(const U256& a) {
  using u128_t = unsigned __int128;
  U512 t{};
  // Off-diagonal products a_i * a_j for i < j, each needed twice.
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = i + 1; j < 4; ++j) {
      u128_t cur = static_cast<u128_t>(a.w[i]) * a.w[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    if (i + 4 < 8) t[i + 4] = carry;
  }
  // Double the cross terms (top bit cannot carry out: the sum of all
  // off-diagonal products is < 2^511).
  std::uint64_t shift_carry = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint64_t next = t[i] >> 63;
    t[i] = (t[i] << 1) | shift_carry;
    shift_carry = next;
  }
  // Add the diagonal squares a_i^2 at position 2i.
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128_t d = static_cast<u128_t>(a.w[i]) * a.w[i];
    u128_t lo = static_cast<u128_t>(t[2 * i]) +
                static_cast<std::uint64_t>(d) + carry;
    t[2 * i] = static_cast<std::uint64_t>(lo);
    u128_t hi = static_cast<u128_t>(t[2 * i + 1]) +
                static_cast<std::uint64_t>(d >> 64) +
                static_cast<std::uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<std::uint64_t>(hi);
    carry = static_cast<std::uint64_t>(hi >> 64);
  }
  return t;
}

}  // namespace ddemos::crypto
