#include "crypto/merkle.hpp"

#include "util/error.hpp"

namespace ddemos::crypto {

Hash32 MerkleTree::leaf_hash(BytesView data) {
  Sha256 h;
  h.update(to_bytes("leaf"));
  h.update(data);
  return h.finish();
}

Hash32 MerkleTree::node_hash(const Hash32& l, const Hash32& r) {
  Sha256 h;
  h.update(to_bytes("node"));
  h.update(hash_view(l));
  h.update(hash_view(r));
  return h.finish();
}

MerkleTree::MerkleTree(std::vector<Hash32> leaves) {
  if (leaves.empty()) throw CryptoError("MerkleTree: no leaves");
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash32> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      // Odd node is paired with itself.
      const Hash32& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(node_hash(prev[i], right));
    }
    levels_.push_back(std::move(next));
  }
}

std::vector<Hash32> MerkleTree::path(std::size_t index) const {
  if (index >= levels_[0].size()) throw CryptoError("MerkleTree: bad index");
  std::vector<Hash32> out;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    std::size_t sib = index ^ 1;
    if (sib >= nodes.size()) sib = index;  // odd node pairs with itself
    out.push_back(nodes[sib]);
    index >>= 1;
  }
  return out;
}

bool MerkleTree::verify(const Hash32& root, const Hash32& leaf,
                        std::size_t index, std::span<const Hash32> path) {
  Hash32 acc = leaf;
  for (const Hash32& sib : path) {
    acc = (index & 1) ? node_hash(sib, acc) : node_hash(acc, sib);
    index >>= 1;
  }
  return acc == root;
}

}  // namespace ddemos::crypto
