#include "crypto/u256.hpp"

#include "util/error.hpp"

namespace ddemos::crypto {

using u128 = unsigned __int128;

U256 U256::from_bytes_be(BytesView b) {
  if (b.size() != 32) throw CodecError("U256: need 32 bytes");
  U256 r;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = v << 8 | b[static_cast<std::size_t>((3 - limb) * 8 + i)];
    }
    r.w[static_cast<std::size_t>(limb)] = v;
  }
  return r;
}

Bytes U256::to_bytes_be() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = w[static_cast<std::size_t>(limb)];
    for (int i = 7; i >= 0; --i) {
      out[static_cast<std::size_t>((3 - limb) * 8 + i)] =
          static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    auto idx = static_cast<std::size_t>(i);
    if (a.w[idx] < b.w[idx]) return -1;
    if (a.w[idx] > b.w[idx]) return 1;
  }
  return 0;
}

std::uint64_t add_cc(const U256& a, const U256& b, U256& out) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128 cur = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  return carry;
}

std::uint64_t sub_bb(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128 cur = static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(cur);
    borrow = static_cast<std::uint64_t>(cur >> 64) & 1;
  }
  return borrow;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 t{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    t[i + 4] = carry;
  }
  return t;
}

U256 shr1(const U256& a) {
  U256 r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.w[i] = a.w[i] >> 1;
    if (i + 1 < 4) r.w[i] |= a.w[i + 1] << 63;
  }
  return r;
}

}  // namespace ddemos::crypto
