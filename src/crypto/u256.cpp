#include "crypto/u256.hpp"

#include "util/error.hpp"

namespace ddemos::crypto {

U256 U256::from_bytes_be(BytesView b) {
  if (b.size() != 32) throw CodecError("U256: need 32 bytes");
  U256 r;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = v << 8 | b[static_cast<std::size_t>((3 - limb) * 8 + i)];
    }
    r.w[static_cast<std::size_t>(limb)] = v;
  }
  return r;
}

Bytes U256::to_bytes_be() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = w[static_cast<std::size_t>(limb)];
    for (int i = 7; i >= 0; --i) {
      out[static_cast<std::size_t>((3 - limb) * 8 + i)] =
          static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}


}  // namespace ddemos::crypto
