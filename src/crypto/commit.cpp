#include "crypto/commit.hpp"

#include "crypto/aes.hpp"

namespace ddemos::crypto {

Hash32 salted_commit(BytesView msg, BytesView salt) {
  Sha256 h;
  h.update(msg);
  h.update(salt);
  return h.finish();
}

bool salted_commit_check(const Hash32& commitment, BytesView msg,
                         BytesView salt) {
  Hash32 h = salted_commit(msg, salt);
  return ct_equal(hash_view(h), hash_view(commitment));
}

Hash32 msk_fingerprint(BytesView msk, BytesView salt) {
  return salted_commit(msk, salt);
}

Bytes encrypt_vote_code(BytesView msk16, BytesView vote_code, Rng& rng) {
  return aes128_cbc_encrypt(msk16, vote_code, rng);
}

Bytes decrypt_vote_code(BytesView msk16, BytesView blob) {
  return aes128_cbc_decrypt(msk16, blob);
}

}  // namespace ddemos::crypto
