// Random-linear-combination batch verification. N instances collapse into
// one large multi-scalar product: a cheat in any single instance survives
// only if it cancels against the random 128-bit weights, which happens
// with probability ~2^-128. Weights are derived Fiat-Shamir style from the
// full instance set (the canonical encodings of every point and scalar),
// so a prover committed to its instances cannot steer them.
//
// Callers use these on the audit fast path: if the combined check passes,
// every instance is valid; on failure they fall back to the per-instance
// verifiers to attribute blame. Empty batches verify trivially.
// Every verifier also has a chunked parallel form: pass a ThreadPool and
// the instance set splits into fixed-size chunks (boundaries independent
// of the worker count, so results are reproducible at any thread count),
// each chunk deriving its own Fiat-Shamir weights and running its own MSM
// on the pool. The per-instance fallback path for blame attribution is
// unchanged — callers still re-verify instance by instance on failure.
#pragma once

#include <span>
#include <vector>

#include "crypto/pedersen.hpp"
#include "crypto/zkp.hpp"

namespace ddemos::util {
class ThreadPool;
}

namespace ddemos::crypto {

struct SchnorrInstance {
  Bytes pk, msg, sig;
};
bool schnorr_verify_batch(std::span<const SchnorrInstance> xs,
                          util::ThreadPool* pool = nullptr);

struct BitProofInstance {
  ElGamalCipher cipher;
  BitProofFirstMove fm;
  Fn challenge;
  BitProofResponse resp;
};
// All instances must share the commitment key; 4 Sigma-OR equations per
// instance fold into a single MSM of 6N+2 terms.
bool verify_bit_batch(const Point& key, std::span<const BitProofInstance> xs,
                      util::ThreadPool* pool = nullptr);

struct SumProofInstance {
  ElGamalCipher sum;
  Fn total;
  SumProofFirstMove fm;
  Fn challenge;
  Fn z;
};
bool verify_sum_batch(const Point& key, std::span<const SumProofInstance> xs,
                      util::ThreadPool* pool = nullptr);

struct EgOpenInstance {
  ElGamalCipher cipher;
  Fn m, r;
};
// Batched eg_open_check: both opening equations per ciphertext fold into
// an MSM of 2N+2 terms (the weights themselves are the only full-size
// scalars multiplied per instance).
bool eg_open_check_batch(const Point& key, std::span<const EgOpenInstance> xs,
                         util::ThreadPool* pool = nullptr);

struct PedersenVssInstance {
  PedersenShare share;
  std::vector<Point> comms;  // coefficient commitments for this share
};
// Batched pedersen_vss_verify: all N share checks
//   f_i*G + g_i*H - sum_j x_i^j C_ij == 0
// fold into one MSM with a single combined G and H term plus one
// w_i*x_i^j term per coefficient commitment. Matches the per-instance
// verifier's rejection of an empty commitment vector (whole batch fails).
// Used by the BB nodes' trustee-message verification; callers fall back to
// pedersen_vss_verify per instance on failure to attribute blame.
bool pedersen_vss_verify_batch(std::span<const PedersenVssInstance> xs,
                               util::ThreadPool* pool = nullptr);

}  // namespace ddemos::crypto
