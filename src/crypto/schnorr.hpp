// Schnorr signatures over secp256k1 with deterministic nonces. The EA
// generates all key pairs at setup (the paper avoids external PKI); VC nodes
// sign ENDORSEMENT messages with these keys, trustees sign BB writes.
#pragma once

#include "crypto/ec.hpp"

namespace ddemos::crypto {

struct KeyPair {
  Fn sk;
  Bytes pk;  // compressed point encoding, 33 bytes
};

KeyPair schnorr_keygen(Rng& rng);
// Signature = R (33 bytes) || s (32 bytes).
Bytes schnorr_sign(const Fn& sk, BytesView msg);
bool schnorr_verify(BytesView pk, BytesView msg, BytesView sig);
// Pre-refactor verifier (two independent full multiplications + ec_eq),
// kept for cross-check tests and the speed-regression gate.
bool schnorr_verify_naive(BytesView pk, BytesView msg, BytesView sig);
// Fiat-Shamir challenge e = H(R || pk || msg); exposed for the batch
// verifier in batch.hpp.
Fn schnorr_challenge(BytesView r_enc, BytesView pk, BytesView msg);

}  // namespace ddemos::crypto
