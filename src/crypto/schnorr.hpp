// Schnorr signatures over secp256k1 with deterministic nonces. The EA
// generates all key pairs at setup (the paper avoids external PKI); VC nodes
// sign ENDORSEMENT messages with these keys, trustees sign BB writes.
#pragma once

#include "crypto/ec.hpp"

namespace ddemos::crypto {

struct KeyPair {
  Fn sk;
  Bytes pk;  // compressed point encoding, 33 bytes
};

KeyPair schnorr_keygen(Rng& rng);
// Signature = R (33 bytes) || s (32 bytes).
Bytes schnorr_sign(const Fn& sk, BytesView msg);
bool schnorr_verify(BytesView pk, BytesView msg, BytesView sig);

}  // namespace ddemos::crypto
