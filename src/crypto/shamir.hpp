// Shamir secret sharing over the secp256k1 scalar field. Used with a
// trusted dealer (the EA) for receipt shares and the msk key shares:
// the paper's "(Nv-fv, Nv)-VSS with trusted dealer". Verifiability is
// provided by Merkle commitments over the share list (see merkle.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/fe.hpp"

namespace ddemos::crypto {

class Rng;

struct Share {
  std::uint32_t x = 0;  // evaluation point, 1-based node index
  Fn y;
};

// Splits `secret` into n shares with reconstruction threshold k.
std::vector<Share> shamir_deal(const Fn& secret, std::size_t k, std::size_t n,
                               Rng& rng);

// Lagrange interpolation at 0 using the first k distinct-x shares.
// Throws CryptoError if fewer than k shares or duplicate x values.
Fn shamir_reconstruct(std::span<const Share> shares, std::size_t k);

}  // namespace ddemos::crypto
