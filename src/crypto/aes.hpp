// AES-128 and CBC mode with PKCS#7 padding. Used for the EA's vote-code
// commitments on the Bulletin Board: [vote-code]_msk = AES-128-CBC$ per the
// paper (random IV per encryption).
#pragma once

#include <array>

#include "util/bytes.hpp"

namespace ddemos::crypto {

class Rng;

class Aes128 {
 public:
  explicit Aes128(BytesView key16);
  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_{};
};

// Output layout: IV (16 bytes) || ciphertext. Random IV from rng.
Bytes aes128_cbc_encrypt(BytesView key16, BytesView plaintext, Rng& rng);
// Throws CryptoError on malformed input or bad padding.
Bytes aes128_cbc_decrypt(BytesView key16, BytesView iv_and_ciphertext);

}  // namespace ddemos::crypto
