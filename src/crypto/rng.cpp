#include "crypto/rng.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

namespace {

inline void quarter(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                    std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

void chacha20_block(const std::array<std::uint32_t, 16>& in,
                    std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    quarter(x[0], x[4], x[8], x[12]);
    quarter(x[1], x[5], x[9], x[13]);
    quarter(x[2], x[6], x[10], x[14]);
    quarter(x[3], x[7], x[11], x[15]);
    quarter(x[0], x[5], x[10], x[15]);
    quarter(x[1], x[6], x[11], x[12]);
    quarter(x[2], x[7], x[8], x[13]);
    quarter(x[3], x[4], x[9], x[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + in[i];
    out[i * 4] = static_cast<std::uint8_t>(v);
    out[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Rng::Rng(BytesView seed) {
  state_ = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  std::uint8_t key[32] = {};
  std::memcpy(key, seed.data(), std::min<std::size_t>(seed.size(), 32));
  for (std::size_t i = 0; i < 8; ++i) {
    state_[4 + i] = static_cast<std::uint32_t>(key[i * 4]) |
                    static_cast<std::uint32_t>(key[i * 4 + 1]) << 8 |
                    static_cast<std::uint32_t>(key[i * 4 + 2]) << 16 |
                    static_cast<std::uint32_t>(key[i * 4 + 3]) << 24;
  }
}

Rng::Rng(std::uint64_t seed)
    : Rng([&] {
        Bytes b(8);
        for (int i = 0; i < 8; ++i) {
          b[static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>(seed >> (8 * i));
        }
        return Bytes(hash_bytes(sha256(b)));
      }()) {}

Rng Rng::from_os_entropy() {
  std::uint8_t buf[32];
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr || std::fread(buf, 1, 32, f) != 32) {
    if (f) std::fclose(f);
    throw CryptoError("cannot read /dev/urandom");
  }
  std::fclose(f);
  return Rng(BytesView(buf, 32));
}

void Rng::refill() {
  chacha20_block(state_, block_);
  pos_ = 0;
  if (++state_[12] == 0) ++state_[13];  // 64-bit block counter
}

void Rng::fill(std::uint8_t* out, std::size_t n) {
  while (n > 0) {
    if (pos_ == 64) refill();
    std::size_t take = std::min(n, 64 - pos_);
    std::memcpy(out, block_.data() + pos_, take);
    pos_ += take;
    out += take;
    n -= take;
  }
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

std::uint64_t Rng::u64() {
  std::uint8_t b[8];
  fill(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw ProtocolError("Rng::below: bound must be > 0");
  std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
  for (;;) {
    std::uint64_t v = u64();
    if (v >= threshold) return v % bound;
  }
}

double Rng::uniform01() {
  return static_cast<double>(u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::string_view label) {
  Bytes material = bytes(32);
  Sha256 h;
  h.update(material);
  h.update(to_bytes(label));
  return Rng(BytesView(hash_view(h.finish())));
}

}  // namespace ddemos::crypto
