#include "crypto/schnorr.hpp"

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

Fn schnorr_challenge(BytesView r_enc, BytesView pk, BytesView msg) {
  Sha256 h;
  h.update(to_bytes("ddemos/schnorr"));
  h.update(r_enc);
  h.update(pk);
  h.update(msg);
  return Fn::from_bytes_mod(hash_view(h.finish()));
}

KeyPair schnorr_keygen(Rng& rng) {
  Fn sk = random_scalar(rng);
  if (sk.is_zero()) sk = Fn::one();
  return KeyPair{sk, ec_encode(ec_mul_g(sk))};
}

Bytes schnorr_sign(const Fn& sk, BytesView msg) {
  Bytes pk = ec_encode(ec_mul_g(sk));
  // Deterministic nonce: H(sk || msg), reduced into the scalar field.
  Sha256 nh;
  nh.update(to_bytes("ddemos/schnorr/nonce"));
  nh.update(sk.to_bytes_be());
  nh.update(msg);
  Fn k = Fn::from_bytes_mod(hash_view(nh.finish()));
  if (k.is_zero()) k = Fn::one();
  Bytes r_enc = ec_encode(ec_mul_g(k));
  Fn e = schnorr_challenge(r_enc, pk, msg);
  Fn s = k + e * sk;
  Bytes sig = r_enc;
  append(sig, s.to_bytes_be());
  return sig;
}

bool schnorr_verify(BytesView pk, BytesView msg, BytesView sig) {
  if (sig.size() != 65 || pk.size() != 33) return false;
  try {
    Point r = ec_decode(sig.subspan(0, 33));
    Fn s = Fn::from_bytes_mod(sig.subspan(33));
    Point pub = ec_decode(pk);
    Fn e = schnorr_challenge(sig.subspan(0, 33), pk, msg);
    // s*G - e*P - R == 0: one interleaved Strauss double-mul plus one
    // mixed addition (R arrives normalized from ec_decode), no ec_eq
    // cross-multiplication.
    Point acc = ec_mul2(e, ec_neg(pub), s);
    AffinePoint ra = to_affine(r);
    if (!ra.infinity) ra.y = ra.y.neg();
    return ec_add_mixed(acc, ra).is_infinity();
  } catch (const CryptoError&) {
    return false;
  }
}

bool schnorr_verify_naive(BytesView pk, BytesView msg, BytesView sig) {
  if (sig.size() != 65 || pk.size() != 33) return false;
  try {
    Point r = ec_decode(sig.subspan(0, 33));
    Fn s = Fn::from_bytes_mod(sig.subspan(33));
    Point pub = ec_decode(pk);
    Fn e = schnorr_challenge(sig.subspan(0, 33), pk, msg);
    // s*G == R + e*P
    return ec_eq(ec_mul_g(s), ec_add(r, ec_mul_naive(e, pub)));
  } catch (const CryptoError&) {
    return false;
  }
}

}  // namespace ddemos::crypto
