// Pedersen commitments and Pedersen verifiable secret sharing (paper
// Section III-B cites Pedersen's VSS [32]). Used by the EA to split every
// option-encoding opening and every ZK prover-state scalar among the Nt
// trustees with threshold ht; shares are additively homomorphic, which is
// what lets trustees tally homomorphically and open only the total.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/ec.hpp"

namespace ddemos::crypto {

class Rng;

// C = m*G + r*H.
Point pedersen_commit(const Fn& m, const Fn& r);

struct PedersenShare {
  std::uint32_t x = 0;  // 1-based trustee index
  Fn f;                 // share of the secret polynomial
  Fn g;                 // share of the blinding polynomial
};

struct PedersenDeal {
  std::vector<PedersenShare> shares;   // one per trustee
  std::vector<Point> coefficient_comms;  // k commitments a_j*G + b_j*H
};

PedersenDeal pedersen_vss_deal(const Fn& secret, std::size_t k, std::size_t n,
                               Rng& rng);

// Checks f(i)*G + g(i)*H == sum_j i^j * C_j.
bool pedersen_vss_verify(const PedersenShare& share,
                         std::span<const Point> coefficient_comms);
// Pre-refactor verifier (Horner loop of full multiplications + ec_eq),
// kept for cross-check tests and benchmarks.
bool pedersen_vss_verify_naive(const PedersenShare& share,
                               std::span<const Point> coefficient_comms);

// Returns (secret, blind); throws CryptoError with fewer than k shares.
std::pair<Fn, Fn> pedersen_vss_reconstruct(
    std::span<const PedersenShare> shares, std::size_t k);

// Homomorphic share addition (same x required).
PedersenShare pedersen_share_add(const PedersenShare& a,
                                 const PedersenShare& b);

}  // namespace ddemos::crypto
