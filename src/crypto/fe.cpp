#include "crypto/fe.hpp"

namespace ddemos::crypto {

template <>
const MontParams& params<FieldTag>() {
  static const MontParams p = make_mont_params(detail::kFieldP);
  return p;
}

template <>
const MontParams& params<ScalarTag>() {
  static const MontParams p = make_mont_params(detail::kOrderN);
  return p;
}

U256 FieldOps<FieldTag>::pow(const U256& a, const U256& e) {
  U256 acc = U256::from_u64(1);
  for (int i = 255; i >= 0; --i) {
    acc = sqr(acc);
    if (e.bit(i)) acc = mul(acc, a);
  }
  return acc;
}

namespace {

Fp sqr_n(Fp x, int n) {
  for (int i = 0; i < n; ++i) x = x.sqr();
  return x;
}

}  // namespace

// Addition chain for a^(p-2) over p = 2^256 - 2^32 - 977. The exponent is
// 223 ones, a zero, 22 ones, then the tail 0b0000101101; x<k> below denotes
// a^(2^k - 1). Inverse of zero is zero (every step maps 0 to 0).
template <>
Fp Fp::inv() const {
  const Fp& a = *this;
  Fp x2 = a.sqr() * a;
  Fp x3 = x2.sqr() * a;
  Fp x6 = sqr_n(x3, 3) * x3;
  Fp x9 = sqr_n(x6, 3) * x3;
  Fp x11 = sqr_n(x9, 2) * x2;
  Fp x22 = sqr_n(x11, 11) * x11;
  Fp x44 = sqr_n(x22, 22) * x22;
  Fp x88 = sqr_n(x44, 44) * x44;
  Fp x176 = sqr_n(x88, 88) * x88;
  Fp x220 = sqr_n(x176, 44) * x44;
  Fp x223 = sqr_n(x220, 3) * x3;
  Fp t = sqr_n(x223, 23) * x22;  // 223 ones, gap, 22 ones
  t = sqr_n(t, 5) * a;           // tail 00001
  t = sqr_n(t, 3) * x2;          // tail 011
  return sqr_n(t, 2) * a;        // tail 01
}

}  // namespace ddemos::crypto
