#include "crypto/fe.hpp"

namespace ddemos::crypto {

namespace {

// secp256k1 base field prime p = 2^256 - 2^32 - 977.
constexpr U256 kFieldP{{0xFFFFFFFEFFFFFC2Full, 0xFFFFFFFFFFFFFFFFull,
                        0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}};
// secp256k1 group order n.
constexpr U256 kOrderN{{0xBFD25E8CD0364141ull, 0xBAAEDCE6AF48A03Bull,
                        0xFFFFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFFFFFull}};

}  // namespace

template <>
const MontParams& params<FieldTag>() {
  static const MontParams p = make_mont_params(kFieldP);
  return p;
}

template <>
const MontParams& params<ScalarTag>() {
  static const MontParams p = make_mont_params(kOrderN);
  return p;
}

}  // namespace ddemos::crypto
