// Lifted ElGamal over secp256k1, used as the additively homomorphic
// option-encoding commitment scheme (paper Section III-B): the commitment
// to a unit vector e_i is the element-wise encryption
//   Com(m; r) = (r*G, m*G + r*H)
// under the election commitment key H. It is perfectly binding (A fixes r,
// hence m) and computationally hiding under DDH. Component-wise products
// commit to coordinate sums, which is what the tally uses.
#pragma once

#include <vector>

#include "crypto/ec.hpp"

namespace ddemos::crypto {

struct ElGamalCipher {
  Point a, b;
};

ElGamalCipher eg_commit(const Point& key, const Fn& m, const Fn& r);
ElGamalCipher eg_add(const ElGamalCipher& x, const ElGamalCipher& y);
bool eg_eq(const ElGamalCipher& x, const ElGamalCipher& y);
// True iff (a,b) opens to (m, r) under `key`.
bool eg_open_check(const Point& key, const ElGamalCipher& c, const Fn& m,
                   const Fn& r);

Bytes eg_encode(const ElGamalCipher& c);      // 66 bytes
ElGamalCipher eg_decode(BytesView b);

// Unit-vector commitment: m ciphertexts where position `index` encrypts 1
// and all others 0, with fresh randomness rs[i].
std::vector<ElGamalCipher> eg_commit_unit_vector(const Point& key,
                                                 std::size_t m,
                                                 std::size_t index,
                                                 std::span<const Fn> rs);

}  // namespace ddemos::crypto
