// Binary Merkle tree over SHA-256. Each VC node's init data carries the
// Merkle root of every receipt-share list, so a receipt share received in a
// VOTE_P message can be validated locally ("according to the verifiable
// secret sharing scheme used", paper Section III-E) with log(Nv) hashes.
#pragma once

#include <vector>

#include "crypto/sha256.hpp"

namespace ddemos::crypto {

class MerkleTree {
 public:
  // Takes ownership of precomputed leaf hashes. Must be non-empty.
  explicit MerkleTree(std::vector<Hash32> leaves);

  const Hash32& root() const { return levels_.back()[0]; }
  std::size_t leaf_count() const { return levels_[0].size(); }
  // Sibling path from leaf `index` to the root.
  std::vector<Hash32> path(std::size_t index) const;

  static bool verify(const Hash32& root, const Hash32& leaf,
                     std::size_t index, std::span<const Hash32> path);

  static Hash32 leaf_hash(BytesView data);

 private:
  static Hash32 node_hash(const Hash32& l, const Hash32& r);
  std::vector<std::vector<Hash32>> levels_;
};

}  // namespace ddemos::crypto
