// Chaum-Pedersen zero-knowledge proofs for ballot correctness (paper
// Sections III-B and III-D). For each option-encoding ciphertext
// (A, B) = (r*G, m*G + r*K) under commitment key K the EA proves with a
// Sigma-OR proof that m is 0 or 1, and for each encoding that the
// component sum encrypts exactly 1.
//
// The protocol is split across time exactly as in the paper:
//   1. The EA computes the FIRST MOVES and posts them on the BB at setup.
//   2. The election-wide CHALLENGE is extracted from the voters' A/B part
//      choices ("the voters' coins") after the election.
//   3. The trustees jointly produce the RESPONSES: every response scalar is
//      an affine function rho(c) = u + c*v of the challenge, and the EA
//      secret-shares the (u, v) coefficients among the trustees. A trustee
//      evaluates its share of rho at c; combining ht shares yields the
//      response without any single party knowing the prover randomness.
#pragma once

#include <vector>

#include "crypto/elgamal.hpp"

namespace ddemos::crypto {

class Rng;

// rho(c) = u + c*v over the scalar field.
struct AffineScalar {
  Fn u, v;
  Fn at(const Fn& c) const { return u + c * v; }
};

// --- Sigma-OR proof that a ciphertext encrypts 0 or 1 -----------------

struct BitProofFirstMove {
  // Branch 0 proves (A, B) is a DH pair; branch 1 proves (A, B - G) is.
  Point t1_0, t2_0, t1_1, t2_1;
};

struct BitProofResponse {
  Fn c0, c1, z0, z1;
};

// The prover state the EA shares with the trustees: all four response
// components as affine functions of the global challenge.
struct BitProofSecrets {
  AffineScalar c0, c1, z0, z1;
  BitProofResponse at(const Fn& c) const {
    return BitProofResponse{c0.at(c), c1.at(c), z0.at(c), z1.at(c)};
  }
};

struct BitProof {
  BitProofFirstMove first_move;
  BitProofSecrets secrets;
};

// `bit` must be the plaintext of `cipher` and `r` its randomness.
BitProof prove_bit(const Point& key, const ElGamalCipher& cipher, bool bit,
                   const Fn& r, Rng& rng);

bool verify_bit(const Point& key, const ElGamalCipher& cipher,
                const BitProofFirstMove& fm, const Fn& challenge,
                const BitProofResponse& resp);
// Pre-refactor verifier (independent full multiplications + ec_eq per
// equation), kept for cross-check tests and benchmarks.
bool verify_bit_naive(const Point& key, const ElGamalCipher& cipher,
                      const BitProofFirstMove& fm, const Fn& challenge,
                      const BitProofResponse& resp);

// --- Chaum-Pedersen proof that the ciphertext sum encrypts `total` ----

struct SumProofFirstMove {
  Point t1, t2;
};

struct SumProof {
  SumProofFirstMove first_move;
  AffineScalar z;  // z(c) = w + c*R, R = sum of randomness
};

SumProof prove_sum(const Point& key, const Fn& total_randomness, Rng& rng);

// `sum` must be the component-wise sum of the encoding's ciphertexts.
bool verify_sum(const Point& key, const ElGamalCipher& sum, const Fn& total,
                const SumProofFirstMove& fm, const Fn& challenge,
                const Fn& z);
bool verify_sum_naive(const Point& key, const ElGamalCipher& sum,
                      const Fn& total, const SumProofFirstMove& fm,
                      const Fn& challenge, const Fn& z);

// --- Challenge extraction ----------------------------------------------

// The election-wide challenge is derived from the voters' A/B coin string
// (min-entropy theta if theta honest voters participated) plus the election
// id, exactly filling the role of the voters' coins in the paper.
Fn challenge_from_coins(BytesView election_id, BytesView coin_bits);

}  // namespace ddemos::crypto
