#include "crypto/zkp.hpp"

#include <array>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

BitProof prove_bit(const Point& key, const ElGamalCipher& cipher, bool bit,
                   const Fn& r, Rng& rng) {
  // Statement pair per branch: branch d proves log_G(A) = log_K(B - d*G).
  // Simulate the false branch with a random (c_sim, z_sim); run the real
  // branch honestly with fresh randomness w.
  Fn c_sim = random_scalar(rng);
  Fn z_sim = random_scalar(rng);
  Fn w = random_scalar(rng);

  const Point& g = ec_generator();
  Point b_sim = bit ? cipher.b : ec_sub(cipher.b, g);

  // Simulated first move: t1 = z*G - c*A, t2 = z*K - c*(B - d_sim*G), each
  // as one interleaved Strauss/MSM product.
  Point t1_sim = ec_mul2(c_sim, ec_neg(cipher.a), z_sim);
  std::array<Fn, 2> t2k{z_sim, c_sim};
  std::array<Point, 2> t2p{key, ec_neg(b_sim)};
  Point t2_sim = ec_msm(t2k, t2p);
  // Real first move: t1 = w*G, t2 = w*K.
  Point t1_real = ec_mul_g(w);
  Point t2_real = ec_mul(w, key);

  BitProof out;
  if (!bit) {
    out.first_move = {t1_real, t2_real, t1_sim, t2_sim};
    // c0 = c - c_sim, z0 = (w - c_sim*r) + c*r ; c1, z1 constant.
    out.secrets.c0 = {c_sim.neg(), Fn::one()};
    out.secrets.z0 = {w - c_sim * r, r};
    out.secrets.c1 = {c_sim, Fn::zero()};
    out.secrets.z1 = {z_sim, Fn::zero()};
  } else {
    out.first_move = {t1_sim, t2_sim, t1_real, t2_real};
    out.secrets.c0 = {c_sim, Fn::zero()};
    out.secrets.z0 = {z_sim, Fn::zero()};
    out.secrets.c1 = {c_sim.neg(), Fn::one()};
    out.secrets.z1 = {w - c_sim * r, r};
  }
  return out;
}

namespace {

// z*BASE - c*STMT - T == 0 as one 3-term MSM (the generator term inside
// ec_msm rides the static tables, so each equation costs one shared
// doubling ladder).
bool dh_equation_holds(const Fn& z, const Point& base, const Fn& c,
                       const Point& stmt, const Point& t) {
  std::array<Fn, 3> ks{z, c, Fn::one()};
  std::array<Point, 3> ps{base, ec_neg(stmt), ec_neg(t)};
  return ec_msm(ks, ps).is_infinity();
}

}  // namespace

bool verify_bit(const Point& key, const ElGamalCipher& cipher,
                const BitProofFirstMove& fm, const Fn& challenge,
                const BitProofResponse& resp) {
  if (!(resp.c0 + resp.c1 == challenge)) return false;
  const Point& g = ec_generator();
  // Branch 0: statement (A, B).
  if (!dh_equation_holds(resp.z0, g, resp.c0, cipher.a, fm.t1_0)) {
    return false;
  }
  if (!dh_equation_holds(resp.z0, key, resp.c0, cipher.b, fm.t2_0)) {
    return false;
  }
  // Branch 1: statement (A, B - G); the B - G adjustment folds into the
  // MSM as a +c1 coefficient on G.
  if (!dh_equation_holds(resp.z1, g, resp.c1, cipher.a, fm.t1_1)) {
    return false;
  }
  std::array<Fn, 4> ks{resp.z1, resp.c1, resp.c1, Fn::one()};
  std::array<Point, 4> ps{key, ec_neg(cipher.b), g, ec_neg(fm.t2_1)};
  return ec_msm(ks, ps).is_infinity();
}

bool verify_bit_naive(const Point& key, const ElGamalCipher& cipher,
                      const BitProofFirstMove& fm, const Fn& challenge,
                      const BitProofResponse& resp) {
  if (!(resp.c0 + resp.c1 == challenge)) return false;
  const Point& g = ec_generator();
  // Branch 0: statement (A, B).
  if (!ec_eq(ec_mul_g(resp.z0),
             ec_add(fm.t1_0, ec_mul_naive(resp.c0, cipher.a)))) {
    return false;
  }
  if (!ec_eq(ec_mul_naive(resp.z0, key),
             ec_add(fm.t2_0, ec_mul_naive(resp.c0, cipher.b)))) {
    return false;
  }
  // Branch 1: statement (A, B - G).
  Point b1 = ec_sub(cipher.b, g);
  if (!ec_eq(ec_mul_g(resp.z1),
             ec_add(fm.t1_1, ec_mul_naive(resp.c1, cipher.a)))) {
    return false;
  }
  return ec_eq(ec_mul_naive(resp.z1, key),
               ec_add(fm.t2_1, ec_mul_naive(resp.c1, b1)));
}

SumProof prove_sum(const Point& key, const Fn& total_randomness, Rng& rng) {
  Fn w = random_scalar(rng);
  SumProof out;
  out.first_move.t1 = ec_mul_g(w);
  out.first_move.t2 = ec_mul(w, key);
  out.z = {w, total_randomness};
  return out;
}

bool verify_sum(const Point& key, const ElGamalCipher& sum, const Fn& total,
                const SumProofFirstMove& fm, const Fn& challenge,
                const Fn& z) {
  // Statement: (A*, B* - total*G) is a DH pair w.r.t. (G, K). Each side
  // collapses into one MSM; the total*G adjustment becomes a
  // +challenge*total coefficient on G.
  const Point& g = ec_generator();
  if (!dh_equation_holds(z, g, challenge, sum.a, fm.t1)) return false;
  std::array<Fn, 4> ks{z, challenge * total, challenge, Fn::one()};
  std::array<Point, 4> ps{key, g, ec_neg(sum.b), ec_neg(fm.t2)};
  return ec_msm(ks, ps).is_infinity();
}

bool verify_sum_naive(const Point& key, const ElGamalCipher& sum,
                      const Fn& total, const SumProofFirstMove& fm,
                      const Fn& challenge, const Fn& z) {
  Point b_adj = ec_sub(sum.b, ec_mul_g(total));
  if (!ec_eq(ec_mul_g(z), ec_add(fm.t1, ec_mul_naive(challenge, sum.a)))) {
    return false;
  }
  return ec_eq(ec_mul_naive(z, key),
               ec_add(fm.t2, ec_mul_naive(challenge, b_adj)));
}

Fn challenge_from_coins(BytesView election_id, BytesView coin_bits) {
  Sha256 h;
  h.update(to_bytes("ddemos/zk-challenge"));
  h.update(election_id);
  h.update(coin_bits);
  return Fn::from_bytes_mod(hash_view(h.finish()));
}

}  // namespace ddemos::crypto
