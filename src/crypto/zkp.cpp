#include "crypto/zkp.hpp"

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

BitProof prove_bit(const Point& key, const ElGamalCipher& cipher, bool bit,
                   const Fn& r, Rng& rng) {
  // Statement pair per branch: branch d proves log_G(A) = log_K(B - d*G).
  // Simulate the false branch with a random (c_sim, z_sim); run the real
  // branch honestly with fresh randomness w.
  Fn c_sim = random_scalar(rng);
  Fn z_sim = random_scalar(rng);
  Fn w = random_scalar(rng);

  const Point& g = ec_generator();
  Point b_sim = bit ? cipher.b : ec_sub(cipher.b, g);

  // Simulated first move: t1 = z*G - c*A, t2 = z*K - c*(B - d_sim*G).
  Point t1_sim = ec_sub(ec_mul_g(z_sim), ec_mul(c_sim, cipher.a));
  Point t2_sim = ec_sub(ec_mul(z_sim, key), ec_mul(c_sim, b_sim));
  // Real first move: t1 = w*G, t2 = w*K.
  Point t1_real = ec_mul_g(w);
  Point t2_real = ec_mul(w, key);

  BitProof out;
  if (!bit) {
    out.first_move = {t1_real, t2_real, t1_sim, t2_sim};
    // c0 = c - c_sim, z0 = (w - c_sim*r) + c*r ; c1, z1 constant.
    out.secrets.c0 = {c_sim.neg(), Fn::one()};
    out.secrets.z0 = {w - c_sim * r, r};
    out.secrets.c1 = {c_sim, Fn::zero()};
    out.secrets.z1 = {z_sim, Fn::zero()};
  } else {
    out.first_move = {t1_sim, t2_sim, t1_real, t2_real};
    out.secrets.c0 = {c_sim, Fn::zero()};
    out.secrets.z0 = {z_sim, Fn::zero()};
    out.secrets.c1 = {c_sim.neg(), Fn::one()};
    out.secrets.z1 = {w - c_sim * r, r};
  }
  return out;
}

bool verify_bit(const Point& key, const ElGamalCipher& cipher,
                const BitProofFirstMove& fm, const Fn& challenge,
                const BitProofResponse& resp) {
  if (!(resp.c0 + resp.c1 == challenge)) return false;
  const Point& g = ec_generator();
  // Branch 0: statement (A, B).
  if (!ec_eq(ec_mul_g(resp.z0), ec_add(fm.t1_0, ec_mul(resp.c0, cipher.a)))) {
    return false;
  }
  if (!ec_eq(ec_mul(resp.z0, key),
             ec_add(fm.t2_0, ec_mul(resp.c0, cipher.b)))) {
    return false;
  }
  // Branch 1: statement (A, B - G).
  Point b1 = ec_sub(cipher.b, g);
  if (!ec_eq(ec_mul_g(resp.z1), ec_add(fm.t1_1, ec_mul(resp.c1, cipher.a)))) {
    return false;
  }
  return ec_eq(ec_mul(resp.z1, key), ec_add(fm.t2_1, ec_mul(resp.c1, b1)));
}

SumProof prove_sum(const Point& key, const Fn& total_randomness, Rng& rng) {
  Fn w = random_scalar(rng);
  SumProof out;
  out.first_move.t1 = ec_mul_g(w);
  out.first_move.t2 = ec_mul(w, key);
  out.z = {w, total_randomness};
  return out;
}

bool verify_sum(const Point& key, const ElGamalCipher& sum, const Fn& total,
                const SumProofFirstMove& fm, const Fn& challenge,
                const Fn& z) {
  // Statement: (A*, B* - total*G) is a DH pair w.r.t. (G, K).
  Point b_adj = ec_sub(sum.b, ec_mul_g(total));
  if (!ec_eq(ec_mul_g(z), ec_add(fm.t1, ec_mul(challenge, sum.a)))) {
    return false;
  }
  return ec_eq(ec_mul(z, key), ec_add(fm.t2, ec_mul(challenge, b_adj)));
}

Fn challenge_from_coins(BytesView election_id, BytesView coin_bits) {
  Sha256 h;
  h.update(to_bytes("ddemos/zk-challenge"));
  h.update(election_id);
  h.update(coin_bits);
  return Fn::from_bytes_mod(hash_view(h.finish()));
}

}  // namespace ddemos::crypto
