// Small commitment helpers used throughout the protocol:
//  - salted-hash commitments H(msg || salt) that let each VC node validate a
//    submitted vote code locally without ever storing it in the clear;
//  - the EA's AES-128-CBC$ vote-code encryptions [vote-code]_msk published
//    in the BB initialization data, plus the H_msk key fingerprint that lets
//    a BB node check the msk it reconstructs from VC key shares.
#pragma once

#include "crypto/sha256.hpp"

namespace ddemos::crypto {

class Rng;

// SHA256(msg || salt); `salt` is a fresh 64-bit value per commitment.
Hash32 salted_commit(BytesView msg, BytesView salt);
bool salted_commit_check(const Hash32& commitment, BytesView msg,
                         BytesView salt);

// H_msk = SHA256(msk || salt_msk) (paper Section III-D).
Hash32 msk_fingerprint(BytesView msk, BytesView salt);

Bytes encrypt_vote_code(BytesView msk16, BytesView vote_code, Rng& rng);
// Throws CryptoError if the key is wrong (bad padding).
Bytes decrypt_vote_code(BytesView msk16, BytesView blob);

}  // namespace ddemos::crypto
