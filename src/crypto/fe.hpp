// Typed field elements over the two secp256k1 moduli. Fp (base field) and
// Fn (scalar field / group order) are distinct C++ types so field and scalar
// arithmetic cannot be mixed accidentally. Fn is stored in Montgomery form;
// Fp exploits the pseudo-Mersenne prime and stays in plain canonical form
// with fold reduction (see FieldOps). Conversions happen at the byte
// boundary only.
#pragma once

#include "crypto/mont.hpp"
#include "util/bytes.hpp"

namespace ddemos::crypto {

struct FieldTag;   // p = 2^256 - 2^32 - 977
struct ScalarTag;  // n = secp256k1 group order

template <typename Tag>
const MontParams& params();

template <>
const MontParams& params<FieldTag>();
template <>
const MontParams& params<ScalarTag>();

namespace detail {

// secp256k1 base field prime p = 2^256 - 2^32 - 977.
inline constexpr U256 kFieldP{{0xFFFFFFFEFFFFFC2Full, 0xFFFFFFFFFFFFFFFFull,
                               0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}};
// secp256k1 group order n.
inline constexpr U256 kOrderN{{0xBFD25E8CD0364141ull, 0xBAAEDCE6AF48A03Bull,
                               0xFFFFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFFFFFull}};
// 2^256 - p = 2^32 + 977: a 512-bit product t = H*2^256 + L reduces as
// L + H*kFoldC — one 4-word multiply-accumulate pass plus a tiny cascade,
// far cheaper than a Montgomery REDC.
inline constexpr std::uint64_t kFoldC = 0x1000003D1ull;

inline U256 fp_reduce_wide(const U512& t) {
  using u128_t = unsigned __int128;
  U256 r;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128_t cur = static_cast<u128_t>(t[i]) +
                 static_cast<u128_t>(t[i + 4]) * kFoldC + carry;
    r.w[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  // Fold the (<= 34-bit) overflow back in; the cascade terminates because
  // each round's carry is a fraction of the previous one.
  while (carry != 0) {
    u128_t cur =
        static_cast<u128_t>(r.w[0]) + static_cast<u128_t>(carry) * kFoldC;
    r.w[0] = static_cast<std::uint64_t>(cur);
    std::uint64_t c = static_cast<std::uint64_t>(cur >> 64);
    for (std::size_t i = 1; i < 4 && c != 0; ++i) {
      u128_t s = static_cast<u128_t>(r.w[i]) + c;
      r.w[i] = static_cast<std::uint64_t>(s);
      c = static_cast<std::uint64_t>(s >> 64);
    }
    carry = c;  // wrapped past 2^256 again (at most once more)
  }
  if (cmp(r, kFieldP) >= 0) {
    U256 s;
    sub_bb(r, kFieldP, s);
    return s;
  }
  return r;
}

}  // namespace detail

// Per-field arithmetic kernels. The generic implementation stores values
// in Montgomery form; the base field specializes to plain canonical
// residues with the pseudo-Mersenne fold reduction, which is where the
// point formulas spend their time.
template <typename Tag>
struct FieldOps {
  static U256 one() { return params<Tag>().one_m; }
  static U256 add(const U256& a, const U256& b) {
    return mod_add(a, b, params<Tag>());
  }
  static U256 sub(const U256& a, const U256& b) {
    return mod_sub(a, b, params<Tag>());
  }
  static U256 mul(const U256& a, const U256& b) {
    return mont_mul(a, b, params<Tag>());
  }
  static U256 sqr(const U256& a) { return mont_sqr(a, params<Tag>()); }
  static U256 pow(const U256& a, const U256& e) {
    return mont_pow(a, e, params<Tag>());
  }
  // Conversions between the canonical residue and the internal form.
  static U256 from_canonical(const U256& a) {
    return mont_mul(a, params<Tag>().r2, params<Tag>());
  }
  static U256 to_canonical(const U256& a) {
    return mont_mul(a, U256::from_u64(1), params<Tag>());
  }
};

// secp256k1 base field: plain representation + fold reduction, fully
// inline against the constexpr modulus (no guarded-static MontParams
// access on the hot path).
template <>
struct FieldOps<FieldTag> {
  static U256 one() { return U256::from_u64(1); }
  static U256 add(const U256& a, const U256& b) {
    U256 r;
    std::uint64_t carry = add_cc(a, b, r);
    if (carry || cmp(r, detail::kFieldP) >= 0) {
      U256 t;
      sub_bb(r, detail::kFieldP, t);
      return t;
    }
    return r;
  }
  static U256 sub(const U256& a, const U256& b) {
    U256 r;
    if (sub_bb(a, b, r)) {
      U256 t;
      add_cc(r, detail::kFieldP, t);
      return t;
    }
    return r;
  }
  static U256 mul(const U256& a, const U256& b) {
    return detail::fp_reduce_wide(mul_wide(a, b));
  }
  static U256 sqr(const U256& a) {
    return detail::fp_reduce_wide(sqr_wide(a));
  }
  static U256 pow(const U256& a, const U256& e);  // fe.cpp
  static U256 from_canonical(const U256& a) { return a; }
  static U256 to_canonical(const U256& a) { return a; }
};

template <typename Tag>
class Fe {
 public:
  Fe() = default;

  static Fe zero() { return Fe{}; }
  static Fe one() {
    Fe r;
    r.v_ = FieldOps<Tag>::one();
    return r;
  }
  static Fe from_u64(std::uint64_t x) {
    Fe r;
    r.v_ = FieldOps<Tag>::from_canonical(U256::from_u64(x));
    return r;
  }
  // Interprets 32 big-endian bytes, reduced mod the modulus.
  static Fe from_bytes_mod(BytesView b32) {
    Fe r;
    r.v_ = FieldOps<Tag>::from_canonical(
        mod_reduce(U256::from_bytes_be(b32), params<Tag>()));
    return r;
  }
  static Fe from_u256_mod(const U256& x) {
    Fe r;
    r.v_ = FieldOps<Tag>::from_canonical(mod_reduce(x, params<Tag>()));
    return r;
  }

  // Canonical value (independent of the internal representation).
  U256 to_u256() const { return FieldOps<Tag>::to_canonical(v_); }
  Bytes to_bytes_be() const { return to_u256().to_bytes_be(); }

  bool is_zero() const { return v_.is_zero(); }
  friend bool operator==(const Fe&, const Fe&) = default;

  friend Fe operator+(const Fe& a, const Fe& b) {
    Fe r;
    r.v_ = FieldOps<Tag>::add(a.v_, b.v_);
    return r;
  }
  friend Fe operator-(const Fe& a, const Fe& b) {
    Fe r;
    r.v_ = FieldOps<Tag>::sub(a.v_, b.v_);
    return r;
  }
  friend Fe operator*(const Fe& a, const Fe& b) {
    Fe r;
    r.v_ = FieldOps<Tag>::mul(a.v_, b.v_);
    return r;
  }
  Fe neg() const { return zero() - *this; }
  Fe sqr() const {
    Fe r;
    r.v_ = FieldOps<Tag>::sqr(v_);
    return r;
  }
  Fe pow(const U256& e) const {
    Fe r;
    r.v_ = FieldOps<Tag>::pow(v_, e);
    return r;
  }
  // Multiplicative inverse via Fermat; inverse of zero is zero.
  Fe inv() const { return pow(params<Tag>().mod_minus_2); }

 private:
  U256 v_{};  // FieldOps<Tag> internal form (Montgomery for Fn, plain Fp)
};

// The base-field inverse uses a fixed addition chain for p - 2
// (255 squarings + 15 multiplies, vs ~256 squarings + ~240 multiplies for
// the generic square-and-multiply Fermat ladder); defined in fe.cpp.
template <>
Fe<FieldTag> Fe<FieldTag>::inv() const;

using Fp = Fe<FieldTag>;
using Fn = Fe<ScalarTag>;

}  // namespace ddemos::crypto
