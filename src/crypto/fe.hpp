// Typed field elements over the two secp256k1 moduli. Fp (base field) and
// Fn (scalar field / group order) are distinct C++ types so field and scalar
// arithmetic cannot be mixed accidentally. Values are stored in Montgomery
// form; conversions happen at the byte boundary only.
#pragma once

#include "crypto/mont.hpp"
#include "util/bytes.hpp"

namespace ddemos::crypto {

struct FieldTag;   // p = 2^256 - 2^32 - 977
struct ScalarTag;  // n = secp256k1 group order

template <typename Tag>
const MontParams& params();

template <>
const MontParams& params<FieldTag>();
template <>
const MontParams& params<ScalarTag>();

template <typename Tag>
class Fe {
 public:
  Fe() = default;

  static Fe zero() { return Fe{}; }
  static Fe one() {
    Fe r;
    r.v_ = params<Tag>().one_m;
    return r;
  }
  static Fe from_u64(std::uint64_t x) {
    Fe r;
    r.v_ = mont_mul(U256::from_u64(x), params<Tag>().r2, params<Tag>());
    return r;
  }
  // Interprets 32 big-endian bytes, reduced mod the modulus.
  static Fe from_bytes_mod(BytesView b32) {
    Fe r;
    r.v_ = mont_mul(mod_reduce(U256::from_bytes_be(b32), params<Tag>()),
                    params<Tag>().r2, params<Tag>());
    return r;
  }
  static Fe from_u256_mod(const U256& x) {
    Fe r;
    r.v_ = mont_mul(mod_reduce(x, params<Tag>()), params<Tag>().r2,
                    params<Tag>());
    return r;
  }

  // Canonical (non-Montgomery) value.
  U256 to_u256() const {
    return mont_mul(v_, U256::from_u64(1), params<Tag>());
  }
  Bytes to_bytes_be() const { return to_u256().to_bytes_be(); }

  bool is_zero() const { return v_.is_zero(); }
  friend bool operator==(const Fe&, const Fe&) = default;

  friend Fe operator+(const Fe& a, const Fe& b) {
    Fe r;
    r.v_ = mod_add(a.v_, b.v_, params<Tag>());
    return r;
  }
  friend Fe operator-(const Fe& a, const Fe& b) {
    Fe r;
    r.v_ = mod_sub(a.v_, b.v_, params<Tag>());
    return r;
  }
  friend Fe operator*(const Fe& a, const Fe& b) {
    Fe r;
    r.v_ = mont_mul(a.v_, b.v_, params<Tag>());
    return r;
  }
  Fe neg() const { return zero() - *this; }
  Fe sqr() const { return *this * *this; }
  Fe pow(const U256& e) const {
    Fe r;
    r.v_ = mont_pow(v_, e, params<Tag>());
    return r;
  }
  // Multiplicative inverse via Fermat; inverse of zero is zero.
  Fe inv() const { return pow(params<Tag>().mod_minus_2); }

 private:
  U256 v_{};  // Montgomery form
};

using Fp = Fe<FieldTag>;
using Fn = Fe<ScalarTag>;

}  // namespace ddemos::crypto
