#include "crypto/shamir.hpp"

#include "crypto/ec.hpp"
#include "crypto/rng.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

std::vector<Share> shamir_deal(const Fn& secret, std::size_t k, std::size_t n,
                               Rng& rng) {
  if (k == 0 || k > n) throw CryptoError("shamir_deal: need 0 < k <= n");
  std::vector<Fn> coeff;
  coeff.reserve(k);
  coeff.push_back(secret);
  for (std::size_t i = 1; i < k; ++i) coeff.push_back(random_scalar(rng));

  std::vector<Share> shares;
  shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    Fn x = Fn::from_u64(i);
    // Horner evaluation.
    Fn y = coeff.back();
    for (std::size_t j = coeff.size() - 1; j-- > 0;) {
      y = y * x + coeff[j];
    }
    shares.push_back(Share{static_cast<std::uint32_t>(i), y});
  }
  return shares;
}

Fn shamir_reconstruct(std::span<const Share> shares, std::size_t k) {
  if (shares.size() < k) throw CryptoError("shamir_reconstruct: too few shares");
  std::vector<Share> pts;
  pts.reserve(k);
  for (const Share& s : shares) {
    bool dup = false;
    for (const Share& p : pts) {
      if (p.x == s.x) {
        dup = true;
        break;
      }
    }
    if (!dup) pts.push_back(s);
    if (pts.size() == k) break;
  }
  if (pts.size() < k) {
    throw CryptoError("shamir_reconstruct: duplicate share points");
  }
  Fn acc = Fn::zero();
  for (std::size_t i = 0; i < k; ++i) {
    Fn num = Fn::one();
    Fn den = Fn::one();
    Fn xi = Fn::from_u64(pts[i].x);
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      Fn xj = Fn::from_u64(pts[j].x);
      num = num * xj;
      den = den * (xj - xi);
    }
    acc = acc + pts[i].y * num * den.inv();
  }
  return acc;
}

}  // namespace ddemos::crypto
