#include "crypto/batch.hpp"

#include "util/thread_pool.hpp"

#include <algorithm>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

namespace {

// Deterministic 128-bit weights drawn from a Fiat-Shamir seed over the
// instance set. Short weights keep their wNAFs (and therefore the extra
// MSM work per instance) at half length.
class WeightStream {
 public:
  explicit WeightStream(const Hash32& seed) : seed_(seed) {}

  Fn next() {
    for (;;) {
      Sha256 h;
      h.update(to_bytes("ddemos/batch/weight"));
      h.update(hash_view(seed_));
      std::uint8_t ctr[8];
      for (int i = 0; i < 8; ++i) {
        ctr[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
      }
      ++counter_;
      h.update(BytesView(ctr, 8));
      Hash32 out = h.finish();
      Bytes b(32, 0);
      std::copy(out.begin(), out.begin() + 16, b.begin() + 16);
      Fn w = Fn::from_bytes_mod(b);
      if (!w.is_zero()) return w;  // zero weight would unweight an instance
    }
  }

 private:
  Hash32 seed_;
  std::uint64_t counter_ = 0;
};

void absorb_scalar(Sha256& h, const Fn& s) { h.update(s.to_bytes_be()); }

void absorb_point(Sha256& h, const Point& p) { h.update(ec_encode(p)); }

bool schnorr_batch_one(std::span<const SchnorrInstance> xs) {
  if (xs.empty()) return true;
  Sha256 seed;
  seed.update(to_bytes("ddemos/batch/schnorr"));
  for (const SchnorrInstance& x : xs) {
    seed.update(x.pk);
    seed.update(x.msg);
    seed.update(x.sig);
  }
  WeightStream ws(seed.finish());

  std::vector<Fn> ks;
  std::vector<Point> ps;
  ks.reserve(2 * xs.size() + 1);
  ps.reserve(2 * xs.size() + 1);
  Fn g_coeff = Fn::zero();
  try {
    for (const SchnorrInstance& x : xs) {
      if (x.sig.size() != 65 || x.pk.size() != 33) return false;
      BytesView sig(x.sig);
      Point r = ec_decode(sig.subspan(0, 33));
      Fn s = Fn::from_bytes_mod(sig.subspan(33));
      Point pub = ec_decode(x.pk);
      Fn e = schnorr_challenge(sig.subspan(0, 33), x.pk, x.msg);
      // w*(s*G - R - e*P) summed over the batch.
      Fn w = ws.next();
      g_coeff = g_coeff + w * s;
      ks.push_back(w);
      ps.push_back(ec_neg(r));
      ks.push_back(w * e);
      ps.push_back(ec_neg(pub));
    }
  } catch (const CryptoError&) {
    return false;
  }
  ks.push_back(g_coeff);
  ps.push_back(ec_generator());
  return ec_msm(ks, ps).is_infinity();
}

bool bit_batch_one(const Point& key, std::span<const BitProofInstance> xs) {
  if (xs.empty()) return true;
  // The challenge-splitting constraint is exact per instance.
  for (const BitProofInstance& x : xs) {
    if (!(x.resp.c0 + x.resp.c1 == x.challenge)) return false;
  }
  Sha256 seed;
  seed.update(to_bytes("ddemos/batch/bit"));
  absorb_point(seed, key);
  for (const BitProofInstance& x : xs) {
    absorb_point(seed, x.cipher.a);
    absorb_point(seed, x.cipher.b);
    absorb_point(seed, x.fm.t1_0);
    absorb_point(seed, x.fm.t2_0);
    absorb_point(seed, x.fm.t1_1);
    absorb_point(seed, x.fm.t2_1);
    absorb_scalar(seed, x.challenge);
    absorb_scalar(seed, x.resp.c0);
    absorb_scalar(seed, x.resp.c1);
    absorb_scalar(seed, x.resp.z0);
    absorb_scalar(seed, x.resp.z1);
  }
  WeightStream ws(seed.finish());

  // Sum over instances of
  //   w1*(z0*G - c0*A - t1_0) + w2*(z0*K - c0*B - t2_0)
  // + w3*(z1*G - c1*A - t1_1) + w4*(z1*K - c1*B + c1*G - t2_1) == 0.
  std::vector<Fn> ks;
  std::vector<Point> ps;
  ks.reserve(6 * xs.size() + 2);
  ps.reserve(6 * xs.size() + 2);
  Fn g_coeff = Fn::zero();
  Fn k_coeff = Fn::zero();
  for (const BitProofInstance& x : xs) {
    Fn w1 = ws.next(), w2 = ws.next(), w3 = ws.next(), w4 = ws.next();
    g_coeff = g_coeff + w1 * x.resp.z0 + w3 * x.resp.z1 + w4 * x.resp.c1;
    k_coeff = k_coeff + w2 * x.resp.z0 + w4 * x.resp.z1;
    ks.push_back(w1 * x.resp.c0 + w3 * x.resp.c1);
    ps.push_back(ec_neg(x.cipher.a));
    ks.push_back(w2 * x.resp.c0 + w4 * x.resp.c1);
    ps.push_back(ec_neg(x.cipher.b));
    ks.push_back(w1);
    ps.push_back(ec_neg(x.fm.t1_0));
    ks.push_back(w2);
    ps.push_back(ec_neg(x.fm.t2_0));
    ks.push_back(w3);
    ps.push_back(ec_neg(x.fm.t1_1));
    ks.push_back(w4);
    ps.push_back(ec_neg(x.fm.t2_1));
  }
  ks.push_back(k_coeff);
  ps.push_back(key);
  ks.push_back(g_coeff);
  ps.push_back(ec_generator());
  return ec_msm(ks, ps).is_infinity();
}

bool sum_batch_one(const Point& key, std::span<const SumProofInstance> xs) {
  if (xs.empty()) return true;
  Sha256 seed;
  seed.update(to_bytes("ddemos/batch/sum"));
  absorb_point(seed, key);
  for (const SumProofInstance& x : xs) {
    absorb_point(seed, x.sum.a);
    absorb_point(seed, x.sum.b);
    absorb_point(seed, x.fm.t1);
    absorb_point(seed, x.fm.t2);
    absorb_scalar(seed, x.total);
    absorb_scalar(seed, x.challenge);
    absorb_scalar(seed, x.z);
  }
  WeightStream ws(seed.finish());

  // Sum over instances of
  //   w1*(z*G - c*A - t1) + w2*(z*K - c*B + c*total*G - t2) == 0.
  std::vector<Fn> ks;
  std::vector<Point> ps;
  ks.reserve(4 * xs.size() + 2);
  ps.reserve(4 * xs.size() + 2);
  Fn g_coeff = Fn::zero();
  Fn k_coeff = Fn::zero();
  for (const SumProofInstance& x : xs) {
    Fn w1 = ws.next(), w2 = ws.next();
    g_coeff = g_coeff + w1 * x.z + w2 * x.challenge * x.total;
    k_coeff = k_coeff + w2 * x.z;
    ks.push_back(w1 * x.challenge);
    ps.push_back(ec_neg(x.sum.a));
    ks.push_back(w2 * x.challenge);
    ps.push_back(ec_neg(x.sum.b));
    ks.push_back(w1);
    ps.push_back(ec_neg(x.fm.t1));
    ks.push_back(w2);
    ps.push_back(ec_neg(x.fm.t2));
  }
  ks.push_back(k_coeff);
  ps.push_back(key);
  ks.push_back(g_coeff);
  ps.push_back(ec_generator());
  return ec_msm(ks, ps).is_infinity();
}

bool pvss_batch_one(std::span<const PedersenVssInstance> xs) {
  if (xs.empty()) return true;
  std::size_t comm_terms = 0;
  for (const PedersenVssInstance& x : xs) {
    // The per-instance verifier rejects an empty commitment vector; so
    // must the combined check (a zero contribution would accept it).
    if (x.comms.empty()) return false;
    comm_terms += x.comms.size();
  }
  Sha256 seed;
  seed.update(to_bytes("ddemos/batch/pvss"));
  for (const PedersenVssInstance& x : xs) {
    std::uint8_t idx[4];
    for (int i = 0; i < 4; ++i) {
      idx[i] = static_cast<std::uint8_t>(x.share.x >> (8 * i));
    }
    seed.update(BytesView(idx, 4));
    absorb_scalar(seed, x.share.f);
    absorb_scalar(seed, x.share.g);
    for (const Point& c : x.comms) absorb_point(seed, c);
  }
  WeightStream ws(seed.finish());

  // Sum over instances of w*(f*G + g*H - sum_j x^j C_j) == 0: G and H each
  // collect one combined scalar, every coefficient commitment contributes
  // one w*x^j term (x is a small trustee index, but w*x^j is full-size —
  // the weights dominate the extra MSM work per instance).
  std::vector<Fn> ks;
  std::vector<Point> ps;
  ks.reserve(comm_terms + 2);
  ps.reserve(comm_terms + 2);
  Fn g_coeff = Fn::zero();
  Fn h_coeff = Fn::zero();
  for (const PedersenVssInstance& x : xs) {
    Fn w = ws.next();
    g_coeff = g_coeff + w * x.share.f;
    h_coeff = h_coeff + w * x.share.g;
    Fn xi = Fn::from_u64(x.share.x);
    Fn xp = w;
    for (const Point& c : x.comms) {
      ks.push_back(xp);
      ps.push_back(ec_neg(c));
      xp = xp * xi;
    }
  }
  ks.push_back(g_coeff);
  ps.push_back(ec_generator());
  ks.push_back(h_coeff);
  ps.push_back(ec_generator_h());
  return ec_msm(ks, ps).is_infinity();
}

bool open_batch_one(const Point& key, std::span<const EgOpenInstance> xs) {
  if (xs.empty()) return true;
  Sha256 seed;
  seed.update(to_bytes("ddemos/batch/open"));
  absorb_point(seed, key);
  for (const EgOpenInstance& x : xs) {
    absorb_point(seed, x.cipher.a);
    absorb_point(seed, x.cipher.b);
    absorb_scalar(seed, x.m);
    absorb_scalar(seed, x.r);
  }
  WeightStream ws(seed.finish());

  // Sum over instances of w1*(r*G - A) + w2*(m*G + r*K - B) == 0; only the
  // short weights multiply the batch points.
  std::vector<Fn> ks;
  std::vector<Point> ps;
  ks.reserve(2 * xs.size() + 2);
  ps.reserve(2 * xs.size() + 2);
  Fn g_coeff = Fn::zero();
  Fn k_coeff = Fn::zero();
  for (const EgOpenInstance& x : xs) {
    Fn w1 = ws.next(), w2 = ws.next();
    g_coeff = g_coeff + w1 * x.r + w2 * x.m;
    k_coeff = k_coeff + w2 * x.r;
    ks.push_back(w1);
    ps.push_back(ec_neg(x.cipher.a));
    ks.push_back(w2);
    ps.push_back(ec_neg(x.cipher.b));
  }
  ks.push_back(k_coeff);
  ps.push_back(key);
  ks.push_back(g_coeff);
  ps.push_back(ec_generator());
  return ec_msm(ks, ps).is_infinity();
}

// Fixed-size chunks keep the decomposition (and every chunk's Fiat-Shamir
// weights) independent of the worker count; a short batch skips the pool.
constexpr std::size_t kBatchChunk = 256;

template <typename Inst, typename VerifyOne>
bool chunked_batch(std::span<const Inst> xs, util::ThreadPool* pool,
                   const VerifyOne& one) {
  if (!pool || pool->n_threads() <= 1 || xs.size() <= kBatchChunk) {
    return one(xs);
  }
  const std::size_t n_chunks = (xs.size() + kBatchChunk - 1) / kBatchChunk;
  std::vector<char> ok(n_chunks, 0);
  pool->parallel_for(xs.size(), kBatchChunk,
                     [&](std::size_t b, std::size_t e) {
                       ok[b / kBatchChunk] = one(xs.subspan(b, e - b)) ? 1 : 0;
                     });
  return std::all_of(ok.begin(), ok.end(), [](char c) { return c != 0; });
}

}  // namespace

bool schnorr_verify_batch(std::span<const SchnorrInstance> xs,
                          util::ThreadPool* pool) {
  return chunked_batch(xs, pool, [](std::span<const SchnorrInstance> c) {
    return schnorr_batch_one(c);
  });
}

bool verify_bit_batch(const Point& key, std::span<const BitProofInstance> xs,
                      util::ThreadPool* pool) {
  return chunked_batch(xs, pool, [&key](std::span<const BitProofInstance> c) {
    return bit_batch_one(key, c);
  });
}

bool verify_sum_batch(const Point& key, std::span<const SumProofInstance> xs,
                      util::ThreadPool* pool) {
  return chunked_batch(xs, pool, [&key](std::span<const SumProofInstance> c) {
    return sum_batch_one(key, c);
  });
}

bool pedersen_vss_verify_batch(std::span<const PedersenVssInstance> xs,
                               util::ThreadPool* pool) {
  return chunked_batch(xs, pool, [](std::span<const PedersenVssInstance> c) {
    return pvss_batch_one(c);
  });
}

bool eg_open_check_batch(const Point& key, std::span<const EgOpenInstance> xs,
                         util::ThreadPool* pool) {
  return chunked_batch(xs, pool, [&key](std::span<const EgOpenInstance> c) {
    return open_batch_one(key, c);
  });
}

}  // namespace ddemos::crypto
