#include "crypto/ec.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ddemos::crypto {

namespace {

const Fp kCurveB = Fp::from_u64(7);

// sqrt exponent (p+1)/4; valid because p = 3 mod 4.
const U256& sqrt_exp() {
  static const U256 e = [] {
    U256 p = params<FieldTag>().mod;
    U256 one = U256::from_u64(1);
    U256 p1;
    add_cc(p, one, p1);  // cannot overflow: p < 2^256 - 1
    return shr1(shr1(p1));
  }();
  return e;
}

// y^2 = x^3 + 7; returns false if x is not on the curve.
bool lift_x(const Fp& x, Fp& y_out) {
  Fp rhs = x.sqr() * x + kCurveB;
  Fp y = rhs.pow(sqrt_exp());
  if (!(y.sqr() == rhs)) return false;
  y_out = y;
  return true;
}

}  // namespace

bool on_curve(const AffinePoint& a) {
  if (a.infinity) return true;
  return a.y.sqr() == a.x.sqr() * a.x + kCurveB;
}

Point from_affine(const AffinePoint& a) {
  if (a.infinity) return Point::infinity();
  return Point{a.x, a.y, Fp::one()};
}

AffinePoint to_affine(const Point& p) {
  if (p.is_infinity()) return AffinePoint{{}, {}, true};
  // Batch-normalized points arrive with Z == 1; skip the inversion.
  if (p.Z == Fp::one()) return AffinePoint{p.X, p.Y, false};
  Fp zi = p.Z.inv();
  Fp zi2 = zi.sqr();
  return AffinePoint{p.X * zi2, p.Y * zi2 * zi, false};
}

std::vector<AffinePoint> batch_to_affine(std::span<const Point> pts) {
  // Montgomery's simultaneous-inversion trick: one field inversion plus
  // 3(N-1) multiplies to clear every Z.
  std::vector<AffinePoint> out(pts.size());
  std::vector<Fp> prefix(pts.size());
  Fp run = Fp::one();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].is_infinity()) {
      out[i].infinity = true;
      continue;
    }
    prefix[i] = run;
    run = run * pts[i].Z;
  }
  Fp inv = run.inv();
  for (std::size_t i = pts.size(); i-- > 0;) {
    if (pts[i].is_infinity()) continue;
    Fp zi = prefix[i] * inv;
    inv = inv * pts[i].Z;
    Fp zi2 = zi.sqr();
    out[i] = AffinePoint{pts[i].X * zi2, pts[i].Y * zi2 * zi, false};
  }
  return out;
}

void ec_normalize_batch(std::span<Point> pts) {
  std::vector<AffinePoint> aff = batch_to_affine(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) pts[i] = from_affine(aff[i]);
}

Point ec_double(const Point& p) {
  if (p.is_infinity() || p.Y.is_zero()) return Point::infinity();
  // dbl-2009-l formulas for a = 0.
  Fp a = p.X.sqr();
  Fp b = p.Y.sqr();
  Fp c = b.sqr();
  Fp d = ((p.X + b).sqr() - a - c);
  d = d + d;
  Fp e = a + a + a;
  Fp f = e.sqr();
  Point r;
  r.X = f - (d + d);
  Fp c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  r.Y = e * (d - r.X) - c8;
  r.Z = (p.Y * p.Z);
  r.Z = r.Z + r.Z;
  return r;
}

Point ec_add(const Point& p, const Point& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  // add-2007-bl
  Fp z1z1 = p.Z.sqr();
  Fp z2z2 = q.Z.sqr();
  Fp u1 = p.X * z2z2;
  Fp u2 = q.X * z1z1;
  Fp s1 = p.Y * q.Z * z2z2;
  Fp s2 = q.Y * p.Z * z1z1;
  if (u1 == u2) {
    if (s1 == s2) return ec_double(p);
    return Point::infinity();
  }
  Fp h = u2 - u1;
  Fp i = (h + h).sqr();
  Fp j = h * i;
  Fp r2 = s2 - s1;
  Fp r = r2 + r2;
  Fp v = u1 * i;
  Point out;
  out.X = r.sqr() - j - v - v;
  Fp s1j = s1 * j;
  out.Y = r * (v - out.X) - (s1j + s1j);
  out.Z = ((p.Z + q.Z).sqr() - z1z1 - z2z2) * h;
  return out;
}

Point ec_add_mixed(const Point& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.is_infinity()) return from_affine(q);
  // madd-2007-bl: Z2 = 1, so U1 = X1 and S1 = Y1.
  Fp z1z1 = p.Z.sqr();
  Fp u2 = q.x * z1z1;
  Fp s2 = q.y * p.Z * z1z1;
  if (u2 == p.X) {
    if (s2 == p.Y) return ec_double(p);
    return Point::infinity();
  }
  Fp h = u2 - p.X;
  Fp hh = h.sqr();
  Fp i = hh + hh;
  i = i + i;
  Fp j = h * i;
  Fp r = s2 - p.Y;
  r = r + r;
  Fp v = p.X * i;
  Point out;
  out.X = r.sqr() - j - v - v;
  Fp yj = p.Y * j;
  out.Y = r * (v - out.X) - (yj + yj);
  out.Z = (p.Z + h).sqr() - z1z1 - hh;
  return out;
}

namespace {

// add-2007-bl with the h factor exported: Z3 = 2*Z1*Z2*h, so table-chain
// builders can track Z ratios without divisions (effective-affine tables).
// Callers guarantee p != +-q and neither operand is infinity.
Point ec_add_h(const Point& p, const Point& q, Fp* h_out) {
  Fp z1z1 = p.Z.sqr();
  Fp z2z2 = q.Z.sqr();
  Fp u1 = p.X * z2z2;
  Fp u2 = q.X * z1z1;
  Fp s1 = p.Y * q.Z * z2z2;
  Fp s2 = q.Y * p.Z * z1z1;
  Fp h = u2 - u1;
  Fp i = (h + h).sqr();
  Fp j = h * i;
  Fp r2 = s2 - s1;
  Fp r = r2 + r2;
  Fp v = u1 * i;
  Point out;
  out.X = r.sqr() - j - v - v;
  Fp s1j = s1 * j;
  out.Y = r * (v - out.X) - (s1j + s1j);
  out.Z = ((p.Z + q.Z).sqr() - z1z1 - z2z2) * h;
  *h_out = h;
  return out;
}

}  // namespace

Point ec_neg(const Point& p) {
  if (p.is_infinity()) return p;
  return Point{p.X, p.Y.neg(), p.Z};
}

Point ec_sub(const Point& p, const Point& q) { return ec_add(p, ec_neg(q)); }

Point ec_mul_naive(const Fn& k, const Point& p) {
  U256 e = k.to_u256();
  Point acc = Point::infinity();
  for (int i = 255; i >= 0; --i) {
    acc = ec_double(acc);
    if (e.bit(i)) acc = ec_add(acc, p);
  }
  return acc;
}

bool ec_eq(const Point& p, const Point& q) {
  if (p.is_infinity() || q.is_infinity()) {
    return p.is_infinity() == q.is_infinity();
  }
  // Cross-multiplied Jacobian comparison.
  Fp z1z1 = p.Z.sqr();
  Fp z2z2 = q.Z.sqr();
  if (!(p.X * z2z2 == q.X * z1z1)) return false;
  return p.Y * z2z2 * q.Z == q.Y * z1z1 * p.Z;
}

const Point& ec_generator() {
  static const Point g = [] {
    AffinePoint a;
    a.x = Fp::from_bytes_mod(from_hex(
        "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"));
    a.y = Fp::from_bytes_mod(from_hex(
        "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"));
    if (!on_curve(a)) throw CryptoError("generator not on curve");
    return from_affine(a);
  }();
  return g;
}

const Point& ec_generator_h() {
  static const Point h = [] {
    // Nothing-up-my-sleeve: hash a domain tag with a counter to an x
    // coordinate until it lifts to the curve; take the even-y point.
    for (std::uint32_t ctr = 0;; ++ctr) {
      Bytes seed = to_bytes("D-DEMOS second generator H");
      seed.push_back(static_cast<std::uint8_t>(ctr));
      Hash32 hx = sha256(seed);
      Fp x = Fp::from_bytes_mod(hash_view(hx));
      Fp y;
      if (!lift_x(x, y)) continue;
      // Normalize to even y for determinism.
      if (y.to_bytes_be()[31] & 1) y = y.neg();
      AffinePoint a{x, y, false};
      return from_affine(a);
    }
  }();
  return h;
}

Bytes ec_encode(const Point& p) {
  if (p.is_infinity()) return Bytes(33, 0);
  AffinePoint a = to_affine(p);
  Bytes out;
  out.reserve(33);
  out.push_back((a.y.to_bytes_be()[31] & 1) ? 0x03 : 0x02);
  Bytes x = a.x.to_bytes_be();
  append(out, x);
  return out;
}

Point ec_decode(BytesView b) {
  if (b.size() != 33) throw CryptoError("ec_decode: need 33 bytes");
  if (b[0] == 0) {
    for (std::size_t i = 1; i < 33; ++i) {
      if (b[i] != 0) throw CryptoError("ec_decode: bad infinity encoding");
    }
    return Point::infinity();
  }
  if (b[0] != 0x02 && b[0] != 0x03) {
    throw CryptoError("ec_decode: bad prefix");
  }
  U256 xv = U256::from_bytes_be(b.subspan(1));
  if (cmp(xv, params<FieldTag>().mod) >= 0) {
    throw CryptoError("ec_decode: x out of range");
  }
  Fp x = Fp::from_u256_mod(xv);
  Fp y;
  if (!lift_x(x, y)) throw CryptoError("ec_decode: not on curve");
  bool want_odd = b[0] == 0x03;
  bool is_odd = (y.to_bytes_be()[31] & 1) != 0;
  if (want_odd != is_odd) y = y.neg();
  return from_affine(AffinePoint{x, y, false});
}

// --- GLV + wNAF Strauss engine ---------------------------------------------

namespace {

// secp256k1 endomorphism phi(x, y) = (beta*x, y) satisfies phi(P) =
// lambda*P; splitting k = k1 + k2*lambda with |k1|, |k2| ~ 2^128 halves the
// doubling ladder of every variable-base product. Constants and the
// rounded-division split follow the standard secp256k1 lattice basis.
constexpr U256 kBeta{{0xC1396C28719501EEull, 0x9CF0497512F58995ull,
                      0x6E64479EAC3434E9ull, 0x7AE96A2B657C0710ull}};
constexpr U256 kLambda{{0xDF02967C1B23BD72ull, 0x122E22EA20816678ull,
                        0xA5261C028812645Aull, 0x5363AD4CC05C30E0ull}};
// g1 = round(2^384 * b2 / n), g2 = round(2^384 * (-b1) / n).
constexpr U256 kG1{{0xE893209A45DBB031ull, 0x3DAA8A1471E8CA7Full,
                    0xE86C90E49284EB15ull, 0x3086D221A7D46BCDull}};
constexpr U256 kG2{{0x1571B4AE8AC47F71ull, 0x221208AC9DF506C6ull,
                    0x6F547FA90ABFE4C4ull, 0xE4437ED6010E8828ull}};
constexpr U256 kMinusB1{{0x6F547FA90ABFE4C3ull, 0xE4437ED6010E8828ull, 0, 0}};
// -b2 = n - b2 (b2 = a1 is positive), so this one is full-size.
constexpr U256 kMinusB2{{0xD765CDA83DB1562Cull, 0x8A280AC50774346Dull,
                         0xFFFFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFFFFFull}};

const Fp& glv_beta() {
  static const Fp b = Fp::from_u256_mod(kBeta);
  return b;
}

const Fn& glv_lambda() {
  static const Fn l = Fn::from_u256_mod(kLambda);
  return l;
}

// round(a * b / 2^384) for the lattice split.
U256 mul_shift_384(const U256& a, const U256& b) {
  U512 t = mul_wide(a, b);
  U256 r{{t[6], t[7], 0, 0}};
  U256 out;
  add_cc(r, U256::from_u64((t[5] >> 63) & 1), out);
  return out;
}

struct GlvSplit {
  U256 k1, k2;  // magnitudes, < ~2^128
  bool neg1 = false, neg2 = false;
};

GlvSplit glv_split(const Fn& k) {
  static const Fn minus_b1 = Fn::from_u256_mod(kMinusB1);
  static const Fn minus_b2 = Fn::from_u256_mod(kMinusB2);
  static const U256 n_half = shr1(params<ScalarTag>().mod);
  U256 kv = k.to_u256();
  Fn c1 = Fn::from_u256_mod(mul_shift_384(kv, kG1));
  Fn c2 = Fn::from_u256_mod(mul_shift_384(kv, kG2));
  Fn r2 = c1 * minus_b1 + c2 * minus_b2;
  Fn r1 = k - r2 * glv_lambda();  // k = r1 + r2*lambda by construction
  GlvSplit out;
  const U256& n = params<ScalarTag>().mod;
  U256 v1 = r1.to_u256();
  if (cmp(v1, n_half) > 0) {
    sub_bb(n, v1, out.k1);
    out.neg1 = true;
  } else {
    out.k1 = v1;
  }
  U256 v2 = r2.to_u256();
  if (cmp(v2, n_half) > 0) {
    sub_bb(n, v2, out.k2);
    out.neg2 = true;
  } else {
    out.k2 = v2;
  }
  return out;
}

constexpr int kVarWindow = 5;   // variable-base tables: 8 odd multiples
constexpr int kFixedWindow = 8;  // static G tables: 64 odd multiples
constexpr int kFixedTableSize = 1 << (kFixedWindow - 2);
// wNAF of a 256-bit value is at most 257 digits; the GLV halves use ~129.
constexpr int kNafMax = 260;

// Width-w non-adjacent form: odd digits, |d| <= 2^(w-1) - 1. Returns the
// digit count and the largest |d| seen (for table sizing).
int wnaf_recode(U256 x, int w, std::int8_t* out, int* max_digit) {
  const std::uint64_t sign_bound = 1ull << (w - 1);
  const std::uint64_t mask = (1ull << w) - 1;
  int len = 0;
  int maxd = 0;
  while (!x.is_zero()) {
    std::int8_t digit = 0;
    if (x.w[0] & 1) {
      std::uint64_t v = x.w[0] & mask;
      U256 t;
      if (v >= sign_bound) {
        digit = static_cast<std::int8_t>(static_cast<std::int64_t>(v) -
                                         (1ll << w));
        add_cc(x, U256::from_u64((1ull << w) - v), t);
      } else {
        digit = static_cast<std::int8_t>(v);
        sub_bb(x, U256::from_u64(v), t);
      }
      x = t;
      maxd = std::max(maxd, std::abs(static_cast<int>(digit)));
    }
    out[len++] = digit;
    x = shr1(x);
  }
  *max_digit = maxd;
  return len;
}

struct NafHalf {
  std::array<std::int8_t, kNafMax> d;
  int len = 0;
  bool neg = false;
  int max_digit = 0;
  const AffinePoint* tbl = nullptr;  // odd multiples: tbl[i] = (2i+1)*base
};

// Static affine odd-multiples tables for G and phi(G), built once.
struct FixedTables {
  std::array<AffinePoint, kFixedTableSize> g;
  std::array<AffinePoint, kFixedTableSize> g_lam;
};

const FixedTables& fixed_tables() {
  static const FixedTables tables = [] {
    std::vector<Point> jac;
    jac.reserve(kFixedTableSize);
    jac.push_back(ec_generator());
    Point d2 = ec_double(ec_generator());
    for (int i = 1; i < kFixedTableSize; ++i) {
      jac.push_back(ec_add(jac.back(), d2));
    }
    std::vector<AffinePoint> aff = batch_to_affine(jac);
    FixedTables t;
    for (int i = 0; i < kFixedTableSize; ++i) {
      t.g[i] = aff[i];
      t.g_lam[i] = AffinePoint{aff[i].x * glv_beta(), aff[i].y, false};
    }
    return t;
  }();
  return tables;
}

// One term of a multi-scalar product; p == nullptr means the fixed base G.
struct MsmEntry {
  const Point* p = nullptr;
  Fn k;
};

Point msm_impl(std::span<const MsmEntry> entries) {
  std::vector<NafHalf> halves;
  halves.reserve(entries.size() * 2);
  struct VarJob {
    const Point* p;
    std::size_t h1, h2;      // indices into halves (h2 = lambda half)
    int count = 0;           // base odd multiples to build
    int lam_count = 0;       // entries of the phi table actually used
    std::size_t base_off = 0, lam_off = 0;
  };
  std::vector<VarJob> jobs;
  int maxlen = 0;

  bool any_fixed = false;
  for (const MsmEntry& e : entries) {
    if (e.k.is_zero()) continue;
    if (e.p != nullptr && e.p->is_infinity()) continue;
    if (e.p == nullptr) any_fixed = true;
    GlvSplit s = glv_split(e.k);
    int w = e.p ? kVarWindow : kFixedWindow;
    NafHalf h1, h2;
    h1.len = wnaf_recode(s.k1, w, h1.d.data(), &h1.max_digit);
    h1.neg = s.neg1;
    h2.len = wnaf_recode(s.k2, w, h2.d.data(), &h2.max_digit);
    h2.neg = s.neg2;
    if (e.p != nullptr) {
      VarJob j;
      j.p = e.p;
      j.h1 = halves.size();
      j.h2 = halves.size() + 1;
      j.lam_count = (h2.max_digit + 1) / 2;
      // The phi table is derived entrywise from the base table, so the
      // base table must cover whichever half needs more entries.
      j.count = std::max((h1.max_digit + 1) / 2, j.lam_count);
      jobs.push_back(j);
    } else {
      h1.tbl = fixed_tables().g.data();
      h2.tbl = fixed_tables().g_lam.data();
    }
    maxlen = std::max({maxlen, h1.len, h2.len});
    halves.push_back(h1);
    halves.push_back(h2);
  }

  // Build every variable-base odd-multiples table. With no fixed-base
  // (true-affine) tables in the mix, the tables live in a shared
  // "effective affine" iso frame — chain Z-ratios substitute for the
  // field inversion, and the frame factor multiplies the result's Z once
  // at the end. When the static G tables participate, everything must be
  // genuinely affine, so the tables are batch-normalized with ONE shared
  // inversion instead. Phi tables derive from either by an x *= beta.
  std::size_t total = 0, total_lam = 0;
  for (VarJob& j : jobs) {
    j.base_off = total;
    total += static_cast<std::size_t>(j.count);
    total_lam += static_cast<std::size_t>(j.lam_count);
  }
  const bool use_iso = !any_fixed && !jobs.empty();
  std::vector<AffinePoint> store;
  Fp frame = Fp::one();
  if (use_iso) {
    struct Chain {
      std::vector<Point> pts;
      std::vector<Fp> zr;  // zr[t]: Z_t = Z_{t-1} * zr[t] (t >= 1)
    };
    std::vector<Chain> chains(jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      Chain& ch = chains[k];
      const VarJob& j = jobs[k];
      ch.pts.reserve(static_cast<std::size_t>(j.count));
      ch.zr.resize(static_cast<std::size_t>(j.count));
      ch.pts.push_back(*j.p);
      if (j.count > 1) {
        // (2t+1)P = (2t-1)P + 2P never degenerates for P of prime order.
        Point d2 = ec_double(*j.p);
        Fp dz2 = d2.Z + d2.Z;
        for (int t = 1; t < j.count; ++t) {
          Fp h;
          ch.pts.push_back(ec_add_h(ch.pts.back(), d2, &h));
          ch.zr[static_cast<std::size_t>(t)] = dz2 * h;
        }
      }
    }
    // Frame C = prod of every chain's final Z; entry t of chain k needs
    // the scale C/Z_{k,t}, assembled from prefix/suffix products across
    // chains and the backward ratio walk within a chain.
    std::vector<Fp> others(jobs.size(), Fp::one());
    Fp pre = Fp::one();
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      others[k] = pre;
      pre = pre * chains[k].pts.back().Z;
    }
    frame = pre;
    Fp suf = Fp::one();
    for (std::size_t k = jobs.size(); k-- > 0;) {
      others[k] = others[k] * suf;
      suf = suf * chains[k].pts.back().Z;
    }
    store.resize(total);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      const VarJob& j = jobs[k];
      Fp s = others[k];
      for (int t = j.count; t-- > 0;) {
        const Point& e = chains[k].pts[static_cast<std::size_t>(t)];
        Fp sq = s.sqr();
        store[j.base_off + static_cast<std::size_t>(t)] =
            AffinePoint{e.X * sq, e.Y * sq * s, false};
        if (t > 0) s = s * chains[k].zr[static_cast<std::size_t>(t)];
      }
    }
  } else {
    std::vector<Point> jac;
    jac.reserve(total);
    for (const VarJob& j : jobs) {
      jac.push_back(*j.p);
      if (j.count > 1) {
        Point d2 = ec_double(*j.p);
        for (int t = 1; t < j.count; ++t) {
          jac.push_back(ec_add(jac.back(), d2));
        }
      }
    }
    store = batch_to_affine(jac);
  }
  store.reserve(total + total_lam);
  for (VarJob& j : jobs) {
    j.lam_off = store.size();
    for (int t = 0; t < j.lam_count; ++t) {
      const AffinePoint& base = store[j.base_off + static_cast<std::size_t>(t)];
      store.push_back(AffinePoint{base.x * glv_beta(), base.y, false});
    }
  }
  for (const VarJob& j : jobs) {
    halves[j.h1].tbl = store.data() + j.base_off;
    halves[j.h2].tbl = store.data() + j.lam_off;
  }

  Point acc = Point::infinity();
  for (int i = maxlen - 1; i >= 0; --i) {
    acc = ec_double(acc);
    for (const NafHalf& h : halves) {
      if (i >= h.len) continue;
      int d = h.d[static_cast<std::size_t>(i)];
      if (d == 0) continue;
      AffinePoint t = h.tbl[(std::abs(d) - 1) / 2];
      if ((d < 0) != h.neg) t.y = t.y.neg();
      acc = ec_add_mixed(acc, t);
    }
  }
  // Leave the iso frame: Z scales by C (a no-op for infinity, Z == 0).
  if (use_iso) acc.Z = acc.Z * frame;
  return acc;
}

}  // namespace

Point ec_mul(const Fn& k, const Point& p) {
  MsmEntry e{&p, k};
  return msm_impl(std::span<const MsmEntry>(&e, 1));
}

Point ec_mul2(const Fn& a, const Point& p, const Fn& b) {
  std::array<MsmEntry, 2> es{MsmEntry{&p, a}, MsmEntry{nullptr, b}};
  return msm_impl(es);
}

Point ec_msm_strauss(std::span<const Fn> ks, std::span<const Point> ps) {
  if (ks.size() != ps.size()) {
    throw CryptoError("ec_msm: scalar/point count mismatch");
  }
  std::vector<MsmEntry> es;
  es.reserve(ks.size());
  const Point& g = ec_generator();
  for (std::size_t i = 0; i < ks.size(); ++i) {
    // Terms on the generator (every verifier equation has one) ride the
    // static width-8 tables instead of building a per-call table.
    bool is_g = ps[i].Z == g.Z && ps[i].X == g.X && ps[i].Y == g.Y;
    es.push_back(MsmEntry{is_g ? nullptr : &ps[i], ks[i]});
  }
  return msm_impl(es);
}

// --- Pippenger bucket method ------------------------------------------------

namespace {

// Index of the highest set bit, or -1 for zero.
int u256_bit_length(const U256& x) {
  for (int w = 3; w >= 0; --w) {
    if (x.w[w] == 0) continue;
    int b = 63;
    while (!((x.w[w] >> b) & 1)) --b;
    return 64 * w + b + 1;
  }
  return 0;
}

// Bits [pos, pos + c) of x as an unsigned digit; c <= 32 keeps the
// two-word splice below 64 bits of shift.
std::uint64_t u256_window(const U256& x, int pos, int c) {
  int word = pos >> 6;
  int off = pos & 63;
  if (word >= 4) return 0;
  std::uint64_t v = x.w[word] >> off;
  if (off + c > 64 && word + 1 < 4) v |= x.w[word + 1] << (64 - off);
  return v & ((1ull << c) - 1);
}

// One GLV half of an input term: a <= ~129-bit magnitude against a
// sign-folded affine base.
struct PipHalf {
  U256 mag;
  AffinePoint base;
};

}  // namespace

Point ec_msm_pippenger(std::span<const Fn> ks, std::span<const Point> ps) {
  if (ks.size() != ps.size()) {
    throw CryptoError("ec_msm: scalar/point count mismatch");
  }
  // One simultaneous inversion puts every live input point in the affine
  // frame, so bucket accumulation runs entirely on mixed additions.
  std::vector<const Point*> live;
  std::vector<const Fn*> live_ks;
  live.reserve(ks.size());
  live_ks.reserve(ks.size());
  std::vector<Point> jac;
  jac.reserve(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i].is_zero() || ps[i].is_infinity()) continue;
    live.push_back(&ps[i]);
    live_ks.push_back(&ks[i]);
    jac.push_back(ps[i]);
  }
  if (live.empty()) return Point::infinity();
  std::vector<AffinePoint> aff = batch_to_affine(jac);

  // GLV split halves the digit ladder: every term contributes up to two
  // ~129-bit halves, the lambda half riding phi(P) = (beta*x, y).
  std::vector<PipHalf> halves;
  halves.reserve(2 * live.size());
  int max_bits = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    GlvSplit s = glv_split(*live_ks[i]);
    if (!s.k1.is_zero()) {
      AffinePoint b = aff[i];
      if (s.neg1) b.y = b.y.neg();
      halves.push_back(PipHalf{s.k1, b});
      max_bits = std::max(max_bits, u256_bit_length(s.k1));
    }
    if (!s.k2.is_zero()) {
      AffinePoint b{aff[i].x * glv_beta(), aff[i].y, false};
      if (s.neg2) b.y = b.y.neg();
      halves.push_back(PipHalf{s.k2, b});
      max_bits = std::max(max_bits, u256_bit_length(s.k2));
    }
  }
  if (halves.empty()) return Point::infinity();

  // Window width from the input size (ln-based heuristic): each extra bit
  // of c halves the window count but doubles the bucket-collapse work.
  int c = 2;
  for (std::size_t n = ks.size(); (n >> (c + 2)) != 0 && c < 13; ++c) {
  }
  // Signed digits in (-2^(c-1), 2^(c-1)]: half the buckets of the
  // unsigned method, negative digits add the negated base. The recode
  // carry can spill one window past max_bits.
  const int n_windows = (max_bits + c - 1) / c + 1;
  const std::size_t n_buckets = 1ull << (c - 1);
  const std::uint64_t full = 1ull << c;
  std::vector<Point> buckets(static_cast<std::size_t>(n_windows) * n_buckets,
                             Point::infinity());
  int top_window = 0;
  for (const PipHalf& h : halves) {
    std::uint64_t carry = 0;
    for (int w = 0; w < n_windows; ++w) {
      std::int64_t d =
          static_cast<std::int64_t>(u256_window(h.mag, w * c, c) + carry);
      carry = 0;
      if (d > static_cast<std::int64_t>(n_buckets)) {
        d -= static_cast<std::int64_t>(full);
        carry = 1;
      }
      if (d == 0) continue;  // 0, or exactly 2^c folded into the carry
      AffinePoint b = h.base;
      std::size_t mag;
      if (d < 0) {
        b.y = b.y.neg();
        mag = static_cast<std::size_t>(-d);
      } else {
        mag = static_cast<std::size_t>(d);
      }
      std::size_t slot =
          static_cast<std::size_t>(w) * n_buckets + (mag - 1);
      buckets[slot] = ec_add_mixed(buckets[slot], b);
      top_window = std::max(top_window, w);
    }
  }

  // Batch-normalize every bucket with one more simultaneous inversion so
  // the running-sum collapse uses mixed additions for the S chain.
  std::vector<AffinePoint> bucket_aff = batch_to_affine(buckets);

  // Per-window running-sum collapse: S walks buckets high-to-low, T
  // accumulates S, so bucket j contributes j*S-steps = its digit weight.
  Point acc = Point::infinity();
  for (int w = top_window; w >= 0; --w) {
    if (w != top_window) {
      for (int d = 0; d < c; ++d) acc = ec_double(acc);
    }
    Point s = Point::infinity();
    Point t = Point::infinity();
    const std::size_t base = static_cast<std::size_t>(w) * n_buckets;
    for (std::size_t j = n_buckets; j-- > 0;) {
      const AffinePoint& b = bucket_aff[base + j];
      if (!b.infinity) s = ec_add_mixed(s, b);
      if (!s.is_infinity()) t = ec_add(t, s);
    }
    acc = ec_add(acc, t);
  }
  return acc;
}

namespace {

// Calibrated on the micro_crypto Strauss-vs-Pippenger sweep (see
// bench/micro_crypto.cpp and EXPERIMENTS.md); DDEMOS_MSM_CROSSOVER
// overrides at startup, ec_msm_set_crossover overrides for tests.
constexpr std::size_t kDefaultMsmCrossover = 64;

std::size_t msm_crossover_default() {
  if (const char* env = std::getenv("DDEMOS_MSM_CROSSOVER")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return kDefaultMsmCrossover;
}

std::atomic<std::size_t>& msm_crossover_state() {
  static std::atomic<std::size_t> v{msm_crossover_default()};
  return v;
}

}  // namespace

std::size_t ec_msm_crossover() {
  return msm_crossover_state().load(std::memory_order_relaxed);
}

std::size_t ec_msm_set_crossover(std::size_t n) {
  if (n == 0) n = msm_crossover_default();
  return msm_crossover_state().exchange(n, std::memory_order_relaxed);
}

Point ec_msm(std::span<const Fn> ks, std::span<const Point> ps) {
  if (ks.size() >= ec_msm_crossover()) return ec_msm_pippenger(ks, ps);
  return ec_msm_strauss(ks, ps);
}

namespace {

// Fixed-base 4-bit comb: table[w][d] = d * 16^w * G, every entry
// batch-normalized to affine at startup (one inversion for all 960
// points), so generator multiplication is at most 64 mixed additions.
const std::array<std::array<AffinePoint, 16>, 64>& g_comb_table() {
  static const auto table = [] {
    std::vector<Point> jac;
    jac.reserve(64 * 15);
    Point base = ec_generator();
    for (std::size_t w = 0; w < 64; ++w) {
      Point acc = base;
      for (std::size_t d = 1; d < 16; ++d) {
        jac.push_back(acc);
        Point next = ec_add(acc, base);
        if (d == 15) {
          base = next;  // 16 * (16^w * G)
        } else {
          acc = next;
        }
      }
    }
    std::vector<AffinePoint> aff = batch_to_affine(jac);
    std::array<std::array<AffinePoint, 16>, 64> t{};
    for (std::size_t w = 0; w < 64; ++w) {
      t[w][0].infinity = true;
      for (std::size_t d = 1; d < 16; ++d) {
        t[w][d] = aff[w * 15 + d - 1];
      }
    }
    return t;
  }();
  return table;
}

}  // namespace

Point ec_mul_g(const Fn& k) {
  const auto& table = g_comb_table();
  U256 e = k.to_u256();
  Point acc = Point::infinity();
  for (std::size_t w = 0; w < 64; ++w) {
    std::size_t digit = (e.w[w / 16] >> (4 * (w % 16))) & 0xf;
    if (digit) acc = ec_add_mixed(acc, table[w][digit]);
  }
  return acc;
}

Fn random_scalar(Rng& rng) {
  // Rejection sample below the order for a uniform scalar.
  const U256& n = params<ScalarTag>().mod;
  for (;;) {
    Bytes b = rng.bytes(32);
    U256 v = U256::from_bytes_be(b);
    if (cmp(v, n) < 0) return Fn::from_u256_mod(v);
  }
}

}  // namespace ddemos::crypto
