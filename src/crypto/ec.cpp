#include "crypto/ec.hpp"

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace ddemos::crypto {

namespace {

const Fp kCurveB = Fp::from_u64(7);

// sqrt exponent (p+1)/4; valid because p = 3 mod 4.
const U256& sqrt_exp() {
  static const U256 e = [] {
    U256 p = params<FieldTag>().mod;
    U256 one = U256::from_u64(1);
    U256 p1;
    add_cc(p, one, p1);  // cannot overflow: p < 2^256 - 1
    return shr1(shr1(p1));
  }();
  return e;
}

// y^2 = x^3 + 7; returns false if x is not on the curve.
bool lift_x(const Fp& x, Fp& y_out) {
  Fp rhs = x.sqr() * x + kCurveB;
  Fp y = rhs.pow(sqrt_exp());
  if (!(y.sqr() == rhs)) return false;
  y_out = y;
  return true;
}

}  // namespace

bool on_curve(const AffinePoint& a) {
  if (a.infinity) return true;
  return a.y.sqr() == a.x.sqr() * a.x + kCurveB;
}

Point from_affine(const AffinePoint& a) {
  if (a.infinity) return Point::infinity();
  return Point{a.x, a.y, Fp::one()};
}

AffinePoint to_affine(const Point& p) {
  if (p.is_infinity()) return AffinePoint{{}, {}, true};
  Fp zi = p.Z.inv();
  Fp zi2 = zi.sqr();
  return AffinePoint{p.X * zi2, p.Y * zi2 * zi, false};
}

Point ec_double(const Point& p) {
  if (p.is_infinity() || p.Y.is_zero()) return Point::infinity();
  // dbl-2009-l formulas for a = 0.
  Fp a = p.X.sqr();
  Fp b = p.Y.sqr();
  Fp c = b.sqr();
  Fp d = ((p.X + b).sqr() - a - c);
  d = d + d;
  Fp e = a + a + a;
  Fp f = e.sqr();
  Point r;
  r.X = f - (d + d);
  Fp c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  r.Y = e * (d - r.X) - c8;
  r.Z = (p.Y * p.Z);
  r.Z = r.Z + r.Z;
  return r;
}

Point ec_add(const Point& p, const Point& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  // add-2007-bl
  Fp z1z1 = p.Z.sqr();
  Fp z2z2 = q.Z.sqr();
  Fp u1 = p.X * z2z2;
  Fp u2 = q.X * z1z1;
  Fp s1 = p.Y * q.Z * z2z2;
  Fp s2 = q.Y * p.Z * z1z1;
  if (u1 == u2) {
    if (s1 == s2) return ec_double(p);
    return Point::infinity();
  }
  Fp h = u2 - u1;
  Fp i = (h + h).sqr();
  Fp j = h * i;
  Fp r2 = s2 - s1;
  Fp r = r2 + r2;
  Fp v = u1 * i;
  Point out;
  out.X = r.sqr() - j - v - v;
  Fp s1j = s1 * j;
  out.Y = r * (v - out.X) - (s1j + s1j);
  out.Z = ((p.Z + q.Z).sqr() - z1z1 - z2z2) * h;
  return out;
}

Point ec_neg(const Point& p) {
  if (p.is_infinity()) return p;
  return Point{p.X, p.Y.neg(), p.Z};
}

Point ec_sub(const Point& p, const Point& q) { return ec_add(p, ec_neg(q)); }

Point ec_mul(const Fn& k, const Point& p) {
  U256 e = k.to_u256();
  Point acc = Point::infinity();
  for (int i = 255; i >= 0; --i) {
    acc = ec_double(acc);
    if (e.bit(i)) acc = ec_add(acc, p);
  }
  return acc;
}

bool ec_eq(const Point& p, const Point& q) {
  if (p.is_infinity() || q.is_infinity()) {
    return p.is_infinity() == q.is_infinity();
  }
  // Cross-multiplied Jacobian comparison.
  Fp z1z1 = p.Z.sqr();
  Fp z2z2 = q.Z.sqr();
  if (!(p.X * z2z2 == q.X * z1z1)) return false;
  return p.Y * z2z2 * q.Z == q.Y * z1z1 * p.Z;
}

const Point& ec_generator() {
  static const Point g = [] {
    AffinePoint a;
    a.x = Fp::from_bytes_mod(from_hex(
        "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"));
    a.y = Fp::from_bytes_mod(from_hex(
        "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"));
    if (!on_curve(a)) throw CryptoError("generator not on curve");
    return from_affine(a);
  }();
  return g;
}

const Point& ec_generator_h() {
  static const Point h = [] {
    // Nothing-up-my-sleeve: hash a domain tag with a counter to an x
    // coordinate until it lifts to the curve; take the even-y point.
    for (std::uint32_t ctr = 0;; ++ctr) {
      Bytes seed = to_bytes("D-DEMOS second generator H");
      seed.push_back(static_cast<std::uint8_t>(ctr));
      Hash32 hx = sha256(seed);
      Fp x = Fp::from_bytes_mod(hash_view(hx));
      Fp y;
      if (!lift_x(x, y)) continue;
      // Normalize to even y for determinism.
      if (y.to_bytes_be()[31] & 1) y = y.neg();
      AffinePoint a{x, y, false};
      return from_affine(a);
    }
  }();
  return h;
}

Bytes ec_encode(const Point& p) {
  if (p.is_infinity()) return Bytes(33, 0);
  AffinePoint a = to_affine(p);
  Bytes out;
  out.reserve(33);
  out.push_back((a.y.to_bytes_be()[31] & 1) ? 0x03 : 0x02);
  Bytes x = a.x.to_bytes_be();
  append(out, x);
  return out;
}

Point ec_decode(BytesView b) {
  if (b.size() != 33) throw CryptoError("ec_decode: need 33 bytes");
  if (b[0] == 0) {
    for (std::size_t i = 1; i < 33; ++i) {
      if (b[i] != 0) throw CryptoError("ec_decode: bad infinity encoding");
    }
    return Point::infinity();
  }
  if (b[0] != 0x02 && b[0] != 0x03) {
    throw CryptoError("ec_decode: bad prefix");
  }
  U256 xv = U256::from_bytes_be(b.subspan(1));
  if (cmp(xv, params<FieldTag>().mod) >= 0) {
    throw CryptoError("ec_decode: x out of range");
  }
  Fp x = Fp::from_u256_mod(xv);
  Fp y;
  if (!lift_x(x, y)) throw CryptoError("ec_decode: not on curve");
  bool want_odd = b[0] == 0x03;
  bool is_odd = (y.to_bytes_be()[31] & 1) != 0;
  if (want_odd != is_odd) y = y.neg();
  return from_affine(AffinePoint{x, y, false});
}

namespace {

// Fixed-base 4-bit window precomputation: table[w][d] = d * 16^w * G.
// Turns generator multiplication into at most 64 point additions.
const std::array<std::array<Point, 16>, 64>& g_window_table() {
  static const auto table = [] {
    std::array<std::array<Point, 16>, 64> t{};
    Point base = ec_generator();
    for (std::size_t w = 0; w < 64; ++w) {
      t[w][0] = Point::infinity();
      for (std::size_t d = 1; d < 16; ++d) {
        t[w][d] = ec_add(t[w][d - 1], base);
      }
      Point next = t[w][15];
      base = ec_add(next, base);  // 16 * (16^w * G)
    }
    return t;
  }();
  return table;
}

}  // namespace

Point ec_mul_g(const Fn& k) {
  const auto& table = g_window_table();
  U256 e = k.to_u256();
  Point acc = Point::infinity();
  for (std::size_t w = 0; w < 64; ++w) {
    std::size_t digit = (e.w[w / 16] >> (4 * (w % 16))) & 0xf;
    if (digit) acc = ec_add(acc, table[w][digit]);
  }
  return acc;
}

Fn random_scalar(Rng& rng) {
  // Rejection sample below the order for a uniform scalar.
  const U256& n = params<ScalarTag>().mod;
  for (;;) {
    Bytes b = rng.bytes(32);
    U256 v = U256::from_bytes_be(b);
    if (cmp(v, n) < 0) return Fn::from_u256_mod(v);
  }
}

}  // namespace ddemos::crypto
