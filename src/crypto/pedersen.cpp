#include "crypto/pedersen.hpp"

#include "crypto/rng.hpp"
#include "crypto/shamir.hpp"
#include "util/error.hpp"

namespace ddemos::crypto {

Point pedersen_commit(const Fn& m, const Fn& r) {
  // m*G + r*H as one interleaved Strauss double-mul.
  return ec_mul2(r, ec_generator_h(), m);
}

PedersenDeal pedersen_vss_deal(const Fn& secret, std::size_t k, std::size_t n,
                               Rng& rng) {
  if (k == 0 || k > n) throw CryptoError("pedersen_vss_deal: need 0 < k <= n");
  std::vector<Fn> a, b;
  a.reserve(k);
  b.reserve(k);
  a.push_back(secret);
  b.push_back(random_scalar(rng));
  for (std::size_t j = 1; j < k; ++j) {
    a.push_back(random_scalar(rng));
    b.push_back(random_scalar(rng));
  }
  PedersenDeal deal;
  deal.coefficient_comms.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    deal.coefficient_comms.push_back(pedersen_commit(a[j], b[j]));
  }
  deal.shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    Fn x = Fn::from_u64(i);
    Fn f = a.back();
    Fn g = b.back();
    for (std::size_t j = k - 1; j-- > 0;) {
      f = f * x + a[j];
      g = g * x + b[j];
    }
    deal.shares.push_back(PedersenShare{static_cast<std::uint32_t>(i), f, g});
  }
  return deal;
}

bool pedersen_vss_verify(const PedersenShare& share,
                         std::span<const Point> coefficient_comms) {
  if (coefficient_comms.empty()) return false;
  // The Horner evaluation flattens into powers of x, so the whole check
  // f*G + g*H - sum_j x^j C_j == 0 is one MSM sharing a single doubling
  // ladder and one batched inversion. x is the small trustee index, so the
  // x^j coefficients have short wNAFs for low-degree polynomials.
  Fn x = Fn::from_u64(share.x);
  std::vector<Fn> ks;
  std::vector<Point> ps;
  ks.reserve(coefficient_comms.size() + 2);
  ps.reserve(coefficient_comms.size() + 2);
  ks.push_back(share.f);
  ps.push_back(ec_generator());
  ks.push_back(share.g);
  ps.push_back(ec_generator_h());
  Fn xp = Fn::one();
  for (const Point& c : coefficient_comms) {
    ks.push_back(xp);
    ps.push_back(ec_neg(c));
    xp = xp * x;
  }
  return ec_msm(ks, ps).is_infinity();
}

bool pedersen_vss_verify_naive(const PedersenShare& share,
                               std::span<const Point> coefficient_comms) {
  if (coefficient_comms.empty()) return false;
  // Horner over the commitment polynomial.
  Fn x = Fn::from_u64(share.x);
  Point acc = coefficient_comms.back();
  for (std::size_t j = coefficient_comms.size() - 1; j-- > 0;) {
    acc = ec_add(ec_mul_naive(x, acc), coefficient_comms[j]);
  }
  return ec_eq(acc, ec_add(ec_mul_g(share.f),
                           ec_mul_naive(share.g, ec_generator_h())));
}

std::pair<Fn, Fn> pedersen_vss_reconstruct(
    std::span<const PedersenShare> shares, std::size_t k) {
  std::vector<Share> fs, gs;
  fs.reserve(shares.size());
  gs.reserve(shares.size());
  for (const PedersenShare& s : shares) {
    fs.push_back(Share{s.x, s.f});
    gs.push_back(Share{s.x, s.g});
  }
  return {shamir_reconstruct(fs, k), shamir_reconstruct(gs, k)};
}

PedersenShare pedersen_share_add(const PedersenShare& a,
                                 const PedersenShare& b) {
  if (a.x != b.x) throw CryptoError("pedersen_share_add: mismatched points");
  return PedersenShare{a.x, a.f + b.f, a.g + b.g};
}

}  // namespace ddemos::crypto
