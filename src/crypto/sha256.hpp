// SHA-256 (FIPS 180-4), from scratch. Streaming class plus one-shot helpers.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

#include "util/bytes.hpp"

namespace ddemos::crypto {

using Hash32 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }
  void reset();
  void update(BytesView data);
  Hash32 finish();

 private:
  void compress(const std::uint8_t* block);
  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_ = 0;
};

Hash32 sha256(BytesView data);
// Hash of the concatenation of several fragments, without copying.
Hash32 sha256_parts(std::initializer_list<BytesView> parts);

inline Bytes hash_bytes(const Hash32& h) { return Bytes(h.begin(), h.end()); }
inline BytesView hash_view(const Hash32& h) {
  return BytesView(h.data(), h.size());
}

}  // namespace ddemos::crypto
