// Deterministic CSPRNG built on the ChaCha20 block function. Every random
// choice in the system flows through an explicitly seeded Rng so protocol
// runs, tests, and benchmarks are reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace ddemos::crypto {

class Rng {
 public:
  // Seeds from 32 bytes of key material (shorter seeds are zero-padded).
  explicit Rng(BytesView seed);
  // Convenience: seed derived from a 64-bit value (tests, sweeps).
  explicit Rng(std::uint64_t seed);
  // Reads 32 bytes from the OS entropy pool (/dev/urandom).
  static Rng from_os_entropy();

  void fill(std::uint8_t* out, std::size_t n);
  Bytes bytes(std::size_t n);
  std::uint64_t u64();
  // Uniform in [0, bound), bound > 0; rejection sampled (no modulo bias).
  std::uint64_t below(std::uint64_t bound);
  double uniform01();
  // Fork an independent child stream, labelled so call order elsewhere
  // cannot perturb it.
  Rng fork(std::string_view label);

 private:
  void refill();
  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;
};

}  // namespace ddemos::crypto
