#include "crypto/mont.hpp"

#include "util/error.hpp"

namespace ddemos::crypto {

using u128 = unsigned __int128;

namespace {

// -mod^{-1} mod 2^64 via Newton iteration (mod must be odd).
std::uint64_t neg_inv64(std::uint64_t m) {
  std::uint64_t x = m;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - m * x;
  return ~x + 1;  // -(m^{-1})
}

}  // namespace

U256 mod_reduce(const U256& a, const MontParams& p) {
  if (cmp(a, p.mod) >= 0) {
    U256 r;
    sub_bb(a, p.mod, r);
    return r;
  }
  return a;
}

U256 mod_add(const U256& a, const U256& b, const MontParams& p) {
  U256 r;
  std::uint64_t carry = add_cc(a, b, r);
  if (carry || cmp(r, p.mod) >= 0) {
    U256 t;
    sub_bb(r, p.mod, t);
    return t;
  }
  return r;
}

U256 mod_sub(const U256& a, const U256& b, const MontParams& p) {
  U256 r;
  std::uint64_t borrow = sub_bb(a, b, r);
  if (borrow) {
    U256 t;
    add_cc(r, p.mod, t);
    return t;
  }
  return r;
}

namespace {

// Word-by-word REDC of a full 512-bit product (SOS method), shared by
// mont_mul and mont_sqr.
U256 redc(U512 t, const MontParams& p) {
  std::uint64_t extra = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t m = t[i] * p.n0;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(m) * p.mod.w[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (std::size_t k = i + 4; carry != 0; ++k) {
      if (k == 8) {
        extra += carry;
        break;
      }
      u128 cur = static_cast<u128>(t[k]) + carry;
      t[k] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
  }
  U256 r{{t[4], t[5], t[6], t[7]}};
  if (extra || cmp(r, p.mod) >= 0) {
    U256 s;
    sub_bb(r, p.mod, s);
    return s;
  }
  return r;
}

}  // namespace

U256 mont_mul(const U256& a, const U256& b, const MontParams& p) {
  return redc(mul_wide(a, b), p);
}

U256 mont_sqr(const U256& a, const MontParams& p) {
  return redc(sqr_wide(a), p);
}

U256 mont_pow(const U256& a, const U256& e, const MontParams& p) {
  U256 acc = p.one_m;
  for (int i = 255; i >= 0; --i) {
    acc = mont_sqr(acc, p);
    if (e.bit(i)) acc = mont_mul(acc, a, p);
  }
  return acc;
}

MontParams make_mont_params(const U256& mod) {
  if ((mod.w[0] & 1) == 0 || mod.bit(255) == 0) {
    throw CryptoError("make_mont_params: modulus must be odd and > 2^255");
  }
  MontParams p;
  p.mod = mod;
  p.n0 = neg_inv64(mod.w[0]);
  // R mod mod = 2^256 - mod (valid because mod > 2^255 => 2^256 < 2*mod).
  U256 zero{};
  sub_bb(zero, mod, p.one_m);  // wraps to 2^256 - mod
  // R^2 mod mod via 256 modular doublings of R.
  U256 r2 = p.one_m;
  for (int i = 0; i < 256; ++i) r2 = mod_add(r2, r2, p);
  p.r2 = r2;
  U256 two = U256::from_u64(2);
  sub_bb(mod, two, p.mod_minus_2);
  return p;
}

}  // namespace ddemos::crypto
