#include "bb/bb_node.hpp"

#include <algorithm>

#include "crypto/batch.hpp"
#include "crypto/commit.hpp"
#include "crypto/schnorr.hpp"
#include "ea/ea.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ddemos::bb {

using namespace core;
using sim::NodeId;

namespace {

std::uint64_t scalar_to_u64(const crypto::Fn& s) {
  Bytes be = s.to_bytes_be();
  std::uint64_t v = 0;
  for (int i = 24; i < 32; ++i) {
    v = v << 8 | be[static_cast<std::size_t>(i)];
  }
  return v;
}

// Combined check over a trustee dataset's Pedersen-VSS shares: one
// random-linear-combination MSM covers every share; on failure the
// per-instance verifier re-runs so a structurally valid message with any
// bad share is rejected exactly as the serial loops rejected it.
bool verify_vss_instances(
    const std::vector<crypto::PedersenVssInstance>& insts,
    util::ThreadPool* pool) {
  if (crypto::pedersen_vss_verify_batch(insts, pool)) return true;
  return std::all_of(insts.begin(), insts.end(),
                     [](const crypto::PedersenVssInstance& i) {
                       return crypto::pedersen_vss_verify(i.share, i.comms);
                     });
}

void encode_published_line(Writer& w, const PublishedLine& l) {
  w.bytes(l.decrypted_code);
  w.boolean(l.opened);
  w.vec(l.messages, [](Writer& ww, std::uint64_t v) { ww.u64(v); });
  w.vec(l.randomness,
        [](Writer& ww, const crypto::Fn& s) { encode_scalar(ww, s); });
  w.boolean(l.zk_complete);
  w.vec(l.bit_responses, [](Writer& ww, const crypto::BitProofResponse& r) {
    encode_scalar(ww, r.c0);
    encode_scalar(ww, r.c1);
    encode_scalar(ww, r.z0);
    encode_scalar(ww, r.z1);
  });
  encode_scalar(w, l.sum_response);
}

}  // namespace

BbNode::BbNode(BbInit init) : init_(std::move(init)) {
  for (std::size_t i = 0; i < init_.ballots.size(); ++i) {
    serial_index_[init_.ballots[i].serial] = i;
  }
  submissions_.resize(init_.params.n_vc);
}

std::optional<std::size_t> BbNode::vc_index_of(NodeId id) const {
  // VC->BB writes arrive over authenticated channels; the runner assigns
  // VC node ids 0..Nv-1 within the simulation by convention, so the sender
  // id doubles as the VC index. Spoofed ids outside the range are dropped.
  if (id < init_.params.n_vc) return id;
  return std::nullopt;
}

std::size_t BbNode::ballot_index(Serial serial) const {
  auto it = serial_index_.find(serial);
  if (it == serial_index_.end()) {
    throw ProtocolError("BB: unknown serial");
  }
  return it->second;
}

void BbNode::attach_wal(std::unique_ptr<store::Wal> wal) {
  wal_ = std::move(wal);
  replaying_ = true;
  try {
    wal_->replay([this](std::uint8_t type, BytesView rec) {
      if (type != kBbWalMessage) return;  // future record type: skip
      Reader r(rec);
      NodeId from = r.u32();
      on_message(from, net::Buffer::copy_of(r.raw_view(r.remaining())));
    });
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;
}

void BbNode::on_message(NodeId from, const net::Buffer& payload) {
  try {
    Reader r(payload.view());
    auto type = static_cast<MsgType>(r.u8());
    // Write-ahead: every write-channel message is logged before its
    // handler runs, so a crash mid-handler re-runs the handler on replay.
    // Reads are not state, and replayed records must not re-log.
    if (wal_ && !replaying_ && type != MsgType::kBbRead) {
      Writer w;
      w.u32(from);
      w.raw(payload.view());
      wal_->append(kBbWalMessage, w.take());
    }
    switch (type) {
      case MsgType::kVoteSetChunk: {
        auto vc = vc_index_of(from);
        if (vc) handle_vote_set_chunk(*vc, r);
        break;
      }
      case MsgType::kVoteSetDone: {
        auto vc = vc_index_of(from);
        if (vc) handle_vote_set_done(*vc, r);
        break;
      }
      case MsgType::kMskShare: {
        auto vc = vc_index_of(from);
        if (vc) handle_msk_share(*vc, r);
        break;
      }
      case MsgType::kTrusteeBallot:
        handle_trustee_ballot(r);
        break;
      case MsgType::kTrusteeTally:
        handle_trustee_tally(r);
        break;
      case MsgType::kBbRead:
        handle_read(from, r);
        break;
      default:
        break;
    }
  } catch (const CodecError&) {
    // Malformed write: drop.
  }
}

void BbNode::handle_vote_set_chunk(std::size_t vc, Reader& r) {
  if (vote_set_accepted_) return;
  VoteSetChunkMsg m = VoteSetChunkMsg::decode(r);
  auto& sub = submissions_[vc];
  for (auto& e : m.entries) sub.entries.push_back(std::move(e));
  // The network may reorder a chunk after its DONE marker.
  if (sub.done_hash) maybe_accept_vote_set();
}

void BbNode::handle_vote_set_done(std::size_t vc, Reader& r) {
  if (vote_set_accepted_) return;
  VoteSetDoneMsg m = VoteSetDoneMsg::decode(r);
  auto& sub = submissions_[vc];
  sub.done_hash = m.set_hash;
  sub.expected = m.total_entries;
  maybe_accept_vote_set();
}

void BbNode::maybe_accept_vote_set() {
  // Count VC nodes whose full submission matches their announced hash.
  std::map<crypto::Hash32, std::vector<std::size_t>> by_hash;
  for (std::size_t vc = 0; vc < submissions_.size(); ++vc) {
    auto& sub = submissions_[vc];
    if (!sub.done_hash || sub.entries.size() != sub.expected) continue;
    // Chunks may have been reordered in flight; the canonical set is
    // sorted by serial.
    std::sort(sub.entries.begin(), sub.entries.end(),
              [](const VoteSetEntry& a, const VoteSetEntry& b) {
                return a.serial < b.serial;
              });
    if (vote_set_hash(sub.entries) != *sub.done_hash) continue;
    by_hash[*sub.done_hash].push_back(vc);
  }
  for (auto& [hash, vcs] : by_hash) {
    if (vcs.size() >= init_.params.f_vc + 1) {
      vote_set_accepted_ = true;
      vote_set_at_ = now_safe();
      accepted_set_ = submissions_[vcs.front()].entries;
      maybe_decrypt_codes();
      return;
    }
  }
}

void BbNode::handle_msk_share(std::size_t vc, Reader& r) {
  if (msk_.has_value()) return;
  MskShareMsg m = MskShareMsg::decode(r);
  if (m.share.x != vc + 1) return;  // a node may only submit its own share
  if (!crypto::MerkleTree::verify(init_.msk_share_root,
                                  ea::share_leaf(m.share), vc, m.path)) {
    return;
  }
  msk_shares_[m.share.x] = m.share;
  if (msk_shares_.size() < init_.params.vc_quorum()) return;
  std::vector<crypto::Share> shares;
  for (const auto& [x, s] : msk_shares_) shares.push_back(s);
  crypto::Fn secret =
      crypto::shamir_reconstruct(shares, init_.params.vc_quorum());
  Bytes be = secret.to_bytes_be();
  Bytes msk(be.begin() + 16, be.end());
  if (!crypto::salted_commit_check(init_.h_msk, msk, init_.salt_msk)) {
    // Should be impossible with Merkle-verified shares; wait for more.
    return;
  }
  msk_ = msk;
  maybe_decrypt_codes();
}

void BbNode::maybe_decrypt_codes() {
  if (codes_published_ || !msk_.has_value() || !vote_set_accepted_) return;
  // Decrypt and publish every vote code (paper Section III-G: once msk is
  // reconstructed, "decrypts all the encrypted vote codes in its
  // initialization data, and publishes them").
  published_.clear();
  for (const BbBallotInit& b : init_.ballots) {
    PublishedBallot pb;
    for (std::size_t part = 0; part < kNumParts; ++part) {
      pb.lines[part].resize(b.parts[part].size());
      for (std::size_t l = 0; l < b.parts[part].size(); ++l) {
        try {
          pb.lines[part][l].decrypted_code = crypto::decrypt_vote_code(
              *msk_, b.parts[part][l].encrypted_vote_code);
        } catch (const CryptoError&) {
          // Leaves the code empty; auditors will flag the mismatch.
        }
      }
    }
    published_[b.serial] = std::move(pb);
  }
  cast_info_.clear();
  coins_.clear();
  for (const VoteSetEntry& e : accepted_set_) {
    auto it = serial_index_.find(e.serial);
    if (it == serial_index_.end()) continue;
    PublishedBallot& pb = published_[e.serial];
    for (std::uint8_t part = 0; part < kNumParts && !pb.voted; ++part) {
      const auto& lines = pb.lines[part];
      for (std::uint32_t l = 0; l < lines.size(); ++l) {
        if (lines[l].decrypted_code == e.vote_code) {
          cast_info_.push_back(CastInfo{e.serial, part, l});
          coins_.push_back(static_cast<std::uint8_t>('0' + part));
          pb.voted = true;
          pb.used_part = part;
          pb.used_line = l;
          break;
        }
      }
    }
  }
  challenge_ = crypto::challenge_from_coins(init_.params.election_id, coins_);
  codes_published_ = true;
  codes_at_ = now_safe();
  // Combine any trustee data that arrived early.
  for (const auto& [serial, per_trustee] : trustee_ballot_data_) {
    (void)per_trustee;
    maybe_combine_ballot(serial);
  }
  maybe_publish_result();
}

void BbNode::handle_trustee_ballot(Reader& r) {
  TrusteeBallotMsg m = TrusteeBallotMsg::decode(r);
  if (m.trustee_index >= init_.params.n_trustees) return;
  if (!crypto::schnorr_verify(init_.trustee_public_keys[m.trustee_index],
                              m.signing_bytes(init_.params.election_id),
                              m.signature)) {
    return;
  }
  if (!serial_index_.count(m.serial)) return;
  Serial serial = m.serial;
  trustee_ballot_data_[serial][m.trustee_index] = std::move(m);
  maybe_combine_ballot(serial);
}

void BbNode::maybe_combine_ballot(Serial serial) {
  if (!codes_published_) return;
  auto pit = published_.find(serial);
  if (pit == published_.end()) return;
  PublishedBallot& pb = pit->second;
  const BbBallotInit& ballot = init_.ballots[ballot_index(serial)];
  const std::size_t m = init_.params.m();
  const std::size_t ht = init_.params.h_trustees;

  // Already fully combined?
  bool need = false;
  for (std::size_t part = 0; part < kNumParts; ++part) {
    bool used = pb.voted && pb.used_part == part;
    for (const PublishedLine& l : pb.lines[part]) {
      if (used ? !l.zk_complete : !l.opened) need = true;
    }
  }
  if (!need) return;

  auto dit = trustee_ballot_data_.find(serial);
  if (dit == trustee_ballot_data_.end()) return;

  // Validate whole trustee datasets; keep the first ht valid ones. The
  // structural pass collects every Pedersen-VSS share with its commitment
  // polynomial, then one batched check replaces the per-share loop.
  std::vector<const TrusteeBallotMsg*> valid;
  for (const auto& [tidx, msg] : dit->second) {
    if ((msg.voted != 0) != pb.voted) continue;
    if (pb.voted && msg.used_part != pb.used_part) continue;
    bool ok = true;
    std::vector<crypto::PedersenVssInstance> insts;
    // ZK commitment evaluations (u + challenge * v per coefficient) are
    // collected as jobs during the structural pass and filled afterwards,
    // chunked over the compute pool when one is attached.
    struct EvalJob {
      const std::vector<crypto::Point>* u;
      const std::vector<crypto::Point>* v;
      std::size_t inst;
    };
    std::vector<EvalJob> eval_jobs;
    for (std::size_t part = 0; part < kNumParts && ok; ++part) {
      bool used = pb.voted && pb.used_part == part;
      const TrusteePartData& pd = msg.parts[part];
      const auto& lines = ballot.parts[part];
      if (used) {
        if (pd.zk_bits.size() != lines.size() ||
            pd.zk_sum.size() != lines.size()) {
          ok = false;
          break;
        }
        for (std::size_t l = 0; l < lines.size() && ok; ++l) {
          if (pd.zk_bits[l].size() != m) {
            ok = false;
            break;
          }
          const auto& zc = lines[l].zk_comms;
          if (zc.size() != 8 * m + 2) {
            ok = false;
            break;
          }
          for (std::size_t j = 0; j < m; ++j) {
            for (std::size_t k = 0; k < 4; ++k) {
              // comms for u + challenge * v, filled after the pass.
              eval_jobs.push_back(
                  {&zc[8 * j + 2 * k], &zc[8 * j + 2 * k + 1], insts.size()});
              insts.push_back({pd.zk_bits[l][j][k], {}});
            }
          }
          eval_jobs.push_back({&zc[8 * m], &zc[8 * m + 1], insts.size()});
          insts.push_back({pd.zk_sum[l], {}});
        }
      } else {
        if (pd.openings.size() != lines.size()) {
          ok = false;
          break;
        }
        for (std::size_t l = 0; l < lines.size() && ok; ++l) {
          if (pd.openings[l].size() != m ||
              lines[l].opening_comms.size() != 2 * m) {
            ok = false;
            break;
          }
          for (std::size_t j = 0; j < m; ++j) {
            insts.push_back(
                {pd.openings[l][j].first, lines[l].opening_comms[2 * j]});
            insts.push_back(
                {pd.openings[l][j].second, lines[l].opening_comms[2 * j + 1]});
          }
        }
      }
    }
    if (ok && !eval_jobs.empty()) {
      auto fill = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& u = *eval_jobs[i].u;
          const auto& v = *eval_jobs[i].v;
          auto& comms = insts[eval_jobs[i].inst].comms;
          comms.resize(u.size());
          for (std::size_t t = 0; t < u.size(); ++t) {
            comms[t] = crypto::ec_add(u[t], crypto::ec_mul(challenge_, v[t]));
          }
        }
      };
      if (pool_) {
        pool_->parallel_for(eval_jobs.size(), 2, fill);
      } else {
        fill(0, eval_jobs.size());
      }
    }
    ok = ok && verify_vss_instances(insts, pool_);
    if (ok) valid.push_back(&msg);
    if (valid.size() == ht) break;
  }
  if (valid.size() < ht) return;

  // Combine: reconstruct openings and ZK responses.
  auto reconstruct = [&](auto get_share) {
    std::vector<crypto::PedersenShare> shares;
    for (const TrusteeBallotMsg* msg : valid) shares.push_back(get_share(*msg));
    return crypto::pedersen_vss_reconstruct(shares, ht).first;
  };

  for (std::size_t part = 0; part < kNumParts; ++part) {
    bool used = pb.voted && pb.used_part == part;
    const auto& lines = ballot.parts[part];
    for (std::size_t l = 0; l < lines.size(); ++l) {
      PublishedLine& pl = pb.lines[part][l];
      if (used) {
        if (pl.zk_complete) continue;
        pl.bit_responses.clear();
        for (std::size_t j = 0; j < m; ++j) {
          crypto::BitProofResponse resp;
          resp.c0 = reconstruct([&](const TrusteeBallotMsg& t) {
            return t.parts[part].zk_bits[l][j][0];
          });
          resp.c1 = reconstruct([&](const TrusteeBallotMsg& t) {
            return t.parts[part].zk_bits[l][j][1];
          });
          resp.z0 = reconstruct([&](const TrusteeBallotMsg& t) {
            return t.parts[part].zk_bits[l][j][2];
          });
          resp.z1 = reconstruct([&](const TrusteeBallotMsg& t) {
            return t.parts[part].zk_bits[l][j][3];
          });
          pl.bit_responses.push_back(resp);
        }
        pl.sum_response = reconstruct([&](const TrusteeBallotMsg& t) {
          return t.parts[part].zk_sum[l];
        });
        pl.zk_complete = true;
      } else {
        if (pl.opened) continue;
        pl.messages.clear();
        pl.randomness.clear();
        for (std::size_t j = 0; j < m; ++j) {
          crypto::Fn mj = reconstruct([&](const TrusteeBallotMsg& t) {
            return t.parts[part].openings[l][j].first;
          });
          crypto::Fn rj = reconstruct([&](const TrusteeBallotMsg& t) {
            return t.parts[part].openings[l][j].second;
          });
          pl.messages.push_back(scalar_to_u64(mj));
          pl.randomness.push_back(rj);
        }
        pl.opened = true;
      }
    }
  }
  maybe_publish_result();
}

void BbNode::handle_trustee_tally(Reader& r) {
  TrusteeTallyMsg m = TrusteeTallyMsg::decode(r);
  if (m.trustee_index >= init_.params.n_trustees) return;
  if (!crypto::schnorr_verify(init_.trustee_public_keys[m.trustee_index],
                              m.signing_bytes(init_.params.election_id),
                              m.signature)) {
    return;
  }
  if (m.totals.size() != init_.params.m()) return;
  trustee_tally_data_[m.trustee_index] = std::move(m);
  maybe_publish_result();
}

void BbNode::maybe_publish_result() {
  if (result_.has_value() || !codes_published_) return;
  const std::size_t m = init_.params.m();
  const std::size_t ht = init_.params.h_trustees;
  if (cast_info_.empty()) {
    // Degenerate election with zero cast votes: trustees have no total
    // shares to contribute and the tally is identically zero.
    result_ = ElectionResult{std::vector<std::uint64_t>(m, 0),
                             std::vector<crypto::Fn>(m, crypto::Fn::zero())};
    result_at_ = now_safe();
    result_published_ = true;  // after result_ settles (cross-thread flag)
    return;
  }
  if (trustee_tally_data_.size() < ht) return;

  // Expected commitment coefficients and ciphertext sums per option,
  // accumulated in fixed-size chunks (partial sums merged in chunk order,
  // so the group elements are identical at every pool size) and fanned
  // over the compute pool when one is attached.
  struct TallyPartial {
    std::vector<std::vector<crypto::Point>> m_comms, r_comms;
    std::vector<crypto::ElGamalCipher> sums;
  };
  constexpr std::size_t kCastChunk = 64;
  const std::size_t n_cast_chunks =
      (cast_info_.size() + kCastChunk - 1) / kCastChunk;
  std::vector<TallyPartial> partials(n_cast_chunks);
  auto accumulate = [&](std::size_t lo, std::size_t hi) {
    TallyPartial& p = partials[lo / kCastChunk];
    p.m_comms.assign(m, {});
    p.r_comms.assign(m, {});
    p.sums.assign(m, crypto::ElGamalCipher{crypto::Point::infinity(),
                                           crypto::Point::infinity()});
    bool first = true;
    for (std::size_t i = lo; i < hi; ++i) {
      const CastInfo& ci = cast_info_[i];
      const BbBallotInit& ballot = init_.ballots[ballot_index(ci.serial)];
      const BbLineInit& line = ballot.parts[ci.part][ci.line];
      for (std::size_t j = 0; j < m; ++j) {
        p.sums[j] = crypto::eg_add(p.sums[j], line.encoding[j]);
        const auto& cm = line.opening_comms[2 * j];
        const auto& cr = line.opening_comms[2 * j + 1];
        if (first) {
          p.m_comms[j] = cm;
          p.r_comms[j] = cr;
        } else {
          for (std::size_t t = 0; t < cm.size(); ++t) {
            p.m_comms[j][t] = crypto::ec_add(p.m_comms[j][t], cm[t]);
            p.r_comms[j][t] = crypto::ec_add(p.r_comms[j][t], cr[t]);
          }
        }
      }
      first = false;
    }
  };
  if (pool_) {
    pool_->parallel_for(cast_info_.size(), kCastChunk, accumulate);
  } else {
    for (std::size_t lo = 0; lo < cast_info_.size(); lo += kCastChunk) {
      accumulate(lo, std::min(lo + kCastChunk, cast_info_.size()));
    }
  }
  std::vector<std::vector<crypto::Point>> m_comms(m), r_comms(m);
  std::vector<crypto::ElGamalCipher> sums(
      m, crypto::ElGamalCipher{crypto::Point::infinity(),
                               crypto::Point::infinity()});
  bool first = true;
  for (TallyPartial& p : partials) {
    for (std::size_t j = 0; j < m; ++j) {
      sums[j] = crypto::eg_add(sums[j], p.sums[j]);
      if (first) {
        m_comms[j] = std::move(p.m_comms[j]);
        r_comms[j] = std::move(p.r_comms[j]);
      } else {
        for (std::size_t t = 0; t < m_comms[j].size(); ++t) {
          m_comms[j][t] = crypto::ec_add(m_comms[j][t], p.m_comms[j][t]);
          r_comms[j][t] = crypto::ec_add(r_comms[j][t], p.r_comms[j][t]);
        }
      }
    }
    first = false;
  }

  // Verify each trustee's total shares (one batched MSM per trustee, the
  // per-share fallback attributing any failure), keep ht valid ones.
  std::vector<const TrusteeTallyMsg*> valid;
  for (const auto& [tidx, msg] : trustee_tally_data_) {
    std::vector<crypto::PedersenVssInstance> insts;
    insts.reserve(2 * m);
    for (std::size_t j = 0; j < m; ++j) {
      insts.push_back({msg.totals[j].first, m_comms[j]});
      insts.push_back({msg.totals[j].second, r_comms[j]});
    }
    if (verify_vss_instances(insts, pool_)) valid.push_back(&msg);
    if (valid.size() == ht) break;
  }
  if (valid.size() < ht) return;

  ElectionResult res;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<crypto::PedersenShare> ms, rs;
    for (const TrusteeTallyMsg* t : valid) {
      ms.push_back(t->totals[j].first);
      rs.push_back(t->totals[j].second);
    }
    crypto::Fn tj = crypto::pedersen_vss_reconstruct(ms, ht).first;
    crypto::Fn rj = crypto::pedersen_vss_reconstruct(rs, ht).first;
    // The opened total must match the homomorphic ciphertext sum.
    if (!crypto::eg_open_check(init_.commit_key, sums[j], tj, rj)) {
      return;  // inconsistent; wait for more trustees
    }
    res.tally.push_back(scalar_to_u64(tj));
    res.total_randomness.push_back(rj);
  }
  result_ = std::move(res);
  result_at_ = now_safe();
  result_published_ = true;  // after result_ settles (cross-thread flag)
}

void BbNode::handle_read(NodeId from, Reader& r) {
  BbReadMsg m = BbReadMsg::decode(r);
  BbReadReplyMsg reply;
  reply.section = m.section;
  reply.arg = m.arg;
  reply.request_id = m.request_id;
  auto payload = read_section(m.section, m.arg);
  reply.available = payload.has_value();
  if (payload) reply.payload = std::move(*payload);
  ctx().send(from, reply.encode());
}

std::optional<Bytes> BbNode::read_section(const std::string& section,
                                          std::uint64_t arg) const {
  Writer w;
  if (section == "meta") {
    init_.params.encode(w);
    encode_point(w, init_.commit_key);
    w.boolean(vote_set_accepted_);
    w.boolean(codes_published_);
    w.boolean(result_.has_value());
    return w.take();
  }
  if (section == "voteset") {
    if (!vote_set_accepted_) return std::nullopt;
    w.vec(accepted_set_,
          [](Writer& ww, const VoteSetEntry& e) { e.encode(ww); });
    return w.take();
  }
  if (section == "cast-info") {
    if (!codes_published_) return std::nullopt;
    w.vec(cast_info_, [](Writer& ww, const CastInfo& ci) {
      ww.u64(ci.serial);
      ww.u8(ci.part);
      ww.u32(ci.line);
    });
    w.bytes(coins_);
    encode_scalar(w, challenge_);
    return w.take();
  }
  if (section == "challenge") {
    if (!codes_published_) return std::nullopt;
    encode_scalar(w, challenge_);
    return w.take();
  }
  if (section == "ballot") {
    auto it = published_.find(arg);
    if (it == published_.end()) return std::nullopt;
    auto sit = serial_index_.find(arg);
    if (sit == serial_index_.end()) return std::nullopt;
    // Static initialization data followed by the published dynamic state.
    const BbBallotInit& bi = init_.ballots[sit->second];
    for (std::size_t part = 0; part < kNumParts; ++part) {
      w.vec(bi.parts[part],
            [](Writer& ww, const BbLineInit& l) { l.encode(ww); });
    }
    const PublishedBallot& pb = it->second;
    w.boolean(pb.voted);
    w.u8(pb.used_part);
    w.u32(pb.used_line);
    for (std::size_t part = 0; part < kNumParts; ++part) {
      w.vec(pb.lines[part], [](Writer& ww, const PublishedLine& l) {
        encode_published_line(ww, l);
      });
    }
    return w.take();
  }
  if (section == "result") {
    if (!result_.has_value()) return std::nullopt;
    w.vec(result_->tally, [](Writer& ww, std::uint64_t v) { ww.u64(v); });
    w.vec(result_->total_randomness,
          [](Writer& ww, const crypto::Fn& s) { encode_scalar(ww, s); });
    return w.take();
  }
  return std::nullopt;
}

}  // namespace ddemos::bb
