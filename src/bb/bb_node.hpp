// Bulletin Board node (paper Section III-G). Isolated replicas: a BB node
// never contacts another BB node. Reads are public; writes are verified:
//  * the final vote set is accepted once fv+1 VC nodes push byte-identical
//    sets;
//  * msk is reconstructed from Nv-fv Merkle-verified VC key shares and
//    checked against the H_msk fingerprint, then the committed vote codes
//    are decrypted and the cast (part, line) positions published;
//  * trustee writes are signature-checked and every Pedersen share is
//    verified against the published coefficient commitments before use;
//    with ht verified trustee contributions the node opens unused parts,
//    completes the ZK proofs and publishes the final tally.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <set>

#include "core/messages.hpp"
#include "sim/runtime.hpp"
#include "store/wal.hpp"

namespace ddemos::util {
class ThreadPool;
}

namespace ddemos::bb {

// The BB WAL holds raw accepted write messages (sender id + payload): the
// node's state is a pure fold over its verified write stream, so replay
// simply re-runs on_message — including every signature and Merkle check,
// since a disk record is no more trusted than the network was.
inline constexpr std::uint8_t kBbWalMessage = 1;

// What a BB node has published for one ballot line after msk
// reconstruction (decrypted vote code) and trustee writes (openings / ZK).
struct PublishedLine {
  Bytes decrypted_code;                   // published after msk reveal
  bool opened = false;
  std::vector<std::uint64_t> messages;    // size m when opened
  std::vector<crypto::Fn> randomness;     // size m when opened
  bool zk_complete = false;
  std::vector<crypto::BitProofResponse> bit_responses;  // size m when done
  crypto::Fn sum_response;
};

struct PublishedBallot {
  bool voted = false;
  std::uint8_t used_part = 0;
  std::uint32_t used_line = 0;
  // [part][line]
  std::array<std::vector<PublishedLine>, core::kNumParts> lines;
};

struct ElectionResult {
  std::vector<std::uint64_t> tally;   // per option
  std::vector<crypto::Fn> total_randomness;
};

class BbNode final : public sim::Process {
 public:
  explicit BbNode(core::BbInit init);

  void on_message(sim::NodeId from, const net::Buffer& payload) override;

  // --- public read API (also served over the network read channel) ------
  // These three completion flags are atomic because the ThreadNet
  // completion predicate and the driver's phase probe read them from the
  // waiter thread while this node's worker is still running; everything
  // else on this class is single-writer node state, safe to read only
  // after the runtime has stopped.
  bool vote_set_published() const { return vote_set_accepted_; }
  bool codes_published() const { return codes_published_; }
  bool result_published() const { return result_published_; }
  // Phase timestamps (virtual time) for the Figure 5c breakdown.
  sim::TimePoint vote_set_accepted_at() const { return vote_set_at_; }
  sim::TimePoint codes_published_at() const { return codes_at_; }
  sim::TimePoint result_published_at() const { return result_at_; }
  const std::vector<core::VoteSetEntry>& vote_set() const {
    return accepted_set_;
  }
  const std::optional<ElectionResult>& result() const { return result_; }
  const core::BbInit& init() const { return init_; }

  // Serialized section payloads (deterministic; majority-comparable).
  // Returns nullopt while the section is not yet available.
  std::optional<Bytes> read_section(const std::string& section,
                                    std::uint64_t arg = 0) const;

  // Cast info derived after decryption: (serial, part, line) per cast vote.
  struct CastInfo {
    core::Serial serial;
    std::uint8_t part;
    std::uint32_t line;
  };
  const std::vector<CastInfo>& cast_info() const { return cast_info_; }
  const crypto::Fn& challenge() const { return challenge_; }
  const std::map<core::Serial, PublishedBallot>& published() const {
    return published_;
  }

  // Optional shared worker pool for the node's bulk crypto (per-ballot
  // trustee-data combine and the result-publication tally check). The
  // pool only changes wall-clock time, never decisions or published
  // bytes: chunk boundaries are thread-count independent. nullptr (the
  // default) keeps everything on the node's own thread.
  void set_compute_pool(util::ThreadPool* pool) { pool_ = pool; }

  // Durability: hands the node its write-ahead log (ownership transfers)
  // and replays it immediately by re-dispatching every logged write
  // through on_message with sends/timestamps suppressed. Call before the
  // hosting runtime starts. Throws store::WalError on corruption.
  void attach_wal(std::unique_ptr<store::Wal> wal);
  std::uint64_t wal_records() const { return wal_ ? wal_->records() : 0; }

 private:
  void handle_vote_set_chunk(std::size_t vc, Reader& r);
  void handle_vote_set_done(std::size_t vc, Reader& r);
  void handle_msk_share(std::size_t vc, Reader& r);
  void handle_trustee_ballot(Reader& r);
  void handle_trustee_tally(Reader& r);
  void handle_read(sim::NodeId from, Reader& r);
  void maybe_accept_vote_set();
  void maybe_decrypt_codes();
  void maybe_combine_ballot(core::Serial serial);
  void maybe_publish_result();
  std::optional<std::size_t> vc_index_of(sim::NodeId id) const;
  std::size_t ballot_index(core::Serial serial) const;
  // ctx() is unbound while the WAL replays (the node is not hosted yet);
  // phase timestamps from replayed history are stamped 0, and on_start
  // they read as "published before this incarnation began".
  sim::TimePoint now_safe() const { return replaying_ ? 0 : ctx().now(); }

  core::BbInit init_;
  util::ThreadPool* pool_ = nullptr;
  std::unique_ptr<store::Wal> wal_;
  bool replaying_ = false;  // true only inside attach_wal's replay pass
  std::map<core::Serial, std::size_t> serial_index_;

  // Vote-set acceptance.
  struct VcSubmission {
    std::vector<core::VoteSetEntry> entries;
    std::optional<crypto::Hash32> done_hash;
    std::uint64_t expected = 0;
  };
  std::vector<VcSubmission> submissions_;
  std::atomic<bool> vote_set_accepted_{false};
  std::vector<core::VoteSetEntry> accepted_set_;

  // msk reconstruction.
  std::map<std::uint32_t, crypto::Share> msk_shares_;
  std::optional<Bytes> msk_;
  std::atomic<bool> codes_published_{false};
  std::vector<CastInfo> cast_info_;
  Bytes coins_;
  crypto::Fn challenge_;

  // Trustee data: per serial, per trustee index.
  std::map<core::Serial, std::map<std::uint32_t, core::TrusteeBallotMsg>>
      trustee_ballot_data_;
  std::map<std::uint32_t, core::TrusteeTallyMsg> trustee_tally_data_;
  std::map<core::Serial, PublishedBallot> published_;
  std::optional<ElectionResult> result_;
  std::atomic<bool> result_published_{false};  // set after result_ settles
  sim::TimePoint vote_set_at_ = -1;
  sim::TimePoint codes_at_ = -1;
  sim::TimePoint result_at_ = -1;
};

}  // namespace ddemos::bb
