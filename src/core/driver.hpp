// Runtime-neutral election orchestration — the top of the public API.
// ElectionDriver instantiates an election described by a DriverConfig on
// any sim::RuntimeHost (the deterministic simulator or the multi-threaded
// transport), streams the voter workload from a core::Workload source (so
// configs stay O(1) in the number of voters), drives the run through the
// host's run_to_quiescence completion wait, and harvests a structured
// ElectionReport: tally, receipts, per-phase durations, VC stats, and
// event/allocation counts. ElectionObserver hooks fire as the election
// crosses phase boundaries on either backend.
#pragma once

#include <functional>
#include <memory>

#include "bb/bb_node.hpp"
#include "client/auditor.hpp"
#include "client/voter.hpp"
#include "core/workload.hpp"
#include "ea/ea.hpp"
#include "sim/sim.hpp"
#include "store/ballot_store.hpp"
#include "store/wal.hpp"
#include "trustee/trustee_node.hpp"
#include "util/thread_pool.hpp"
#include "vc/vc_node.hpp"

namespace ddemos::core {

class ElectionObserver;

// Durable-node knob. When wal_dir is set, every *locally hosted* VC and BB
// node (RuntimeHost::is_local) gets a write-ahead log at
// <wal_dir>/<node name>.wal: state transitions are appended as they
// happen (cast accepted, announce snapshot, consensus decided, push
// published; raw accepted writes on the BBs) and a node constructed over
// an existing log replays it before start, resuming a live election where
// the previous process died. See DESIGN.md "Write-ahead log".
struct DurabilityConfig {
  std::string wal_dir;  // empty = durability off (the default)
  store::FsyncPolicy fsync = store::FsyncPolicy::kInterval;
  std::size_t fsync_interval = 64;  // records per fsync under kInterval
  bool enabled() const { return !wal_dir.empty(); }
  store::WalOptions wal_options() const { return {fsync, fsync_interval}; }
};

struct DriverConfig {
  ElectionParams params;
  std::uint64_t seed = 1;
  // Voter workload source; null defaults to RoundRobinWorkload (every slot
  // votes, option = slot % m, casts spread over the window).
  std::shared_ptr<Workload> workload;
  vc::VcNode::Options vc_options;
  // Intra-node worker shards per VC node. When set (> 1) it overrides
  // vc_options.n_shards at build time; at its default of 1 a directly-set
  // vc_options.n_shards still applies. 1 = the legacy serial node; > 1
  // partitions each node's serial range across shards — one worker thread
  // per shard on ThreadNet, one virtual processor per shard on the
  // simulator — and requires contiguous serials (the EA default).
  std::size_t vc_shards = 1;
  client::Voter::Config voter_template;  // patience etc. (ballot filled in)
  // Indices of nodes to crash before start (simulator backend only).
  std::vector<std::size_t> crashed_vcs;
  std::vector<std::size_t> crashed_bbs;
  std::vector<std::size_t> crashed_trustees;
  // Custom ballot source per VC node (e.g. DiskBallotSource); defaults to
  // MemoryBallotSource over the EA's data.
  std::function<std::shared_ptr<store::BallotDataSource>(const VcInit&)>
      store_factory;
  // Invoked on the EA's output before any node is constructed. Used by
  // verifiability tests and examples to play a malicious EA (modification /
  // clash attacks) against the auditors. Ignored when `artifacts` is set.
  std::function<void(ea::SetupArtifacts&)> tamper_setup;
  // Trustee behaviour (poll interval etc.) shared by both runtimes.
  trustee::TrusteeNode::Options trustee_options;
  // Write-ahead logging + crash recovery for VC/BB nodes (off by default).
  DurabilityConfig durability;
  // Precomputed setup to reuse across backends (runtime parity) or runs;
  // null = the driver runs ea_setup itself.
  std::shared_ptr<const ea::SetupArtifacts> artifacts;
  // Borrowed observers, registered before setup so they see every hook
  // (add_observer after construction only catches phase/completion hooks).
  std::vector<ElectionObserver*> observers;

  // Backend knobs. link/measure_cpu configure the driver-owned simulator;
  // an externally hosted backend keeps whatever the caller set on it.
  sim::LinkModel link = sim::LinkModel::lan();
  bool measure_cpu = false;
  std::size_t max_events = 50'000'000;  // simulator event budget per run()
  // BB compute pool: > 1 attaches a driver-owned util::ThreadPool to every
  // BB node so the trustee-data combine and tally check fan out across
  // real cores. Decisions and published bytes are unchanged at any value
  // (chunk boundaries are thread-count independent); only wall clock (and
  // measure_cpu virtual time) moves.
  std::size_t compute_threads = 1;
  sim::Duration wall_timeout_us = 60'000'000;  // ThreadNet completion cap
  // Events between phase probes on the simulator: smaller = sharper phase
  // boundaries for observers, at some dispatch-loop overhead.
  std::size_t probe_interval = 1024;
};

// Node ids of an election instantiated on some RuntimeHost.
struct VoterSlot {
  std::size_t slot = 0;    // ballot slot index
  std::size_t option = 0;  // option this voter casts
};
struct ElectionTopology {
  std::vector<sim::NodeId> vc_ids, bb_ids, trustee_ids;
  // One entry per instantiated voter (non-abstaining workload intent), in
  // stream order; O(votes cast), never O(n_voters).
  std::vector<sim::NodeId> voter_ids;
  std::vector<VoterSlot> voter_slots;  // parallel to voter_ids
  // Closed-loop workloads get one multiplexing client instead of per-slot
  // voters.
  sim::NodeId load_client_id = sim::kNoNode;
};

// Phase boundaries of a completed election, in the host's time base
// (virtual microseconds on the simulator, wall microseconds on ThreadNet),
// with the paper's Figure-5c durations derived from them.
struct PhaseBreakdown {
  sim::TimePoint t_start = 0, t_end = 0;       // configured election hours
  sim::TimePoint last_receipt_at = 0;          // vote collection ends
  sim::TimePoint voting_ended_at = 0;          // max over VC nodes
  sim::TimePoint consensus_done_at = 0;        // max over VC nodes
  sim::TimePoint push_done_at = 0;             // max over VC nodes
  sim::TimePoint tally_published_at = 0;       // max BB codes_published_at
  sim::TimePoint result_published_at = 0;      // max BB result_published_at

  double collection_s() const {
    return static_cast<double>(last_receipt_at - t_start) / 1e6;
  }
  double consensus_s() const {
    return static_cast<double>(consensus_done_at - t_end) / 1e6;
  }
  double push_tally_s() const {
    return static_cast<double>(tally_published_at - consensus_done_at) / 1e6;
  }
  double publish_s() const {
    return static_cast<double>(result_published_at - tally_published_at) / 1e6;
  }
};

// Per-OS-process accounting row for a multi-process (TcpNet) run, merged
// from the node processes' reports by core::TcpLauncher. Field names mirror
// bench::Instrumentation's accounting fields so bench rows can emit either
// source uniformly. Single-process backends leave the vector empty.
struct NodeAccounting {
  std::string name;  // "launcher", "vc0", "bb1", ...
  std::uint64_t events = 0;       // handler invocations in that process
  std::uint64_t allocations = 0;  // Buffer payload allocations
  std::uint64_t rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  // Transport counters (zero for the simulator/ThreadNet).
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t frames_dropped = 0;
};

// Structured outcome of a driver run; everything the benches and tests
// previously scraped from node internals.
struct ElectionReport {
  bool completed = false;  // every live BB published a result
  std::vector<std::uint64_t> tally;  // published tally (empty if none)
  // Ground truth from the workload: receipts obtained per option.
  std::vector<std::uint64_t> expected_tally;
  std::vector<VoteSetEntry> vote_set;  // agreed set (first live VC)
  std::size_t voters_launched = 0;  // non-abstaining intents instantiated
  std::size_t receipts_issued = 0;  // receipts actually obtained
  // Printed receipt per voter holding one, in workload stream order (empty
  // in closed-loop mode, where receipts_issued still counts completions).
  std::vector<std::uint64_t> receipts;
  PhaseBreakdown phases;
  vc::VcStats vc_totals;               // counters summed, timings maxed
  std::vector<vc::VcStats> vc_stats;   // per VC node
  // Per-shard breakdown [vc node][shard]: handled messages, endorsements,
  // receipts, and (on ThreadNet) the shard mailbox high-water mark. One
  // entry per shard even when vc_shards = 1.
  std::vector<std::vector<vc::VcShardStats>> vc_shard_stats;
  // Runtime accounting for the run() span (zeros on ThreadNet where noted).
  std::uint64_t events_processed = 0;    // handler invocations, both backends
  std::uint64_t messages_delivered = 0;  // simulator only
  std::uint64_t messages_dropped = 0;    // simulator only
  std::uint64_t payload_allocations = 0;
  std::uint64_t peak_rss_kb = 0;  // process peak RSS sampled after the run
  // One row per OS process on a TcpNet cluster (launcher first); empty on
  // the single-process backends.
  std::vector<NodeAccounting> process_accounting;
  double wall_seconds = 0;  // real time spent inside run()
  double events_per_sec() const {
    return wall_seconds > 0 ? events_processed / wall_seconds : 0;
  }
};

enum class ElectionPhase : std::uint8_t {
  kVoting,     // election hours: clients casting, receipts flowing
  kConsensus,  // every live VC entered vote-set consensus
  kTally,      // every live BB published the code/tally material
  kResult,     // every live BB published the final result
};

// Phase hooks, fired from within the run on both backends (timestamps are
// probe-time observations in the host's time base; exact boundaries land
// in the report's PhaseBreakdown).
class ElectionObserver {
 public:
  virtual ~ElectionObserver() = default;
  virtual void on_setup_complete(const ea::SetupArtifacts&) {}
  virtual void on_election_built(const ElectionTopology&) {}
  virtual void on_phase_entered(ElectionPhase, sim::TimePoint /*at*/) {}
  virtual void on_complete(const ElectionReport&) {}
};

// Instantiates every protocol node of the election described by `cfg` on
// `host`, streaming voters from the workload. This is the single code path
// every backend uses; runtime-specific setup (link models, crash
// injection) happens on the concrete runtime around this call.
ElectionTopology build_election(sim::RuntimeHost& host,
                                const ea::SetupArtifacts& artifacts,
                                const DriverConfig& cfg);

// The two halves of build_election, for hosts where they run in different
// OS processes (TcpNet): every process builds the protocol-node prefix —
// VCs 0..Nv-1, then BBs, then trustees, the id convention BB nodes rely on
// to authenticate VC writers — and only the launcher process streams the
// client half on top. On TcpNet, add_node keeps just the nodes the calling
// process hosts, so running the identical build in every process yields
// an aligned id/name space with each node constructed exactly once.
ElectionTopology build_protocol_nodes(sim::RuntimeHost& host,
                                      const ea::SetupArtifacts& artifacts,
                                      const DriverConfig& cfg);
void build_clients(sim::RuntimeHost& host,
                   const ea::SetupArtifacts& artifacts,
                   const DriverConfig& cfg, ElectionTopology& topo);

class ElectionDriver {
 public:
  // Owns a deterministic simulator backend (the common case).
  explicit ElectionDriver(DriverConfig config);
  // Hosts the election on an externally owned backend (Simulation or
  // ThreadNet); crash lists require the simulator.
  ElectionDriver(sim::RuntimeHost& host, DriverConfig config);

  // Observers are borrowed, not owned; add before run().
  void add_observer(ElectionObserver* observer);

  // Runs the election to completion on the configured backend and returns
  // the harvested report (also retained, see report()).
  ElectionReport run();
  // Harvests a report from the current node state without running.
  ElectionReport harvest() const;
  const ElectionReport& report() const { return report_; }

  sim::RuntimeHost& host() { return *host_; }
  // The simulator backend; throws ProtocolError on a different backend.
  sim::Simulation& simulation();
  const ea::SetupArtifacts& artifacts() const { return *artifacts_; }
  const ElectionTopology& topology() const { return topo_; }

  vc::VcNode& vc_node(std::size_t i);
  bb::BbNode& bb_node(std::size_t i);
  trustee::TrusteeNode& trustee_node(std::size_t i);
  client::Voter& voter(std::size_t i);
  std::size_t voter_count() const { return topo_.voter_ids.size(); }
  // The closed-loop client, or null when the workload is open-loop.
  ClosedLoopClient* load_client();

  std::vector<const bb::BbNode*> bb_views() const;
  client::MajorityReader reader() const {
    return client::MajorityReader(bb_views(), cfg_.params.f_bb);
  }

  // The expected tally given the configured workload (ground truth):
  // receipts obtained per option.
  std::vector<std::uint64_t> expected_tally() const;

 private:
  void init();
  bool completion_reached() const;
  void probe_phases();
  bool crashed(sim::NodeId id) const;

  DriverConfig cfg_;
  std::shared_ptr<const ea::SetupArtifacts> artifacts_;
  // Shared by every BB node when cfg_.compute_threads > 1; must outlive
  // the host's processes.
  std::unique_ptr<util::ThreadPool> compute_pool_;
  std::unique_ptr<sim::Simulation> owned_sim_;
  sim::RuntimeHost* host_ = nullptr;
  sim::Simulation* sim_ = nullptr;  // host_ when it is a Simulation
  ElectionTopology topo_;
  // Node pointers cached at build time so the ThreadNet completion
  // predicate and the phase probe avoid per-call dynamic_casts.
  std::vector<vc::VcNode*> vcs_;
  std::vector<bb::BbNode*> bbs_;
  ClosedLoopClient* client_ = nullptr;
  std::vector<ElectionObserver*> observers_;
  ElectionReport report_;
  bool consensus_seen_ = false, tally_seen_ = false, result_seen_ = false;
};

}  // namespace ddemos::core
