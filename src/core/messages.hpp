// Wire messages exchanged between voters, VC nodes, BB nodes and trustees.
// Every node-visible message starts with a MsgType byte; bodies are
// length-checked on decode (malformed input throws CodecError and is
// dropped by the receiving node).
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"
#include "util/bitmap.hpp"

namespace ddemos::core {

enum class MsgType : std::uint8_t {
  // Voter <-> VC (public channel).
  kVote = 1,
  kVoteReply = 2,
  // VC <-> VC voting protocol (authenticated channels).
  kEndorse = 10,
  kEndorsement = 11,
  kVoteP = 12,
  // VC <-> VC vote-set consensus.
  kAnnounce = 20,
  kRecoverRequest = 21,
  kRecoverResponse = 22,
  kConsensus = 23,
  // VC -> BB.
  kVoteSetChunk = 30,
  kVoteSetDone = 31,
  kMskShare = 32,
  // Trustee -> BB.
  kTrusteeBallot = 40,
  kTrusteeTally = 41,
  // Anyone <-> BB (public read channel).
  kBbRead = 50,
  kBbReadReply = 51,
  // VC-internal shard coordination. Never crosses the network: sent to
  // self through Context::send_self (reliable, link-model-free) and
  // ignored from any other sender. kShardDrain flushes one shard's mailbox
  // at election end; kShardBarrier is the fan-in completion that releases
  // the control shard into vote-set consensus.
  kShardDrain = 60,
  kShardBarrier = 61,
};

MsgType peek_type(BytesView msg);

// --- Voting protocol ----------------------------------------------------

struct VoteMsg {
  Serial serial = 0;
  Bytes vote_code;
  Bytes encode() const;
  static VoteMsg decode(Reader& r);
};

enum class VoteReplyStatus : std::uint8_t {
  kOk = 0,
  kOutsideHours = 1,
  kUnknown = 2,       // unknown serial or vote code
  kAlreadyVoted = 3,  // ballot used with a different vote code
};

struct VoteReplyMsg {
  Serial serial = 0;
  VoteReplyStatus status = VoteReplyStatus::kOk;
  std::uint64_t receipt = 0;
  Bytes encode() const;
  static VoteReplyMsg decode(Reader& r);
};

// Canonical bytes a VC node signs when endorsing (serial, vote-code).
Bytes endorsement_digest(BytesView election_id, Serial serial,
                         BytesView vote_code);

struct EndorseMsg {
  Serial serial = 0;
  Bytes vote_code;
  Bytes encode() const;
  static EndorseMsg decode(Reader& r);
};

struct EndorsementMsg {
  Serial serial = 0;
  Bytes vote_code;
  std::uint32_t node_index = 0;
  Bytes signature;
  Bytes encode() const;
  static EndorsementMsg decode(Reader& r);
};

// Uniqueness certificate: Nv - fv endorsement signatures over the same
// (serial, vote-code).
struct Ucert {
  Bytes vote_code;
  std::vector<std::pair<std::uint32_t, Bytes>> signatures;

  void encode(Writer& w) const;
  static Ucert decode(Reader& r);
  // Validates threshold-many correct signatures from distinct nodes.
  bool valid(BytesView election_id, Serial serial,
             const std::vector<Bytes>& vc_public_keys,
             std::size_t threshold) const;
};

struct VotePMsg {
  Serial serial = 0;
  Bytes vote_code;
  std::uint8_t part = 0;       // which ballot part the code belongs to
  std::uint32_t line = 0;      // shuffled line index within the part
  crypto::Share receipt_share;
  std::vector<crypto::Hash32> share_path;
  Ucert ucert;
  Bytes encode() const;
  static VotePMsg decode(Reader& r);
};

// --- Vote-set consensus ---------------------------------------------------

struct AnnounceEntry {
  std::uint64_t instance = 0;  // dense ballot index
  Bytes vote_code;
  Ucert ucert;
  void encode(Writer& w) const;
  static AnnounceEntry decode(Reader& r);
};

struct AnnounceMsg {
  // Entries only for ballots with a known (certified) vote code; all other
  // registered ballots are implicitly announced as null.
  std::vector<AnnounceEntry> entries;
  bool last_chunk = true;
  Bytes encode() const;
  static AnnounceMsg decode(Reader& r);
};

struct RecoverRequestMsg {
  Bitmap instances;  // instances the sender needs a vote code for
  Bytes encode() const;
  static RecoverRequestMsg decode(Reader& r);
};

struct RecoverResponseMsg {
  std::vector<AnnounceEntry> entries;
  Bytes encode() const;
  static RecoverResponseMsg decode(Reader& r);
};

Bytes wrap_consensus(BytesView inner);
// Zero-copy: the returned view aliases the message payload being decoded.
BytesView unwrap_consensus(Reader& r);

// --- VC -> BB -------------------------------------------------------------

struct VoteSetChunkMsg {
  std::vector<VoteSetEntry> entries;
  Bytes encode() const;
  static VoteSetChunkMsg decode(Reader& r);
};

struct VoteSetDoneMsg {
  std::uint64_t total_entries = 0;
  crypto::Hash32 set_hash{};
  Bytes encode() const;
  static VoteSetDoneMsg decode(Reader& r);
};

struct MskShareMsg {
  crypto::Share share;
  std::vector<crypto::Hash32> path;
  Bytes encode() const;
  static MskShareMsg decode(Reader& r);
};

// --- Trustee -> BB ----------------------------------------------------------

// Evaluated Pedersen share (f, g) pair for one scalar.
struct EvalShare {
  crypto::PedersenShare share;
  void encode(Writer& w) const { encode_ped_share(w, share); }
  static EvalShare decode(Reader& r) { return {decode_ped_share(r)}; }
};

struct TrusteePartData {
  // For an opened part: per line, per ciphertext: opening shares (m, r).
  std::vector<std::vector<std::pair<crypto::PedersenShare,
                                    crypto::PedersenShare>>>
      openings;
  // For a used part: per line: responses c0, c1, z0, z1 evaluated at the
  // challenge, plus the sum-proof response.
  std::vector<std::vector<std::array<crypto::PedersenShare, 4>>> zk_bits;
  std::vector<crypto::PedersenShare> zk_sum;
};

struct TrusteeBallotMsg {
  Serial serial = 0;
  std::uint32_t trustee_index = 0;
  std::uint8_t voted = 0;      // 1 if one part was used
  std::uint8_t used_part = 0;  // valid when voted
  std::array<TrusteePartData, kNumParts> parts;
  Bytes signature;  // over everything above

  Bytes signing_bytes(BytesView election_id) const;
  Bytes encode() const;
  static TrusteeBallotMsg decode(Reader& r);
};

struct TrusteeTallyMsg {
  std::uint32_t trustee_index = 0;
  // Per option: share of (tally count, total randomness).
  std::vector<std::pair<crypto::PedersenShare, crypto::PedersenShare>> totals;
  Bytes signature;

  Bytes signing_bytes(BytesView election_id) const;
  Bytes encode() const;
  static TrusteeTallyMsg decode(Reader& r);
};

// --- BB public read channel -------------------------------------------------

struct BbReadMsg {
  std::string section;     // "meta", "voteset", "cast-info", "ballot",
                           // "result", "challenge"
  std::uint64_t arg = 0;   // serial for "ballot"
  std::uint64_t request_id = 0;
  Bytes encode() const;
  static BbReadMsg decode(Reader& r);
};

struct BbReadReplyMsg {
  std::string section;
  std::uint64_t arg = 0;
  std::uint64_t request_id = 0;
  bool available = false;
  Bytes payload;
  Bytes encode() const;
  static BbReadReplyMsg decode(Reader& r);
};

}  // namespace ddemos::core
