#include "core/driver.hpp"

#include <chrono>
#include <unordered_set>

#include "util/error.hpp"
#include "util/proc_stats.hpp"

namespace ddemos::core {

using sim::NodeId;

ElectionTopology build_protocol_nodes(sim::RuntimeHost& host,
                                      const ea::SetupArtifacts& artifacts,
                                      const DriverConfig& cfg) {
  const ElectionParams& p = cfg.params;
  ElectionTopology topo;

  // VC nodes take host ids 0..Nv-1 (the convention BB nodes use to
  // identify authenticated VC writers).
  std::vector<NodeId> vc_ids(p.n_vc), bb_ids(p.n_bb);
  for (std::size_t i = 0; i < p.n_vc; ++i) vc_ids[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    bb_ids[i] = static_cast<NodeId>(p.n_vc + i);
  }
  // cfg.vc_shards is the driver-level sharding knob; a caller who instead
  // set vc_options.n_shards directly (the knob VcNode itself documents)
  // must not be silently reset to unsharded, so the explicit driver knob
  // only wins when it was actually set.
  vc::VcNode::Options vc_options = cfg.vc_options;
  vc_options.n_shards =
      cfg.vc_shards > 1 ? cfg.vc_shards
                        : std::max<std::size_t>(vc_options.n_shards, 1);
  // Durability: each locally hosted VC/BB node gets a WAL at
  // <wal_dir>/<node name>.wal, replayed (crash recovery) before the host
  // starts. Remote placeholders (multi-process clusters) get theirs from
  // the process that actually hosts them — this same code, running there.
  auto wal_for = [&](const std::string& name) {
    return std::make_unique<store::Wal>(cfg.durability.wal_dir + "/" + name,
                                        cfg.durability.wal_options());
  };
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    std::shared_ptr<store::BallotDataSource> source;
    if (cfg.store_factory) {
      source = cfg.store_factory(artifacts.vc_inits[i]);
    } else {
      source = std::make_shared<store::MemoryBallotSource>(
          artifacts.vc_inits[i].ballots);
    }
    std::string name = "vc" + std::to_string(i);
    NodeId id = host.add_node(
        std::make_unique<vc::VcNode>(artifacts.vc_inits[i], source, vc_ids,
                                     bb_ids, vc_options),
        name);
    if (cfg.durability.enabled() && host.is_local(id)) {
      dynamic_cast<vc::VcNode&>(host.process(id))
          .attach_wal(wal_for(name + ".wal"));
    }
    topo.vc_ids.push_back(id);
  }
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    std::string name = "bb" + std::to_string(i);
    NodeId id = host.add_node(
        std::make_unique<bb::BbNode>(artifacts.bb_inits[i]), name);
    if (cfg.durability.enabled() && host.is_local(id)) {
      dynamic_cast<bb::BbNode&>(host.process(id))
          .attach_wal(wal_for(name + ".wal"));
    }
    topo.bb_ids.push_back(id);
  }
  for (std::size_t i = 0; i < p.n_trustees; ++i) {
    NodeId id = host.add_node(
        std::make_unique<trustee::TrusteeNode>(artifacts.trustee_inits[i],
                                               topo.bb_ids,
                                               cfg.trustee_options),
        "trustee" + std::to_string(i));
    topo.trustee_ids.push_back(id);
  }
  return topo;
}

void build_clients(sim::RuntimeHost& host,
                   const ea::SetupArtifacts& artifacts,
                   const DriverConfig& cfg, ElectionTopology& topo) {
  const ElectionParams& p = cfg.params;
  // Stream the voter workload: one Voter node per open-loop intent, or one
  // multiplexing ClosedLoopClient for closed-loop sources. The workload is
  // the only description of the electorate — no O(n_voters) vectors.
  std::shared_ptr<Workload> workload =
      cfg.workload ? cfg.workload : RoundRobinWorkload::make();
  workload->bind(p);
  // Shared intent validation for both client shapes. Slots are bounded by
  // the configured electorate AND by the ballots the (possibly reused)
  // artifacts actually carry.
  auto next_intent = [&]() -> std::optional<VoteIntent> {
    while (auto in = workload->next()) {
      if (in->option == kAbstain) continue;
      if (in->slot >= p.n_voters ||
          in->slot >= artifacts.voter_ballots.size() || in->option >= p.m()) {
        throw ProtocolError("workload intent out of range");
      }
      return in;
    }
    return std::nullopt;
  };
  if (workload->concurrency() > 0) {
    if (artifacts.voter_ballots.empty()) {
      throw ProtocolError(
          "closed-loop workload needs the EA's printed ballots");
    }
    crypto::Rng part_rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
    std::vector<VoteTarget> targets;
    std::unordered_set<std::size_t> seen_slots;
    while (auto in = next_intent()) {
      // The client keys in-flight casts by serial; a duplicate slot would
      // silently wedge the loop (the overwritten entry never resolves).
      if (!seen_slots.insert(in->slot).second) {
        throw ProtocolError("closed-loop workload yields duplicate slot");
      }
      const Ballot& ballot = artifacts.voter_ballots[in->slot];
      std::size_t part = part_rng.below(kNumParts);
      const BallotLine& line = ballot.parts[part].lines[in->option];
      targets.push_back(
          VoteTarget{ballot.serial, line.vote_code, line.receipt, in->option});
    }
    topo.load_client_id = host.add_node(
        std::make_unique<ClosedLoopClient>(std::move(targets), topo.vc_ids,
                                           workload->concurrency(),
                                           cfg.seed ^ 0x1),
        "loadgen");
    return;
  }
  while (auto in = next_intent()) {
    if (in->cast_at == kCastWhenReady) {
      throw ProtocolError(
          "kCastWhenReady intent from an open-loop workload");
    }
    client::Voter::Config vcfg = cfg.voter_template;
    vcfg.ballot = artifacts.voter_ballots[in->slot];
    vcfg.option_index = in->option;
    vcfg.vc_ids = topo.vc_ids;
    vcfg.seed = cfg.seed * 1000003 + in->slot;
    vcfg.vote_at = in->cast_at;
    NodeId id = host.add_node(std::make_unique<client::Voter>(vcfg),
                              "voter" + std::to_string(in->slot));
    topo.voter_ids.push_back(id);
    topo.voter_slots.push_back(VoterSlot{in->slot, in->option});
  }
}

ElectionTopology build_election(sim::RuntimeHost& host,
                                const ea::SetupArtifacts& artifacts,
                                const DriverConfig& cfg) {
  ElectionTopology topo = build_protocol_nodes(host, artifacts, cfg);
  build_clients(host, artifacts, cfg, topo);
  return topo;
}

ElectionDriver::ElectionDriver(DriverConfig config)
    : cfg_(std::move(config)),
      owned_sim_(std::make_unique<sim::Simulation>(
          cfg_.seed ^ 0x5151515151515151ull)) {
  host_ = owned_sim_.get();
  sim_ = owned_sim_.get();
  init();
}

ElectionDriver::ElectionDriver(sim::RuntimeHost& host, DriverConfig config)
    : cfg_(std::move(config)) {
  host_ = &host;
  sim_ = dynamic_cast<sim::Simulation*>(&host);
  init();
}

void ElectionDriver::init() {
  observers_ = cfg_.observers;
  if (cfg_.artifacts) {
    artifacts_ = cfg_.artifacts;
  } else {
    auto arts = std::make_shared<ea::SetupArtifacts>(
        ea::ea_setup({cfg_.params, cfg_.seed, false, 64}));
    if (cfg_.tamper_setup) cfg_.tamper_setup(*arts);
    artifacts_ = std::move(arts);
  }
  for (ElectionObserver* o : observers_) o->on_setup_complete(*artifacts_);

  if (owned_sim_) {
    // Backend knobs configure the driver-owned simulator only; an external
    // backend belongs to the caller (its link model etc. stay untouched).
    sim_->set_default_link(cfg_.link);
    if (cfg_.measure_cpu) sim_->set_measure_cpu(true);
  }
  if (!sim_ && (!cfg_.crashed_vcs.empty() || !cfg_.crashed_bbs.empty() ||
                !cfg_.crashed_trustees.empty())) {
    throw ProtocolError("crash injection requires the simulator backend");
  }
  topo_ = build_election(*host_, *artifacts_, cfg_);
  if (sim_) {
    for (std::size_t i : cfg_.crashed_vcs) sim_->crash(topo_.vc_ids.at(i));
    for (std::size_t i : cfg_.crashed_bbs) sim_->crash(topo_.bb_ids.at(i));
    for (std::size_t i : cfg_.crashed_trustees) {
      sim_->crash(topo_.trustee_ids.at(i));
    }
  }
  for (NodeId id : topo_.vc_ids) {
    vcs_.push_back(&dynamic_cast<vc::VcNode&>(host_->process(id)));
  }
  for (NodeId id : topo_.bb_ids) {
    bbs_.push_back(&dynamic_cast<bb::BbNode&>(host_->process(id)));
  }
  if (cfg_.compute_threads > 1) {
    compute_pool_ = std::make_unique<util::ThreadPool>(cfg_.compute_threads);
    for (bb::BbNode* bb : bbs_) bb->set_compute_pool(compute_pool_.get());
  }
  if (topo_.load_client_id != sim::kNoNode) {
    client_ = &dynamic_cast<ClosedLoopClient&>(
        host_->process(topo_.load_client_id));
  }
  for (ElectionObserver* o : observers_) o->on_election_built(topo_);
}

void ElectionDriver::add_observer(ElectionObserver* observer) {
  observers_.push_back(observer);
}

bool ElectionDriver::crashed(NodeId id) const {
  return sim_ && sim_->crashed(id);
}

bool ElectionDriver::completion_reached() const {
  for (std::size_t i = 0; i < bbs_.size(); ++i) {
    if (!crashed(topo_.bb_ids[i]) && !bbs_[i]->result_published()) {
      return false;
    }
  }
  for (std::size_t i = 0; i < vcs_.size(); ++i) {
    if (!crashed(topo_.vc_ids[i]) && !vcs_[i]->push_complete()) return false;
  }
  if (client_ && !client_->done()) return false;
  return true;
}

void ElectionDriver::probe_phases() {
  if (observers_.empty()) return;
  sim::TimePoint at = host_->now();
  auto fire = [&](ElectionPhase phase) {
    for (ElectionObserver* o : observers_) o->on_phase_entered(phase, at);
  };
  if (!consensus_seen_) {
    bool all = true;
    for (std::size_t i = 0; i < vcs_.size(); ++i) {
      if (crashed(topo_.vc_ids[i])) continue;
      all = all && vcs_[i]->phase() != vc::Phase::kVoting;
    }
    if (all) {
      consensus_seen_ = true;
      fire(ElectionPhase::kConsensus);
    }
  }
  if (consensus_seen_ && !tally_seen_) {
    bool all = true;
    for (std::size_t i = 0; i < bbs_.size(); ++i) {
      if (crashed(topo_.bb_ids[i])) continue;
      all = all && bbs_[i]->codes_published();
    }
    if (all) {
      tally_seen_ = true;
      fire(ElectionPhase::kTally);
    }
  }
  if (tally_seen_ && !result_seen_) {
    bool all = true;
    for (std::size_t i = 0; i < bbs_.size(); ++i) {
      if (crashed(topo_.bb_ids[i])) continue;
      all = all && bbs_[i]->result_published();
    }
    if (all) {
      result_seen_ = true;
      fire(ElectionPhase::kResult);
    }
  }
}

ElectionReport ElectionDriver::run() {
  auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t alloc_base = net::Buffer::payload_allocations();
  std::uint64_t events_base = host_->events_dispatched();
  std::uint64_t delivered_base = sim_ ? sim_->delivered_messages() : 0;
  std::uint64_t dropped_base = sim_ ? sim_->dropped_messages() : 0;

  sim::RunOptions opts;
  opts.max_events = cfg_.max_events;
  opts.wall_timeout_us = cfg_.wall_timeout_us;
  opts.probe_interval = cfg_.probe_interval;
  opts.probe = [this] { probe_phases(); };

  for (ElectionObserver* o : observers_) {
    o->on_phase_entered(ElectionPhase::kVoting, host_->now());
  }
  bool done_in_budget;
  if (sim_) {
    // Natural quiescence keeps the simulator's established semantics (and
    // bit-identical timings): drain the queue, then check completion.
    done_in_budget = sim_->run_to_quiescence(nullptr, opts);
  } else {
    done_in_budget = host_->run_to_quiescence(
        [this] { return completion_reached(); }, opts);
  }
  // ThreadNet joins its workers here so the harvest below reads settled
  // node state; a no-op on the simulator.
  host_->stop();
  // Final probe over settled state: phase hooks the in-run probes raced
  // past (e.g. the completion wait returning the moment `done` held).
  probe_phases();

  report_ = harvest();
  report_.completed = report_.completed && done_in_budget;
  report_.events_processed = host_->events_dispatched() - events_base;
  if (sim_) {
    report_.messages_delivered = sim_->delivered_messages() - delivered_base;
    report_.messages_dropped = sim_->dropped_messages() - dropped_base;
  }
  report_.payload_allocations =
      net::Buffer::payload_allocations() - alloc_base;
  report_.peak_rss_kb = util::peak_rss_kb();
  report_.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  for (ElectionObserver* o : observers_) o->on_complete(report_);
  return report_;
}

ElectionReport ElectionDriver::harvest() const {
  ElectionReport r;
  r.phases.t_start = cfg_.params.t_start;
  r.phases.t_end = cfg_.params.t_end;

  r.vc_stats.reserve(vcs_.size());
  r.vc_shard_stats.reserve(vcs_.size());
  for (std::size_t i = 0; i < vcs_.size(); ++i) {
    vc::VcStats s = vcs_[i]->stats();
    r.vc_stats.push_back(s);
    std::vector<vc::VcShardStats> shards = vcs_[i]->shard_stats();
    // The mailbox high-water is runtime bookkeeping (per-shard queues only
    // exist on ThreadNet); merge it into the per-shard rows here.
    std::vector<std::size_t> depth =
        host_->shard_queue_high_water(topo_.vc_ids[i]);
    for (std::size_t sh = 0; sh < shards.size() && sh < depth.size(); ++sh) {
      shards[sh].queue_high_water = depth[sh];
    }
    r.vc_shard_stats.push_back(std::move(shards));
    r.vc_totals.votes_received += s.votes_received;
    r.vc_totals.receipts_issued += s.receipts_issued;
    r.vc_totals.rejected_votes += s.rejected_votes;
    r.vc_totals.voting_ended_at =
        std::max(r.vc_totals.voting_ended_at, s.voting_ended_at);
    r.vc_totals.consensus_done_at =
        std::max(r.vc_totals.consensus_done_at, s.consensus_done_at);
    r.vc_totals.push_done_at =
        std::max(r.vc_totals.push_done_at, s.push_done_at);
  }
  r.phases.voting_ended_at = r.vc_totals.voting_ended_at;
  r.phases.consensus_done_at = r.vc_totals.consensus_done_at;
  r.phases.push_done_at = r.vc_totals.push_done_at;

  // Fail closed: an election with no live BB never "completes".
  bool any_live_bb = false;
  r.completed = true;
  for (std::size_t i = 0; i < bbs_.size(); ++i) {
    if (crashed(topo_.bb_ids[i])) continue;
    any_live_bb = true;
    const bb::BbNode& bb = *bbs_[i];
    r.completed = r.completed && bb.result_published();
    if (r.tally.empty() && bb.result()) r.tally = bb.result()->tally;
    r.phases.tally_published_at =
        std::max(r.phases.tally_published_at, bb.codes_published_at());
    r.phases.result_published_at =
        std::max(r.phases.result_published_at, bb.result_published_at());
  }
  r.completed = r.completed && any_live_bb;
  for (std::size_t i = 0; i < vcs_.size(); ++i) {
    if (crashed(topo_.vc_ids[i])) continue;
    r.vote_set = vcs_[i]->final_vote_set();
    break;
  }

  r.expected_tally.assign(cfg_.params.m(), 0);
  if (client_) {
    r.voters_launched = client_->target_count();
    r.receipts_issued = client_->completed();
    r.expected_tally = client_->completed_by_option(cfg_.params.m());
    r.phases.last_receipt_at = std::max<sim::TimePoint>(
        r.phases.last_receipt_at, client_->last_receipt());
  } else {
    r.voters_launched = topo_.voter_ids.size();
    for (std::size_t i = 0; i < topo_.voter_ids.size(); ++i) {
      const auto& voter = dynamic_cast<const client::Voter&>(
          host_->process(topo_.voter_ids[i]));
      if (!voter.has_receipt()) continue;
      ++r.receipts_issued;
      ++r.expected_tally[topo_.voter_slots[i].option];
      r.receipts.push_back(voter.expected_receipt());
      r.phases.last_receipt_at =
          std::max(r.phases.last_receipt_at, voter.receipt_at());
    }
  }
  return r;
}

sim::Simulation& ElectionDriver::simulation() {
  if (!sim_) {
    throw ProtocolError("ElectionDriver: backend is not the simulator");
  }
  return *sim_;
}

vc::VcNode& ElectionDriver::vc_node(std::size_t i) { return *vcs_.at(i); }

bb::BbNode& ElectionDriver::bb_node(std::size_t i) { return *bbs_.at(i); }

trustee::TrusteeNode& ElectionDriver::trustee_node(std::size_t i) {
  return dynamic_cast<trustee::TrusteeNode&>(
      host_->process(topo_.trustee_ids.at(i)));
}

client::Voter& ElectionDriver::voter(std::size_t i) {
  return dynamic_cast<client::Voter&>(host_->process(topo_.voter_ids.at(i)));
}

ClosedLoopClient* ElectionDriver::load_client() { return client_; }

std::vector<const bb::BbNode*> ElectionDriver::bb_views() const {
  std::vector<const bb::BbNode*> views;
  for (std::size_t i = 0; i < bbs_.size(); ++i) {
    if (!crashed(topo_.bb_ids[i])) views.push_back(bbs_[i]);
  }
  return views;
}

std::vector<std::uint64_t> ElectionDriver::expected_tally() const {
  // After run() the answer is already in the retained report; only a
  // pre-run query pays for a fresh harvest.
  if (!report_.expected_tally.empty()) return report_.expected_tally;
  return harvest().expected_tally;
}

}  // namespace ddemos::core
