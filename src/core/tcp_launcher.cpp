#include "core/tcp_launcher.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "net/tcp_frame.hpp"
#include "util/error.hpp"
#include "util/proc_stats.hpp"

namespace ddemos::core {

using net::FrameHeader;
using net::FrameKind;

namespace {

// Control-plane opcodes (first payload byte of a kControl frame).
enum CtrlOp : std::uint8_t {
  kCtrlHello = 1,   // child -> launcher: u32 process
  kCtrlConfig = 2,  // launcher -> child: TcpClusterSpec, u32 process count
  kCtrlReady = 3,   // child -> launcher: u16 data port
  kCtrlPeers = 4,   // launcher -> child: per-process (host, port) table
  kCtrlGo = 5,      // launcher -> child: start the election clock
  kCtrlStatus = 6,  // child -> launcher: u8 all-hosted-nodes-done
  kCtrlStop = 7,    // launcher -> child: stop, report, exit
  kCtrlReport = 8,  // child -> launcher: TcpProcessReport
};

bool send_ctrl(int fd, CtrlOp op, BytesView body = {}) {
  Bytes payload;
  payload.reserve(1 + body.size());
  payload.push_back(op);
  append(payload, body);
  FrameHeader h;
  h.kind = FrameKind::kControl;
  return net::write_frame(fd, h, payload);
}

// Blocks until one control frame arrives; empty on EOF/garbage.
std::optional<std::pair<std::uint8_t, Bytes>> read_ctrl(int fd) {
  auto frame = net::read_frame(fd);
  if (!frame || frame->first.kind != FrameKind::kControl ||
      frame->second.empty()) {
    return std::nullopt;
  }
  std::uint8_t op = frame->second.front();
  Bytes body(frame->second.begin() + 1, frame->second.end());
  return std::make_pair(op, std::move(body));
}

bool wait_readable(int fd, sim::Duration timeout_us) {
  pollfd pfd{fd, POLLIN, 0};
  int ms = static_cast<int>(timeout_us / 1000);
  return ::poll(&pfd, 1, ms) > 0 && (pfd.revents & (POLLIN | POLLHUP));
}

void encode_vc_stats(Writer& w, const vc::VcStats& s) {
  w.u64(s.votes_received);
  w.u64(s.receipts_issued);
  w.u64(s.rejected_votes);
  w.u64(static_cast<std::uint64_t>(s.voting_ended_at));
  w.u64(static_cast<std::uint64_t>(s.consensus_done_at));
  w.u64(static_cast<std::uint64_t>(s.push_done_at));
}

vc::VcStats decode_vc_stats(Reader& r) {
  vc::VcStats s;
  s.votes_received = r.u64();
  s.receipts_issued = r.u64();
  s.rejected_votes = r.u64();
  s.voting_ended_at = static_cast<sim::TimePoint>(r.u64());
  s.consensus_done_at = static_cast<sim::TimePoint>(r.u64());
  s.push_done_at = static_cast<sim::TimePoint>(r.u64());
  return s;
}

void encode_shard_stats(Writer& w, const vc::VcShardStats& s) {
  w.u64(s.handled_messages);
  w.u64(s.votes_received);
  w.u64(s.receipts_issued);
  w.u64(s.rejected_votes);
  w.u64(s.endorsements_signed);
  w.u64(s.queue_high_water);
}

vc::VcShardStats decode_shard_stats(Reader& r) {
  vc::VcShardStats s;
  s.handled_messages = r.u64();
  s.votes_received = r.u64();
  s.receipts_issued = r.u64();
  s.rejected_votes = r.u64();
  s.endorsements_signed = r.u64();
  s.queue_high_water = r.u64();
  return s;
}

}  // namespace

void TcpClusterSpec::encode(Writer& w) const {
  params.encode(w);
  w.u64(seed);
  w.boolean(vc_only);
  w.boolean(collection_only);
  w.varint(consensus_rounds);
  w.varint(vc_shards);
  w.boolean(vc_options.model_signatures);
  w.u64(static_cast<std::uint64_t>(vc_options.sign_cost_us));
  w.u64(static_cast<std::uint64_t>(vc_options.verify_cost_us));
  w.u64(static_cast<std::uint64_t>(vc_options.base_handler_cost_us));
  w.varint(vc_options.announce_chunk);
  w.varint(vc_options.push_chunk);
  w.u64(static_cast<std::uint64_t>(vc_options.recover_retry_us));
  w.u64(static_cast<std::uint64_t>(vc_options.page_fault_cost_us));
  w.varint(vc_options.n_shards);
  w.u64(static_cast<std::uint64_t>(trustee_options.poll_interval_us));
  w.str(durability.wal_dir);
  w.u8(static_cast<std::uint8_t>(durability.fsync));
  w.varint(durability.fsync_interval);
}

TcpClusterSpec TcpClusterSpec::decode(Reader& r) {
  TcpClusterSpec s;
  s.params = ElectionParams::decode(r);
  s.seed = r.u64();
  s.vc_only = r.boolean();
  s.collection_only = r.boolean();
  s.consensus_rounds = static_cast<std::size_t>(r.varint());
  s.vc_shards = static_cast<std::size_t>(r.varint());
  s.vc_options.model_signatures = r.boolean();
  s.vc_options.sign_cost_us = static_cast<sim::Duration>(r.u64());
  s.vc_options.verify_cost_us = static_cast<sim::Duration>(r.u64());
  s.vc_options.base_handler_cost_us = static_cast<sim::Duration>(r.u64());
  s.vc_options.announce_chunk = static_cast<std::size_t>(r.varint());
  s.vc_options.push_chunk = static_cast<std::size_t>(r.varint());
  s.vc_options.recover_retry_us = static_cast<sim::Duration>(r.u64());
  s.vc_options.page_fault_cost_us = static_cast<sim::Duration>(r.u64());
  s.vc_options.n_shards = static_cast<std::size_t>(r.varint());
  s.trustee_options.poll_interval_us = static_cast<sim::Duration>(r.u64());
  s.durability.wal_dir = r.str();
  s.durability.fsync = static_cast<store::FsyncPolicy>(r.u8());
  s.durability.fsync_interval = static_cast<std::size_t>(r.varint());
  return s;
}

void TcpNodeReport::encode(Writer& w) const {
  w.u32(node_id);
  w.u8(kind);
  w.boolean(done);
  encode_vc_stats(w, vc_stats);
  w.vec(vc_shard_stats,
        [](Writer& w2, const vc::VcShardStats& s) { encode_shard_stats(w2, s); });
  w.vec(vote_set,
        [](Writer& w2, const VoteSetEntry& e) { e.encode(w2); });
  w.boolean(result_published);
  w.vec(tally, [](Writer& w2, std::uint64_t t) { w2.u64(t); });
  w.u64(static_cast<std::uint64_t>(codes_published_at));
  w.u64(static_cast<std::uint64_t>(result_published_at));
}

TcpNodeReport TcpNodeReport::decode(Reader& r) {
  TcpNodeReport n;
  n.node_id = r.u32();
  n.kind = r.u8();
  n.done = r.boolean();
  n.vc_stats = decode_vc_stats(r);
  n.vc_shard_stats = r.vec<vc::VcShardStats>(
      [](Reader& r2) { return decode_shard_stats(r2); });
  n.vote_set =
      r.vec<VoteSetEntry>([](Reader& r2) { return VoteSetEntry::decode(r2); });
  n.result_published = r.boolean();
  n.tally = r.vec<std::uint64_t>([](Reader& r2) { return r2.u64(); });
  n.codes_published_at = static_cast<sim::TimePoint>(r.u64());
  n.result_published_at = static_cast<sim::TimePoint>(r.u64());
  return n;
}

void TcpProcessReport::encode(Writer& w) const {
  w.u32(process);
  w.u64(events);
  w.u64(allocations);
  w.u64(rss_kb);
  w.u64(peak_rss_kb);
  w.u64(frames_sent);
  w.u64(frames_received);
  w.u64(reconnects);
  w.u64(frames_dropped);
  w.vec(nodes, [](Writer& w2, const TcpNodeReport& n) { n.encode(w2); });
}

TcpProcessReport TcpProcessReport::decode(Reader& r) {
  TcpProcessReport p;
  p.process = r.u32();
  p.events = r.u64();
  p.allocations = r.u64();
  p.rss_kb = r.u64();
  p.peak_rss_kb = r.u64();
  p.frames_sent = r.u64();
  p.frames_received = r.u64();
  p.reconnects = r.u64();
  p.frames_dropped = r.u64();
  p.nodes =
      r.vec<TcpNodeReport>([](Reader& r2) { return TcpNodeReport::decode(r2); });
  return p;
}

std::string TcpLauncher::default_node_binary() {
  if (const char* env = std::getenv("DDEMOS_NODE_BIN")) return env;
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "ddemos_node";
  buf[n] = '\0';
  std::string self(buf);
  std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "ddemos_node";
  return self.substr(0, slash) + "/ddemos_node";
}

TcpClusterSpec TcpLauncher::spec_from(const DriverConfig& cfg) {
  TcpClusterSpec spec;
  spec.params = cfg.params;
  spec.seed = cfg.seed;
  spec.vc_only = false;
  spec.collection_only = false;
  spec.vc_shards = cfg.vc_shards;
  spec.vc_options = cfg.vc_options;
  spec.trustee_options = cfg.trustee_options;
  spec.durability = cfg.durability;
  return spec;
}

TcpLauncher::TcpLauncher(TcpClusterSpec spec, Options opt)
    : spec_(std::move(spec)), opt_(std::move(opt)) {
  const std::size_t n_proto = spec_.protocol_processes();
  if (n_proto == 0) throw ProtocolError("TcpLauncher: empty cluster");
  net::TcpConfig ncfg;
  ncfg.self_process = 0;
  ncfg.election_id = spec_.params.election_id;
  ncfg.listen_host = opt_.host;
  ncfg.node_process.resize(n_proto);
  // Fixed placement convention: process p hosts protocol node p-1.
  for (std::size_t id = 0; id < n_proto; ++id) {
    ncfg.node_process[id] = static_cast<std::uint32_t>(id + 1);
  }
  ncfg.default_process = 0;  // voters/load clients live with the launcher
  net_ = std::make_unique<net::TcpNet>(std::move(ncfg));
}

TcpLauncher::~TcpLauncher() {
  try {
    stop_cluster();
  } catch (...) {
    for (auto& child : children_) {
      if (child->pid > 0) ::kill(child->pid, SIGKILL);
    }
  }
}

void TcpLauncher::launch() {
  if (launched_) return;
  const std::size_t n_proto = spec_.protocol_processes();
  const std::string binary =
      opt_.node_binary.empty() ? default_node_binary() : opt_.node_binary;
  control_listen_fd_ = net::tcp_listen(opt_.host, 0, &control_port_);

  auto fail = [&](const std::string& what) {
    for (auto& child : children_) {
      if (child->pid > 0) ::kill(child->pid, SIGKILL);
      if (child->control_fd >= 0) ::close(child->control_fd);
    }
    children_.clear();
    ::close(control_listen_fd_);
    control_listen_fd_ = -1;
    throw ProtocolError("TcpLauncher: " + what);
  };

  for (std::size_t p = 1; p <= n_proto; ++p) {
    std::string port_s = std::to_string(control_port_);
    std::string proc_s = std::to_string(p);
    pid_t pid = ::fork();
    if (pid < 0) fail("fork failed");
    if (pid == 0) {
      ::execl(binary.c_str(), binary.c_str(), "--serve", opt_.host.c_str(),
              port_s.c_str(), proc_s.c_str(), static_cast<char*>(nullptr));
      // exec failed (missing binary): nothing sane to do in the child.
      std::fprintf(stderr, "ddemos_node exec failed: %s\n", binary.c_str());
      ::_exit(127);
    }
    auto child = std::make_unique<Child>();
    child->pid = pid;
    children_.push_back(std::move(child));
  }

  // Accept every child's control connection; the first frame identifies
  // which process index dialed in (children race, order is arbitrary).
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(opt_.launch_timeout_us);
  auto remaining_us = [&]() -> sim::Duration {
    auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    return left > 0 ? left : 0;
  };
  for (std::size_t i = 0; i < n_proto; ++i) {
    if (!wait_readable(control_listen_fd_, remaining_us())) {
      fail("timed out waiting for node processes (binary: " + binary + ")");
    }
    int fd = ::accept(control_listen_fd_, nullptr, nullptr);
    if (fd < 0) fail("accept failed on the control socket");
    auto hello = read_ctrl(fd);
    if (!hello || hello->first != kCtrlHello) {
      ::close(fd);
      fail("bad control hello");
    }
    Reader r(hello->second);
    std::uint32_t proc = r.u32();
    if (proc < 1 || proc > n_proto || children_[proc - 1]->control_fd >= 0) {
      ::close(fd);
      fail("control hello from unexpected process " + std::to_string(proc));
    }
    children_[proc - 1]->control_fd = fd;
    children_[proc - 1]->alive.store(true, std::memory_order_release);
  }

  // Ship the cluster spec; every child deterministically recomputes its
  // own node's EA data from (params, seed) — no artifacts on the wire.
  {
    Writer w;
    spec_.encode(w);
    w.u32(static_cast<std::uint32_t>(n_proto + 1));
    for (auto& child : children_) {
      if (!send_ctrl(child->control_fd, kCtrlConfig, w.data())) {
        fail("failed to send config");
      }
    }
  }

  // Collect data-plane ports, then broadcast the full peer table.
  std::vector<net::TcpPeer> peers(n_proto + 1);
  peers[0] = net::TcpPeer{opt_.host, net_->listen_port()};
  for (std::size_t p = 1; p <= n_proto; ++p) {
    Child& child = *children_[p - 1];
    if (!wait_readable(child.control_fd, remaining_us())) {
      fail("timed out waiting for READY from process " + std::to_string(p));
    }
    auto ready = read_ctrl(child.control_fd);
    if (!ready || ready->first != kCtrlReady) {
      fail("bad READY from process " + std::to_string(p));
    }
    Reader r(ready->second);
    peers[p] = net::TcpPeer{opt_.host, r.u16()};
    // Remembered for respawns: a recovered process must rebind this exact
    // port, because peers never receive a second peer table.
    child.data_port = peers[p].port;
  }
  net_->set_peers(peers);
  {
    Writer w;
    w.vec(peers, [](Writer& w2, const net::TcpPeer& peer) {
      w2.str(peer.host);
      w2.u16(peer.port);
    });
    for (auto& child : children_) {
      if (!send_ctrl(child->control_fd, kCtrlPeers, w.data())) {
        fail("failed to send peer table");
      }
    }
  }

  // From here on a dedicated thread per child consumes STATUS/REPORT
  // frames; a read error or EOF marks the process dead (fault cells
  // SIGKILL children mid-election, which must not wedge completion).
  for (auto& child : children_) {
    Child* c = child.get();
    c->reader = std::thread([this, c] { control_reader(*c); });
  }
  launched_ = true;
}

void TcpLauncher::control_reader(Child& child) {
  while (auto msg = read_ctrl(child.control_fd)) {
    if (msg->first == kCtrlStatus && !msg->second.empty()) {
      child.done.store(msg->second.front() != 0, std::memory_order_release);
      net_->notify_external();
    } else if (msg->first == kCtrlReport) {
      try {
        Reader r(msg->second);
        child.report = TcpProcessReport::decode(r);
        child.reported.store(true, std::memory_order_release);
      } catch (const CodecError&) {
        break;
      }
    }
  }
  child.alive.store(false, std::memory_order_release);
  net_->notify_external();
}

void TcpLauncher::go() {
  if (!launched_) throw ProtocolError("TcpLauncher: go() before launch()");
  for (auto& child : children_) {
    if (child->alive.load(std::memory_order_acquire)) {
      send_ctrl(child->control_fd, kCtrlGo);
    }
  }
  net_->start();
  if (opt_.fault && opt_.fault_after_us > 0) {
    fault_thread_ = std::thread([this] {
      sim::Duration slept = 0;
      while (slept < opt_.fault_after_us &&
             !stopping_.load(std::memory_order_acquire)) {
        sim::Duration slice =
            std::min<sim::Duration>(opt_.fault_after_us - slept, 10'000);
        std::this_thread::sleep_for(std::chrono::microseconds(slice));
        slept += slice;
      }
      if (!stopping_.load(std::memory_order_acquire)) opt_.fault(*this);
    });
  }
}

bool TcpLauncher::process_alive(std::size_t process) const {
  if (process == 0) return true;
  if (process > children_.size()) return false;
  return children_[process - 1]->alive.load(std::memory_order_acquire);
}

bool TcpLauncher::remote_complete() const {
  for (auto& child : children_) {
    if (!child->alive.load(std::memory_order_acquire)) continue;
    if (!child->done.load(std::memory_order_acquire)) return false;
  }
  return true;
}

void TcpLauncher::kill_process(std::size_t process) {
  if (process == 0 || process > children_.size()) {
    throw ProtocolError("TcpLauncher: cannot kill process " +
                        std::to_string(process));
  }
  Child& child = *children_[process - 1];
  if (child.pid > 0) ::kill(child.pid, SIGKILL);
}

void TcpLauncher::respawn_process(std::size_t process) {
  if (!launched_) {
    throw ProtocolError("TcpLauncher: respawn_process() before launch()");
  }
  if (process == 0 || process > children_.size()) {
    throw ProtocolError("TcpLauncher: cannot respawn process " +
                        std::to_string(process));
  }
  Child& child = *children_[process - 1];
  if (child.alive.load(std::memory_order_acquire)) {
    throw ProtocolError("TcpLauncher: process " + std::to_string(process) +
                        " is still alive");
  }
  // Retire the dead incarnation: its control reader exits on EOF (alive is
  // already false), so joining here cannot block on a live connection.
  if (child.reader.joinable()) child.reader.join();
  if (child.control_fd >= 0) {
    ::close(child.control_fd);
    child.control_fd = -1;
  }
  if (child.pid > 0) {
    int status = 0;
    ::waitpid(child.pid, &status, 0);
    child.pid = -1;
  }
  child.incarnation += 1;
  child.done.store(false, std::memory_order_release);
  child.reported.store(false, std::memory_order_release);

  const std::string binary =
      opt_.node_binary.empty() ? default_node_binary() : opt_.node_binary;
  std::string port_s = std::to_string(control_port_);
  std::string proc_s = std::to_string(process);
  std::string data_s = std::to_string(child.data_port);
  std::string inc_s = std::to_string(child.incarnation);
  pid_t pid = ::fork();
  if (pid < 0) throw ProtocolError("TcpLauncher: respawn fork failed");
  if (pid == 0) {
    ::execl(binary.c_str(), binary.c_str(), "--serve", opt_.host.c_str(),
            port_s.c_str(), proc_s.c_str(), data_s.c_str(), inc_s.c_str(),
            static_cast<char*>(nullptr));
    std::fprintf(stderr, "ddemos_node exec failed: %s\n", binary.c_str());
    ::_exit(127);
  }
  child.pid = pid;

  auto fail = [&](const std::string& what) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    child.pid = -1;
    throw ProtocolError("TcpLauncher: respawn: " + what);
  };
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(opt_.launch_timeout_us);
  auto remaining_us = [&]() -> sim::Duration {
    auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    return left > 0 ? left : 0;
  };
  // Same handshake as launch(), for one process. Only the respawned child
  // dials the control port mid-election, so the next accept is ours.
  if (!wait_readable(control_listen_fd_, remaining_us())) {
    fail("timed out waiting for HELLO");
  }
  int fd = ::accept(control_listen_fd_, nullptr, nullptr);
  if (fd < 0) fail("accept failed on the control socket");
  auto hello = read_ctrl(fd);
  std::uint32_t proc = 0;
  if (hello && hello->first == kCtrlHello) {
    Reader r(hello->second);
    proc = r.u32();
  }
  if (proc != process) {
    ::close(fd);
    fail("bad HELLO (process " + std::to_string(proc) + ")");
  }
  child.control_fd = fd;
  {
    Writer w;
    spec_.encode(w);
    w.u32(static_cast<std::uint32_t>(spec_.protocol_processes() + 1));
    if (!send_ctrl(fd, kCtrlConfig, w.data())) fail("failed to send config");
  }
  // The child replays its WAL while rebuilding, so READY can take a while;
  // give it the whole launch budget.
  if (!wait_readable(fd, remaining_us())) fail("timed out waiting for READY");
  auto ready = read_ctrl(fd);
  if (!ready || ready->first != kCtrlReady) fail("bad READY");
  {
    Reader r(ready->second);
    std::uint16_t got = r.u16();
    if (got != child.data_port) {
      fail("respawned process bound port " + std::to_string(got) +
           ", expected " + std::to_string(child.data_port));
    }
  }
  {
    // Rebuild the peer table from the remembered data ports (identical to
    // the one every surviving process already holds).
    std::vector<net::TcpPeer> peers(children_.size() + 1);
    peers[0] = net::TcpPeer{opt_.host, net_->listen_port()};
    for (std::size_t i = 0; i < children_.size(); ++i) {
      peers[i + 1] = net::TcpPeer{opt_.host, children_[i]->data_port};
    }
    Writer w;
    w.vec(peers, [](Writer& w2, const net::TcpPeer& peer) {
      w2.str(peer.host);
      w2.u16(peer.port);
    });
    if (!send_ctrl(fd, kCtrlPeers, w.data())) fail("failed to send peer table");
  }
  {
    // GO carries the launcher's election clock: the child resumes the
    // original time base, so absolute deadlines (t_end) stay meaningful.
    Writer w;
    w.u64(static_cast<std::uint64_t>(net_->now()));
    if (!send_ctrl(fd, kCtrlGo, w.data())) fail("failed to send GO");
  }
  child.alive.store(true, std::memory_order_release);
  Child* c = &child;
  c->reader = std::thread([this, c] { control_reader(*c); });
}

void TcpLauncher::reap_children() {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(opt_.launch_timeout_us);
  for (auto& child : children_) {
    if (child->pid <= 0) continue;
    for (;;) {
      int status = 0;
      pid_t got = ::waitpid(child->pid, &status, WNOHANG);
      if (got == child->pid || (got < 0 && errno == ECHILD)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(child->pid, SIGKILL);
        ::waitpid(child->pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    child->pid = -1;
  }
}

std::vector<TcpProcessReport> TcpLauncher::stop_cluster() {
  std::vector<TcpProcessReport> reports;
  if (stopped_) {
    for (auto& child : children_) {
      if (child->reported.load(std::memory_order_acquire)) {
        reports.push_back(child->report);
      }
    }
    return reports;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  if (fault_thread_.joinable()) fault_thread_.join();
  for (auto& child : children_) {
    if (child->alive.load(std::memory_order_acquire)) {
      send_ctrl(child->control_fd, kCtrlStop);
    }
  }
  // Children stop their nets, ship a REPORT and exit; the control readers
  // capture the report and observe EOF. Bounded wait, then force-reap.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(opt_.launch_timeout_us);
  for (;;) {
    bool pending = false;
    for (auto& child : children_) {
      if (child->alive.load(std::memory_order_acquire) &&
          !child->reported.load(std::memory_order_acquire)) {
        pending = true;
      }
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& child : children_) {
    if (child->pid > 0 &&
        child->alive.load(std::memory_order_acquire) &&
        !child->reported.load(std::memory_order_acquire)) {
      ::kill(child->pid, SIGKILL);  // wedged child: EOF unblocks its reader
    }
  }
  reap_children();
  for (auto& child : children_) {
    if (child->reader.joinable()) child->reader.join();
    if (child->control_fd >= 0) {
      ::close(child->control_fd);
      child->control_fd = -1;
    }
    if (child->reported.load(std::memory_order_acquire)) {
      reports.push_back(child->report);
    }
  }
  if (control_listen_fd_ >= 0) {
    ::close(control_listen_fd_);
    control_listen_fd_ = -1;
  }
  net_->stop();
  return reports;
}

ElectionReport TcpLauncher::run_election(const DriverConfig& cfg) {
  auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t alloc_base = net::Buffer::payload_allocations();

  launch();
  std::shared_ptr<const ea::SetupArtifacts> artifacts = cfg.artifacts;
  if (!artifacts) {
    artifacts = std::make_shared<const ea::SetupArtifacts>(ea::ea_setup(
        {spec_.params, spec_.seed, spec_.vc_only, spec_.consensus_rounds}));
  }
  // The identical build code path as the other backends: the protocol-node
  // prefix turns into remote placeholders here (each node process keeps
  // its own), the client half is hosted locally.
  ElectionTopology topo = build_election(*net_, *artifacts, cfg);
  ClosedLoopClient* client = nullptr;
  if (topo.load_client_id != sim::kNoNode) {
    client =
        &dynamic_cast<ClosedLoopClient&>(net_->process(topo.load_client_id));
  }
  go();

  sim::RunOptions opts;
  opts.wall_timeout_us = cfg.wall_timeout_us;
  bool done_in_budget = net_->run_to_quiescence(
      [&] { return remote_complete() && (!client || client->done()); }, opts);
  std::vector<TcpProcessReport> reports = stop_cluster();

  // --- merge the per-process harvests into one ElectionReport ------------
  const ElectionParams& p = spec_.params;
  ElectionReport r;
  r.phases.t_start = p.t_start;
  r.phases.t_end = p.t_end;
  std::size_t resolved_shards =
      spec_.vc_shards > 1 ? spec_.vc_shards
                          : std::max<std::size_t>(spec_.vc_options.n_shards, 1);
  r.vc_stats.assign(p.n_vc, vc::VcStats{});
  r.vc_shard_stats.assign(
      p.n_vc, std::vector<vc::VcShardStats>(resolved_shards));

  bool any_live_bb = false;
  bool all_bbs_published = true;
  // One row per OS process, launcher first, then every node process in
  // index order. A process that never reported (killed by a fault cell)
  // keeps a zeroed row — structural completeness beats silent omission.
  r.process_accounting.assign(spec_.protocol_processes() + 1,
                              NodeAccounting{});
  NodeAccounting& launcher_row = r.process_accounting[0];
  launcher_row.name = "launcher";
  launcher_row.events = net_->events_dispatched();
  launcher_row.allocations = net::Buffer::payload_allocations() - alloc_base;
  launcher_row.rss_kb = util::current_rss_kb();
  launcher_row.peak_rss_kb = util::peak_rss_kb();
  launcher_row.frames_sent = net_->frames_sent();
  launcher_row.frames_received = net_->frames_received();
  launcher_row.reconnects = net_->reconnects();
  launcher_row.frames_dropped = net_->frames_dropped();
  for (std::size_t proc = 1; proc <= spec_.protocol_processes(); ++proc) {
    r.process_accounting[proc].name =
        net_->node_name(static_cast<sim::NodeId>(proc - 1));
  }

  for (const TcpProcessReport& rep : reports) {
    if (rep.process >= 1 && rep.process < r.process_accounting.size()) {
      NodeAccounting& row = r.process_accounting[rep.process];
      row.events = rep.events;
      row.allocations = rep.allocations;
      row.rss_kb = rep.rss_kb;
      row.peak_rss_kb = rep.peak_rss_kb;
      row.frames_sent = rep.frames_sent;
      row.frames_received = rep.frames_received;
      row.reconnects = rep.reconnects;
      row.frames_dropped = rep.frames_dropped;
    }
    r.events_processed += rep.events;

    for (const TcpNodeReport& node : rep.nodes) {
      if (node.kind == TcpNodeReport::kVc) {
        std::size_t i = node.node_id;
        if (i >= p.n_vc) continue;
        r.vc_stats[i] = node.vc_stats;
        if (!node.vc_shard_stats.empty()) {
          r.vc_shard_stats[i] = node.vc_shard_stats;
        }
        if (r.vote_set.empty() && !node.vote_set.empty()) {
          r.vote_set = node.vote_set;
        }
        r.vc_totals.votes_received += node.vc_stats.votes_received;
        r.vc_totals.receipts_issued += node.vc_stats.receipts_issued;
        r.vc_totals.rejected_votes += node.vc_stats.rejected_votes;
        r.vc_totals.voting_ended_at = std::max(
            r.vc_totals.voting_ended_at, node.vc_stats.voting_ended_at);
        r.vc_totals.consensus_done_at = std::max(
            r.vc_totals.consensus_done_at, node.vc_stats.consensus_done_at);
        r.vc_totals.push_done_at =
            std::max(r.vc_totals.push_done_at, node.vc_stats.push_done_at);
      } else if (node.kind == TcpNodeReport::kBb) {
        any_live_bb = true;
        all_bbs_published = all_bbs_published && node.result_published;
        if (r.tally.empty() && node.result_published) r.tally = node.tally;
        r.phases.tally_published_at =
            std::max(r.phases.tally_published_at, node.codes_published_at);
        r.phases.result_published_at =
            std::max(r.phases.result_published_at, node.result_published_at);
      }
    }
  }
  // Note: children time-stamp against their own epoch (microseconds since
  // their net start); GO lands within control-RTT of the launcher's epoch
  // on loopback, so the merged phase timeline is aligned to ~ms.
  r.phases.voting_ended_at = r.vc_totals.voting_ended_at;
  r.phases.consensus_done_at = r.vc_totals.consensus_done_at;
  r.phases.push_done_at = r.vc_totals.push_done_at;
  r.completed = done_in_budget && any_live_bb && all_bbs_published;

  r.expected_tally.assign(p.m(), 0);
  if (client) {
    r.voters_launched = client->target_count();
    r.receipts_issued = client->completed();
    r.expected_tally = client->completed_by_option(p.m());
    r.phases.last_receipt_at =
        std::max<sim::TimePoint>(r.phases.last_receipt_at,
                                 client->last_receipt());
  } else {
    r.voters_launched = topo.voter_ids.size();
    for (std::size_t i = 0; i < topo.voter_ids.size(); ++i) {
      const auto& voter = dynamic_cast<const client::Voter&>(
          net_->process(topo.voter_ids[i]));
      if (!voter.has_receipt()) continue;
      ++r.receipts_issued;
      ++r.expected_tally[topo.voter_slots[i].option];
      r.receipts.push_back(voter.expected_receipt());
      r.phases.last_receipt_at =
          std::max(r.phases.last_receipt_at, voter.receipt_at());
    }
  }
  r.events_processed += net_->events_dispatched();
  r.payload_allocations = net::Buffer::payload_allocations() - alloc_base;
  r.peak_rss_kb = util::peak_rss_kb();
  r.wall_seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return r;
}

// ---------------------------------------------------------------------
// Node-process side.

int serve_tcp_node(const std::string& host, std::uint16_t port,
                   std::uint32_t process, std::uint16_t data_port,
                   std::uint64_t incarnation) {
#ifdef __linux__
  // Die with the launcher: an orphaned node process must never outlive the
  // test/bench that spawned it. Linux arms the death signal against the
  // *thread* that forked us, so only the initial spawn (forked from the
  // launcher's long-lived calling thread) can use it; a respawn is forked
  // from the transient fault-hook thread, whose exit would instantly kill
  // the child. Respawns fall back to the control-socket orphan guard: the
  // status loop polls the connection every ~20ms and exits on EOF.
  if (incarnation == 1) {
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) return 3;  // launcher already gone
  }
#endif
  int ctrl = -1;
  for (int attempt = 0; attempt < 50 && ctrl < 0; ++attempt) {
    ctrl = net::tcp_dial(host, port);
    if (ctrl < 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (ctrl < 0) return 2;
  {
    Writer w;
    w.u32(process);
    if (!send_ctrl(ctrl, kCtrlHello, w.data())) return 2;
  }
  auto config = read_ctrl(ctrl);
  if (!config || config->first != kCtrlConfig) return 2;
  TcpClusterSpec spec;
  try {
    Reader r(config->second);
    spec = TcpClusterSpec::decode(r);
    (void)r.u32();  // total process count (implied by the spec today)
  } catch (const CodecError&) {
    return 2;
  }

  const std::size_t n_proto = spec.protocol_processes();
  if (process < 1 || process > n_proto) return 2;
  net::TcpConfig ncfg;
  ncfg.self_process = process;
  ncfg.election_id = spec.params.election_id;
  ncfg.listen_host = host;
  ncfg.node_process.resize(n_proto);
  for (std::size_t id = 0; id < n_proto; ++id) {
    ncfg.node_process[id] = static_cast<std::uint32_t>(id + 1);
  }
  ncfg.default_process = 0;
  // Respawn: rebind the predecessor's data port (peers keep the one peer
  // table they ever received) and announce the bumped incarnation so
  // receivers reset their per-process dedup floor.
  ncfg.listen_port = data_port;
  ncfg.incarnation = incarnation;
  net::TcpNet node_net(std::move(ncfg));

  // Rebuild this process's node from the seed. Typed handles feed the
  // status loop and the final report.
  struct VcHandle {
    sim::NodeId id;
    vc::VcNode* node;
  };
  struct BbHandle {
    sim::NodeId id;
    bb::BbNode* node;
  };
  std::vector<VcHandle> vcs;
  std::vector<BbHandle> bbs;
  if (spec.collection_only) {
    // Streaming EA, keeping only this VC's per-ballot slice: a bench
    // cluster of P processes holds 1/P of the ballot universe each.
    const std::size_t my_vc = process - 1;
    std::vector<VcBallotInit> mine;
    ea::SetupArtifacts arts = ea::ea_setup_streaming(
        {spec.params, spec.seed, /*vc_only=*/true, spec.consensus_rounds},
        [&](const Ballot&, std::span<VcBallotInit> per_vc) {
          mine.push_back(std::move(per_vc[my_vc]));
        });
    auto source =
        std::make_shared<store::MemoryBallotSource>(std::move(mine));
    vc::VcNode::Options vc_options = spec.vc_options;
    vc_options.n_shards =
        spec.vc_shards > 1 ? spec.vc_shards
                           : std::max<std::size_t>(vc_options.n_shards, 1);
    std::vector<sim::NodeId> vc_ids(spec.params.n_vc);
    for (std::size_t i = 0; i < spec.params.n_vc; ++i) {
      vc_ids[i] = static_cast<sim::NodeId>(i);
    }
    for (std::size_t i = 0; i < spec.params.n_vc; ++i) {
      if (i == my_vc) {
        sim::NodeId id = node_net.add_node(
            std::make_unique<vc::VcNode>(arts.vc_inits[i], source, vc_ids,
                                         std::vector<sim::NodeId>{},
                                         vc_options),
            "vc" + std::to_string(i));
        auto& node = dynamic_cast<vc::VcNode&>(node_net.process(id));
        if (spec.durability.enabled()) {
          node.attach_wal(std::make_unique<store::Wal>(
              spec.durability.wal_dir + "/vc" + std::to_string(i) + ".wal",
              spec.durability.wal_options()));
        }
        vcs.push_back(VcHandle{id, &node});
      } else {
        node_net.add_remote("vc" + std::to_string(i));
      }
    }
  } else {
    ea::SetupArtifacts arts = ea::ea_setup(
        {spec.params, spec.seed, spec.vc_only, spec.consensus_rounds});
    DriverConfig dcfg;
    dcfg.params = spec.params;
    dcfg.seed = spec.seed;
    dcfg.vc_options = spec.vc_options;
    dcfg.vc_shards = spec.vc_shards;
    dcfg.trustee_options = spec.trustee_options;
    // build_protocol_nodes opens (and replays) <wal_dir>/<name>.wal for
    // every node hosted in this process.
    dcfg.durability = spec.durability;
    ElectionTopology topo = build_protocol_nodes(node_net, arts, dcfg);
    for (sim::NodeId id : topo.vc_ids) {
      if (node_net.is_local(id)) {
        vcs.push_back(
            VcHandle{id, &dynamic_cast<vc::VcNode&>(node_net.process(id))});
      }
    }
    for (sim::NodeId id : topo.bb_ids) {
      if (node_net.is_local(id)) {
        bbs.push_back(
            BbHandle{id, &dynamic_cast<bb::BbNode&>(node_net.process(id))});
      }
    }
  }

  {
    Writer w;
    w.u16(node_net.listen_port());
    if (!send_ctrl(ctrl, kCtrlReady, w.data())) return 2;
  }
  auto peers_msg = read_ctrl(ctrl);
  if (!peers_msg || peers_msg->first != kCtrlPeers) return 2;
  try {
    Reader r(peers_msg->second);
    std::vector<net::TcpPeer> peers = r.vec<net::TcpPeer>([](Reader& r2) {
      net::TcpPeer peer;
      peer.host = r2.str();
      peer.port = r2.u16();
      return peer;
    });
    node_net.set_peers(std::move(peers));
  } catch (const CodecError&) {
    return 2;
  }
  auto go_msg = read_ctrl(ctrl);
  if (!go_msg || go_msg->first != kCtrlGo) return 2;
  if (!go_msg->second.empty()) {
    // Respawn GO carries the launcher's current election clock; resuming
    // that time base keeps absolute deadlines (t_end) meaningful here.
    try {
      Reader r(go_msg->second);
      node_net.set_clock_offset(static_cast<sim::Duration>(r.u64()));
    } catch (const CodecError&) {
      return 2;
    }
  }

  std::uint64_t alloc_base = net::Buffer::payload_allocations();
  node_net.start();

  // Status loop: report done-ness every ~20ms, stop on C_STOP (or on
  // control EOF: the launcher died, so quit rather than linger).
  bool launcher_alive = true;
  for (;;) {
    if (wait_readable(ctrl, 20'000)) {
      auto msg = read_ctrl(ctrl);
      if (!msg) {
        launcher_alive = false;
        break;
      }
      if (msg->first == kCtrlStop) break;
      continue;
    }
    bool done = true;
    for (const VcHandle& vc : vcs) done = done && vc.node->push_complete();
    for (const BbHandle& bb : bbs) done = done && bb.node->result_published();
    Writer w;
    w.u8(done ? 1 : 0);
    if (!send_ctrl(ctrl, kCtrlStatus, w.data())) {
      launcher_alive = false;
      break;
    }
  }
  node_net.stop();
  if (!launcher_alive) {
    ::close(ctrl);
    return 1;
  }

  TcpProcessReport report;
  report.process = process;
  report.events = node_net.events_dispatched();
  report.allocations = net::Buffer::payload_allocations() - alloc_base;
  report.rss_kb = util::current_rss_kb();
  report.peak_rss_kb = util::peak_rss_kb();
  report.frames_sent = node_net.frames_sent();
  report.frames_received = node_net.frames_received();
  report.reconnects = node_net.reconnects();
  report.frames_dropped = node_net.frames_dropped();
  for (const VcHandle& vc : vcs) {
    TcpNodeReport n;
    n.node_id = vc.id;
    n.kind = TcpNodeReport::kVc;
    n.done = vc.node->push_complete();
    n.vc_stats = vc.node->stats();
    n.vc_shard_stats = vc.node->shard_stats();
    std::vector<std::size_t> depth = node_net.shard_queue_high_water(vc.id);
    for (std::size_t s = 0; s < n.vc_shard_stats.size() && s < depth.size();
         ++s) {
      n.vc_shard_stats[s].queue_high_water = depth[s];
    }
    n.vote_set = vc.node->final_vote_set();
    report.nodes.push_back(std::move(n));
  }
  for (const BbHandle& bb : bbs) {
    TcpNodeReport n;
    n.node_id = bb.id;
    n.kind = TcpNodeReport::kBb;
    n.done = bb.node->result_published();
    n.result_published = bb.node->result_published();
    if (bb.node->result()) n.tally = bb.node->result()->tally;
    n.codes_published_at = bb.node->codes_published_at();
    n.result_published_at = bb.node->result_published_at();
    report.nodes.push_back(std::move(n));
  }
  {
    Writer w;
    report.encode(w);
    send_ctrl(ctrl, kCtrlReport, w.data());
  }
  ::close(ctrl);
  return 0;
}

}  // namespace ddemos::core
