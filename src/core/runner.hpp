// End-to-end election orchestration over the deterministic simulator: EA
// setup, VC / BB / trustee / voter processes, fault injection, and
// phase-timing capture. This is the top of the public API — examples,
// integration tests and the figure benchmarks all drive elections through
// ElectionRunner.
#pragma once

#include <functional>
#include <memory>

#include "bb/bb_node.hpp"
#include "client/auditor.hpp"
#include "client/voter.hpp"
#include "ea/ea.hpp"
#include "sim/sim.hpp"
#include "store/ballot_store.hpp"
#include "trustee/trustee_node.hpp"
#include "vc/vc_node.hpp"

namespace ddemos::core {

inline constexpr std::size_t kAbstain = static_cast<std::size_t>(-1);

struct RunnerConfig {
  ElectionParams params;
  std::uint64_t seed = 1;
  sim::LinkModel link = sim::LinkModel::lan();
  vc::VcNode::Options vc_options;
  client::Voter::Config voter_template;  // patience etc. (ballot filled in)
  // Option index each voter votes for (kAbstain = does not vote). Missing
  // entries default to round-robin over the options.
  std::vector<std::size_t> votes;
  // Voting times; defaults to an even spread across the election window.
  std::function<sim::TimePoint(std::size_t voter)> vote_time;
  // Indices of VC nodes to crash before start (fault injection).
  std::vector<std::size_t> crashed_vcs;
  std::vector<std::size_t> crashed_bbs;
  std::vector<std::size_t> crashed_trustees;
  // Custom ballot source per VC node (e.g. DiskBallotSource); defaults to
  // MemoryBallotSource over the EA's data.
  std::function<std::shared_ptr<store::BallotDataSource>(
      const VcInit&)>
      store_factory;
  // Invoked on the EA's output before any node is constructed. Used by
  // verifiability tests and examples to play a malicious EA (modification /
  // clash attacks) against the auditors.
  std::function<void(ea::SetupArtifacts&)> tamper_setup;
  // Trustee behaviour (poll interval etc.) shared by both runtimes.
  trustee::TrusteeNode::Options trustee_options;
};

// Node ids of an election instantiated on some RuntimeHost.
struct ElectionTopology {
  std::vector<sim::NodeId> vc_ids, bb_ids, trustee_ids, voter_ids;
  // Option index per configured voter slot (kAbstain for non-voters);
  // voter_ids only contains the non-abstaining voters, in slot order.
  std::vector<std::size_t> effective_votes;
};

// Instantiates every protocol node of the election described by `cfg` on
// `host` — the deterministic simulator or the multi-threaded transport.
// This is the single code path both ElectionRunner and the runtime-parity
// tests use; runtime-specific setup (link models, crash injection) happens
// on the concrete runtime before/after this call.
ElectionTopology build_election(sim::RuntimeHost& host,
                                const ea::SetupArtifacts& artifacts,
                                const RunnerConfig& cfg);

class ElectionRunner {
 public:
  explicit ElectionRunner(RunnerConfig config);

  // Runs the complete election to quiescence: voting, vote-set consensus,
  // BB publication, trustee tally.
  void run_to_completion();

  sim::Simulation& simulation() { return sim_; }
  const ea::SetupArtifacts& artifacts() const { return artifacts_; }

  vc::VcNode& vc_node(std::size_t i);
  bb::BbNode& bb_node(std::size_t i);
  trustee::TrusteeNode& trustee_node(std::size_t i);
  client::Voter& voter(std::size_t i);
  std::size_t voter_count() const { return topo_.voter_ids.size(); }
  const ElectionTopology& topology() const { return topo_; }

  std::vector<const bb::BbNode*> bb_views() const;
  client::MajorityReader reader() const {
    return client::MajorityReader(bb_views(), cfg_.params.f_bb);
  }

  // The expected tally given the configured votes (ground truth).
  std::vector<std::uint64_t> expected_tally() const;

 private:
  RunnerConfig cfg_;
  ea::SetupArtifacts artifacts_;
  sim::Simulation sim_;
  ElectionTopology topo_;
};

}  // namespace ddemos::core
