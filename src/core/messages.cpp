#include "core/messages.hpp"

#include <set>

#include "crypto/schnorr.hpp"

namespace ddemos::core {

namespace {
Writer with_type(MsgType t) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(t));
  return w;
}
}  // namespace

MsgType peek_type(BytesView msg) {
  if (msg.empty()) throw CodecError("empty message");
  return static_cast<MsgType>(msg[0]);
}

Bytes VoteMsg::encode() const {
  Writer w = with_type(MsgType::kVote);
  w.u64(serial);
  w.bytes(vote_code);
  return w.take();
}

VoteMsg VoteMsg::decode(Reader& r) {
  VoteMsg m;
  m.serial = r.u64();
  m.vote_code = r.bytes();
  return m;
}

Bytes VoteReplyMsg::encode() const {
  Writer w = with_type(MsgType::kVoteReply);
  w.u64(serial);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(receipt);
  return w.take();
}

VoteReplyMsg VoteReplyMsg::decode(Reader& r) {
  VoteReplyMsg m;
  m.serial = r.u64();
  m.status = static_cast<VoteReplyStatus>(r.u8());
  m.receipt = r.u64();
  return m;
}

Bytes endorsement_digest(BytesView election_id, Serial serial,
                         BytesView vote_code) {
  Writer w;
  w.str("ddemos/endorse");
  w.bytes(election_id);
  w.u64(serial);
  w.bytes(vote_code);
  return w.take();
}

Bytes EndorseMsg::encode() const {
  Writer w = with_type(MsgType::kEndorse);
  w.u64(serial);
  w.bytes(vote_code);
  return w.take();
}

EndorseMsg EndorseMsg::decode(Reader& r) {
  EndorseMsg m;
  m.serial = r.u64();
  m.vote_code = r.bytes();
  return m;
}

Bytes EndorsementMsg::encode() const {
  Writer w = with_type(MsgType::kEndorsement);
  w.u64(serial);
  w.bytes(vote_code);
  w.u32(node_index);
  w.bytes(signature);
  return w.take();
}

EndorsementMsg EndorsementMsg::decode(Reader& r) {
  EndorsementMsg m;
  m.serial = r.u64();
  m.vote_code = r.bytes();
  m.node_index = r.u32();
  m.signature = r.bytes();
  return m;
}

void Ucert::encode(Writer& w) const {
  w.bytes(vote_code);
  w.vec(signatures, [](Writer& ww, const auto& sig) {
    ww.u32(sig.first);
    ww.bytes(sig.second);
  });
}

Ucert Ucert::decode(Reader& r) {
  Ucert u;
  u.vote_code = r.bytes();
  u.signatures = r.vec<std::pair<std::uint32_t, Bytes>>(
      [](Reader& rr) {
        std::uint32_t idx = rr.u32();
        Bytes sig = rr.bytes();
        return std::pair{idx, std::move(sig)};
      },
      1024);
  return u;
}

bool Ucert::valid(BytesView election_id, Serial serial,
                  const std::vector<Bytes>& vc_public_keys,
                  std::size_t threshold) const {
  Bytes digest = endorsement_digest(election_id, serial, vote_code);
  std::set<std::uint32_t> seen;
  std::size_t good = 0;
  for (const auto& [idx, sig] : signatures) {
    if (idx >= vc_public_keys.size() || seen.count(idx)) continue;
    if (!crypto::schnorr_verify(vc_public_keys[idx], digest, sig)) continue;
    seen.insert(idx);
    if (++good >= threshold) return true;
  }
  return false;
}

Bytes VotePMsg::encode() const {
  Writer w = with_type(MsgType::kVoteP);
  w.u64(serial);
  w.bytes(vote_code);
  w.u8(part);
  w.u32(line);
  encode_share(w, receipt_share);
  encode_hash_path(w, share_path);
  ucert.encode(w);
  return w.take();
}

VotePMsg VotePMsg::decode(Reader& r) {
  VotePMsg m;
  m.serial = r.u64();
  m.vote_code = r.bytes();
  m.part = r.u8();
  m.line = r.u32();
  m.receipt_share = decode_share(r);
  m.share_path = decode_hash_path(r);
  m.ucert = Ucert::decode(r);
  return m;
}

void AnnounceEntry::encode(Writer& w) const {
  w.varint(instance);
  w.bytes(vote_code);
  ucert.encode(w);
}

AnnounceEntry AnnounceEntry::decode(Reader& r) {
  AnnounceEntry e;
  e.instance = r.varint();
  e.vote_code = r.bytes();
  e.ucert = Ucert::decode(r);
  return e;
}

Bytes AnnounceMsg::encode() const {
  Writer w = with_type(MsgType::kAnnounce);
  w.boolean(last_chunk);
  w.vec(entries, [](Writer& ww, const AnnounceEntry& e) { e.encode(ww); });
  return w.take();
}

AnnounceMsg AnnounceMsg::decode(Reader& r) {
  AnnounceMsg m;
  m.last_chunk = r.boolean();
  m.entries = r.vec<AnnounceEntry>(
      [](Reader& rr) { return AnnounceEntry::decode(rr); });
  return m;
}

Bytes RecoverRequestMsg::encode() const {
  Writer w = with_type(MsgType::kRecoverRequest);
  instances.encode(w);
  return w.take();
}

RecoverRequestMsg RecoverRequestMsg::decode(Reader& r) {
  RecoverRequestMsg m;
  m.instances = Bitmap::decode(r);
  return m;
}

Bytes RecoverResponseMsg::encode() const {
  Writer w = with_type(MsgType::kRecoverResponse);
  w.vec(entries, [](Writer& ww, const AnnounceEntry& e) { e.encode(ww); });
  return w.take();
}

RecoverResponseMsg RecoverResponseMsg::decode(Reader& r) {
  RecoverResponseMsg m;
  m.entries = r.vec<AnnounceEntry>(
      [](Reader& rr) { return AnnounceEntry::decode(rr); });
  return m;
}

Bytes wrap_consensus(BytesView inner) {
  Writer w = with_type(MsgType::kConsensus);
  w.reserve(inner.size() + 10);
  w.bytes(inner);
  return w.take();
}

BytesView unwrap_consensus(Reader& r) { return r.bytes_view(); }

Bytes VoteSetChunkMsg::encode() const {
  Writer w = with_type(MsgType::kVoteSetChunk);
  w.vec(entries, [](Writer& ww, const VoteSetEntry& e) { e.encode(ww); });
  return w.take();
}

VoteSetChunkMsg VoteSetChunkMsg::decode(Reader& r) {
  VoteSetChunkMsg m;
  m.entries =
      r.vec<VoteSetEntry>([](Reader& rr) { return VoteSetEntry::decode(rr); });
  return m;
}

Bytes VoteSetDoneMsg::encode() const {
  Writer w = with_type(MsgType::kVoteSetDone);
  w.u64(total_entries);
  encode_hash(w, set_hash);
  return w.take();
}

VoteSetDoneMsg VoteSetDoneMsg::decode(Reader& r) {
  VoteSetDoneMsg m;
  m.total_entries = r.u64();
  m.set_hash = decode_hash(r);
  return m;
}

Bytes MskShareMsg::encode() const {
  Writer w = with_type(MsgType::kMskShare);
  encode_share(w, share);
  encode_hash_path(w, path);
  return w.take();
}

MskShareMsg MskShareMsg::decode(Reader& r) {
  MskShareMsg m;
  m.share = decode_share(r);
  m.path = decode_hash_path(r);
  return m;
}

namespace {

void encode_part_data(Writer& w, const TrusteePartData& p) {
  w.vec(p.openings, [](Writer& ww, const auto& line) {
    ww.vec(line, [](Writer& w3, const auto& pair) {
      encode_ped_share(w3, pair.first);
      encode_ped_share(w3, pair.second);
    });
  });
  w.vec(p.zk_bits, [](Writer& ww, const auto& line) {
    ww.vec(line, [](Writer& w3, const std::array<crypto::PedersenShare, 4>& a) {
      for (const auto& s : a) encode_ped_share(w3, s);
    });
  });
  w.vec(p.zk_sum,
        [](Writer& ww, const crypto::PedersenShare& s) {
          encode_ped_share(ww, s);
        });
}

TrusteePartData decode_part_data(Reader& r) {
  TrusteePartData p;
  p.openings = r.vec<
      std::vector<std::pair<crypto::PedersenShare, crypto::PedersenShare>>>(
      [](Reader& rr) {
        return rr.vec<std::pair<crypto::PedersenShare, crypto::PedersenShare>>(
            [](Reader& r3) {
              auto a = decode_ped_share(r3);
              auto b = decode_ped_share(r3);
              return std::pair{a, b};
            },
            4096);
      },
      4096);
  p.zk_bits = r.vec<std::vector<std::array<crypto::PedersenShare, 4>>>(
      [](Reader& rr) {
        return rr.vec<std::array<crypto::PedersenShare, 4>>(
            [](Reader& r3) {
              std::array<crypto::PedersenShare, 4> a;
              for (auto& s : a) s = decode_ped_share(r3);
              return a;
            },
            4096);
      },
      4096);
  p.zk_sum = r.vec<crypto::PedersenShare>(
      [](Reader& rr) { return decode_ped_share(rr); }, 4096);
  return p;
}

}  // namespace

Bytes TrusteeBallotMsg::signing_bytes(BytesView election_id) const {
  Writer w;
  w.str("ddemos/trustee-ballot");
  w.bytes(election_id);
  w.u64(serial);
  w.u32(trustee_index);
  w.u8(voted);
  w.u8(used_part);
  for (const auto& p : parts) encode_part_data(w, p);
  return w.take();
}

Bytes TrusteeBallotMsg::encode() const {
  Writer w = with_type(MsgType::kTrusteeBallot);
  w.u64(serial);
  w.u32(trustee_index);
  w.u8(voted);
  w.u8(used_part);
  for (const auto& p : parts) encode_part_data(w, p);
  w.bytes(signature);
  return w.take();
}

TrusteeBallotMsg TrusteeBallotMsg::decode(Reader& r) {
  TrusteeBallotMsg m;
  m.serial = r.u64();
  m.trustee_index = r.u32();
  m.voted = r.u8();
  m.used_part = r.u8();
  for (auto& p : m.parts) p = decode_part_data(r);
  m.signature = r.bytes();
  return m;
}

Bytes TrusteeTallyMsg::signing_bytes(BytesView election_id) const {
  Writer w;
  w.str("ddemos/trustee-tally");
  w.bytes(election_id);
  w.u32(trustee_index);
  w.vec(totals, [](Writer& ww, const auto& pair) {
    encode_ped_share(ww, pair.first);
    encode_ped_share(ww, pair.second);
  });
  return w.take();
}

Bytes TrusteeTallyMsg::encode() const {
  Writer w = with_type(MsgType::kTrusteeTally);
  w.u32(trustee_index);
  w.vec(totals, [](Writer& ww, const auto& pair) {
    encode_ped_share(ww, pair.first);
    encode_ped_share(ww, pair.second);
  });
  w.bytes(signature);
  return w.take();
}

TrusteeTallyMsg TrusteeTallyMsg::decode(Reader& r) {
  TrusteeTallyMsg m;
  m.trustee_index = r.u32();
  m.totals = r.vec<std::pair<crypto::PedersenShare, crypto::PedersenShare>>(
      [](Reader& rr) {
        auto a = decode_ped_share(rr);
        auto b = decode_ped_share(rr);
        return std::pair{a, b};
      },
      4096);
  m.signature = r.bytes();
  return m;
}

Bytes BbReadMsg::encode() const {
  Writer w = with_type(MsgType::kBbRead);
  w.str(section);
  w.u64(arg);
  w.u64(request_id);
  return w.take();
}

BbReadMsg BbReadMsg::decode(Reader& r) {
  BbReadMsg m;
  m.section = r.str();
  m.arg = r.u64();
  m.request_id = r.u64();
  return m;
}

Bytes BbReadReplyMsg::encode() const {
  Writer w = with_type(MsgType::kBbReadReply);
  w.str(section);
  w.u64(arg);
  w.u64(request_id);
  w.boolean(available);
  w.bytes(payload);
  return w.take();
}

BbReadReplyMsg BbReadReplyMsg::decode(Reader& r) {
  BbReadReplyMsg m;
  m.section = r.str();
  m.arg = r.u64();
  m.request_id = r.u64();
  m.available = r.boolean();
  m.payload = r.bytes();
  return m;
}

}  // namespace ddemos::core
