#include "core/workload.hpp"

#include "core/messages.hpp"
#include "util/error.hpp"

namespace ddemos::core {

sim::TimePoint default_cast_time(const ElectionParams& params,
                                 std::size_t slot) {
  sim::Duration window = (params.t_end - params.t_start) * 3 / 4;
  return params.t_start +
         static_cast<sim::Duration>(static_cast<std::uint64_t>(window) *
                                    (slot + 1) / (params.n_voters + 1));
}

// --- VoteListWorkload (also serves RoundRobinWorkload) ----------------------

void VoteListWorkload::bind(const ElectionParams& params) {
  params_ = params;
  next_ = 0;
}

std::optional<VoteIntent> VoteListWorkload::next() {
  if (next_ >= params_.n_voters) return std::nullopt;
  std::size_t slot = next_++;
  VoteIntent in;
  in.slot = slot;
  in.option = slot < votes_.size() ? votes_[slot] : slot % params_.m();
  in.cast_at = cast_at_ ? cast_at_(slot) : default_cast_time(params_, slot);
  return in;
}

// --- RandomWorkload --------------------------------------------------------

void RandomWorkload::bind(const ElectionParams& params) {
  params_ = params;
  next_ = 0;
  rng_ = crypto::Rng(seed_);
}

std::optional<VoteIntent> RandomWorkload::next() {
  if (next_ >= params_.n_voters) return std::nullopt;
  std::size_t slot = next_++;
  VoteIntent in;
  in.slot = slot;
  // Draw both in a fixed order so the stream is a pure function of the
  // seed regardless of the abstention outcome.
  std::size_t option = rng_.below(params_.m());
  bool abstain = abstain_prob_ > 0 && rng_.uniform01() < abstain_prob_;
  in.option = abstain ? kAbstain : option;
  in.cast_at = cast_at_ ? cast_at_(slot) : default_cast_time(params_, slot);
  return in;
}

// --- ClosedLoopWorkload ----------------------------------------------------

void ClosedLoopWorkload::bind(const ElectionParams& params) {
  if (casts_ > params.n_voters) {
    throw ProtocolError("ClosedLoopWorkload: more casts than ballot slots");
  }
  options_ = params.m();
  next_ = 0;
  rng_ = crypto::Rng(seed_);
}

std::optional<VoteIntent> ClosedLoopWorkload::next() {
  if (next_ >= casts_) return std::nullopt;
  VoteIntent in;
  in.slot = next_++;
  in.option = rng_.below(options_);
  in.cast_at = kCastWhenReady;
  return in;
}

// --- DiskTraceWorkload -----------------------------------------------------

namespace {
constexpr std::uint64_t kTraceMagic = 0x44445452'43453031ull;  // "DDTRCE01"
// Header count until finish() backpatches the real one: readers reject it,
// so a Builder dropped without finish() cannot replay as an empty trace.
constexpr std::uint64_t kTraceUnfinished = ~0ull;

struct TraceRecord {
  std::uint64_t slot;
  std::uint64_t option;
  std::int64_t cast_at;
};
}  // namespace

DiskTraceWorkload::Builder::Builder(const std::string& path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw ProtocolError("DiskTraceWorkload: cannot create " + path);
  std::uint64_t header[2] = {kTraceMagic, kTraceUnfinished};
  if (std::fwrite(header, sizeof(header), 1, f_) != 1) {
    std::fclose(f_);
    f_ = nullptr;
    throw ProtocolError("DiskTraceWorkload: cannot write header");
  }
}

DiskTraceWorkload::Builder::~Builder() {
  if (f_) std::fclose(f_);
}

void DiskTraceWorkload::Builder::add(std::size_t slot, std::size_t option,
                                     sim::TimePoint cast_at) {
  if (finished_) throw ProtocolError("DiskTraceWorkload: add after finish");
  TraceRecord rec{slot, option, cast_at};
  if (std::fwrite(&rec, sizeof(rec), 1, f_) != 1) {
    throw ProtocolError("DiskTraceWorkload: short write");
  }
  ++count_;
}

void DiskTraceWorkload::Builder::finish() {
  if (finished_) return;
  finished_ = true;
  // The count backpatch is what makes the trace readable; a silent failure
  // here would replay as an empty electorate, so every step is checked.
  bool ok =
      std::fseek(f_, static_cast<long>(sizeof(std::uint64_t)), SEEK_SET) == 0;
  ok = ok && std::fwrite(&count_, sizeof(count_), 1, f_) == 1;
  ok = std::fclose(f_) == 0 && ok;
  f_ = nullptr;
  if (!ok) throw ProtocolError("DiskTraceWorkload: failed to finalize trace");
}

DiskTraceWorkload::DiskTraceWorkload(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) throw ProtocolError("DiskTraceWorkload: cannot open " + path);
  std::uint64_t header[2];
  if (std::fread(header, sizeof(header), 1, f_) != 1 ||
      header[0] != kTraceMagic) {
    std::fclose(f_);
    f_ = nullptr;
    throw ProtocolError("DiskTraceWorkload: bad trace header in " + path);
  }
  if (header[1] == kTraceUnfinished) {
    std::fclose(f_);
    f_ = nullptr;
    throw ProtocolError("DiskTraceWorkload: trace was never finalized "
                        "(Builder::finish not called): " + path);
  }
  count_ = header[1];
}

DiskTraceWorkload::~DiskTraceWorkload() {
  if (f_) std::fclose(f_);
}

void DiskTraceWorkload::bind(const ElectionParams&) {
  std::fseek(f_, static_cast<long>(2 * sizeof(std::uint64_t)), SEEK_SET);
  read_ = 0;
}

std::optional<VoteIntent> DiskTraceWorkload::next() {
  if (read_ >= count_) return std::nullopt;
  TraceRecord rec;
  if (std::fread(&rec, sizeof(rec), 1, f_) != 1) {
    throw ProtocolError("DiskTraceWorkload: truncated trace");
  }
  ++read_;
  VoteIntent in;
  in.slot = rec.slot;
  in.option = rec.option;
  in.cast_at = rec.cast_at;
  return in;
}

// --- ClosedLoopClient ------------------------------------------------------

ClosedLoopClient::ClosedLoopClient(std::vector<VoteTarget> targets,
                                   std::vector<sim::NodeId> vc_ids,
                                   std::size_t concurrency,
                                   std::uint64_t seed)
    : targets_(std::move(targets)),
      vc_ids_(std::move(vc_ids)),
      concurrency_(concurrency),
      rng_(seed) {}

void ClosedLoopClient::on_start() {
  first_send_ = ctx().now();
  for (std::size_t i = 0; i < concurrency_ && next_ < targets_.size(); ++i) {
    send_next();
  }
}

void ClosedLoopClient::send_next() {
  if (next_ >= targets_.size()) return;
  const VoteTarget& t = targets_[next_++];
  in_flight_[t.serial] = {ctx().now(), t.option};
  sim::NodeId vc = vc_ids_[rng_.below(vc_ids_.size())];
  ctx().send(vc, VoteMsg{t.serial, t.code}.encode());
}

void ClosedLoopClient::on_message(sim::NodeId, const net::Buffer& payload) {
  try {
    Reader r(payload.view());
    if (static_cast<MsgType>(r.u8()) != MsgType::kVoteReply) return;
    VoteReplyMsg m = VoteReplyMsg::decode(r);
    auto it = in_flight_.find(m.serial);
    if (it == in_flight_.end()) return;
    if (m.status != VoteReplyStatus::kOk) {
      // Never throw out of a handler: on ThreadNet that would escape the
      // worker thread and terminate the process. Rejections are counted
      // and surfaced through rejected(); the cast still frees its
      // concurrency slot so the loop drains.
      ++rejected_;
      in_flight_.erase(it);
      send_next();
      return;
    }
    latency_sum_us_ += static_cast<double>(ctx().now() - it->second.first);
    ++latency_count_;
    std::size_t option = it->second.second;
    if (option != kAbstain) {
      if (option >= option_tally_.size()) option_tally_.resize(option + 1, 0);
      ++option_tally_[option];
    }
    in_flight_.erase(it);
    ++completed_;
    last_receipt_ = ctx().now();
    send_next();
  } catch (const CodecError&) {
  }
}

std::vector<std::uint64_t> ClosedLoopClient::completed_by_option(
    std::size_t m) const {
  std::vector<std::uint64_t> out(m, 0);
  for (std::size_t j = 0; j < m && j < option_tally_.size(); ++j) {
    out[j] = option_tally_[j];
  }
  return out;
}

}  // namespace ddemos::core
