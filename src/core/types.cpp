#include "core/types.hpp"

#include <algorithm>

namespace ddemos::core {

void encode_hash(Writer& w, const crypto::Hash32& h) {
  w.raw(crypto::hash_view(h));
}

crypto::Hash32 decode_hash(Reader& r) {
  Bytes b = r.raw(32);
  crypto::Hash32 h;
  std::copy(b.begin(), b.end(), h.begin());
  return h;
}

void encode_point(Writer& w, const crypto::Point& p) {
  w.raw(crypto::ec_encode(p));
}

crypto::Point decode_point(Reader& r) {
  return crypto::ec_decode(r.raw(33));
}

void encode_scalar(Writer& w, const crypto::Fn& s) {
  w.raw(s.to_bytes_be());
}

crypto::Fn decode_scalar(Reader& r) {
  return crypto::Fn::from_bytes_mod(r.raw(32));
}

void encode_share(Writer& w, const crypto::Share& s) {
  w.u32(s.x);
  encode_scalar(w, s.y);
}

crypto::Share decode_share(Reader& r) {
  crypto::Share s;
  s.x = r.u32();
  s.y = decode_scalar(r);
  return s;
}

void encode_ped_share(Writer& w, const crypto::PedersenShare& s) {
  w.u32(s.x);
  encode_scalar(w, s.f);
  encode_scalar(w, s.g);
}

crypto::PedersenShare decode_ped_share(Reader& r) {
  crypto::PedersenShare s;
  s.x = r.u32();
  s.f = decode_scalar(r);
  s.g = decode_scalar(r);
  return s;
}

void encode_hash_path(Writer& w, const std::vector<crypto::Hash32>& p) {
  w.vec(p, [](Writer& ww, const crypto::Hash32& h) { encode_hash(ww, h); });
}

std::vector<crypto::Hash32> decode_hash_path(Reader& r) {
  return r.vec<crypto::Hash32>([](Reader& rr) { return decode_hash(rr); },
                               64);
}

void ElectionParams::encode(Writer& w) const {
  w.bytes(election_id);
  w.vec(options, [](Writer& ww, const std::string& s) { ww.str(s); });
  w.varint(n_voters);
  w.varint(n_vc);
  w.varint(f_vc);
  w.varint(n_bb);
  w.varint(f_bb);
  w.varint(n_trustees);
  w.varint(h_trustees);
  w.u64(static_cast<std::uint64_t>(t_start));
  w.u64(static_cast<std::uint64_t>(t_end));
}

ElectionParams ElectionParams::decode(Reader& r) {
  ElectionParams p;
  p.election_id = r.bytes();
  p.options = r.vec<std::string>([](Reader& rr) { return rr.str(); }, 4096);
  p.n_voters = static_cast<std::size_t>(r.varint());
  p.n_vc = static_cast<std::size_t>(r.varint());
  p.f_vc = static_cast<std::size_t>(r.varint());
  p.n_bb = static_cast<std::size_t>(r.varint());
  p.f_bb = static_cast<std::size_t>(r.varint());
  p.n_trustees = static_cast<std::size_t>(r.varint());
  p.h_trustees = static_cast<std::size_t>(r.varint());
  p.t_start = static_cast<std::int64_t>(r.u64());
  p.t_end = static_cast<std::int64_t>(r.u64());
  return p;
}

void VcLineInit::encode(Writer& w) const {
  encode_hash(w, code_hash);
  w.bytes(salt);
  encode_share(w, receipt_share);
  encode_hash_path(w, share_path);
  encode_hash(w, share_root);
}

VcLineInit VcLineInit::decode(Reader& r) {
  VcLineInit l;
  l.code_hash = decode_hash(r);
  l.salt = r.bytes();
  l.receipt_share = decode_share(r);
  l.share_path = decode_hash_path(r);
  l.share_root = decode_hash(r);
  return l;
}

void VcBallotInit::encode(Writer& w) const {
  w.u64(serial);
  for (const auto& part : parts) {
    w.vec(part, [](Writer& ww, const VcLineInit& l) { l.encode(ww); });
  }
}

VcBallotInit VcBallotInit::decode(Reader& r) {
  VcBallotInit b;
  b.serial = r.u64();
  for (auto& part : b.parts) {
    part = r.vec<VcLineInit>(
        [](Reader& rr) { return VcLineInit::decode(rr); }, 4096);
  }
  return b;
}

void BbLineInit::encode(Writer& w) const {
  w.bytes(encrypted_vote_code);
  w.vec(encoding, [](Writer& ww, const crypto::ElGamalCipher& c) {
    ww.raw(crypto::eg_encode(c));
  });
  w.vec(bit_proofs, [](Writer& ww, const crypto::BitProofFirstMove& fm) {
    encode_point(ww, fm.t1_0);
    encode_point(ww, fm.t2_0);
    encode_point(ww, fm.t1_1);
    encode_point(ww, fm.t2_1);
  });
  encode_point(w, sum_proof.t1);
  encode_point(w, sum_proof.t2);
  auto enc_points = [](Writer& ww, const std::vector<crypto::Point>& v) {
    ww.vec(v, [](Writer& w3, const crypto::Point& p) { encode_point(w3, p); });
  };
  w.vec(opening_comms, enc_points);
  w.vec(zk_comms, enc_points);
}

BbLineInit BbLineInit::decode(Reader& r) {
  BbLineInit l;
  l.encrypted_vote_code = r.bytes();
  l.encoding = r.vec<crypto::ElGamalCipher>(
      [](Reader& rr) { return crypto::eg_decode(rr.raw(66)); }, 4096);
  l.bit_proofs = r.vec<crypto::BitProofFirstMove>(
      [](Reader& rr) {
        crypto::BitProofFirstMove fm;
        fm.t1_0 = decode_point(rr);
        fm.t2_0 = decode_point(rr);
        fm.t1_1 = decode_point(rr);
        fm.t2_1 = decode_point(rr);
        return fm;
      },
      4096);
  l.sum_proof.t1 = decode_point(r);
  l.sum_proof.t2 = decode_point(r);
  auto dec_points = [](Reader& rr) {
    return rr.vec<crypto::Point>(
        [](Reader& r3) { return decode_point(r3); }, 4096);
  };
  l.opening_comms = r.vec<std::vector<crypto::Point>>(dec_points, 4096);
  l.zk_comms = r.vec<std::vector<crypto::Point>>(dec_points, 4096);
  return l;
}

void VoteSetEntry::encode(Writer& w) const {
  w.u64(serial);
  w.bytes(vote_code);
}

VoteSetEntry VoteSetEntry::decode(Reader& r) {
  VoteSetEntry e;
  e.serial = r.u64();
  e.vote_code = r.bytes();
  return e;
}

crypto::Hash32 vote_set_hash(const std::vector<VoteSetEntry>& entries) {
  crypto::Sha256 h;
  h.update(to_bytes("ddemos/vote-set"));
  for (const VoteSetEntry& e : entries) {
    Writer w;
    e.encode(w);
    h.update(w.data());
  }
  return h.finish();
}

}  // namespace ddemos::core
