// Multi-process cluster orchestration for the TcpNet backend. The launcher
// (process 0) forks one `ddemos_node --serve` process per protocol node,
// drives it over a control TCP connection, and hosts the election's client
// half (voters / load generator) itself, so a whole multi-process election
// runs out of one DriverConfig exactly like the other two backends:
//
//   spawn children -> C_HELLO -> C_CONFIG(spec) -> children build their
//   node from the seed -> C_READY(data port) -> C_PEERS(port table) ->
//   C_GO -> election runs over TcpNet data sockets, children stream
//   C_STATUS -> C_STOP -> C_REPORT(per-node stats + accounting) -> exit.
//
// Nothing heavy ships over the control socket: every process recomputes
// the EA's deterministic setup from (params, seed), so a node process
// holds exactly its own node's initialization data (the launcher holds the
// voter ballots). The collected TcpProcessReports merge into the same
// core::ElectionReport the other backends produce, with one NodeAccounting
// row per OS process.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "net/tcp_net.hpp"

namespace ddemos::core {

// Everything a node process needs to deterministically rebuild its slice
// of the election. Process placement is by fixed convention: process p in
// [1 .. protocol_processes()] hosts protocol node id p-1 over the
// [VCs | BBs | trustees] prefix; the launcher (process 0) hosts the rest.
struct TcpClusterSpec {
  ElectionParams params;
  std::uint64_t seed = 1;
  bool vc_only = false;          // EA mode (no BB/trustee crypto payload)
  bool collection_only = false;  // spawn VC processes only (bench clusters)
  std::size_t consensus_rounds = 64;
  std::size_t vc_shards = 1;
  vc::VcNode::Options vc_options;
  trustee::TrusteeNode::Options trustee_options;
  // Durability knob, shipped to every node process: each one opens (and on
  // a respawn, replays) <wal_dir>/<node name>.wal for the nodes it hosts.
  DurabilityConfig durability;

  std::size_t protocol_processes() const {
    return collection_only ? params.n_vc
                           : params.n_vc + params.n_bb + params.n_trustees;
  }

  void encode(Writer& w) const;
  static TcpClusterSpec decode(Reader& r);
};

// Per-node harvest shipped back over the control socket at C_REPORT.
struct TcpNodeReport {
  std::uint32_t node_id = 0;
  enum Kind : std::uint8_t { kVc = 0, kBb = 1, kTrustee = 2 };
  std::uint8_t kind = kVc;
  bool done = false;
  // VC fields
  vc::VcStats vc_stats;
  std::vector<vc::VcShardStats> vc_shard_stats;
  std::vector<VoteSetEntry> vote_set;
  // BB fields
  bool result_published = false;
  std::vector<std::uint64_t> tally;
  sim::TimePoint codes_published_at = 0;
  sim::TimePoint result_published_at = 0;

  void encode(Writer& w) const;
  static TcpNodeReport decode(Reader& r);
};

struct TcpProcessReport {
  std::uint32_t process = 0;
  // bench::Instrumentation-style accounting for the whole OS process.
  std::uint64_t events = 0;
  std::uint64_t allocations = 0;
  std::uint64_t rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  // Transport counters from the process's TcpNet.
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t frames_dropped = 0;
  std::vector<TcpNodeReport> nodes;

  void encode(Writer& w) const;
  static TcpProcessReport decode(Reader& r);
};

class TcpLauncher {
 public:
  struct Options {
    Options() {}
    // Path of the node binary; "" = ddemos_node next to /proc/self/exe
    // (overridable via the DDEMOS_NODE_BIN environment variable).
    std::string node_binary;
    std::string host = "127.0.0.1";
    // How often children report status over the control socket.
    sim::Duration status_interval_us = 25'000;
    // Budget for the spawn/handshake phase and for reaping children.
    sim::Duration launch_timeout_us = 30'000'000;
    // Fault hook for the fault matrix: invoked once, fault_after_us after
    // go(), from a helper thread (kill_process, sever_connections, ...).
    std::function<void(TcpLauncher&)> fault;
    sim::Duration fault_after_us = 0;
  };

  TcpLauncher(TcpClusterSpec spec, Options opt = {});
  ~TcpLauncher();  // best-effort: C_STOP + SIGKILL anything still alive

  TcpLauncher(const TcpLauncher&) = delete;
  TcpLauncher& operator=(const TcpLauncher&) = delete;

  const TcpClusterSpec& spec() const { return spec_; }
  // The launcher-side TcpNet (process 0). Valid from construction; node
  // placeholders/clients are registered by run_election, or by the caller
  // between launch() and go() for custom clusters.
  net::TcpNet& net() { return *net_; }

  // Spawns the node processes and completes the handshake through C_PEERS.
  // Throws ProtocolError if any child fails to come up in time.
  void launch();
  // C_GO to every child + net().start(); arms the fault hook if set.
  void go();

  std::size_t process_count() const { return spec_.protocol_processes() + 1; }
  bool process_alive(std::size_t process) const;
  // Every *live* protocol process reports done (VC: push complete, BB:
  // result published, trustees: unconditional). False while any live one
  // is still working; a killed process never blocks completion.
  bool remote_complete() const;
  // SIGKILL a node process (fault injection). The control connection's
  // EOF marks it dead; remote_complete() then skips it.
  void kill_process(std::size_t process);
  // Crash recovery: fork a fresh `ddemos_node --serve` for a killed
  // process and drive it through the full handshake again. The respawn
  // reuses the process's original data port (peers keep dialing the
  // address from the one peer table they ever received), bumps its HELLO
  // incarnation (receivers reset their dedup floor), and ships the
  // launcher's current election clock in the GO body so the child resumes
  // the original time base. With spec().durability set, the child replays
  // its nodes' WALs while rebuilding and rejoins mid-election; the new
  // incarnation reports real counters at stop_cluster (no zeroed row).
  // Throws ProtocolError if the process is still alive or the handshake
  // fails.
  void respawn_process(std::size_t process);

  // C_STOP to every live child, collect C_REPORTs, reap children (SIGKILL
  // past the timeout), stop the local net. Idempotent; returns the reports
  // of every process that delivered one, ordered by process index.
  std::vector<TcpProcessReport> stop_cluster();

  // Full election from a DriverConfig: launch + build the client half
  // locally + go + completion wait + report merge. The cfg must describe
  // the same election as the spec (spec_from is the intended source).
  ElectionReport run_election(const DriverConfig& cfg);

  // Spec for a full multi-process election (every VC/BB/trustee its own
  // process) matching `cfg`.
  static TcpClusterSpec spec_from(const DriverConfig& cfg);
  // "<dir of /proc/self/exe>/ddemos_node", or $DDEMOS_NODE_BIN.
  static std::string default_node_binary();

 private:
  struct Child {
    pid_t pid = -1;
    int control_fd = -1;
    std::thread reader;
    std::atomic<bool> alive{false};
    std::atomic<bool> done{false};
    std::atomic<bool> reported{false};
    TcpProcessReport report;
    // For respawns: the data port this process must keep across
    // incarnations, and the incarnation of the currently running one.
    std::uint16_t data_port = 0;
    std::uint64_t incarnation = 1;
  };

  void control_reader(Child& child);
  void reap_children();

  TcpClusterSpec spec_;
  Options opt_;
  std::unique_ptr<net::TcpNet> net_;
  int control_listen_fd_ = -1;
  std::uint16_t control_port_ = 0;
  std::vector<std::unique_ptr<Child>> children_;  // index = process - 1
  std::thread fault_thread_;
  std::atomic<bool> stopping_{false};
  bool launched_ = false;
  bool stopped_ = false;
};

// Node-process entry point (ddemos_node --serve): connect to the control
// socket, rebuild the assigned node from the received spec, run until
// C_STOP, ship the report. Returns a process exit code.
//
// data_port/incarnation are only non-default on a crash-recovery respawn:
// the child then binds the fixed data port its predecessor held and
// announces the bumped incarnation in every HELLO. (The clock offset rides
// the GO body instead of argv, so it is captured after the potentially
// slow node rebuild.)
int serve_tcp_node(const std::string& host, std::uint16_t port,
                   std::uint32_t process, std::uint16_t data_port = 0,
                   std::uint64_t incarnation = 1);

}  // namespace ddemos::core
