// Streaming voter workloads for the election driver. A Workload is a pull
// stream of vote intents — {ballot slot, option, cast time} — so an
// election over 10^6 ballots is configured in O(1) memory instead of the
// dense per-voter vectors the old RunnerConfig carried. Built-in sources:
//   RoundRobinWorkload  every slot votes, option = slot % m (the old
//                       default), cast times evenly spread over the window
//   VoteListWorkload    explicit per-slot options for tests/examples;
//                       slots beyond the list fall back to round-robin
//   RandomWorkload      seeded random option choice with an abstention
//                       probability; deterministic across runs
//   ClosedLoopWorkload  closed-loop load: `concurrency` casts in flight,
//                       each receipt triggers the next cast (the paper's
//                       multi-threaded voting client)
//   DiskTraceWorkload   replays a binary (slot, option, cast_at) trace
//                       from disk, never materializing it in memory
//
// ClosedLoopClient is the runtime half of the closed-loop source: a single
// Process keeping `concurrency` raw votes in flight, shared by the driver
// and the figure benchmarks (it absorbs the old bench::LoadGen).
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "crypto/rng.hpp"
#include "sim/runtime.hpp"

namespace ddemos::core {

inline constexpr std::size_t kAbstain = static_cast<std::size_t>(-1);

// Sentinel cast time for closed-loop sources: the client casts as soon as a
// concurrency slot frees up rather than at a scheduled instant.
inline constexpr sim::TimePoint kCastWhenReady = -1;

struct VoteIntent {
  std::size_t slot = 0;          // ballot slot index in [0, n_voters)
  std::size_t option = kAbstain;  // kAbstain = this slot does not vote
  sim::TimePoint cast_at = 0;
};

// Per-slot cast-time override used by several sources.
using CastTimeFn = std::function<sim::TimePoint(std::size_t slot)>;

// The old runner default: even spread over the first three quarters of the
// election window (kept bit-identical for workload parity).
sim::TimePoint default_cast_time(const ElectionParams& params,
                                 std::size_t slot);

class Workload {
 public:
  virtual ~Workload() = default;
  // Called once by the driver before streaming begins; sources derive
  // defaults (slot count, option count, cast-time spread) from the
  // election parameters and rewind so a Workload can drive a second
  // backend (runtime-parity runs bind twice).
  virtual void bind(const ElectionParams& params) = 0;
  // Next vote intent, or nullopt at end of stream.
  virtual std::optional<VoteIntent> next() = 0;
  // Closed-loop sources: number of casts kept in flight. 0 = open loop
  // (every intent carries its own cast time).
  virtual std::size_t concurrency() const { return 0; }
};

class VoteListWorkload : public Workload {
 public:
  // `votes[slot]` is the option slot votes for (kAbstain = no vote); slots
  // beyond the list default to round-robin, as the old RunnerConfig did.
  explicit VoteListWorkload(std::vector<std::size_t> votes,
                            CastTimeFn cast_at = nullptr)
      : votes_(std::move(votes)), cast_at_(std::move(cast_at)) {}
  static std::shared_ptr<VoteListWorkload> make(std::vector<std::size_t> votes,
                                                CastTimeFn cast_at = nullptr) {
    return std::make_shared<VoteListWorkload>(std::move(votes),
                                              std::move(cast_at));
  }

  void bind(const ElectionParams& params) override;
  std::optional<VoteIntent> next() override;

 private:
  std::vector<std::size_t> votes_;
  CastTimeFn cast_at_;
  ElectionParams params_;
  std::size_t next_ = 0;
};

// The old runner default — every slot votes, option = slot % m — is the
// vote-list fallback with an empty list; one implementation keeps the two
// documented behaviours from drifting apart.
class RoundRobinWorkload final : public VoteListWorkload {
 public:
  explicit RoundRobinWorkload(CastTimeFn cast_at = nullptr)
      : VoteListWorkload({}, std::move(cast_at)) {}
  static std::shared_ptr<RoundRobinWorkload> make(
      CastTimeFn cast_at = nullptr) {
    return std::make_shared<RoundRobinWorkload>(std::move(cast_at));
  }
};

class RandomWorkload final : public Workload {
 public:
  RandomWorkload(std::uint64_t seed, double abstain_prob = 0.0,
                 CastTimeFn cast_at = nullptr)
      : seed_(seed), abstain_prob_(abstain_prob),
        cast_at_(std::move(cast_at)), rng_(seed) {}
  static std::shared_ptr<RandomWorkload> make(std::uint64_t seed,
                                              double abstain_prob = 0.0,
                                              CastTimeFn cast_at = nullptr) {
    return std::make_shared<RandomWorkload>(seed, abstain_prob,
                                            std::move(cast_at));
  }

  void bind(const ElectionParams& params) override;
  std::optional<VoteIntent> next() override;

 private:
  std::uint64_t seed_;
  double abstain_prob_;
  CastTimeFn cast_at_;
  crypto::Rng rng_;
  ElectionParams params_;
  std::size_t next_ = 0;
};

class ClosedLoopWorkload final : public Workload {
 public:
  // `casts` votes over slots 0..casts-1 with seeded-random options, driven
  // by a single client that keeps `concurrency` casts in flight.
  ClosedLoopWorkload(std::size_t casts, std::size_t concurrency,
                     std::uint64_t seed)
      : casts_(casts), concurrency_(concurrency), seed_(seed), rng_(seed) {}
  static std::shared_ptr<ClosedLoopWorkload> make(std::size_t casts,
                                                  std::size_t concurrency,
                                                  std::uint64_t seed) {
    return std::make_shared<ClosedLoopWorkload>(casts, concurrency, seed);
  }

  void bind(const ElectionParams& params) override;
  std::optional<VoteIntent> next() override;
  std::size_t concurrency() const override { return concurrency_; }

 private:
  std::size_t casts_;
  std::size_t concurrency_;
  std::uint64_t seed_;
  crypto::Rng rng_;
  std::size_t options_ = 0;
  std::size_t next_ = 0;
};

// Replays a trace of fixed-size records from disk. File layout:
//   [u64 magic][u64 count] then count * {u64 slot, u64 option, i64 cast_at}
// (host byte order; traces are produced and consumed on the same machine).
class DiskTraceWorkload final : public Workload {
 public:
  class Builder {
   public:
    explicit Builder(const std::string& path);
    ~Builder();
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;
    void add(std::size_t slot, std::size_t option, sim::TimePoint cast_at);
    void finish();  // backpatches the record count into the header

   private:
    std::FILE* f_ = nullptr;
    std::uint64_t count_ = 0;
    bool finished_ = false;
  };

  explicit DiskTraceWorkload(const std::string& path);
  ~DiskTraceWorkload();
  DiskTraceWorkload(const DiskTraceWorkload&) = delete;
  DiskTraceWorkload& operator=(const DiskTraceWorkload&) = delete;
  static std::shared_ptr<DiskTraceWorkload> make(const std::string& path) {
    return std::make_shared<DiskTraceWorkload>(path);
  }

  void bind(const ElectionParams& params) override;
  std::optional<VoteIntent> next() override;
  std::size_t size() const { return count_; }

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

// One castable vote for the closed-loop client: the ballot serial, the
// vote code of the chosen line, and (when known) the printed receipt and
// the option the code stands for.
struct VoteTarget {
  Serial serial = 0;
  Bytes code;
  std::uint64_t receipt = 0;
  std::size_t option = kAbstain;
};

// Closed-loop load generator: `concurrency` in-flight casts; each receipt
// immediately triggers the next cast, as in the paper's multi-threaded
// voting client. Used by the driver for ClosedLoopWorkload and by the
// Figure 4/5 benchmarks directly.
class ClosedLoopClient final : public sim::Process {
 public:
  ClosedLoopClient(std::vector<VoteTarget> targets,
                   std::vector<sim::NodeId> vc_ids, std::size_t concurrency,
                   std::uint64_t seed);

  void on_start() override;
  void on_message(sim::NodeId from, const net::Buffer& payload) override;

  // Every cast resolved, successfully or not (rejections free their
  // concurrency slot so the loop always drains).
  bool done() const { return completed_ + rejected_ == targets_.size(); }
  std::size_t completed() const { return completed_; }
  std::size_t rejected() const { return rejected_; }
  std::size_t target_count() const { return targets_.size(); }
  sim::TimePoint first_send() const { return first_send_; }
  sim::TimePoint last_receipt() const { return last_receipt_; }
  double mean_latency_us() const {
    return latency_count_ ? latency_sum_us_ / latency_count_ : 0.0;
  }
  // Completed casts per option (options beyond any target are zero).
  std::vector<std::uint64_t> completed_by_option(std::size_t m) const;

 private:
  void send_next();

  std::vector<VoteTarget> targets_;
  std::vector<sim::NodeId> vc_ids_;
  std::size_t concurrency_;
  crypto::Rng rng_;
  std::size_t next_ = 0;
  // Atomic: read by the ThreadNet completion predicate mid-run.
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> rejected_{0};
  std::map<Serial, std::pair<sim::TimePoint, std::size_t>> in_flight_;
  std::vector<std::uint64_t> option_tally_;
  sim::TimePoint first_send_ = -1;
  sim::TimePoint last_receipt_ = -1;
  double latency_sum_us_ = 0;
  std::size_t latency_count_ = 0;
};

}  // namespace ddemos::core
