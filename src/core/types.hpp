// Shared election data types: voter ballots, per-component initialization
// data produced by the Election Authority (paper Section III-D), and the
// runtime vote-set entry. Serialization lives beside each type.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "consensus/coin.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/shamir.hpp"
#include "crypto/zkp.hpp"
#include "util/codec.hpp"

namespace ddemos::core {

using Serial = std::uint64_t;

inline constexpr std::size_t kVoteCodeBytes = 20;  // 160-bit vote codes
inline constexpr std::size_t kSaltBytes = 8;       // 64-bit salts
inline constexpr std::size_t kNumParts = 2;        // ballot parts A and B

// ---------------------------------------------------------------------
// Voter-visible ballot (distributed out of band, paper Section III-D).

struct BallotLine {
  Bytes vote_code;        // 160-bit random, unique within the ballot
  std::string option;     // human-readable option text
  std::uint64_t receipt;  // 64-bit random receipt
};

struct BallotPart {
  std::vector<BallotLine> lines;  // in original option order
};

struct Ballot {
  Serial serial = 0;
  std::array<BallotPart, kNumParts> parts;  // A = 0, B = 1
};

// ---------------------------------------------------------------------
// Election parameters every component knows.

struct ElectionParams {
  Bytes election_id;
  std::vector<std::string> options;  // size m
  std::size_t n_voters = 0;
  std::size_t n_vc = 0;
  std::size_t f_vc = 0;
  std::size_t n_bb = 0;
  std::size_t f_bb = 0;
  std::size_t n_trustees = 0;
  std::size_t h_trustees = 0;  // honest threshold ht
  std::int64_t t_start = 0;    // election hours, microseconds
  std::int64_t t_end = 0;

  std::size_t m() const { return options.size(); }
  std::size_t vc_quorum() const { return n_vc - f_vc; }

  void encode(Writer& w) const;
  static ElectionParams decode(Reader& r);
};

// ---------------------------------------------------------------------
// Vote Collector initialization data.

struct VcLineInit {
  crypto::Hash32 code_hash;  // SHA256(vote-code || salt)
  Bytes salt;                // kSaltBytes
  crypto::Share receipt_share;            // this node's share
  std::vector<crypto::Hash32> share_path;  // Merkle path for the share
  crypto::Hash32 share_root;               // root over all Nv shares

  void encode(Writer& w) const;
  static VcLineInit decode(Reader& r);
};

struct VcBallotInit {
  Serial serial = 0;
  // parts[p].size() == m, shuffled by the ballot's secret permutation.
  std::array<std::vector<VcLineInit>, kNumParts> parts;

  void encode(Writer& w) const;
  static VcBallotInit decode(Reader& r);
};

struct VcInit {
  ElectionParams params;
  std::size_t node_index = 0;
  crypto::Fn signing_key;               // this node's Schnorr secret
  std::vector<Bytes> vc_public_keys;    // all Nv compressed public keys
  crypto::Share msk_share;              // share of the vote-code key msk
  std::vector<crypto::Hash32> msk_share_path;
  crypto::Hash32 msk_share_root;
  // Common-coin material for the vote-set consensus.
  std::vector<consensus::CoinShare> coin_shares;
  std::vector<crypto::Hash32> coin_roots;
  std::vector<VcBallotInit> ballots;  // sorted by serial
};

// ---------------------------------------------------------------------
// Bulletin Board initialization data.

struct BbLineInit {
  Bytes encrypted_vote_code;  // AES-128-CBC$ under msk
  std::vector<crypto::ElGamalCipher> encoding;  // m ciphertexts
  std::vector<crypto::BitProofFirstMove> bit_proofs;  // one per ciphertext
  crypto::SumProofFirstMove sum_proof;
  // Pedersen VSS coefficient commitments for the trustee shares of this
  // line: openings (per ciphertext: message then randomness), bit-proof
  // response coefficients (per ciphertext: c0u,c0v,c1u,c1v,z0u,z0v,z1u,z1v)
  // and the sum-proof response (zu, zv).
  std::vector<std::vector<crypto::Point>> opening_comms;
  std::vector<std::vector<crypto::Point>> zk_comms;

  void encode(Writer& w) const;
  static BbLineInit decode(Reader& r);
};

struct BbBallotInit {
  Serial serial = 0;
  std::array<std::vector<BbLineInit>, kNumParts> parts;
};

struct BbInit {
  ElectionParams params;
  std::size_t node_index = 0;
  crypto::Point commit_key;  // the lifted-ElGamal commitment key
  crypto::Hash32 h_msk;      // SHA256(msk || salt_msk)
  Bytes salt_msk;
  crypto::Hash32 msk_share_root;
  std::vector<Bytes> vc_public_keys;
  std::vector<Bytes> trustee_public_keys;
  std::vector<BbBallotInit> ballots;  // sorted by serial
};

// ---------------------------------------------------------------------
// Trustee initialization data.

struct TrusteeLineInit {
  // Shares of the opening of each of the m ciphertexts: message and
  // randomness.
  std::vector<crypto::PedersenShare> open_m;
  std::vector<crypto::PedersenShare> open_r;
  // Shares of the affine response coefficients of each bit proof:
  // [ciphertext][component] with components ordered
  // c0.u, c0.v, c1.u, c1.v, z0.u, z0.v, z1.u, z1.v.
  std::vector<std::array<crypto::PedersenShare, 8>> zk_bits;
  // Shares of the sum-proof response coefficients (u, v).
  crypto::PedersenShare sum_u, sum_v;
};

struct TrusteeBallotInit {
  Serial serial = 0;
  std::array<std::vector<TrusteeLineInit>, kNumParts> parts;
};

struct TrusteeInit {
  ElectionParams params;
  std::size_t node_index = 0;  // 0-based trustee index
  crypto::Fn signing_key;
  std::vector<Bytes> trustee_public_keys;
  crypto::Point commit_key;
  std::vector<TrusteeBallotInit> ballots;  // sorted by serial
};

// ---------------------------------------------------------------------
// Runtime: the agreed vote set.

struct VoteSetEntry {
  Serial serial = 0;
  Bytes vote_code;

  void encode(Writer& w) const;
  static VoteSetEntry decode(Reader& r);
  friend bool operator==(const VoteSetEntry&, const VoteSetEntry&) = default;
};

// Canonical hash of a final vote set (entries must be sorted by serial).
crypto::Hash32 vote_set_hash(const std::vector<VoteSetEntry>& entries);

// --- shared small codecs ------------------------------------------------

void encode_hash(Writer& w, const crypto::Hash32& h);
crypto::Hash32 decode_hash(Reader& r);
void encode_point(Writer& w, const crypto::Point& p);
crypto::Point decode_point(Reader& r);
void encode_scalar(Writer& w, const crypto::Fn& s);
crypto::Fn decode_scalar(Reader& r);
void encode_share(Writer& w, const crypto::Share& s);
crypto::Share decode_share(Reader& r);
void encode_ped_share(Writer& w, const crypto::PedersenShare& s);
crypto::PedersenShare decode_ped_share(Reader& r);
void encode_hash_path(Writer& w, const std::vector<crypto::Hash32>& p);
std::vector<crypto::Hash32> decode_hash_path(Reader& r);

}  // namespace ddemos::core
