#include "core/runner.hpp"

#include "util/error.hpp"

namespace ddemos::core {

using sim::NodeId;

ElectionTopology build_election(sim::RuntimeHost& host,
                                const ea::SetupArtifacts& artifacts,
                                const RunnerConfig& cfg) {
  const ElectionParams& p = cfg.params;
  ElectionTopology topo;

  // Votes: fill defaults (round robin over options).
  topo.effective_votes = cfg.votes;
  topo.effective_votes.resize(p.n_voters, kAbstain);
  for (std::size_t i = cfg.votes.size(); i < p.n_voters; ++i) {
    topo.effective_votes[i] = i % p.m();
  }

  // VC nodes take host ids 0..Nv-1 (the convention BB nodes use to
  // identify authenticated VC writers).
  std::vector<NodeId> vc_ids(p.n_vc), bb_ids(p.n_bb);
  for (std::size_t i = 0; i < p.n_vc; ++i) vc_ids[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    bb_ids[i] = static_cast<NodeId>(p.n_vc + i);
  }
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    std::shared_ptr<store::BallotDataSource> source;
    if (cfg.store_factory) {
      source = cfg.store_factory(artifacts.vc_inits[i]);
    } else {
      source = std::make_shared<store::MemoryBallotSource>(
          artifacts.vc_inits[i].ballots);
    }
    NodeId id = host.add_node(
        std::make_unique<vc::VcNode>(artifacts.vc_inits[i], source, vc_ids,
                                     bb_ids, cfg.vc_options),
        "vc" + std::to_string(i));
    topo.vc_ids.push_back(id);
  }
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    NodeId id = host.add_node(
        std::make_unique<bb::BbNode>(artifacts.bb_inits[i]),
        "bb" + std::to_string(i));
    topo.bb_ids.push_back(id);
  }
  for (std::size_t i = 0; i < p.n_trustees; ++i) {
    NodeId id = host.add_node(
        std::make_unique<trustee::TrusteeNode>(artifacts.trustee_inits[i],
                                               topo.bb_ids,
                                               cfg.trustee_options),
        "trustee" + std::to_string(i));
    topo.trustee_ids.push_back(id);
  }
  for (std::size_t v = 0; v < p.n_voters; ++v) {
    if (topo.effective_votes[v] == kAbstain) continue;
    client::Voter::Config vcfg = cfg.voter_template;
    vcfg.ballot = artifacts.voter_ballots[v];
    vcfg.option_index = topo.effective_votes[v];
    vcfg.vc_ids = topo.vc_ids;
    vcfg.seed = cfg.seed * 1000003 + v;
    if (cfg.vote_time) {
      vcfg.vote_at = cfg.vote_time(v);
    } else {
      // Even spread over the first three quarters of the window.
      sim::Duration window = (p.t_end - p.t_start) * 3 / 4;
      vcfg.vote_at =
          p.t_start +
          static_cast<sim::Duration>(
              static_cast<std::uint64_t>(window) * (v + 1) / (p.n_voters + 1));
    }
    NodeId id = host.add_node(std::make_unique<client::Voter>(vcfg),
                              "voter" + std::to_string(v));
    topo.voter_ids.push_back(id);
  }
  return topo;
}

ElectionRunner::ElectionRunner(RunnerConfig config)
    : cfg_(std::move(config)),
      artifacts_(ea::ea_setup({cfg_.params, cfg_.seed, false, 64})),
      sim_(cfg_.seed ^ 0x5151515151515151ull) {
  if (cfg_.tamper_setup) cfg_.tamper_setup(artifacts_);
  sim_.set_default_link(cfg_.link);
  topo_ = build_election(sim_, artifacts_, cfg_);
  for (std::size_t i : cfg_.crashed_vcs) sim_.crash(topo_.vc_ids.at(i));
  for (std::size_t i : cfg_.crashed_bbs) sim_.crash(topo_.bb_ids.at(i));
  for (std::size_t i : cfg_.crashed_trustees) {
    sim_.crash(topo_.trustee_ids.at(i));
  }
}

void ElectionRunner::run_to_completion() {
  sim_.start();
  sim_.run_until_idle();
}

vc::VcNode& ElectionRunner::vc_node(std::size_t i) {
  return dynamic_cast<vc::VcNode&>(sim_.process(topo_.vc_ids.at(i)));
}

bb::BbNode& ElectionRunner::bb_node(std::size_t i) {
  return dynamic_cast<bb::BbNode&>(sim_.process(topo_.bb_ids.at(i)));
}

trustee::TrusteeNode& ElectionRunner::trustee_node(std::size_t i) {
  return dynamic_cast<trustee::TrusteeNode&>(
      sim_.process(topo_.trustee_ids.at(i)));
}

client::Voter& ElectionRunner::voter(std::size_t i) {
  return dynamic_cast<client::Voter&>(sim_.process(topo_.voter_ids.at(i)));
}

std::vector<const bb::BbNode*> ElectionRunner::bb_views() const {
  std::vector<const bb::BbNode*> views;
  for (NodeId id : topo_.bb_ids) {
    if (!sim_.crashed(id)) {
      views.push_back(dynamic_cast<const bb::BbNode*>(
          &const_cast<sim::Simulation&>(sim_).process(id)));
    }
  }
  return views;
}

std::vector<std::uint64_t> ElectionRunner::expected_tally() const {
  std::vector<std::uint64_t> tally(cfg_.params.m(), 0);
  std::size_t voter_idx = 0;
  for (std::size_t v = 0; v < cfg_.params.n_voters; ++v) {
    if (topo_.effective_votes[v] == kAbstain) continue;
    const auto& voter = dynamic_cast<const client::Voter&>(
        const_cast<sim::Simulation&>(sim_).process(
            topo_.voter_ids[voter_idx]));
    if (voter.has_receipt()) ++tally[topo_.effective_votes[v]];
    ++voter_idx;
  }
  return tally;
}

}  // namespace ddemos::core
