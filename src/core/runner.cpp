#include "core/runner.hpp"

#include "util/error.hpp"

namespace ddemos::core {

using sim::NodeId;

ElectionRunner::ElectionRunner(RunnerConfig config)
    : cfg_(std::move(config)),
      artifacts_(ea::ea_setup({cfg_.params, cfg_.seed, false, 64})),
      sim_(cfg_.seed ^ 0x5151515151515151ull) {
  if (cfg_.tamper_setup) cfg_.tamper_setup(artifacts_);
  sim_.set_default_link(cfg_.link);
  const ElectionParams& p = cfg_.params;

  // Votes: fill defaults (round robin over options).
  effective_votes_ = cfg_.votes;
  effective_votes_.resize(p.n_voters, kAbstain);
  for (std::size_t i = cfg_.votes.size(); i < p.n_voters; ++i) {
    effective_votes_[i] = i % p.m();
  }

  // VC nodes take simulation ids 0..Nv-1 (the convention BB nodes use to
  // identify authenticated VC writers).
  std::vector<NodeId> vc_ids(p.n_vc), bb_ids(p.n_bb);
  for (std::size_t i = 0; i < p.n_vc; ++i) vc_ids[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    bb_ids[i] = static_cast<NodeId>(p.n_vc + i);
  }
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    std::shared_ptr<store::BallotDataSource> source;
    if (cfg_.store_factory) {
      source = cfg_.store_factory(artifacts_.vc_inits[i]);
    } else {
      source = std::make_shared<store::MemoryBallotSource>(
          artifacts_.vc_inits[i].ballots);
    }
    NodeId id = sim_.add_node(
        std::make_unique<vc::VcNode>(artifacts_.vc_inits[i], source, vc_ids,
                                     bb_ids, cfg_.vc_options),
        "vc" + std::to_string(i));
    vc_ids_.push_back(id);
  }
  for (std::size_t i = 0; i < p.n_bb; ++i) {
    NodeId id = sim_.add_node(
        std::make_unique<bb::BbNode>(artifacts_.bb_inits[i]),
        "bb" + std::to_string(i));
    bb_ids_.push_back(id);
  }
  for (std::size_t i = 0; i < p.n_trustees; ++i) {
    NodeId id = sim_.add_node(std::make_unique<trustee::TrusteeNode>(
                                  artifacts_.trustee_inits[i], bb_ids_),
                              "trustee" + std::to_string(i));
    trustee_ids_.push_back(id);
  }
  for (std::size_t v = 0; v < p.n_voters; ++v) {
    if (effective_votes_[v] == kAbstain) continue;
    client::Voter::Config vcfg = cfg_.voter_template;
    vcfg.ballot = artifacts_.voter_ballots[v];
    vcfg.option_index = effective_votes_[v];
    vcfg.vc_ids = vc_ids_;
    vcfg.seed = cfg_.seed * 1000003 + v;
    if (cfg_.vote_time) {
      vcfg.vote_at = cfg_.vote_time(v);
    } else {
      // Even spread over the first three quarters of the window.
      sim::Duration window = (p.t_end - p.t_start) * 3 / 4;
      vcfg.vote_at =
          p.t_start +
          static_cast<sim::Duration>(
              static_cast<std::uint64_t>(window) * (v + 1) / (p.n_voters + 1));
    }
    NodeId id = sim_.add_node(std::make_unique<client::Voter>(vcfg),
                              "voter" + std::to_string(v));
    voter_ids_.push_back(id);
  }
  for (std::size_t i : cfg_.crashed_vcs) sim_.crash(vc_ids_.at(i));
  for (std::size_t i : cfg_.crashed_bbs) sim_.crash(bb_ids_.at(i));
  for (std::size_t i : cfg_.crashed_trustees) sim_.crash(trustee_ids_.at(i));
}

void ElectionRunner::run_to_completion() {
  sim_.start();
  sim_.run_until_idle();
}

vc::VcNode& ElectionRunner::vc_node(std::size_t i) {
  return dynamic_cast<vc::VcNode&>(sim_.process(vc_ids_.at(i)));
}

bb::BbNode& ElectionRunner::bb_node(std::size_t i) {
  return dynamic_cast<bb::BbNode&>(sim_.process(bb_ids_.at(i)));
}

trustee::TrusteeNode& ElectionRunner::trustee_node(std::size_t i) {
  return dynamic_cast<trustee::TrusteeNode&>(
      sim_.process(trustee_ids_.at(i)));
}

client::Voter& ElectionRunner::voter(std::size_t i) {
  return dynamic_cast<client::Voter&>(sim_.process(voter_ids_.at(i)));
}

std::vector<const bb::BbNode*> ElectionRunner::bb_views() const {
  std::vector<const bb::BbNode*> views;
  for (NodeId id : bb_ids_) {
    if (!sim_.crashed(id)) {
      views.push_back(dynamic_cast<const bb::BbNode*>(
          &const_cast<sim::Simulation&>(sim_).process(id)));
    }
  }
  return views;
}

std::vector<std::uint64_t> ElectionRunner::expected_tally() const {
  std::vector<std::uint64_t> tally(cfg_.params.m(), 0);
  std::size_t voter_idx = 0;
  for (std::size_t v = 0; v < cfg_.params.n_voters; ++v) {
    if (effective_votes_[v] == kAbstain) continue;
    const auto& voter = dynamic_cast<const client::Voter&>(
        const_cast<sim::Simulation&>(sim_).process(voter_ids_[voter_idx]));
    if (voter.has_receipt()) ++tally[effective_votes_[v]];
    ++voter_idx;
  }
  return tally;
}

}  // namespace ddemos::core
