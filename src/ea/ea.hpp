// Election Authority: the setup-only trusted component (paper Section
// III-D). Produces the voters' paper ballots and the initialization data of
// every VC node, BB node and trustee, then is destroyed — nothing here runs
// during the election.
//
// Full mode generates the complete cryptographic payload (option-encoding
// commitments, ZK proof first moves, Pedersen-VSS trustee shares).
// vc_only mode generates just the vote-collection data (hashes, salts,
// receipt shares, msk shares) and is used by the large-scale benchmarks,
// matching the paper's evaluation which exercises vote collection with
// database-resident VC initialization data only.
#pragma once

#include <functional>
#include <span>

#include "core/types.hpp"

namespace ddemos::ea {

struct EaConfig {
  core::ElectionParams params;
  std::uint64_t seed = 0;
  bool vc_only = false;
  std::size_t consensus_rounds = 64;
};

struct SetupArtifacts {
  std::vector<core::Ballot> voter_ballots;        // sorted by serial
  std::vector<core::VcInit> vc_inits;             // one per VC node
  std::vector<core::BbInit> bb_inits;             // one per BB node
  std::vector<core::TrusteeInit> trustee_inits;   // one per trustee
};

// Validates the parameters (fault thresholds, option count) and produces
// all initialization data. Throws ProtocolError on invalid configs.
SetupArtifacts ea_setup(const EaConfig& config);

// Streaming variant for very large elections (vc_only mode required):
// common per-node data (keys, msk shares, coin deal) is returned, and
// per-ballot data is handed to `sink` one ballot at a time so millions of
// ballots never reside in memory (the benchmark writes them straight into
// DiskBallotSource builders). vc_inits in the returned artifacts have empty
// ballot vectors.
using BallotSink = std::function<void(const core::Ballot& ballot,
                                      std::span<core::VcBallotInit> per_vc)>;
SetupArtifacts ea_setup_streaming(const EaConfig& config,
                                  const BallotSink& sink);

// Merkle leaf for a receipt/msk share (shared with verification sites).
crypto::Hash32 share_leaf(const crypto::Share& share);

}  // namespace ddemos::ea
