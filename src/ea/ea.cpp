#include "ea/ea.hpp"

#include <algorithm>
#include <set>

#include "crypto/commit.hpp"
#include "crypto/rng.hpp"
#include "util/error.hpp"

namespace ddemos::ea {

using namespace core;

namespace {

void validate(const EaConfig& cfg) {
  const ElectionParams& p = cfg.params;
  if (p.options.size() < 2) throw ProtocolError("EA: need >= 2 options");
  if (p.n_vc < 3 * p.f_vc + 1) throw ProtocolError("EA: Nv >= 3*fv+1");
  if (p.n_bb < 2 * p.f_bb + 1) throw ProtocolError("EA: Nb >= 2*fb+1");
  if (p.h_trustees == 0 || p.h_trustees > p.n_trustees) {
    throw ProtocolError("EA: need 0 < ht <= Nt");
  }
  if (p.t_end <= p.t_start) throw ProtocolError("EA: empty election window");
  if (p.election_id.empty()) throw ProtocolError("EA: missing election id");
}

// Fisher-Yates with the EA's rng.
std::vector<std::size_t> permutation(std::size_t m, crypto::Rng& rng) {
  std::vector<std::size_t> pi(m);
  for (std::size_t i = 0; i < m; ++i) pi[i] = i;
  for (std::size_t i = m; i > 1; --i) {
    std::swap(pi[i - 1], pi[rng.below(i)]);
  }
  return pi;
}

}  // namespace

crypto::Hash32 share_leaf(const crypto::Share& share) {
  Writer w;
  w.u32(share.x);
  w.raw(share.y.to_bytes_be());
  return crypto::MerkleTree::leaf_hash(w.data());
}

SetupArtifacts ea_setup_streaming(const EaConfig& cfg,
                                  const BallotSink& sink) {
  if (!cfg.vc_only) {
    throw ProtocolError("ea_setup_streaming supports vc_only mode only");
  }
  validate(cfg);
  const ElectionParams& p = cfg.params;
  const std::size_t m = p.m();
  const std::size_t quorum = p.vc_quorum();
  crypto::Rng rng(cfg.seed);

  SetupArtifacts out;
  std::vector<crypto::KeyPair> vc_keys;
  std::vector<Bytes> vc_pubs;
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    vc_keys.push_back(crypto::schnorr_keygen(rng));
    vc_pubs.push_back(vc_keys.back().pk);
  }
  Bytes msk = rng.bytes(16);
  Bytes msk_padded(32, 0);
  std::copy(msk.begin(), msk.end(), msk_padded.begin() + 16);
  auto msk_shares = crypto::shamir_deal(
      crypto::Fn::from_bytes_mod(msk_padded), quorum, p.n_vc, rng);
  std::vector<crypto::Hash32> msk_leaves;
  for (const auto& s : msk_shares) msk_leaves.push_back(share_leaf(s));
  crypto::MerkleTree msk_tree(msk_leaves);
  consensus::CoinDeal coin_deal =
      consensus::deal_coins(p.n_vc, p.f_vc + 1, cfg.consensus_rounds, rng);

  out.vc_inits.resize(p.n_vc);
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    VcInit& vi = out.vc_inits[i];
    vi.params = p;
    vi.node_index = i;
    vi.signing_key = vc_keys[i].sk;
    vi.vc_public_keys = vc_pubs;
    vi.msk_share = msk_shares[i];
    vi.msk_share_path = msk_tree.path(i);
    vi.msk_share_root = msk_tree.root();
    vi.coin_shares = coin_deal.node_shares[i];
    vi.coin_roots = coin_deal.round_roots;
  }

  // Contiguous serials starting at 1: ballot `i` has serial `i + 1`, so
  // the dense instance numbering used by the batched vote-set consensus
  // and the VC nodes' serial-indexed state vectors is just `serial - 1`.
  std::vector<Serial> serials(p.n_voters);
  for (std::size_t i = 0; i < p.n_voters; ++i) serials[i] = i + 1;

  std::vector<VcBallotInit> per_vc(p.n_vc);
  for (Serial serial : serials) {
    Ballot ballot;
    ballot.serial = serial;
    std::set<Bytes> codes_in_ballot;
    for (auto& b : per_vc) {
      b = VcBallotInit{};
      b.serial = serial;
    }
    for (std::size_t part = 0; part < kNumParts; ++part) {
      BallotPart& bp = ballot.parts[part];
      bp.lines.resize(m);
      for (std::size_t opt = 0; opt < m; ++opt) {
        Bytes code;
        do {
          code = rng.bytes(kVoteCodeBytes);
        } while (!codes_in_ballot.insert(code).second);
        bp.lines[opt] = BallotLine{code, p.options[opt], rng.u64()};
      }
      std::vector<std::size_t> pi = permutation(m, rng);
      for (std::size_t i = 0; i < p.n_vc; ++i) per_vc[i].parts[part].resize(m);
      for (std::size_t opt = 0; opt < m; ++opt) {
        std::size_t pos = pi[opt];
        const BallotLine& line = bp.lines[opt];
        Bytes salt = rng.bytes(kSaltBytes);
        crypto::Hash32 code_hash = crypto::salted_commit(line.vote_code, salt);
        auto receipt_shares = crypto::shamir_deal(
            crypto::Fn::from_u64(line.receipt), quorum, p.n_vc, rng);
        std::vector<crypto::Hash32> leaves;
        for (const auto& s : receipt_shares) leaves.push_back(share_leaf(s));
        crypto::MerkleTree tree(leaves);
        for (std::size_t i = 0; i < p.n_vc; ++i) {
          VcLineInit& li = per_vc[i].parts[part][pos];
          li.code_hash = code_hash;
          li.salt = salt;
          li.receipt_share = receipt_shares[i];
          li.share_path = tree.path(i);
          li.share_root = tree.root();
        }
      }
    }
    sink(ballot, per_vc);
  }
  return out;
}

SetupArtifacts ea_setup(const EaConfig& cfg) {
  validate(cfg);
  const ElectionParams& p = cfg.params;
  const std::size_t m = p.m();
  const std::size_t quorum = p.vc_quorum();
  crypto::Rng rng(cfg.seed);

  SetupArtifacts out;

  // --- Keys -------------------------------------------------------------
  std::vector<crypto::KeyPair> vc_keys, trustee_keys;
  std::vector<Bytes> vc_pubs, trustee_pubs;
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    vc_keys.push_back(crypto::schnorr_keygen(rng));
    vc_pubs.push_back(vc_keys.back().pk);
  }
  for (std::size_t i = 0; i < p.n_trustees; ++i) {
    trustee_keys.push_back(crypto::schnorr_keygen(rng));
    trustee_pubs.push_back(trustee_keys.back().pk);
  }
  // Commitment key with unknown discrete log after setup: the EA samples
  // the exponent and discards it with itself.
  crypto::Point commit_key = crypto::ec_mul_g(crypto::random_scalar(rng));

  // --- msk and its shares -------------------------------------------------
  Bytes msk = rng.bytes(16);
  Bytes msk_padded(32, 0);
  std::copy(msk.begin(), msk.end(), msk_padded.begin() + 16);
  crypto::Fn msk_scalar = crypto::Fn::from_bytes_mod(msk_padded);
  auto msk_shares = crypto::shamir_deal(msk_scalar, quorum, p.n_vc, rng);
  std::vector<crypto::Hash32> msk_leaves;
  for (const auto& s : msk_shares) msk_leaves.push_back(share_leaf(s));
  crypto::MerkleTree msk_tree(msk_leaves);
  Bytes salt_msk = rng.bytes(kSaltBytes);
  crypto::Hash32 h_msk = crypto::msk_fingerprint(msk, salt_msk);

  // --- Common-coin deal for the vote-set consensus ------------------------
  consensus::CoinDeal coin_deal =
      consensus::deal_coins(p.n_vc, p.f_vc + 1, cfg.consensus_rounds, rng);

  // --- Per-node containers -------------------------------------------------
  out.vc_inits.resize(p.n_vc);
  for (std::size_t i = 0; i < p.n_vc; ++i) {
    VcInit& vi = out.vc_inits[i];
    vi.params = p;
    vi.node_index = i;
    vi.signing_key = vc_keys[i].sk;
    vi.vc_public_keys = vc_pubs;
    vi.msk_share = msk_shares[i];
    vi.msk_share_path = msk_tree.path(i);
    vi.msk_share_root = msk_tree.root();
    vi.coin_shares = coin_deal.node_shares[i];
    vi.coin_roots = coin_deal.round_roots;
    vi.ballots.reserve(p.n_voters);
  }
  if (!cfg.vc_only) {
    out.bb_inits.resize(p.n_bb);
    for (std::size_t i = 0; i < p.n_bb; ++i) {
      BbInit& bi = out.bb_inits[i];
      bi.params = p;
      bi.node_index = i;
      bi.commit_key = commit_key;
      bi.h_msk = h_msk;
      bi.salt_msk = salt_msk;
      bi.msk_share_root = msk_tree.root();
      bi.vc_public_keys = vc_pubs;
      bi.trustee_public_keys = trustee_pubs;
      bi.ballots.reserve(p.n_voters);
    }
    out.trustee_inits.resize(p.n_trustees);
    for (std::size_t i = 0; i < p.n_trustees; ++i) {
      TrusteeInit& ti = out.trustee_inits[i];
      ti.params = p;
      ti.node_index = i;
      ti.signing_key = trustee_keys[i].sk;
      ti.trustee_public_keys = trustee_pubs;
      ti.commit_key = commit_key;
      ti.ballots.reserve(p.n_voters);
    }
  }

  // --- Unique sorted serials ----------------------------------------------
  // Contiguous from 1, matching ea_setup_streaming above: instance index
  // and serial differ by exactly one everywhere in the system.
  std::vector<Serial> serials(p.n_voters);
  for (std::size_t i = 0; i < p.n_voters; ++i) serials[i] = i + 1;

  // --- Per-ballot generation ------------------------------------------------
  for (Serial serial : serials) {
    Ballot ballot;
    ballot.serial = serial;
    std::set<Bytes> codes_in_ballot;

    // Shared shuffled BB ballot skeletons (only used in full mode).
    BbBallotInit bb_ballot;
    bb_ballot.serial = serial;
    std::vector<TrusteeBallotInit*> trustee_ballots;
    if (!cfg.vc_only) {
      for (auto& ti : out.trustee_inits) {
        ti.ballots.push_back(TrusteeBallotInit{});
        ti.ballots.back().serial = serial;
        trustee_ballots.push_back(&ti.ballots.back());
      }
    }
    VcBallotInit vc_skeleton;
    vc_skeleton.serial = serial;
    std::vector<VcBallotInit> vc_ballots(p.n_vc, vc_skeleton);

    for (std::size_t part = 0; part < kNumParts; ++part) {
      BallotPart& bp = ballot.parts[part];
      bp.lines.resize(m);
      // Voter-visible lines in original option order.
      for (std::size_t opt = 0; opt < m; ++opt) {
        Bytes code;
        do {
          code = rng.bytes(kVoteCodeBytes);
        } while (!codes_in_ballot.insert(code).second);
        bp.lines[opt] =
            BallotLine{code, p.options[opt], rng.u64()};
      }
      std::vector<std::size_t> pi = permutation(m, rng);

      // VC line data at shuffled positions.
      for (std::size_t i = 0; i < p.n_vc; ++i) {
        vc_ballots[i].parts[part].resize(m);
      }
      if (!cfg.vc_only) {
        bb_ballot.parts[part].resize(m);
        for (auto* tb : trustee_ballots) tb->parts[part].resize(m);
      }
      for (std::size_t opt = 0; opt < m; ++opt) {
        std::size_t pos = pi[opt];
        const BallotLine& line = bp.lines[opt];
        Bytes salt = rng.bytes(kSaltBytes);
        crypto::Hash32 code_hash = crypto::salted_commit(line.vote_code, salt);
        auto receipt_shares = crypto::shamir_deal(
            crypto::Fn::from_u64(line.receipt), quorum, p.n_vc, rng);
        std::vector<crypto::Hash32> leaves;
        for (const auto& s : receipt_shares) leaves.push_back(share_leaf(s));
        crypto::MerkleTree tree(leaves);
        for (std::size_t i = 0; i < p.n_vc; ++i) {
          VcLineInit& li = vc_ballots[i].parts[part][pos];
          li.code_hash = code_hash;
          li.salt = salt;
          li.receipt_share = receipt_shares[i];
          li.share_path = tree.path(i);
          li.share_root = tree.root();
        }

        if (cfg.vc_only) continue;

        // --- BB cryptographic payload at the shuffled position ---------
        BbLineInit& bl = bb_ballot.parts[part][pos];
        bl.encrypted_vote_code =
            crypto::encrypt_vote_code(msk, line.vote_code, rng);
        std::vector<crypto::Fn> rs;
        for (std::size_t j = 0; j < m; ++j) {
          rs.push_back(crypto::random_scalar(rng));
        }
        bl.encoding = crypto::eg_commit_unit_vector(commit_key, m, opt, rs);
        crypto::Fn r_sum = crypto::Fn::zero();
        for (const auto& r : rs) r_sum = r_sum + r;

        // ZK proofs: first moves public, response coefficients shared.
        std::vector<crypto::BitProofSecrets> bit_secrets;
        for (std::size_t j = 0; j < m; ++j) {
          crypto::BitProof proof = crypto::prove_bit(
              commit_key, bl.encoding[j], j == opt, rs[j], rng);
          bl.bit_proofs.push_back(proof.first_move);
          bit_secrets.push_back(proof.secrets);
        }
        crypto::SumProof sum_proof = crypto::prove_sum(commit_key, r_sum, rng);
        bl.sum_proof = sum_proof.first_move;

        // Pedersen-VSS sharing of openings and ZK response coefficients.
        auto deal_to_trustees = [&](const crypto::Fn& secret) {
          return crypto::pedersen_vss_deal(secret, p.h_trustees, p.n_trustees,
                                           rng);
        };
        for (std::size_t j = 0; j < m; ++j) {
          crypto::Fn mj = (j == opt) ? crypto::Fn::one() : crypto::Fn::zero();
          auto dm = deal_to_trustees(mj);
          auto dr = deal_to_trustees(rs[j]);
          bl.opening_comms.push_back(dm.coefficient_comms);
          bl.opening_comms.push_back(dr.coefficient_comms);
          for (std::size_t t = 0; t < p.n_trustees; ++t) {
            trustee_ballots[t]->parts[part][pos].open_m.push_back(
                dm.shares[t]);
            trustee_ballots[t]->parts[part][pos].open_r.push_back(
                dr.shares[t]);
          }
          const crypto::AffineScalar* comps[4] = {
              &bit_secrets[j].c0, &bit_secrets[j].c1, &bit_secrets[j].z0,
              &bit_secrets[j].z1};
          std::array<crypto::PedersenDeal, 8> deals;
          for (int k = 0; k < 4; ++k) {
            deals[static_cast<std::size_t>(2 * k)] =
                deal_to_trustees(comps[k]->u);
            deals[static_cast<std::size_t>(2 * k + 1)] =
                deal_to_trustees(comps[k]->v);
          }
          for (const auto& d : deals) {
            bl.zk_comms.push_back(d.coefficient_comms);
          }
          for (std::size_t t = 0; t < p.n_trustees; ++t) {
            std::array<crypto::PedersenShare, 8> shares;
            for (std::size_t k = 0; k < 8; ++k) shares[k] = deals[k].shares[t];
            trustee_ballots[t]->parts[part][pos].zk_bits.push_back(shares);
          }
        }
        auto dsu = deal_to_trustees(sum_proof.z.u);
        auto dsv = deal_to_trustees(sum_proof.z.v);
        bl.zk_comms.push_back(dsu.coefficient_comms);
        bl.zk_comms.push_back(dsv.coefficient_comms);
        for (std::size_t t = 0; t < p.n_trustees; ++t) {
          trustee_ballots[t]->parts[part][pos].sum_u = dsu.shares[t];
          trustee_ballots[t]->parts[part][pos].sum_v = dsv.shares[t];
        }

        // Normalize every point of this line with ONE shared field
        // inversion (the unit-vector encoding already arrives normalized),
        // so the BB encode path skips its per-point inversions.
        auto for_each_line_point = [&bl](auto&& f) {
          for (auto& fm : bl.bit_proofs) {
            f(fm.t1_0);
            f(fm.t2_0);
            f(fm.t1_1);
            f(fm.t2_1);
          }
          f(bl.sum_proof.t1);
          f(bl.sum_proof.t2);
          for (auto& comms : bl.opening_comms) {
            for (auto& c : comms) f(c);
          }
          for (auto& comms : bl.zk_comms) {
            for (auto& c : comms) f(c);
          }
        };
        std::vector<crypto::Point> line_pts;
        for_each_line_point(
            [&line_pts](crypto::Point& q) { line_pts.push_back(q); });
        crypto::ec_normalize_batch(line_pts);
        std::size_t at = 0;
        for_each_line_point(
            [&line_pts, &at](crypto::Point& q) { q = line_pts[at++]; });
      }
    }

    out.voter_ballots.push_back(std::move(ballot));
    for (std::size_t i = 0; i < p.n_vc; ++i) {
      out.vc_inits[i].ballots.push_back(std::move(vc_ballots[i]));
    }
    if (!cfg.vc_only) {
      for (auto& bi : out.bb_inits) bi.ballots.push_back(bb_ballot);
    }
  }

  return out;
}

}  // namespace ddemos::ea
