#include "net/tcp_frame.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <mutex>

#include <cerrno>
#include <cstring>

#include "util/codec.hpp"
#include "util/error.hpp"

namespace ddemos::net {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         static_cast<std::uint64_t>(get_u32(in + 4)) << 32;
}

// A write to a peer-closed socket must surface as EPIPE from writev (the
// writer then redials), not kill the process. Installed once, from every
// socket-creating entry point.
void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

void FrameHeader::encode(std::uint8_t out[kWireSize]) const {
  put_u32(out, kFrameMagic);
  out[4] = static_cast<std::uint8_t>(kind);
  put_u32(out + 5, from);
  put_u32(out + 9, to);
  put_u64(out + 13, seq);
  put_u32(out + 21, len);
}

FrameHeader FrameHeader::decode(const std::uint8_t in[kWireSize]) {
  if (get_u32(in) != kFrameMagic) throw CodecError("tcp frame: bad magic");
  FrameHeader h;
  switch (in[4]) {
    case static_cast<std::uint8_t>(FrameKind::kHello):
    case static_cast<std::uint8_t>(FrameKind::kData):
    case static_cast<std::uint8_t>(FrameKind::kControl):
      h.kind = static_cast<FrameKind>(in[4]);
      break;
    default:
      throw CodecError("tcp frame: unknown kind");
  }
  h.from = get_u32(in + 5);
  h.to = get_u32(in + 9);
  h.seq = get_u64(in + 13);
  h.len = get_u32(in + 21);
  if (h.len > kMaxFramePayload) throw CodecError("tcp frame: oversized");
  return h;
}

Bytes HelloBody::encode() const {
  Writer w;
  w.u8(version);
  w.u32(process);
  w.u64(incarnation);
  w.bytes(election_id);
  return w.take();
}

HelloBody HelloBody::decode(BytesView payload) {
  Reader r(payload);
  HelloBody h;
  h.version = r.u8();
  h.process = r.u32();
  h.incarnation = r.u64();
  h.election_id = r.bytes();
  r.expect_done();
  return h;
}

int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port) {
  ignore_sigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ProtocolError("tcp_listen: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ProtocolError("tcp_listen: bad host " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    throw ProtocolError("tcp_listen: bind/listen failed: " +
                        std::string(std::strerror(err)));
  }
  if (bound_port) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      throw ProtocolError("tcp_listen: getsockname failed");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int tcp_dial(const std::string& host, std::uint16_t port) {
  ignore_sigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
  return true;
}

bool write_frame(int fd, const FrameHeader& header, BytesView payload) {
  std::uint8_t hdr[FrameHeader::kWireSize];
  FrameHeader h = header;
  h.len = static_cast<std::uint32_t>(payload.size());
  h.encode(hdr);
  iovec iov[2];
  iov[0].iov_base = hdr;
  iov[0].iov_len = sizeof(hdr);
  iov[1].iov_base = const_cast<std::uint8_t*>(payload.data());
  iov[1].iov_len = payload.size();
  std::size_t idx = 0, nvec = payload.empty() ? 1 : 2;
  while (idx < nvec) {
    ssize_t wrote = ::writev(fd, &iov[idx], static_cast<int>(nvec - idx));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(wrote);
    while (idx < nvec && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < nvec && left > 0) {
      iov[idx].iov_base = static_cast<std::uint8_t*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return true;
}

std::optional<std::pair<FrameHeader, Bytes>> read_frame(int fd) {
  std::uint8_t hdr[FrameHeader::kWireSize];
  if (!read_full(fd, hdr, sizeof(hdr))) return std::nullopt;
  FrameHeader h;
  try {
    h = FrameHeader::decode(hdr);
  } catch (const CodecError&) {
    return std::nullopt;  // malformed stream: treat as a dead connection
  }
  Bytes payload(h.len);
  if (h.len > 0 && !read_full(fd, payload.data(), payload.size())) {
    return std::nullopt;
  }
  return std::make_pair(h, std::move(payload));
}

}  // namespace ddemos::net
