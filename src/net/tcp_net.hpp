// Multi-process socket transport: the third sim::RuntimeHost. A TcpNet
// instance lives in one OS process of a cluster and hosts the subset of the
// election's nodes assigned to that process; every other node is a remote
// placeholder, and traffic to it rides TCP. The local half is ThreadNet's
// machinery verbatim — one worker thread per shard per node, lock-protected
// mailboxes of shared Buffer handles, real-clock timers through the shared
// sim::clamp_real_timer_delay bound, the same progress-notify completion
// wait — so shard-affine dispatch semantics are identical across all three
// backends.
//
// The remote half:
//  * one Connection per destination process, created lazily at first send,
//    with a bounded send queue and a dedicated writer thread. Enqueueing a
//    frame is a cheap Buffer handle copy (an N-process multicast still pays
//    one payload allocation); the writer scatter-writes header + shared
//    payload with writev.
//  * backpressure: when the queue is full the sender blocks up to
//    send_block_us for space, then drops the frame and counts it —
//    Context::send is documented unreliable, and D-DEMOS voters resubmit
//    on patience timeout, so dropping beats wedging a shard worker whose
//    peer died.
//  * handshake/reconnect: a writer dials with exponential backoff, sends a
//    HELLO (version, process index, election id) before any data, and on a
//    broken pipe redials and resends the in-flight frame. Receivers track
//    the last sequence number seen per source process (state on the
//    TcpNet, surviving reconnects) and drop seq <= last, making the resend
//    idempotent even for protocol steps that are not (VC->BB push).
//  * an accept thread + one reader thread per inbound connection validate
//    the HELLO (wrong election id or unknown process => connection closed)
//    and deliver data frames into the local shard mailboxes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/buffer.hpp"
#include "sim/runtime.hpp"

namespace ddemos::net {

using sim::Duration;
using sim::NodeId;
using sim::Process;
using sim::TimePoint;

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpConfig {
  // This process's index in the cluster (launcher convention: 0 = the
  // launcher/client process, 1..P = protocol node processes).
  std::uint32_t self_process = 0;
  // Rejects cross-election connections in the HELLO.
  Bytes election_id;
  // node_process[id] = hosting process for the protocol-node id prefix;
  // every id at or beyond the vector (voters, load generators) lives on
  // default_process.
  std::vector<std::uint32_t> node_process;
  std::uint32_t default_process = 0;
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  // 0 = ephemeral, see listen_port()
  // This process's incarnation, carried in the HELLO. A respawned process
  // (crash recovery) starts a fresh outbound sequence space; bumping the
  // incarnation tells receivers to reset their per-process dedup floor
  // instead of silently discarding every frame the newcomer sends.
  std::uint64_t incarnation = 1;
  // Added to now(): a respawned process resumes the cluster's original
  // time base (election-end timers are absolute offsets from start()), so
  // the launcher passes the age of the election here.
  Duration clock_offset_us = 0;
  // Send-side backpressure: per-connection queue bound and how long a
  // sender blocks for space before dropping the frame.
  std::size_t send_queue_frames = 4096;
  Duration send_block_us = 200'000;
  // Redial backoff window (doubles from min to max per failed dial).
  Duration dial_backoff_min_us = 2'000;
  Duration dial_backoff_max_us = 500'000;
};

class TcpNet final : public sim::RuntimeHost {
 public:
  // Binds the data listener immediately (so the ephemeral port can be
  // exchanged before any node exists) but accepts nothing until start().
  explicit TcpNet(TcpConfig cfg);
  ~TcpNet() override;

  TcpNet(const TcpNet&) = delete;
  TcpNet& operator=(const TcpNet&) = delete;

  // The bound data port (the configured one, or the ephemeral pick).
  std::uint16_t listen_port() const { return listen_port_; }
  // Address table, indexed by process; must cover every process that any
  // registered node maps to. Call before start().
  void set_peers(std::vector<TcpPeer> peers);

  // Hosts a node locally if its id maps to self_process; otherwise the
  // process is discarded and the id becomes a remote placeholder, so the
  // exact same build_election code path runs in every process of the
  // cluster and produces the same id/name assignment.
  NodeId add_node(std::unique_ptr<Process> proc, std::string name) override;
  // Registers a remote placeholder without constructing the node at all
  // (bench clusters skip building 10^6-ballot VC state client-side).
  NodeId add_remote(std::string name);
  bool is_local(NodeId id) const override;

  // Throws ProtocolError for a remote id (the node lives in another
  // process; callers must check is_local()).
  Process& process(NodeId id) override;
  const std::string& node_name(NodeId id) const override;
  std::size_t node_count() const override { return entries_.size(); }

  // on_start for local nodes on the caller's thread, then shard workers,
  // the accept thread, and reader threads spawn.
  void start() override;
  // Joins every worker/writer/reader thread and closes every socket.
  // Idempotent.
  void stop() override;

  // Wall-clock microseconds since start() (0 before the first start),
  // plus the configured clock offset (crash-recovery respawn).
  TimePoint now() const override;
  // Late override of TcpConfig::clock_offset_us: a respawned node process
  // learns the election's age from the GO body, after the node rebuild.
  // Call before start().
  void set_clock_offset(Duration offset_us) {
    cfg_.clock_offset_us = offset_us;
  }

  using sim::RuntimeHost::run_to_quiescence;
  bool run_to_quiescence(const std::function<bool()>& done,
                         const sim::RunOptions& options) override;

  std::vector<std::size_t> shard_queue_high_water(NodeId id) const override;

  std::uint64_t events_dispatched() const override {
    return dispatched_.load(std::memory_order_relaxed);
  }

  // Wakes a run_to_quiescence waiter whose predicate depends on state
  // outside the transport (launcher control-plane status updates).
  void notify_external() { notify_progress(); }

  // Fault injection: shuts down every established data socket (outbound
  // and inbound). Writers redial with backoff and resend the in-flight
  // frame; receiver-side dedup keeps the replay invisible to protocol
  // code.
  void sever_connections();

  // --- transport counters (monotonic; exact after stop()) ---
  std::uint64_t frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_received() const {
    return frames_received_.load(std::memory_order_relaxed);
  }
  // Frames dropped by send-side backpressure (full queue past the block
  // budget).
  std::uint64_t frames_dropped() const {
    return frames_dropped_.load(std::memory_order_relaxed);
  }
  // Successful re-dials after an established connection broke.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  // Frames suppressed by receive-side sequence dedup (reconnect replays).
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  class NodeContext;
  struct Mail {
    NodeId from;
    Buffer payload;
  };
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t token;
  };
  struct Shard {
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Mail> inbox;
    std::vector<Timer> timers;
    std::size_t inbox_high_water = 0;  // guarded by mu
  };
  struct LocalNode {
    std::unique_ptr<Process> proc;
    sim::ShardedProcess* sharded = nullptr;
    std::unique_ptr<NodeContext> ctx;
    std::vector<std::unique_ptr<Shard>> shards;
    std::atomic<std::uint64_t> next_token{1};
  };
  // NodeId -> name + local slot (or remote placeholder).
  struct Entry {
    std::string name;
    std::int32_t local = -1;  // index into locals_, -1 = remote
  };
  struct OutFrame {
    NodeId from, to;
    std::uint64_t seq;
    Buffer payload;
  };
  // One per destination process; owns the outbound socket and its writer.
  struct Connection {
    std::uint32_t process = 0;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv_space;  // senders wait for queue room
    std::condition_variable cv_data;   // writer waits for frames
    std::deque<OutFrame> queue;        // guarded by mu
    std::uint64_t next_seq = 1;        // guarded by mu
    int fd = -1;                       // guarded by mu (writer/sever/stop)
    bool stop = false;                 // guarded by mu
  };
  struct Inbound {
    int fd = -1;
    std::thread reader;
  };

  std::uint32_t process_of(NodeId id) const;
  void deliver_local(NodeId to, NodeId from, Buffer payload);
  void send_remote(NodeId from, NodeId to, Buffer payload);
  Connection& connection_to(std::uint32_t process);
  void writer_loop(Connection& conn);
  void accept_loop();
  void reader_loop(Inbound& in);
  void worker_loop(LocalNode& node, Shard& shard);
  void notify_progress();

  TcpConfig cfg_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<LocalNode>> locals_;
  std::vector<TcpPeer> peers_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::thread accept_thread_;

  // Outbound connections, keyed by destination process. The map is
  // populated lazily under conns_mu_; Connection objects are stable once
  // created (unique_ptr) so senders hold only the per-connection lock.
  std::mutex conns_mu_;
  std::map<std::uint32_t, std::unique_ptr<Connection>> conns_;

  // Inbound connections (accepted sockets + their reader threads).
  std::mutex inbound_mu_;
  std::vector<std::unique_ptr<Inbound>> inbound_;

  // Receive-side dedup: highest (incarnation, seq) seen per source
  // process. Lives here (not on the connection) so it survives
  // reconnects; a HELLO carrying a higher incarnation (the peer process
  // was respawned after a crash and restarts its sequence space at 1)
  // resets that process's floor, while a stale lower incarnation is
  // rejected at handshake.
  std::mutex last_seq_mu_;
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> last_seq_;

  std::chrono::steady_clock::time_point epoch_;
  bool started_once_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> progress_waiters_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::mutex progress_mu_;
  std::condition_variable progress_cv_;

  friend class NodeContext;
};

}  // namespace ddemos::net
