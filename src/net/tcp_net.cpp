#include "net/tcp_net.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "net/tcp_frame.hpp"
#include "util/error.hpp"

namespace ddemos::net {

class TcpNet::NodeContext final : public sim::Context {
 public:
  NodeContext(TcpNet* net, NodeId id) : net_(net), id_(id) {}

  void send(NodeId to, Buffer payload) override {
    if (net_->process_of(to) == net_->cfg_.self_process) {
      net_->deliver_local(to, id_, std::move(payload));
    } else {
      net_->send_remote(id_, to, std::move(payload));
    }
  }

  // Intra-node coordination never touches the network.
  void send_self(Buffer payload) override {
    net_->deliver_local(id_, id_, std::move(payload));
  }

  std::uint64_t set_timer(Duration after) override {
    const Entry& e = net_->entries_.at(id_);
    LocalNode& n = *net_->locals_.at(static_cast<std::size_t>(e.local));
    after = sim::clamp_real_timer_delay(after);
    // Timers fire on shard 0 (the control shard; see sim::Context).
    Shard& s = *n.shards.front();
    std::uint64_t token = n.next_token.fetch_add(1, std::memory_order_relaxed);
    {
      std::scoped_lock lk(s.mu);
      s.timers.push_back(Timer{std::chrono::steady_clock::now() +
                                   std::chrono::microseconds(after),
                               token});
    }
    s.cv.notify_all();
    return token;
  }

  TimePoint now() const override {
    return net_->cfg_.clock_offset_us +
           std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - net_->epoch_)
               .count();
  }
  NodeId self() const override { return id_; }
  void charge(Duration) override {}  // real CPU time is real here

 private:
  TcpNet* net_;
  NodeId id_;
};

TcpNet::TcpNet(TcpConfig cfg) : cfg_(std::move(cfg)) {
  listen_fd_ = tcp_listen(cfg_.listen_host, cfg_.listen_port, &listen_port_);
}

TcpNet::~TcpNet() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpNet::set_peers(std::vector<TcpPeer> peers) {
  if (running_.load(std::memory_order_acquire)) {
    throw ProtocolError("TcpNet: set_peers after start");
  }
  peers_ = std::move(peers);
}

std::uint32_t TcpNet::process_of(NodeId id) const {
  if (id < cfg_.node_process.size()) return cfg_.node_process[id];
  return cfg_.default_process;
}

NodeId TcpNet::add_node(std::unique_ptr<Process> proc, std::string name) {
  if (running_.load(std::memory_order_acquire)) {
    throw ProtocolError("TcpNet: add_node after start");
  }
  NodeId id = static_cast<NodeId>(entries_.size());
  if (process_of(id) != cfg_.self_process) {
    // Remote placeholder: the same build code path runs in every process,
    // so ids/names stay aligned; only the locally hosted nodes are kept.
    entries_.push_back(Entry{std::move(name), -1});
    return id;
  }
  auto node = std::make_unique<LocalNode>();
  node->proc = std::move(proc);
  node->sharded = dynamic_cast<sim::ShardedProcess*>(node->proc.get());
  node->ctx = std::make_unique<NodeContext>(this, id);
  node->proc->bind(node->ctx.get());
  std::size_t shards =
      node->sharded ? std::max<std::size_t>(node->sharded->shard_count(), 1)
                    : 1;
  node->shards.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    node->shards.push_back(std::make_unique<Shard>());
  }
  entries_.push_back(
      Entry{std::move(name), static_cast<std::int32_t>(locals_.size())});
  locals_.push_back(std::move(node));
  return id;
}

NodeId TcpNet::add_remote(std::string name) {
  if (running_.load(std::memory_order_acquire)) {
    throw ProtocolError("TcpNet: add_remote after start");
  }
  NodeId id = static_cast<NodeId>(entries_.size());
  if (process_of(id) == cfg_.self_process) {
    throw ProtocolError("TcpNet: add_remote for a locally hosted id");
  }
  entries_.push_back(Entry{std::move(name), -1});
  return id;
}

bool TcpNet::is_local(NodeId id) const {
  return id < entries_.size() && entries_[id].local >= 0;
}

Process& TcpNet::process(NodeId id) {
  const Entry& e = entries_.at(id);
  if (e.local < 0) {
    throw ProtocolError("TcpNet: node '" + e.name +
                        "' is hosted by another process");
  }
  return *locals_.at(static_cast<std::size_t>(e.local))->proc;
}

const std::string& TcpNet::node_name(NodeId id) const {
  return entries_.at(id).name;
}

void TcpNet::deliver_local(NodeId to, NodeId from, Buffer payload) {
  if (to >= entries_.size() || entries_[to].local < 0) return;  // drop
  LocalNode& n = *locals_[static_cast<std::size_t>(entries_[to].local)];
  std::size_t shard = 0;
  if (n.sharded) {
    shard = n.sharded->shard_of(from, payload);
    if (shard >= n.shards.size()) shard = 0;
  }
  Shard& s = *n.shards[shard];
  {
    std::scoped_lock lk(s.mu);
    s.inbox.push_back(Mail{from, std::move(payload)});
    s.inbox_high_water = std::max(s.inbox_high_water, s.inbox.size());
  }
  s.cv.notify_all();
}

TcpNet::Connection& TcpNet::connection_to(std::uint32_t process) {
  std::scoped_lock lk(conns_mu_);
  auto it = conns_.find(process);
  if (it != conns_.end()) return *it->second;
  if (process >= peers_.size()) {
    throw ProtocolError("TcpNet: no peer address for process " +
                        std::to_string(process));
  }
  auto conn = std::make_unique<Connection>();
  conn->process = process;
  Connection& ref = *conn;
  conns_.emplace(process, std::move(conn));
  ref.writer = std::thread([this, &ref] { writer_loop(ref); });
  return ref;
}

void TcpNet::send_remote(NodeId from, NodeId to, Buffer payload) {
  Connection& conn = connection_to(process_of(to));
  std::unique_lock lk(conn.mu);
  if (conn.queue.size() >= cfg_.send_queue_frames) {
    // Backpressure: block briefly for space, then drop. Context::send is
    // documented unreliable; wedging a shard worker on a dead peer would
    // trade a resubmittable message for cluster liveness.
    conn.cv_space.wait_for(
        lk, std::chrono::microseconds(cfg_.send_block_us), [&] {
          return conn.stop || conn.queue.size() < cfg_.send_queue_frames;
        });
    if (conn.stop || conn.queue.size() >= cfg_.send_queue_frames) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (conn.stop) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The sequence number is fixed at enqueue time and travels with the
  // frame through any number of resends, which is what makes reconnect
  // replays detectable at the receiver.
  conn.queue.push_back(OutFrame{from, to, conn.next_seq++, std::move(payload)});
  lk.unlock();
  conn.cv_data.notify_all();
}

void TcpNet::writer_loop(Connection& conn) {
  const TcpPeer peer = peers_.at(conn.process);
  Duration backoff = cfg_.dial_backoff_min_us;
  bool ever_connected = false;
  std::unique_lock lk(conn.mu);
  for (;;) {
    conn.cv_data.wait(lk, [&] { return conn.stop || !conn.queue.empty(); });
    if (conn.stop) break;
    if (conn.fd < 0) {
      lk.unlock();
      int fd = tcp_dial(peer.host, peer.port);
      if (fd >= 0) {
        // HELLO before any data: the receiver needs the source process for
        // sequence dedup and rejects cross-election connections outright.
        FrameHeader h;
        h.kind = FrameKind::kHello;
        h.from = cfg_.self_process;
        Bytes hello = HelloBody{kFrameVersion, cfg_.self_process,
                                cfg_.incarnation, cfg_.election_id}
                          .encode();
        if (!write_frame(fd, h, hello)) {
          ::close(fd);
          fd = -1;
        }
      }
      if (fd < 0) {
        // Exponential-backoff redial, sliced so stop() stays responsive.
        Duration slept = 0;
        while (slept < backoff && !stop_.load(std::memory_order_acquire)) {
          Duration slice = std::min<Duration>(backoff - slept, 10'000);
          std::this_thread::sleep_for(std::chrono::microseconds(slice));
          slept += slice;
        }
        backoff = std::min(backoff * 2, cfg_.dial_backoff_max_us);
        lk.lock();
        continue;
      }
      if (ever_connected) reconnects_.fetch_add(1, std::memory_order_relaxed);
      ever_connected = true;
      backoff = cfg_.dial_backoff_min_us;
      lk.lock();
      if (conn.stop) {
        ::close(fd);
        break;
      }
      conn.fd = fd;
    }
    // Keep the in-flight frame at the head of the queue until the write
    // succeeds: a broken pipe redials and resends it (the receiver's seq
    // dedup absorbs the case where the peer already processed it).
    OutFrame frame = conn.queue.front();
    int fd = conn.fd;
    lk.unlock();
    FrameHeader h;
    h.kind = FrameKind::kData;
    h.from = frame.from;
    h.to = frame.to;
    h.seq = frame.seq;
    bool ok = write_frame(fd, h, frame.payload.view());
    lk.lock();
    if (ok) {
      if (!conn.queue.empty() && conn.queue.front().seq == frame.seq) {
        conn.queue.pop_front();
      }
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      conn.cv_space.notify_all();
      lk.lock();
    } else if (conn.fd == fd) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void TcpNet::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::scoped_lock lk(inbound_mu_);
    auto in = std::make_unique<Inbound>();
    in->fd = fd;
    Inbound& ref = *in;
    inbound_.push_back(std::move(in));
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
  }
}

void TcpNet::reader_loop(Inbound& in) {
  const int fd = in.fd;
  // The reader is the only closer of an inbound fd; sever/stop just
  // shutdown() it. Closing under inbound_mu_ keeps their fd>=0 checks
  // from racing a concurrent close + fd-number reuse.
  auto close_in = [&] {
    std::scoped_lock lk(inbound_mu_);
    ::close(fd);
    in.fd = -1;
  };
  // First frame must be a valid HELLO for this election.
  std::uint32_t peer_process = 0;
  std::uint64_t peer_incarnation = 0;
  {
    auto first = read_frame(fd);
    if (!first || first->first.kind != FrameKind::kHello) {
      close_in();
      return;
    }
    try {
      HelloBody hello = HelloBody::decode(first->second);
      if (hello.version != kFrameVersion ||
          hello.election_id != cfg_.election_id) {
        throw CodecError("tcp hello: wrong election/version");
      }
      peer_process = hello.process;
      peer_incarnation = hello.incarnation;
    } catch (const CodecError&) {
      close_in();
      return;
    }
    // A respawned peer restarts its sequence space at 1 under a higher
    // incarnation: reset its dedup floor so its fresh traffic is not
    // silently swallowed. A *lower* incarnation is a stale pre-crash
    // socket racing the respawn — refuse it outright.
    bool stale = false;
    {
      std::scoped_lock lk(last_seq_mu_);
      auto& [inc, last] = last_seq_[peer_process];
      if (peer_incarnation > inc) {
        inc = peer_incarnation;
        last = 0;
      } else if (peer_incarnation < inc) {
        stale = true;
      }
    }
    if (stale) {
      close_in();
      return;
    }
  }
  while (auto frame = read_frame(fd)) {
    if (frame->first.kind != FrameKind::kData) continue;
    {
      // Reconnect replay suppression: the per-source high-water mark lives
      // on the TcpNet (not the connection) so it survives redials.
      std::scoped_lock lk(last_seq_mu_);
      auto& [inc, last] = last_seq_[peer_process];
      if (inc != peer_incarnation) break;  // superseded by a respawn
      if (frame->first.seq <= last) {
        duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      last = frame->first.seq;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    deliver_local(frame->first.to, frame->first.from,
                  Buffer(std::move(frame->second)));
  }
  close_in();
}

void TcpNet::start() {
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  epoch_ = std::chrono::steady_clock::now();
  started_once_ = true;
  // Accept before on_start: a peer that started first may already be
  // dialing, and its pre-start traffic must queue in mailboxes, not get
  // connection-refused into a redial cycle.
  accept_thread_ = std::thread([this] { accept_loop(); });
  // on_start on this thread, before any shard worker exists (identical to
  // ThreadNet): a worker can never dispatch into an unstarted process.
  // Reader threads may already enqueue mail — it just sits in mailboxes.
  for (auto& node : locals_) node->proc->on_start();
  for (auto& node : locals_) {
    for (auto& shard : node->shards) {
      shard->worker = std::thread(
          [this, n = node.get(), s = shard.get()] { worker_loop(*n, *s); });
    }
  }
}

TimePoint TcpNet::now() const {
  if (!started_once_) return cfg_.clock_offset_us;
  return cfg_.clock_offset_us +
         std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
             .count();
}

std::vector<std::size_t> TcpNet::shard_queue_high_water(NodeId id) const {
  if (id >= entries_.size() || entries_[id].local < 0) return {};
  const LocalNode& n = *locals_[static_cast<std::size_t>(entries_[id].local)];
  std::vector<std::size_t> out;
  out.reserve(n.shards.size());
  for (auto& shard : n.shards) {
    std::scoped_lock lk(shard->mu);
    out.push_back(shard->inbox_high_water);
  }
  return out;
}

void TcpNet::notify_progress() {
  if (progress_waiters_.load(std::memory_order_acquire) == 0) return;
  std::unique_lock lk(progress_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;
  lk.unlock();
  progress_cv_.notify_all();
}

bool TcpNet::run_to_quiescence(const std::function<bool()>& done,
                               const sim::RunOptions& options) {
  if (!done) {
    throw ProtocolError(
        "TcpNet::run_to_quiescence requires a completion predicate");
  }
  if (!running_.load(std::memory_order_acquire)) {
    if (started_once_) {
      throw ProtocolError("TcpNet: cannot run_to_quiescence after stop");
    }
    start();
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(options.wall_timeout_us);
  struct WaiterGuard {
    std::atomic<int>& count;
    explicit WaiterGuard(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~WaiterGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } guard(progress_waiters_);
  std::unique_lock lk(progress_mu_);
  for (;;) {
    if (options.probe) options.probe();
    if (done()) return true;
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return done();
    // Bounded wait: remote completion signals arrive over the control
    // socket (notify_external), local ones from workers; neither is
    // guaranteed to land after this waiter registered, so cap the sleep.
    progress_cv_.wait_until(
        lk, std::min(deadline, now + std::chrono::milliseconds(100)));
  }
}

void TcpNet::sever_connections() {
  {
    std::scoped_lock lk(conns_mu_);
    for (auto& [proc, conn] : conns_) {
      std::scoped_lock cl(conn->mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    std::scoped_lock lk(inbound_mu_);
    for (auto& in : inbound_) {
      if (in->fd >= 0) ::shutdown(in->fd, SHUT_RDWR);
    }
  }
}

void TcpNet::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  // 1. Shard workers: wake and join, so node state settles first.
  for (auto& node : locals_) {
    for (auto& shard : node->shards) {
      std::scoped_lock lk(shard->mu);
      shard->cv.notify_all();
    }
  }
  for (auto& node : locals_) {
    for (auto& shard : node->shards) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }
  // 2. Outbound writers: flag, shut the socket under the write, wake, join.
  {
    std::scoped_lock lk(conns_mu_);
    for (auto& [proc, conn] : conns_) {
      {
        std::scoped_lock cl(conn->mu);
        conn->stop = true;
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      }
      conn->cv_data.notify_all();
      conn->cv_space.notify_all();
    }
    for (auto& [proc, conn] : conns_) {
      if (conn->writer.joinable()) conn->writer.join();
    }
  }
  // 3. Accept loop (polls stop_ every 100ms), then inbound readers.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::scoped_lock lk(inbound_mu_);
    for (auto& in : inbound_) {
      if (in->fd >= 0) ::shutdown(in->fd, SHUT_RDWR);
    }
  }
  // Readers remove themselves via read_frame() returning nullopt; the
  // vector itself is only mutated by the (joined) accept thread.
  for (auto& in : inbound_) {
    if (in->reader.joinable()) in->reader.join();
  }
  running_.store(false, std::memory_order_release);
}

void TcpNet::worker_loop(LocalNode& node, Shard& shard) {
  std::unique_lock lk(shard.mu);
  while (!stop_.load(std::memory_order_acquire)) {
    auto now = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> due;
    for (auto it = shard.timers.begin(); it != shard.timers.end();) {
      if (it->due <= now) {
        due.push_back(it->token);
        it = shard.timers.erase(it);
      } else {
        ++it;
      }
    }
    for (std::uint64_t token : due) {
      lk.unlock();
      node.proc->on_timer(token);
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      notify_progress();
      lk.lock();
    }
    if (!shard.inbox.empty()) {
      Mail m = std::move(shard.inbox.front());
      shard.inbox.pop_front();
      lk.unlock();
      node.proc->on_message(m.from, m.payload);
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      notify_progress();
      lk.lock();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (shard.timers.empty()) {
      shard.cv.wait_for(lk, std::chrono::milliseconds(50));
    } else {
      auto next = std::min_element(shard.timers.begin(), shard.timers.end(),
                                   [](const Timer& a, const Timer& b) {
                                     return a.due < b.due;
                                   })
                      ->due;
      shard.cv.wait_until(lk, next);
    }
  }
}

}  // namespace ddemos::net
