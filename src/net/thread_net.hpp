// Real multi-threaded in-process transport hosting the same Process state
// machines as the simulator: one worker thread per shard per node (plain
// Processes have a single shard), lock-protected per-shard mailboxes of
// shared Buffer handles, real wall-clock timers. Delivery is shard-affine:
// the sender thread asks a ShardedProcess which shard owns the message
// (keyed off the serial in the message header for VC nodes), so handlers
// for distinct shards run genuinely in parallel while same-shard handlers
// stay serialized — no locks on the per-ballot hot path. Used by
// integration tests, the fig5a shard sweep and examples to demonstrate the
// protocol under genuine concurrency; the simulator is used where
// determinism or scale is needed. Implements sim::RuntimeHost so election
// builders can target either backend through one interface.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/runtime.hpp"

namespace ddemos::net {

using sim::Duration;
using sim::NodeId;
using sim::Process;
using sim::TimePoint;

class ThreadNet final : public sim::RuntimeHost {
 public:
  ThreadNet();
  ~ThreadNet() override;

  ThreadNet(const ThreadNet&) = delete;
  ThreadNet& operator=(const ThreadNet&) = delete;

  NodeId add_node(std::unique_ptr<Process> proc, std::string name) override;
  Process& process(NodeId id) override;
  const std::string& node_name(NodeId id) const override;
  std::size_t node_count() const override { return nodes_.size(); }

  // Delivers on_start to every node (on the caller's thread, so no shard
  // worker observes a message before its node started), then spawns one
  // worker thread per shard per node.
  void start() override;
  // Signals all workers and joins them. Idempotent: a second (or later)
  // call after completion is a no-op.
  void stop() override;

  // Wall-clock microseconds since start() (0 before the first start).
  sim::TimePoint now() const override;

  // Completion wait: blocks on a condition variable that every worker
  // signals after each handler invocation, re-evaluating `done` on each
  // wakeup — no sleep-and-poll. Requires a predicate (this backend has no
  // notion of natural quiescence: trustees poll forever). Returns false if
  // the wall-clock budget elapses first. `done` reads node state while
  // workers still run; it must restrict itself to monotonic completion
  // flags (result_published, push_complete, has_receipt).
  using sim::RuntimeHost::run_to_quiescence;
  bool run_to_quiescence(const std::function<bool()>& done,
                         const sim::RunOptions& options) override;

  // Largest inbox depth each shard of `id` ever reached (index = shard).
  // Meaningful after stop(); reading it mid-run is racy and only
  // approximate.
  std::vector<std::size_t> shard_queue_high_water(NodeId id) const override;

  // Handler invocations (messages + timers) dispatched across all workers.
  // Exact after stop(); a mid-run read is a consistent lower bound.
  std::uint64_t events_dispatched() const override {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  class NodeContext;
  struct Mail {
    NodeId from;
    Buffer payload;  // refcounted: multicast senders share one allocation
  };
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t token;
  };
  // One mailbox + worker per shard. The shard mutex only guards the
  // inbox/timer containers (enqueue vs. drain); handler execution itself
  // is exclusive per shard by construction — exactly one worker drains a
  // shard — so process state partitioned by shard needs no locking.
  struct Shard {
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Mail> inbox;
    std::vector<Timer> timers;
    std::size_t inbox_high_water = 0;  // guarded by mu
  };
  struct Node {
    std::unique_ptr<Process> proc;
    // Non-null when proc is a ShardedProcess (cached dynamic_cast).
    sim::ShardedProcess* sharded = nullptr;
    std::unique_ptr<NodeContext> ctx;
    std::string name;
    std::vector<std::unique_ptr<Shard>> shards;
    // Timer tokens are node-wide (handlers compare them across shards);
    // atomic because any shard worker may arm a timer.
    std::atomic<std::uint64_t> next_token{1};
  };

  void worker_loop(Node& node, Shard& shard);
  void deliver(NodeId to, NodeId from, Buffer payload);
  // Wakes any run_to_quiescence waiter; called by workers after each
  // handler so completion predicates are re-checked promptly. Locking and
  // releasing progress_mu_ orders the worker's preceding state writes
  // before the waiter's predicate evaluation.
  void notify_progress();

  std::vector<std::unique_ptr<Node>> nodes_;
  std::chrono::steady_clock::time_point epoch_;
  bool started_once_ = false;
  // Read by every worker thread without holding a node lock; stop() also
  // flips stop_ from outside the workers, so both must be atomic.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  // Number of run_to_quiescence waiters; workers skip the notify entirely
  // (no lock, no syscall) while it is zero, keeping the per-handler cost
  // of the completion-wait machinery off the transport's hot path.
  std::atomic<int> progress_waiters_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::mutex progress_mu_;
  std::condition_variable progress_cv_;

  friend class NodeContext;
};

}  // namespace ddemos::net
