// Real multi-threaded in-process transport hosting the same Process state
// machines as the simulator: one worker thread per node, lock-protected
// mailboxes of shared Buffer handles, real wall-clock timers. Used by
// integration tests and examples to demonstrate the protocol under genuine
// concurrency; the simulator is used where determinism or scale is needed.
// Implements sim::RuntimeHost so election builders can target either
// backend through one interface.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/runtime.hpp"

namespace ddemos::net {

using sim::Duration;
using sim::NodeId;
using sim::Process;
using sim::TimePoint;

class ThreadNet final : public sim::RuntimeHost {
 public:
  ThreadNet();
  ~ThreadNet() override;

  ThreadNet(const ThreadNet&) = delete;
  ThreadNet& operator=(const ThreadNet&) = delete;

  NodeId add_node(std::unique_ptr<Process> proc, std::string name) override;
  Process& process(NodeId id) override;
  const std::string& node_name(NodeId id) const override;
  std::size_t node_count() const override { return nodes_.size(); }

  // Spawns one worker thread per node and delivers on_start.
  void start() override;
  // Signals all workers and joins them. Safe to call twice.
  void stop();

  // Convenience for tests: sleep while workers run.
  static void sleep_ms(int ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

 private:
  class NodeContext;
  struct Mail {
    NodeId from;
    Buffer payload;  // refcounted: multicast senders share one allocation
  };
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t token;
  };
  struct Node {
    std::unique_ptr<Process> proc;
    std::unique_ptr<NodeContext> ctx;
    std::string name;
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Mail> inbox;
    std::vector<Timer> timers;
    std::uint64_t next_token = 1;
  };

  void worker_loop(Node& node);
  void deliver(NodeId to, NodeId from, Buffer payload);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::chrono::steady_clock::time_point epoch_;
  // Read by every worker thread without holding a node lock; stop() also
  // flips stop_ from outside the workers, so both must be atomic.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  friend class NodeContext;
};

}  // namespace ddemos::net
