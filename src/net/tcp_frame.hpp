// Wire framing and blocking-socket plumbing for TcpNet. Every byte on a
// D-DEMOS TCP connection is a length-prefixed frame: a fixed 25-byte header
// (magic, kind, source/destination node, per-peer sequence number, payload
// length) followed by the payload. Data frames carry exactly the bytes of
// one net::Buffer payload — the transport never re-encodes protocol
// messages, it scatter-writes the header from the stack and the shared
// payload allocation straight out of the Buffer (writev), so an N-process
// multicast still costs one serialization.
//
// Hello frames open every connection: protocol version, the sending
// process index, and the election id, so a node never accepts traffic from
// a different election or a stale cluster incarnation. Sequence numbers
// are per (source process -> destination process) and strictly increasing;
// the receiver drops seq <= last-seen, which makes the sender's
// resend-the-in-flight-frame reconnect policy idempotent (the D-DEMOS
// VC->BB vote-set submission is not duplicate-safe, so dedup lives here in
// the transport).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/bytes.hpp"

namespace ddemos::net {

inline constexpr std::uint32_t kFrameMagic = 0x44444d53;  // "DDMS"
// v2 added the sender incarnation to the HELLO (crash-recovery respawn:
// a restarted process restarts its sequence space, and the incarnation
// is what lets receivers reset their dedup floor for it).
inline constexpr std::uint8_t kFrameVersion = 2;
// Upper bound on a single frame payload; a header announcing more than
// this is treated as a malformed stream and the connection is dropped.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameKind : std::uint8_t {
  kHello = 1,    // connection opener: HelloBody payload
  kData = 2,     // one protocol message: raw net::Buffer bytes
  kControl = 3,  // launcher control plane: opcode byte + body
};

struct FrameHeader {
  FrameKind kind = FrameKind::kData;
  std::uint32_t from = 0;  // sending NodeId (kData) or process (kControl)
  std::uint32_t to = 0;    // destination NodeId (kData)
  std::uint64_t seq = 0;   // per (src process -> dst process), kData only
  std::uint32_t len = 0;   // payload bytes following the header

  static constexpr std::size_t kWireSize = 4 + 1 + 4 + 4 + 8 + 4;

  void encode(std::uint8_t out[kWireSize]) const;
  // Throws CodecError on bad magic, unknown kind, or oversized length.
  static FrameHeader decode(const std::uint8_t in[kWireSize]);
};

struct HelloBody {
  std::uint8_t version = kFrameVersion;
  std::uint32_t process = 0;  // sender's process index in the cluster
  // Monotonic per-process across respawns: 1 for the original launch, +1
  // for every crash-recovery respawn. Receivers reset the sender's seq
  // dedup floor when it rises and reject connections when it falls (a
  // stale pre-crash socket racing the respawn).
  std::uint64_t incarnation = 1;
  Bytes election_id;

  Bytes encode() const;
  static HelloBody decode(BytesView payload);  // throws CodecError
};

// --- blocking POSIX socket helpers (loopback/LAN, IPv4) ---

// Binds + listens on host:port (port 0 = ephemeral) and returns the
// listening fd; the actually bound port lands in *bound_port. Throws
// ProtocolError on failure.
int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port);

// Connects to host:port with TCP_NODELAY; returns -1 on failure (callers
// redial with backoff, so failure is normal, not exceptional).
int tcp_dial(const std::string& host, std::uint16_t port);

// Reads exactly n bytes; false on EOF/error (connection is dead).
bool read_full(int fd, void* buf, std::size_t n);

// Writes header + payload with writev, looping over partial writes; false
// on error. The payload bytes are borrowed (the caller's Buffer stays
// alive across the call), never copied.
bool write_frame(int fd, const FrameHeader& header, BytesView payload);

// Reads one complete frame (header + payload). Empty optional on EOF or
// any stream error, including a malformed header.
std::optional<std::pair<FrameHeader, Bytes>> read_frame(int fd);

}  // namespace ddemos::net
