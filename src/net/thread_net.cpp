#include "net/thread_net.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ddemos::net {

class ThreadNet::NodeContext final : public sim::Context {
 public:
  NodeContext(ThreadNet* net, NodeId id) : net_(net), id_(id) {}

  void send(NodeId to, Buffer payload) override {
    net_->deliver(to, id_, std::move(payload));
  }

  std::uint64_t set_timer(Duration after) override {
    Node& n = *net_->nodes_.at(id_);
    // Only this node's worker thread calls set_timer, but stop()/start()
    // also touch the timer list, so take the lock.
    std::scoped_lock lk(n.mu);
    std::uint64_t token = n.next_token++;
    n.timers.push_back(
        Timer{std::chrono::steady_clock::now() +
                  std::chrono::microseconds(after),
              token});
    n.cv.notify_all();
    return token;
  }

  TimePoint now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - net_->epoch_)
        .count();
  }
  NodeId self() const override { return id_; }
  void charge(Duration) override {}  // real CPU time is real here

 private:
  ThreadNet* net_;
  NodeId id_;
};

ThreadNet::ThreadNet() = default;
ThreadNet::~ThreadNet() { stop(); }

NodeId ThreadNet::add_node(std::unique_ptr<Process> proc, std::string name) {
  if (running_.load(std::memory_order_acquire)) {
    throw ProtocolError("ThreadNet: add_node after start");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  auto node = std::make_unique<Node>();
  node->proc = std::move(proc);
  node->ctx = std::make_unique<NodeContext>(this, id);
  node->name = std::move(name);
  node->proc->bind(node->ctx.get());
  nodes_.push_back(std::move(node));
  return id;
}

Process& ThreadNet::process(NodeId id) { return *nodes_.at(id)->proc; }

const std::string& ThreadNet::node_name(NodeId id) const {
  return nodes_.at(id)->name;
}

void ThreadNet::deliver(NodeId to, NodeId from, Buffer payload) {
  if (to >= nodes_.size()) return;  // unknown destination: drop
  Node& n = *nodes_.at(to);
  {
    std::scoped_lock lk(n.mu);
    n.inbox.push_back(Mail{from, std::move(payload)});
  }
  n.cv.notify_all();
}

void ThreadNet::start() {
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  epoch_ = std::chrono::steady_clock::now();
  started_once_ = true;
  for (auto& node : nodes_) {
    node->worker = std::thread([this, n = node.get()] { worker_loop(*n); });
  }
}

sim::TimePoint ThreadNet::now() const {
  if (!started_once_) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ThreadNet::notify_progress() {
  if (progress_waiters_.load(std::memory_order_acquire) == 0) return;
  // Locking and releasing the mutex orders this worker's preceding state
  // writes before the waiter's next predicate evaluation. try_lock keeps
  // workers from serializing here under load: if the waiter (or another
  // notifier) holds the mutex, the waiter is already awake or will re-check
  // within its 100ms bounded wait, so skipping this notify is safe.
  std::unique_lock lk(progress_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;
  lk.unlock();
  progress_cv_.notify_all();
}

bool ThreadNet::run_to_quiescence(const std::function<bool()>& done,
                                  const sim::RunOptions& options) {
  if (!done) {
    throw ProtocolError(
        "ThreadNet::run_to_quiescence requires a completion predicate");
  }
  if (!running_.load(std::memory_order_acquire)) {
    // Auto-start a fresh net, but never resurrect a stopped one: start()
    // re-delivers on_start to every node, which would replay the protocol
    // over completed state.
    if (started_once_) {
      throw ProtocolError("ThreadNet: cannot run_to_quiescence after stop");
    }
    start();
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(options.wall_timeout_us);
  // RAII so a throwing predicate or probe cannot leak the waiter count
  // (which would leave every worker paying the notify cost forever).
  struct WaiterGuard {
    std::atomic<int>& count;
    explicit WaiterGuard(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~WaiterGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } guard(progress_waiters_);
  std::unique_lock lk(progress_mu_);
  for (;;) {
    if (options.probe) options.probe();
    if (done()) return true;
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return done();
    // Bounded wait: a worker that read progress_waiters_ just before this
    // waiter registered may skip one notify, so cap the sleep instead of
    // trusting every wakeup to arrive (recurring timers re-notify anyway).
    progress_cv_.wait_until(
        lk, std::min(deadline, now + std::chrono::milliseconds(100)));
  }
}

void ThreadNet::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& node : nodes_) {
    // Take the node lock before notifying: a worker that already checked
    // stop_ but has not started waiting yet holds the lock, so this cannot
    // slip into the gap and lose the wakeup.
    std::scoped_lock lk(node->mu);
    node->cv.notify_all();
  }
  for (auto& node : nodes_) {
    if (node->worker.joinable()) node->worker.join();
  }
  running_.store(false, std::memory_order_release);
}

void ThreadNet::worker_loop(Node& node) {
  node.proc->on_start();
  notify_progress();
  std::unique_lock lk(node.mu);
  while (!stop_.load(std::memory_order_acquire)) {
    auto now = std::chrono::steady_clock::now();
    // Fire due timers.
    std::vector<std::uint64_t> due;
    for (auto it = node.timers.begin(); it != node.timers.end();) {
      if (it->due <= now) {
        due.push_back(it->token);
        it = node.timers.erase(it);
      } else {
        ++it;
      }
    }
    for (std::uint64_t token : due) {
      lk.unlock();
      node.proc->on_timer(token);
      notify_progress();
      lk.lock();
    }
    if (!node.inbox.empty()) {
      Mail m = std::move(node.inbox.front());
      node.inbox.pop_front();
      lk.unlock();
      node.proc->on_message(m.from, m.payload);
      notify_progress();
      lk.lock();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Sleep until next timer or new mail.
    if (node.timers.empty()) {
      node.cv.wait_for(lk, std::chrono::milliseconds(50));
    } else {
      auto next = std::min_element(node.timers.begin(), node.timers.end(),
                                   [](const Timer& a, const Timer& b) {
                                     return a.due < b.due;
                                   })
                      ->due;
      node.cv.wait_until(lk, next);
    }
  }
}

}  // namespace ddemos::net
