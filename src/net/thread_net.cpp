#include "net/thread_net.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ddemos::net {

class ThreadNet::NodeContext final : public sim::Context {
 public:
  NodeContext(ThreadNet* net, NodeId id) : net_(net), id_(id) {}

  void send(NodeId to, Buffer payload) override {
    net_->deliver(to, id_, std::move(payload));
  }

  // This transport is already reliable, so the loopback is a plain local
  // delivery (shard routing applies as usual).
  void send_self(Buffer payload) override {
    net_->deliver(id_, id_, std::move(payload));
  }

  std::uint64_t set_timer(Duration after) override {
    Node& n = *net_->nodes_.at(id_);
    after = sim::clamp_real_timer_delay(after);
    // Timers fire on shard 0 (the control shard; see sim::Context). Any
    // shard worker — and stop()/start() — may touch the timer list, so
    // take the shard lock.
    Shard& s = *n.shards.front();
    std::uint64_t token = n.next_token.fetch_add(1, std::memory_order_relaxed);
    {
      std::scoped_lock lk(s.mu);
      s.timers.push_back(
          Timer{std::chrono::steady_clock::now() +
                    std::chrono::microseconds(after),
                token});
    }
    s.cv.notify_all();
    return token;
  }

  TimePoint now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - net_->epoch_)
        .count();
  }
  NodeId self() const override { return id_; }
  void charge(Duration) override {}  // real CPU time is real here

 private:
  ThreadNet* net_;
  NodeId id_;
};

ThreadNet::ThreadNet() = default;
ThreadNet::~ThreadNet() { stop(); }

NodeId ThreadNet::add_node(std::unique_ptr<Process> proc, std::string name) {
  if (running_.load(std::memory_order_acquire)) {
    throw ProtocolError("ThreadNet: add_node after start");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  auto node = std::make_unique<Node>();
  node->proc = std::move(proc);
  node->sharded = dynamic_cast<sim::ShardedProcess*>(node->proc.get());
  node->ctx = std::make_unique<NodeContext>(this, id);
  node->name = std::move(name);
  node->proc->bind(node->ctx.get());
  std::size_t shards =
      node->sharded ? std::max<std::size_t>(node->sharded->shard_count(), 1)
                    : 1;
  node->shards.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    node->shards.push_back(std::make_unique<Shard>());
  }
  nodes_.push_back(std::move(node));
  return id;
}

Process& ThreadNet::process(NodeId id) { return *nodes_.at(id)->proc; }

const std::string& ThreadNet::node_name(NodeId id) const {
  return nodes_.at(id)->name;
}

void ThreadNet::deliver(NodeId to, NodeId from, Buffer payload) {
  if (to >= nodes_.size()) return;  // unknown destination: drop
  Node& n = *nodes_.at(to);
  // Shard-affine dispatch: the sender thread resolves the owning shard
  // from the message header, so same-shard handlers serialize through one
  // mailbox and cross-shard traffic never contends.
  std::size_t shard = 0;
  if (n.sharded) {
    shard = n.sharded->shard_of(from, payload);
    if (shard >= n.shards.size()) shard = 0;
  }
  Shard& s = *n.shards[shard];
  {
    std::scoped_lock lk(s.mu);
    s.inbox.push_back(Mail{from, std::move(payload)});
    s.inbox_high_water = std::max(s.inbox_high_water, s.inbox.size());
  }
  s.cv.notify_all();
}

void ThreadNet::start() {
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  epoch_ = std::chrono::steady_clock::now();
  started_once_ = true;
  // on_start runs on this thread, for every node, before any worker
  // exists: a shard worker can therefore never dispatch a message into a
  // process that has not started (on_start sends/timers just queue).
  for (auto& node : nodes_) node->proc->on_start();
  for (auto& node : nodes_) {
    for (auto& shard : node->shards) {
      shard->worker = std::thread(
          [this, n = node.get(), s = shard.get()] { worker_loop(*n, *s); });
    }
  }
}

sim::TimePoint ThreadNet::now() const {
  if (!started_once_) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<std::size_t> ThreadNet::shard_queue_high_water(NodeId id) const {
  const Node& n = *nodes_.at(id);
  std::vector<std::size_t> out;
  out.reserve(n.shards.size());
  for (auto& shard : n.shards) {
    std::scoped_lock lk(shard->mu);
    out.push_back(shard->inbox_high_water);
  }
  return out;
}

void ThreadNet::notify_progress() {
  if (progress_waiters_.load(std::memory_order_acquire) == 0) return;
  // Locking and releasing the mutex orders this worker's preceding state
  // writes before the waiter's next predicate evaluation. try_lock keeps
  // workers from serializing here under load: if the waiter (or another
  // notifier) holds the mutex, the waiter is already awake or will re-check
  // within its 100ms bounded wait, so skipping this notify is safe.
  std::unique_lock lk(progress_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;
  lk.unlock();
  progress_cv_.notify_all();
}

bool ThreadNet::run_to_quiescence(const std::function<bool()>& done,
                                  const sim::RunOptions& options) {
  if (!done) {
    throw ProtocolError(
        "ThreadNet::run_to_quiescence requires a completion predicate");
  }
  if (!running_.load(std::memory_order_acquire)) {
    // Auto-start a fresh net, but never resurrect a stopped one: start()
    // re-delivers on_start to every node, which would replay the protocol
    // over completed state.
    if (started_once_) {
      throw ProtocolError("ThreadNet: cannot run_to_quiescence after stop");
    }
    start();
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(options.wall_timeout_us);
  // RAII so a throwing predicate or probe cannot leak the waiter count
  // (which would leave every worker paying the notify cost forever).
  struct WaiterGuard {
    std::atomic<int>& count;
    explicit WaiterGuard(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~WaiterGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } guard(progress_waiters_);
  std::unique_lock lk(progress_mu_);
  for (;;) {
    if (options.probe) options.probe();
    if (done()) return true;
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return done();
    // Bounded wait: a worker that read progress_waiters_ just before this
    // waiter registered may skip one notify, so cap the sleep instead of
    // trusting every wakeup to arrive (recurring timers re-notify anyway).
    progress_cv_.wait_until(
        lk, std::min(deadline, now + std::chrono::milliseconds(100)));
  }
}

void ThreadNet::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& node : nodes_) {
    for (auto& shard : node->shards) {
      // Take the shard lock before notifying: a worker that already
      // checked stop_ but has not started waiting yet holds the lock, so
      // this cannot slip into the gap and lose the wakeup.
      std::scoped_lock lk(shard->mu);
      shard->cv.notify_all();
    }
  }
  for (auto& node : nodes_) {
    for (auto& shard : node->shards) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }
  running_.store(false, std::memory_order_release);
}

void ThreadNet::worker_loop(Node& node, Shard& shard) {
  std::unique_lock lk(shard.mu);
  while (!stop_.load(std::memory_order_acquire)) {
    auto now = std::chrono::steady_clock::now();
    // Fire due timers.
    std::vector<std::uint64_t> due;
    for (auto it = shard.timers.begin(); it != shard.timers.end();) {
      if (it->due <= now) {
        due.push_back(it->token);
        it = shard.timers.erase(it);
      } else {
        ++it;
      }
    }
    for (std::uint64_t token : due) {
      lk.unlock();
      node.proc->on_timer(token);
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      notify_progress();
      lk.lock();
    }
    if (!shard.inbox.empty()) {
      Mail m = std::move(shard.inbox.front());
      shard.inbox.pop_front();
      lk.unlock();
      node.proc->on_message(m.from, m.payload);
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      notify_progress();
      lk.lock();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Sleep until next timer or new mail.
    if (shard.timers.empty()) {
      shard.cv.wait_for(lk, std::chrono::milliseconds(50));
    } else {
      auto next = std::min_element(shard.timers.begin(), shard.timers.end(),
                                   [](const Timer& a, const Timer& b) {
                                     return a.due < b.due;
                                   })
                      ->due;
      shard.cv.wait_until(lk, next);
    }
  }
}

}  // namespace ddemos::net
