// Ref-counted immutable message payload. A Buffer is created once per
// encoded message (one heap allocation for the payload) and then shared by
// handle across every hop of the pipeline: an N-recipient multicast enqueues
// N cheap handle copies of the same allocation instead of N deep copies of
// the bytes. Receivers observe the payload through read-only views
// (BytesView), so the underlying bytes are never mutated after construction
// and sharing across ThreadNet worker threads is safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/bytes.hpp"

namespace ddemos::net {

class Buffer {
 public:
  Buffer() = default;

  // Wraps an encoded message. Implicit on purpose: protocol call sites keep
  // writing ctx().send(to, msg.encode()). This is the only operation that
  // counts as a payload allocation; copying a Buffer just bumps a refcount.
  Buffer(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const Bytes>(std::move(bytes))) {
    payload_allocations_.fetch_add(1, std::memory_order_relaxed);
  }

  static Buffer copy_of(BytesView v) { return Buffer(Bytes(v.begin(), v.end())); }

  BytesView view() const {
    return data_ ? BytesView(*data_) : BytesView();
  }
  // NOLINTNEXTLINE(google-explicit-constructor): pervasive read-only use.
  operator BytesView() const { return view(); }

  const std::uint8_t* data() const { return data_ ? data_->data() : nullptr; }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  // Precondition: i < size() (like vector; an empty handle has size 0).
  std::uint8_t operator[](std::size_t i) const { return view()[i]; }
  auto begin() const { return view().begin(); }
  auto end() const { return view().end(); }

  // How many handles share this payload (1 for a freshly wrapped message).
  long use_count() const { return data_.use_count(); }

  // --- allocation accounting (asserted by tests and the dispatch bench) ---
  static std::uint64_t payload_allocations() {
    return payload_allocations_.load(std::memory_order_relaxed);
  }
  static void reset_payload_allocations() {
    payload_allocations_.store(0, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const Bytes> data_;
  inline static std::atomic<std::uint64_t> payload_allocations_{0};
};

}  // namespace ddemos::net
