#include "client/voter.hpp"

#include "core/messages.hpp"

namespace ddemos::client {

using namespace core;
using sim::NodeId;

Voter::Voter(Config config) : cfg_(std::move(config)), rng_(cfg_.seed) {
  part_ = cfg_.forced_part.value_or(
      static_cast<std::uint8_t>(rng_.below(kNumParts)));
  const BallotLine& line = cfg_.ballot.parts[part_].lines.at(
      cfg_.option_index);
  code_ = line.vote_code;
  expected_receipt_ = line.receipt;
}

void Voter::on_start() {
  start_timer_ = ctx().set_timer(
      std::max<sim::Duration>(cfg_.vote_at - ctx().now(), 0));
}

void Voter::try_vote() {
  if (attempts_ >= cfg_.max_attempts) {
    gave_up_ = true;
    return;
  }
  // Random non-blacklisted VC node; if all are blacklisted, clear the
  // blacklist and keep trying (the adversary cannot win forever).
  std::vector<NodeId> candidates;
  for (NodeId id : cfg_.vc_ids) {
    if (!blacklist_.count(id)) candidates.push_back(id);
  }
  if (candidates.empty()) {
    blacklist_.clear();
    candidates = cfg_.vc_ids;
  }
  current_vc_ = candidates[rng_.below(candidates.size())];
  ++attempts_;
  ctx().send(*current_vc_,
             VoteMsg{cfg_.ballot.serial, code_}.encode());
  patience_timer_ = ctx().set_timer(cfg_.patience_us);
}

void Voter::on_timer(std::uint64_t token) {
  if (receipt_ok_ || gave_up_) return;
  if (token == start_timer_) {
    started_at_ = ctx().now();
    try_vote();
  } else if (token == patience_timer_ && current_vc_.has_value()) {
    // [d]-patience expired: blacklist and resubmit elsewhere.
    blacklist_.insert(*current_vc_);
    try_vote();
  }
}

void Voter::on_message(NodeId from, const net::Buffer& payload) {
  if (receipt_ok_ || gave_up_ || from != current_vc_) return;
  try {
    Reader r(payload.view());
    if (static_cast<MsgType>(r.u8()) != MsgType::kVoteReply) return;
    VoteReplyMsg m = VoteReplyMsg::decode(r);
    if (m.serial != cfg_.ballot.serial) return;
    if (m.status == VoteReplyStatus::kOk && m.receipt == expected_receipt_) {
      // Human-verifiable: the receipt matches the printed ballot.
      receipt_ok_ = true;
      receipt_at_ = ctx().now();
      return;
    }
    if (m.status == VoteReplyStatus::kOutsideHours) {
      // The election is over (or has not begun): no point retrying.
      gave_up_ = true;
      return;
    }
    // Wrong receipt or an error: treat this node as faulty and move on.
    blacklist_.insert(from);
    try_vote();
  } catch (const CodecError&) {
    blacklist_.insert(from);
    try_vote();
  }
}

Voter::AuditInfo Voter::audit_info() const {
  std::uint8_t unused = part_ == 0 ? 1 : 0;
  return AuditInfo{cfg_.ballot.serial, code_, unused,
                   cfg_.ballot.parts[unused]};
}

}  // namespace ddemos::client
