// Auditing and end-to-end verification (paper Section III-I). Auditors are
// any parties that read the BB subsystem (majority read, like the paper's
// browser extension) and verify the complete election: checks (a)-(e) from
// the paper plus tally consistency, and checks (f)-(g) for voters who
// delegated their audit information.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bb/bb_node.hpp"
#include "client/voter.hpp"

namespace ddemos::client {

// The paper's replicated-service reader: queries every BB node and returns
// the payload backed by at least fb+1 byte-identical replies.
class MajorityReader {
 public:
  MajorityReader(std::vector<const bb::BbNode*> nodes, std::size_t f_bb);

  std::optional<Bytes> read(const std::string& section,
                            std::uint64_t arg = 0) const;

 private:
  std::vector<const bb::BbNode*> nodes_;
  std::size_t f_bb_;
};

struct AuditOptions {
  // Worker threads for per-ballot verification chunks and the chunked
  // batch crypto. 0 resolves DDEMOS_AUDIT_THREADS (default 1 = serial).
  // Chunk boundaries are independent of the thread count, so the report
  // (including blame attribution order) is identical at every setting.
  std::size_t n_threads = 0;
};

struct AuditReport {
  bool passed = true;
  std::vector<std::string> failures;
  std::vector<std::uint64_t> tally;  // published tally (when available)

  void fail(std::string what) {
    passed = false;
    failures.push_back(std::move(what));
  }
};

class Auditor {
 public:
  explicit Auditor(MajorityReader reader) : reader_(std::move(reader)) {}

  // Full election verification: checks (a)-(e) and tally consistency.
  // Per-ballot work fans out across an AuditOptions::n_threads pool.
  AuditReport verify_election(const AuditOptions& opts = {}) const;

  // Delegated audit for one voter (checks (f) and (g)); does not reveal
  // the voter's choice to the auditor.
  AuditReport verify_delegated(const Voter::AuditInfo& info) const;

  // Individual voter verification (paper Section III-F): her cast vote code
  // is in the tally set and her unused part opened consistently.
  AuditReport verify_voter(const Voter::AuditInfo& info) const {
    return verify_delegated(info);
  }

 private:
  struct BallotView {
    std::array<std::vector<core::BbLineInit>, core::kNumParts> init;
    bool voted = false;
    std::uint8_t used_part = 0;
    std::uint32_t used_line = 0;
    std::array<std::vector<bb::PublishedLine>, core::kNumParts> published;
  };
  std::optional<BallotView> fetch_ballot(core::Serial serial) const;
  MajorityReader reader_;
};

}  // namespace ddemos::client
