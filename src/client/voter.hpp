// Voter client (paper Section III-F). No cryptography on the voter's
// device: picks one ballot part at random, posts the bare vote code of the
// chosen option to a random VC node, and waits for the receipt. Implements
// the [d]-patience behaviour of Definition 1: if no valid receipt arrives
// within the patience window, the VC node is blacklisted and the same vote
// is resubmitted to another randomly selected node.
#pragma once

#include <atomic>
#include <optional>
#include <set>

#include "core/types.hpp"
#include "crypto/rng.hpp"
#include "sim/runtime.hpp"

namespace ddemos::client {

class Voter final : public sim::Process {
 public:
  struct Config {
    core::Ballot ballot;
    std::size_t option_index = 0;       // which option to vote for
    std::vector<sim::NodeId> vc_ids;
    sim::Duration patience_us = 2'000'000;  // [d]-patience window
    sim::TimePoint vote_at = 0;             // when to start voting
    std::uint64_t seed = 0;
    std::size_t max_attempts = 64;          // hard stop for hopeless cases
    // Fixed part choice for tests; normally chosen at random (the coin).
    std::optional<std::uint8_t> forced_part;
  };

  explicit Voter(Config config);

  void on_start() override;
  void on_message(sim::NodeId from, const net::Buffer& payload) override;
  void on_timer(std::uint64_t token) override;

  // Atomic: ThreadNet completion predicates may read it mid-run.
  bool has_receipt() const { return receipt_ok_; }
  bool gave_up() const { return gave_up_; }
  std::uint8_t used_part() const { return part_; }
  const Bytes& used_code() const { return code_; }
  std::uint64_t expected_receipt() const { return expected_receipt_; }
  std::size_t attempts() const { return attempts_; }
  sim::TimePoint receipt_at() const { return receipt_at_; }
  sim::TimePoint started_at() const { return started_at_; }

  // Audit information the voter can hand to a third-party auditor without
  // revealing her choice: serial, the cast code, and the unused part.
  struct AuditInfo {
    core::Serial serial;
    Bytes cast_code;
    std::uint8_t unused_part;
    core::BallotPart unused_content;
  };
  AuditInfo audit_info() const;

 private:
  void try_vote();

  Config cfg_;
  crypto::Rng rng_;
  std::uint8_t part_ = 0;
  Bytes code_;
  std::uint64_t expected_receipt_ = 0;
  std::set<sim::NodeId> blacklist_;
  std::optional<sim::NodeId> current_vc_;
  std::uint64_t patience_timer_ = 0;
  std::uint64_t start_timer_ = 0;
  std::atomic<bool> receipt_ok_{false};
  bool gave_up_ = false;
  std::size_t attempts_ = 0;
  sim::TimePoint receipt_at_ = -1;
  sim::TimePoint started_at_ = -1;
};

}  // namespace ddemos::client
