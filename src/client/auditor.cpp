#include "client/auditor.hpp"

#include <map>
#include <set>

#include <algorithm>
#include <iterator>

#include "core/messages.hpp"
#include "crypto/batch.hpp"
#include "util/thread_pool.hpp"

namespace ddemos::client {

using namespace core;

MajorityReader::MajorityReader(std::vector<const bb::BbNode*> nodes,
                               std::size_t f_bb)
    : nodes_(std::move(nodes)), f_bb_(f_bb) {}

std::optional<Bytes> MajorityReader::read(const std::string& section,
                                          std::uint64_t arg) const {
  std::map<Bytes, std::size_t> counts;
  for (const bb::BbNode* node : nodes_) {
    auto payload = node->read_section(section, arg);
    if (!payload) continue;
    if (++counts[*payload] >= f_bb_ + 1) return *payload;
  }
  return std::nullopt;
}

namespace {

bb::PublishedLine decode_published_line(Reader& r) {
  bb::PublishedLine l;
  l.decrypted_code = r.bytes();
  l.opened = r.boolean();
  l.messages =
      r.vec<std::uint64_t>([](Reader& rr) { return rr.u64(); }, 4096);
  l.randomness = r.vec<crypto::Fn>(
      [](Reader& rr) { return decode_scalar(rr); }, 4096);
  l.zk_complete = r.boolean();
  l.bit_responses = r.vec<crypto::BitProofResponse>(
      [](Reader& rr) {
        crypto::BitProofResponse resp;
        resp.c0 = decode_scalar(rr);
        resp.c1 = decode_scalar(rr);
        resp.z0 = decode_scalar(rr);
        resp.z1 = decode_scalar(rr);
        return resp;
      },
      4096);
  l.sum_response = decode_scalar(r);
  return l;
}

struct MetaView {
  ElectionParams params;
  crypto::Point commit_key;
  bool voteset = false, codes = false, result = false;
};

std::optional<MetaView> fetch_meta(const MajorityReader& reader) {
  auto blob = reader.read("meta");
  if (!blob) return std::nullopt;
  Reader r(*blob);
  MetaView v;
  v.params = ElectionParams::decode(r);
  v.commit_key = decode_point(r);
  v.voteset = r.boolean();
  v.codes = r.boolean();
  v.result = r.boolean();
  return v;
}

struct CastView {
  std::vector<bb::BbNode::CastInfo> cast;
  Bytes coins;
  crypto::Fn challenge;
};

std::optional<CastView> fetch_cast(const MajorityReader& reader) {
  auto blob = reader.read("cast-info");
  if (!blob) return std::nullopt;
  Reader r(*blob);
  CastView v;
  v.cast = r.vec<bb::BbNode::CastInfo>([](Reader& rr) {
    bb::BbNode::CastInfo ci;
    ci.serial = rr.u64();
    ci.part = rr.u8();
    ci.line = rr.u32();
    return ci;
  });
  v.coins = r.bytes();
  v.challenge = decode_scalar(r);
  return v;
}

}  // namespace

std::optional<Auditor::BallotView> Auditor::fetch_ballot(
    Serial serial) const {
  auto blob = reader_.read("ballot", serial);
  if (!blob) return std::nullopt;
  Reader r(*blob);
  BallotView v;
  for (std::size_t part = 0; part < kNumParts; ++part) {
    v.init[part] = r.vec<BbLineInit>(
        [](Reader& rr) { return BbLineInit::decode(rr); }, 4096);
  }
  v.voted = r.boolean();
  v.used_part = r.u8();
  v.used_line = r.u32();
  for (std::size_t part = 0; part < kNumParts; ++part) {
    v.published[part] = r.vec<bb::PublishedLine>(
        [](Reader& rr) { return decode_published_line(rr); }, 4096);
  }
  return v;
}

AuditReport Auditor::verify_election(const AuditOptions& opts) const {
  AuditReport report;
  auto meta = fetch_meta(reader_);
  if (!meta) {
    report.fail("no majority for meta section");
    return report;
  }
  auto voteset_blob = reader_.read("voteset");
  if (!voteset_blob) {
    report.fail("vote set not published with majority");
    return report;
  }
  Reader vr(*voteset_blob);
  auto voteset = vr.vec<VoteSetEntry>(
      [](Reader& rr) { return VoteSetEntry::decode(rr); });
  auto cast = fetch_cast(reader_);
  if (!cast) {
    report.fail("cast info not published with majority");
    return report;
  }

  // (b) at most one submitted vote code per ballot.
  std::set<Serial> seen;
  for (const VoteSetEntry& e : voteset) {
    if (!seen.insert(e.serial).second) {
      report.fail("duplicate serial in vote set");
    }
  }
  // (c) no more than one part used per ballot.
  std::set<Serial> cast_serials;
  for (const auto& ci : cast->cast) {
    if (!cast_serials.insert(ci.serial).second) {
      report.fail("ballot with more than one used part");
    }
  }

  const std::size_t m = meta->params.m();

  // Per-ballot checks over the cast set and the opened ballots. A real
  // auditor iterates all serials in the BB; we iterate the serials present
  // in the vote set plus delegated ones (full sweeps are exercised through
  // verify-all helpers in tests using every serial). Each ballot audits
  // into its own slot and the slots merge in ballot order afterwards, so
  // failures, batch-instance order and the homomorphic sums are identical
  // at every thread count.
  struct BallotAudit {
    std::vector<std::string> failures;
    std::vector<crypto::BitProofInstance> bit_insts;
    std::vector<crypto::SumProofInstance> sum_insts;
    std::vector<crypto::EgOpenInstance> open_insts;
    std::vector<crypto::ElGamalCipher> cast_encoding;  // m entries if cast
  };
  auto audit_ballot = [&](const VoteSetEntry& e, BallotAudit& out) {
    auto ballot = fetch_ballot(e.serial);
    if (!ballot) {
      out.failures.push_back("ballot missing from BB majority");
      return;
    }
    // (a) no duplicate vote codes within the opened ballot.
    std::set<Bytes> codes;
    for (std::size_t part = 0; part < kNumParts; ++part) {
      for (const auto& pl : ballot->published[part]) {
        if (!pl.decrypted_code.empty() &&
            !codes.insert(pl.decrypted_code).second) {
          out.failures.push_back("duplicate vote code inside ballot");
        }
      }
    }
    if (!ballot->voted) {
      out.failures.push_back("vote-set serial not marked voted on BB");
      return;
    }
    // The published cast position must decrypt to the submitted code.
    const auto& used_lines = ballot->published[ballot->used_part];
    if (ballot->used_line >= used_lines.size() ||
        used_lines[ballot->used_line].decrypted_code != e.vote_code) {
      out.failures.push_back("cast position does not match submitted vote code");
      return;
    }
    // (e) ZK proofs of the used part are complete and valid.
    const auto& init_lines = ballot->init[ballot->used_part];
    for (std::size_t l = 0; l < init_lines.size(); ++l) {
      const bb::PublishedLine& pl = used_lines[l];
      const BbLineInit& li = init_lines[l];
      if (!pl.zk_complete || pl.bit_responses.size() != m) {
        out.failures.push_back("zk proofs incomplete for used part");
        continue;
      }
      for (std::size_t j = 0; j < m; ++j) {
        out.bit_insts.push_back(crypto::BitProofInstance{
            li.encoding[j], li.bit_proofs[j], cast->challenge,
            pl.bit_responses[j]});
      }
      crypto::ElGamalCipher sum = li.encoding[0];
      for (std::size_t j = 1; j < m; ++j) {
        sum = crypto::eg_add(sum, li.encoding[j]);
      }
      out.sum_insts.push_back(crypto::SumProofInstance{
          sum, crypto::Fn::one(), li.sum_proof, cast->challenge,
          pl.sum_response});
    }
    // (d) openings of the unused part are valid unit vectors.
    std::uint8_t unused = ballot->used_part == 0 ? 1 : 0;
    const auto& unused_lines = ballot->published[unused];
    const auto& unused_init = ballot->init[unused];
    for (std::size_t l = 0; l < unused_init.size(); ++l) {
      const bb::PublishedLine& pl = unused_lines[l];
      if (!pl.opened || pl.messages.size() != m) {
        out.failures.push_back("unused part not opened");
        continue;
      }
      std::uint64_t total = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (pl.messages[j] > 1) {
          out.failures.push_back("opened message not a bit");
        }
        total += pl.messages[j];
        out.open_insts.push_back(crypto::EgOpenInstance{
            unused_init[l].encoding[j],
            crypto::Fn::from_u64(pl.messages[j]), pl.randomness[j]});
      }
      if (total != 1) {
        out.failures.push_back("opened encoding is not a unit vector");
      }
    }
    // Contribution to the homomorphic tally.
    out.cast_encoding = ballot->init[ballot->used_part][ballot->used_line]
                            .encoding;
  };

  std::size_t n_threads =
      opts.n_threads ? opts.n_threads : util::ThreadPool::env_threads(1);
  util::ThreadPool pool(n_threads);
  util::ThreadPool* pool_ptr = pool.n_threads() > 1 ? &pool : nullptr;
  constexpr std::size_t kBallotChunk = 16;
  std::vector<BallotAudit> audited(voteset.size());
  pool.parallel_for(voteset.size(), kBallotChunk,
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        audit_ballot(voteset[i], audited[i]);
                      }
                    });

  // Merge the per-ballot results in ballot order; crypto checks collect
  // across all ballots and resolve in one random-linear-combination batch
  // per proof family (chunked over the pool). Only if a combined check
  // fails do we re-verify per instance to attribute blame (keeping
  // accept/reject decisions and failure counts identical to per-instance
  // verification).
  std::vector<crypto::ElGamalCipher> sums(
      m, crypto::ElGamalCipher{crypto::Point::infinity(),
                               crypto::Point::infinity()});
  std::vector<crypto::BitProofInstance> bit_insts;
  std::vector<crypto::SumProofInstance> sum_insts;
  std::vector<crypto::EgOpenInstance> open_insts;
  for (BallotAudit& ba : audited) {
    for (std::string& f : ba.failures) report.fail(std::move(f));
    std::move(ba.bit_insts.begin(), ba.bit_insts.end(),
              std::back_inserter(bit_insts));
    std::move(ba.sum_insts.begin(), ba.sum_insts.end(),
              std::back_inserter(sum_insts));
    std::move(ba.open_insts.begin(), ba.open_insts.end(),
              std::back_inserter(open_insts));
    if (!ba.cast_encoding.empty()) {
      for (std::size_t j = 0; j < m; ++j) {
        sums[j] = crypto::eg_add(sums[j], ba.cast_encoding[j]);
      }
    }
  }

  // Resolve the batched crypto checks (fig4/fig5 audit-phase fast path).
  if (!crypto::verify_bit_batch(meta->commit_key, bit_insts, pool_ptr)) {
    for (const auto& inst : bit_insts) {
      if (!crypto::verify_bit(meta->commit_key, inst.cipher, inst.fm,
                              inst.challenge, inst.resp)) {
        report.fail("bit proof invalid");
      }
    }
  }
  if (!crypto::verify_sum_batch(meta->commit_key, sum_insts, pool_ptr)) {
    for (const auto& inst : sum_insts) {
      if (!crypto::verify_sum(meta->commit_key, inst.sum, inst.total,
                              inst.fm, inst.challenge, inst.z)) {
        report.fail("sum proof invalid");
      }
    }
  }
  if (!crypto::eg_open_check_batch(meta->commit_key, open_insts, pool_ptr)) {
    for (const auto& inst : open_insts) {
      if (!crypto::eg_open_check(meta->commit_key, inst.cipher, inst.m,
                                 inst.r)) {
        report.fail("commitment opening invalid");
      }
    }
  }

  // Tally consistency: the published result opens the homomorphic total.
  auto result_blob = reader_.read("result");
  if (!result_blob) {
    report.fail("result not published with majority");
    return report;
  }
  Reader rr(*result_blob);
  auto tally = rr.vec<std::uint64_t>([](Reader& r3) { return r3.u64(); });
  auto randomness =
      rr.vec<crypto::Fn>([](Reader& r3) { return decode_scalar(r3); });
  if (tally.size() != m || randomness.size() != m) {
    report.fail("malformed result");
    return report;
  }
  std::uint64_t total_votes = 0;
  for (std::size_t j = 0; j < m; ++j) {
    total_votes += tally[j];
    if (!voteset.empty() &&
        !crypto::eg_open_check(meta->commit_key, sums[j],
                               crypto::Fn::from_u64(tally[j]),
                               randomness[j])) {
      report.fail("tally does not open the homomorphic total");
    }
  }
  if (total_votes != cast->cast.size()) {
    report.fail("tally total does not match number of cast votes");
  }
  report.tally = tally;
  return report;
}

AuditReport Auditor::verify_delegated(const Voter::AuditInfo& info) const {
  AuditReport report;
  auto voteset_blob = reader_.read("voteset");
  if (!voteset_blob) {
    report.fail("vote set not published with majority");
    return report;
  }
  Reader vr(*voteset_blob);
  auto voteset = vr.vec<VoteSetEntry>(
      [](Reader& rr) { return VoteSetEntry::decode(rr); });
  // (f) the submitted vote code is consistent with the voter's.
  bool found = false;
  for (const VoteSetEntry& e : voteset) {
    if (e.serial == info.serial) {
      found = true;
      if (e.vote_code != info.cast_code) {
        report.fail("tallied vote code differs from the voter's");
      }
    }
  }
  if (!found) report.fail("voter's ballot missing from the tally set");

  // (g) the unused part opened on the BB matches the voter's printed copy.
  auto ballot = fetch_ballot(info.serial);
  if (!ballot) {
    report.fail("ballot not readable with majority");
    return report;
  }
  auto meta = fetch_meta(reader_);
  if (!meta) {
    report.fail("no majority for meta section");
    return report;
  }
  if (ballot->voted && ballot->used_part == info.unused_part) {
    report.fail("BB marks the voter's unused part as used");
    return report;
  }
  const auto& published = ballot->published[info.unused_part];
  const std::size_t m = meta->params.m();
  if (info.unused_content.lines.size() != m) {
    report.fail("voter audit info malformed");
    return report;
  }
  for (std::size_t opt = 0; opt < m; ++opt) {
    const BallotLine& printed = info.unused_content.lines[opt];
    // Locate the BB line whose decrypted code equals the printed one.
    bool matched = false;
    for (const auto& pl : published) {
      if (pl.decrypted_code != printed.vote_code) continue;
      matched = true;
      if (!pl.opened || pl.messages.size() != m) {
        report.fail("unused part line not opened");
        break;
      }
      for (std::size_t j = 0; j < m; ++j) {
        std::uint64_t expect = (j == opt) ? 1u : 0u;
        if (pl.messages[j] != expect) {
          report.fail("opened option encoding contradicts printed ballot");
          break;
        }
      }
      break;
    }
    if (!matched) {
      report.fail("printed vote code missing from the opened part");
    }
  }
  return report;
}

}  // namespace ddemos::client
