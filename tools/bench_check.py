#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_JSON trajectory.

Joins the CI bench-smoke artifact (``bench-smoke.jsonl``) against the
committed baseline (``bench/baseline.jsonl``) by (bench, params) keys and
fails when any throughput/latency-style metric regresses by more than the
threshold (default 35%). Prints a markdown delta table, optionally into
the GitHub job summary.

Row model: every JSON line is one measured point. Fields are split into
  * metrics  — numeric fields this tool gates (direction-aware, see
    METRIC_DIRECTIONS / classify_metric)
  * params   — everything else; they identify the point and form the join
    key together with the "bench" field.
Rows appearing only on one side are reported informationally and never
fail the gate (benches come and go across PRs); only a matched metric
moving the wrong way beyond the threshold fails.

Usage:
  tools/bench_check.py --baseline bench/baseline.jsonl \
      --current build/bench-smoke.jsonl [--threshold 0.35] \
      [--summary "$GITHUB_STEP_SUMMARY"] [--warn-only]
  tools/bench_check.py --self-test
"""

import argparse
import json
import sys

# Exact metric names with a gating direction: +1 = higher is better,
# -1 = lower is better.
METRIC_DIRECTIONS = {
    "throughput_ops": +1,
    "events_per_sec": +1,
    "latency_ms": -1,
    "measured_ms": -1,
    "collection_s": -1,
    "consensus_s": -1,
    "push_tally_s": -1,
    "publish_s": -1,
    "allocations_per_multicast": -1,
    "ns_per_op": -1,
    "us_per_op": -1,
}

# Numeric fields that are measurements but too environment-dependent (or
# informational) to gate: they are excluded from both metrics and the key.
UNGATED_MEASUREMENTS = {
    "value",  # micro_dispatch alias of its "metric" field, gated below
    "wall_s",  # sub-second at smoke scale: pure scheduler noise
    "rss_kb",
    "peak_rss_kb",
    "virtual_s",
    "events",
    "allocations",
    "twait_ms",
    "real_time_ns",
    "cpu_time_ns",
    "iterations",
}


def classify_metric(name):
    """Direction for a gated metric name, or None when not gated."""
    if name in METRIC_DIRECTIONS:
        return METRIC_DIRECTIONS[name]
    return None


def split_row(row):
    """Returns (key, metrics) for one BENCH_JSON row."""
    metrics = {}
    params = {}
    metric_alias = row.get("metric")  # micro_dispatch: {"metric":..,"value":..}
    for field, value in row.items():
        if field == "metric":
            continue
        if field == "value" and metric_alias is not None:
            direction = classify_metric(metric_alias)
            if direction is not None:
                metrics[metric_alias] = (float(value), direction)
            continue
        direction = classify_metric(field)
        if direction is not None and isinstance(value, (int, float)):
            metrics[field] = (float(value), direction)
        elif field in UNGATED_MEASUREMENTS:
            continue
        else:
            params[field] = value
    key = tuple(sorted(params.items()))
    return key, metrics


def load_jsonl(path):
    rows = {}
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{line_no}: bad JSON: {e}")
            key, metrics = split_row(row)
            # Duplicate keys (e.g. a bench rerun): last row wins, matching
            # "the artifact reflects the final state of the job".
            rows[key] = metrics
    return rows


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def fmt_value(v):
    return f"{v:.3f}" if abs(v) < 100 else f"{v:.0f}"


def compare(baseline, current, threshold):
    """Returns (table_rows, regressions, notes)."""
    table = []
    regressions = []
    notes = []
    for key in sorted(baseline.keys() | current.keys()):
        if key not in current:
            notes.append(f"missing from current artifact: {fmt_key(key)}")
            continue
        if key not in baseline:
            notes.append(f"new (no baseline yet): {fmt_key(key)}")
            continue
        base_metrics, cur_metrics = baseline[key], current[key]
        for name in sorted(base_metrics.keys() & cur_metrics.keys()):
            base_v, direction = base_metrics[name]
            cur_v, _ = cur_metrics[name]
            if base_v == 0:
                delta = 0.0 if cur_v == 0 else float("inf")
            else:
                delta = (cur_v - base_v) / abs(base_v)
            # Regression = the metric moved against its direction.
            regressed = (delta * direction) < -threshold
            status = "REGRESSED" if regressed else "ok"
            table.append((fmt_key(key), name, base_v, cur_v, delta, status))
            if regressed:
                regressions.append((fmt_key(key), name, base_v, cur_v, delta))
    return table, regressions, notes


def render_markdown(table, regressions, notes, threshold):
    lines = []
    lines.append(f"## Bench perf gate (threshold {threshold:.0%})")
    lines.append("")
    lines.append("| point | metric | baseline | current | delta | status |")
    lines.append("|---|---|---:|---:|---:|---|")
    for key, name, base_v, cur_v, delta, status in table:
        flag = "❌" if status == "REGRESSED" else "✅"
        lines.append(
            f"| {key} | {name} | {fmt_value(base_v)} | {fmt_value(cur_v)} "
            f"| {delta:+.1%} | {flag} {status} |"
        )
    if notes:
        lines.append("")
        for n in notes:
            lines.append(f"- {n}")
    lines.append("")
    if regressions:
        lines.append(f"**{len(regressions)} metric(s) regressed more than "
                     f"{threshold:.0%}.** Refresh `bench/baseline.jsonl` from "
                     "a green run if the change is intentional (see README).")
    else:
        lines.append("No regressions beyond the threshold.")
    return "\n".join(lines) + "\n"


def run_gate(args):
    baseline = load_jsonl(args.baseline)
    current = load_jsonl(args.current)
    if not baseline:
        raise SystemExit(f"{args.baseline}: no baseline rows")
    if not current:
        raise SystemExit(f"{args.current}: no current rows")
    table, regressions, notes = compare(baseline, current, args.threshold)
    md = render_markdown(table, regressions, notes, args.threshold)
    print(md)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(md)
    if regressions and not args.warn_only:
        for key, name, base_v, cur_v, delta in regressions:
            print(f"REGRESSION {key} {name}: {fmt_value(base_v)} -> "
                  f"{fmt_value(cur_v)} ({delta:+.1%})", file=sys.stderr)
        return 1
    return 0


def self_test():
    """Proves the gate trips on an injected 2x latency regression and
    stays green on within-threshold noise."""
    base_rows = [
        {"bench": "fig4", "net": "lan", "vc": 4, "cc": 500,
         "throughput_ops": 1000, "latency_ms": 100.0},
        {"bench": "micro_dispatch", "metric": "events_per_sec",
         "value": 3_000_000, "nodes": 64},
    ]
    def rows_to_map(rows):
        return {k: m for k, m in (split_row(r) for r in rows)}

    # 2x latency regression on the fig4 cell must trip the gate.
    worse = [dict(base_rows[0], latency_ms=200.0), base_rows[1]]
    _, regressions, _ = compare(rows_to_map(base_rows), rows_to_map(worse),
                                threshold=0.35)
    assert len(regressions) == 1, regressions
    assert regressions[0][1] == "latency_ms", regressions

    # A 50% throughput drop must trip too (direction-aware).
    slower = [dict(base_rows[0], throughput_ops=500), base_rows[1]]
    _, regressions, _ = compare(rows_to_map(base_rows), rows_to_map(slower),
                                threshold=0.35)
    assert [r[1] for r in regressions] == ["throughput_ops"], regressions

    # The micro_dispatch metric/value alias is gated as events_per_sec.
    slow_dispatch = [base_rows[0], dict(base_rows[1], value=1_000_000)]
    _, regressions, _ = compare(rows_to_map(base_rows),
                                rows_to_map(slow_dispatch), threshold=0.35)
    assert [r[1] for r in regressions] == ["events_per_sec"], regressions

    # Within-threshold noise (and improvements) pass.
    noisy = [dict(base_rows[0], latency_ms=120.0, throughput_ops=900),
             dict(base_rows[1], value=5_000_000)]
    _, regressions, _ = compare(rows_to_map(base_rows), rows_to_map(noisy),
                                threshold=0.35)
    assert not regressions, regressions

    # A vanished or new point is informational, never a failure.
    _, regressions, notes = compare(rows_to_map(base_rows),
                                    rows_to_map([base_rows[0]]),
                                    threshold=0.35)
    assert not regressions and len(notes) == 1, (regressions, notes)

    # Rows carrying a "backend" field key separately: a slow tcp point must
    # never be compared against (or regress) the backend-less sim point with
    # otherwise identical params.
    tcp_base = base_rows + [
        dict(base_rows[0], backend="tcp", throughput_ops=120,
             latency_ms=900.0),
    ]
    k_sim, _ = split_row(base_rows[0])
    k_tcp, _ = split_row(tcp_base[2])
    assert k_sim != k_tcp, (k_sim, k_tcp)
    _, regressions, _ = compare(rows_to_map(tcp_base), rows_to_map(tcp_base),
                                threshold=0.35)
    assert not regressions, regressions
    # And a regression on the tcp row alone trips only the tcp point.
    tcp_worse = tcp_base[:2] + [dict(tcp_base[2], throughput_ops=50)]
    _, regressions, _ = compare(rows_to_map(tcp_base), rows_to_map(tcp_worse),
                                threshold=0.35)
    assert len(regressions) == 1 and "backend=tcp" in regressions[0][0], \
        regressions

    print("bench_check self-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/baseline.jsonl")
    ap.add_argument("--current", default="build/bench-smoke.jsonl")
    ap.add_argument("--threshold", type=float, default=0.35,
                    help="fractional regression that fails the gate")
    ap.add_argument("--summary", default=None,
                    help="file to append the markdown table to "
                         "(e.g. $GITHUB_STEP_SUMMARY)")
    ap.add_argument("--warn-only", action="store_true",
                    help="print the table but always exit 0")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on injected regressions")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
