// Multi-process election node binary, two modes:
//
//   ddemos_node --serve <host> <port> <process>
//     Control-plane client spawned by core::TcpLauncher: dials the control
//     socket, rebuilds its assigned protocol node from the shipped spec,
//     serves the election over TcpNet, reports, exits. Not intended for
//     manual use.
//
//   ddemos_node --launch [--vc N] [--fvc N] [--bb N] [--fbb N]
//                        [--trustees N] [--ht N] [--voters N] [--seed S]
//                        [--shards N] [--timeout-s S]
//     Spawns a full multi-process election on loopback (one OS process per
//     VC/BB/trustee; this process hosts the voters), prints the merged
//     report, exits 0 iff the election completed with every receipt issued
//     and the published tally matching the ground truth. This is the CI
//     tcp-smoke entry point.
//
// DDEMOS_TEST_TIME_SCALE stretches every protocol duration (election
// window, patience, timeouts) for slow or sanitized runners.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/tcp_launcher.hpp"

namespace {

long long time_scale() {
  static const long long scale = [] {
    const char* env = std::getenv("DDEMOS_TEST_TIME_SCALE");
    long long v = env ? std::atoll(env) : 1;
    return v >= 1 ? v : 1;
  }();
  return scale;
}

ddemos::sim::Duration scaled(ddemos::sim::Duration us) {
  return us * time_scale();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --serve <host> <port> <process> "
               "[<data_port> <incarnation>]\n"
               "       %s --launch [--vc N] [--fvc N] [--bb N] [--fbb N]\n"
               "                   [--trustees N] [--ht N] [--voters N]\n"
               "                   [--seed S] [--shards N] [--timeout-s S]\n",
               argv0, argv0);
  return 64;
}

int run_launch(int argc, char** argv) {
  using namespace ddemos;
  std::size_t n_vc = 4, f_vc = 1, n_bb = 3, f_bb = 1;
  std::size_t n_trustees = 3, h_trustees = 2;
  std::size_t voters = 5, shards = 1;
  std::uint64_t seed = 2026;
  long long timeout_s = 120;
  for (int i = 2; i < argc; ++i) {
    auto arg = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = arg("--vc")) n_vc = std::atoll(v);
    else if (const char* v = arg("--fvc")) f_vc = std::atoll(v);
    else if (const char* v = arg("--bb")) n_bb = std::atoll(v);
    else if (const char* v = arg("--fbb")) f_bb = std::atoll(v);
    else if (const char* v = arg("--trustees")) n_trustees = std::atoll(v);
    else if (const char* v = arg("--ht")) h_trustees = std::atoll(v);
    else if (const char* v = arg("--voters")) voters = std::atoll(v);
    else if (const char* v = arg("--seed")) seed = std::atoll(v);
    else if (const char* v = arg("--shards")) shards = std::atoll(v);
    else if (const char* v = arg("--timeout-s")) timeout_s = std::atoll(v);
    else return usage(argv[0]);
  }

  core::ElectionParams p;
  p.election_id = to_bytes("tcp-launch");
  p.options = {"yes", "no"};
  p.n_voters = voters;
  p.n_vc = n_vc;
  p.f_vc = f_vc;
  p.n_bb = n_bb;
  p.f_bb = f_bb;
  p.n_trustees = n_trustees;
  p.h_trustees = h_trustees;
  p.t_start = 0;
  p.t_end = scaled(1'500'000);

  core::DriverConfig cfg;
  cfg.params = p;
  cfg.seed = seed;
  cfg.vc_shards = shards;
  cfg.voter_template.patience_us = scaled(400'000);
  cfg.trustee_options.poll_interval_us = scaled(100'000);
  cfg.wall_timeout_us = timeout_s * 1'000'000;

  core::TcpLauncher launcher(core::TcpLauncher::spec_from(cfg));
  core::ElectionReport r = launcher.run_election(cfg);

  std::printf("tcp-launch: completed=%d voters=%zu receipts=%zu wall=%.2fs\n",
              r.completed ? 1 : 0, r.voters_launched, r.receipts_issued,
              r.wall_seconds);
  std::printf("  tally    =");
  for (std::uint64_t t : r.tally) std::printf(" %llu",
                                              (unsigned long long)t);
  std::printf("\n  expected =");
  for (std::uint64_t t : r.expected_tally)
    std::printf(" %llu", (unsigned long long)t);
  std::printf("\n");
  for (const core::NodeAccounting& row : r.process_accounting) {
    std::printf(
        "  proc %-9s events=%-8llu allocs=%-7llu rss=%lluMB "
        "tx=%llu rx=%llu redial=%llu drop=%llu\n",
        row.name.c_str(), (unsigned long long)row.events,
        (unsigned long long)row.allocations,
        (unsigned long long)(row.peak_rss_kb / 1024),
        (unsigned long long)row.frames_sent,
        (unsigned long long)row.frames_received,
        (unsigned long long)row.reconnects,
        (unsigned long long)row.frames_dropped);
  }
  bool ok = r.completed && r.receipts_issued == r.voters_launched &&
            !r.tally.empty() && r.tally == r.expected_tally;
  if (!ok) std::fprintf(stderr, "tcp-launch: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    // 5 args: initial spawn. 7 args: crash-recovery respawn, which pins the
    // predecessor's data port and announces a bumped incarnation.
    if (argc != 5 && argc != 7) return usage(argv[0]);
    std::uint16_t data_port =
        argc == 7 ? static_cast<std::uint16_t>(std::atoi(argv[5])) : 0;
    std::uint64_t incarnation = argc == 7 ? std::strtoull(argv[6], nullptr, 10)
                                          : 1;
    try {
      return ddemos::core::serve_tcp_node(
          argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])),
          static_cast<std::uint32_t>(std::atoi(argv[4])), data_port,
          incarnation);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ddemos_node --serve: %s\n", e.what());
      return 2;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "--launch") == 0) {
    try {
      return run_launch(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ddemos_node --launch: %s\n", e.what());
      return 1;
    }
  }
  return usage(argv[0]);
}
